package repro

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
)

// URRecord is the flat export form of one undelegated record.
type URRecord struct {
	Domain     string   `json:"domain"`
	Type       string   `json:"type"`
	RData      string   `json:"rdata"`
	TTL        uint32   `json:"ttl"`
	Nameserver string   `json:"nameserver"`
	NSHost     string   `json:"ns_host"`
	Provider   string   `json:"provider"`
	Category   string   `json:"category"`
	Reason     string   `json:"reason,omitempty"`
	ASN        uint32   `json:"asn,omitempty"`
	ASName     string   `json:"as_name,omitempty"`
	Country    string   `json:"country,omitempty"`
	TXTClass   string   `json:"txt_class,omitempty"`
	IPs        []string `json:"corresponding_ips,omitempty"`
	ByIntel    bool     `json:"malicious_by_intel,omitempty"`
	ByIDS      bool     `json:"malicious_by_ids,omitempty"`
}

func exportRecord(u *UR) URRecord {
	rec := URRecord{
		Domain:     string(u.Domain),
		Type:       u.Type.String(),
		RData:      u.RData,
		TTL:        u.TTL,
		Nameserver: u.Server.Addr.String(),
		NSHost:     string(u.Server.Host),
		Provider:   u.Server.Provider,
		Category:   u.Category.String(),
		Reason:     string(u.Reason),
		ASN:        uint32(u.ASN),
		ASName:     u.ASName,
		Country:    u.Country,
		TXTClass:   string(u.TXTClass),
		ByIntel:    u.MaliciousByIntel,
		ByIDS:      u.MaliciousByIDS,
	}
	for _, ip := range u.CorrespondingIPs {
		rec.IPs = append(rec.IPs, ip.String())
	}
	return rec
}

// ExportSummary is the JSON export envelope.
type ExportSummary struct {
	Queries    int64            `json:"queries"`
	Total      int              `json:"total_urs"`
	Suspicious int              `json:"suspicious_urs"`
	Categories map[string]int   `json:"categories"`
	Table1     []core.Table1Row `json:"table1"`
	Records    []URRecord       `json:"records"`
}

// WriteJSON streams the full classified result as one JSON document.
// onlySuspicious restricts the record list to the §4.2 suspicious set.
func WriteJSON(w io.Writer, res *Result, onlySuspicious bool) error {
	out := ExportSummary{
		Queries:    res.Queries,
		Total:      len(res.URs),
		Suspicious: len(res.Suspicious),
		Categories: make(map[string]int),
		Table1:     res.Table1(),
	}
	for cat, n := range res.CategoryCounts() {
		out.Categories[cat.String()] = n
	}
	src := res.URs
	if onlySuspicious {
		src = res.Suspicious
	}
	out.Records = make([]URRecord, 0, len(src))
	for _, u := range src {
		out.Records = append(out.Records, exportRecord(u))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// csvHeader is the CSV column layout.
var csvHeader = []string{
	"domain", "type", "rdata", "ttl", "nameserver", "ns_host", "provider",
	"category", "reason", "asn", "as_name", "country", "txt_class",
	"corresponding_ips", "malicious_by_intel", "malicious_by_ids",
}

// WriteCSV streams the record list as CSV with a header row.
func WriteCSV(w io.Writer, res *Result, onlySuspicious bool) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	src := res.URs
	if onlySuspicious {
		src = res.Suspicious
	}
	for _, u := range src {
		rec := exportRecord(u)
		ips := ""
		for i, ip := range rec.IPs {
			if i > 0 {
				ips += " "
			}
			ips += ip
		}
		row := []string{
			rec.Domain, rec.Type, rec.RData, strconv.FormatUint(uint64(rec.TTL), 10),
			rec.Nameserver, rec.NSHost, rec.Provider, rec.Category, rec.Reason,
			strconv.FormatUint(uint64(rec.ASN), 10), rec.ASName, rec.Country,
			rec.TXTClass, ips,
			strconv.FormatBool(rec.ByIntel), strconv.FormatBool(rec.ByIDS),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJSON parses a previously exported summary (for downstream tooling and
// tests).
func ReadJSON(r io.Reader) (*ExportSummary, error) {
	var out ExportSummary
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("repro: decode export: %w", err)
	}
	return &out, nil
}
