package repro

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (DESIGN.md E1–E14) and measures the substrate costs underneath
// them. Benchmarks run at the tiny scale so `go test -bench=.` completes in
// seconds; `cmd/experiments -scale small|paper` produces the full-size runs
// recorded in EXPERIMENTS.md.

import (
	"context"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/hosting"
	"repro/internal/sandbox"
	"repro/internal/simnet"
	"repro/internal/urwatch"
)

var (
	benchOnce sync.Once
	benchEnv  *Env
	benchErr  error
)

func benchSetup(b *testing.B) *Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = NewEnv(context.Background(), TinyScale(), 7)
	})
	if benchErr != nil {
		b.Fatalf("env: %v", benchErr)
	}
	return benchEnv
}

// BenchmarkWorldGeneration measures standing up the whole simulated
// Internet (providers, delegations, attacker campaign, sandbox corpus).
func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := GenerateWorld(TinyScale(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		_ = w
	}
}

// BenchmarkTable1Pipeline regenerates Table 1: the full URHunter pipeline —
// correct/protective collection, the nameserver sweep, determination, and
// malicious-behaviour analysis.
func BenchmarkTable1Pipeline(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	var res *Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = NewPipeline(env.World).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rows := res.Table1()
	b.ReportMetric(float64(rows[2].URs), "suspicious-urs")
	b.ReportMetric(float64(res.Queries), "dns-queries")
	b.ReportMetric(100*ratio(rows[2].MaliciousURs, rows[2].URs), "malicious-%")
	b.ReportMetric(float64(res.Queries)*float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkFigure2VendorClassification regenerates Figure 2 from a
// classified result.
func BenchmarkFigure2VendorClassification(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(env.Result.Figure2(5)) == 0 {
			b.Fatal("empty figure2")
		}
	}
}

// BenchmarkFigure3Analyses regenerates the four panels of Figure 3.
func BenchmarkFigure3Analyses(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = env.Result.Figure3a()
		_ = env.Result.Figure3b()
		_ = env.Result.Figure3c()
		_ = env.Result.Figure3d()
	}
	b.StopTimer()
	f3a := env.Result.Figure3a()
	b.ReportMetric(float64(f3a.Total()), "malicious-ips")
}

// BenchmarkTXTShare regenerates the §5.2 email-record statistic.
func BenchmarkTXTShare(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	var email, mal int
	for i := 0; i < b.N; i++ {
		email, mal = env.Result.TXTEmailShare()
	}
	b.StopTimer()
	if mal > 0 {
		b.ReportMetric(100*float64(email)/float64(mal), "email-%")
	}
}

// BenchmarkTable2ProviderAudit regenerates Table 2: the Appendix C policy
// audit across the seven providers.
func BenchmarkTable2ProviderAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := AuditProviders(hosting.AppendixCPresets(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkCaseStudySandbox re-runs the §5.3 malware corpus (Dark.IoT,
// Specter, and the SPF families) through the sandbox.
func BenchmarkCaseStudySandbox(b *testing.B) {
	env := benchSetup(b)
	w := env.World
	samples := append(append(append([]*sandbox.Sample{}, w.Case.DarkIoTSamples...),
		w.Case.SpecterSamples...), w.Case.SPFSamples...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range samples {
			rep := w.Sandbox.Run(s)
			if len(rep.Flows) == 0 {
				b.Fatal("no flows")
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(samples)), "samples")
}

// BenchmarkFalseNegativeCheck regenerates the §4.2 validation.
func BenchmarkFalseNegativeCheck(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	var fn int
	for i := 0; i < b.N; i++ {
		var err error
		_, fn, err = env.Pipe.FalseNegativeCheck(context.Background(), env.Result)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(fn), "false-negatives")
}

// BenchmarkDefenseBypass regenerates the §3 threat-model evaluation.
func BenchmarkDefenseBypass(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := ExpBypass(context.Background(), env)
		if err != nil {
			b.Fatal(err)
		}
		if f.Metrics["default_c2_reached"] != 1 {
			b.Fatal("bypass failed")
		}
	}
}

// BenchmarkDeterminerConditions is the E14 ablation bench: the exclusion
// stage over the collected UR set with all conditions on vs off.
func BenchmarkDeterminerConditions(b *testing.B) {
	env := benchSetup(b)
	urs := env.Result.URs
	cfg := env.World.URHunterConfig()

	run := func(b *testing.B, mut func(*core.Determiner)) {
		for i := 0; i < b.N; i++ {
			det := core.NewDeterminer(cfg, env.Result.Correct, env.Result.Protective)
			if mut != nil {
				mut(det)
			}
			// classify mutates; work on copies.
			batch := make([]*core.UR, len(urs))
			for j, u := range urs {
				c := *u
				c.Category = core.CategoryUnknown
				c.Reason = core.ReasonNone
				batch[j] = &c
			}
			_ = det.Determine(batch)
		}
	}
	b.Run("all-conditions", func(b *testing.B) { run(b, nil) })
	b.Run("no-pdns", func(b *testing.B) {
		run(b, func(d *core.Determiner) { d.UsePDNS = false })
	})
	b.Run("subset-only", func(b *testing.B) {
		run(b, func(d *core.Determiner) { d.UsePDNS = false; d.UseHTTPFilter = false })
	})
}

// BenchmarkDetermineParallel measures the sharded §4.2 classification pass —
// per-shard memo caches over interned strings — at GOMAXPROCS workers.
// classify mutates, so each iteration re-classifies fresh copies.
func BenchmarkDetermineParallel(b *testing.B) {
	env := benchSetup(b)
	cfg := env.World.URHunterConfig()
	urs := env.Result.URs
	workers := runtime.GOMAXPROCS(0)
	det := core.NewDeterminer(cfg, env.Result.Correct, env.Result.Protective)
	copies := make([]core.UR, len(urs))
	batch := make([]*core.UR, len(urs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, u := range urs {
			copies[j] = *u
			copies[j].Category, copies[j].Reason = core.CategoryUnknown, core.ReasonNone
			batch[j] = &copies[j]
		}
		_ = det.DetermineParallel(batch, workers)
	}
	b.ReportMetric(float64(len(urs))*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkAnalyzeParallel measures the fanned-out §4.3 labeling pass over
// the suspicious set. The labels land back in the same deterministic state
// the shared env held, so later benches read an unchanged Result.
func BenchmarkAnalyzeParallel(b *testing.B) {
	env := benchSetup(b)
	cfg := env.World.URHunterConfig()
	workers := runtime.GOMAXPROCS(0)
	suspicious := env.Result.Suspicious
	analyzer := core.NewAnalyzer(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range suspicious {
			u.Category = core.CategoryUnknown
			u.MaliciousByIntel, u.MaliciousByIDS = false, false
		}
		analyzer.AnalyzeParallel(suspicious, workers)
	}
	b.ReportMetric(float64(len(suspicious))*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkServeVerdicts measures the URWatch DNSBL front-end: one sealed
// generation of real pipeline verdicts hammered from all procs with the
// serving query mix (listed A/TXT, reversed-IP, generation marker, unlisted
// NXDOMAIN). serve_qps and serve_p99_ms are the CI-gated feed SLOs.
func BenchmarkServeVerdicts(b *testing.B) {
	env := benchSetup(b)
	store := urwatch.NewStore()
	store.Publish(urwatch.SnapshotFromResult(env.Result, 1, time.Unix(0, 0)))
	if store.Current().Total() == 0 {
		b.Fatal("empty generation")
	}
	const apex = dns.Name("feed.test")
	zr := &urwatch.ZoneResponder{Apex: apex, Store: store, Cache: urwatch.NewResponseCache(0)}

	var listedDomain dns.Name
	var listedIP netip.Addr
	for _, u := range env.Result.URs {
		if u.Type == dns.TypeA && len(u.CorrespondingIPs) > 0 {
			listedDomain, listedIP = u.Domain, u.CorrespondingIPs[0]
			break
		}
	}
	if listedDomain == "" {
		b.Fatal("no A-record UR in the bench world")
	}
	revName, ok := urwatch.ReverseIPName(listedIP, apex)
	if !ok {
		b.Fatalf("unreversible IP %s", listedIP)
	}
	queries := []*dns.Message{
		dns.NewQuery(1, urwatch.DomainName(listedDomain, apex), dns.TypeA),
		dns.NewQuery(2, urwatch.DomainName(listedDomain, apex), dns.TypeTXT),
		dns.NewQuery(3, revName, dns.TypeA),
		dns.NewQuery(4, "gen."+apex, dns.TypeTXT),
		dns.NewQuery(5, urwatch.DomainName("unlisted.example", apex), dns.TypeA),
	}
	hist := urwatch.NewLatencyHistogram(100_000) // 100ms ceiling
	src := netip.MustParseAddr("10.7.7.7")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var i int
		for pb.Next() {
			q := queries[i%len(queries)]
			i++
			t0 := time.Now()
			resp := zr.HandleQuery(src, q)
			hist.Observe(time.Since(t0))
			if resp.Header.RCode == dns.RCodeRefused || resp.Header.RCode == dns.RCodeServFail {
				b.Fatalf("dropped verdict: rcode %s", resp.Header.RCode)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "serve_qps")
	b.ReportMetric(float64(hist.Quantile(0.99).Nanoseconds())/1e6, "serve_p99_ms")
}

// BenchmarkSnapshotColdStart measures the restart path end to end: one
// sealed generation of real pipeline verdicts is written as a binary
// snapshot once, and each iteration loads it from disk, validates it, and
// swaps it into a fresh store — exactly what `urwatchd -snapshot-dir` does
// before opening its listeners. coldstart_ms is the CI-gated restart SLO;
// bytes_per_verdict is the flat layout's retained footprint.
func BenchmarkSnapshotColdStart(b *testing.B) {
	env := benchSetup(b)
	g := urwatch.SnapshotFromResult(env.Result, 1, time.Unix(0, 0))
	if g.Total() == 0 {
		b.Fatal("empty generation")
	}
	dir := b.TempDir()
	path, err := urwatch.SaveGeneration(dir, g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded, err := urwatch.LoadSnapshotFile(path)
		if err != nil {
			b.Fatal(err)
		}
		store := urwatch.NewStore()
		store.Restore(loaded)
		if cur := store.Current(); cur.Seq != 1 || cur.Total() != g.Total() {
			b.Fatalf("restored seq=%d total=%d", cur.Seq, cur.Total())
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "coldstart_ms")
	b.ReportMetric(float64(g.SizeBytes())/float64(g.Total()), "bytes_per_verdict")
	b.ReportMetric(float64(g.Total()), "verdicts")
}

// --- substrate microbenches ----------------------------------------------

// BenchmarkDNSPackUnpack measures the wire codec on a realistic referral
// response.
func BenchmarkDNSPackUnpack(b *testing.B) {
	m := dns.NewQuery(1, "www.example.com", dns.TypeA).Reply()
	m.Answers = append(m.Answers,
		dns.MustParseRR("www.example.com 300 IN CNAME example.com"),
		dns.MustParseRR("example.com 300 IN A 192.0.2.10"))
	m.Authority = append(m.Authority,
		dns.MustParseRR("example.com 86400 IN NS ns1.hosting.test"),
		dns.MustParseRR("example.com 86400 IN NS ns2.hosting.test"))
	m.Additional = append(m.Additional,
		dns.MustParseRR("ns1.hosting.test 86400 IN A 198.51.100.1"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := m.Pack()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dns.Unpack(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectorSweep measures the §4.1 nameserver sweep alone.
func BenchmarkCollectorSweep(b *testing.B) {
	env := benchSetup(b)
	cfg := env.World.URHunterConfig()
	b.ResetTimer()
	var urs []*core.UR
	var queries int64
	for i := 0; i < b.N; i++ {
		col := core.NewCollector(cfg)
		var err error
		urs, err = col.CollectURs(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		queries = col.Queries()
	}
	b.StopTimer()
	b.ReportMetric(float64(len(urs)), "urs")
	b.ReportMetric(float64(queries)*float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkFabricExchangeParallel drives raw packed queries through the
// simnet fabric from all procs at once — the contention ceiling underneath
// a paper-scale sweep (36M exchanges), isolating the sharded accounting
// path from codec and collector costs.
func BenchmarkFabricExchangeParallel(b *testing.B) {
	env := benchSetup(b)
	w := env.World
	ns := w.Nameservers[0]
	q := dns.NewQuery(99, w.Targets[0], dns.TypeA)
	packed, err := q.Pack()
	if err != nil {
		b.Fatal(err)
	}
	ep := simnet.Endpoint{Addr: ns.Addr, Port: 53}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := w.Fabric.Exchange(w.CollectorAddr, ep, packed, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkClientQueryParallel measures the full client query path —
// pooled pack buffers, atomic ID generation, validation — with one shared
// Client hammered from all procs, as the sweep workers do.
func BenchmarkClientQueryParallel(b *testing.B) {
	env := benchSetup(b)
	w := env.World
	client := dnsio.NewClient(&dnsio.SimTransport{Fabric: w.Fabric, Src: w.CollectorAddr})
	servers := make([]netip.AddrPort, len(w.Nameservers))
	for i, ns := range w.Nameservers {
		servers[i] = netip.AddrPortFrom(ns.Addr, 53)
	}
	target := w.Targets[0]
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var i int
		for pb.Next() {
			srv := servers[i%len(servers)]
			i++
			if _, err := client.Query(context.Background(), srv, target, dns.TypeA); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRecursiveResolution measures full iterative resolution through
// the simulated hierarchy (cold cache each iteration).
func BenchmarkRecursiveResolution(b *testing.B) {
	env := benchSetup(b)
	targets := env.World.Targets
	rec := env.World.Resolvers.Resolvers[0].Resolver()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := targets[i%len(targets)]
		if _, err := rec.Resolve(context.Background(), name, dns.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}
