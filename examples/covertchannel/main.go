// Covert channel walkthrough: the paper's Figure 1 threat model, end to end.
//
// An attacker hosts an undelegated record for a trusted domain at a
// reputable provider (①), malware on a victim machine retrieves it with a
// direct DNS query (③), the traffic slips past a reputation engine and a
// resolution-path firewall (④), and the C2 connection succeeds (⑤). The
// same attack is then replayed with two countermeasures: a URWatch sweep
// whose verdict feed backs the firewall (⑥ — the flow dies at the feed
// check), and a provider that adopted the §6 ownership-verification
// mitigation (the attack dies at step ①). Step ⑦ upgrades the implant to
// DoH: the lookup and the beacon both ride opaque TLS, payload signatures
// (the IDS baseline) go blind, yet the feed-backed blocker still wins — it
// keys on the endpoint's structured resolution record, which encryption
// does not hide.
//
//	go run ./examples/covertchannel
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"time"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/dns"
	"repro/internal/hosting"
	"repro/internal/ids"
	"repro/internal/ipam"
	"repro/internal/malware"
	"repro/internal/psl"
	"repro/internal/registry"
	"repro/internal/resolver"
	"repro/internal/sandbox"
	"repro/internal/simnet"
	"repro/internal/urwatch"
)

func main() {
	// --- the world: root, .com, a trusted domain, a hosting provider ------
	fabric := simnet.New(7)
	ipdb := ipam.New()
	reg, err := registry.New(fabric, ipdb, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, tld := range []dns.Name{"com", "test"} {
		if err := reg.CreateTLD(tld, 1); err != nil {
			log.Fatal(err)
		}
	}
	// trusted.com is registered and delegated to its real owner elsewhere.
	if err := reg.SetDelegation("trusted.com", []dns.Name{"ns1.realowner.test"}, nil,
		time.Now().AddDate(-2, 0, 0)); err != nil {
		log.Fatal(err)
	}

	deps := hosting.Deps{Fabric: fabric, IPDB: ipdb, Registry: reg,
		PSL: psl.Default(), Roots: []netip.Addr{reg.RootAddr()}, Seed: 1}
	provider, err := hosting.NewProvider(hosting.PresetClouDNS(), deps)
	if err != nil {
		log.Fatal(err)
	}

	// --- step ①: the attacker hosts an undelegated record ----------------
	attackerASN := ipdb.RegisterAS("BULLETPROOF", "RU", 1)
	c2, _ := ipdb.Allocate(attackerASN)
	if err := malware.InstallC2(fabric, c2, 443); err != nil {
		log.Fatal(err)
	}
	provider.OpenAccount("attacker", false)
	hz, err := provider.CreateZone("attacker", "trusted.com")
	if err != nil {
		log.Fatalf("zone creation refused: %v", err)
	}
	hz.Zone.MustAddRR(fmt.Sprintf("trusted.com 120 IN A %s", c2))
	fmt.Printf("① attacker hosts trusted.com at %s; UR A -> %s on %d nameservers\n",
		provider.Name, c2, len(hz.NS))
	fmt.Printf("   (the real delegation still points at %v)\n\n", reg.Delegation("trusted.com"))

	// --- steps ②③: the malware runs and retrieves the UR ------------------
	victimASN := ipdb.RegisterAS("VICTIM-NET", "US", 1)
	victim, _ := ipdb.Allocate(victimASN)
	resolverAddr, _ := ipdb.Allocate(victimASN)
	if _, err := resolver.NewOpenResolver(fabric, resolverAddr, "US",
		[]netip.Addr{reg.RootAddr()}); err != nil {
		log.Fatal(err)
	}
	sb := sandbox.New(fabric, victim, resolverAddr)

	providerNS := hz.NS[0].Addr
	sample := &sandbox.Sample{
		Name: "specter-implant", Family: "Specter",
		Behavior: func(env sandbox.Env) error {
			resp, err := env.QueryDNS(providerNS, "trusted.com", dns.TypeA)
			if err != nil {
				return err
			}
			dst, ok := malware.FirstA(resp)
			if !ok {
				return fmt.Errorf("no UR answer")
			}
			return env.ConnectTCP(dst, 443, "c2-checkin specter")
		},
	}
	report := sb.Run(sample)
	if report.Err != nil {
		log.Fatalf("malware failed: %v", report.Err)
	}
	fmt.Printf("②③ malware queried %s directly and connected to %s\n\n",
		providerNS, report.ContactedIPs()[0])

	// --- step ④: the defenses watch and miss -----------------------------
	rep := defense.NewReputationEngine()
	rep.SetDomainReputation("trusted.com", 0.97) // a top site
	rep.SetServerReputation(providerNS, 0.93)    // a reputable provider
	fw := defense.NewPathFirewall(resolverAddr)
	fw.MaliciousAnswers[c2] = true // the validator would catch it on-path

	outcome := defense.EvaluateReport(report, rep, fw, nil)
	fmt.Printf("④ reputation engine + path firewall: blocked %d/%d DNS flows, %d/%d connections\n",
		outcome.BlockedDNS, outcome.TotalDNS, outcome.BlockedConns, outcome.TotalConns)
	fmt.Printf("⑤ C2 reached: %v — the UR rode the reputation of the domain AND the provider\n\n",
		outcome.C2Reached)

	// --- step ⑥: a URWatch feed closes the blind spot ---------------------
	// A defender running the measurement continuously knows the one fact
	// neither baseline sees: trusted.com has an undelegated record at this
	// provider. One sweep over the mini world, published as a verdict-store
	// generation, and the same firewall consults the feed.
	vantage, _ := ipdb.Allocate(victimASN)
	var nsInfos []core.NameserverInfo
	for _, ns := range provider.Nameservers() {
		nsInfos = append(nsInfos, core.NameserverInfo{
			Addr: ns.Addr, Host: ns.Host, Provider: provider.Name})
	}
	cfg := &core.Config{
		Fabric: fabric, IPDB: ipdb, SrcAddr: vantage,
		Targets: []dns.Name{"trusted.com"}, Nameservers: nsInfos,
		DelegatedNS: reg.Delegation, Now: time.Now(), Seed: 3,
	}
	watcher := urwatch.NewWatcher(urwatch.WatcherConfig{
		Sweep: func(ctx context.Context) (*core.Result, error) {
			return core.NewPipeline(cfg).Run(ctx)
		},
	})
	diff, err := watcher.SweepOnce(context.Background())
	if err != nil {
		log.Fatalf("urwatch sweep: %v", err)
	}
	gen := watcher.Store().Current()
	fmt.Printf("⑥ URWatch sweep published generation %d: %d verdicts, %d new events\n",
		gen.Seq, gen.Total(), len(diff.Events))
	if vs := gen.Domain("trusted.com"); vs.Len() > 0 {
		v := vs.At(0) // one representative line; one UR per provider nameserver
		fmt.Printf("   listed: %s %s -> %s at %s (%s), class %s\n",
			v.Domain(), v.Type(), v.RData(), v.Server(), v.Provider(), v.Category())
	}
	// No vendor has flagged the fresh C2 yet, so the UR is merely
	// "suspicious" — the strict blocker refuses listed URs the analyzer
	// could not clear.
	fb := &defense.FeedBlocker{Feed: &urwatch.Feed{Store: watcher.Store()},
		BlockSuspicious: true}
	outcome2 := defense.EvaluateReportWithFeed(report, rep, fw, fb, nil)
	fmt.Printf("   feed-backed firewall replay: blocked %d/%d DNS flows, %d/%d connections\n",
		outcome2.BlockedDNS, outcome2.TotalDNS, outcome2.BlockedConns, outcome2.TotalConns)
	if len(outcome2.BlockedVerdicts) > 0 {
		fmt.Printf("   first verdict: %s\n", outcome2.BlockedVerdicts[0].Reason)
	}
	fmt.Printf("   C2 reached: %v\n\n", outcome2.C2Reached)

	// --- step ⑦: the attacker upgrades to DoH -----------------------------
	// The implant re-runs with its lookup tunneled over RFC 8484 and a
	// TLS-wrapped beacon: a network tap sees two opaque HTTPS sessions and
	// zero DNS, so every payload signature goes blind. The feed-backed
	// blocker does not care — the sandbox's structured resolution record
	// survives encryption, and blocking it tears the whole chain down.
	sampleDoH := &sandbox.Sample{
		Name: "specter-implant-doh", Family: "Specter",
		Behavior: func(env sandbox.Env) error {
			resp, err := env.(sandbox.EncryptedEnv).QueryDoH(providerNS, "trusted.com", dns.TypeA)
			if err != nil {
				return err
			}
			dst, ok := malware.FirstA(resp)
			if !ok {
				return fmt.Errorf("no UR answer")
			}
			return env.ConnectTCP(dst, 443, "tls1.3 application-data")
		},
	}
	reportDoH := sb.Run(sampleDoH)
	if reportDoH.Err != nil {
		log.Fatalf("DoH malware failed: %v", reportDoH.Err)
	}
	engine := ids.NewEngine(ids.DefaultRules()...)
	plainIPs := ids.AlertedIPs(engine.InspectReport(report), ids.SeverityMedium)
	dohIPs := ids.AlertedIPs(engine.InspectReport(reportDoH), ids.SeverityMedium)
	fmt.Printf("⑦ same implant over DoH: IDS signatures flag %d IP(s) on the plaintext run, %d on the encrypted run\n",
		len(plainIPs), len(dohIPs))
	if len(plainIPs) == 0 {
		log.Fatal("expected the plaintext beacon to trip the IDS")
	}
	if len(dohIPs) != 0 {
		log.Fatal("expected the encrypted run to evade payload signatures")
	}
	outcome3 := defense.EvaluateReportWithFeed(reportDoH, rep, fw, fb, nil)
	fmt.Printf("   feed-backed firewall vs DoH: blocked %d/%d DNS records, %d/%d connections\n",
		outcome3.BlockedDNS, outcome3.TotalDNS, outcome3.BlockedConns, outcome3.TotalConns)
	fmt.Printf("   C2 reached: %v — encryption beat the signatures, not the feed\n\n", outcome3.C2Reached)
	if outcome3.C2Reached {
		log.Fatal("expected the feed blocker to stop the encrypted channel")
	}

	// --- the §6 mitigation: ownership verification ------------------------
	fixed := hosting.PresetClouDNS()
	fixed.Name = "ClouDNS (post-disclosure)"
	fixed.InfraDomain = "cloudns-fixed.test"
	fixed.Verification = hosting.VerifyNSDelegation
	fixed.ServeUnverified = false
	fixedProvider, err := hosting.NewProvider(fixed, hosting.Deps{
		Fabric: fabric, IPDB: ipdb, Registry: reg, PSL: psl.Default(),
		Roots: []netip.Addr{reg.RootAddr()}, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fixedProvider.OpenAccount("attacker", false)
	hz2, err := fixedProvider.CreateZone("attacker", "trusted.com")
	if err != nil {
		log.Fatalf("unexpected: %v", err)
	}
	hz2.Zone.MustAddRR(fmt.Sprintf("trusted.com 120 IN A %s", c2))
	fmt.Printf("mitigation: %s verifies NS delegation; attacker zone served = %v\n",
		fixedProvider.Name, hz2.Served())
	sample2 := &sandbox.Sample{
		Name: "specter-implant-2", Family: "Specter",
		Behavior: func(env sandbox.Env) error {
			resp, err := env.QueryDNS(hz2.NS[0].Addr, "trusted.com", dns.TypeA)
			if err != nil {
				return err
			}
			addr, ok := malware.FirstA(resp)
			if !ok {
				return fmt.Errorf("UR gone: server answered %s", resp.Header.RCode)
			}
			if addr != c2 {
				return fmt.Errorf("UR gone: server answered its protective record %s, not the C2", addr)
			}
			return nil
		},
	}
	report2 := sb.Run(sample2)
	fmt.Printf("malware against the fixed provider: %v\n", report2.Err)
}
