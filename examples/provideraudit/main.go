// Provider audit: rerun the paper's Appendix C investigation against the
// seven mainstream providers, pre- and post-disclosure, and print both
// Table 2 matrices. The audit opens two free accounts and one paid account
// per provider, probes every supported-domain category and duplicate rule,
// and — per the paper's ethics appendix — removes every record it planted.
//
//	go run ./examples/provideraudit
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/hosting"
)

func main() {
	fmt.Println("Pre-disclosure hosting strategies (the paper's Table 2):")
	rows, err := repro.AuditProviders(hosting.AppendixCPresets(), 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(repro.RenderTable2(rows))

	fmt.Println("\nPost-disclosure (§6: Tencent adopted NS-delegation verification,")
	fmt.Println("Cloudflare expanded its reserved list, Alibaba added TXT challenges):")
	var post []hosting.Policy
	for _, p := range hosting.AppendixCPresets() {
		post = append(post, hosting.PostDisclosure(p, nil))
	}
	rows, err = repro.AuditProviders(post, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(repro.RenderTable2(rows))

	fmt.Println("\nReading the matrix:")
	fmt.Println("  NoVerif   — zone for someone else's domain is served without ownership proof")
	fmt.Println("  Unreg     — unregistered domains accepted (Amazon, ClouDNS)")
	fmt.Println("  Subdom    — subdomains of SLDs accepted (Cloudflare: paid accounts)")
	fmt.Println("  eTLD      — public suffixes like gov.cn accepted")
	fmt.Println("  DupSingle — one account may host the same domain twice (Amazon)")
	fmt.Println("  DupCross  — different accounts may host the same domain")
	fmt.Println("  NoRetr    — the legitimate owner has no retrieval mechanism")
}
