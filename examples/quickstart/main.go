// Quickstart: generate a small simulated Internet, run URHunter over it,
// and print what the paper's Table 1 and Figure 2 look like for this world.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A tiny world generates in well under a second: a delegation hierarchy,
	// 15 hosting providers (the seven from the paper's Appendix C plus the
	// Figure 2 vendors and a generic long tail), legitimate sites for every
	// measured domain, an attacker campaign planting undelegated records,
	// and a malware corpus already evaluated in the sandbox.
	world, err := repro.GenerateWorld(repro.TinyScale(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d nameservers, %d target domains, %d malware samples\n\n",
		len(world.Nameservers), len(world.Targets), len(world.Samples))

	// URHunter (§4 of the paper): collect responses from every nameserver
	// and open resolver, exclude correct and protective records, and label
	// the rest with threat-intelligence and IDS evidence.
	result, err := repro.RunURHunter(context.Background(), world)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(repro.RenderCategorySummary(result))
	fmt.Println()
	fmt.Print(repro.RenderTable1(result))
	fmt.Println()
	fmt.Print(repro.RenderFigure2(result, 5))
	fmt.Println()

	// Every undelegated record is available for inspection.
	for _, u := range result.Suspicious {
		if u.Category == repro.CategoryMalicious {
			fmt.Printf("example malicious UR: %s %s @ %s (%s) -> %s\n",
				u.Domain.String(), u.Type, u.Server.Host.String(), u.Server.Provider, u.RData)
			break
		}
	}
}
