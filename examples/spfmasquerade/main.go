// SPF masquerade: the §5.3 case study of SMTP-based covert communication
// hidden behind fake SPF records.
//
// An attacker hosts speedtest.net on Namecheap and CSC (11 nameservers in
// total) with an SPF record whose ip4: mechanisms are really C2/SMTP drop
// addresses in one /24. Micropsia-style trojans use it for C2 check-ins;
// Agent Tesla exfiltrates keylogs over SMTP to the same servers. The example
// runs the samples in the sandbox, inspects the traffic with the IDS, and
// shows how URHunter's analyzer flags the records.
//
//	go run ./examples/spfmasquerade
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/dns"
	"repro/internal/ids"
	"repro/internal/sandbox"
)

func main() {
	world, err := repro.GenerateWorld(repro.TinyScale(), 11)
	if err != nil {
		log.Fatal(err)
	}
	cs := world.Case

	fmt.Printf("masquerading SPF for speedtest.net deployed on %d nameservers:\n", len(cs.SPFNS))
	providers := map[string]int{}
	for _, ns := range cs.SPFNS {
		providers[ns.Provider]++
	}
	for p, n := range providers {
		fmt.Printf("  %-10s %d nameservers\n", p, n)
	}
	fmt.Printf("SPF payload IPs (all in one /24): %v\n\n", cs.SPFServers)

	// Resolve the record the way the malware does: a direct TXT query.
	sb := world.Sandbox
	probe := &sandbox.Sample{Name: "spf-probe", Family: "probe",
		Behavior: func(env sandbox.Env) error {
			resp, err := env.QueryDNS(cs.SPFNS[0].Addr, "speedtest.net", dns.TypeTXT)
			if err != nil {
				return err
			}
			for _, rr := range resp.AnswersOfType(dns.TypeTXT) {
				fmt.Printf("UR TXT from %s: %s\n", cs.SPFNS[0].Host.String(),
					rr.Data.(*dns.TXT).Joined())
			}
			return nil
		}}
	if rep := sb.Run(probe); rep.Err != nil {
		log.Fatal(rep.Err)
	}
	fmt.Println()

	// Run the six case-study samples and inspect their traffic.
	engine := world.IDS
	totalAlerts, highFlows := 0, map[string]bool{}
	for _, sample := range cs.SPFSamples {
		rep := sb.Run(sample)
		alerts := engine.InspectReport(rep)
		totalAlerts += len(alerts)
		kinds := map[string]bool{}
		for _, a := range alerts {
			kinds[string(a.Rule.Classtype)] = true
			if a.Rule.Severity == ids.SeverityHigh {
				highFlows[a.Flow.String()] = true
			}
		}
		fmt.Printf("%-22s family=%-10s flows=%d alerts=%d classes=%v err=%v\n",
			sample.Name, sample.Family, len(rep.Flows), len(alerts), keyList(kinds), rep.Err)
	}
	fmt.Printf("\ncorpus total: %d samples, %d alerts, %d high-risk flows (paper: 6 samples, 16 alerts, 4 high-risk)\n\n",
		len(cs.SPFSamples), totalAlerts, len(highFlows))

	// URHunter's verdict on the masquerading records.
	result, err := repro.RunURHunter(context.Background(), world)
	if err != nil {
		log.Fatal(err)
	}
	flagged := 0
	for _, u := range result.Suspicious {
		if u.Domain == "speedtest.net" && u.Type == dns.TypeTXT &&
			u.Category == repro.CategoryMalicious {
			flagged++
		}
	}
	fmt.Printf("URHunter labeled %d speedtest.net TXT URs malicious (SPF class, threat-intel + IDS evidence)\n", flagged)
	for _, ip := range cs.SPFServers {
		rep := world.Intel.Lookup(ip)
		fmt.Printf("  %s: %d vendors, tags %v\n", ip, rep.VendorCount(), rep.Tags)
	}
}

func keyList(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
