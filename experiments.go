package repro

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/dns"
	"repro/internal/ids"
	"repro/internal/sandbox"
	"repro/internal/threatintel"
)

// Findings is one experiment's output: human-readable lines plus the named
// metrics EXPERIMENTS.md compares against the paper.
type Findings struct {
	ID      string
	Title   string
	Paper   string // the paper's headline claim for this experiment
	Lines   []string
	Metrics map[string]float64
}

func (f *Findings) addf(format string, args ...any) {
	f.Lines = append(f.Lines, fmt.Sprintf(format, args...))
}

func (f *Findings) metric(name string, v float64) {
	if f.Metrics == nil {
		f.Metrics = make(map[string]float64)
	}
	f.Metrics[name] = v
}

// Render formats the findings for terminal output.
func (f *Findings) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s\n", f.ID, f.Title)
	if f.Paper != "" {
		fmt.Fprintf(&sb, "   paper: %s\n", f.Paper)
	}
	for _, l := range f.Lines {
		sb.WriteString("   ")
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Env carries the shared state experiments run against: one generated world
// and one URHunter result.
type Env struct {
	World  *World
	Pipe   *core.Pipeline
	Result *Result
}

// NewEnv generates a world and runs the pipeline once for all experiments.
func NewEnv(ctx context.Context, scale Scale, seed int64) (*Env, error) {
	w, err := GenerateWorld(scale, seed)
	if err != nil {
		return nil, err
	}
	pipe := NewPipeline(w)
	res, err := pipe.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &Env{World: w, Pipe: pipe, Result: res}, nil
}

// Experiment is one table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, env *Env) (*Findings, error)
}

// Experiments returns every experiment in DESIGN.md's E1–E14 order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Suspicious-UR overview (Table 1)", ExpTable1},
		{"figure2", "UR categories per top vendor (Figure 2)", ExpFigure2},
		{"figure3a", "Why IPs were labeled (Figure 3a)", ExpFigure3a},
		{"figure3b", "Vendor-count distribution (Figure 3b)", ExpFigure3b},
		{"figure3c", "IDS alert activities (Figure 3c)", ExpFigure3c},
		{"figure3d", "Vendor tags (Figure 3d)", ExpFigure3d},
		{"txtshare", "Email-related share of malicious TXT (§5.2)", ExpTXTShare},
		{"table2", "Hosting strategies (Table 2 / Appendix C)", ExpTable2},
		{"darkiot", "Dark.IoT case study (§5.3)", ExpDarkIoT},
		{"specter", "Specter case study (§5.3)", ExpSpecter},
		{"spf", "Masquerading SPF case study (§5.3)", ExpSPF},
		{"fnrate", "Zero-false-negative validation (§4.2)", ExpFNRate},
		{"bypass", "Defense bypass (threat model, §3)", ExpBypass},
		{"ablation", "Appendix-B condition ablation", ExpAblation},
		{"postdisclosure", "Post-disclosure remeasurement (§6)", ExpPostDisclosure},
		{"mx", "MX-record extension sweep (§6 future work)", ExpMX},
		{"subdomains", "PDNS subdomain recovery sweep (§6 future work)", ExpSubdomains},
	}
}

// ExperimentByID finds one experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ExpTable1 reproduces Table 1.
func ExpTable1(_ context.Context, env *Env) (*Findings, error) {
	f := &Findings{ID: "table1", Title: "Suspicious-UR overview",
		Paper: "1,580,925 suspicious URs; 25.41% malicious; 68.48% of domains, 79.48% of nameservers, 71.47% of providers affected; TXT malicious rate 3.08% vs A 28.92%"}
	res := env.Result
	for _, line := range strings.Split(strings.TrimRight(RenderTable1(res), "\n"), "\n") {
		f.addf("%s", line)
	}
	rows := res.Table1()
	total, aRow, txtRow := rows[2], rows[0], rows[1]
	f.metric("malicious_ur_share", ratio(total.MaliciousURs, total.URs))
	f.metric("malicious_domain_share", ratio(total.MaliciousDomains, total.Domains))
	f.metric("malicious_ns_share", ratio(total.MaliciousNameservers, total.Nameservers))
	f.metric("malicious_provider_share", ratio(total.MaliciousProviders, total.Providers))
	f.metric("a_malicious_rate", ratio(aRow.MaliciousURs, aRow.URs))
	f.metric("txt_malicious_rate", ratio(txtRow.MaliciousURs, txtRow.URs))
	f.metric("suspicious_urs", float64(total.URs))
	return f, nil
}

// ExpFigure2 reproduces Figure 2.
func ExpFigure2(_ context.Context, env *Env) (*Findings, error) {
	f := &Findings{ID: "figure2", Title: "UR categories per top vendor",
		Paper: "Cloudflare 3,039,369 ≫ ClouDNS 90,783 > Amazon 84,256 > Akamai 53,100 > NHN 23,783; correct+protective dominate, malicious visible in every bar"}
	res := env.Result
	for _, line := range strings.Split(strings.TrimRight(RenderFigure2(res, 5), "\n"), "\n") {
		f.addf("%s", line)
	}
	fig := res.Figure2(5)
	if len(fig) > 0 {
		f.metric("top_provider_is_cloudflare", boolMetric(fig[0].Provider == "Cloudflare"))
		if len(fig) > 1 && fig[1].Total() > 0 {
			f.metric("top_vs_second_ratio", float64(fig[0].Total())/float64(fig[1].Total()))
		}
	}
	return f, nil
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ExpFigure3a reproduces Figure 3(a).
func ExpFigure3a(_ context.Context, env *Env) (*Findings, error) {
	f := &Findings{ID: "figure3a", Title: "Why IPs were labeled",
		Paper: "intel-only 34.20%, IDS-only 36.62%, both 29.18%"}
	r := env.Result.Figure3a()
	total := r.Total()
	f.addf("intel-only %s, ids-only %s, both %s (of %d malicious IPs)",
		pct(r.IntelOnly, total), pct(r.IDSOnly, total), pct(r.Both, total), total)
	f.metric("intel_only_share", ratio(r.IntelOnly, total))
	f.metric("ids_only_share", ratio(r.IDSOnly, total))
	f.metric("both_share", ratio(r.Both, total))
	return f, nil
}

// ExpFigure3b reproduces Figure 3(b).
func ExpFigure3b(_ context.Context, env *Env) (*Findings, error) {
	f := &Findings{ID: "figure3b", Title: "Vendor-count distribution",
		Paper: "1-2: 77.90%, 3-4: 16.31%, 5-6: 2.01%, 7-11: 3.78%"}
	buckets := env.Result.Figure3b()
	total := 0
	for _, n := range buckets {
		total += n
	}
	for _, b := range []string{"1-2", "3-4", "5-6", "7-11"} {
		f.addf("%-5s %s", b, pct(buckets[b], total))
		f.metric("bucket_"+b, ratio(buckets[b], total))
	}
	return f, nil
}

// ExpFigure3c reproduces Figure 3(c).
func ExpFigure3c(_ context.Context, env *Env) (*Findings, error) {
	f := &Findings{ID: "figure3c", Title: "IDS alert activities",
		Paper: "Trojan Activity 41.67%, Other 23.86%, Privacy Violation 21.19%, C&C 10.82%, Bad Traffic 2.46%"}
	classes := env.Result.Figure3c()
	total := 0
	for _, n := range classes {
		total += n
	}
	for _, c := range ids.AllClasses {
		f.addf("%-18s %s", c, pct(classes[c], total))
		f.metric(strings.ReplaceAll(string(c), " ", "_"), ratio(classes[c], total))
	}
	return f, nil
}

// ExpFigure3d reproduces Figure 3(d).
func ExpFigure3d(_ context.Context, env *Env) (*Findings, error) {
	f := &Findings{ID: "figure3d", Title: "Vendor tags",
		Paper: "Trojan 89.01%, Scanner 41.01%, Other 33.33%, Malware 19.11%, C&C 16.25%, Botnet 10.23% (multi-tag per IP)"}
	tags := env.Result.Figure3d()
	r3a := env.Result.Figure3a()
	intelIPs := r3a.IntelOnly + r3a.Both
	for _, tag := range threatintel.AllTags {
		f.addf("%-8s %s", tag, pct(tags[tag], intelIPs))
		f.metric(string(tag), ratio(tags[tag], intelIPs))
	}
	return f, nil
}

// ExpTXTShare reproduces the §5.2 statistic.
func ExpTXTShare(_ context.Context, env *Env) (*Findings, error) {
	f := &Findings{ID: "txtshare", Title: "Email-related share of malicious TXT",
		Paper: "90.95% of malicious TXT URs act as email records (SPF and DMARC)"}
	email, mal := env.Result.TXTEmailShare()
	f.addf("email-related %s of %d malicious TXT URs", pct(email, mal), mal)
	f.metric("email_share", ratio(email, mal))
	return f, nil
}

// ExpDarkIoT reproduces the Dark.IoT case study.
func ExpDarkIoT(_ context.Context, env *Env) (*Findings, error) {
	f := &Findings{ID: "darkiot", Title: "Dark.IoT case study",
		Paper: "2021 variants query ClouDNS for api.gitlab.com (SLD rank 527) and fall back to EmerDNS; the 2023 variant abandons EmerDNS, hosting OpenNIC names as ClouDNS URs and moving to raw.pastebin.com (SLD rank 2033)"}
	w := env.World
	reports := reportsFor(w, "Dark.IoT")
	if len(reports) != 3 {
		return nil, fmt.Errorf("darkiot: %d reports", len(reports))
	}
	for _, rep := range reports {
		emer, cloudns := 0, 0
		domains := map[string]bool{}
		for _, rec := range rep.DNS {
			if rec.Server == w.Case.EmerDNSAddr {
				emer++
			}
			if rec.Server == w.Case.ClouDNSNS {
				cloudns++
			}
			domains[string(rec.Question.Name)] = true
		}
		reached := contacted(rep, w.Case.DarkIoTC2)
		f.addf("%s (released %s): ClouDNS queries=%d EmerDNS queries=%d domains=%v C2 reached=%v",
			rep.Sample.Name, rep.Sample.Released, cloudns, emer, keys(domains), reached)
		if rep.Sample.Released == "2023-03-04" {
			f.metric("v2023_emerdns_queries", float64(emer))
		}
	}
	if rank, ok := w.Tranco.Rank("gitlab.com"); ok {
		f.addf("gitlab.com SLD rank in generated list: %d (paper: 527)", rank)
	}
	if rank, ok := w.Tranco.Rank("pastebin.com"); ok {
		f.addf("pastebin.com SLD rank in generated list: %d (paper: 2033)", rank)
	}
	return f, nil
}

// ExpSpecter reproduces the Specter case study.
func ExpSpecter(_ context.Context, env *Env) (*Findings, error) {
	f := &Findings{ID: "specter", Title: "Specter case study",
		Paper: "three RAT variants keep C2 connections through ClouDNS URs for ibm.com (rank 125) and api.github.com (github.com rank 30); C2 flagged by 0 of 74 vendors"}
	w := env.World
	reports := reportsFor(w, "Specter")
	for _, rep := range reports {
		var domain string
		if len(rep.DNS) > 0 {
			domain = string(rep.DNS[0].Question.Name)
		}
		f.addf("%s: UR domain=%s C2 reached=%v", rep.Sample.Name, domain,
			contacted(rep, w.Case.SpecterC2))
	}
	vendors := w.Intel.Lookup(w.Case.SpecterC2).VendorCount()
	f.addf("Specter C2 flagged by %d of %d vendors", vendors, w.Intel.VendorCount())
	f.metric("specter_vendor_flags", float64(vendors))
	// Yet the URs are labeled malicious via IDS evidence.
	mal := 0
	for _, u := range env.Result.Suspicious {
		if u.Category == core.CategoryMalicious && u.Server.Provider == "ClouDNS" &&
			(u.Domain == "ibm.com" || u.Domain == "api.github.com") {
			mal++
		}
	}
	f.addf("Specter URs labeled malicious by URHunter: %d", mal)
	f.metric("specter_urs_malicious", float64(mal))
	return f, nil
}

// ExpSPF reproduces the masquerading-SPF case study.
func ExpSPF(_ context.Context, env *Env) (*Findings, error) {
	f := &Findings{ID: "spf", Title: "Masquerading SPF case study",
		Paper: "speedtest.net (rank 415) SPF URs on 11 nameservers of 2 providers; 3 malicious IPs in one /24; 6 samples triggered 16 IDS alerts, 4 high-risk; Micropsia C2 + Tesla SMTP covert channel"}
	w := env.World
	f.addf("SPF URs served from %d nameservers across %d providers",
		len(w.Case.SPFNS), countProviders(w.Case.SPFNS))
	f.metric("spf_nameservers", float64(len(w.Case.SPFNS)))
	f.addf("SPF server IPs: %v (one /24: %v)", w.Case.SPFServers, sameSlash24(w))

	engine := w.IDS
	alerts, high := 0, 0
	highFlows := map[string]bool{}
	for _, rep := range reportsByNames(w, sampleNames(w.Case.SPFSamples)) {
		for _, a := range engine.InspectReport(rep) {
			alerts++
			if a.Rule.Severity == ids.SeverityHigh {
				high++
				highFlows[a.Flow.String()] = true
			}
		}
	}
	f.addf("%d samples triggered %d IDS alerts (%d high-severity across %d distinct flows)",
		len(w.Case.SPFSamples), alerts, high, len(highFlows))
	f.metric("spf_alerts", float64(alerts))
	f.metric("spf_high_flows", float64(len(highFlows)))
	for _, ip := range w.Case.SPFServers {
		f.addf("SPF IP %s: flagged by %d vendors", ip, w.Intel.Lookup(ip).VendorCount())
	}
	return f, nil
}

// ExpFNRate reproduces the §4.2 zero-false-negative validation.
func ExpFNRate(ctx context.Context, env *Env) (*Findings, error) {
	f := &Findings{ID: "fnrate", Title: "Zero-false-negative validation",
		Paper: "feeding the top-2K delegated records through the exclusion stage labels none as suspicious"}
	total, fn, err := env.Pipe.FalseNegativeCheck(ctx, env.Result)
	if err != nil {
		return nil, err
	}
	f.addf("delegated records evaluated: %d, wrongly suspicious: %d", total, fn)
	f.metric("false_negatives", float64(fn))
	f.metric("evaluated", float64(total))
	return f, nil
}

// ExpBypass reproduces the §3 threat-model claims: UR malware traffic slips
// past reputation-based blocking and path validation, while ownership
// verification (the §6 mitigation) prevents the UR from existing at all.
func ExpBypass(_ context.Context, env *Env) (*Findings, error) {
	f := &Findings{ID: "bypass", Title: "Defense bypass",
		Paper: "URs capitalize on the reputation of popular domains and providers, bypassing reputation-based defenses; traffic does not traverse the default resolver, bypassing resolution-path inspection"}
	w := env.World

	// Reputation engine primed with the world's knowledge: top domains and
	// provider nameservers are reputable.
	rep := defense.NewReputationEngine()
	for _, e := range w.Tranco.Top(w.Scale.Targets) {
		rep.SetDomainReputation(e.Domain, 0.95)
	}
	for _, ns := range w.Nameservers {
		rep.SetServerReputation(ns.Addr, 0.9)
	}
	fw := defense.NewPathFirewall(w.Resolvers.Resolvers[0].Addr)
	for _, ip := range w.EvidencedIPs {
		fw.MaliciousAnswers[ip] = true
	}

	var specterRep *sandbox.Report
	for _, r := range reportsFor(w, "Specter") {
		specterRep = r
		break
	}
	if specterRep == nil {
		return nil, fmt.Errorf("bypass: no specter report")
	}
	out := defense.EvaluateReport(specterRep, rep, fw, nil)
	f.addf("default defenses: blocked %d/%d DNS flows, %d/%d connections; C2 reached=%v",
		out.BlockedDNS, out.TotalDNS, out.BlockedConns, out.TotalConns, out.C2Reached)
	f.metric("default_c2_reached", boolMetric(out.C2Reached))

	fw.StrictDirectDNS = true
	strict := defense.EvaluateReport(specterRep, rep, fw, nil)
	f.addf("strict direct-DNS blocking: C2 reached=%v (collateral: breaks legitimate custom-resolver use)",
		strict.C2Reached)
	f.metric("strict_c2_reached", boolMetric(strict.C2Reached))
	return f, nil
}

// ExpAblation drops each Appendix-B exclusion condition and measures how the
// suspicious set inflates and whether false negatives appear.
func ExpAblation(ctx context.Context, env *Env) (*Findings, error) {
	f := &Findings{ID: "ablation", Title: "Appendix-B condition ablation",
		Paper: "the five conditions plus HTTP keyword filtering jointly achieve a zero false-negative rate"}
	baseline := len(env.Result.Suspicious)
	f.addf("baseline suspicious set: %d", baseline)

	type toggle struct {
		name string
		mut  func(d *core.Determiner)
	}
	toggles := []toggle{
		{"no-IP-subset", func(d *core.Determiner) { d.UseIPSubset = false }},
		{"no-AS-subset", func(d *core.Determiner) { d.UseASSubset = false }},
		{"no-geo-subset", func(d *core.Determiner) { d.UseGeoSubset = false }},
		{"no-cert-subset", func(d *core.Determiner) { d.UseCertSubset = false }},
		{"no-pdns", func(d *core.Determiner) { d.UsePDNS = false }},
		{"no-http-filter", func(d *core.Determiner) { d.UseHTTPFilter = false }},
		{"all-conditions-off", func(d *core.Determiner) {
			d.UseIPSubset, d.UseASSubset, d.UseGeoSubset = false, false, false
			d.UseCertSubset, d.UsePDNS, d.UseHTTPFilter = false, false, false
		}},
	}
	for _, tg := range toggles {
		pipe := NewPipeline(env.World)
		pipe.Determiner = core.NewDeterminer(env.World.URHunterConfig(), nil, nil)
		tg.mut(pipe.Determiner)
		res, err := pipe.Run(ctx)
		if err != nil {
			return nil, err
		}
		_, fn, err := pipe.FalseNegativeCheck(ctx, res)
		if err != nil {
			return nil, err
		}
		f.addf("%-18s suspicious=%d (%+d vs baseline), false-negatives=%d",
			tg.name, len(res.Suspicious), len(res.Suspicious)-baseline, fn)
		f.metric(tg.name+"_delta", float64(len(res.Suspicious)-baseline))
		f.metric(tg.name+"_fn", float64(fn))
	}
	return f, nil
}

// ExpPostDisclosure regenerates the world with the §6 vendor reactions
// applied and remeasures: the attack surface shrinks but does not close.
func ExpPostDisclosure(ctx context.Context, env *Env) (*Findings, error) {
	f := &Findings{ID: "postdisclosure", Title: "Post-disclosure remeasurement",
		Paper: "Tencent adopted NS verification, Cloudflare expanded its blacklist, Alibaba added TXT challenges; Cloudflare and Alibaba remain exploitable but available renowned domains become fewer"}
	scale := env.World.Scale
	scale.PostDisclosure = true
	postEnv, err := NewEnv(ctx, scale, env.World.Seed)
	if err != nil {
		return nil, err
	}
	pre, post := env.Result, postEnv.Result
	preRows, postRows := pre.Table1(), post.Table1()
	f.addf("suspicious URs: %d pre-disclosure -> %d post-disclosure",
		preRows[2].URs, postRows[2].URs)
	f.addf("malicious URs:  %d pre-disclosure -> %d post-disclosure",
		preRows[2].MaliciousURs, postRows[2].MaliciousURs)
	f.addf("reserved-list refusals: %d pre -> %d post",
		env.World.Plants.Refusals["domain is on the provider's reserved list"],
		postEnv.World.Plants.Refusals["domain is on the provider's reserved list"])
	countOn := func(res *Result, provider string) int {
		n := 0
		for _, u := range res.Suspicious {
			if u.Server.Provider == provider && u.Category == core.CategoryMalicious {
				n++
			}
		}
		return n
	}
	tencentPre, tencentPost := countOn(pre, "Tencent Cloud"), countOn(post, "Tencent Cloud")
	f.addf("malicious URs on Tencent Cloud: %d pre -> %d post (NS verification)",
		tencentPre, tencentPost)
	f.addf("malicious URs on Cloudflare: %d pre -> %d post (reserved list only: still exploitable)",
		countOn(pre, "Cloudflare"), countOn(post, "Cloudflare"))
	f.metric("pre_malicious", float64(preRows[2].MaliciousURs))
	f.metric("post_malicious", float64(postRows[2].MaliciousURs))
	f.metric("tencent_pre_malicious", float64(tencentPre))
	f.metric("tencent_post_malicious", float64(tencentPost))
	return f, nil
}

// ExpMX runs the future-work extension: the same sweep with MX added to the
// query types, classifying the mail-exchanger URs that the paper leaves to
// future measurement.
func ExpMX(ctx context.Context, env *Env) (*Findings, error) {
	f := &Findings{ID: "mx", Title: "MX-record extension sweep",
		Paper: "§6 (limitations): 'our methodology is also adaptive for measuring ... other types of records (e.g., MX records)'"}
	cfg := env.World.URHunterConfig()
	cfg.QueryTypes = []dns.Type{dns.TypeMX}
	pipe := core.NewPipeline(cfg)
	res, err := pipe.Run(ctx)
	if err != nil {
		return nil, err
	}
	counts := res.CategoryCounts()
	f.addf("MX URs collected: %d (correct %d, protective %d, unknown %d, malicious %d)",
		len(res.URs), counts[core.CategoryCorrect], counts[core.CategoryProtective],
		counts[core.CategoryUnknown], counts[core.CategoryMalicious])
	suspiciousDomains := map[string]bool{}
	for _, u := range res.Suspicious {
		suspiciousDomains[string(u.Domain)] = true
	}
	f.addf("suspicious MX URs: %d across %d domains", len(res.Suspicious), len(suspiciousDomains))
	f.metric("mx_urs", float64(len(res.URs)))
	f.metric("mx_suspicious", float64(len(res.Suspicious)))
	f.metric("mx_correct", float64(counts[core.CategoryCorrect]))
	return f, nil
}

// ExpSubdomains implements the other §6 future-work direction: recover
// legitimate subdomains from passive DNS, extend the target list with them,
// and re-sweep — surfacing the UR zones attackers hide one label down where
// the top-domain sweep never looks.
func ExpSubdomains(ctx context.Context, env *Env) (*Findings, error) {
	f := &Findings{ID: "subdomains", Title: "PDNS subdomain recovery sweep",
		Paper: "§6 (future work): 'we can recover legitimate subdomains from PDNS data and measure whether they appear in URs'"}
	w := env.World

	var recovered []dns.Name
	seen := make(map[dns.Name]bool, len(w.Targets))
	for _, t := range w.Targets {
		seen[t] = true
	}
	for _, t := range w.Targets {
		for _, sub := range w.PDNS.Subdomains(t) {
			if !seen[sub] {
				seen[sub] = true
				recovered = append(recovered, sub)
			}
		}
	}
	f.addf("recovered %d subdomains from passive DNS", len(recovered))
	if len(recovered) == 0 {
		f.metric("recovered", 0)
		return f, nil
	}

	cfg := w.URHunterConfig()
	cfg.Targets = recovered // sweep only the recovered names
	res, err := core.NewPipeline(cfg).Run(ctx)
	if err != nil {
		return nil, err
	}
	counts := res.CategoryCounts()
	f.addf("URs at recovered subdomains: %d (suspicious %d, malicious %d)",
		len(res.URs), len(res.Suspicious), counts[core.CategoryMalicious])
	hidden := 0
	for _, u := range res.Suspicious {
		if u.Category == core.CategoryMalicious {
			hidden++
		}
	}
	f.addf("malicious URs invisible to the top-domain sweep: %d", hidden)
	f.metric("recovered", float64(len(recovered)))
	f.metric("subdomain_suspicious", float64(len(res.Suspicious)))
	f.metric("subdomain_malicious", float64(hidden))
	return f, nil
}

// --- helpers -------------------------------------------------------------

func reportsFor(w *World, family string) []*sandbox.Report {
	var out []*sandbox.Report
	for _, r := range w.Reports {
		if r.Sample.Family == family {
			out = append(out, r)
		}
	}
	return out
}

func sampleNames(samples []*sandbox.Sample) map[string]bool {
	out := make(map[string]bool, len(samples))
	for _, s := range samples {
		out[s.Name] = true
	}
	return out
}

func reportsByNames(w *World, names map[string]bool) []*sandbox.Report {
	var out []*sandbox.Report
	for _, r := range w.Reports {
		if names[r.Sample.Name] {
			out = append(out, r)
		}
	}
	return out
}

func contacted(rep *sandbox.Report, ip any) bool {
	for _, c := range rep.ContactedIPs() {
		if fmt.Sprint(c) == fmt.Sprint(ip) {
			return true
		}
	}
	return false
}

func countProviders(ns []core.NameserverInfo) int {
	seen := map[string]bool{}
	for _, n := range ns {
		seen[n.Provider] = true
	}
	return len(seen)
}

func sameSlash24(w *World) bool {
	if len(w.Case.SPFServers) < 2 {
		return false
	}
	first := w.Case.SPFServers[0].As4()
	for _, ip := range w.Case.SPFServers[1:] {
		b := ip.As4()
		if b[0] != first[0] || b[1] != first[1] || b[2] != first[2] {
			return false
		}
	}
	return true
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
