// Package repro is the public facade of the reproduction of "Wolf in
// Sheep's Clothing: Evaluating Security Risks of the Undelegated Record on
// DNS Hosting Services" (IMC 2023).
//
// The library builds a simulated Internet — delegation hierarchy, hosting
// providers with their real policy matrices, open resolvers, threat
// intelligence, a malware sandbox and IDS — and runs the paper's URHunter
// measurement framework over it. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-vs-measured record of every table and figure.
//
// Quick start:
//
//	world, _ := repro.GenerateWorld(repro.TinyScale(), 42)
//	result, _ := repro.RunURHunter(context.Background(), world)
//	fmt.Print(repro.RenderTable1(result))
package repro

import (
	"context"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/transport"
)

// Scale sizes a generated world; see the constructors below.
type Scale = scenario.Scale

// World is a generated measurement universe.
type World = scenario.World

// Result is a URHunter run's classified output.
type Result = core.Result

// Pipeline chains the three URHunter components; see NewPipeline.
type Pipeline = core.Pipeline

// UR is one undelegated record with enrichment and classification.
type UR = core.UR

// Scales.
var (
	// TinyScale is for tests and demos (sub-second sweeps).
	TinyScale = scenario.Tiny
	// SmallScale is the default experiment scale (~1/8 of the paper).
	SmallScale = scenario.Small
	// PaperScale approximates the full measurement (8,941 nameservers).
	PaperScale = scenario.Paper
	// ScaleByName resolves "tiny", "small", or "paper".
	ScaleByName = scenario.ByName
)

// Record categories, re-exported for report consumers.
const (
	CategoryUnknown    = core.CategoryUnknown
	CategoryCorrect    = core.CategoryCorrect
	CategoryProtective = core.CategoryProtective
	CategoryMalicious  = core.CategoryMalicious
)

// GenerateWorld builds a world at the given scale, deterministic in seed.
func GenerateWorld(scale Scale, seed int64) (*World, error) {
	return scenario.Generate(scale, seed)
}

// RunURHunter executes the full pipeline (§4.1–§4.3) over a world.
func RunURHunter(ctx context.Context, w *World) (*Result, error) {
	return NewPipeline(w).Run(ctx)
}

// NewPipeline exposes the pipeline for callers that tune the determiner
// (the Appendix B ablation) or need the false-negative check.
func NewPipeline(w *World) *core.Pipeline {
	return core.NewPipeline(w.URHunterConfig())
}

// ValidateTransport checks a wire-transport name ("", "udp", "tcp", "dot",
// "doh"); the empty string is the udp default. CLIs call this before building
// pipelines so a typo fails at flag parse, not mid-sweep.
func ValidateTransport(kind string) error {
	_, err := transport.ParseKind(kind)
	return err
}

// NewPipelineTransport is NewPipeline with the sweep carried over the given
// wire transport. Reports are byte-identical across transports — only the
// virtual-clock accounting and the failure books differ — so the choice is
// an operational one, not a measurement one.
func NewPipelineTransport(w *World, kind string) (*core.Pipeline, error) {
	if err := ValidateTransport(kind); err != nil {
		return nil, err
	}
	cfg := w.URHunterConfig()
	cfg.TransportKind = kind
	return core.NewPipeline(cfg), nil
}

// Journal is a sweep checkpoint store: per-worker append-only segment files
// plus a manifest binding them to one (seed, plan) identity.
type Journal = core.Journal

// JournalOptions tunes checkpointing (flush-to-disk frequency).
type JournalOptions = core.JournalOptions

// NewJournaledPipeline builds a pipeline whose sweeps checkpoint into dir.
// If dir already holds a journal for the same world seed and query plan, the
// prior run's answered probes are replayed instead of re-queried and the
// resumed run's report is byte-identical to an uninterrupted one. Close the
// returned Journal after the run.
func NewJournaledPipeline(w *World, dir string, opts JournalOptions) (*core.Pipeline, *Journal, error) {
	return NewJournaledPipelineTransport(w, "", dir, opts)
}

// NewJournaledPipelineTransport is NewJournaledPipeline over a chosen wire
// transport. The transport is set before the journal opens: manifests record
// it, and resuming a directory swept over a different transport fails with
// the cross-transport mismatch error rather than mixing incomparable failure
// books.
func NewJournaledPipelineTransport(w *World, kind, dir string, opts JournalOptions) (*core.Pipeline, *Journal, error) {
	if err := ValidateTransport(kind); err != nil {
		return nil, nil, err
	}
	cfg := w.URHunterConfig()
	cfg.TransportKind = kind
	j, err := core.OpenJournal(dir, cfg, opts)
	if err != nil {
		return nil, nil, err
	}
	cfg.Journal = j
	return core.NewPipeline(cfg), j, nil
}
