// Package sandbox is the malware-evaluation substrate: it executes malware
// behaviour programs against the simulated network and captures every flow
// they generate — DNS queries (both the normal resolution path and direct
// queries to hosting-provider nameservers), TCP connections, and SMTP
// sessions. The captured traffic feeds internal/ids, reproducing the
// "sandbox evaluation reports" pipeline of §4.3.
package sandbox

import (
	"context"
	"fmt"
	"net/netip"
	"sync"

	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/simnet"
)

// Proto identifies a captured flow's protocol.
type Proto string

// Flow protocols.
const (
	ProtoDNS  Proto = "dns"
	ProtoTCP  Proto = "tcp"
	ProtoSMTP Proto = "smtp"
	ProtoHTTP Proto = "http"
)

// Flow is one captured network interaction.
type Flow struct {
	Proto   Proto
	Src     netip.Addr
	Dst     netip.Addr
	DstPort uint16
	// Payload is a compact description of the exchange the IDS can match on
	// (DNS question, TCP banner, SMTP envelope summary).
	Payload string
	// Answered reports whether the peer responded.
	Answered bool
}

// String renders the flow for reports.
func (f Flow) String() string {
	return fmt.Sprintf("%s %s -> %s:%d %q", f.Proto, f.Src, f.Dst, f.DstPort, f.Payload)
}

// DNSRecord captures one resolved DNS exchange in structured form.
type DNSRecord struct {
	Server   netip.Addr
	Direct   bool // true when the sample queried a specific server, not the default resolver
	// Encrypted marks a lookup carried over DoH: the wire was an opaque TLS
	// session, so this record exists only because the sandbox instruments
	// the process — a network tap would not have it.
	Encrypted bool
	Question  dns.Question
	RCode     dns.RCode
	Answers   []dns.RR
}

// Env is the network API malware behaviour programs run against.
type Env interface {
	// QueryDNS sends a query straight to the given server — the UR retrieval
	// path.
	QueryDNS(server netip.Addr, name dns.Name, qtype dns.Type) (*dns.Message, error)
	// ResolveDefault resolves through the victim's configured resolver — the
	// normal path defenders can observe end-to-end.
	ResolveDefault(name dns.Name, qtype dns.Type) (*dns.Message, error)
	// ConnectTCP opens a connection and exchanges a banner.
	ConnectTCP(dst netip.Addr, port uint16, payload string) error
	// SendSMTP delivers a message to an SMTP endpoint.
	SendSMTP(dst netip.Addr, envelope string) error
}

// EncryptedEnv is the optional Env extension for malware that tunnels its
// DNS lookups over an encrypted transport. The sandbox's capture environment
// implements it; behaviour programs type-assert and fall back to plaintext
// QueryDNS when the environment cannot.
type EncryptedEnv interface {
	// QueryDoH resolves name via RFC 8484 against the server's DoH
	// endpoint. On the wire a defender sees only a TLS session to port 443
	// — no question text, no answer, no payload marker for signatures to
	// match. The structured DNSRecord is still captured (with Encrypted
	// set): the sandbox instruments the process, not the network, so
	// endpoint-visibility defenses keep working where payload signatures
	// go blind.
	QueryDoH(server netip.Addr, name dns.Name, qtype dns.Type) (*dns.Message, error)
}

// Sample is a malware specimen: identity plus a behaviour program.
type Sample struct {
	Name   string
	Family string
	SHA256 string
	// Released is a free-form version date ("2021-12-12") used by case
	// studies.
	Released string
	Behavior func(env Env) error
}

// Report is the evaluation result for one sample.
type Report struct {
	Sample *Sample
	Flows  []Flow
	DNS    []DNSRecord
	// Err is the behaviour program's terminal error, if any (C2 down etc.).
	Err error
}

// ContactedIPs returns the distinct non-DNS destination IPs.
func (r *Report) ContactedIPs() []netip.Addr {
	seen := make(map[netip.Addr]bool)
	var out []netip.Addr
	for _, f := range r.Flows {
		if f.Proto == ProtoDNS {
			continue
		}
		if !seen[f.Dst] {
			seen[f.Dst] = true
			out = append(out, f.Dst)
		}
	}
	return out
}

// Sandbox executes samples on the fabric from a dedicated victim IP.
type Sandbox struct {
	fabric     *simnet.Fabric
	victimAddr netip.Addr
	resolver   netip.Addr // the default resolver's address
	client     *dnsio.Client
}

// New creates a sandbox whose victim machine sits at victimAddr and uses
// defaultResolver for normal resolution.
func New(fabric *simnet.Fabric, victimAddr, defaultResolver netip.Addr) *Sandbox {
	c := dnsio.NewClient(&dnsio.SimTransport{Fabric: fabric, Src: victimAddr})
	c.Retries = 1
	return &Sandbox{
		fabric:     fabric,
		victimAddr: victimAddr,
		resolver:   defaultResolver,
		client:     c,
	}
}

// VictimAddr returns the sandboxed machine's IP.
func (s *Sandbox) VictimAddr() netip.Addr { return s.victimAddr }

// Run executes a sample and returns its traffic report.
func (s *Sandbox) Run(sample *Sample) *Report {
	rep := &Report{Sample: sample}
	env := &captureEnv{sb: s, rep: rep}
	if sample.Behavior != nil {
		rep.Err = sample.Behavior(env)
	}
	return rep
}

// RunAll evaluates a batch of samples.
func (s *Sandbox) RunAll(samples []*Sample) []*Report {
	out := make([]*Report, len(samples))
	for i, smp := range samples {
		out[i] = s.Run(smp)
	}
	return out
}

// captureEnv implements Env with flow recording.
type captureEnv struct {
	sb  *Sandbox
	mu  sync.Mutex
	rep *Report
}

func (e *captureEnv) record(f Flow) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rep.Flows = append(e.rep.Flows, f)
}

func (e *captureEnv) recordDNS(rec DNSRecord) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rep.DNS = append(e.rep.DNS, rec)
}

func (e *captureEnv) queryVia(server netip.Addr, name dns.Name, qtype dns.Type, direct bool) (*dns.Message, error) {
	resp, err := e.sb.client.Query(context.Background(),
		netip.AddrPortFrom(server, dnsio.DNSPort), name, qtype)
	flow := Flow{
		Proto: ProtoDNS, Src: e.sb.victimAddr, Dst: server, DstPort: dnsio.DNSPort,
		Payload: fmt.Sprintf("query %s %s direct=%v", name.String(), qtype, direct),
	}
	rec := DNSRecord{Server: server, Direct: direct,
		Question: dns.Question{Name: name, Type: qtype, Class: dns.ClassINET}}
	if err == nil {
		flow.Answered = true
		rec.RCode = resp.Header.RCode
		rec.Answers = resp.Answers
	}
	e.record(flow)
	e.recordDNS(rec)
	return resp, err
}

// QueryDNS implements Env.
func (e *captureEnv) QueryDNS(server netip.Addr, name dns.Name, qtype dns.Type) (*dns.Message, error) {
	return e.queryVia(server, name, qtype, true)
}

// QueryDoH implements EncryptedEnv. The resolution rides the same simulated
// exchange path as QueryDNS — identical answers — but the captured flow is
// what a network tap would see: opaque TLS application data to port 443.
func (e *captureEnv) QueryDoH(server netip.Addr, name dns.Name, qtype dns.Type) (*dns.Message, error) {
	resp, err := e.sb.client.Query(context.Background(),
		netip.AddrPortFrom(server, dnsio.DNSPort), name, qtype)
	flow := Flow{
		Proto: ProtoHTTP, Src: e.sb.victimAddr, Dst: server, DstPort: 443,
		Payload: "tls1.3 application-data",
	}
	rec := DNSRecord{Server: server, Direct: true, Encrypted: true,
		Question: dns.Question{Name: name, Type: qtype, Class: dns.ClassINET}}
	if err == nil {
		flow.Answered = true
		rec.RCode = resp.Header.RCode
		rec.Answers = resp.Answers
	}
	e.record(flow)
	e.recordDNS(rec)
	return resp, err
}

// ResolveDefault implements Env.
func (e *captureEnv) ResolveDefault(name dns.Name, qtype dns.Type) (*dns.Message, error) {
	return e.queryVia(e.sb.resolver, name, qtype, false)
}

// ConnectTCP implements Env.
func (e *captureEnv) ConnectTCP(dst netip.Addr, port uint16, payload string) error {
	_, err := e.sb.fabric.ExchangeReliable(e.sb.victimAddr,
		simnet.Endpoint{Addr: dst, Port: port}, []byte(payload))
	e.record(Flow{
		Proto: ProtoTCP, Src: e.sb.victimAddr, Dst: dst, DstPort: port,
		Payload: payload, Answered: err == nil,
	})
	return err
}

// SendSMTP implements Env.
func (e *captureEnv) SendSMTP(dst netip.Addr, envelope string) error {
	_, err := e.sb.fabric.ExchangeReliable(e.sb.victimAddr,
		simnet.Endpoint{Addr: dst, Port: 25}, []byte("EHLO victim\r\n"+envelope))
	e.record(Flow{
		Proto: ProtoSMTP, Src: e.sb.victimAddr, Dst: dst, DstPort: 25,
		Payload: envelope, Answered: err == nil,
	})
	return err
}
