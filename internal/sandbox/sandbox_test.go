package sandbox

import (
	"net/netip"
	"strings"
	"testing"

	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/simnet"
)

var (
	victim   = netip.MustParseAddr("100.70.0.9")
	resolver = netip.MustParseAddr("100.70.0.53")
	urServer = netip.MustParseAddr("100.70.1.53")
	c2Addr   = netip.MustParseAddr("100.70.2.66")
)

// fakeNS answers every A query with the C2 address.
type fakeNS struct{}

func (fakeNS) HandleQuery(_ netip.Addr, q *dns.Message) *dns.Message {
	r := q.Reply()
	if q.Question().Type == dns.TypeA {
		r.Answers = append(r.Answers, dns.RR{
			Name: q.Question().Name, Class: dns.ClassINET, TTL: 60,
			Data: &dns.A{Addr: c2Addr},
		})
	}
	return r
}

func newSandbox(t *testing.T) (*Sandbox, *simnet.Fabric) {
	t.Helper()
	f := simnet.New(1)
	for _, addr := range []netip.Addr{resolver, urServer} {
		if _, err := dnsio.AttachSim(f, addr, fakeNS{}); err != nil {
			t.Fatal(err)
		}
	}
	err := f.Listen(simnet.Endpoint{Addr: c2Addr, Port: 443},
		simnet.HandlerFunc(func(_ netip.Addr, p []byte) []byte { return []byte("ok") }))
	if err != nil {
		t.Fatal(err)
	}
	err = f.Listen(simnet.Endpoint{Addr: c2Addr, Port: 25},
		simnet.HandlerFunc(func(_ netip.Addr, p []byte) []byte { return []byte("250") }))
	if err != nil {
		t.Fatal(err)
	}
	return New(f, victim, resolver), f
}

func TestRunCapturesFlows(t *testing.T) {
	sb, _ := newSandbox(t)
	sample := &Sample{
		Name: "test-sample", Family: "TestFam", SHA256: "abc",
		Behavior: func(env Env) error {
			resp, err := env.QueryDNS(urServer, "victim.com", dns.TypeA)
			if err != nil {
				return err
			}
			dst := resp.AnswersOfType(dns.TypeA)[0].Data.(*dns.A).Addr
			if err := env.ConnectTCP(dst, 443, "c2-checkin test"); err != nil {
				return err
			}
			return env.SendSMTP(dst, "covert-smtp hello")
		},
	}
	rep := sb.Run(sample)
	if rep.Err != nil {
		t.Fatalf("behaviour error: %v", rep.Err)
	}
	if len(rep.Flows) != 3 {
		t.Fatalf("flows = %d: %v", len(rep.Flows), rep.Flows)
	}
	if rep.Flows[0].Proto != ProtoDNS || rep.Flows[1].Proto != ProtoTCP || rep.Flows[2].Proto != ProtoSMTP {
		t.Errorf("flow protocols: %v", rep.Flows)
	}
	for _, f := range rep.Flows {
		if f.Src != victim {
			t.Errorf("flow src = %v", f.Src)
		}
		if !f.Answered {
			t.Errorf("flow not answered: %v", f)
		}
	}
	if len(rep.DNS) != 1 || !rep.DNS[0].Direct || rep.DNS[0].Server != urServer {
		t.Errorf("DNS records: %+v", rep.DNS)
	}
	ips := rep.ContactedIPs()
	if len(ips) != 1 || ips[0] != c2Addr {
		t.Errorf("contacted IPs: %v", ips)
	}
}

func TestResolveDefaultIsIndirect(t *testing.T) {
	sb, _ := newSandbox(t)
	sample := &Sample{
		Name: "indirect", Family: "T",
		Behavior: func(env Env) error {
			_, err := env.ResolveDefault("site.com", dns.TypeA)
			return err
		},
	}
	rep := sb.Run(sample)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if len(rep.DNS) != 1 || rep.DNS[0].Direct {
		t.Errorf("DNS: %+v", rep.DNS)
	}
	if rep.DNS[0].Server != resolver {
		t.Errorf("server = %v", rep.DNS[0].Server)
	}
	if !strings.Contains(rep.Flows[0].Payload, "direct=false") {
		t.Errorf("payload: %q", rep.Flows[0].Payload)
	}
}

func TestFailedConnectionsRecorded(t *testing.T) {
	sb, _ := newSandbox(t)
	dead := netip.MustParseAddr("100.70.9.9")
	sample := &Sample{
		Name: "dead-c2", Family: "T",
		Behavior: func(env Env) error {
			return env.ConnectTCP(dead, 443, "c2-checkin")
		},
	}
	rep := sb.Run(sample)
	if rep.Err == nil {
		t.Error("expected error from dead C2")
	}
	if len(rep.Flows) != 1 || rep.Flows[0].Answered {
		t.Errorf("flows: %v", rep.Flows)
	}
}

func TestRunAll(t *testing.T) {
	sb, _ := newSandbox(t)
	samples := []*Sample{
		{Name: "a", Family: "F"},
		{Name: "b", Family: "F", Behavior: func(env Env) error { return nil }},
	}
	reps := sb.RunAll(samples)
	if len(reps) != 2 {
		t.Fatalf("reports = %d", len(reps))
	}
	if reps[0].Sample.Name != "a" || len(reps[0].Flows) != 0 {
		t.Error("nil-behavior report wrong")
	}
	if sb.VictimAddr() != victim {
		t.Error("victim addr accessor wrong")
	}
}
