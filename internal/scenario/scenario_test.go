package scenario

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dns"
)

// tinyWorld is shared across tests in this package (generation is the
// expensive part).
var tinyWorld *World

func world(t *testing.T) *World {
	t.Helper()
	if tinyWorld == nil {
		w, err := Generate(Tiny(), 42)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		tinyWorld = w
	}
	return tinyWorld
}

func TestGenerateDeterministicCounts(t *testing.T) {
	w := world(t)
	if len(w.Providers) != 11+w.Scale.GenericProviders {
		t.Errorf("providers = %d", len(w.Providers))
	}
	if len(w.Nameservers) == 0 {
		t.Fatal("no nameservers")
	}
	if len(w.Targets) < w.Scale.Targets {
		t.Errorf("targets = %d", len(w.Targets))
	}
	if len(w.Resolvers.Resolvers) != w.Scale.OpenResolvers {
		t.Errorf("resolvers = %d", len(w.Resolvers.Resolvers))
	}
	if w.Plants.Created == 0 || w.Plants.Created > w.Plants.Attempted {
		t.Errorf("plants: %+v", w.Plants)
	}
	if len(w.Reports) != len(w.Samples) {
		t.Errorf("reports %d != samples %d", len(w.Reports), len(w.Samples))
	}
}

func TestEveryTargetResolves(t *testing.T) {
	w := world(t)
	rec := w.Resolvers.Resolvers[1].Resolver()
	for _, target := range w.Targets {
		addrs, err := rec.LookupA(context.Background(), target)
		if err != nil || len(addrs) == 0 {
			t.Errorf("target %s does not resolve: %v %v", target, addrs, err)
		}
	}
}

func TestCaseStudyWiring(t *testing.T) {
	w := world(t)
	cs := w.Case
	if len(cs.SPFNS) != 11 {
		t.Errorf("SPF nameservers = %d, want 11 (Namecheap + CSC)", len(cs.SPFNS))
	}
	providers := map[string]bool{}
	for _, ns := range cs.SPFNS {
		providers[ns.Provider] = true
	}
	if len(providers) != 2 {
		t.Errorf("SPF providers = %v, want 2", providers)
	}
	if len(cs.SPFServers) != 3 {
		t.Fatalf("SPF servers = %d", len(cs.SPFServers))
	}
	// Three IPs in the same /24 (§5.3).
	a, b, c := cs.SPFServers[0].As4(), cs.SPFServers[1].As4(), cs.SPFServers[2].As4()
	if a[0] != b[0] || a[1] != b[1] || a[2] != b[2] || a[2] != c[2] {
		t.Errorf("SPF servers not in one /24: %v", cs.SPFServers)
	}
	// Specter's C2 is flagged by none of the 74 vendors.
	if w.Intel.IsMalicious(cs.SpecterC2) {
		t.Error("Specter C2 should be unflagged by vendors")
	}
	if !w.Intel.IsMalicious(cs.DarkIoTC2) {
		t.Error("Dark.IoT C2 should be vendor-flagged")
	}
	if len(cs.DarkIoTSamples) != 3 || len(cs.SpecterSamples) != 3 || len(cs.SPFSamples) != 6 {
		t.Errorf("sample counts: %d %d %d", len(cs.DarkIoTSamples), len(cs.SpecterSamples), len(cs.SPFSamples))
	}
}

func TestCaseStudySamplesSucceed(t *testing.T) {
	w := world(t)
	byName := map[string]bool{}
	for _, rep := range w.Reports {
		if rep.Err == nil {
			byName[rep.Sample.Name] = true
		}
	}
	for _, s := range w.Case.DarkIoTSamples {
		if !byName[s.Name] {
			t.Errorf("sample %s failed", s.Name)
		}
	}
	for _, s := range w.Case.SpecterSamples {
		if !byName[s.Name] {
			t.Errorf("sample %s failed", s.Name)
		}
	}
	for _, s := range w.Case.SPFSamples {
		if !byName[s.Name] {
			t.Errorf("sample %s failed", s.Name)
		}
	}
}

// TestFullPipelineShape is the package's end-to-end check: URHunter over the
// tiny world must reproduce the paper's qualitative results.
func TestFullPipelineShape(t *testing.T) {
	w := world(t)
	cfg := w.URHunterConfig()
	pipe := core.NewPipeline(cfg)
	res, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if len(res.URs) == 0 {
		t.Fatal("no URs collected")
	}
	counts := res.CategoryCounts()
	t.Logf("categories: %v (total %d, queries %d)", counts, len(res.URs), res.Queries)
	for _, cat := range []core.Category{core.CategoryCorrect, core.CategoryProtective,
		core.CategoryMalicious, core.CategoryUnknown} {
		if counts[cat] == 0 {
			t.Errorf("no URs in category %v", cat)
		}
	}

	// Suspicious set exists and the malicious share is in a plausible band
	// around the paper's 25.41%.
	if len(res.Suspicious) == 0 {
		t.Fatal("no suspicious URs")
	}
	malicious := counts[core.CategoryMalicious]
	share := float64(malicious) / float64(len(res.Suspicious))
	if share < 0.08 || share > 0.60 {
		t.Errorf("malicious share of suspicious = %.2f, out of plausible band", share)
	}

	// Table 1 consistency.
	rows := res.Table1()
	if len(rows) != 3 {
		t.Fatalf("table1 rows = %d", len(rows))
	}
	total := rows[2]
	if total.URs != len(res.Suspicious) {
		t.Errorf("table1 total URs %d != suspicious %d", total.URs, len(res.Suspicious))
	}
	if total.MaliciousURs != malicious {
		t.Errorf("table1 malicious %d != %d", total.MaliciousURs, malicious)
	}
	aRow, txtRow := rows[0], rows[1]
	if aRow.URs == 0 || txtRow.URs == 0 {
		t.Error("a record type row is empty")
	}
	// TXT malicious rate must be far below A's (Table 1: 3.08% vs 28.92%).
	aRate := float64(aRow.MaliciousURs) / float64(aRow.URs)
	txtRate := float64(txtRow.MaliciousURs) / float64(txtRow.URs)
	if txtRate >= aRate {
		t.Errorf("TXT malicious rate %.3f >= A rate %.3f", txtRate, aRate)
	}

	// Figure 2: Cloudflare must dominate total URs.
	fig2 := res.Figure2(5)
	if len(fig2) < 3 {
		t.Fatalf("figure2 providers = %d", len(fig2))
	}
	if fig2[0].Provider != "Cloudflare" {
		t.Errorf("top provider = %s, want Cloudflare", fig2[0].Provider)
	}
	if fig2[0].Total() < 2*fig2[1].Total() {
		t.Errorf("Cloudflare does not dominate: %d vs %d", fig2[0].Total(), fig2[1].Total())
	}

	// Figure 3(a): all three evidence classes present.
	f3a := res.Figure3a()
	if f3a.IntelOnly == 0 || f3a.IDSOnly == 0 || f3a.Both == 0 {
		t.Errorf("figure3a = %+v", f3a)
	}

	// Figure 3(b): the 1-2 bucket dominates.
	f3b := res.Figure3b()
	if f3b["1-2"] <= f3b["3-4"] || f3b["1-2"] <= f3b["7-11"] {
		t.Errorf("figure3b = %v", f3b)
	}

	// Figure 3(c): Trojan Activity is the top alert class.
	f3c := res.Figure3c()
	trojan := f3c["Trojan Activity"]
	for class, n := range f3c {
		if class != "Trojan Activity" && n > trojan {
			t.Errorf("class %s (%d) exceeds Trojan Activity (%d)", class, n, trojan)
		}
	}

	// Figure 3(d): Trojan is the top tag.
	f3d := res.Figure3d()
	trojanTag := f3d["Trojan"]
	for tag, n := range f3d {
		if tag != "Trojan" && n > trojanTag {
			t.Errorf("tag %s (%d) exceeds Trojan (%d)", tag, n, trojanTag)
		}
	}

	// §5.2: malicious TXT URs are overwhelmingly email-related.
	email, malTXT := res.TXTEmailShare()
	if malTXT == 0 {
		t.Error("no malicious TXT URs")
	} else if float64(email)/float64(malTXT) < 0.6 {
		t.Errorf("email share = %d/%d", email, malTXT)
	}

	// §4.2 validation: zero false negatives on delegated records.
	totalFN, falseNeg, err := pipe.FalseNegativeCheck(context.Background(), res)
	if err != nil {
		t.Fatalf("FN check: %v", err)
	}
	if totalFN == 0 {
		t.Error("FN check evaluated nothing")
	}
	if falseNeg != 0 {
		t.Errorf("false negatives = %d of %d", falseNeg, totalFN)
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "paper", ""} {
		if _, ok := ByName(name); !ok {
			t.Errorf("scale %q not found", name)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("bogus scale resolved")
	}
}

func TestCaseStudyURsCollected(t *testing.T) {
	w := world(t)
	cfg := w.URHunterConfig()
	pipe := core.NewPipeline(cfg)
	res, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The speedtest.net masquerading SPF must be in the malicious set.
	foundSPF := false
	for _, u := range res.Suspicious {
		if u.Domain == "speedtest.net" && u.Type == dns.TypeTXT &&
			u.Category == core.CategoryMalicious {
			foundSPF = true
			if !u.TXTClass.EmailRelated() {
				t.Errorf("SPF UR classified as %s", u.TXTClass)
			}
		}
	}
	if !foundSPF {
		t.Error("masquerading SPF UR not flagged malicious")
	}
	// Specter's ibm.com UR must be malicious via IDS evidence despite zero
	// vendor flags.
	foundSpecter := false
	for _, u := range res.Suspicious {
		if u.Domain == "ibm.com" && u.Category == core.CategoryMalicious &&
			u.Server.Provider == "ClouDNS" {
			foundSpecter = true
			if u.MaliciousByIntel {
				t.Error("Specter UR should not be intel-flagged")
			}
			if !u.MaliciousByIDS {
				t.Error("Specter UR should be IDS-flagged")
			}
		}
	}
	if !foundSpecter {
		t.Error("Specter ibm.com UR not flagged malicious")
	}
}

func TestHyperscalersSelfHost(t *testing.T) {
	w := world(t)
	// google.com must resolve, but no measured provider hosts it.
	rec := w.Resolvers.Resolvers[2].Resolver()
	addrs, err := rec.LookupA(context.Background(), "google.com")
	if err != nil || len(addrs) == 0 {
		t.Fatalf("google.com does not resolve: %v %v", addrs, err)
	}
	for _, p := range w.Providers {
		for _, hz := range p.ZonesFor("google.com") {
			if hz.Account.ID == "owner-google.com" {
				t.Errorf("google.com legitimately hosted at %s", p.Name)
			}
		}
	}
	ns := w.Registry.Delegation("google.com")
	if len(ns) != 1 || ns[0] != "ns1.google.com" {
		t.Errorf("google.com delegation = %v", ns)
	}
}

func TestPlantTXTVariety(t *testing.T) {
	w := world(t)
	// The TXT plant mix must include all three payload families somewhere in
	// the world: IP-less commands, SPF masquerades, and verification tokens.
	kinds := map[string]bool{}
	for _, p := range w.Providers {
		for _, d := range p.HostedDomains() {
			for _, hz := range p.ZonesFor(d) {
				for _, rr := range hz.Zone.Records() {
					if rr.Type() != dns.TypeTXT {
						continue
					}
					s := rr.Data.String()
					switch {
					case strings.Contains(s, "cmd="):
						kinds["command"] = true
					case strings.Contains(s, "v=spf1"):
						kinds["spf"] = true
					case strings.Contains(s, "verification="):
						kinds["verification"] = true
					case strings.Contains(s, "v=DMARC1"):
						kinds["dmarc"] = true
					case strings.Contains(s, "cfg srv="):
						kinds["config"] = true
					}
				}
			}
		}
	}
	for _, want := range []string{"command", "spf"} {
		if !kinds[want] {
			t.Errorf("no %s TXT plants in the world (got %v)", want, kinds)
		}
	}
}
