package scenario

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/core"
	"repro/internal/dns"
	"repro/internal/hosting"
	"repro/internal/ids"
	"repro/internal/ipam"
	"repro/internal/pdns"
	"repro/internal/psl"
	"repro/internal/registry"
	"repro/internal/resolver"
	"repro/internal/sandbox"
	"repro/internal/simnet"
	"repro/internal/threatintel"
	"repro/internal/tranco"
	"repro/internal/websim"
)

// Now is the virtual measurement date (the paper's Apr 2022 sweep).
var Now = time.Date(2022, 4, 15, 0, 0, 0, 0, time.UTC)

// CaseStudy bundles the handles the §5.3 experiments need.
type CaseStudy struct {
	ClouDNSNS   netip.Addr // one ClouDNS nameserver carrying the family URs
	EmerDNSAddr netip.Addr
	OpenNICName dns.Name

	DarkIoTC2  netip.Addr
	SpecterC2  netip.Addr
	SPFServers []netip.Addr // the three same-/24 addresses
	SPFNS      []core.NameserverInfo

	DarkIoTSamples []*sandbox.Sample
	SpecterSamples []*sandbox.Sample
	SPFSamples     []*sandbox.Sample
}

// PlantStats reports attacker zone-creation outcomes.
type PlantStats struct {
	Attempted int
	Created   int
	Refusals  map[hosting.RefusalReason]int
}

// World is a fully generated measurement universe.
type World struct {
	Scale Scale
	Seed  int64

	Fabric   *simnet.Fabric
	IPDB     *ipam.DB
	PSL      *psl.List
	Web      *websim.World
	Registry *registry.Registry
	PDNS     *pdns.Store
	Tranco   *tranco.List

	Providers      []*hosting.Provider
	ProviderByName map[string]*hosting.Provider
	Nameservers    []core.NameserverInfo

	Resolvers *resolver.Pool
	Targets   []dns.Name

	Intel   *threatintel.Aggregator
	IDS     *ids.Engine
	Sandbox *sandbox.Sandbox
	Samples []*sandbox.Sample
	Reports []*sandbox.Report

	CollectorAddr netip.Addr
	VictimAddr    netip.Addr

	EvidencedIPs []netip.Addr
	CleanIPs     []netip.Addr

	Case   CaseStudy
	Plants PlantStats

	rng         *rand.Rand
	attackerASN ipam.ASN
	selfHostASN ipam.ASN
	webASNs     []ipam.ASN
	// plantsByIP maps an attacker IP to (nameserver, domain) pairs whose UR
	// resolves to it — the retrieval options malware samples use.
	plantsByIP map[netip.Addr][]plantRef
	// idsIPs is the subset of EvidencedIPs that need sandbox-traffic
	// evidence (IDS-only or both).
	idsIPs   map[netip.Addr]bool
	intelIPs map[netip.Addr]bool
}

type plantRef struct {
	ns     netip.Addr
	domain dns.Name
	qtype  dns.Type
}

// Generate builds a world at the given scale, deterministic in seed, and
// runs the sandbox corpus so the analysis inputs are ready.
func Generate(scale Scale, seed int64) (*World, error) {
	w := &World{
		Scale:          scale,
		Seed:           seed,
		Fabric:         simnet.New(seed),
		IPDB:           ipam.New(),
		PSL:            psl.Default(),
		PDNS:           pdns.NewStore(),
		ProviderByName: make(map[string]*hosting.Provider),
		rng:            rand.New(rand.NewSource(seed)),
		plantsByIP:     make(map[netip.Addr][]plantRef),
		idsIPs:         make(map[netip.Addr]bool),
		intelIPs:       make(map[netip.Addr]bool),
	}
	w.Web = websim.NewWorld(w.Fabric)
	w.Tranco = tranco.Generate(scale.TrancoSize, seed+1)

	var err error
	if w.Registry, err = registry.New(w.Fabric, w.IPDB, w.PDNS); err != nil {
		return nil, err
	}
	if err := w.createTLDs(); err != nil {
		return nil, err
	}
	w.pickTargets()
	if err := w.createProviders(); err != nil {
		return nil, err
	}
	if err := w.hostLegitimateSites(); err != nil {
		return nil, err
	}
	roots := []netip.Addr{w.Registry.RootAddr()}
	if w.Resolvers, err = resolver.NewPool(w.Fabric, w.IPDB, roots, scale.OpenResolvers); err != nil {
		return nil, err
	}
	w.Intel = threatintel.NewAggregator(threatintel.DefaultVendorNames())
	w.IDS = ids.NewEngine(ids.DefaultRules()...)
	if err := w.buildAttackerInfrastructure(); err != nil {
		return nil, err
	}
	// Case studies claim their zones first: several target providers refuse
	// duplicate domains, so the random campaign must not squat them.
	if err := w.buildCaseStudies(); err != nil {
		return nil, err
	}
	if err := w.plantURs(); err != nil {
		return nil, err
	}
	w.buildBulkSamples()
	if err := w.setupSandbox(); err != nil {
		return nil, err
	}
	w.runSandbox()
	return w, nil
}

// createTLDs stands up every TLD and multi-label public suffix the world
// uses (single-label first, so gov.cn hangs off cn).
func (w *World) createTLDs() error {
	single := []dns.Name{
		"com", "net", "org", "io", "dev", "info", "test", "us", "cn", "uk",
		"de", "fr", "jp", "kr", "ru", "br", "in", "it", "nl", "na", "gd",
		"fm", "kp",
	}
	multi := []dns.Name{"gov.cn", "edu.cn", "co.uk", "com.br", "gov.kp", "edu.kp", "gov.gd", "edu.fm"}
	for _, t := range single {
		if err := w.Registry.CreateTLD(t, 2); err != nil {
			return err
		}
	}
	for _, t := range multi {
		if err := w.Registry.CreateTLD(t, 1); err != nil {
			return err
		}
	}
	return nil
}

// caseFQDNs are the case-study FQDN targets (§5.3 swept all FQDNs of the
// top sites; we include the ones the malware families use).
var caseFQDNs = []dns.Name{"api.gitlab.com", "raw.pastebin.com", "api.github.com"}

// caseSLDs must be in the target set regardless of scale (their paper ranks
// are pinned in the tranco generator, but small scales truncate above them).
var caseSLDs = []dns.Name{"github.com", "ibm.com", "speedtest.net", "gitlab.com", "pastebin.com"}

// pickTargets selects the measured domain set.
func (w *World) pickTargets() {
	seen := make(map[dns.Name]bool)
	add := func(d dns.Name) {
		if !seen[d] {
			seen[d] = true
			w.Targets = append(w.Targets, d)
		}
	}
	for _, d := range w.Tranco.Domains(w.Scale.Targets) {
		add(d)
	}
	for _, d := range caseSLDs {
		add(d)
	}
	for _, d := range caseFQDNs {
		add(d)
	}
}

func (w *World) deps(seed int64) hosting.Deps {
	return hosting.Deps{
		Fabric: w.Fabric, IPDB: w.IPDB, Registry: w.Registry, PSL: w.PSL,
		Web: w.Web, Roots: []netip.Addr{w.Registry.RootAddr()},
		Country: ipam.Countries[int(seed)%len(ipam.Countries)], Seed: seed,
	}
}

// createProviders stands up the named providers (Appendix C presets, the
// Figure 2 vendors, and the SPF case-study hosts) plus the generic fleet.
func (w *World) createProviders() error {
	scaleServers := func(p hosting.Policy) hosting.Policy {
		n := int(float64(p.ServerCount) * w.Scale.ServerScale)
		if n < 2 {
			n = 2
		}
		p.ServerCount = n
		return p
	}
	named := []hosting.Policy{
		scaleServers(hosting.PresetCloudflare()),
		scaleServers(hosting.PresetAmazon()),
		scaleServers(hosting.PresetClouDNS()),
		scaleServers(hosting.PresetGodaddy()),
		scaleServers(hosting.PresetTencent()),
		scaleServers(hosting.PresetAlibaba()),
		scaleServers(hosting.PresetBaidu()),
		scaleServers(akamaiPolicy()),
		scaleServers(nhnPolicy()),
		// The SPF case study needs exactly 11 nameservers across these two;
		// they are never scaled.
		namecheapPolicy(),
		cscPolicy(),
	}
	for i, pol := range named {
		if w.Scale.PostDisclosure {
			pol = hosting.PostDisclosure(pol, w.Tranco.Domains(25))
		}
		p, err := hosting.NewProvider(pol, w.deps(w.Seed+100+int64(i)))
		if err != nil {
			return fmt.Errorf("scenario: provider %s: %w", pol.Name, err)
		}
		w.addProvider(p)
	}
	for i := 0; i < w.Scale.GenericProviders; i++ {
		pol := w.genericPolicy(i)
		p, err := hosting.NewProvider(pol, w.deps(w.Seed+500+int64(i)))
		if err != nil {
			return fmt.Errorf("scenario: provider %s: %w", pol.Name, err)
		}
		w.addProvider(p)
	}
	return nil
}

func (w *World) addProvider(p *hosting.Provider) {
	w.Providers = append(w.Providers, p)
	w.ProviderByName[p.Name] = p
	for _, ns := range p.Nameservers() {
		w.Nameservers = append(w.Nameservers, core.NameserverInfo{
			Addr: ns.Addr, Host: ns.Host, Provider: p.Name,
		})
	}
}

// akamaiPolicy models Akamai Edge DNS: CDN provider with fleet-wide zone
// sync, which produces the large correct-UR bar of Figure 2.
func akamaiPolicy() hosting.Policy {
	return hosting.Policy{
		Name: "Akamai", InfraDomain: "akadns.test",
		NSAllocation: hosting.AccountFixed, ServerCount: 48, NSPerZone: 2,
		Verification: hosting.VerifyNone, ServeUnverified: true,
		AllowSubdomain: true, AllowSLD: true, AllowETLD: false,
		AllowDuplicateCrossUser: true,
		PaidSyncAllNS:           true,
		CDNEdges:                true,
	}
}

// nhnPolicy models NHN Cloud: a mid-size host serving protective records.
func nhnPolicy() hosting.Policy {
	return hosting.Policy{
		Name: "NHN Cloud", InfraDomain: "nhndns.test",
		NSAllocation: hosting.GlobalFixed, ServerCount: 3, NSPerZone: 2,
		Verification: hosting.VerifyNone, ServeUnverified: true,
		AllowSLD: true, AllowETLD: true,
		ProtectiveRecords: true,
	}
}

// namecheapPolicy and cscPolicy host the masquerading-SPF records (11
// nameservers across the two providers).
func namecheapPolicy() hosting.Policy {
	return hosting.Policy{
		Name: "Namecheap", InfraDomain: "registrar-servers.test",
		NSAllocation: hosting.GlobalFixed, ServerCount: 6, NSPerZone: 6,
		Verification: hosting.VerifyNone, ServeUnverified: true,
		AllowSubdomain: true, AllowSLD: true, AllowETLD: true,
	}
}

func cscPolicy() hosting.Policy {
	return hosting.Policy{
		Name: "CSC", InfraDomain: "cscdns.test",
		NSAllocation: hosting.GlobalFixed, ServerCount: 5, NSPerZone: 5,
		Verification: hosting.VerifyNone, ServeUnverified: true,
		AllowSubdomain: true, AllowSLD: true, AllowETLD: true,
	}
}

// genericPolicy synthesizes one of the "over 400" long-tail providers.
func (w *World) genericPolicy(i int) hosting.Policy {
	r := w.rng
	pol := hosting.Policy{
		Name:        fmt.Sprintf("Provider-%03d", i),
		InfraDomain: dns.Name(fmt.Sprintf("p%03d-dns.test", i)),
		NSAllocation: [3]hosting.NSAllocation{
			hosting.GlobalFixed, hosting.GlobalFixed, hosting.AccountFixed,
		}[r.Intn(3)],
		ServerCount:             2 + r.Intn(w.Scale.GenericServersAvg*2-2),
		NSPerZone:               2,
		Verification:            hosting.VerifyNone,
		ServeUnverified:         true,
		AllowSubdomain:          r.Float64() < 0.6,
		AllowSLD:                true,
		AllowETLD:               r.Float64() < 0.7,
		AllowDuplicateCrossUser: r.Float64() < 0.3,
		SupportsRetrieval:       r.Float64() < 0.4,
		ProtectiveRecords:       r.Float64() < 0.12,
		OpenRecursive:           r.Float64() < 0.02,
	}
	if pol.AllowUnregistered = r.Float64() < 0.25; pol.AllowUnregistered {
		pol.AllowSubdomain = true
	}
	// Long-tail protective providers run small fleets; large protective
	// fleets would crowd out the paper's Figure 2 ordering.
	if pol.ProtectiveRecords && pol.ServerCount > 2 {
		pol.ServerCount = 2
	}
	return pol
}
