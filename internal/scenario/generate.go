package scenario

import (
	"fmt"
	"net/netip"

	"repro/internal/authority"
	"repro/internal/core"
	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/hosting"
	"repro/internal/malware"
	"repro/internal/sandbox"
	"repro/internal/simnet"
	"repro/internal/threatintel"
	"repro/internal/websim"
	"repro/internal/zone"
)

// hostLegitimateSites gives every target domain a legitimate owner: a zone
// at a weighted-random provider, a website with a certificate, a delegation
// in the registry, passive-DNS history, and (for a fraction) a stale zone
// left behind at a previous provider.
func (w *World) hostLegitimateSites() error {
	// Web-hosting organizations the site IPs come from.
	for i := 0; i < 12; i++ {
		asn := w.IPDB.RegisterAS(fmt.Sprintf("WEBHOSTING-%02d", i),
			countryAt(w.rng.Intn(len(countryPool))), 2)
		w.webASNs = append(w.webASNs, asn)
	}
	for _, target := range w.Targets {
		if isCaseFQDN(target) {
			continue // served inside the SLD owner's zone below
		}
		if err := w.hostOneSite(target); err != nil {
			return err
		}
	}
	return nil
}

var countryPool = []string{"US", "DE", "JP", "FR", "NL", "KR", "SG", "BR", "IN", "GB"}

func countryAt(i int) string { return countryPool[i%len(countryPool)] }

func isCaseFQDN(d dns.Name) bool {
	for _, f := range caseFQDNs {
		if f == d {
			return true
		}
	}
	return false
}

// pickHostingProvider draws a provider by the Figure 2 calibration weights.
// Case-study domains avoid the providers their attackers need free.
func (w *World) pickHostingProvider(domain dns.Name) *hosting.Provider {
	avoid := map[string]bool{}
	for _, d := range caseSLDs {
		if d == domain {
			avoid["Namecheap"] = true
			avoid["CSC"] = true
			avoid["ClouDNS"] = true
		}
	}
	u := w.rng.Float64()
	acc := 0.0
	for _, hw := range hostingWeights {
		acc += hw.Weight
		if u < acc {
			if p, ok := w.ProviderByName[hw.Provider]; ok && !avoid[hw.Provider] {
				return p
			}
			break
		}
	}
	// Long tail: a random generic provider.
	for tries := 0; tries < 10; tries++ {
		p := w.Providers[w.rng.Intn(len(w.Providers))]
		if !avoid[p.Name] && p.AllowSLD {
			return p
		}
	}
	return w.ProviderByName["Godaddy"]
}

// selfHostedGiants run their own authoritative DNS in the real world (and
// sit on every provider's reserved list).
var selfHostedGiants = map[dns.Name]bool{
	"google.com": true, "facebook.com": true, "microsoft.com": true,
	"amazon.com": true, "apple.com": true,
}

func (w *World) hostOneSite(domain dns.Name) error {
	// The domain is registered first (registrar parking NS), so providers
	// that refuse unregistered domains see it as registered — the normal
	// order of operations for a real site.
	if err := w.Registry.SetDelegation(domain, []dns.Name{"ns1.registrar-parking.test"},
		nil, Now.AddDate(-4, 0, 0)); err != nil {
		return err
	}
	if selfHostedGiants[domain] {
		return w.hostSelfOperated(domain)
	}
	// Past delegation next, so PDNS history predates the current one.
	if w.rng.Float64() < w.Scale.PastDelegationFrac {
		if err := w.hostPastDelegation(domain); err != nil {
			return err
		}
	}

	var hz *hosting.HostedZone
	var provider *hosting.Provider
	for tries := 0; tries < 8; tries++ {
		provider = w.pickHostingProvider(domain)
		account := provider.OpenAccount("owner-"+string(domain), provider.PaidSyncAllNS)
		z, err := provider.CreateZone(account.ID, domain)
		if err == nil {
			hz = z
			break
		}
		if _, ok := hosting.IsRefusal(err); !ok {
			return err
		}
	}
	if hz == nil {
		// Every provider refused (the domain sits on reserved lists): the
		// owner runs their own authoritative DNS, like the hyperscalers do.
		return w.hostSelfOperated(domain)
	}

	asn := w.webASNs[w.rng.Intn(len(w.webASNs))]
	siteIP, err := w.IPDB.Allocate(asn)
	if err != nil {
		return err
	}
	hz.Zone.MustAddRR(fmt.Sprintf("%s 300 IN A %s", string(domain), siteIP))
	spf := fmt.Sprintf(`%s 300 IN TXT "v=spf1 ip4:%s -all"`, string(domain), siteIP)
	hz.Zone.MustAddRR(spf)
	// A quarter of the sites have a www host that passive DNS observed —
	// the raw material for the E17 subdomain-recovery experiment.
	if w.rng.Float64() < 0.25 {
		www := domain.Child("www")
		hz.Zone.MustAddRR(fmt.Sprintf("%s 300 IN A %s", string(www), siteIP))
		w.PDNS.Observe(www, dns.TypeA, siteIP.String(), Now.AddDate(0, -8, 0))
	}
	// A third of the sites run mail, for the MX extension sweep (E16).
	if w.rng.Float64() < 0.33 {
		mx := fmt.Sprintf("%s 300 IN MX 10 mail.%s", string(domain), string(domain))
		hz.Zone.MustAddRR(mx)
		w.PDNS.Observe(domain, dns.TypeMX, fmt.Sprintf("10 mail.%s.", string(domain)), Now.AddDate(-1, 0, 0))
	}
	// Case-study SLDs carry the FQDNs the malware families masquerade as.
	for _, f := range caseFQDNs {
		if f.IsProperSubdomainOf(domain) {
			hz.Zone.MustAddRR(fmt.Sprintf("%s 300 IN A %s", string(f), siteIP))
		}
	}

	if err := w.Web.Install(&websim.Site{
		Addr: siteIP, Kind: websim.KindBusiness, Title: string(domain),
		Cert: websim.NewCert(string(domain), "SimTrust CA", "www."+string(domain)),
	}); err != nil {
		return err
	}
	if provider.CDNEdges {
		provider.MarkGeoDistributed(hz)
	}
	// Delegation names at most two hosts, as real zone cuts do. Fleet-sync
	// providers still answer from every server — those answers are exactly
	// the "correct" undelegated records that dominate Figure 2.
	hosts := hz.NSHosts()
	if len(hosts) > 2 {
		hosts = hosts[:2]
	}
	if err := w.Registry.SetDelegation(domain, hosts, nil, Now.AddDate(-1, 0, 0)); err != nil {
		return err
	}
	// Under post-disclosure policies the zone is served only after the
	// provider confirms the delegation; the legitimate owner passes.
	if !hz.Served() {
		provider.RecheckNSDelegation(hz)
	}
	// Legitimate resolution history.
	w.PDNS.Observe(domain, dns.TypeA, siteIP.String(), Now.AddDate(-1, 0, 0))
	w.PDNS.Observe(domain, dns.TypeA, siteIP.String(), Now.AddDate(0, -1, 0))
	return nil
}

// hostSelfOperated stands up the owner's own authoritative server for a
// domain no hosting provider will accept (the reserved hyperscaler names).
func (w *World) hostSelfOperated(domain dns.Name) error {
	if w.selfHostASN == 0 {
		w.selfHostASN = w.IPDB.RegisterAS("SELFHOST-DNS", "US", 1)
	}
	nsAddr, err := w.IPDB.Allocate(w.selfHostASN)
	if err != nil {
		return err
	}
	asn := w.webASNs[w.rng.Intn(len(w.webASNs))]
	siteIP, err := w.IPDB.Allocate(asn)
	if err != nil {
		return err
	}
	d := string(domain)
	z := zone.New(domain)
	z.MustAddRR(fmt.Sprintf("%s 3600 IN SOA ns1.%s hostmaster.%s 1 7200 3600 1209600 300", d, d, d))
	z.MustAddRR(fmt.Sprintf("ns1.%s 3600 IN A %s", d, nsAddr))
	z.MustAddRR(fmt.Sprintf("%s 300 IN A %s", d, siteIP))
	z.MustAddRR(fmt.Sprintf(`%s 300 IN TXT "v=spf1 ip4:%s -all"`, d, siteIP))
	for _, f := range caseFQDNs {
		if f.IsProperSubdomainOf(domain) {
			z.MustAddRR(fmt.Sprintf("%s 300 IN A %s", string(f), siteIP))
		}
	}
	srv := authority.NewServer()
	if err := srv.AddZone(z); err != nil {
		return err
	}
	if _, err := dnsio.AttachSim(w.Fabric, nsAddr, srv); err != nil {
		return err
	}
	if err := w.Web.Install(&websim.Site{
		Addr: siteIP, Kind: websim.KindBusiness, Title: d,
		Cert: websim.NewCert(d, "SimTrust CA", "www."+d),
	}); err != nil {
		return err
	}
	nsHost := dns.CanonicalName("ns1." + d)
	if err := w.Registry.SetDelegation(domain, []dns.Name{nsHost},
		map[dns.Name]netip.Addr{nsHost: nsAddr}, Now.AddDate(-1, 0, 0)); err != nil {
		return err
	}
	w.PDNS.Observe(domain, dns.TypeA, siteIP.String(), Now.AddDate(-1, 0, 0))
	return nil
}

// hostPastDelegation leaves a stale zone at a previous provider with the
// domain's old address — a UR source URHunter must exclude via PDNS.
func (w *World) hostPastDelegation(domain dns.Name) error {
	provider := w.Providers[w.rng.Intn(len(w.Providers))]
	if !provider.AllowSLD || provider.CDNEdges {
		provider = w.ProviderByName["Godaddy"]
	}
	account := provider.OpenAccount("past-owner-"+string(domain), false)
	hz, err := provider.CreateZone(account.ID, domain)
	if err != nil {
		return nil // refused: no stale zone then
	}
	asn := w.webASNs[w.rng.Intn(len(w.webASNs))]
	oldIP, err := w.IPDB.Allocate(asn)
	if err != nil {
		return err
	}
	hz.Zone.MustAddRR(fmt.Sprintf("%s 300 IN A %s", string(domain), oldIP))
	// Half the abandoned sites now park; the other half still serve the old
	// page with the certificate of its era — for those, only passive DNS can
	// explain the stale record (the E14 ablation leans on this).
	site := &websim.Site{Addr: oldIP, Kind: websim.KindParking, Title: string(domain)}
	if w.rng.Float64() < 0.5 {
		site.Kind = websim.KindBusiness
		site.Cert = websim.NewCert(string(domain), "LegacyTrust CA")
	}
	if err := w.Web.Install(site); err != nil {
		return err
	}
	// The delegation lived three years ago and was observed then.
	if err := w.Registry.SetDelegation(domain, hz.NSHosts(), nil, Now.AddDate(-3, 0, 0)); err != nil {
		return err
	}
	w.PDNS.Observe(domain, dns.TypeA, oldIP.String(), Now.AddDate(-3, 0, 0))
	w.PDNS.Observe(domain, dns.TypeA, oldIP.String(), Now.AddDate(-2, -6, 0))
	return nil
}

// buildAttackerInfrastructure allocates the malicious and clean attacker IP
// pools, assigns threat-intel evidence per the Figure 3 calibrations, and
// stands up the C2/SMTP endpoints.
func (w *World) buildAttackerInfrastructure() error {
	w.attackerASN = w.IPDB.RegisterAS("BULLETPROOF-HOSTING", "RU", 4)
	secondASN := w.IPDB.RegisterAS("OFFSHORE-VPS", "SA", 4)

	for i := 0; i < w.Scale.EvidencedIPs; i++ {
		asn := w.attackerASN
		if i%2 == 1 {
			asn = secondASN
		}
		ip, err := w.IPDB.Allocate(asn)
		if err != nil {
			return err
		}
		w.EvidencedIPs = append(w.EvidencedIPs, ip)
		u := w.rng.Float64()
		switch {
		case u < fracIntelOnly:
			w.intelIPs[ip] = true
		case u < fracIntelOnly+fracIDSOnly:
			w.idsIPs[ip] = true
		default:
			w.intelIPs[ip] = true
			w.idsIPs[ip] = true
		}
		if w.intelIPs[ip] {
			w.flagWithVendors(ip)
		}
		if err := w.installAttackerEndpoint(ip); err != nil {
			return err
		}
	}
	for i := 0; i < w.Scale.CleanAttackerIPs; i++ {
		asn := w.attackerASN
		if i%2 == 1 {
			asn = secondASN
		}
		ip, err := w.IPDB.Allocate(asn)
		if err != nil {
			return err
		}
		w.CleanIPs = append(w.CleanIPs, ip)
		if err := w.installAttackerEndpoint(ip); err != nil {
			return err
		}
	}
	return nil
}

// installAttackerEndpoint opens the C2 ports the bulk markers use plus SMTP.
func (w *World) installAttackerEndpoint(ip netip.Addr) error {
	for _, port := range []uint16{443, 4444, 8080, 9001} {
		if err := malware.InstallC2(w.Fabric, ip, port); err != nil {
			return err
		}
	}
	return malware.InstallSMTPDrop(w.Fabric, ip)
}

// flagWithVendors applies the Figure 3(b) vendor-count distribution and the
// Figure 3(d) tag probabilities to one IP.
func (w *World) flagWithVendors(ip netip.Addr) {
	u := w.rng.Float64()
	var count int
	switch {
	case u < fracVendors1to2:
		count = 1 + w.rng.Intn(2)
	case u < fracVendors1to2+fracVendors3to4:
		count = 3 + w.rng.Intn(2)
	case u < fracVendors1to2+fracVendors3to4+fracVendors5to6:
		count = 5 + w.rng.Intn(2)
	default:
		count = 7 + w.rng.Intn(5)
	}
	var tags []threatintel.Tag
	for _, tp := range tagProbabilities {
		if w.rng.Float64() < tp.Prob {
			tags = append(tags, threatintel.Tag(tp.Tag))
		}
	}
	if len(tags) == 0 {
		tags = []threatintel.Tag{threatintel.TagTrojan}
	}
	vendors := w.Intel.Vendors()
	perm := w.rng.Perm(len(vendors))
	for i := 0; i < count && i < len(perm); i++ {
		vendors[perm[i]].Flag(ip, tags...)
	}
}

// plantWeights skews the attacker campaign toward the large permissive
// providers, as the paper's provider breakdown shows (Amazon's bar carries a
// visible unknown+malicious share).
var plantWeights = map[string]int{
	"Amazon": 20, "Cloudflare": 5, "ClouDNS": 3, "Godaddy": 4,
	"Tencent Cloud": 2, "Alibaba Cloud": 2, "Akamai": 2,
}

// plantURs runs the attacker campaign: zone-creation attempts across all
// providers with record mixes calibrated to Table 1.
func (w *World) plantURs() error {
	w.Plants.Refusals = make(map[hosting.RefusalReason]int)
	// Malicious plants only hit a bounded share of the targets (Table 1:
	// 68.48% of targets carry malicious URs).
	pool := make([]dns.Name, 0, len(w.Targets))
	for i, d := range w.Targets {
		if float64(i)/float64(len(w.Targets)) < maliciousDomainPoolFrac {
			pool = append(pool, d)
		}
	}

	// Weighted provider pool. A slice of the generic long tail is skipped by
	// attackers entirely, and evidenced (malicious) plants hit a further
	// subset — Table 1 finds malicious URs at 71% of affected providers.
	var weighted []*hosting.Provider
	maliciousOK := make(map[string]bool)
	for i, p := range w.Providers {
		wgt, ok := plantWeights[p.Name]
		if !ok {
			if w.rng.Float64() < 0.15 {
				continue // attackers never bother with this provider
			}
			wgt = 1
		}
		for k := 0; k < wgt; k++ {
			weighted = append(weighted, p)
		}
		if ok || i%4 != 0 {
			maliciousOK[p.Name] = true
		}
	}

	for i := 0; i < w.Scale.PlantZones; i++ {
		provider := weighted[w.rng.Intn(len(weighted))]
		account := provider.OpenAccount(
			fmt.Sprintf("mal-%s-%d", provider.Name, w.rng.Intn(10)), false)

		isA := w.rng.Float64() < fracAPlants
		var evidenced bool
		var domain dns.Name
		if isA {
			evidenced = w.rng.Float64() < fracAMalicious
		} else {
			evidenced = w.rng.Float64() < fracTXTWithEvidencedIP
		}
		if evidenced && !maliciousOK[provider.Name] {
			evidenced = false
		}
		if evidenced {
			domain = pool[w.rng.Intn(len(pool))]
		} else {
			domain = w.Targets[w.rng.Intn(len(w.Targets))]
		}

		w.Plants.Attempted++
		hz, err := provider.CreateZone(account.ID, domain)
		if err != nil {
			if reason, ok := hosting.IsRefusal(err); ok {
				w.Plants.Refusals[reason]++
				continue
			}
			return err
		}
		w.Plants.Created++

		if isA {
			ip := w.pickAttackerIP(evidenced)
			hz.Zone.MustAddRR(fmt.Sprintf("%s 120 IN A %s", string(domain), ip))
			w.recordPlant(ip, hz, domain, dns.TypeA)
			// Some attackers hide one level down: a www zone the top-domain
			// sweep never queries. Only subdomain recovery (E17) finds it.
			if provider.AllowSubdomain && w.rng.Float64() < 0.05 {
				www := domain.Child("www")
				if sub, err := provider.CreateZone(account.ID, www); err == nil {
					sub.Zone.MustAddRR(fmt.Sprintf("%s 120 IN A %s", string(www), ip))
					w.recordPlant(ip, sub, www, dns.TypeA)
				}
			}
			// A few attacker zones also carry an MX pointing into attacker
			// infrastructure — the record type the paper's future work
			// singles out.
			if w.rng.Float64() < 0.06 {
				hz.Zone.MustAddRR(fmt.Sprintf("%s 120 IN MX 10 relay%d.bulk-mail.biz",
					string(domain), w.rng.Intn(100)))
			}
		} else {
			w.plantTXT(hz, domain, evidenced)
		}
	}
	return nil
}

func (w *World) pickAttackerIP(evidenced bool) netip.Addr {
	if evidenced {
		return w.EvidencedIPs[w.rng.Intn(len(w.EvidencedIPs))]
	}
	return w.CleanIPs[w.rng.Intn(len(w.CleanIPs))]
}

func (w *World) recordPlant(ip netip.Addr, hz *hosting.HostedZone, domain dns.Name, qt dns.Type) {
	for _, nsAddr := range hz.NSAddrs() {
		w.plantsByIP[ip] = append(w.plantsByIP[ip], plantRef{ns: nsAddr, domain: domain, qtype: qt})
	}
}

// plantTXT writes the TXT payload mix: encrypted commands without IPs,
// masquerading SPF/DMARC with attacker IPs, and verification-style tokens.
func (w *World) plantTXT(hz *hosting.HostedZone, domain dns.Name, evidenced bool) {
	d := string(domain)
	switch {
	case evidenced:
		ip := w.pickAttackerIP(true)
		if w.rng.Float64() < fracMaliciousEmailTXT {
			if w.rng.Float64() < 0.8 {
				hz.Zone.MustAddRR(fmt.Sprintf(`%s 120 IN TXT "v=spf1 ip4:%s ~all"`, d, ip))
			} else {
				hz.Zone.MustAddRR(fmt.Sprintf(`%s 120 IN TXT "v=DMARC1; p=none; rua=mailto:ops@%s"`, d, ip))
			}
		} else {
			hz.Zone.MustAddRR(fmt.Sprintf(`%s 120 IN TXT "cfg srv=%s port=443"`, d, ip))
		}
		w.recordPlant(ip, hz, domain, dns.TypeTXT)
	case w.rng.Float64() < fracTXTNoIP:
		// Encrypted command blobs: no IP, excluded from malicious analysis.
		hz.Zone.MustAddRR(fmt.Sprintf(`%s 120 IN TXT "cmd=%08x%08x"`, d, w.rng.Uint32(), w.rng.Uint32()))
	case w.rng.Float64() < 0.5:
		ip := w.pickAttackerIP(false)
		hz.Zone.MustAddRR(fmt.Sprintf(`%s 120 IN TXT "v=spf1 ip4:%s -all"`, d, ip))
		w.recordPlant(ip, hz, domain, dns.TypeTXT)
	default:
		hz.Zone.MustAddRR(fmt.Sprintf(`%s 120 IN TXT "xx-site-verification=%08x"`, d, w.rng.Uint32()))
	}
}

// buildCaseStudies reproduces §5.3: the Dark.IoT and Specter URs on ClouDNS,
// the EmerDNS service, and the masquerading speedtest.net SPF on Namecheap +
// CSC with three same-/24 servers.
func (w *World) buildCaseStudies() error {
	cloudns := w.ProviderByName["ClouDNS"]
	cs := &w.Case
	cs.OpenNICName = "controller.dark.libre"

	darkC2, err := w.IPDB.Allocate(w.attackerASN)
	if err != nil {
		return err
	}
	specterC2, err := w.IPDB.Allocate(w.attackerASN)
	if err != nil {
		return err
	}
	cs.DarkIoTC2, cs.SpecterC2 = darkC2, specterC2
	for _, ip := range []netip.Addr{darkC2, specterC2} {
		if err := w.installAttackerEndpoint(ip); err != nil {
			return err
		}
	}
	// Dark.IoT's C2 is known to a few vendors; Specter's is flagged by none
	// of the 74 (the paper's point) and is caught by IDS evidence alone.
	w.flagWithVendors(darkC2)
	w.intelIPs[darkC2] = true
	w.idsIPs[darkC2] = true
	w.idsIPs[specterC2] = true

	account := cloudns.OpenAccount("darkiot-op", false)
	for _, plant := range []struct {
		domain dns.Name
		ip     netip.Addr
	}{
		{"api.gitlab.com", darkC2},
		{"raw.pastebin.com", darkC2},
		{cs.OpenNICName, darkC2},
		{"ibm.com", specterC2},
		{"api.github.com", specterC2},
	} {
		hz, err := cloudns.CreateZone(account.ID, plant.domain)
		if err != nil {
			return fmt.Errorf("scenario: case-study plant %s: %w", plant.domain.String(), err)
		}
		hz.Zone.MustAddRR(fmt.Sprintf("%s 120 IN A %s", string(plant.domain), plant.ip))
		w.recordPlant(plant.ip, hz, plant.domain, dns.TypeA)
	}
	cs.ClouDNSNS = cloudns.NameserverAddrs()[0]

	// EmerDNS.
	emerAddr, err := w.IPDB.Allocate(w.attackerASN)
	if err != nil {
		return err
	}
	emer := malware.NewEmerDNS(map[dns.Name]netip.Addr{cs.OpenNICName: darkC2})
	if _, err := dnsio.AttachSim(w.Fabric, emerAddr, emer); err != nil {
		return err
	}
	cs.EmerDNSAddr = emerAddr

	// Masquerading SPF: three consecutive addresses in one /24.
	spfASN := w.IPDB.RegisterAS("SPF-CAMPAIGN-NET", "NL", 1)
	for i := 0; i < 3; i++ {
		ip, err := w.IPDB.Allocate(spfASN)
		if err != nil {
			return err
		}
		cs.SPFServers = append(cs.SPFServers, ip)
		if err := w.installAttackerEndpoint(ip); err != nil {
			return err
		}
		// All three are labeled malicious by threat intelligence (§5.3).
		w.flagWithVendors(ip)
		w.intelIPs[ip] = true
		w.idsIPs[ip] = true
	}
	spfTXT := fmt.Sprintf(`speedtest.net 120 IN TXT "v=spf1 ip4:%s ip4:%s ip4:%s -all"`,
		cs.SPFServers[0], cs.SPFServers[1], cs.SPFServers[2])
	for _, providerName := range []string{"Namecheap", "CSC"} {
		p := w.ProviderByName[providerName]
		acct := p.OpenAccount("spf-op", false)
		hz, err := p.CreateZone(acct.ID, "speedtest.net")
		if err != nil {
			return fmt.Errorf("scenario: SPF plant at %s: %w", providerName, err)
		}
		hz.Zone.MustAddRR(spfTXT)
		for _, ip := range cs.SPFServers {
			w.recordPlant(ip, hz, "speedtest.net", dns.TypeTXT)
		}
		for _, ns := range hz.NS {
			cs.SPFNS = append(cs.SPFNS, core.NameserverInfo{
				Addr: ns.Addr, Host: ns.Host, Provider: p.Name,
			})
		}
	}

	// The malware samples.
	cs.DarkIoTSamples = []*sandbox.Sample{
		malware.DarkIoT2021(1, cs.ClouDNSNS, cs.EmerDNSAddr, cs.OpenNICName),
		malware.DarkIoT2021(2, cs.ClouDNSNS, cs.EmerDNSAddr, cs.OpenNICName),
		malware.DarkIoT2023(cs.ClouDNSNS, cs.OpenNICName),
	}
	cs.SpecterSamples = []*sandbox.Sample{
		malware.Specter(1, cs.ClouDNSNS),
		malware.Specter(2, cs.ClouDNSNS),
		malware.Specter(3, cs.ClouDNSNS),
	}
	spfNS := cs.SPFNS[0].Addr
	cs.SPFSamples = []*sandbox.Sample{
		malware.Micropsia(0, spfNS),
		malware.Micropsia(1, spfNS),
		malware.AgentTesla(0, spfNS),
		malware.AgentTesla(1, spfNS),
		malware.AgentTesla(2, spfNS),
		malware.HarmlessSample(spfNS),
	}
	w.Samples = append(w.Samples, cs.DarkIoTSamples...)
	w.Samples = append(w.Samples, cs.SpecterSamples...)
	w.Samples = append(w.Samples, cs.SPFSamples...)
	return nil
}

// buildBulkSamples creates the measurement-scale malware corpus: every
// IDS-evidenced IP gets at least one specimen whose traffic the IDS will
// alert on, with markers drawn from the Figure 3(c) class mix.
func (w *World) buildBulkSamples() {
	// IPs needing IDS evidence but with no planted UR get one forced plant
	// on ClouDNS (most permissive) so a retrieval path exists.
	cloudns := w.ProviderByName["ClouDNS"]
	amazon := w.ProviderByName["Amazon"]
	forced := cloudns.OpenAccount("bulk-op", false)
	forcedAmazon := amazon.OpenAccount("bulk-op", false)
	var idsList []netip.Addr
	for _, ip := range w.EvidencedIPs {
		if w.idsIPs[ip] {
			idsList = append(idsList, ip)
		}
	}
	// Every evidenced IP must appear in at least one UR, or its calibrated
	// evidence (intel-only included) would never surface in the measurement.
	for _, ip := range w.EvidencedIPs {
		if len(w.plantsByIP[ip]) > 0 {
			continue
		}
		domain := w.Targets[w.rng.Intn(len(w.Targets))]
		hz, err := cloudns.CreateZone(forced.ID, domain)
		if err != nil {
			// ClouDNS refuses duplicates; Amazon allows them.
			if hz, err = amazon.CreateZone(forcedAmazon.ID, domain); err != nil {
				continue
			}
		}
		hz.Zone.MustAddRR(fmt.Sprintf("%s 120 IN A %s", string(domain), ip))
		w.recordPlant(ip, hz, domain, dns.TypeA)
	}

	pickMarker := func() (string, uint16) {
		u := w.rng.Float64()
		acc := 0.0
		for _, m := range alertMarkerMix {
			acc += m.Weight
			if u < acc {
				return m.Marker, m.Port
			}
		}
		last := alertMarkerMix[len(alertMarkerMix)-1]
		return last.Marker, last.Port
	}

	n := w.Scale.BulkSamples
	for i := 0; i < n; i++ {
		ip := idsList[i%len(idsList)]
		refs := w.plantsByIP[ip]
		if len(refs) == 0 {
			continue
		}
		ref := refs[w.rng.Intn(len(refs))]
		marker, port := pickMarker()
		w.Samples = append(w.Samples, malware.GenericURSample(
			i, "bulk", ref.ns, ref.domain, ref.qtype, marker, port))
	}
}

// setupSandbox allocates the victim machine and its default resolver.
func (w *World) setupSandbox() error {
	victimASN := w.IPDB.RegisterAS("VICTIM-ENTERPRISE", "US", 1)
	victim, err := w.IPDB.Allocate(victimASN)
	if err != nil {
		return err
	}
	w.VictimAddr = victim
	collectASN := w.IPDB.RegisterAS("MEASUREMENT-NET", "US", 1)
	if w.CollectorAddr, err = w.IPDB.Allocate(collectASN); err != nil {
		return err
	}
	// The victim's default resolver is the first open resolver.
	defaultRes := w.Resolvers.Resolvers[0].Addr
	w.Sandbox = sandbox.New(w.Fabric, victim, defaultRes)
	// Connectivity-check target used by several families.
	echo := simnet.HandlerFunc(func(_ netip.Addr, _ []byte) []byte { return []byte("ok") })
	_ = w.Fabric.Listen(simnet.Endpoint{Addr: netip.MustParseAddr("93.184.216.34"), Port: 80}, echo)
	return nil
}

// runSandbox evaluates the whole corpus.
func (w *World) runSandbox() {
	w.Reports = w.Sandbox.RunAll(w.Samples)
}

// URHunterConfig assembles the measurement configuration over this world.
func (w *World) URHunterConfig() *core.Config {
	resolvers := make([]netip.Addr, len(w.Resolvers.Resolvers))
	for i, r := range w.Resolvers.Resolvers {
		resolvers[i] = r.Addr
	}
	return &core.Config{
		Fabric:         w.Fabric,
		IPDB:           w.IPDB,
		Web:            w.Web,
		SrcAddr:        w.CollectorAddr,
		Targets:        w.Targets,
		Nameservers:    w.Nameservers,
		OpenResolvers:  resolvers,
		DelegatedNS:    w.Registry.Delegation,
		PDNS:           w.PDNS,
		Now:            Now,
		Intel:          w.Intel,
		IDS:            w.IDS,
		SandboxReports: w.Reports,
		Seed:           w.Seed,
		Parallelism:    w.Scale.Parallelism,
	}
}
