// Package scenario generates the world URHunter measures: the delegation
// hierarchy, hosting providers with their Appendix C policies, legitimate
// customers (including CDN-style geo-distributed sites and past-delegation
// churn), open resolvers, attacker accounts planting undelegated records,
// the malicious-IP population with calibrated threat-intelligence coverage,
// the malware corpus (case-study families plus bulk samples), and the C2 /
// SMTP endpoints their traffic lands on.
//
// Calibration targets come from the paper's published distributions —
// Table 1's malicious shares per record type, Figure 2's provider ordering,
// Figure 3(a)'s evidence split, 3(b)'s vendor counts, 3(c)'s alert classes,
// 3(d)'s tag frequencies, and §5.2's 90.95% email-related share. Absolute
// counts scale with the chosen Scale; proportions are scale-invariant.
package scenario

// Scale sizes a generated world.
type Scale struct {
	Name string

	// TrancoSize is the full ranked list length (1M in the paper).
	TrancoSize int
	// Targets is the number of top domains measured (2,000 in the paper).
	Targets int
	// OpenResolvers is the vantage-point count (3,000 in the paper).
	OpenResolvers int

	// GenericProviders is the number of synthetic providers beyond the named
	// ones (the paper's "over 400 providers").
	GenericProviders int
	// ServerScale multiplies the named presets' nameserver fleets.
	ServerScale float64
	// GenericServersAvg is the mean fleet size of generic providers.
	GenericServersAvg int

	// PlantZones is the number of attacker zone-creation attempts.
	PlantZones int
	// EvidencedIPs sizes the malicious IP pool with intel/IDS evidence.
	EvidencedIPs int
	// CleanAttackerIPs sizes the attacker IP pool with no evidence (the
	// "unknown" suspicious mass).
	CleanAttackerIPs int
	// BulkSamples is the number of generated malware specimens beyond the
	// case studies.
	BulkSamples int

	// PastDelegationFrac is the fraction of legitimate domains that left a
	// stale zone behind at a previous provider.
	PastDelegationFrac float64
	// Parallelism for the measurement pipeline.
	Parallelism int

	// PostDisclosure applies the §6 vendor reactions to the named providers
	// (Tencent's NS-delegation verification, Cloudflare's expanded reserved
	// list, Alibaba's TXT challenge) — the E15 remeasurement.
	PostDisclosure bool
}

// Tiny is the test scale: seconds to generate and sweep.
func Tiny() Scale {
	return Scale{
		Name:       "tiny",
		TrancoSize: 2500, Targets: 48, OpenResolvers: 8,
		GenericProviders: 4, ServerScale: 0.25, GenericServersAvg: 3,
		PlantZones: 90, EvidencedIPs: 16, CleanAttackerIPs: 40,
		BulkSamples:        40,
		PastDelegationFrac: 0.15,
		Parallelism:        4,
	}
}

// Small is the default experiment scale (~1/8 of the paper).
func Small() Scale {
	return Scale{
		Name:       "small",
		TrancoSize: 10000, Targets: 400, OpenResolvers: 150,
		GenericProviders: 50, ServerScale: 1.0, GenericServersAvg: 4,
		PlantZones: 2600, EvidencedIPs: 180, CleanAttackerIPs: 520,
		BulkSamples:        400,
		PastDelegationFrac: 0.15,
		Parallelism:        8,
	}
}

// Paper approximates the paper's full sweep (8,941 nameservers, top-2K
// targets, 3K resolvers). Expect minutes of runtime and gigabytes of RSS.
func Paper() Scale {
	return Scale{
		Name:       "paper",
		TrancoSize: 100000, Targets: 2000, OpenResolvers: 3000,
		GenericProviders: 400, ServerScale: 8.0, GenericServersAvg: 18,
		PlantZones: 26000, EvidencedIPs: 1500, CleanAttackerIPs: 4800,
		BulkSamples:        2000,
		PastDelegationFrac: 0.15,
		Parallelism:        16,
	}
}

// ByName resolves a scale label.
func ByName(name string) (Scale, bool) {
	switch name {
	case "tiny":
		return Tiny(), true
	case "small", "":
		return Small(), true
	case "paper", "full":
		return Paper(), true
	}
	return Scale{}, false
}

// Calibration constants derived from the paper's published numbers.
const (
	// fracAPlants is the share of attacker plants that are A-record zones
	// (Table 1: A suspicious URs are ~86% of the suspicious set).
	fracAPlants = 0.82
	// fracAMalicious is the share of A plants pointing at evidenced IPs
	// (Table 1: 28.92% of A URs are malicious).
	fracAMalicious = 0.29
	// fracTXTWithEvidencedIP matches Table 1's 3.08% malicious TXT share.
	fracTXTWithEvidencedIP = 0.035
	// fracTXTNoIP is the share of TXT plants carrying no IP at all
	// (encrypted commands; excluded from malicious determination).
	fracTXTNoIP = 0.60
	// fracMaliciousEmailTXT: 90.95% of malicious TXT URs are SPF/DMARC.
	fracMaliciousEmailTXT = 0.91
	// maliciousDomainPoolFrac bounds which targets malicious plants hit
	// (Table 1: 68.48% of targets carry malicious URs).
	maliciousDomainPoolFrac = 0.72

	// Figure 3(a): evidence mix over malicious IPs.
	fracIntelOnly = 0.342
	fracIDSOnly   = 0.366
	// remainder = both (0.292)

	// Figure 3(b): vendor-count buckets over intel-flagged IPs.
	fracVendors1to2 = 0.779
	fracVendors3to4 = 0.1631
	fracVendors5to6 = 0.0201
	// remainder 7-11 (0.0378)
)

// tagProbabilities drives Figure 3(d): independent per-tag draws (an IP may
// carry several tags).
var tagProbabilities = []struct {
	Tag  string
	Prob float64
}{
	{"Trojan", 0.8901},
	{"Scanner", 0.4101},
	{"Other", 0.3333},
	{"Malware", 0.1911},
	{"C&C", 0.1625},
	{"Botnet", 0.1023},
}

// alertMarkerMix drives Figure 3(c): each bulk sample emits one marker; the
// weights reproduce the alert-class distribution (Trojan Activity 41.67%,
// Other 23.86%, Privacy Violation 21.19%, C&C 10.82%, Bad Traffic 2.46%).
var alertMarkerMix = []struct {
	Marker string
	Port   uint16
	Weight float64
}{
	{"trojan-beacon stage2 fetch", 4444, 0.4167},
	{"misc-cmd run-task", 8080, 0.2386},
	{"cred-harvest report upload", 443, 0.2119},
	{"c2-checkin keepalive", 443, 0.1082},
	{"malformed session junk", 9001, 0.0246},
}

// hostingWeights drives which provider legitimately hosts each target; the
// CDN-style providers (Cloudflare, Akamai) sync zones to their whole fleet,
// which is what makes their Figure 2 bars enormous.
var hostingWeights = []struct {
	Provider string
	Weight   float64
}{
	{"Cloudflare", 0.35},
	{"Akamai", 0.15},
	{"Amazon", 0.10},
	{"Godaddy", 0.08},
	{"Tencent Cloud", 0.05},
	{"Alibaba Cloud", 0.05},
	{"Namecheap", 0.04},
	{"NHN Cloud", 0.02},
	{"Baidu Cloud", 0.02},
	{"CSC", 0.01},
	{"ClouDNS", 0.01},
	// remainder: generic providers
}
