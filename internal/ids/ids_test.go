package ids

import (
	"net/netip"
	"strings"
	"testing"

	"repro/internal/sandbox"
)

var (
	victim = netip.MustParseAddr("100.70.0.9")
	c2     = netip.MustParseAddr("100.70.2.66")
	benign = netip.MustParseAddr("93.184.216.34")
)

func flow(proto sandbox.Proto, dst netip.Addr, payload string) sandbox.Flow {
	return sandbox.Flow{Proto: proto, Src: victim, Dst: dst, DstPort: 443,
		Payload: payload, Answered: true}
}

func TestDefaultRulesFire(t *testing.T) {
	e := NewEngine(DefaultRules()...)
	if e.RuleCount() != 10 {
		t.Fatalf("rules = %d", e.RuleCount())
	}
	cases := []struct {
		f     sandbox.Flow
		class Classtype
		sev   Severity
	}{
		{flow(sandbox.ProtoTCP, c2, "trojan-beacon dark.iot"), ClassTrojan, SeverityHigh},
		{flow(sandbox.ProtoTCP, c2, "c2-checkin specter"), ClassC2, SeverityHigh},
		{flow(sandbox.ProtoTCP, c2, "loader-fetch stage2"), ClassTrojan, SeverityMedium},
		{flow(sandbox.ProtoSMTP, c2, "covert-smtp exfil"), ClassC2, SeverityHigh},
		{flow(sandbox.ProtoTCP, c2, "cred-harvest report"), ClassPrivacy, SeverityMedium},
		{flow(sandbox.ProtoTCP, c2, "malformed junk"), ClassBadTraffic, SeverityMedium},
		{flow(sandbox.ProtoTCP, c2, "misc-cmd run"), ClassOther, SeverityMedium},
		{flow(sandbox.ProtoTCP, benign, "connectivity-check"), ClassOther, SeverityLow},
	}
	for _, c := range cases {
		alerts := e.Inspect([]sandbox.Flow{c.f})
		if len(alerts) == 0 {
			t.Errorf("no alert for %q", c.f.Payload)
			continue
		}
		found := false
		for _, a := range alerts {
			if a.Rule.Classtype == c.class && a.Rule.Severity == c.sev {
				found = true
			}
		}
		if !found {
			t.Errorf("flow %q: no (%s, %s) alert in %v", c.f.Payload, c.class, c.sev, alerts)
		}
	}
}

func TestCleanFlowNoAlert(t *testing.T) {
	e := NewEngine(DefaultRules()...)
	alerts := e.Inspect([]sandbox.Flow{
		flow(sandbox.ProtoTCP, benign, "GET / HTTP/1.0"),
		flow(sandbox.ProtoDNS, benign, "query site.com A direct=false"),
	})
	if len(alerts) != 0 {
		t.Errorf("alerts on clean flows: %v", alerts)
	}
}

func TestSMTPExfilMatchesTwoRules(t *testing.T) {
	// "covert-smtp exfil" triggers both the exfiltration and the covert
	// channel signatures — one flow, multiple alert classes, matching the
	// paper's observation of multiple alerts per malicious flow.
	e := NewEngine(DefaultRules()...)
	alerts := e.Inspect([]sandbox.Flow{flow(sandbox.ProtoSMTP, c2, "covert-smtp exfil keylog")})
	if len(alerts) != 2 {
		t.Errorf("alerts = %v", alerts)
	}
}

func TestAlertedIPsSeverityFloor(t *testing.T) {
	e := NewEngine(DefaultRules()...)
	alerts := e.Inspect([]sandbox.Flow{
		flow(sandbox.ProtoTCP, c2, "trojan-beacon x"),
		flow(sandbox.ProtoTCP, benign, "connectivity-check"),
	})
	ips := AlertedIPs(alerts, SeverityMedium)
	if len(ips) != 1 || ips[0] != c2 {
		t.Errorf("alerted IPs = %v (connectivity checks must be excluded)", ips)
	}
	all := AlertedIPs(alerts, SeverityLow)
	if len(all) != 2 {
		t.Errorf("low floor IPs = %v", all)
	}
}

func TestInspectReport(t *testing.T) {
	e := NewEngine(DefaultRules()...)
	rep := &sandbox.Report{Flows: []sandbox.Flow{flow(sandbox.ProtoTCP, c2, "c2-checkin")}}
	if got := e.InspectReport(rep); len(got) != 1 {
		t.Errorf("alerts = %v", got)
	}
}

func TestAddRule(t *testing.T) {
	e := NewEngine()
	e.AddRule(&Rule{SID: 9, Name: "custom", Classtype: ClassOther, Severity: SeverityHigh,
		Match: func(f sandbox.Flow) bool { return f.DstPort == 1337 }})
	f := sandbox.Flow{Proto: sandbox.ProtoTCP, Dst: c2, DstPort: 1337}
	if got := e.Inspect([]sandbox.Flow{f}); len(got) != 1 {
		t.Errorf("custom rule did not fire: %v", got)
	}
}

func TestAlertString(t *testing.T) {
	e := NewEngine(DefaultRules()...)
	alerts := e.Inspect([]sandbox.Flow{flow(sandbox.ProtoTCP, c2, "trojan-beacon x")})
	if len(alerts) == 0 {
		t.Fatal("no alert")
	}
	s := alerts[0].String()
	for _, want := range []string{"Trojan Activity", "high", "100.70.2.66"} {
		if !strings.Contains(s, want) {
			t.Errorf("alert string %q missing %q", s, want)
		}
	}
	if SeverityLow.String() != "low" || Severity(9).String() == "" {
		t.Error("severity strings wrong")
	}
}
