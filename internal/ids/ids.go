// Package ids is the intrusion-detection substrate standing in for
// Snort/Suricata in the §4.3 pipeline: a rule engine that inspects sandbox
// flows and raises classified, severity-graded alerts. URHunter only labels
// an IP malicious from IDS evidence when an alert of at least medium
// severity fires against traffic toward it — connectivity checks are
// deliberately low severity, mirroring the paper's exclusion.
package ids

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"

	"repro/internal/sandbox"
)

// Severity grades an alert.
type Severity int

// Severities, lowest first.
const (
	SeverityLow Severity = iota + 1
	SeverityMedium
	SeverityHigh
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SeverityLow:
		return "low"
	case SeverityMedium:
		return "medium"
	case SeverityHigh:
		return "high"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Classtype buckets alerts the way Figure 3(c) reports them.
type Classtype string

// Alert classes from Figure 3(c).
const (
	ClassTrojan     Classtype = "Trojan Activity"
	ClassC2         Classtype = "C&C Activity"
	ClassPrivacy    Classtype = "Privacy Violation"
	ClassBadTraffic Classtype = "Bad Traffic"
	ClassOther      Classtype = "Other"
)

// AllClasses is Figure 3(c)'s display order.
var AllClasses = []Classtype{ClassTrojan, ClassOther, ClassPrivacy, ClassC2, ClassBadTraffic}

// Rule is one detection signature.
type Rule struct {
	SID       int
	Name      string
	Classtype Classtype
	Severity  Severity
	// Match inspects one flow.
	Match func(f sandbox.Flow) bool
}

// Alert is a fired rule.
type Alert struct {
	Rule *Rule
	Flow sandbox.Flow
}

// String renders the alert Snort-style.
func (a Alert) String() string {
	return fmt.Sprintf("[%d] %s (%s, %s) %s", a.Rule.SID, a.Rule.Name,
		a.Rule.Classtype, a.Rule.Severity, a.Flow)
}

// Engine is a rule set.
type Engine struct {
	mu    sync.RWMutex
	rules []*Rule
}

// NewEngine creates an engine with the given rules.
func NewEngine(rules ...*Rule) *Engine {
	return &Engine{rules: rules}
}

// AddRule appends a rule.
func (e *Engine) AddRule(r *Rule) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rules = append(e.rules, r)
}

// RuleCount returns the number of loaded rules.
func (e *Engine) RuleCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.rules)
}

// Inspect runs every rule over every flow.
func (e *Engine) Inspect(flows []sandbox.Flow) []Alert {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []Alert
	for _, f := range flows {
		for _, r := range e.rules {
			if r.Match(f) {
				out = append(out, Alert{Rule: r, Flow: f})
			}
		}
	}
	return out
}

// InspectReport runs the engine over a sandbox report's flows.
func (e *Engine) InspectReport(rep *sandbox.Report) []Alert {
	return e.Inspect(rep.Flows)
}

// AlertedIPs extracts the destination IPs of alerts with at least the given
// severity — exactly the §4.3 evidence criterion.
func AlertedIPs(alerts []Alert, min Severity) []netip.Addr {
	seen := make(map[netip.Addr]bool)
	var out []netip.Addr
	for _, a := range alerts {
		if a.Rule.Severity < min {
			continue
		}
		if !seen[a.Flow.Dst] {
			seen[a.Flow.Dst] = true
			out = append(out, a.Flow.Dst)
		}
	}
	return out
}

// payloadHas is a helper for marker-based rules.
func payloadHas(f sandbox.Flow, marker string) bool {
	return strings.Contains(f.Payload, marker)
}

// DefaultRules builds the signature set used across the reproduction. The
// markers correspond to the wire patterns the malware behaviour programs in
// internal/malware emit; severities and classtypes follow the Snort
// community conventions (trojan-activity is high, attempted-recon medium,
// network connectivity checks low).
func DefaultRules() []*Rule {
	return []*Rule{
		{
			SID: 1000001, Name: "MALWARE-CNC trojan beacon",
			Classtype: ClassTrojan, Severity: SeverityHigh,
			Match: func(f sandbox.Flow) bool {
				return f.Proto == sandbox.ProtoTCP && payloadHas(f, "trojan-beacon")
			},
		},
		{
			SID: 1000002, Name: "MALWARE-CNC RAT check-in",
			Classtype: ClassC2, Severity: SeverityHigh,
			Match: func(f sandbox.Flow) bool {
				return f.Proto == sandbox.ProtoTCP && payloadHas(f, "c2-checkin")
			},
		},
		{
			SID: 1000003, Name: "MALWARE-OTHER bot loader download",
			Classtype: ClassTrojan, Severity: SeverityMedium,
			Match: func(f sandbox.Flow) bool {
				return payloadHas(f, "loader-fetch")
			},
		},
		{
			SID: 1000004, Name: "INDICATOR-SCAN inbound staging sweep",
			Classtype: ClassOther, Severity: SeverityMedium,
			Match: func(f sandbox.Flow) bool {
				return payloadHas(f, "scan-probe")
			},
		},
		{
			SID: 1000005, Name: "POLICY-OTHER data exfiltration over SMTP",
			Classtype: ClassPrivacy, Severity: SeverityHigh,
			Match: func(f sandbox.Flow) bool {
				return f.Proto == sandbox.ProtoSMTP && payloadHas(f, "exfil")
			},
		},
		{
			SID: 1000006, Name: "POLICY-OTHER credential harvest report",
			Classtype: ClassPrivacy, Severity: SeverityMedium,
			Match: func(f sandbox.Flow) bool {
				return payloadHas(f, "cred-harvest")
			},
		},
		{
			SID: 1000007, Name: "MALWARE-CNC SMTP covert channel",
			Classtype: ClassC2, Severity: SeverityHigh,
			Match: func(f sandbox.Flow) bool {
				return f.Proto == sandbox.ProtoSMTP && payloadHas(f, "covert-smtp")
			},
		},
		{
			SID: 1000008, Name: "BAD-TRAFFIC malformed session",
			Classtype: ClassBadTraffic, Severity: SeverityMedium,
			Match: func(f sandbox.Flow) bool {
				return payloadHas(f, "malformed")
			},
		},
		{
			SID: 1000009, Name: "MISC suspicious plaintext command",
			Classtype: ClassOther, Severity: SeverityMedium,
			Match: func(f sandbox.Flow) bool {
				return payloadHas(f, "misc-cmd")
			},
		},
		{
			SID: 1000010, Name: "NETWORK connectivity check",
			Classtype: ClassOther, Severity: SeverityLow,
			Match: func(f sandbox.Flow) bool {
				return payloadHas(f, "connectivity-check")
			},
		},
	}
}
