// Package defense implements the defender-side baselines the paper argues
// URs bypass (§3): reputation-based blocking (Notos/EXPOSURE-style domain and
// server reputation) and resolution-path inspection (DNSSEC-style validation
// plus firewalling of DNS traffic). The E13 experiment runs UR malware
// traffic through both and measures what gets stopped — and what legitimate
// traffic a strict "block direct DNS" stance breaks.
package defense

import (
	"net/netip"
	"sync"

	"repro/internal/dns"
	"repro/internal/sandbox"
)

// Verdict is a defense decision about one flow.
type Verdict struct {
	Blocked bool
	Reason  string
}

// Allow is the pass-through verdict.
var Allow = Verdict{}

func block(reason string) Verdict { return Verdict{Blocked: true, Reason: reason} }

// ReputationEngine scores domains and server IPs in [0,1] (1 = pristine).
// Unknown entities get NeutralScore. A DNS flow is blocked when either the
// queried domain or the contacted server scores below Threshold — the
// classic blacklist/reputation approach.
type ReputationEngine struct {
	mu      sync.RWMutex
	domains map[dns.Name]float64
	servers map[netip.Addr]float64

	// Threshold blocks scores strictly below it.
	Threshold float64
	// NeutralScore is assigned to unknown entities.
	NeutralScore float64
}

// NewReputationEngine builds an engine with conventional defaults.
func NewReputationEngine() *ReputationEngine {
	return &ReputationEngine{
		domains:      make(map[dns.Name]float64),
		servers:      make(map[netip.Addr]float64),
		Threshold:    0.3,
		NeutralScore: 0.5,
	}
}

// SetDomainReputation records a domain score (e.g. 0.95 for a Tranco-top
// site, 0.05 for a blacklisted one).
func (e *ReputationEngine) SetDomainReputation(d dns.Name, score float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.domains[d] = score
}

// SetServerReputation records a server-IP score.
func (e *ReputationEngine) SetServerReputation(a netip.Addr, score float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.servers[a] = score
}

// DomainReputation returns the effective score of a domain, inheriting the
// registrable ancestor's score when the exact name is unknown (reputation
// systems score zones, not leaves).
func (e *ReputationEngine) DomainReputation(d dns.Name) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for n := d; n != dns.Root; n = n.Parent() {
		if s, ok := e.domains[n]; ok {
			return s
		}
	}
	return e.NeutralScore
}

// ServerReputation returns the effective score of a server IP.
func (e *ReputationEngine) ServerReputation(a netip.Addr) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if s, ok := e.servers[a]; ok {
		return s
	}
	return e.NeutralScore
}

// EvaluateDNS judges one DNS query (domain asked, server contacted).
func (e *ReputationEngine) EvaluateDNS(domain dns.Name, server netip.Addr) Verdict {
	if e.DomainReputation(domain) < e.Threshold {
		return block("domain reputation below threshold")
	}
	if e.ServerReputation(server) < e.Threshold {
		return block("DNS server reputation below threshold")
	}
	return Allow
}

// EvaluateConnection judges a non-DNS flow by destination reputation.
func (e *ReputationEngine) EvaluateConnection(dst netip.Addr) Verdict {
	if e.ServerReputation(dst) < e.Threshold {
		return block("destination reputation below threshold")
	}
	return Allow
}

// PathFirewall models defenses that examine DNS traffic on the normal
// resolution path (DNSSEC validation at the configured resolver, NGFW DNS
// inspection). Queries to the enterprise resolver are fully inspected.
// Direct queries to other DNS servers are the blind spot: by default they
// are allowed because they are indistinguishable from legitimate custom
// public-resolver use; StrictDirectDNS blocks them all, at the cost of
// breaking that legitimate traffic.
type PathFirewall struct {
	// EnterpriseResolver is the sanctioned resolver.
	EnterpriseResolver netip.Addr
	// PublicResolvers are well-known public DNS services employees use.
	PublicResolvers map[netip.Addr]bool
	// StrictDirectDNS blocks every DNS flow not aimed at the enterprise
	// resolver.
	StrictDirectDNS bool
	// MaliciousAnswers is the validator's blocklist applied to answers seen
	// on the sanctioned path.
	MaliciousAnswers map[netip.Addr]bool
}

// NewPathFirewall builds a firewall around the sanctioned resolver.
func NewPathFirewall(enterprise netip.Addr) *PathFirewall {
	return &PathFirewall{
		EnterpriseResolver: enterprise,
		PublicResolvers:    make(map[netip.Addr]bool),
		MaliciousAnswers:   make(map[netip.Addr]bool),
	}
}

// EvaluateDNSFlow judges one DNS flow given the structured query record.
func (f *PathFirewall) EvaluateDNSFlow(rec sandbox.DNSRecord) Verdict {
	if rec.Server == f.EnterpriseResolver {
		// Full inspection on the sanctioned path.
		for _, rr := range rec.Answers {
			if a, ok := rr.Data.(*dns.A); ok && f.MaliciousAnswers[a.Addr] {
				return block("answer failed validation on sanctioned path")
			}
		}
		return Allow
	}
	if f.StrictDirectDNS {
		return block("direct DNS to non-sanctioned server")
	}
	// The blind spot: direct DNS looks like custom-resolver configuration.
	return Allow
}

// Outcome summarizes a defense evaluation over a traffic capture.
type Outcome struct {
	TotalDNS        int
	BlockedDNS      int
	TotalConns      int
	BlockedConns    int
	C2Reached       bool
	CollateralHits  int // legitimate flows blocked (strict modes)
	BlockedVerdicts []Verdict
}

// EvaluateReport runs both baseline defenses over a sandbox report.
// legitDirect marks DNS servers that are legitimate direct-query targets
// (public resolvers configured by the user) for collateral accounting.
func EvaluateReport(rep *sandbox.Report, repEng *ReputationEngine, fw *PathFirewall,
	legitDirect map[netip.Addr]bool) Outcome {
	return EvaluateReportWithFeed(rep, repEng, fw, nil, legitDirect)
}
