package defense

import (
	"net/netip"

	"repro/internal/core"
	"repro/internal/dns"
	"repro/internal/sandbox"
)

// URFeed is a live source of UR verdicts — in practice the urwatch verdict
// store, but any oracle with the same shape works. It closes the blind spot
// both baselines share: a reputation engine has no score for a fresh domain
// on a reputable provider's server, and a path firewall cannot distinguish
// "direct query to a provider nameserver" from legitimate custom-resolver
// use. The feed knows the third thing neither sees — that this exact
// (domain, server) pair hosts an undelegated record.
type URFeed interface {
	// FlowListed reports whether (domain, server) is a listed UR serving
	// point and the worst category among its records.
	FlowListed(domain dns.Name, server netip.Addr) (core.Category, bool)
	// IPListed reports whether dst is a corresponding IP of any listed UR.
	IPListed(dst netip.Addr) (core.Category, bool)
}

// FeedBlocker turns feed verdicts into flow decisions.
type FeedBlocker struct {
	Feed URFeed
	// BlockSuspicious also blocks CategoryUnknown listings — URs the
	// analyzer could not clear. Off, only CategoryMalicious blocks, so
	// protective and correct URs (the bulk of the feed) pass untouched.
	BlockSuspicious bool
}

// blocks reports whether a listed category warrants blocking.
func (b *FeedBlocker) blocks(c core.Category) bool {
	if c == core.CategoryMalicious {
		return true
	}
	return b.BlockSuspicious && c == core.CategoryUnknown
}

// EvaluateDNS judges one DNS flow against the feed.
func (b *FeedBlocker) EvaluateDNS(domain dns.Name, server netip.Addr) Verdict {
	if b == nil || b.Feed == nil {
		return Allow
	}
	if c, ok := b.Feed.FlowListed(domain, server); ok && b.blocks(c) {
		return block("UR feed lists " + string(domain) + " at " + server.String() + " as " + c.String())
	}
	return Allow
}

// EvaluateConnection judges a non-DNS flow by destination.
func (b *FeedBlocker) EvaluateConnection(dst netip.Addr) Verdict {
	if b == nil || b.Feed == nil {
		return Allow
	}
	if c, ok := b.Feed.IPListed(dst); ok && b.blocks(c) {
		return block("UR feed lists destination " + dst.String() + " as " + c.String())
	}
	return Allow
}

// EvaluateReportWithFeed runs the baseline defenses plus a feed-backed
// blocker over a sandbox report. A nil fb degenerates to EvaluateReport.
func EvaluateReportWithFeed(rep *sandbox.Report, repEng *ReputationEngine, fw *PathFirewall,
	fb *FeedBlocker, legitDirect map[netip.Addr]bool) Outcome {
	var out Outcome
	blockedIPs := make(map[netip.Addr]bool)
	// An encrypted (DoH) resolution appears twice in a report: as a
	// structured DNS record (the endpoint view) and as an opaque TLS flow to
	// the serving point (the network view). Blocking the endpoint view tears
	// down the opaque session that carried it, so the network flow must not
	// be scored as a reached destination.
	blockedEncrypted := make(map[netip.Addr]bool)

	for _, rec := range rep.DNS {
		out.TotalDNS++
		v := repEng.EvaluateDNS(rec.Question.Name, rec.Server)
		if !v.Blocked && fw != nil {
			v = fw.EvaluateDNSFlow(rec)
		}
		if !v.Blocked {
			v = fb.EvaluateDNS(rec.Question.Name, rec.Server)
		}
		if v.Blocked {
			out.BlockedDNS++
			out.BlockedVerdicts = append(out.BlockedVerdicts, v)
			if legitDirect[rec.Server] {
				out.CollateralHits++
			}
			if rec.Encrypted {
				blockedEncrypted[rec.Server] = true
			}
			for _, rr := range rec.Answers {
				if a, ok := rr.Data.(*dns.A); ok {
					blockedIPs[a.Addr] = true
				}
			}
		}
	}
	for _, fl := range rep.Flows {
		if fl.Proto == sandbox.ProtoDNS {
			continue
		}
		out.TotalConns++
		v := repEng.EvaluateConnection(fl.Dst)
		if !v.Blocked {
			v = fb.EvaluateConnection(fl.Dst)
		}
		if v.Blocked || blockedIPs[fl.Dst] || blockedEncrypted[fl.Dst] {
			out.BlockedConns++
			if !v.Blocked {
				if blockedIPs[fl.Dst] {
					v = block("destination learned via blocked resolution")
				} else {
					v = block("opaque session to a blocked UR serving point")
				}
			}
			out.BlockedVerdicts = append(out.BlockedVerdicts, v)
			continue
		}
		if fl.Answered {
			out.C2Reached = true
		}
	}
	return out
}
