package defense

import (
	"net/netip"
	"testing"

	"repro/internal/dns"
	"repro/internal/sandbox"
)

var (
	victim      = netip.MustParseAddr("100.90.0.9")
	enterprise  = netip.MustParseAddr("100.90.0.53")
	providerNS  = netip.MustParseAddr("100.90.1.53") // reputable hosting NS
	shadyNS     = netip.MustParseAddr("100.90.6.66")
	c2          = netip.MustParseAddr("66.90.2.66")
	googleLike  = netip.MustParseAddr("8.8.8.8")
	trustedSite = dns.Name("ibm.com")
	shadyDomain = dns.Name("evil-updates.biz")
)

func repEngine() *ReputationEngine {
	e := NewReputationEngine()
	e.SetDomainReputation(trustedSite, 0.98)
	e.SetDomainReputation(shadyDomain, 0.05)
	e.SetServerReputation(providerNS, 0.95)
	e.SetServerReputation(shadyNS, 0.05)
	e.SetServerReputation(c2, 0.5) // unknown to intel: fresh infrastructure
	return e
}

func TestReputationBlocksKnownBad(t *testing.T) {
	e := repEngine()
	if v := e.EvaluateDNS(shadyDomain, enterprise); !v.Blocked {
		t.Error("shady domain allowed")
	}
	if v := e.EvaluateDNS(trustedSite, shadyNS); !v.Blocked {
		t.Error("shady server allowed")
	}
	if v := e.EvaluateConnection(shadyNS); !v.Blocked {
		t.Error("shady destination allowed")
	}
}

func TestReputationBypassedByUR(t *testing.T) {
	e := repEngine()
	// The UR attack: trusted domain asked at a reputable provider NS.
	if v := e.EvaluateDNS(trustedSite, providerNS); v.Blocked {
		t.Errorf("UR query blocked by reputation: %+v", v)
	}
	// Fresh C2 infrastructure has neutral reputation.
	if v := e.EvaluateConnection(c2); v.Blocked {
		t.Error("neutral-reputation C2 blocked")
	}
}

func TestDomainReputationInheritance(t *testing.T) {
	e := repEngine()
	if got := e.DomainReputation("api.ibm.com"); got != 0.98 {
		t.Errorf("subdomain reputation = %v", got)
	}
	if got := e.DomainReputation("unknown.org"); got != e.NeutralScore {
		t.Errorf("unknown reputation = %v", got)
	}
	if got := e.ServerReputation(netip.MustParseAddr("1.1.1.1")); got != e.NeutralScore {
		t.Errorf("unknown server reputation = %v", got)
	}
}

func dnsRec(server netip.Addr, name dns.Name, answers ...netip.Addr) sandbox.DNSRecord {
	rec := sandbox.DNSRecord{Server: server, Direct: server != enterprise,
		Question: dns.Question{Name: name, Type: dns.TypeA, Class: dns.ClassINET}}
	for _, a := range answers {
		rec.Answers = append(rec.Answers, dns.RR{Name: name, Class: dns.ClassINET, TTL: 60,
			Data: &dns.A{Addr: a}})
	}
	return rec
}

func TestPathFirewallInspectsSanctionedPath(t *testing.T) {
	fw := NewPathFirewall(enterprise)
	fw.MaliciousAnswers[c2] = true
	// Malicious answer on the sanctioned path: caught.
	if v := fw.EvaluateDNSFlow(dnsRec(enterprise, shadyDomain, c2)); !v.Blocked {
		t.Error("malicious answer passed validation")
	}
	// Clean answer: passes.
	if v := fw.EvaluateDNSFlow(dnsRec(enterprise, trustedSite, googleLike)); v.Blocked {
		t.Error("clean answer blocked")
	}
}

func TestPathFirewallBlindToDirectDNS(t *testing.T) {
	fw := NewPathFirewall(enterprise)
	fw.MaliciousAnswers[c2] = true
	// The same malicious answer fetched directly from the provider NS is NOT
	// seen by path validation — the paper's core bypass.
	if v := fw.EvaluateDNSFlow(dnsRec(providerNS, trustedSite, c2)); v.Blocked {
		t.Errorf("direct DNS blocked by default: %+v", v)
	}
	// Strict mode closes the hole...
	fw.StrictDirectDNS = true
	if v := fw.EvaluateDNSFlow(dnsRec(providerNS, trustedSite, c2)); !v.Blocked {
		t.Error("strict mode did not block direct DNS")
	}
	// ...but also breaks legitimate public-resolver use.
	if v := fw.EvaluateDNSFlow(dnsRec(googleLike, trustedSite, googleLike)); !v.Blocked {
		t.Error("strict mode inconsistent")
	}
}

func urAttackReport() *sandbox.Report {
	return &sandbox.Report{
		DNS: []sandbox.DNSRecord{
			dnsRec(providerNS, trustedSite, c2),
		},
		Flows: []sandbox.Flow{
			{Proto: sandbox.ProtoDNS, Src: victim, Dst: providerNS, DstPort: 53,
				Payload: "query ibm.com. A direct=true", Answered: true},
			{Proto: sandbox.ProtoTCP, Src: victim, Dst: c2, DstPort: 443,
				Payload: "c2-checkin", Answered: true},
		},
	}
}

func TestEvaluateReportURBypassesBoth(t *testing.T) {
	rep := urAttackReport()
	out := EvaluateReport(rep, repEngine(), func() *PathFirewall {
		fw := NewPathFirewall(enterprise)
		fw.MaliciousAnswers[c2] = true
		return fw
	}(), nil)
	if out.BlockedDNS != 0 || out.BlockedConns != 0 {
		t.Errorf("UR attack partially blocked: %+v", out)
	}
	if !out.C2Reached {
		t.Error("C2 not reached")
	}
}

func TestEvaluateReportStrictModeStopsURWithCollateral(t *testing.T) {
	rep := urAttackReport()
	// Add a legitimate direct query to a public resolver.
	rep.DNS = append(rep.DNS, dnsRec(googleLike, "wikipedia.org", netip.MustParseAddr("91.198.174.192")))
	rep.Flows = append(rep.Flows, sandbox.Flow{Proto: sandbox.ProtoDNS, Src: victim,
		Dst: googleLike, DstPort: 53, Payload: "query wikipedia.org. A direct=true", Answered: true})

	fw := NewPathFirewall(enterprise)
	fw.StrictDirectDNS = true
	out := EvaluateReport(rep, repEngine(), fw, map[netip.Addr]bool{googleLike: true})
	if out.BlockedDNS != 2 {
		t.Errorf("blocked DNS = %d, want 2", out.BlockedDNS)
	}
	if out.BlockedConns != 1 {
		t.Errorf("blocked conns = %d (C2 contact should die with the blocked resolution)", out.BlockedConns)
	}
	if out.C2Reached {
		t.Error("C2 reached under strict mode")
	}
	if out.CollateralHits != 1 {
		t.Errorf("collateral = %d, want 1 (the legitimate public-resolver query)", out.CollateralHits)
	}
}

func TestEvaluateReportReputationStopsClassicAttack(t *testing.T) {
	// Classic attack: shady domain on shady NS — reputation catches it.
	rep := &sandbox.Report{
		DNS: []sandbox.DNSRecord{dnsRec(shadyNS, shadyDomain, c2)},
		Flows: []sandbox.Flow{
			{Proto: sandbox.ProtoDNS, Src: victim, Dst: shadyNS, DstPort: 53, Answered: true},
			{Proto: sandbox.ProtoTCP, Src: victim, Dst: c2, DstPort: 443,
				Payload: "c2-checkin", Answered: true},
		},
	}
	out := EvaluateReport(rep, repEngine(), NewPathFirewall(enterprise), nil)
	if out.BlockedDNS != 1 {
		t.Errorf("classic attack DNS not blocked: %+v", out)
	}
	if out.C2Reached {
		t.Error("classic C2 reached despite blocked resolution")
	}
}
