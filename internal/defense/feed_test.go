package defense

import (
	"net/netip"
	"testing"

	"repro/internal/core"
	"repro/internal/dns"
	"repro/internal/sandbox"
)

// stubFeed is a fixed-verdict URFeed.
type stubFeed struct {
	flows map[string]core.Category // "domain|server"
	ips   map[netip.Addr]core.Category
}

func (f *stubFeed) FlowListed(domain dns.Name, server netip.Addr) (core.Category, bool) {
	c, ok := f.flows[string(domain)+"|"+server.String()]
	return c, ok
}

func (f *stubFeed) IPListed(dst netip.Addr) (core.Category, bool) {
	c, ok := f.ips[dst]
	return c, ok
}

// urReport models the UR C2 flow: direct DNS to a provider nameserver for a
// reputable domain, then a TCP connection to the answered IP.
func urReport(providerNS, c2 netip.Addr) *sandbox.Report {
	return &sandbox.Report{
		DNS: []sandbox.DNSRecord{{
			Server:   providerNS,
			Direct:   true,
			Question: dns.Question{Name: "trusted.com", Type: dns.TypeA, Class: dns.ClassINET},
			Answers:  []dns.RR{dns.MustParseRR("trusted.com 120 IN A " + c2.String())},
		}},
		Flows: []sandbox.Flow{
			{Proto: sandbox.ProtoDNS, Dst: providerNS, Answered: true},
			{Proto: sandbox.ProtoTCP, Dst: c2, DstPort: 443, Answered: true},
		},
	}
}

func TestFeedBlockerStopsURFlowBaselinesMiss(t *testing.T) {
	providerNS := netip.MustParseAddr("192.0.2.53")
	c2 := netip.MustParseAddr("198.51.100.66")
	rep := NewReputationEngine()
	rep.SetDomainReputation("trusted.com", 0.97)
	rep.SetServerReputation(providerNS, 0.93)
	fw := NewPathFirewall(netip.MustParseAddr("10.0.0.2"))
	report := urReport(providerNS, c2)

	// Baselines alone: the UR C2 flow sails through.
	base := EvaluateReport(report, rep, fw, nil)
	if !base.C2Reached || base.BlockedDNS != 0 {
		t.Fatalf("baseline outcome changed: %+v (the blind spot this test assumes)", base)
	}

	feed := &stubFeed{flows: map[string]core.Category{
		"trusted.com|" + providerNS.String(): core.CategoryMalicious,
	}}
	out := EvaluateReportWithFeed(report, rep, fw, &FeedBlocker{Feed: feed}, nil)
	if out.BlockedDNS != 1 {
		t.Errorf("feed-backed BlockedDNS = %d, want 1", out.BlockedDNS)
	}
	if out.BlockedConns != 1 {
		t.Errorf("feed-backed BlockedConns = %d, want 1 (answer IP unusable)", out.BlockedConns)
	}
	if out.C2Reached {
		t.Error("C2 reached despite feed listing the (domain, server) pair")
	}
}

func TestFeedBlockerSuspiciousPolicy(t *testing.T) {
	providerNS := netip.MustParseAddr("192.0.2.53")
	c2 := netip.MustParseAddr("198.51.100.66")
	feed := &stubFeed{flows: map[string]core.Category{
		"trusted.com|" + providerNS.String(): core.CategoryUnknown,
	}}
	rep := NewReputationEngine()
	report := urReport(providerNS, c2)

	// Default policy: unknown (merely suspicious) listings pass.
	lax := EvaluateReportWithFeed(report, rep, nil, &FeedBlocker{Feed: feed}, nil)
	if lax.BlockedDNS != 0 || !lax.C2Reached {
		t.Errorf("default policy blocked a suspicious-only listing: %+v", lax)
	}
	// Strict policy blocks what the analyzer could not clear.
	strict := EvaluateReportWithFeed(report, rep, nil,
		&FeedBlocker{Feed: feed, BlockSuspicious: true}, nil)
	if strict.BlockedDNS != 1 || strict.C2Reached {
		t.Errorf("strict policy missed the suspicious listing: %+v", strict)
	}
}

func TestFeedBlockerIPListing(t *testing.T) {
	c2 := netip.MustParseAddr("198.51.100.66")
	feed := &stubFeed{ips: map[netip.Addr]core.Category{c2: core.CategoryMalicious}}
	rep := NewReputationEngine()
	// Connection-only report: the destination was learned out of band.
	report := &sandbox.Report{Flows: []sandbox.Flow{
		{Proto: sandbox.ProtoTCP, Dst: c2, DstPort: 443, Answered: true},
	}}
	out := EvaluateReportWithFeed(report, rep, nil, &FeedBlocker{Feed: feed}, nil)
	if out.BlockedConns != 1 || out.C2Reached {
		t.Errorf("IP listing not enforced: %+v", out)
	}
}

func TestFeedBlockerNilSafe(t *testing.T) {
	var fb *FeedBlocker
	if v := fb.EvaluateDNS("a.test", netip.MustParseAddr("192.0.2.1")); v.Blocked {
		t.Error("nil blocker blocked a DNS flow")
	}
	if v := fb.EvaluateConnection(netip.MustParseAddr("192.0.2.1")); v.Blocked {
		t.Error("nil blocker blocked a connection")
	}
	// Protective and correct listings never block.
	feed := &stubFeed{flows: map[string]core.Category{
		"a.test|192.0.2.1": core.CategoryProtective,
		"b.test|192.0.2.1": core.CategoryCorrect,
	}}
	b := &FeedBlocker{Feed: feed, BlockSuspicious: true}
	for _, d := range []dns.Name{"a.test", "b.test"} {
		if v := b.EvaluateDNS(d, netip.MustParseAddr("192.0.2.1")); v.Blocked {
			t.Errorf("benign listing %s blocked: %+v", d, v)
		}
	}
}
