// The coordinator: cuts the plan into shards, hands them to workers, tracks
// progress, steals straggler tails, survives worker death and its own
// restart, and finally merges the shard journals into one report.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// CoordOptions tunes a Coordinator.
type CoordOptions struct {
	// Dir is the coordinator's working directory: per-shard journal
	// directories plus the coord.json assignment manifest live here. A
	// restarted coordinator pointed at the same Dir resumes: finished
	// shards stay finished, running shards re-issue from their journals.
	Dir string
	// Shards is the initial shard count. Zero selects 2 (work stealing
	// rebalances, so the initial cut only has to be roughly right).
	Shards int
	// CheckpointEvery is the merged run's journal checkpoint interval.
	CheckpointEvery int
	// StealAfter is how long a shard must have been running before its tail
	// may be stolen for an idle worker. Zero selects 2s.
	StealAfter time.Duration
	// MinStealUnits is the smallest tail worth stealing. Zero selects 1.
	MinStealUnits int
	// Logf receives progress lines ("shard stolen", "merge ok", ...). Nil
	// discards them.
	Logf func(format string, args ...any)
}

func (o CoordOptions) shards() int {
	if o.Shards < 1 {
		return 2
	}
	return o.Shards
}

func (o CoordOptions) stealAfter() time.Duration {
	if o.StealAfter <= 0 {
		return 2 * time.Second
	}
	return o.StealAfter
}

func (o CoordOptions) minStealUnits() int {
	if o.MinStealUnits < 1 {
		return 1
	}
	return o.MinStealUnits
}

// shard lifecycle.
type shardStatus int

const (
	shardPending shardStatus = iota
	shardRunning
	shardDone
)

// shardState is one shard's book entry. lo/hi are the journal descriptor
// range, fixed when the shard is created; yieldHi is the effective sweep end
// and only ever shrinks (each steal moves it down). done counts completed
// server units as reported by the owner's progress frames.
type shardState struct {
	id      int
	lo, hi  int
	yieldHi int
	dir     string
	status  shardStatus
	owner   string
	wire    *wire
	ownerPar   int
	assignedAt time.Time
	done       int
	records    int64
	attempts   int
}

func (s *shardState) desc(units int) core.ShardDesc {
	return core.ShardDesc{Index: s.id, Lo: s.lo, Hi: s.hi, Units: units}
}

// coordManifestName is the on-disk shard-assignment book.
const coordManifestName = "coord.json"

// maxShardAttempts bounds how often one shard may fail (worker error, not
// worker death) before the whole run is declared failed.
const maxShardAttempts = 3

type coordManifest struct {
	Version int                  `json:"version"`
	Plan    string               `json:"plan"`
	Units   int                  `json:"units"`
	NextID  int                  `json:"next_id"`
	Shards  []coordManifestShard `json:"shards"`
}

type coordManifestShard struct {
	ID      int    `json:"id"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	YieldHi int    `json:"yield_hi"`
	Dir     string `json:"dir"`
	Done    bool   `json:"done"`
	Units   int    `json:"units_done"`
}

// Coordinator drives one distributed sweep.
type Coordinator struct {
	cfg   *core.Config
	opts  CoordOptions
	plan  uint64
	units int

	ln net.Listener

	mu      sync.Mutex
	cond    *sync.Cond
	shards  []*shardState
	nextID  int
	closed  bool
	failErr error
	doneCh  chan struct{}

	serving sync.WaitGroup
}

// NewCoordinator builds (or, when opts.Dir already holds a coord.json for
// this plan, restores) a coordinator over the full-plan config.
func NewCoordinator(cfg *core.Config, opts CoordOptions) (*Coordinator, error) {
	co := &Coordinator{
		cfg:    cfg,
		opts:   opts,
		plan:   cfg.PlanHash(),
		units:  cfg.PlanUnits(),
		doneCh: make(chan struct{}),
	}
	co.cond = sync.NewCond(&co.mu)
	if co.units == 0 {
		return nil, errors.New("fleet: plan has no server units")
	}
	// Shard directories travel to workers in assign frames, and workers run
	// with their own working directories — paths must be absolute. (For
	// multi-process runs the directory must be on storage every worker can
	// reach; the in-process tests and the local fleet both qualify.)
	abs, err := filepath.Abs(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("fleet: resolve dir: %w", err)
	}
	co.opts.Dir = abs
	opts = co.opts
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: create dir: %w", err)
	}
	data, err := os.ReadFile(filepath.Join(opts.Dir, coordManifestName))
	switch {
	case err == nil:
		if err := co.restore(data); err != nil {
			return nil, err
		}
		co.logf("fleet: restored %d shards from %s", len(co.shards), opts.Dir)
	case os.IsNotExist(err):
		for _, sd := range SplitPlan(co.units, opts.shards()) {
			co.shards = append(co.shards, &shardState{
				id: sd.Index, lo: sd.Lo, hi: sd.Hi, yieldHi: sd.Hi,
				dir: co.shardDir(sd.Index),
			})
		}
		co.nextID = len(co.shards)
		if err := co.saveLocked(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("fleet: read coordinator manifest: %w", err)
	}
	return co, nil
}

func (co *Coordinator) shardDir(id int) string {
	return filepath.Join(co.opts.Dir, fmt.Sprintf("shard-%03d", id))
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.opts.Logf != nil {
		co.opts.Logf(format, args...)
	}
}

// restore rebuilds shard state from a previous coordinator's manifest:
// finished shards stay finished, everything else re-pends (a shard that was
// mid-run resumes from its journal's last checkpoint on reassignment).
func (co *Coordinator) restore(data []byte) error {
	var m coordManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("fleet: coordinator manifest unreadable: %w", err)
	}
	if m.Version != 1 {
		return fmt.Errorf("fleet: coordinator manifest version %d, want 1", m.Version)
	}
	if want := fmt.Sprintf("%016x", co.plan); m.Plan != want {
		return fmt.Errorf("fleet: %s coordinates a different sweep plan (its plan hash %s, this config's %s): resume and merge refuse to mix plans",
			co.opts.Dir, m.Plan, want)
	}
	if m.Units != co.units {
		return fmt.Errorf("fleet: coordinator manifest has %d units, this config %d", m.Units, co.units)
	}
	for _, sm := range m.Shards {
		s := &shardState{
			id: sm.ID, lo: sm.Lo, hi: sm.Hi, yieldHi: sm.YieldHi,
			dir: sm.Dir, done: sm.Units,
		}
		if sm.Done {
			s.status = shardDone
		}
		co.shards = append(co.shards, s)
	}
	co.nextID = m.NextID
	return nil
}

// saveLocked writes the assignment manifest atomically. Called under mu on
// every shard transition, so a coordinator killed at any moment restarts
// with a book no older than the last transition.
func (co *Coordinator) saveLocked() error {
	m := coordManifest{Version: 1, Plan: fmt.Sprintf("%016x", co.plan), Units: co.units, NextID: co.nextID}
	for _, s := range co.shards {
		m.Shards = append(m.Shards, coordManifestShard{
			ID: s.id, Lo: s.lo, Hi: s.hi, YieldHi: s.yieldHi,
			Dir: s.dir, Done: s.status == shardDone, Units: s.done,
		})
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(co.opts.Dir, coordManifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("fleet: write coordinator manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("fleet: commit coordinator manifest: %w", err)
	}
	return nil
}

// Listen binds the coordinator's worker port. addr is a TCP listen address
// (":9555", "127.0.0.1:0", ...).
func (co *Coordinator) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fleet: listen %s: %w", addr, err)
	}
	co.ln = ln
	co.logf("fleet: coordinating %d units in %d shards on %s", co.units, len(co.shards), ln.Addr())
	return nil
}

// Addr returns the bound listen address (nil before Listen).
func (co *Coordinator) Addr() net.Addr {
	if co.ln == nil {
		return nil
	}
	return co.ln.Addr()
}

// Run accepts workers and blocks until every shard is done, a shard fails
// maxShardAttempts times, or ctx is cancelled. Listen must have been called.
func (co *Coordinator) Run(ctx context.Context) error {
	if co.ln == nil {
		return errors.New("fleet: Run before Listen")
	}
	co.mu.Lock()
	if co.remainingLocked() == 0 {
		// Everything finished in a previous incarnation; nothing to serve.
		co.closeDoneLocked()
	}
	co.mu.Unlock()

	go func() {
		for {
			conn, err := co.ln.Accept()
			if err != nil {
				return // listener closed
			}
			co.serving.Add(1)
			go func() {
				defer co.serving.Done()
				co.serveWorker(newWire(conn))
			}()
		}
	}()

	// Periodic broadcast so workers parked in nextShard re-evaluate the
	// steal condition as StealAfter elapses even with no progress frames.
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			co.shutdown()
			return ctx.Err()
		case <-co.doneCh:
			co.mu.Lock()
			err := co.failErr
			co.mu.Unlock()
			co.shutdown()
			return err
		case <-tick.C:
			co.cond.Broadcast()
		}
	}
}

// shutdown closes the listener and wakes every parked worker loop — their
// nextShard calls observe closed and send the shutdown frame. Serve loops
// blocked reading a still-running shard (the cancellation path; a clean
// completion has none) are unwound by severing those connections.
func (co *Coordinator) shutdown() {
	co.mu.Lock()
	co.closed = true
	var running []*wire
	for _, s := range co.shards {
		if s.status == shardRunning && s.wire != nil {
			running = append(running, s.wire)
		}
	}
	co.cond.Broadcast()
	co.mu.Unlock()
	_ = co.ln.Close()
	for _, w := range running {
		w.close()
	}
	co.serving.Wait()
}

func (co *Coordinator) remainingLocked() int {
	n := 0
	for _, s := range co.shards {
		if s.status != shardDone {
			n++
		}
	}
	return n
}

func (co *Coordinator) closeDoneLocked() {
	select {
	case <-co.doneCh:
	default:
		close(co.doneCh)
	}
}

// failLocked aborts the run.
func (co *Coordinator) failLocked(err error) {
	if co.failErr == nil {
		co.failErr = err
	}
	co.closed = true
	co.closeDoneLocked()
	co.cond.Broadcast()
}

// serveWorker drives one worker connection: validate its hello, then loop
// shard assignment → progress → completion until no work remains.
func (co *Coordinator) serveWorker(w *wire) {
	defer w.close()
	hello, err := w.read()
	if err != nil || hello.Type != fHello {
		return
	}
	if want := fmt.Sprintf("%016x", co.plan); hello.Plan != want || hello.Units != co.units {
		_ = w.send(frame{Type: fReject, Reason: fmt.Sprintf(
			"worker sweeps a different plan (worker %s/%d units, coordinator %s/%d units)",
			hello.Plan, hello.Units, want, co.units)})
		co.logf("fleet: rejected worker %s: plan mismatch", hello.Name)
		return
	}
	name := hello.Name
	if name == "" {
		name = w.conn.RemoteAddr().String()
	}
	co.logf("fleet: worker %s connected (parallelism %d)", name, hello.Parallelism)

	for {
		s := co.nextShard(w, name, hello.Parallelism)
		if s == nil {
			_ = w.send(frame{Type: fShutdown})
			return
		}
		assign := frame{
			Type: fAssign, Shard: s.id, Lo: s.lo, Hi: s.hi,
			YieldHi: s.yieldHi, Dir: s.dir,
		}
		co.logf("fleet: shard %d units [%d,%d) -> worker %s", s.id, s.lo, s.yieldHi, name)
		if err := w.send(assign); err != nil {
			co.dropWorker(s, name)
			return
		}
		if !co.consumeUntilDone(w, s, name) {
			return
		}
	}
}

// consumeUntilDone reads one worker's frames for its running shard. Returns
// false when the connection died (the shard re-pends for someone else).
func (co *Coordinator) consumeUntilDone(w *wire, s *shardState, name string) bool {
	for {
		f, err := w.read()
		if err != nil {
			co.dropWorker(s, name)
			return false
		}
		switch f.Type {
		case fProgress:
			if f.Shard != s.id {
				continue
			}
			co.mu.Lock()
			s.done = f.Done
			s.records = f.Records
			co.cond.Broadcast() // steal margins moved
			co.mu.Unlock()
		case fShardDone:
			if f.Shard != s.id {
				continue
			}
			co.finishShard(s, f, name)
			return true
		}
	}
}

// dropWorker handles a dead connection: the worker's running shard goes back
// to pending and the next assignee resumes it from the journal's last
// checkpoint — nothing the dead worker checkpointed is re-swept.
func (co *Coordinator) dropWorker(s *shardState, name string) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if s.status != shardRunning {
		return
	}
	s.status = shardPending
	s.owner, s.wire = "", nil
	co.logf("fleet: shard %d stolen from dead worker %s (re-issued from checkpoint, %d units / %d records journaled)",
		s.id, name, s.done, s.records)
	if err := co.saveLocked(); err != nil {
		co.failLocked(err)
		return
	}
	co.cond.Broadcast()
}

// finishShard books a shard_done frame: success finishes the shard, an error
// re-pends it up to maxShardAttempts times.
func (co *Coordinator) finishShard(s *shardState, f frame, name string) {
	co.mu.Lock()
	defer co.mu.Unlock()
	s.owner, s.wire = "", nil
	if f.Err != "" {
		s.status = shardPending
		s.attempts++
		co.logf("fleet: shard %d failed on worker %s (attempt %d/%d): %s", s.id, name, s.attempts, maxShardAttempts, f.Err)
		if s.attempts >= maxShardAttempts {
			co.failLocked(fmt.Errorf("fleet: shard %d failed %d times, last: %s", s.id, s.attempts, f.Err))
			return
		}
	} else {
		s.status = shardDone
		s.done = f.Done
		s.records = f.Records
		co.logf("fleet: shard %d done on worker %s (%d units, %d records)", s.id, name, f.Done, f.Records)
	}
	if err := co.saveLocked(); err != nil {
		co.failLocked(err)
		return
	}
	if co.remainingLocked() == 0 {
		co.closeDoneLocked()
	}
	co.cond.Broadcast()
}

// nextShard blocks until a shard is available for this worker — a pending
// one, or a tail stolen from a straggler — and marks it running. Returns nil
// when the run is over (all done, failed, or shut down).
func (co *Coordinator) nextShard(w *wire, name string, parallelism int) *shardState {
	co.mu.Lock()
	defer co.mu.Unlock()
	for {
		if co.closed || co.remainingLocked() == 0 {
			return nil
		}
		var pick *shardState
		for _, s := range co.shards {
			if s.status == shardPending && (pick == nil || s.id < pick.id) {
				pick = s
			}
		}
		if pick == nil {
			pick = co.stealLocked()
		}
		if pick != nil {
			pick.status = shardRunning
			pick.owner, pick.wire, pick.ownerPar = name, w, parallelism
			pick.assignedAt = time.Now()
			if err := co.saveLocked(); err != nil {
				co.failLocked(err)
				return nil
			}
			return pick
		}
		co.cond.Wait()
	}
}

// stealLocked splits the straggler with the largest unstarted tail: the
// victim's effective end drops to the split point (a yield frame tells it to
// shed those units) and the tail becomes a fresh pending shard with its own
// journal. The split point is victim.lo + done + margin, where the margin
// covers every unit the victim's pools could already have in flight (the
// correct and fused sweeps each run `parallelism` workers), so stolen units
// are, at worst, briefly double-swept — never lost — and the first-wins
// merge dedups the overlap.
func (co *Coordinator) stealLocked() *shardState {
	minTail := co.opts.minStealUnits()
	var victim *shardState
	victimSplit, victimTail := 0, 0
	for _, s := range co.shards {
		if s.status != shardRunning || s.wire == nil {
			continue
		}
		if time.Since(s.assignedAt) < co.opts.stealAfter() {
			continue
		}
		margin := 2*s.ownerPar + 1
		split := s.lo + s.done + margin
		if split <= s.lo {
			split = s.lo + 1
		}
		tail := s.yieldHi - split
		if tail < minTail {
			continue
		}
		if victim == nil || tail > victimTail {
			victim, victimSplit, victimTail = s, split, tail
		}
	}
	if victim == nil {
		return nil
	}
	thief := &shardState{
		id: co.nextID, lo: victimSplit, hi: victim.yieldHi, yieldHi: victim.yieldHi,
		dir: co.shardDir(co.nextID), status: shardPending,
	}
	co.nextID++
	co.shards = append(co.shards, thief)
	oldHi := victim.yieldHi
	victim.yieldHi = victimSplit
	co.logf("fleet: shard stolen — tail [%d,%d) of shard %d (worker %s) re-cut as shard %d",
		victimSplit, oldHi, victim.id, victim.owner, thief.id)
	// Tell the victim to shed the tail. A failed send means the victim is
	// dying; its connection teardown re-pends its shard, and the thief shard
	// covers the tail either way.
	if err := victim.wire.send(frame{Type: fYield, Shard: victim.id, Hi: victimSplit}); err != nil {
		co.logf("fleet: yield to worker %s failed (%v); relying on re-issue", victim.owner, err)
	}
	return thief
}

// Finish merges the shard journals and runs the full pipeline over the
// merged journal: replay folds every shard's records through the ordinary
// resume path (first-wins on stolen-tail overlap), determination and
// analysis run once over the whole plan, and the report comes out
// byte-identical to a single-process run. Call after Run returns nil.
func (co *Coordinator) Finish(ctx context.Context) (*core.Result, error) {
	co.mu.Lock()
	if n := co.remainingLocked(); n != 0 {
		co.mu.Unlock()
		return nil, fmt.Errorf("fleet: %d shards unfinished", n)
	}
	dirs := make([]string, 0, len(co.shards))
	ids := make([]int, 0, len(co.shards))
	for _, s := range co.shards {
		ids = append(ids, s.id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		for _, s := range co.shards {
			if s.id == id {
				dirs = append(dirs, s.dir)
			}
		}
	}
	co.mu.Unlock()

	merged := filepath.Join(co.opts.Dir, "merged")
	if err := os.RemoveAll(merged); err != nil {
		return nil, fmt.Errorf("fleet: clear merged dir: %w", err)
	}
	st, err := core.MergeShardJournals(merged, co.cfg, dirs)
	if err != nil {
		return nil, err
	}
	j, err := core.OpenJournal(merged, co.cfg, core.JournalOptions{CheckpointEvery: co.opts.CheckpointEvery})
	if err != nil {
		return nil, err
	}
	cfg := *co.cfg
	cfg.Journal = j
	res, runErr := core.NewPipeline(&cfg).Run(ctx)
	if cerr := j.Close(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		return res, runErr
	}
	co.logf("fleet: merge ok (%d shard dirs, %d segments, %d bytes; %d answered replayed)",
		st.Dirs, st.Segments, st.Bytes, j.ReplayedAnswered())
	return res, nil
}
