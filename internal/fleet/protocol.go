// The coordinator/worker wire protocol: JSON lines over one TCP connection
// per worker. Frames are small and infrequent (per shard, per server unit),
// so a text protocol costs nothing and keeps the CI smoke logs readable.
//
//	worker → coordinator    hello       plan hash + unit count + identity
//	coordinator → worker    reject      hello mismatch; connection closes
//	coordinator → worker    assign      one shard: range, yield point, dir
//	worker → coordinator    progress    units done / records journaled so far
//	coordinator → worker    yield       lower the shard's effective end —
//	                                    the tail was stolen by another worker
//	worker → coordinator    shard_done  shard finished (or failed: err set)
//	coordinator → worker    shutdown    no work left; drain and exit
//
// A worker owns at most one shard at a time; assign/shard_done alternate on
// the main exchange while yield may arrive at any point during a run.
package fleet

import (
	"bufio"
	"encoding/json"
	"net"
	"sync"
)

// frame types.
const (
	fHello     = "hello"
	fReject    = "reject"
	fAssign    = "assign"
	fProgress  = "progress"
	fYield     = "yield"
	fShardDone = "shard_done"
	fShutdown  = "shutdown"
)

// frame is every protocol message; Type selects which fields are meaningful.
// Numeric fields deliberately avoid omitempty: Lo=0, Shard=0, and Done=0 are
// all meaningful values.
type frame struct {
	Type string `json:"type"`

	// hello
	Plan        string `json:"plan,omitempty"` // full plan hash, %016x
	Units       int    `json:"units,omitempty"`
	Name        string `json:"name,omitempty"`
	Parallelism int    `json:"parallelism,omitempty"`

	// assign / yield / progress / shard_done
	Shard int `json:"shard"`
	// assign: the shard journal's descriptor range. yield: Hi is the new
	// effective end (units ≥ Hi belong to the thief now).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// assign: the effective sweep end, ≤ the descriptor Hi. They differ when
	// a previously yielded shard is re-issued after its worker died: the
	// journal keeps its original descriptor, the sweep stops at the yield
	// point.
	YieldHi int    `json:"yield_hi,omitempty"`
	Dir     string `json:"dir,omitempty"`

	// progress / shard_done
	Done    int   `json:"done"`
	Records int64 `json:"records"`

	// reject / shard_done
	Reason string `json:"reason,omitempty"`
	Err    string `json:"err,omitempty"`
}

// wire frames one connection: newline-delimited JSON with a write mutex so
// the coordinator can push a yield from the stealer while the serve loop
// replies on the main exchange.
type wire struct {
	conn net.Conn
	wmu  sync.Mutex
	enc  *json.Encoder
	dec  *json.Decoder
}

func newWire(conn net.Conn) *wire {
	return &wire{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}
}

func (w *wire) send(f frame) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return w.enc.Encode(f)
}

func (w *wire) read() (frame, error) {
	var f frame
	err := w.dec.Decode(&f)
	return f, err
}

func (w *wire) close() { _ = w.conn.Close() }
