// The worker: dials the coordinator, sweeps assigned shards with the full
// journaled pipeline in collect-only mode, reports per-unit progress, and
// sheds its shard's tail when the coordinator yields it away.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// WorkerOptions tunes RunWorker.
type WorkerOptions struct {
	// Name identifies the worker in coordinator logs.
	Name string
	// Parallelism is the per-shard sweep pool size. Zero inherits the
	// config's resolution (GOMAXPROCS).
	Parallelism int
	// CheckpointEvery is the shard journal's checkpoint interval.
	CheckpointEvery int
	// DieAtRecords, when positive, kills the worker once its shard journal
	// holds that many records — the fleet-smoke "kill one worker mid-shard"
	// hook. The default death severs the connection and aborts the run
	// in-process; Die overrides the action (the CLI uses os.Exit so the
	// process death is real).
	DieAtRecords int64
	Die          func()
	// Logf receives progress lines. Nil discards them.
	Logf func(format string, args ...any)
}

// RunWorker connects to a coordinator and sweeps shards until the
// coordinator sends shutdown (clean exit, returns nil), rejects the hello,
// or the connection/context dies.
func RunWorker(ctx context.Context, addr string, full *core.Config, opts WorkerOptions) error {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	plan := full.PlanHash()
	units := full.PlanUnits()

	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("fleet: dial coordinator %s: %w", addr, err)
	}
	w := newWire(conn)
	defer w.close()
	// The connection has no protocol-level keepalive; a dead coordinator
	// surfaces as a read error. Context cancellation closes the conn so the
	// reader unblocks.
	stop := context.AfterFunc(ctx, func() { w.close() })
	defer stop()

	hello := frame{
		Type: fHello, Plan: fmt.Sprintf("%016x", plan), Units: units,
		Name: opts.Name, Parallelism: opts.Parallelism,
	}
	if err := w.send(hello); err != nil {
		return fmt.Errorf("fleet: hello: %w", err)
	}

	// One goroutine owns the read side: yield frames update the running
	// shard's effective end in place (they arrive mid-sweep), every other
	// frame flows to the main loop.
	sess := &workerSession{curShard: -1}
	mainCh := make(chan frame, 4)
	readErr := make(chan error, 1)
	go func() {
		defer close(mainCh)
		for {
			f, err := w.read()
			if err != nil {
				readErr <- err
				return
			}
			if f.Type == fYield {
				if sess.applyYield(f) {
					logf("fleet: worker %s: shard %d tail yielded, new end unit %d", opts.Name, f.Shard, f.Hi)
				}
				continue
			}
			mainCh <- f
		}
	}()

	idx := UnitIndex(full)
	for {
		var f frame
		var ok bool
		select {
		case <-ctx.Done():
			return ctx.Err()
		case f, ok = <-mainCh:
		}
		if !ok {
			err := <-readErr
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("fleet: coordinator connection lost: %w", err)
		}
		switch f.Type {
		case fReject:
			return fmt.Errorf("fleet: coordinator rejected worker: %s", f.Reason)
		case fShutdown:
			logf("fleet: worker %s: no work left, shutting down", opts.Name)
			return nil
		case fAssign:
			if err := runShard(ctx, w, sess, full, idx, f, opts, logf); err != nil {
				return err
			}
		}
	}
}

// workerSession tracks which shard this worker is running so the reader
// goroutine can route yield frames to it.
type workerSession struct {
	mu       sync.Mutex
	curShard int
	yieldHi  *atomic.Int64
}

func (s *workerSession) begin(shard int, yieldHi *atomic.Int64) {
	s.mu.Lock()
	s.curShard, s.yieldHi = shard, yieldHi
	s.mu.Unlock()
}

func (s *workerSession) end() {
	s.mu.Lock()
	s.curShard, s.yieldHi = -1, nil
	s.mu.Unlock()
}

// applyYield lowers the running shard's effective end; a yield for a shard
// this worker no longer runs (it finished just as the steal fired) is
// ignored — the thief re-sweeps the tail either way.
func (s *workerSession) applyYield(f frame) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.curShard != f.Shard || s.yieldHi == nil {
		return false
	}
	// Yields only move the end down.
	for {
		cur := s.yieldHi.Load()
		if int64(f.Hi) >= cur || s.yieldHi.CompareAndSwap(cur, int64(f.Hi)) {
			return int64(f.Hi) < cur
		}
	}
}

// errWorkerDied is returned when the DieAtRecords hook fired.
var errWorkerDied = errors.New("fleet: worker died (DieAtRecords)")

// runShard sweeps one assigned shard through the journaled pipeline in
// collect-only mode and reports the outcome. The shard's own config slice
// plus the shard descriptor reproduce exactly the probes a single-process
// run would issue for these units; SkipServer drops units at or past the
// yield point at dispatch time.
func runShard(ctx context.Context, w *wire, sess *workerSession, full *core.Config, idx map[netip.Addr]int, f frame, opts WorkerOptions, logf func(string, ...any)) error {
	sd := core.ShardDesc{Index: f.Shard, Lo: f.Lo, Hi: f.Hi, Units: full.PlanUnits()}
	logf("fleet: worker %s: assigned %s (sweep end %d) in %s", opts.Name, sd, f.YieldHi, f.Dir)

	var yieldHi atomic.Int64
	if f.YieldHi > 0 {
		yieldHi.Store(int64(f.YieldHi))
	} else {
		yieldHi.Store(int64(f.Hi))
	}
	sess.begin(f.Shard, &yieldHi)
	defer sess.end()

	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	scfg := ShardConfig(full, f.Lo, f.Hi)
	scfg.CollectOnly = true
	if opts.Parallelism > 0 {
		scfg.Parallelism = opts.Parallelism
	}
	scfg.SkipServer = func(a netip.Addr) bool {
		return int64(idx[a]) >= yieldHi.Load()
	}

	j, err := core.OpenShardJournal(f.Dir, scfg, full.PlanHash(), sd, core.JournalOptions{CheckpointEvery: opts.CheckpointEvery})
	if err != nil {
		// A bad assignment (or a clobbered directory) fails this shard, not
		// the worker: report it and let the coordinator re-issue or abort.
		return sendDone(w, f.Shard, 0, 0, err)
	}
	if opts.DieAtRecords > 0 {
		die := opts.Die
		if die == nil {
			// Default death: sever the coordinator connection and abort the
			// run mid-flight, from inside the append path — the closest
			// in-process stand-in for SIGKILL. Unflushed records past the
			// last checkpoint are lost, exactly like a real death.
			die = func() {
				w.close()
				cancel(errWorkerDied)
			}
		}
		var once sync.Once
		limit := opts.DieAtRecords
		j.AppendHook = func(total int64) {
			if total >= limit {
				once.Do(die)
			}
		}
	}

	var done atomic.Int64
	scfg.ServerDone = func(netip.Addr) {
		d := done.Add(1)
		// Best-effort: a lost progress frame only delays work stealing.
		_ = w.send(frame{Type: fProgress, Shard: f.Shard, Done: int(d), Records: j.Appended()})
	}
	scfg.Journal = j

	_, runErr := core.NewPipeline(scfg).Run(runCtx)
	if cerr := j.Close(); runErr == nil {
		runErr = cerr
	}
	if cause := context.Cause(runCtx); cause != nil && errors.Is(cause, errWorkerDied) {
		return errWorkerDied
	}
	if runErr != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return sendDone(w, f.Shard, int(done.Load()), j.Appended(), runErr)
}

func sendDone(w *wire, shard, done int, records int64, runErr error) error {
	df := frame{Type: fShardDone, Shard: shard, Done: done, Records: records}
	if runErr != nil {
		df.Err = runErr.Error()
	}
	if err := w.send(df); err != nil {
		return fmt.Errorf("fleet: report shard %d: %w", shard, err)
	}
	return nil
}
