package fleet

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/ipam"
	"repro/internal/simnet"
)

// fleetFixture wires a 12-unit plan (2 open resolvers + 10 nameservers, 8
// targets) over its own fabric. Every in-test "process" — the coordinator
// and each worker — builds its own fixture from the same seed: separate
// fabrics with identical deterministic worlds, exactly what separate OS
// processes would see.
type fleetFixture struct {
	cfg       *core.Config
	fabric    *simnet.Fabric
	nsAddrs   []netip.Addr
	resolvers []netip.Addr
}

func newFleetFixture(t testing.TB, seed int64, chaos bool) *fleetFixture {
	t.Helper()
	const numNS, numResolvers, numTargets = 10, 2, 8
	fabric := simnet.New(seed)
	fx := &fleetFixture{fabric: fabric}

	hosted := make(map[dns.Name]netip.Addr, numTargets)
	legit := make(map[dns.Name]netip.Addr, numTargets)
	targets := make([]dns.Name, 0, numTargets)
	for j := 0; j < numTargets; j++ {
		name := dns.Name(fmt.Sprintf("t%02d.example", j))
		targets = append(targets, name)
		hosted[name] = netip.MustParseAddr(fmt.Sprintf("203.0.113.%d", j+1))
		legit[name] = netip.MustParseAddr(fmt.Sprintf("198.51.100.%d", j+1))
	}
	zoneFor := func(answers map[dns.Name]netip.Addr) dnsio.ResponderFunc {
		return func(_ netip.Addr, q *dns.Message) *dns.Message {
			r := q.Reply()
			addr, ok := answers[q.Question().Name]
			if !ok {
				r.Header.RCode = dns.RCodeNXDomain
				return r
			}
			switch q.Question().Type {
			case dns.TypeA:
				r.Answers = append(r.Answers, dns.RR{Name: q.Question().Name,
					Class: dns.ClassINET, TTL: 300, Data: &dns.A{Addr: addr}})
			case dns.TypeTXT:
				r.Answers = append(r.Answers, dns.RR{Name: q.Question().Name,
					Class: dns.ClassINET, TTL: 300,
					Data: dns.NewTXT("v=spf1 ip4:" + addr.String() + " -all")})
			}
			return r
		}
	}

	var nss []core.NameserverInfo
	for i := 0; i < numNS; i++ {
		addr := netip.MustParseAddr(fmt.Sprintf("10.0.0.%d", i+1))
		if _, err := dnsio.AttachSim(fabric, addr, zoneFor(hosted)); err != nil {
			t.Fatal(err)
		}
		fx.nsAddrs = append(fx.nsAddrs, addr)
		nss = append(nss, core.NameserverInfo{Addr: addr,
			Host: dns.Name(fmt.Sprintf("ns%d.fleet.test", i+1)), Provider: fmt.Sprintf("P%d", i%3)})
	}
	for i := 0; i < numResolvers; i++ {
		addr := netip.MustParseAddr(fmt.Sprintf("10.0.1.%d", i+1))
		if _, err := dnsio.AttachSim(fabric, addr, zoneFor(legit)); err != nil {
			t.Fatal(err)
		}
		fx.resolvers = append(fx.resolvers, addr)
	}

	fx.cfg = &core.Config{
		Fabric:        fabric,
		IPDB:          ipam.New(),
		SrcAddr:       netip.MustParseAddr("10.0.2.1"),
		Targets:       targets,
		Nameservers:   nss,
		OpenResolvers: fx.resolvers,
		Now:           time.Date(2022, 4, 15, 0, 0, 0, 0, time.UTC),
		Parallelism:   4,
		Seed:          seed,
	}
	if chaos {
		// Sequence-independent faults only: these answer the same way no
		// matter how many exchanges preceded a probe, so a re-shard (whose
		// per-endpoint sequence counters reset per process) sees the exact
		// failure surface the single-process run saw.
		dnsio.SetSimFault(fabric, fx.nsAddrs[1], simnet.FaultProfile{ServFail: true})
		dnsio.SetSimFault(fabric, fx.nsAddrs[0], simnet.FaultProfile{Blackhole: true})
		dnsio.SetSimFault(fabric, fx.nsAddrs[3], simnet.FaultProfile{WrongIDRate: 1})
	}
	return fx
}

// renderRecords fingerprints a result's record content — the byte-identity
// contract's surface.
func renderRecords(res *core.Result) string {
	var sb strings.Builder
	for _, u := range res.URs {
		fmt.Fprintf(&sb, "ur|%s|%s|%s|%d|%s\n",
			u.Server.Addr, u.Domain, u.Type, u.TTL, u.RData)
	}
	for _, u := range res.Suspicious {
		fmt.Fprintf(&sb, "sus|%s|%s|%s|%d|%s|%s\n",
			u.Server.Addr, u.Domain, u.Type, u.TTL, u.RData, u.Category)
	}
	return sb.String()
}

// baselineRun is the single-process reference: one fixture, one pipeline.
func baselineRun(t *testing.T, seed int64, chaos bool) string {
	t.Helper()
	fx := newFleetFixture(t, seed, chaos)
	res, err := core.NewPipeline(fx.cfg).Run(context.Background())
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	return renderRecords(res)
}

// logCapture collects coordinator/worker log lines for assertions.
type logCapture struct {
	mu sync.Mutex
	sb strings.Builder
}

func (l *logCapture) logf(format string, args ...any) {
	l.mu.Lock()
	fmt.Fprintf(&l.sb, format+"\n", args...)
	l.mu.Unlock()
}

func (l *logCapture) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sb.String()
}

// fleetRun drives a full coordinator+workers round in-process and returns
// the merged result's fingerprint. workerOpts customises per-worker options
// (die hooks, parallelism); transports optionally overrides a worker's
// transport (slow straggler).
func fleetRun(t *testing.T, seed int64, chaos bool, dir string, co *Coordinator, workers []WorkerOptions, transports []dnsio.Transport) (*core.Result, []error) {
	t.Helper()
	if err := co.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	runErr := make(chan error, 1)
	go func() { runErr <- co.Run(ctx) }()

	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, wo := range workers {
		wfx := newFleetFixture(t, seed, chaos)
		if transports != nil && transports[i] != nil {
			wfx.cfg.Transport = transports[i]
		}
		wg.Add(1)
		go func(i int, wo WorkerOptions, cfg *core.Config) {
			defer wg.Done()
			errs[i] = RunWorker(ctx, co.Addr().String(), cfg, wo)
		}(i, wo, wfx.cfg)
	}
	if err := <-runErr; err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	wg.Wait()
	res, err := co.Finish(ctx)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return res, errs
}

// waitForLog polls the captured log until substr appears.
func waitForLog(t *testing.T, lg *logCapture, substr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(lg.String(), substr) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %q in log:\n%s", substr, lg.String())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSplitPlan pins the contiguous near-even cut.
func TestSplitPlan(t *testing.T) {
	for _, tc := range []struct {
		units, n int
		sizes    []int
	}{
		{12, 1, []int{12}},
		{12, 2, []int{6, 6}},
		{12, 4, []int{3, 3, 3, 3}},
		{12, 7, []int{2, 2, 2, 2, 2, 1, 1}},
		{3, 8, []int{1, 1, 1}},
		{5, 0, []int{5}},
	} {
		got := SplitPlan(tc.units, tc.n)
		if len(got) != len(tc.sizes) {
			t.Fatalf("SplitPlan(%d,%d): %d shards, want %d", tc.units, tc.n, len(got), len(tc.sizes))
		}
		lo := 0
		for i, sd := range got {
			if sd.Lo != lo || sd.Hi-sd.Lo != tc.sizes[i] || sd.Units != tc.units || sd.Index != i {
				t.Errorf("SplitPlan(%d,%d)[%d] = %+v, want lo=%d size=%d", tc.units, tc.n, i, sd, lo, tc.sizes[i])
			}
			lo = sd.Hi
		}
		if lo != tc.units {
			t.Errorf("SplitPlan(%d,%d) covers [0,%d), want [0,%d)", tc.units, tc.n, lo, tc.units)
		}
	}
}

// TestShardConfigSlices pins the unit→config slicing and the unit index.
func TestShardConfigSlices(t *testing.T) {
	fx := newFleetFixture(t, 11, false)
	full := fx.cfg
	if got := full.PlanUnits(); got != 12 {
		t.Fatalf("PlanUnits = %d, want 12", got)
	}
	idx := UnitIndex(full)
	if idx[full.OpenResolvers[0]] != 0 || idx[full.OpenResolvers[1]] != 1 || idx[full.Nameservers[0].Addr] != 2 {
		t.Fatalf("unexpected unit index: %v", idx)
	}
	// A shard spanning the resolver/nameserver boundary.
	s := ShardConfig(full, 1, 5)
	if len(s.OpenResolvers) != 1 || s.OpenResolvers[0] != full.OpenResolvers[1] {
		t.Errorf("resolver slice wrong: %v", s.OpenResolvers)
	}
	if len(s.Nameservers) != 3 || s.Nameservers[0].Addr != full.Nameservers[0].Addr {
		t.Errorf("nameserver slice wrong: %d", len(s.Nameservers))
	}
	// Pure-nameserver shard.
	s = ShardConfig(full, 7, 12)
	if len(s.OpenResolvers) != 0 || len(s.Nameservers) != 5 {
		t.Errorf("tail shard wrong: %d resolvers, %d nameservers", len(s.OpenResolvers), len(s.Nameservers))
	}
}

// TestFleetByteIdenticalAcrossShards is the re-shard determinism pin: the
// merged report from 1, 2, 4, and 7 shards (uneven split), at parallelism 1
// and 4, chaos on, must be byte-identical to the single-process run.
func TestFleetByteIdenticalAcrossShards(t *testing.T) {
	const seed = 11
	want := baselineRun(t, seed, true)
	for _, shards := range []int{1, 2, 4, 7} {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards=%d/par=%d", shards, par), func(t *testing.T) {
				dir := t.TempDir()
				var lg logCapture
				co, err := NewCoordinator(newFleetFixture(t, seed, true).cfg, CoordOptions{
					Dir: dir, Shards: shards, CheckpointEvery: 8,
					StealAfter: time.Minute, Logf: lg.logf,
				})
				if err != nil {
					t.Fatal(err)
				}
				nWorkers := 2
				if shards == 1 {
					nWorkers = 1
				}
				workers := make([]WorkerOptions, nWorkers)
				for i := range workers {
					workers[i] = WorkerOptions{Name: fmt.Sprintf("w%d", i), Parallelism: par, CheckpointEvery: 8, Logf: lg.logf}
				}
				res, errs := fleetRun(t, seed, true, dir, co, workers, nil)
				for i, err := range errs {
					if err != nil {
						t.Errorf("worker %d: %v", i, err)
					}
				}
				if got := renderRecords(res); got != want {
					t.Errorf("merged report differs from single-process run (%d shards, par %d):\ngot  %d bytes\nwant %d bytes\nlog:\n%s",
						shards, par, len(got), len(want), lg.String())
				}
			})
		}
	}
}

// TestFleetByteIdenticalNoChaos covers the fault-free plan point of the
// (shards × parallelism × chaos) grid.
func TestFleetByteIdenticalNoChaos(t *testing.T) {
	const seed = 23
	want := baselineRun(t, seed, false)
	var lg logCapture
	co, err := NewCoordinator(newFleetFixture(t, seed, false).cfg, CoordOptions{
		Dir: t.TempDir(), Shards: 4, CheckpointEvery: 8, StealAfter: time.Minute, Logf: lg.logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	workers := []WorkerOptions{
		{Name: "w0", Parallelism: 4, CheckpointEvery: 8},
		{Name: "w1", Parallelism: 4, CheckpointEvery: 8},
	}
	res, errs := fleetRun(t, seed, false, "", co, workers, nil)
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if got := renderRecords(res); got != want {
		t.Errorf("merged no-chaos report differs from single-process run\nlog:\n%s", lg.String())
	}
}

// TestFleetKillWorkerMidShard kills one worker partway through its shard
// (journal at ~30 records, checkpoints every 8): the coordinator must
// re-issue the shard from its last checkpoint to the surviving worker, and
// the merged report must still be byte-identical.
func TestFleetKillWorkerMidShard(t *testing.T) {
	const seed = 11
	want := baselineRun(t, seed, true)
	var lg logCapture
	co, err := NewCoordinator(newFleetFixture(t, seed, true).cfg, CoordOptions{
		Dir: t.TempDir(), Shards: 2, CheckpointEvery: 8, StealAfter: time.Minute, Logf: lg.logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	workers := []WorkerOptions{
		{Name: "doomed", Parallelism: 2, CheckpointEvery: 8, DieAtRecords: 30, Logf: lg.logf},
		{Name: "survivor", Parallelism: 2, CheckpointEvery: 8, Logf: lg.logf},
	}
	res, errs := fleetRun(t, seed, true, "", co, workers, nil)
	if errs[0] == nil {
		t.Error("doomed worker did not die")
	}
	if errs[1] != nil {
		t.Errorf("survivor: %v", errs[1])
	}
	log := lg.String()
	if !strings.Contains(log, "stolen from dead worker") {
		t.Errorf("no dead-worker steal logged:\n%s", log)
	}
	if got := renderRecords(res); got != want {
		t.Errorf("merged report differs after worker kill + re-issue\nlog:\n%s", log)
	}
}

// slowTransport delays every exchange — an artificial straggler.
type slowTransport struct {
	inner dnsio.Transport
	delay time.Duration
}

func (s *slowTransport) Exchange(ctx context.Context, server netip.AddrPort, packed []byte, tcp bool) ([]byte, error) {
	time.Sleep(s.delay)
	return s.inner.Exchange(ctx, server, packed, tcp)
}

// TestFleetStragglerSteal runs one shard with a deliberately slow worker and
// a fast idle one: the coordinator must steal the straggler's tail
// (split-at-checkpoint) for the idle worker, and the first-wins merge must
// keep the report byte-identical despite the overlap.
func TestFleetStragglerSteal(t *testing.T) {
	const seed = 11
	want := baselineRun(t, seed, true)
	var lg logCapture
	cofx := newFleetFixture(t, seed, true)
	co, err := NewCoordinator(cofx.cfg, CoordOptions{
		Dir: t.TempDir(), Shards: 1, CheckpointEvery: 8,
		StealAfter: 30 * time.Millisecond, MinStealUnits: 2, Logf: lg.logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	slowFx := newFleetFixture(t, seed, true)
	slowFx.cfg.Transport = &slowTransport{
		inner: &dnsio.SimTransport{Fabric: slowFx.fabric, Src: slowFx.cfg.SrcAddr},
		delay: 2 * time.Millisecond,
	}
	if err := co.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	runErr := make(chan error, 1)
	go func() { runErr <- co.Run(ctx) }()

	var wg sync.WaitGroup
	var stragglerErr, thiefErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		stragglerErr = RunWorker(ctx, co.Addr().String(), slowFx.cfg,
			WorkerOptions{Name: "straggler", Parallelism: 1, CheckpointEvery: 8, Logf: lg.logf})
	}()
	// The thief must find the straggler already holding the only shard —
	// started together, the fast worker can win the race for it and just
	// sweep everything itself, and there is nothing to steal.
	waitForLog(t, &lg, "-> worker straggler")
	thiefFx := newFleetFixture(t, seed, true)
	wg.Add(1)
	go func() {
		defer wg.Done()
		thiefErr = RunWorker(ctx, co.Addr().String(), thiefFx.cfg,
			WorkerOptions{Name: "thief", Parallelism: 4, CheckpointEvery: 8, Logf: lg.logf})
	}()
	if err := <-runErr; err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	wg.Wait()
	if stragglerErr != nil {
		t.Errorf("straggler: %v", stragglerErr)
	}
	if thiefErr != nil {
		t.Errorf("thief: %v", thiefErr)
	}
	res, err := co.Finish(ctx)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	log := lg.String()
	if !strings.Contains(log, "shard stolen —") {
		t.Errorf("no straggler steal logged:\n%s", log)
	}
	if got := renderRecords(res); got != want {
		t.Errorf("merged report differs after straggler steal\nlog:\n%s", log)
	}
}

// TestFleetCoordinatorRestart interrupts a run (worker dies, coordinator's
// context is cancelled with a shard still pending) and restarts the
// coordinator over the same directory: the restored book must finish the
// remaining shards — resuming the dead worker's journal from its checkpoint
// — and produce the byte-identical merged report.
func TestFleetCoordinatorRestart(t *testing.T) {
	const seed = 11
	want := baselineRun(t, seed, true)
	dir := t.TempDir()

	// Phase 1: one worker that dies mid-shard, then cancel the coordinator.
	var lg1 logCapture
	co1, err := NewCoordinator(newFleetFixture(t, seed, true).cfg, CoordOptions{
		Dir: dir, Shards: 3, CheckpointEvery: 8, StealAfter: time.Minute, Logf: lg1.logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co1.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- co1.Run(ctx1) }()
	wfx := newFleetFixture(t, seed, true)
	werr := RunWorker(context.Background(), co1.Addr().String(), wfx.cfg,
		WorkerOptions{Name: "doomed", Parallelism: 2, CheckpointEvery: 8, DieAtRecords: 20})
	if werr == nil {
		t.Fatal("phase-1 worker did not die")
	}
	cancel1()
	if err := <-runErr; err == nil {
		t.Fatal("cancelled coordinator returned nil")
	}
	if !strings.Contains(lg1.String(), "stolen from dead worker") {
		t.Errorf("phase 1 never re-pended the dead worker's shard:\n%s", lg1.String())
	}

	// Phase 2: a fresh coordinator over the same directory finishes the job.
	var lg2 logCapture
	co2, err := NewCoordinator(newFleetFixture(t, seed, true).cfg, CoordOptions{
		Dir: dir, Shards: 3, CheckpointEvery: 8, StealAfter: time.Minute, Logf: lg2.logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lg2.String(), "restored") {
		t.Errorf("restarted coordinator did not restore its book:\n%s", lg2.String())
	}
	workers := []WorkerOptions{
		{Name: "w0", Parallelism: 2, CheckpointEvery: 8},
		{Name: "w1", Parallelism: 2, CheckpointEvery: 8},
	}
	res, errs := fleetRun(t, seed, true, dir, co2, workers, nil)
	for i, err := range errs {
		if err != nil {
			t.Errorf("phase-2 worker %d: %v", i, err)
		}
	}
	if got := renderRecords(res); got != want {
		t.Errorf("merged report differs after coordinator restart\nphase2 log:\n%s", lg2.String())
	}
}

// TestFleetRejectsMismatchedWorker pins the hello validation: a worker
// configured for a different plan must be rejected with a clear reason.
func TestFleetRejectsMismatchedWorker(t *testing.T) {
	var lg logCapture
	co, err := NewCoordinator(newFleetFixture(t, 11, false).cfg, CoordOptions{
		Dir: t.TempDir(), Shards: 2, StealAfter: time.Minute, Logf: lg.logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- co.Run(ctx) }()

	other := newFleetFixture(t, 99, false) // different seed → different plan
	werr := RunWorker(ctx, co.Addr().String(), other.cfg, WorkerOptions{Name: "wrong"})
	if werr == nil || !strings.Contains(werr.Error(), "rejected") {
		t.Fatalf("mismatched worker error = %v, want rejection", werr)
	}
	cancel()
	<-runErr
}
