// Package fleet distributes one probe plan across worker processes.
//
// The unit of distribution is a server unit — one open resolver or one
// nameserver, the same granularity the collector's worker pools already
// schedule at. A shard is a contiguous range of units; a worker sweeps its
// shard with the ordinary journaled pipeline (chaos, breakers, watchdog,
// graceful drain all apply) in collect-only mode, and the coordinator merges
// the shard journals through the resume path into one report that is
// byte-identical to a single-process run of the same plan+seed.
//
// Sharding never splits a server across shards, so each endpoint's exchange
// order stays a pure function of the configuration — the property the
// deterministic chaos machinery and the byte-identity pins depend on.
package fleet

import (
	"net/netip"

	"repro/internal/core"
)

// SplitPlan cuts [0, units) into n contiguous, near-even shards. Shard sizes
// differ by at most one (the remainder spreads over the first shards); n is
// clamped to [1, units] so no shard is empty.
func SplitPlan(units, n int) []core.ShardDesc {
	if n < 1 {
		n = 1
	}
	if n > units {
		n = units
	}
	if units <= 0 {
		return nil
	}
	out := make([]core.ShardDesc, 0, n)
	base, rem := units/n, units%n
	lo := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, core.ShardDesc{Index: i, Lo: lo, Hi: lo + size, Units: units})
		lo += size
	}
	return out
}

// ShardConfig slices a full-plan config down to the units in [lo, hi):
// open resolvers occupy unit indices [0, R), nameservers [R, R+N), both in
// config order. Everything else — seed, targets, query types, world wiring —
// is shared, so the shard's plan hash is itself deterministic and
// OpenShardJournal can verify the slice matches its descriptor.
func ShardConfig(full *core.Config, lo, hi int) *core.Config {
	c := *full
	r := len(full.OpenResolvers)
	rlo, rhi := clamp(lo, 0, r), clamp(hi, 0, r)
	c.OpenResolvers = full.OpenResolvers[rlo:rhi]
	nlo, nhi := clamp(lo-r, 0, len(full.Nameservers)), clamp(hi-r, 0, len(full.Nameservers))
	c.Nameservers = full.Nameservers[nlo:nhi]
	return &c
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// UnitIndex maps every server address in the full plan to its unit index —
// how a worker translates a yield point ("stop before unit s") into the
// per-server SkipServer decision the collector consults at dispatch time.
func UnitIndex(full *core.Config) map[netip.Addr]int {
	m := make(map[netip.Addr]int, full.PlanUnits())
	i := 0
	for _, r := range full.OpenResolvers {
		m[r] = i
		i++
	}
	for _, ns := range full.Nameservers {
		m[ns.Addr] = i
		i++
	}
	return m
}
