// Package ipam is the reproduction's IP-address management and intelligence
// substrate: it allocates synthetic IPv4 space to organizations (autonomous
// systems) and answers the AS/geolocation lookups that the paper performs
// against the MaxMind database when enriching undelegated A records.
//
// Address space is carved as /16 blocks from a deterministic sequence, so a
// world generated from one seed always maps the same addresses to the same
// organizations, and addresses allocated consecutively within an AS share
// prefixes (which is how the masquerading-SPF case study gets three
// malicious IPs inside one /24).
package ipam

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// ASN is an autonomous system number.
type ASN uint32

// Info is the intelligence record for one IP address.
type Info struct {
	Addr    netip.Addr
	ASN     ASN
	ASName  string
	Country string
}

// asEntry tracks one organization's allocation state.
type asEntry struct {
	asn     ASN
	name    string
	country string
	blocks  []uint16 // high 16 bits of owned /16s
	next    uint32   // low 16 bits cursor within current block
	cursor  int      // index into blocks
}

// DB allocates address space and resolves IP→AS/geo lookups.
type DB struct {
	mu        sync.RWMutex
	byASN     map[ASN]*asEntry
	byBlock   map[uint16]*asEntry // /16 high bits -> owner
	nextASN   ASN
	nextBlock uint32 // next unassigned /16, as high-16-bit value
}

// New creates an empty database. Allocation starts in 11.0.0.0/8-adjacent
// space and walks upward, skipping reserved ranges.
func New() *DB {
	return &DB{
		byASN:     make(map[ASN]*asEntry),
		byBlock:   make(map[uint16]*asEntry),
		nextASN:   64500,
		nextBlock: 11 << 8, // 11.0.0.0/16
	}
}

// reservedHigh reports whether a /16 (identified by its high 16 bits) falls
// in space we refuse to allocate (loopback, multicast, RFC1918 10/8 and
// 192.168/16, documentation nets).
func reservedHigh(h uint16) bool {
	hi := byte(h >> 8)
	switch {
	case hi == 0 || hi == 10 || hi == 127:
		return true
	case hi >= 224:
		return true
	case h == 192<<8|168, h == 192<<8|0, h == 198<<8|51, h == 203<<8|0:
		return true
	case hi == 172 && byte(h) >= 16 && byte(h) < 32:
		return true
	case hi == 169 && byte(h) == 254:
		return true
	}
	return false
}

// RegisterAS creates an organization with the given number of /16 blocks and
// returns its ASN.
func (db *DB) RegisterAS(name, country string, blocks int) ASN {
	if blocks < 1 {
		blocks = 1
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	e := &asEntry{asn: db.nextASN, name: name, country: country}
	db.nextASN++
	for i := 0; i < blocks; i++ {
		for reservedHigh(uint16(db.nextBlock)) {
			db.nextBlock++
		}
		if db.nextBlock > 0xFFFF {
			panic("ipam: IPv4 space exhausted")
		}
		h := uint16(db.nextBlock)
		db.nextBlock++
		e.blocks = append(e.blocks, h)
		db.byBlock[h] = e
	}
	db.byASN[e.asn] = e
	return e.asn
}

// Allocate hands out the next unused address owned by the AS. Consecutive
// calls return consecutive addresses.
func (db *DB) Allocate(asn ASN) (netip.Addr, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.byASN[asn]
	if !ok {
		return netip.Addr{}, fmt.Errorf("ipam: unknown ASN %d", asn)
	}
	for {
		if e.cursor >= len(e.blocks) {
			return netip.Addr{}, fmt.Errorf("ipam: AS%d address space exhausted", asn)
		}
		// Skip .0 and .255 of each /24 for realism.
		low := byte(e.next)
		if low == 0 || low == 255 {
			e.next++
			if e.next > 0xFFFF {
				e.cursor++
				e.next = 0
			}
			continue
		}
		h := e.blocks[e.cursor]
		addr := netip.AddrFrom4([4]byte{byte(h >> 8), byte(h), byte(e.next >> 8), low})
		e.next++
		if e.next > 0xFFFF {
			e.cursor++
			e.next = 0
		}
		return addr, nil
	}
}

// MustAllocate is Allocate for generators that own their ASNs; it panics on
// error.
func (db *DB) MustAllocate(asn ASN) netip.Addr {
	a, err := db.Allocate(asn)
	if err != nil {
		panic(err)
	}
	return a
}

// Lookup resolves an address to its owning organization.
func (db *DB) Lookup(addr netip.Addr) (Info, bool) {
	if !addr.Is4() {
		return Info{}, false
	}
	b := addr.As4()
	h := uint16(b[0])<<8 | uint16(b[1])
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.byBlock[h]
	if !ok {
		return Info{}, false
	}
	return Info{Addr: addr, ASN: e.asn, ASName: e.name, Country: e.country}, true
}

// ASNOf is a convenience wrapper returning just the ASN (0 when unknown).
func (db *DB) ASNOf(addr netip.Addr) ASN {
	info, ok := db.Lookup(addr)
	if !ok {
		return 0
	}
	return info.ASN
}

// CountryOf returns the country code for an address ("" when unknown).
func (db *DB) CountryOf(addr netip.Addr) string {
	info, ok := db.Lookup(addr)
	if !ok {
		return ""
	}
	return info.Country
}

// ASNs lists all registered AS numbers, sorted.
func (db *DB) ASNs() []ASN {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]ASN, 0, len(db.byASN))
	for a := range db.byASN {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Countries is the pool of country codes world generators draw from.
var Countries = []string{
	"US", "CN", "DE", "FR", "GB", "JP", "KR", "RU", "BR", "IN",
	"IT", "NL", "SE", "AU", "CA", "ES", "CH", "PL", "TR", "MX",
	"ID", "VN", "SA", "ZA", "EG", "SG", "HK", "TW", "AR", "CL",
}
