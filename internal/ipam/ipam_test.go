package ipam

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestRegisterAndAllocate(t *testing.T) {
	db := New()
	asn := db.RegisterAS("EXAMPLE-NET", "US", 1)
	a1, err := db.Allocate(asn)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := db.Allocate(asn)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Error("duplicate allocation")
	}
	info, ok := db.Lookup(a1)
	if !ok {
		t.Fatal("Lookup failed")
	}
	if info.ASN != asn || info.ASName != "EXAMPLE-NET" || info.Country != "US" {
		t.Errorf("info = %+v", info)
	}
}

func TestConsecutiveAllocationsShareSubnet(t *testing.T) {
	db := New()
	asn := db.RegisterAS("SPF-CASE", "NL", 1)
	var addrs []netip.Addr
	for i := 0; i < 3; i++ {
		addrs = append(addrs, db.MustAllocate(asn))
	}
	// The masquerading-SPF case study needs 3 IPs in the same /24.
	p := netip.PrefixFrom(addrs[0], 24)
	for _, a := range addrs {
		if !p.Contains(a) {
			t.Errorf("%v not in %v", a, p)
		}
	}
}

func TestDistinctASesGetDistinctSpace(t *testing.T) {
	db := New()
	a := db.RegisterAS("A", "US", 2)
	b := db.RegisterAS("B", "DE", 2)
	if a == b {
		t.Fatal("ASN collision")
	}
	addrA := db.MustAllocate(a)
	addrB := db.MustAllocate(b)
	if db.ASNOf(addrA) != a || db.ASNOf(addrB) != b {
		t.Error("ownership mixed up")
	}
	if db.CountryOf(addrA) != "US" || db.CountryOf(addrB) != "DE" {
		t.Error("countries mixed up")
	}
}

func TestNoReservedSpaceAllocated(t *testing.T) {
	db := New()
	asn := db.RegisterAS("BIG", "US", 300)
	for i := 0; i < 5000; i++ {
		a := db.MustAllocate(asn)
		b := a.As4()
		if b[0] == 0 || b[0] == 10 || b[0] == 127 || b[0] >= 224 {
			t.Fatalf("reserved address allocated: %v", a)
		}
		if b[0] == 192 && b[1] == 168 {
			t.Fatalf("RFC1918 allocated: %v", a)
		}
		if b[0] == 203 && b[1] == 0 {
			t.Fatalf("documentation space allocated: %v", a)
		}
		if b[3] == 0 || b[3] == 255 {
			t.Fatalf("network/broadcast-looking address: %v", a)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	db := New()
	if _, ok := db.Lookup(netip.MustParseAddr("8.8.8.8")); ok {
		t.Error("unknown space resolved")
	}
	if _, ok := db.Lookup(netip.MustParseAddr("2001:db8::1")); ok {
		t.Error("IPv6 resolved in v4 db")
	}
	if db.ASNOf(netip.MustParseAddr("8.8.8.8")) != 0 {
		t.Error("ASNOf unknown != 0")
	}
	if db.CountryOf(netip.MustParseAddr("8.8.8.8")) != "" {
		t.Error("CountryOf unknown != empty")
	}
	if _, err := db.Allocate(12345); err == nil {
		t.Error("Allocate on unknown ASN succeeded")
	}
}

func TestExhaustion(t *testing.T) {
	db := New()
	asn := db.RegisterAS("TINY", "US", 1)
	// One /16 holds 65536 minus the skipped .0/.255 per /24 = 254*256 usable.
	count := 0
	for {
		_, err := db.Allocate(asn)
		if err != nil {
			break
		}
		count++
		if count > 70000 {
			t.Fatal("never exhausted")
		}
	}
	if count != 254*256 {
		t.Errorf("usable addresses = %d, want %d", count, 254*256)
	}
}

func TestASNsSorted(t *testing.T) {
	db := New()
	db.RegisterAS("A", "US", 1)
	db.RegisterAS("B", "US", 1)
	db.RegisterAS("C", "US", 1)
	asns := db.ASNs()
	if len(asns) != 3 {
		t.Fatalf("len = %d", len(asns))
	}
	for i := 1; i < len(asns); i++ {
		if asns[i-1] >= asns[i] {
			t.Fatal("not sorted")
		}
	}
}

// Property: every allocated address resolves back to its owner.
func TestQuickAllocationsResolve(t *testing.T) {
	db := New()
	asns := []ASN{
		db.RegisterAS("ORG0", "US", 2),
		db.RegisterAS("ORG1", "DE", 2),
		db.RegisterAS("ORG2", "JP", 2),
	}
	f := func(pick uint8) bool {
		asn := asns[int(pick)%len(asns)]
		a, err := db.Allocate(asn)
		if err != nil {
			return false
		}
		info, ok := db.Lookup(a)
		return ok && info.ASN == asn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReservedHighRanges(t *testing.T) {
	cases := map[uint16]bool{
		0x0000: true,  // 0.0.0.0/8
		0x0A00: true,  // 10.0.0.0/8
		0x7F00: true,  // 127.0.0.0/8
		0xE000: true,  // 224.0.0.0/4 multicast
		0xFFFF: true,  // 255.255/16
		0xC0A8: true,  // 192.168/16
		0xC000: true,  // 192.0/16 (documentation neighborhood)
		0xC633: true,  // 198.51/16
		0xCB00: true,  // 203.0/16
		0xAC10: true,  // 172.16/16
		0xAC1F: true,  // 172.31/16
		0xAC20: false, // 172.32/16 is fine
		0xA9FE: true,  // 169.254/16 link-local
		0xA9FD: false, // 169.253/16 is fine
		0x0B00: false, // 11.0/16 is the allocator's first block
		0x5D00: false, // 93.0/16
	}
	for h, want := range cases {
		if got := reservedHigh(h); got != want {
			t.Errorf("reservedHigh(%#04x) = %v, want %v", h, got, want)
		}
	}
}
