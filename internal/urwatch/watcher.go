package urwatch

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
)

// SweepFunc runs one measurement sweep and returns the classified result.
// cmd/urwatchd wires this to the streaming pipeline (optionally journaled,
// so an interrupted sweep resumes instead of restarting); tests substitute
// cheaper producers.
type SweepFunc func(ctx context.Context) (*core.Result, error)

// WatcherConfig tunes the sweep scheduler.
type WatcherConfig struct {
	// Sweep produces each generation's raw material. Required.
	Sweep SweepFunc
	// Interval is the pause between the end of one sweep and the start of
	// the next. Zero or negative means back-to-back sweeps.
	Interval time.Duration
	// OnGeneration, when non-nil, observes every publish: the sealed
	// generation and its diff against the predecessor. Called on the
	// scheduler goroutine after the swap.
	OnGeneration func(g *Generation, d *GenDiff)
	// OnSweepError, when non-nil, observes every failed sweep with the
	// consecutive-failure count (1 on the first failure of a streak).
	// Called on the scheduler goroutine; the previous generation keeps
	// serving throughout (stale-on-error).
	OnSweepError func(err error, consecutive int)
	// Staleness, when non-nil, is installed on the store as its staleness/
	// mirroring policy (a nil Clock inherits the watcher clock).
	Staleness *StalenessPolicy
	// Clock stamps generations; nil uses time.Now.
	Clock Clock
}

// Health is a point-in-time snapshot of the watcher's condition, served by
// the front-ends' health endpoints. Status is the staleness health machine's
// state: ok, degraded (consecutive sweep failures), or stale (generation age
// past the configured bound) — see staleness.go.
type Health struct {
	Status              string        `json:"status"`
	Generation          uint64        `json:"generation"`
	Sweeps              int           `json:"sweeps"`
	ConsecutiveFailures int           `json:"consecutive_failures"`
	GenerationAgeSec    float64       `json:"generation_age_seconds"`
	MaxStalenessSec     float64       `json:"max_staleness_seconds,omitempty"`
	LastSweepAt         time.Time     `json:"last_sweep_at"`
	LastSweepTook       time.Duration `json:"last_sweep_took_ns"`
	LastError           string        `json:"last_error,omitempty"`
	Verdicts            int           `json:"verdicts"`
	Events              uint64        `json:"events"`
}

// Watcher periodically re-sweeps a world and publishes each sweep as a new
// verdict-store generation. One watcher owns one store; it is the store's
// only writer.
type Watcher struct {
	cfg   WatcherConfig
	store *Store

	mu      sync.Mutex
	sweeps  int
	lastAt  time.Time
	took    time.Duration
	lastErr error
}

// NewWatcher builds a watcher over a fresh store.
func NewWatcher(cfg WatcherConfig) *Watcher {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	w := &Watcher{cfg: cfg, store: NewStore()}
	if cfg.Staleness != nil {
		p := *cfg.Staleness
		if p.Clock == nil {
			p.Clock = cfg.Clock
		}
		if p.SweepInterval == 0 {
			p.SweepInterval = cfg.Interval
		}
		w.store.SetPolicy(p)
	}
	return w
}

// Store returns the watcher's verdict store.
func (w *Watcher) Store() *Store { return w.store }

// Health reports the watcher's current condition, including the staleness
// state machine's reading against the store's policy.
func (w *Watcher) Health() Health {
	st := w.store.Staleness(w.cfg.Clock())
	w.mu.Lock()
	defer w.mu.Unlock()
	g := w.store.Current()
	h := Health{
		Status:              st.State.String(),
		Generation:          g.Seq,
		Sweeps:              w.sweeps,
		ConsecutiveFailures: st.ConsecutiveFailures,
		GenerationAgeSec:    st.Age.Seconds(),
		MaxStalenessSec:     st.MaxStaleness.Seconds(),
		LastSweepAt:         w.lastAt,
		LastSweepTook:       w.took,
		Verdicts:            g.Total(),
		Events:              w.store.Log().LastSeq(),
	}
	if w.lastErr != nil {
		h.LastError = w.lastErr.Error()
	}
	return h
}

// SweepOnce runs a single sweep and publishes its generation. Returns the
// diff against the previous generation.
func (w *Watcher) SweepOnce(ctx context.Context) (*GenDiff, error) {
	if w.cfg.Sweep == nil {
		return nil, errors.New("urwatch: no sweep function configured")
	}
	t0 := w.cfg.Clock()
	res, err := w.cfg.Sweep(ctx)
	took := w.cfg.Clock().Sub(t0)
	w.mu.Lock()
	w.lastAt = w.cfg.Clock()
	w.took = took
	w.lastErr = err
	if err == nil {
		w.sweeps++
	}
	w.mu.Unlock()
	if err != nil {
		// Stale-on-error: the previous generation keeps serving. Record the
		// failure so the health machine can degrade, and tell the observer.
		// A sweep torn down by shutdown is not a degradation signal.
		if ctx.Err() == nil {
			consec := w.store.NoteSweepFailure(err)
			if w.cfg.OnSweepError != nil {
				w.cfg.OnSweepError(err, consec)
			}
		}
		return nil, err
	}
	next := SnapshotFromResult(res, w.store.Current().Seq+1, w.cfg.Clock())
	d := w.store.Publish(next)
	if w.cfg.OnGeneration != nil {
		w.cfg.OnGeneration(next, d)
	}
	return d, nil
}

// Run sweeps until ctx is cancelled or maxSweeps successful sweeps complete
// (maxSweeps <= 0 means no bound). A failed sweep does not publish — the
// previous generation keeps serving — and does not count toward maxSweeps;
// the scheduler retries after the interval. Returns nil on a clean stop
// (bound reached or ctx cancelled).
func (w *Watcher) Run(ctx context.Context, maxSweeps int) error {
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		if _, err := w.SweepOnce(ctx); err != nil && ctx.Err() != nil {
			return nil
		}
		w.mu.Lock()
		done := maxSweeps > 0 && w.sweeps >= maxSweeps
		w.mu.Unlock()
		if done {
			return nil
		}
		if w.cfg.Interval > 0 {
			t := time.NewTimer(w.cfg.Interval)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil
			case <-t.C:
			}
		}
	}
}
