package urwatch

import (
	"net/netip"
	"sync"
	"time"
)

// Clock abstracts time for the rate limiter so tests drive it with a virtual
// clock and assert exact allow/deny sequences.
type Clock func() time.Time

// RateLimiter is a per-client token bucket. Each client address owns an
// independent bucket of Burst tokens refilled at Rate tokens/second; a
// request spends one token. Unknown clients start with a full bucket, so a
// well-behaved client never sees a denial.
//
// Determinism: given the same clock readings and the same per-client request
// sequence, Allow returns the same answers — there is no randomness and no
// cross-client coupling beyond the eviction cap.
type RateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	now   Clock

	mu      sync.Mutex
	buckets map[netip.Addr]*tokenBucket
	// maxClients bounds the bucket map; when exceeded, the stalest buckets
	// (oldest refill stamp) are evicted. Evicted clients restart with a full
	// bucket — strictly more permissive, never less.
	maxClients int
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// DefaultMaxClients bounds tracked clients per limiter.
const DefaultMaxClients = 4096

// NewRateLimiter builds a limiter. rate is tokens/second, burst the bucket
// capacity. A nil clock uses time.Now. rate <= 0 disables limiting (Allow
// always true).
func NewRateLimiter(rate, burst float64, clock Clock) *RateLimiter {
	if clock == nil {
		clock = time.Now
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		rate: rate, burst: burst, now: clock,
		buckets:    make(map[netip.Addr]*tokenBucket),
		maxClients: DefaultMaxClients,
	}
}

// Allow reports whether the client may proceed, spending one token if so.
func (l *RateLimiter) Allow(client netip.Addr) bool {
	if l == nil || l.rate <= 0 {
		return true
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[client]
	if b == nil {
		if len(l.buckets) >= l.maxClients {
			l.evictStalest()
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * l.rate
			if b.tokens > l.burst {
				b.tokens = l.burst
			}
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictStalest drops the quarter of buckets with the oldest refill stamps.
// Called with the lock held.
func (l *RateLimiter) evictStalest() {
	drop := len(l.buckets) / 4
	if drop < 1 {
		drop = 1
	}
	for i := 0; i < drop; i++ {
		var oldest netip.Addr
		var oldestAt time.Time
		first := true
		for a, b := range l.buckets {
			if first || b.last.Before(oldestAt) {
				oldest, oldestAt, first = a, b.last, false
			}
		}
		delete(l.buckets, oldest)
	}
}

// Clients returns how many client buckets are currently tracked.
func (l *RateLimiter) Clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
