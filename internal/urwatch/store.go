// Package urwatch turns URHunter's one-shot measurement into a continuously
// updated verdict feed: a scheduler re-sweeps a world on an interval, each
// sweep's classified records are sealed into an immutable generation of a
// flat verdict store, a differ emits an append-only event log between
// consecutive generations, and two front-ends — an HTTP/JSON API and a
// DNSBL-style DNS zone — serve the current generation under load.
//
// The consistency argument is the generation pointer: every query (HTTP or
// DNS) dereferences the store's atomic generation pointer exactly once and
// answers entirely out of that immutable snapshot, so a reader concurrent
// with a publish observes generation N or N+1, never a torn mix. Writers
// never touch a published generation; they build the next one off to the
// side and swap it in with a single atomic store.
//
// # Flat layout
//
// A sealed generation is a handful of contiguous slices, not maps of
// pointers. Every verdict is one fixed-size verdictRec whose string fields
// are uint32 references into a deduplicated string table and whose
// corresponding-IP set is an (offset, length) span into one packed
// []netip.Addr. The record array is sorted by (domain, server, type, rdata),
// so the domain index is the array itself — a lookup is two binary searches
// bounding the domain's contiguous run — and the exact-identity lookup is a
// third binary search inside that run. The IP index is a single sorted
// (addr, record) array answered the same way. Readers never follow a
// per-verdict pointer and never touch a map; at paper scale and beyond this
// is the difference between GBs of GC-scanned pointer graph and a few large
// pointer-free allocations the collector skips over.
//
// The mutable build side (Builder) still uses sharded maps for concurrent
// deduplicated inserts; Seal compiles them into the flat form once, and the
// maps die young. The flat form is also what the binary snapshot format
// (snapshot.go) serializes — section-per-slice — which is why a restarted
// daemon can serve the previous generation in milliseconds.
package urwatch

import (
	"net/netip"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/core"
	"repro/internal/dns"
)

// Verdict is the served classification of one undelegated record — the
// feed's unit of truth. Identity follows the paper's §5.1 uniqueness tuple
// (server, domain, type, rdata); everything else is evidence. Verdict is the
// builder-input and materialized-output form; inside a sealed generation the
// same data lives as a packed verdictRec.
type Verdict struct {
	Domain   dns.Name
	Type     dns.Type
	RData    string
	TTL      uint32
	Server   netip.Addr
	NSHost   dns.Name
	Provider string

	Category core.Category
	Reason   core.CorrectReason
	ByIntel  bool
	ByIDS    bool

	// IPs are the record's corresponding IPs (§4.3): the A address or the
	// addresses embedded in / associated with a TXT record. The store's IP
	// index is built over this set, which is what lets a DNSBL client ask
	// "is this destination a UR C2?" without knowing the domain.
	IPs []netip.Addr
}

// AppendKey appends the §5.1 identity tuple key — the event log's canonical
// key format — to dst and returns the extended slice. It allocates only when
// dst lacks capacity, which is what keeps it off the build and lookup hot
// paths' allocation profiles.
func AppendKey(dst []byte, server netip.Addr, domain dns.Name, typ dns.Type, rdata string) []byte {
	dst = server.AppendTo(dst)
	dst = append(dst, '|')
	// The key's domain field is the display form (fmt's %s used to invoke
	// Name.String()); mirror it exactly so logged keys stay stable.
	if domain == dns.Root {
		dst = append(dst, '.')
	} else {
		dst = append(dst, domain...)
		dst = append(dst, '.')
	}
	dst = append(dst, '|')
	dst = strconv.AppendUint(dst, uint64(uint16(typ)), 10)
	dst = append(dst, '|')
	dst = append(dst, rdata...)
	return dst
}

// Key returns the §5.1 identity tuple as the feed's canonical key string.
func (v *Verdict) Key() string {
	return string(AppendKey(make([]byte, 0, 64), v.Server, v.Domain, v.Type, v.RData))
}

// verdict flag bits.
const (
	flagByIntel = 1 << 0
	flagByIDS   = 1 << 1
)

// verdictRec is the arena-packed form of one verdict: fixed size, pointer
// free (netip.Addr aside), with every string a reference into the owning
// generation's table and the corresponding-IP set a span into its packed
// address arena.
type verdictRec struct {
	server   netip.Addr
	domain   uint32
	rdata    uint32
	nsHost   uint32
	provider uint32
	reason   uint32
	ipOff    uint32
	ipLen    uint32
	ttl      uint32
	typ      dns.Type
	category uint8
	flags    uint8
}

// ipEntry is one row of the flat IP index: address → record ordinal.
type ipEntry struct {
	addr netip.Addr
	rec  uint32
}

// ProviderStats aggregates one provider's verdict counts in a generation.
type ProviderStats struct {
	Provider string         `json:"provider"`
	Total    int            `json:"total"`
	Counts   map[string]int `json:"counts"`
}

// Generation is one immutable snapshot of the verdict feed. All fields are
// written by a single Builder.Seal (or the snapshot loader) and never
// mutated after; readers need no locks.
type Generation struct {
	// Seq is the generation number, monotonically increasing from 1 (the
	// store's empty initial generation is 0).
	Seq uint64
	// SweptAt stamps when the generation's sweep completed.
	SweptAt time.Time
	// Queries and Coverage carry the producing sweep's measurement books,
	// served by the health endpoints.
	Queries  int64
	Coverage *core.Coverage

	// strs is the deduplicated string table; strs[0] is always "".
	strs []string
	// recs is the packed verdict array, sorted by (domain, server, type,
	// rdata) — domain runs are contiguous, and within a run the order is
	// the feed's canonical (server, type, rdata).
	recs []verdictRec
	// ipTab is the packed corresponding-IP arena; recs reference spans.
	ipTab []netip.Addr
	// ipIdx maps addresses to record ordinals, sorted by (addr, canonical
	// record order) so per-address runs serve in the same order the map-era
	// per-IP slices did.
	ipIdx []ipEntry
	// provs is the per-provider aggregate, sorted by name — precomputed at
	// Seal so Providers() is a plain slice return.
	provs  []*ProviderStats
	counts [4]int
}

// Total returns the verdict count.
func (g *Generation) Total() int { return len(g.recs) }

// Count returns how many verdicts carry the category.
func (g *Generation) Count(c core.Category) int {
	if c < 0 || int(c) >= len(g.counts) {
		return 0
	}
	return g.counts[c]
}

// str resolves a string-table reference.
func (g *Generation) str(id uint32) string { return g.strs[id] }

// domainOf returns record i's domain without materializing anything.
func (g *Generation) domainOf(i int) dns.Name { return dns.Name(g.strs[g.recs[i].domain]) }

// VerdictSet is a read-only view of the verdicts answering one query: a
// contiguous run either of the record array (domain lookups) or of the IP
// index (address lookups). The zero VerdictSet is empty.
type VerdictSet struct {
	g      *Generation
	lo, hi int
	byIP   bool
}

// Len returns the number of verdicts in the set.
func (s VerdictSet) Len() int { return s.hi - s.lo }

// At returns the i'th verdict of the set, in the feed's canonical order.
func (s VerdictSet) At(i int) VerdictView {
	if s.byIP {
		return VerdictView{g: s.g, i: int(s.g.ipIdx[s.lo+i].rec)}
	}
	return VerdictView{g: s.g, i: s.lo + i}
}

// VerdictView is a handle on one verdict inside a sealed generation. Field
// accessors read straight out of the flat arrays; nothing is materialized.
type VerdictView struct {
	g *Generation
	i int
}

// Domain returns the verdict's domain.
func (v VerdictView) Domain() dns.Name { return dns.Name(v.g.str(v.g.recs[v.i].domain)) }

// Type returns the record type.
func (v VerdictView) Type() dns.Type { return v.g.recs[v.i].typ }

// RData returns the record data.
func (v VerdictView) RData() string { return v.g.str(v.g.recs[v.i].rdata) }

// TTL returns the record TTL.
func (v VerdictView) TTL() uint32 { return v.g.recs[v.i].ttl }

// Server returns the serving nameserver address.
func (v VerdictView) Server() netip.Addr { return v.g.recs[v.i].server }

// NSHost returns the serving nameserver's hostname.
func (v VerdictView) NSHost() dns.Name { return dns.Name(v.g.str(v.g.recs[v.i].nsHost)) }

// Provider returns the hosting provider name.
func (v VerdictView) Provider() string { return v.g.str(v.g.recs[v.i].provider) }

// Category returns the classification.
func (v VerdictView) Category() core.Category { return core.Category(v.g.recs[v.i].category) }

// Reason returns the exclusion reason for correct verdicts.
func (v VerdictView) Reason() core.CorrectReason {
	return core.CorrectReason(v.g.str(v.g.recs[v.i].reason))
}

// ByIntel reports threat-intel evidence.
func (v VerdictView) ByIntel() bool { return v.g.recs[v.i].flags&flagByIntel != 0 }

// ByIDS reports IDS evidence.
func (v VerdictView) ByIDS() bool { return v.g.recs[v.i].flags&flagByIDS != 0 }

// IPs returns the verdict's corresponding-IP span. The slice aliases the
// generation's packed arena — callers must not mutate it.
func (v VerdictView) IPs() []netip.Addr {
	r := v.g.recs[v.i]
	if r.ipLen == 0 {
		return nil
	}
	return v.g.ipTab[r.ipOff : r.ipOff+r.ipLen : r.ipOff+r.ipLen]
}

// Key returns the verdict's canonical identity key.
func (v VerdictView) Key() string {
	r := v.g.recs[v.i]
	return string(AppendKey(make([]byte, 0, 64), r.server, v.Domain(), r.typ, v.RData()))
}

// Verdict materializes the view into a standalone Verdict (for callers that
// need to retain it past the generation, e.g. tests and event builders).
func (v VerdictView) Verdict() *Verdict {
	return &Verdict{
		Domain:   v.Domain(),
		Type:     v.Type(),
		RData:    v.RData(),
		TTL:      v.TTL(),
		Server:   v.Server(),
		NSHost:   v.NSHost(),
		Provider: v.Provider(),
		Category: v.Category(),
		Reason:   v.Reason(),
		ByIntel:  v.ByIntel(),
		ByIDS:    v.ByIDS(),
		IPs:      append([]netip.Addr(nil), v.IPs()...),
	}
}

// All returns every verdict in the generation, in the record array's
// (domain, server, type, rdata) order.
func (g *Generation) All() VerdictSet {
	return VerdictSet{g: g, lo: 0, hi: len(g.recs)}
}

// Domain returns every verdict for a domain as a contiguous run of the
// record array (empty set when unlisted).
func (g *Generation) Domain(d dns.Name) VerdictSet {
	lo := sort.Search(len(g.recs), func(i int) bool { return g.domainOf(i) >= d })
	hi := lo + sort.Search(len(g.recs)-lo, func(i int) bool { return g.domainOf(lo+i) > d })
	return VerdictSet{g: g, lo: lo, hi: hi}
}

// Find returns the verdict with the exact §5.1 identity tuple: a binary
// search inside the domain's run by (server, type, rdata).
func (g *Generation) Find(domain dns.Name, server netip.Addr, typ dns.Type, rdata string) (VerdictView, bool) {
	s := g.Domain(domain)
	i := s.lo + sort.Search(s.hi-s.lo, func(i int) bool {
		r := &g.recs[s.lo+i]
		if c := r.server.Compare(server); c != 0 {
			return c >= 0
		}
		if r.typ != typ {
			return r.typ >= typ
		}
		return g.str(r.rdata) >= rdata
	})
	if i < s.hi {
		r := &g.recs[i]
		if r.server == server && r.typ == typ && g.str(r.rdata) == rdata {
			return VerdictView{g: g, i: i}, true
		}
	}
	return VerdictView{}, false
}

// IP returns every verdict whose corresponding IPs include addr, as a
// contiguous run of the IP index.
func (g *Generation) IP(addr netip.Addr) VerdictSet {
	lo := sort.Search(len(g.ipIdx), func(i int) bool { return g.ipIdx[i].addr.Compare(addr) >= 0 })
	hi := lo + sort.Search(len(g.ipIdx)-lo, func(i int) bool { return g.ipIdx[lo+i].addr.Compare(addr) > 0 })
	return VerdictSet{g: g, lo: lo, hi: hi, byIP: true}
}

// Provider returns a provider's aggregate stats (binary search over the
// sorted precomputed slice).
func (g *Generation) Provider(name string) (*ProviderStats, bool) {
	i := sort.Search(len(g.provs), func(i int) bool { return g.provs[i].Provider >= name })
	if i < len(g.provs) && g.provs[i].Provider == name {
		return g.provs[i], true
	}
	return nil, false
}

// Providers returns every provider's stats, sorted by name. The slice is
// precomputed at Seal and shared with the generation — callers must not
// mutate it.
func (g *Generation) Providers() []*ProviderStats { return g.provs }

// SizeBytes returns the flat layout's retained footprint: the packed record
// array, string table (headers + bytes), IP arena and index, and provider
// aggregates. This is the accounting behind the bytes_per_verdict metric.
func (g *Generation) SizeBytes() int {
	size := len(g.recs) * int(unsafe.Sizeof(verdictRec{}))
	size += len(g.strs) * int(unsafe.Sizeof(""))
	for _, s := range g.strs {
		size += len(s)
	}
	size += len(g.ipTab) * int(unsafe.Sizeof(netip.Addr{}))
	size += len(g.ipIdx) * int(unsafe.Sizeof(ipEntry{}))
	for _, p := range g.provs {
		size += int(unsafe.Sizeof(*p)) + len(p.Provider)
		for k := range p.Counts {
			size += len(k) + 16
		}
	}
	return size
}

// categoryRank orders categories by severity for worst-of folds.
func categoryRank(c core.Category) int {
	switch c {
	case core.CategoryMalicious:
		return 3
	case core.CategoryUnknown:
		return 2
	case core.CategoryProtective:
		return 1
	}
	return 0
}

// WorstCategory folds a verdict set to its most severe classification with
// the feed's precedence: malicious > unknown (suspicious) > protective >
// correct. ok is false for an empty set.
func WorstCategory(vs VerdictSet) (core.Category, bool) {
	if vs.Len() == 0 {
		return core.CategoryCorrect, false
	}
	worst := vs.At(0).Category()
	for i := 1; i < vs.Len(); i++ {
		if c := vs.At(i).Category(); categoryRank(c) > categoryRank(worst) {
			worst = c
		}
	}
	return worst, true
}

// buildShards is the shard count of the builder's mutable maps. Power of
// two; buys contention-free parallel Adds, nothing more — the shards are
// compiled away at Seal.
const buildShards = 16

// buildKey is the §5.1 identity tuple as a comparable struct — the builder's
// dedup key, replacing the map-era fmt.Sprintf string key on the build hot
// path.
type buildKey struct {
	server netip.Addr
	domain dns.Name
	typ    dns.Type
	rdata  string
}

// domainShard hashes a domain onto [0, buildShards) with FNV-1a.
func domainShard(d dns.Name) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(d); i++ {
		h = (h ^ uint32(d[i])) * 16777619
	}
	return h & (buildShards - 1)
}

// storeInterner canonicalizes the strings packed into generation tables.
// Package-level on purpose: consecutive generations observe mostly the same
// domains, rdata, and hosts, so sharing one interner across sweeps makes
// their tables reference the same backing bytes instead of re-materializing
// them every interval.
var storeInterner = core.NewInterner()

// Builder accumulates verdicts for the next generation. Adds are safe from
// many goroutines (per-shard locks); Seal compiles the shards into the flat
// immutable form. A Builder is single-use.
type Builder struct {
	mu     [buildShards]sync.Mutex
	shards [buildShards]map[buildKey]*Verdict
	sealed atomic.Bool
}

// NewBuilder starts an empty next generation.
func NewBuilder() *Builder {
	b := &Builder{}
	for i := range b.shards {
		b.shards[i] = make(map[buildKey]*Verdict)
	}
	return b
}

// Add inserts one verdict. Duplicate keys keep the first insertion (the
// pipeline's canonical sort means the first is the canonical one).
func (b *Builder) Add(v *Verdict) {
	if b.sealed.Load() {
		panic("urwatch: Add after Seal")
	}
	key := buildKey{server: v.Server, domain: v.Domain, typ: v.Type, rdata: v.RData}
	si := domainShard(v.Domain)
	b.mu[si].Lock()
	if _, dup := b.shards[si][key]; !dup {
		b.shards[si][key] = v
	}
	b.mu[si].Unlock()
}

// Seal stamps and compiles the generation: the shard maps flatten into the
// sorted record array, the string table, the IP arena and index, and the
// provider aggregates. The builder must not be used afterwards.
func (b *Builder) Seal(seq uint64, sweptAt time.Time) *Generation {
	if b.sealed.Swap(true) {
		panic("urwatch: Seal called twice")
	}
	n := 0
	for i := range b.shards {
		n += len(b.shards[i])
	}
	all := make([]*Verdict, 0, n)
	for i := range b.shards {
		for _, v := range b.shards[i] {
			all = append(all, v)
		}
		b.shards[i] = nil
	}
	// Record order: (domain, server, type, rdata). Domain-major makes the
	// sorted array its own domain index; within a domain the order is the
	// feed's canonical (server, type, rdata), exactly what the map-era
	// per-domain slices served.
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		if cmp := a.Server.Compare(b.Server); cmp != 0 {
			return cmp < 0
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.RData < b.RData
	})

	g := &Generation{Seq: seq, SweptAt: sweptAt}
	g.strs = []string{""}
	ids := map[string]uint32{"": 0}
	sid := func(s string) uint32 {
		if id, ok := ids[s]; ok {
			return id
		}
		s = storeInterner.Intern(s)
		id := uint32(len(g.strs))
		g.strs = append(g.strs, s)
		ids[s] = id
		return id
	}

	g.recs = make([]verdictRec, len(all))
	provByName := make(map[string]*ProviderStats)
	nIPs := 0
	for _, v := range all {
		nIPs += len(v.IPs)
	}
	g.ipTab = make([]netip.Addr, 0, nIPs)
	g.ipIdx = make([]ipEntry, 0, nIPs)
	for i, v := range all {
		var flags uint8
		if v.ByIntel {
			flags |= flagByIntel
		}
		if v.ByIDS {
			flags |= flagByIDS
		}
		g.recs[i] = verdictRec{
			server:   v.Server,
			domain:   sid(string(v.Domain)),
			rdata:    sid(v.RData),
			nsHost:   sid(string(v.NSHost)),
			provider: sid(v.Provider),
			reason:   sid(string(v.Reason)),
			ipOff:    uint32(len(g.ipTab)),
			ipLen:    uint32(len(v.IPs)),
			ttl:      v.TTL,
			typ:      v.Type,
			category: uint8(v.Category),
			flags:    flags,
		}
		g.ipTab = append(g.ipTab, v.IPs...)
		for _, ip := range v.IPs {
			g.ipIdx = append(g.ipIdx, ipEntry{addr: ip, rec: uint32(i)})
		}
		ps := provByName[v.Provider]
		if ps == nil {
			ps = &ProviderStats{Provider: v.Provider, Counts: make(map[string]int)}
			provByName[v.Provider] = ps
		}
		ps.Total++
		ps.Counts[v.Category.String()]++
		if v.Category >= 0 && int(v.Category) < len(g.counts) {
			g.counts[v.Category]++
		}
	}
	// Per-address runs serve in the feed's canonical (server, domain, type,
	// rdata) order — the order the map-era per-IP slices were sorted into.
	sort.Slice(g.ipIdx, func(i, j int) bool {
		a, b := g.ipIdx[i], g.ipIdx[j]
		if cmp := a.addr.Compare(b.addr); cmp != 0 {
			return cmp < 0
		}
		return g.recCanonLess(int(a.rec), int(b.rec))
	})
	g.provs = make([]*ProviderStats, 0, len(provByName))
	for _, ps := range provByName {
		g.provs = append(g.provs, ps)
	}
	sort.Slice(g.provs, func(i, j int) bool { return g.provs[i].Provider < g.provs[j].Provider })
	return g
}

// recCanonLess orders two records by the feed's canonical (server, domain,
// type, rdata) tuple.
func (g *Generation) recCanonLess(i, j int) bool {
	a, b := &g.recs[i], &g.recs[j]
	if cmp := a.server.Compare(b.server); cmp != 0 {
		return cmp < 0
	}
	if da, db := g.str(a.domain), g.str(b.domain); da != db {
		return da < db
	}
	if a.typ != b.typ {
		return a.typ < b.typ
	}
	return g.str(a.rdata) < g.str(b.rdata)
}

// SnapshotFromResult seals a generation from one pipeline run's classified
// output. Every collected UR becomes a verdict; the sweep's query and
// coverage books ride along for the health endpoints.
func SnapshotFromResult(res *core.Result, seq uint64, sweptAt time.Time) *Generation {
	b := NewBuilder()
	for _, u := range res.URs {
		b.Add(&Verdict{
			Domain:   u.Domain,
			Type:     u.Type,
			RData:    u.RData,
			TTL:      u.TTL,
			Server:   u.Server.Addr,
			NSHost:   u.Server.Host,
			Provider: u.Server.Provider,
			Category: u.Category,
			Reason:   u.Reason,
			ByIntel:  u.MaliciousByIntel,
			ByIDS:    u.MaliciousByIDS,
			IPs:      u.CorrespondingIPs,
		})
	}
	g := b.Seal(seq, sweptAt)
	g.Queries = res.Queries
	g.Coverage = res.Coverage
	return g
}

// Store holds the current generation behind an atomic pointer. Reads are
// lock-free: Current is a single atomic load, and everything reachable from
// the returned generation is immutable. Publish is serialized by a writer
// mutex (the watcher is the only writer in practice, but correctness does
// not depend on that).
//
// Beyond the current generation the store also tracks the two degradation
// signals of the staleness health machine (consecutive sweep failures and
// generation age — see staleness.go) and retains a short ring of recent
// generations so the zone-transfer front-end can serve IXFR deltas keyed by
// SOA serial (see xfr.go).
type Store struct {
	gen atomic.Pointer[Generation]
	mu  sync.Mutex
	log *EventLog

	// policy is the staleness/mirroring configuration; nil preserves the
	// pre-policy behaviour (never stale, static SOA timers).
	policy atomic.Pointer[StalenessPolicy]
	// ring retains recent generations, oldest first, current last. Guarded
	// by mu; readers copy the slice header under the lock (transfers are
	// rare — the per-query hot path never touches it).
	ring []*Generation
	// failStreak counts sweep failures since the last publish; lastErr is
	// the most recent failure's message (nil after a success).
	failStreak atomic.Int64
	lastErr    atomic.Pointer[string]
}

// NewStore creates a store serving an empty generation 0 with a fresh event
// log.
func NewStore() *Store {
	s := &Store{log: NewEventLog()}
	g := NewBuilder().Seal(0, time.Time{})
	s.gen.Store(g)
	s.ring = []*Generation{g}
	return s
}

// Current returns the live generation. Never nil.
func (s *Store) Current() *Generation { return s.gen.Load() }

// Log returns the store's append-only event log.
func (s *Store) Log() *EventLog { return s.log }

// SetPolicy installs the staleness/mirroring policy. Call before serving;
// the policy is read atomically, so replacing it mid-serve is safe but the
// struct itself must not be mutated after installation.
func (s *Store) SetPolicy(p StalenessPolicy) {
	s.policy.Store(&p)
}

// Policy returns the installed policy, or nil when none was set.
func (s *Store) Policy() *StalenessPolicy { return s.policy.Load() }

// NoteSweepFailure records one failed sweep and returns the consecutive
// failure count. The watcher calls this on every sweep error; the streak
// resets at the next successful publish.
func (s *Store) NoteSweepFailure(err error) int {
	n := s.failStreak.Add(1)
	if err != nil {
		msg := err.Error()
		s.lastErr.Store(&msg)
	}
	return int(n)
}

// ConsecutiveFailures returns the current sweep-failure streak.
func (s *Store) ConsecutiveFailures() int { return int(s.failStreak.Load()) }

// Staleness folds the store's degradation signals into a health reading at
// time now (pass the policy clock's reading, or time.Now()).
func (s *Store) Staleness(now time.Time) Staleness {
	g := s.Current()
	p := s.policy.Load()
	st := Staleness{
		Generation:          g.Seq,
		ConsecutiveFailures: int(s.failStreak.Load()),
	}
	if msg := s.lastErr.Load(); msg != nil {
		st.LastError = *msg
	}
	if !g.SweptAt.IsZero() && now.After(g.SweptAt) {
		st.Age = now.Sub(g.SweptAt)
	}
	if p != nil {
		st.MaxStaleness = p.MaxStaleness
	}
	switch {
	case st.MaxStaleness > 0 && (g.SweptAt.IsZero() || st.Age >= st.MaxStaleness):
		// An unswept initial generation under a staleness bound is stale by
		// definition: there is nothing fresh to serve.
		st.State = StateStale
	case st.ConsecutiveFailures >= p.degradedAfter():
		st.State = StateDegraded
	default:
		st.State = StateOK
	}
	return st
}

// Publish diffs the next generation against the current one, appends the
// resulting events to the log, and atomically swaps next in. It returns the
// diff. Readers concurrent with Publish see the old or the new generation in
// full — the swap is the linearization point. A publish also resets the
// sweep-failure streak and appends next to the IXFR retention ring.
func (s *Store) Publish(next *Generation) *GenDiff {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.gen.Load()
	d := Diff(prev, next)
	s.log.Append(d)
	s.gen.Store(next)
	s.appendRingLocked(next)
	s.failStreak.Store(0)
	s.lastErr.Store(nil)
	return d
}

// Restore swaps a previously sealed generation in without diffing — the
// cold-start path. A snapshot-loaded generation's changes were already
// logged by the process that published it, so re-announcing them here would
// double-count; the event log simply resumes at the next real publish. The
// retention ring restarts at the restored generation: a restarted daemon has
// no older generations to derive IXFR deltas from, so secondaries behind it
// fall back to AXFR once and then track incrementally again.
func (s *Store) Restore(g *Generation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen.Store(g)
	s.ring = []*Generation{g}
}

// appendRingLocked retains g in the generation ring, trimming the oldest
// entries past the policy's Retain bound. Caller holds s.mu.
func (s *Store) appendRingLocked(g *Generation) {
	s.ring = append(s.ring, g)
	if over := len(s.ring) - s.policy.Load().retain(); over > 0 {
		// Copy down rather than re-slice so the dropped heads are collectable.
		n := copy(s.ring, s.ring[over:])
		for i := n; i < len(s.ring); i++ {
			s.ring[i] = nil
		}
		s.ring = s.ring[:n]
	}
}

// Retained returns the retention ring, oldest first, current generation
// last. The returned slice is a copy; the generations are immutable.
func (s *Store) Retained() []*Generation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Generation(nil), s.ring...)
}

// ChainFromSerial returns the retained generations from the one whose SOA
// serial equals serial through the current generation, oldest first. ok is
// false when the serial predates the retention window (or never existed) —
// the caller must fall back to a full transfer.
func (s *Store) ChainFromSerial(serial uint32) (chain []*Generation, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, g := range s.ring {
		if SerialForSeq(g.Seq) == serial {
			return append([]*Generation(nil), s.ring[i:]...), true
		}
	}
	return nil, false
}
