// Package urwatch turns URHunter's one-shot measurement into a continuously
// updated verdict feed: a scheduler re-sweeps a world on an interval, each
// sweep's classified records are sealed into an immutable generation of a
// sharded verdict store, a differ emits an append-only event log between
// consecutive generations, and two front-ends — an HTTP/JSON API and a
// DNSBL-style DNS zone — serve the current generation under load.
//
// The consistency argument is the generation pointer: every query (HTTP or
// DNS) dereferences the store's atomic generation pointer exactly once and
// answers entirely out of that immutable snapshot, so a reader concurrent
// with a publish observes generation N or N+1, never a torn mix. Writers
// never touch a published generation; they build the next one off to the
// side and swap it in with a single atomic store.
package urwatch

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dns"
)

// Verdict is the served classification of one undelegated record — the
// feed's unit of truth. Identity follows the paper's §5.1 uniqueness tuple
// (server, domain, type, rdata); everything else is evidence.
type Verdict struct {
	Domain   dns.Name
	Type     dns.Type
	RData    string
	TTL      uint32
	Server   netip.Addr
	NSHost   dns.Name
	Provider string

	Category core.Category
	Reason   core.CorrectReason
	ByIntel  bool
	ByIDS    bool

	// IPs are the record's corresponding IPs (§4.3): the A address or the
	// addresses embedded in / associated with a TXT record. The store's IP
	// index is built over this set, which is what lets a DNSBL client ask
	// "is this destination a UR C2?" without knowing the domain.
	IPs []netip.Addr
}

// Key returns the §5.1 identity tuple as the store's canonical key.
func (v *Verdict) Key() string {
	return fmt.Sprintf("%s|%s|%d|%s", v.Server, v.Domain, uint16(v.Type), v.RData)
}

// genShards is the shard count of every per-generation index. Power of two;
// the shard index is a mask away from the key hash. Sharding buys parallel
// generation builds (per-shard locks on the builder) and keeps any single
// map small enough that the differ's per-shard walk stays cache-friendly.
const genShards = 16

// domainShard hashes a domain onto [0, genShards) with FNV-1a.
func domainShard(d dns.Name) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(d); i++ {
		h = (h ^ uint32(d[i])) * 16777619
	}
	return h & (genShards - 1)
}

// ipShard hashes an address onto [0, genShards).
func ipShard(a netip.Addr) uint32 {
	b := a.As16()
	h := uint32(2166136261)
	for _, x := range b[8:] {
		h = (h ^ uint32(x)) * 16777619
	}
	return h & (genShards - 1)
}

// genShardData is one slice of a generation's domain-keyed indexes. Keys
// shard by domain hash, so a verdict's byKey and byDomain entries always
// land in the same shard — which is what lets the differ walk prev/next
// shard-pairwise.
type genShardData struct {
	byKey    map[string]*Verdict
	byDomain map[dns.Name][]*Verdict
}

// ProviderStats aggregates one provider's verdict counts in a generation.
type ProviderStats struct {
	Provider string         `json:"provider"`
	Total    int            `json:"total"`
	Counts   map[string]int `json:"counts"`
}

// Generation is one immutable snapshot of the verdict feed. All fields are
// written by a single Builder before Seal and never mutated after; readers
// need no locks.
type Generation struct {
	// Seq is the generation number, monotonically increasing from 1 (the
	// store's empty initial generation is 0).
	Seq uint64
	// SweptAt stamps when the generation's sweep completed.
	SweptAt time.Time
	// Queries and Coverage carry the producing sweep's measurement books,
	// served by the health endpoints.
	Queries  int64
	Coverage *core.Coverage

	shards   [genShards]genShardData
	byIP     [genShards]map[netip.Addr][]*Verdict
	provider map[string]*ProviderStats
	counts   [4]int
	total    int
}

// Total returns the verdict count.
func (g *Generation) Total() int { return g.total }

// Count returns how many verdicts carry the category.
func (g *Generation) Count(c core.Category) int {
	if c < 0 || int(c) >= len(g.counts) {
		return 0
	}
	return g.counts[c]
}

// Domain returns every verdict for a domain (nil when unlisted). The slice
// is shared with the generation — callers must not mutate it.
func (g *Generation) Domain(d dns.Name) []*Verdict {
	return g.shards[domainShard(d)].byDomain[d]
}

// Lookup returns the verdict with the exact identity key.
func (g *Generation) Lookup(key string, domain dns.Name) (*Verdict, bool) {
	v, ok := g.shards[domainShard(domain)].byKey[key]
	return v, ok
}

// IP returns every verdict whose corresponding IPs include addr.
func (g *Generation) IP(addr netip.Addr) []*Verdict {
	return g.byIP[ipShard(addr)][addr]
}

// Provider returns a provider's aggregate stats.
func (g *Generation) Provider(name string) (*ProviderStats, bool) {
	s, ok := g.provider[name]
	return s, ok
}

// Providers returns every provider's stats, sorted by name.
func (g *Generation) Providers() []*ProviderStats {
	out := make([]*ProviderStats, 0, len(g.provider))
	for _, s := range g.provider {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Provider < out[j].Provider })
	return out
}

// WorstCategory folds a verdict set to its most severe classification with
// the feed's precedence: malicious > unknown (suspicious) > protective >
// correct. ok is false for an empty set.
func WorstCategory(vs []*Verdict) (core.Category, bool) {
	if len(vs) == 0 {
		return core.CategoryCorrect, false
	}
	rank := func(c core.Category) int {
		switch c {
		case core.CategoryMalicious:
			return 3
		case core.CategoryUnknown:
			return 2
		case core.CategoryProtective:
			return 1
		}
		return 0
	}
	worst := vs[0].Category
	for _, v := range vs[1:] {
		if rank(v.Category) > rank(worst) {
			worst = v.Category
		}
	}
	return worst, true
}

// Builder accumulates verdicts for the next generation. Adds are safe from
// many goroutines (per-shard locks); Seal freezes the result. A Builder is
// single-use.
type Builder struct {
	mu     [genShards]sync.Mutex
	ipMu   [genShards]sync.Mutex
	provMu sync.Mutex
	g      *Generation
	sealed atomic.Bool
}

// NewBuilder starts an empty next generation.
func NewBuilder() *Builder {
	g := &Generation{provider: make(map[string]*ProviderStats)}
	for i := range g.shards {
		g.shards[i] = genShardData{
			byKey:    make(map[string]*Verdict),
			byDomain: make(map[dns.Name][]*Verdict),
		}
		g.byIP[i] = make(map[netip.Addr][]*Verdict)
	}
	return &Builder{g: g}
}

// Add inserts one verdict. Duplicate keys keep the first insertion (the
// pipeline's canonical sort means the first is the canonical one).
func (b *Builder) Add(v *Verdict) {
	if b.sealed.Load() {
		panic("urwatch: Add after Seal")
	}
	key := v.Key()
	si := domainShard(v.Domain)
	b.mu[si].Lock()
	sh := &b.g.shards[si]
	if _, dup := sh.byKey[key]; dup {
		b.mu[si].Unlock()
		return
	}
	sh.byKey[key] = v
	sh.byDomain[v.Domain] = append(sh.byDomain[v.Domain], v)
	b.mu[si].Unlock()

	for _, ip := range v.IPs {
		ii := ipShard(ip)
		b.ipMu[ii].Lock()
		b.g.byIP[ii][ip] = append(b.g.byIP[ii][ip], v)
		b.ipMu[ii].Unlock()
	}

	b.provMu.Lock()
	ps := b.g.provider[v.Provider]
	if ps == nil {
		ps = &ProviderStats{Provider: v.Provider, Counts: make(map[string]int)}
		b.g.provider[v.Provider] = ps
	}
	ps.Total++
	ps.Counts[v.Category.String()]++
	if v.Category >= 0 && int(v.Category) < len(b.g.counts) {
		b.g.counts[v.Category]++
	}
	b.g.total++
	b.provMu.Unlock()
}

// Seal stamps the generation and returns it. The builder must not be used
// afterwards. Per-domain and per-IP verdict slices are put into the store's
// canonical order so lookups and diffs are independent of Add order.
func (b *Builder) Seal(seq uint64, sweptAt time.Time) *Generation {
	if b.sealed.Swap(true) {
		panic("urwatch: Seal called twice")
	}
	g := b.g
	g.Seq = seq
	g.SweptAt = sweptAt
	for i := range g.shards {
		for _, vs := range g.shards[i].byDomain {
			sortVerdicts(vs)
		}
	}
	for i := range g.byIP {
		for _, vs := range g.byIP[i] {
			sortVerdicts(vs)
		}
	}
	return g
}

// sortVerdicts orders a verdict slice canonically: server, domain, type,
// rdata — the same order the pipeline's sortURs produces.
func sortVerdicts(vs []*Verdict) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if cmp := a.Server.Compare(b.Server); cmp != 0 {
			return cmp < 0
		}
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.RData < b.RData
	})
}

// SnapshotFromResult seals a generation from one pipeline run's classified
// output. Every collected UR becomes a verdict; the sweep's query and
// coverage books ride along for the health endpoints.
func SnapshotFromResult(res *core.Result, seq uint64, sweptAt time.Time) *Generation {
	b := NewBuilder()
	for _, u := range res.URs {
		b.Add(&Verdict{
			Domain:   u.Domain,
			Type:     u.Type,
			RData:    u.RData,
			TTL:      u.TTL,
			Server:   u.Server.Addr,
			NSHost:   u.Server.Host,
			Provider: u.Server.Provider,
			Category: u.Category,
			Reason:   u.Reason,
			ByIntel:  u.MaliciousByIntel,
			ByIDS:    u.MaliciousByIDS,
			IPs:      u.CorrespondingIPs,
		})
	}
	g := b.Seal(seq, sweptAt)
	g.Queries = res.Queries
	g.Coverage = res.Coverage
	return g
}

// Store holds the current generation behind an atomic pointer. Reads are
// lock-free: Current is a single atomic load, and everything reachable from
// the returned generation is immutable. Publish is serialized by a writer
// mutex (the watcher is the only writer in practice, but correctness does
// not depend on that).
type Store struct {
	gen atomic.Pointer[Generation]
	mu  sync.Mutex
	log *EventLog
}

// NewStore creates a store serving an empty generation 0 with a fresh event
// log.
func NewStore() *Store {
	s := &Store{log: NewEventLog()}
	s.gen.Store(NewBuilder().Seal(0, time.Time{}))
	return s
}

// Current returns the live generation. Never nil.
func (s *Store) Current() *Generation { return s.gen.Load() }

// Log returns the store's append-only event log.
func (s *Store) Log() *EventLog { return s.log }

// Publish diffs the next generation against the current one, appends the
// resulting events to the log, and atomically swaps next in. It returns the
// diff. Readers concurrent with Publish see the old or the new generation in
// full — the swap is the linearization point.
func (s *Store) Publish(next *Generation) *GenDiff {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.gen.Load()
	d := Diff(prev, next)
	s.log.Append(d)
	s.gen.Store(next)
	return d
}
