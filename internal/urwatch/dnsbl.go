package urwatch

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dns"
)

// The DNSBL front-end serves the verdict feed as an authoritative DNS zone,
// so stock resolvers, mail filters, and firewalls consume it with the
// queries they already know how to send:
//
//	<reversed-ipv4>.urbl.<apex>   A/TXT — is this address a UR destination?
//	<domain>.urwatch.<apex>       A/TXT — does this domain carry URs?
//	gen.<apex>                    TXT   — current generation + counts
//
// Listed names answer A 127.0.0.<code> (DNSBL convention: codes start at 2)
// and TXT evidence strings; unlisted names get NXDOMAIN with the zone SOA.
// Every response is built from a single generation dereference, and every
// TXT answer's first string carries "gen=<seq>", so a client can verify it
// never observed a torn mix of two generations.

// DNSBL response codes, per category (127.0.0.<code>).
const (
	CodeMalicious  = 2
	CodeSuspicious = 3
	CodeProtective = 4
	CodeCorrect    = 5
)

// categoryCode maps a classification to its DNSBL answer code.
func categoryCode(c core.Category) int {
	switch c {
	case core.CategoryMalicious:
		return CodeMalicious
	case core.CategoryUnknown:
		return CodeSuspicious
	case core.CategoryProtective:
		return CodeProtective
	default:
		return CodeCorrect
	}
}

// maxTXTEvidence caps the per-answer evidence records so a heavily listed
// name cannot balloon responses past the TCP limit.
const maxTXTEvidence = 8

// ZoneResponder serves the feed zone. It implements dnsio.Responder, so it
// attaches to real UDP/TCP sockets via dnsio.Server or to the simulated
// fabric via dnsio.AttachSim.
type ZoneResponder struct {
	// Apex roots the feed zone, e.g. "feed.test" serves urbl.feed.test and
	// urwatch.feed.test subtrees.
	Apex dns.Name
	// Store supplies verdicts.
	Store *Store
	// Limiter, when non-nil, throttles per-client; throttled queries get
	// REFUSED (the DNSBL convention for "come back later").
	Limiter *RateLimiter
	// Cache, when non-nil, memoizes rendered answer sets per generation.
	Cache *ResponseCache
	// TTL is the answer TTL (0 selects 30s — the feed changes per sweep, so
	// long TTLs would serve retired generations from resolver caches).
	TTL uint32
	// XferACL allowlists sources for AXFR/IXFR/NOTIFY. nil disables zone
	// transfers entirely — a transfer hands out the whole feed, so mirroring
	// is opt-in (see xfr.go).
	XferACL *ACL
	// ZoneACL, when non-nil, restricts ordinary DNSBL queries to matching
	// sources (transfer-allowlisted sources are implicitly admitted — a
	// mirror must be able to poll the SOA). nil leaves the zone open.
	ZoneACL *ACL
	// Metrics, when non-nil, receives per-query counters and latencies.
	Metrics *Metrics
}

// cachedAnswer is one rendered (rcode, answers) pair, keyed by
// (generation, qname, qtype) in the response cache.
type cachedAnswer struct {
	rcode   dns.RCode
	answers []dns.RR
}

func (z *ZoneResponder) ttl() uint32 {
	if z.TTL == 0 {
		return 30
	}
	return z.TTL
}

func (z *ZoneResponder) urblSuffix() dns.Name    { return "urbl." + z.Apex }
func (z *ZoneResponder) urwatchSuffix() dns.Name { return "urwatch." + z.Apex }

// HandleQuery implements dnsio.Responder. Every answer is computed from one
// Store.Current() load.
func (z *ZoneResponder) HandleQuery(src netip.Addr, q *dns.Message) *dns.Message {
	return z.HandleQueryVia(src, q, "udp")
}

// HandleQueryVia implements dnsio.ViaResponder: the serving logic is
// transport-blind, but the metrics count each answered query under its wire
// transport alongside the zone bucket.
func (z *ZoneResponder) HandleQueryVia(src netip.Addr, q *dns.Message, via string) *dns.Message {
	if q.Header.OpCode == dns.OpNotify {
		return z.handleNotify(src, q)
	}
	var t0 time.Time
	if z.Metrics != nil {
		t0 = time.Now()
	}
	r, zone := z.answerQuery(src, q)
	if z.Metrics != nil {
		z.Metrics.CountQuery(zone, r.Header.RCode)
		z.Metrics.CountTransport(TransportLabelOf(via), r.Header.RCode)
		z.Metrics.ObserveDNS(time.Since(t0))
	}
	return r
}

// answerQuery resolves one query to its reply and the subtree it addressed.
func (z *ZoneResponder) answerQuery(src netip.Addr, q *dns.Message) (*dns.Message, ZoneLabel) {
	r := q.Reply()
	if len(q.Questions) != 1 {
		r.Header.RCode = dns.RCodeFormat
		return r, ZoneOther
	}
	qu := q.Questions[0]
	if qu.Name != z.Apex && !qu.Name.IsSubdomainOf(z.Apex) {
		r.Header.RCode = dns.RCodeRefused
		return r, ZoneOther
	}
	zone := z.zoneLabel(qu.Name)
	if !z.admit(src) {
		r.Header.RCode = dns.RCodeRefused
		return r, zone
	}
	if !z.Limiter.Allow(src) {
		r.Header.RCode = dns.RCodeRefused
		return r, zone
	}
	r.Header.Authoritative = true

	g := z.Store.Current()
	if qu.Type == dns.TypeAXFR || qu.Type == dns.TypeIXFR {
		// Transfers reaching the single-message path arrived over UDP (the
		// TCP path streams them — see HandleStream in xfr.go).
		return z.xfrAnswerUDP(r, g, qu, src), zone
	}
	if qu.Name == z.Apex && qu.Type == dns.TypeSOA {
		// Apex SOA bypasses the cache: its expire timer counts down with the
		// generation's age, and a cached copy would freeze it (see soa).
		r.Answers = append(r.Answers, z.soa(g))
		return r, zone
	}
	key := string(qu.Name) + "|" + qu.Type.String()
	if z.Cache != nil {
		if v, ok := z.Cache.Get(g.Seq, key); ok {
			ca := v.(cachedAnswer)
			return z.finish(r, g, ca), zone
		}
	}
	ca := z.answer(g, qu)
	if z.Cache != nil {
		z.Cache.Put(g.Seq, key, ca)
	}
	return z.finish(r, g, ca), zone
}

// admit applies the zone ACL: open when unset, otherwise the source must be
// zone- or transfer-allowlisted.
func (z *ZoneResponder) admit(src netip.Addr) bool {
	return z.ZoneACL == nil || z.ZoneACL.Contains(src) || z.XferACL.Contains(src)
}

// zoneLabel buckets a query name for the metrics counters.
func (z *ZoneResponder) zoneLabel(name dns.Name) ZoneLabel {
	switch {
	case name.IsProperSubdomainOf(z.urblSuffix()):
		return ZoneUrbl
	case name.IsProperSubdomainOf(z.urwatchSuffix()):
		return ZoneUrwatch
	case name == z.Apex || name == "gen."+z.Apex:
		return ZoneMeta
	}
	return ZoneOther
}

// xfrAnswerUDP answers a transfer question that arrived over UDP. AXFR is
// TCP-only (RFC 5936 §4.2) and gets REFUSED; an allowlisted IXFR gets the
// RFC 1995 §2 single-SOA reply steering the client to TCP.
func (z *ZoneResponder) xfrAnswerUDP(r *dns.Message, g *Generation, qu dns.Question, src netip.Addr) *dns.Message {
	if qu.Name != z.Apex || !z.XferACL.Contains(src) {
		z.Metrics.CountXfr(true)
		r.Header.RCode = dns.RCodeRefused
		return r
	}
	if qu.Type == dns.TypeIXFR {
		z.Metrics.CountXfr(false)
		r.Answers = append(r.Answers, z.soa(g))
		return r
	}
	z.Metrics.CountXfr(true)
	r.Header.RCode = dns.RCodeRefused
	return r
}

// handleNotify acknowledges a NOTIFY (RFC 1996) from a transfer-allowlisted
// source. The daemon is a primary, so an inbound NOTIFY carries no work; the
// ack exists so a pair of urwatchds configured as primary/mirror can point
// NOTIFY at each other without generating refusal noise.
func (z *ZoneResponder) handleNotify(src netip.Addr, q *dns.Message) *dns.Message {
	r := q.Reply()
	if !z.XferACL.Contains(src) {
		r.Header.RCode = dns.RCodeRefused
		return r
	}
	r.Header.Authoritative = true
	return r
}

// finish attaches a cached answer to the reply, adding the negative-answer
// SOA on NXDOMAIN/NoData.
func (z *ZoneResponder) finish(r *dns.Message, g *Generation, ca cachedAnswer) *dns.Message {
	r.Header.RCode = ca.rcode
	r.Answers = append(r.Answers, ca.answers...)
	if len(ca.answers) == 0 {
		r.Authority = append(r.Authority, z.soa(g))
	}
	return r
}

// soa synthesizes the zone SOA. The serial is the generation sequence
// (truncated onto the RFC 1982 serial space — SerialForSeq), so "is my
// mirror current?" is one SOA query, and IXFR deltas key off it.
//
// With no staleness policy installed the timers are the historical static
// "60 30 600". With a policy, the timers carry the staleness contract to
// standards-compliant secondaries: refresh follows the sweep interval (poll
// at the cadence generations actually appear), retry is half that, and
// expire is the *remaining* staleness budget — MaxStaleness minus the served
// generation's age — so a secondary that last refreshed now ages its copy
// out at the same wall-clock moment the primary itself would report stale.
// This is why the apex SOA answer is never cached per-generation: expire
// counts down as the generation ages.
func (z *ZoneResponder) soa(g *Generation) dns.RR {
	refresh, retry, expire := uint32(60), uint32(30), uint32(600)
	if p := z.Store.Policy(); p != nil {
		if p.SweepInterval > 0 {
			refresh = ceilSeconds(p.SweepInterval)
		}
		if retry = refresh / 2; retry < 1 {
			retry = 1
		}
		if p.MaxStaleness > 0 {
			remaining := time.Duration(0)
			if !g.SweptAt.IsZero() {
				if age := p.now().Sub(g.SweptAt); age < p.MaxStaleness {
					remaining = p.MaxStaleness - age
				}
			}
			if expire = ceilSeconds(remaining); expire < retry {
				// Floor at retry: a zero expire would make secondaries drop
				// the zone the moment they load it, defeating stale-on-error.
				expire = retry
			}
		}
	}
	return dns.MustParseRR(fmt.Sprintf(
		"%s %d IN SOA ns.%s hostmaster.%s %d %d %d %d %d",
		z.Apex, z.ttl(), z.Apex, z.Apex, SerialForSeq(g.Seq), refresh, retry, expire, z.ttl()))
}

// ceilSeconds converts a duration to whole seconds, rounding up, min 1.
func ceilSeconds(d time.Duration) uint32 {
	if d <= 0 {
		return 1
	}
	s := d / time.Second
	if d%time.Second != 0 {
		s++
	}
	return uint32(s)
}

// answer renders the (rcode, answer RRs) for one question against one
// generation.
func (z *ZoneResponder) answer(g *Generation, qu dns.Question) cachedAnswer {
	name := qu.Name
	switch {
	case name == "gen."+z.Apex:
		return z.genAnswer(g, qu)
	case name.IsProperSubdomainOf(z.urblSuffix()):
		return z.listAnswer(g, qu, z.ipVerdicts(g, name))
	case name.IsProperSubdomainOf(z.urwatchSuffix()):
		domain := dns.Name(strings.TrimSuffix(string(name), "."+string(z.urwatchSuffix())))
		return z.listAnswer(g, qu, g.Domain(domain))
	case name == z.Apex && qu.Type == dns.TypeSOA:
		return cachedAnswer{rcode: dns.RCodeSuccess, answers: []dns.RR{z.soa(g)}}
	case name == z.Apex:
		return cachedAnswer{rcode: dns.RCodeSuccess}
	}
	return cachedAnswer{rcode: dns.RCodeNXDomain}
}

// ipVerdicts resolves a reversed-IPv4 urbl name to its verdict set.
func (z *ZoneResponder) ipVerdicts(g *Generation, name dns.Name) VerdictSet {
	rev := strings.TrimSuffix(string(name), "."+string(z.urblSuffix()))
	labels := strings.Split(rev, ".")
	if len(labels) != 4 {
		return VerdictSet{}
	}
	for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
		labels[i], labels[j] = labels[j], labels[i]
	}
	addr, err := netip.ParseAddr(strings.Join(labels, "."))
	if err != nil || !addr.Is4() {
		return VerdictSet{}
	}
	return g.IP(addr)
}

// listAnswer renders a listed name's A/TXT answer, or NXDOMAIN when the
// verdict set is empty.
func (z *ZoneResponder) listAnswer(g *Generation, qu dns.Question, vs VerdictSet) cachedAnswer {
	if vs.Len() == 0 {
		return cachedAnswer{rcode: dns.RCodeNXDomain}
	}
	switch qu.Type {
	case dns.TypeA:
		code := categoryCode(worstOf(vs))
		rr := dns.MustParseRR(fmt.Sprintf("%s %d IN A 127.0.0.%d", qu.Name, z.ttl(), code))
		return cachedAnswer{rcode: dns.RCodeSuccess, answers: []dns.RR{rr}}
	case dns.TypeTXT:
		answers := []dns.RR{z.txt(qu.Name, fmt.Sprintf("gen=%d listed=%d worst=%s",
			g.Seq, vs.Len(), worstOf(vs)))}
		for i := 0; i < vs.Len(); i++ {
			if i >= maxTXTEvidence {
				answers = append(answers, z.txt(qu.Name,
					fmt.Sprintf("and %d more", vs.Len()-maxTXTEvidence)))
				break
			}
			answers = append(answers, z.txt(qu.Name, evidenceString(vs.At(i))))
		}
		return cachedAnswer{rcode: dns.RCodeSuccess, answers: answers}
	}
	// Listed, but not a served type: NoData.
	return cachedAnswer{rcode: dns.RCodeSuccess}
}

// genAnswer serves the generation marker: TXT gen.<apex>.
func (z *ZoneResponder) genAnswer(g *Generation, qu dns.Question) cachedAnswer {
	if qu.Type != dns.TypeTXT {
		return cachedAnswer{rcode: dns.RCodeSuccess}
	}
	s := fmt.Sprintf("gen=%d total=%d malicious=%d suspicious=%d protective=%d correct=%d",
		g.Seq, g.Total(),
		g.Count(core.CategoryMalicious), g.Count(core.CategoryUnknown),
		g.Count(core.CategoryProtective), g.Count(core.CategoryCorrect))
	return cachedAnswer{rcode: dns.RCodeSuccess, answers: []dns.RR{z.txt(qu.Name, s)}}
}

// evidenceString renders one verdict's TXT evidence line — shared between
// the per-query TXT answers and the zone-transfer rendering (xfr.go), so a
// mirror's TXT records match what the query path would have served.
func evidenceString(v VerdictView) string {
	ev := fmt.Sprintf("%s %s %s @%s (%s)", v.Category(), v.Type(), v.Domain(), v.Server(), v.Provider())
	if v.ByIntel() || v.ByIDS() {
		ev += fmt.Sprintf(" intel=%t ids=%t", v.ByIntel(), v.ByIDS())
	}
	return ev
}

// txt builds one TXT record with a single character-string.
func (z *ZoneResponder) txt(name dns.Name, s string) dns.RR {
	return dns.MustParseRR(fmt.Sprintf("%s %d IN TXT %q", name, z.ttl(), s))
}

// ReverseIPName builds the urbl query name for an IPv4 address under apex —
// the client-side helper mirrored by ipVerdicts.
func ReverseIPName(addr netip.Addr, apex dns.Name) (dns.Name, bool) {
	if !addr.Is4() {
		return "", false
	}
	b := addr.As4()
	// string(apex), not %s on the Name: Name.String() appends the display
	// trailing dot, which would make the result non-canonical.
	return dns.Name(fmt.Sprintf("%d.%d.%d.%d.urbl.%s", b[3], b[2], b[1], b[0], string(apex))), true
}

// DomainName builds the urwatch query name for a domain under apex.
func DomainName(domain, apex dns.Name) dns.Name {
	return domain + ".urwatch." + apex
}
