package urwatch

import (
	"fmt"
	"net/netip"
	"strings"

	"repro/internal/core"
	"repro/internal/dns"
)

// The DNSBL front-end serves the verdict feed as an authoritative DNS zone,
// so stock resolvers, mail filters, and firewalls consume it with the
// queries they already know how to send:
//
//	<reversed-ipv4>.urbl.<apex>   A/TXT — is this address a UR destination?
//	<domain>.urwatch.<apex>       A/TXT — does this domain carry URs?
//	gen.<apex>                    TXT   — current generation + counts
//
// Listed names answer A 127.0.0.<code> (DNSBL convention: codes start at 2)
// and TXT evidence strings; unlisted names get NXDOMAIN with the zone SOA.
// Every response is built from a single generation dereference, and every
// TXT answer's first string carries "gen=<seq>", so a client can verify it
// never observed a torn mix of two generations.

// DNSBL response codes, per category (127.0.0.<code>).
const (
	CodeMalicious  = 2
	CodeSuspicious = 3
	CodeProtective = 4
	CodeCorrect    = 5
)

// categoryCode maps a classification to its DNSBL answer code.
func categoryCode(c core.Category) int {
	switch c {
	case core.CategoryMalicious:
		return CodeMalicious
	case core.CategoryUnknown:
		return CodeSuspicious
	case core.CategoryProtective:
		return CodeProtective
	default:
		return CodeCorrect
	}
}

// maxTXTEvidence caps the per-answer evidence records so a heavily listed
// name cannot balloon responses past the TCP limit.
const maxTXTEvidence = 8

// ZoneResponder serves the feed zone. It implements dnsio.Responder, so it
// attaches to real UDP/TCP sockets via dnsio.Server or to the simulated
// fabric via dnsio.AttachSim.
type ZoneResponder struct {
	// Apex roots the feed zone, e.g. "feed.test" serves urbl.feed.test and
	// urwatch.feed.test subtrees.
	Apex dns.Name
	// Store supplies verdicts.
	Store *Store
	// Limiter, when non-nil, throttles per-client; throttled queries get
	// REFUSED (the DNSBL convention for "come back later").
	Limiter *RateLimiter
	// Cache, when non-nil, memoizes rendered answer sets per generation.
	Cache *ResponseCache
	// TTL is the answer TTL (0 selects 30s — the feed changes per sweep, so
	// long TTLs would serve retired generations from resolver caches).
	TTL uint32
}

// cachedAnswer is one rendered (rcode, answers) pair, keyed by
// (generation, qname, qtype) in the response cache.
type cachedAnswer struct {
	rcode   dns.RCode
	answers []dns.RR
}

func (z *ZoneResponder) ttl() uint32 {
	if z.TTL == 0 {
		return 30
	}
	return z.TTL
}

func (z *ZoneResponder) urblSuffix() dns.Name    { return "urbl." + z.Apex }
func (z *ZoneResponder) urwatchSuffix() dns.Name { return "urwatch." + z.Apex }

// HandleQuery implements dnsio.Responder. Every answer is computed from one
// Store.Current() load.
func (z *ZoneResponder) HandleQuery(src netip.Addr, q *dns.Message) *dns.Message {
	r := q.Reply()
	if len(q.Questions) != 1 {
		r.Header.RCode = dns.RCodeFormat
		return r
	}
	qu := q.Questions[0]
	if qu.Name != z.Apex && !qu.Name.IsSubdomainOf(z.Apex) {
		r.Header.RCode = dns.RCodeRefused
		return r
	}
	if !z.Limiter.Allow(src) {
		r.Header.RCode = dns.RCodeRefused
		return r
	}
	r.Header.Authoritative = true

	g := z.Store.Current()
	key := string(qu.Name) + "|" + qu.Type.String()
	if z.Cache != nil {
		if v, ok := z.Cache.Get(g.Seq, key); ok {
			ca := v.(cachedAnswer)
			return z.finish(r, g, ca)
		}
	}
	ca := z.answer(g, qu)
	if z.Cache != nil {
		z.Cache.Put(g.Seq, key, ca)
	}
	return z.finish(r, g, ca)
}

// finish attaches a cached answer to the reply, adding the negative-answer
// SOA on NXDOMAIN/NoData.
func (z *ZoneResponder) finish(r *dns.Message, g *Generation, ca cachedAnswer) *dns.Message {
	r.Header.RCode = ca.rcode
	r.Answers = append(r.Answers, ca.answers...)
	if len(ca.answers) == 0 {
		r.Authority = append(r.Authority, z.soa(g))
	}
	return r
}

// soa synthesizes the zone SOA; the serial is the generation number, so
// zone-transfer-style pollers can detect staleness with a plain SOA query.
func (z *ZoneResponder) soa(g *Generation) dns.RR {
	return dns.MustParseRR(fmt.Sprintf(
		"%s %d IN SOA ns.%s hostmaster.%s %d 60 30 600 %d",
		z.Apex, z.ttl(), z.Apex, z.Apex, g.Seq, z.ttl()))
}

// answer renders the (rcode, answer RRs) for one question against one
// generation.
func (z *ZoneResponder) answer(g *Generation, qu dns.Question) cachedAnswer {
	name := qu.Name
	switch {
	case name == "gen."+z.Apex:
		return z.genAnswer(g, qu)
	case name.IsProperSubdomainOf(z.urblSuffix()):
		return z.listAnswer(g, qu, z.ipVerdicts(g, name))
	case name.IsProperSubdomainOf(z.urwatchSuffix()):
		domain := dns.Name(strings.TrimSuffix(string(name), "."+string(z.urwatchSuffix())))
		return z.listAnswer(g, qu, g.Domain(domain))
	case name == z.Apex && qu.Type == dns.TypeSOA:
		return cachedAnswer{rcode: dns.RCodeSuccess, answers: []dns.RR{z.soa(g)}}
	case name == z.Apex:
		return cachedAnswer{rcode: dns.RCodeSuccess}
	}
	return cachedAnswer{rcode: dns.RCodeNXDomain}
}

// ipVerdicts resolves a reversed-IPv4 urbl name to its verdict set.
func (z *ZoneResponder) ipVerdicts(g *Generation, name dns.Name) VerdictSet {
	rev := strings.TrimSuffix(string(name), "."+string(z.urblSuffix()))
	labels := strings.Split(rev, ".")
	if len(labels) != 4 {
		return VerdictSet{}
	}
	for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
		labels[i], labels[j] = labels[j], labels[i]
	}
	addr, err := netip.ParseAddr(strings.Join(labels, "."))
	if err != nil || !addr.Is4() {
		return VerdictSet{}
	}
	return g.IP(addr)
}

// listAnswer renders a listed name's A/TXT answer, or NXDOMAIN when the
// verdict set is empty.
func (z *ZoneResponder) listAnswer(g *Generation, qu dns.Question, vs VerdictSet) cachedAnswer {
	if vs.Len() == 0 {
		return cachedAnswer{rcode: dns.RCodeNXDomain}
	}
	switch qu.Type {
	case dns.TypeA:
		code := categoryCode(worstOf(vs))
		rr := dns.MustParseRR(fmt.Sprintf("%s %d IN A 127.0.0.%d", qu.Name, z.ttl(), code))
		return cachedAnswer{rcode: dns.RCodeSuccess, answers: []dns.RR{rr}}
	case dns.TypeTXT:
		answers := []dns.RR{z.txt(qu.Name, fmt.Sprintf("gen=%d listed=%d worst=%s",
			g.Seq, vs.Len(), worstOf(vs)))}
		for i := 0; i < vs.Len(); i++ {
			if i >= maxTXTEvidence {
				answers = append(answers, z.txt(qu.Name,
					fmt.Sprintf("and %d more", vs.Len()-maxTXTEvidence)))
				break
			}
			v := vs.At(i)
			ev := fmt.Sprintf("%s %s %s @%s (%s)", v.Category(), v.Type(), v.Domain(), v.Server(), v.Provider())
			if v.ByIntel() || v.ByIDS() {
				ev += fmt.Sprintf(" intel=%t ids=%t", v.ByIntel(), v.ByIDS())
			}
			answers = append(answers, z.txt(qu.Name, ev))
		}
		return cachedAnswer{rcode: dns.RCodeSuccess, answers: answers}
	}
	// Listed, but not a served type: NoData.
	return cachedAnswer{rcode: dns.RCodeSuccess}
}

// genAnswer serves the generation marker: TXT gen.<apex>.
func (z *ZoneResponder) genAnswer(g *Generation, qu dns.Question) cachedAnswer {
	if qu.Type != dns.TypeTXT {
		return cachedAnswer{rcode: dns.RCodeSuccess}
	}
	s := fmt.Sprintf("gen=%d total=%d malicious=%d suspicious=%d protective=%d correct=%d",
		g.Seq, g.Total(),
		g.Count(core.CategoryMalicious), g.Count(core.CategoryUnknown),
		g.Count(core.CategoryProtective), g.Count(core.CategoryCorrect))
	return cachedAnswer{rcode: dns.RCodeSuccess, answers: []dns.RR{z.txt(qu.Name, s)}}
}

// txt builds one TXT record with a single character-string.
func (z *ZoneResponder) txt(name dns.Name, s string) dns.RR {
	return dns.MustParseRR(fmt.Sprintf("%s %d IN TXT %q", name, z.ttl(), s))
}

// ReverseIPName builds the urbl query name for an IPv4 address under apex —
// the client-side helper mirrored by ipVerdicts.
func ReverseIPName(addr netip.Addr, apex dns.Name) (dns.Name, bool) {
	if !addr.Is4() {
		return "", false
	}
	b := addr.As4()
	// string(apex), not %s on the Name: Name.String() appends the display
	// trailing dot, which would make the result non-canonical.
	return dns.Name(fmt.Sprintf("%d.%d.%d.%d.urbl.%s", b[3], b[2], b[1], b[0], string(apex))), true
}

// DomainName builds the urwatch query name for a domain under apex.
func DomainName(domain, apex dns.Name) dns.Name {
	return domain + ".urwatch." + apex
}
