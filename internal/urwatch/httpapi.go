package urwatch

import (
	"encoding/json"
	"net"
	"net/http"
	"net/netip"
	"strconv"
	"time"

	"repro/internal/dns"
)

// API is the HTTP/JSON front-end over a verdict store. Every response
// envelope carries the generation number it was served from; like the DNS
// front-end, a request dereferences the generation pointer exactly once, so
// the envelope is internally consistent even mid-publish.
//
// Endpoints (all GET):
//
//	/v1/lookup?domain=<name>     verdicts for a domain
//	/v1/lookup?ip=<addr>         verdicts whose corresponding IPs include addr
//	/v1/provider?name=<provider> one provider's aggregate counts
//	/v1/providers                every provider's aggregate counts
//	/v1/events?since=N&max=M     event-log tail with Seq > N
//	/v1/health                   watcher condition + staleness state
//	/v1/coverage                 last sweep's measurement-coverage summary
//	/metrics                     Prometheus text exposition
//
// Rate-limited clients get 429; malformed queries 400. Nothing here returns
// 5xx in normal operation — the serve-load smoke job asserts that. Every
// response additionally carries the X-URWatch-Staleness and X-URWatch-Health
// headers, so a consumer of *any* endpoint can tell it is reading stale data
// without a second round-trip to /v1/health.
type API struct {
	Store *Store
	// Watcher, when non-nil, supplies /v1/health.
	Watcher *Watcher
	// Limiter, when non-nil, throttles per client IP (from RemoteAddr).
	Limiter *RateLimiter
	// Cache, when non-nil, memoizes marshaled lookup bodies per generation.
	Cache *ResponseCache
	// Metrics, when non-nil, backs /metrics and records HTTP latencies.
	Metrics *Metrics
}

// VerdictJSON is the wire form of one verdict.
type VerdictJSON struct {
	Domain   string   `json:"domain"`
	Type     string   `json:"type"`
	RData    string   `json:"rdata"`
	TTL      uint32   `json:"ttl"`
	Server   string   `json:"server"`
	NSHost   string   `json:"ns_host,omitempty"`
	Provider string   `json:"provider"`
	Category string   `json:"category"`
	Reason   string   `json:"reason,omitempty"`
	ByIntel  bool     `json:"by_intel,omitempty"`
	ByIDS    bool     `json:"by_ids,omitempty"`
	IPs      []string `json:"ips,omitempty"`
}

func verdictJSON(v VerdictView) VerdictJSON {
	out := VerdictJSON{
		Domain:   string(v.Domain()),
		Type:     v.Type().String(),
		RData:    v.RData(),
		TTL:      v.TTL(),
		Server:   v.Server().String(),
		NSHost:   string(v.NSHost()),
		Provider: v.Provider(),
		Category: v.Category().String(),
		Reason:   string(v.Reason()),
		ByIntel:  v.ByIntel(),
		ByIDS:    v.ByIDS(),
	}
	for _, ip := range v.IPs() {
		out.IPs = append(out.IPs, ip.String())
	}
	return out
}

// lookupResponse is the /v1/lookup envelope.
type lookupResponse struct {
	Generation uint64        `json:"generation"`
	Query      string        `json:"query"`
	Listed     bool          `json:"listed"`
	Worst      string        `json:"worst,omitempty"`
	Verdicts   []VerdictJSON `json:"verdicts"`
}

// Handler returns the API's routed handler.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/lookup", a.limited(a.handleLookup))
	mux.HandleFunc("/v1/provider", a.limited(a.handleProvider))
	mux.HandleFunc("/v1/providers", a.limited(a.handleProviders))
	mux.HandleFunc("/v1/events", a.limited(a.handleEvents))
	mux.HandleFunc("/v1/health", a.limited(a.handleHealth))
	mux.HandleFunc("/v1/coverage", a.limited(a.handleCoverage))
	mux.HandleFunc("/metrics", a.limited(a.handleMetrics))
	return mux
}

// limited wraps a handler with the per-client token bucket, the staleness
// response headers, and the latency observer.
func (a *API) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var t0 time.Time
		if a.Metrics != nil {
			t0 = time.Now()
		}
		st := a.Store.Staleness(a.now())
		// Headers must precede any WriteHeader call, so stamp them first:
		// a rate-limited or erroring response still reports staleness.
		w.Header().Set("X-URWatch-Staleness", st.HeaderValue())
		w.Header().Set("X-URWatch-Health", st.State.String())
		if a.Limiter != nil {
			client := clientAddr(r)
			if !a.Limiter.Allow(client) {
				http.Error(w, `{"error":"rate limited"}`, http.StatusTooManyRequests)
				return
			}
		}
		h(w, r)
		if a.Metrics != nil {
			a.Metrics.ObserveHTTP(time.Since(t0))
		}
	}
}

// now reads the store policy's clock so header ages and /metrics gauges stay
// consistent with the health machine under injected test clocks.
func (a *API) now() time.Time {
	if p := a.Store.Policy(); p != nil {
		return p.now()
	}
	return time.Now()
}

// handleMetrics serves the Prometheus text exposition.
func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	a.Metrics.WriteProm(w, a.Store, a.Cache, a.now())
}

// clientAddr extracts the client IP from RemoteAddr (zero Addr on failure,
// which buckets all unparseable clients together — fail closed, not open).
func clientAddr(r *http.Request) netip.Addr {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	addr, err := netip.ParseAddr(host)
	if err != nil {
		return netip.Addr{}
	}
	return addr
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func badRequest(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": msg})
}

func (a *API) handleLookup(w http.ResponseWriter, r *http.Request) {
	g := a.Store.Current()
	q := r.URL.Query()
	var vs VerdictSet
	var label string
	switch {
	case q.Get("domain") != "":
		d, err := dns.ParseName(q.Get("domain"))
		if err != nil {
			badRequest(w, "bad domain: "+err.Error())
			return
		}
		label = "domain:" + string(d)
		vs = g.Domain(d)
	case q.Get("ip") != "":
		addr, err := netip.ParseAddr(q.Get("ip"))
		if err != nil {
			badRequest(w, "bad ip: "+err.Error())
			return
		}
		label = "ip:" + addr.String()
		vs = g.IP(addr)
	default:
		badRequest(w, "need ?domain= or ?ip=")
		return
	}
	if a.Cache != nil {
		if body, ok := a.Cache.Get(g.Seq, label); ok {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(body.([]byte))
			return
		}
	}
	resp := lookupResponse{Generation: g.Seq, Query: label, Listed: vs.Len() > 0}
	if vs.Len() > 0 {
		resp.Worst = worstOf(vs).String()
	}
	resp.Verdicts = make([]VerdictJSON, 0, vs.Len())
	for i := 0; i < vs.Len(); i++ {
		resp.Verdicts = append(resp.Verdicts, verdictJSON(vs.At(i)))
	}
	body, err := json.Marshal(resp)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	body = append(body, '\n')
	if a.Cache != nil {
		a.Cache.Put(g.Seq, label, body)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (a *API) handleProvider(w http.ResponseWriter, r *http.Request) {
	g := a.Store.Current()
	name := r.URL.Query().Get("name")
	if name == "" {
		badRequest(w, "need ?name=")
		return
	}
	ps, ok := g.Provider(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"generation": g.Seq, "error": "unknown provider", "name": name,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": g.Seq, "provider": ps,
	})
}

func (a *API) handleProviders(w http.ResponseWriter, r *http.Request) {
	g := a.Store.Current()
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": g.Seq, "providers": g.Providers(),
	})
}

func (a *API) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	since := uint64(0)
	if s := q.Get("since"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			badRequest(w, "bad since: "+err.Error())
			return
		}
		since = n
	}
	max := 1000
	if s := q.Get("max"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			badRequest(w, "bad max")
			return
		}
		max = n
	}
	g := a.Store.Current()
	events, truncated := a.Store.Log().Since(since, max)
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": g.Seq,
		"since":      since,
		"truncated":  truncated,
		"events":     events,
	})
}

func (a *API) handleHealth(w http.ResponseWriter, r *http.Request) {
	if a.Watcher == nil {
		g := a.Store.Current()
		writeJSON(w, http.StatusOK, map[string]any{
			"generation": g.Seq, "verdicts": g.Total(),
		})
		return
	}
	writeJSON(w, http.StatusOK, a.Watcher.Health())
}

func (a *API) handleCoverage(w http.ResponseWriter, r *http.Request) {
	g := a.Store.Current()
	resp := map[string]any{
		"generation": g.Seq,
		"queries":    g.Queries,
	}
	if c := g.Coverage; c != nil {
		resp["attempted"] = c.Attempted
		resp["answered"] = c.Answered
		resp["answered_ratio"] = c.AnsweredRatio()
		resp["recovered"] = c.RetriedRecovered
		resp["breaker_trips"] = c.BreakerTrips
		resp["failed_by_class"] = c.FailedByClass
	}
	writeJSON(w, http.StatusOK, resp)
}
