package urwatch

// Binary generation snapshots: write once per sealed generation, load in one
// pass at startup.
//
// A verdict feed is only a usable defense if resolvers can rely on it being
// up, which makes restart-to-serving latency a first-class metric: a
// restarted urwatchd must answer from the last sealed generation in
// milliseconds, not after a full re-sweep. The flat store makes that almost
// free — a generation already is a handful of contiguous arrays — so the
// snapshot format is little more than those arrays, length-prefixed and
// CRC-framed.
//
// Wire format (all integers little-endian):
//
//	magic    "URWSNAP\x01" (8 bytes)
//	section* each: [u8 kind][u32 payloadLen][u32 CRC-32C(payload)][payload]
//
// Sections appear exactly once, in fixed order:
//
//	kind 1  meta      format version, Seq, SweptAt, Queries, counts, and
//	                  the element count of every later section — load-time
//	                  cross-checks against the actual section contents.
//	kind 2  strings   the deduplicated string table: count × [u32 len][bytes]
//	kind 3  records   count × fixed-width packed verdictRec
//	kind 4  iptab     the packed corresponding-IP arena: count × address
//	kind 5  ipindex   count × [address][u32 record ordinal]
//	kind 6  providers JSON-encoded []*ProviderStats (sorted by name)
//	kind 7  coverage  JSON-encoded *core.Coverage (empty payload when nil)
//	kind 255 end      empty payload — the completion marker
//
// Torn-tail detection mirrors the sweep journal's framing: a crash mid-write
// leaves either a short header, a payload shorter than its declared length,
// or a missing end marker, and each case is a load error, never a partially
// served generation. (Writes additionally go through a temp file + rename,
// so a torn file only exists if the filesystem itself lost the rename.)
// Every CRC is verified before its payload is interpreted, and the decoded
// arrays are re-validated against the flat store's invariants — reference
// bounds, span bounds, sort order, count consistency — so a corrupt
// snapshot that passes CRC (or a hostile one) is still rejected rather than
// served. FuzzSnapshotLoad hammers exactly this surface.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dns"
)

// Snapshot format constants.
const (
	snapVersion = 1
	// snapMagic distinguishes snapshot files from anything else; the final
	// byte doubles as a coarse format epoch so future incompatible layouts
	// can bump it without parsing.
	snapMagic = "URWSNAP\x01"
	// snapHeader is the [u8 kind][u32 len][u32 crc] section prefix.
	snapHeader = 9
	// snapRecSize is the fixed on-disk width of one verdictRec: a 17-byte
	// address (family + 16 value bytes), 8 u32s (five string refs, the IP
	// span pair, the TTL), the u16 type, and category + flags bytes.
	snapRecSize = 17 + 8*4 + 2 + 1 + 1
	// snapAddrSize is one packed address: u8 family (4 or 16) + 16 bytes.
	snapAddrSize = 17
	// snapMaxSection bounds a section's declared payload so a corrupt
	// header cannot demand an absurd allocation before CRC checking.
	snapMaxSection = 1 << 30
)

// Section kinds, in required file order.
const (
	secMeta      byte = 1
	secStrings   byte = 2
	secRecords   byte = 3
	secIPTab     byte = 4
	secIPIndex   byte = 5
	secProviders byte = 6
	secCoverage  byte = 7
	secEnd       byte = 255
)

// snapCRC is the same Castagnoli table the sweep journal frames with.
var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrSnapshotCorrupt tags every load failure caused by the file's contents
// (as opposed to I/O errors). errors.Is-able.
var ErrSnapshotCorrupt = errors.New("urwatch: corrupt snapshot")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
}

// --- encoding --------------------------------------------------------------

func appendSection(dst []byte, kind byte, payload []byte) []byte {
	var hdr [snapHeader]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.Checksum(payload, snapCRC))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

func appendAddr(dst []byte, a netip.Addr) []byte {
	if a.Is4() {
		b := a.As4()
		dst = append(dst, 4)
		dst = append(dst, b[:]...)
		return append(dst, make([]byte, 12)...)
	}
	b := a.As16()
	dst = append(dst, 16)
	return append(dst, b[:]...)
}

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// EncodeSnapshot serializes a sealed generation into the snapshot wire
// format.
func EncodeSnapshot(g *Generation) ([]byte, error) {
	// Meta: fixed-width header with the counts every later section must
	// match.
	meta := make([]byte, 0, 96)
	meta = appendU32(meta, snapVersion)
	meta = binary.LittleEndian.AppendUint64(meta, g.Seq)
	meta = binary.LittleEndian.AppendUint64(meta, uint64(g.SweptAt.Unix()))
	meta = appendU32(meta, uint32(g.SweptAt.Nanosecond()))
	meta = binary.LittleEndian.AppendUint64(meta, uint64(g.Queries))
	for _, c := range g.counts {
		meta = binary.LittleEndian.AppendUint64(meta, uint64(c))
	}
	meta = appendU32(meta, uint32(len(g.strs)))
	meta = appendU32(meta, uint32(len(g.recs)))
	meta = appendU32(meta, uint32(len(g.ipTab)))
	meta = appendU32(meta, uint32(len(g.ipIdx)))
	meta = appendU32(meta, uint32(len(g.provs)))

	strs := make([]byte, 0, 16*len(g.strs))
	for _, s := range g.strs {
		strs = appendU32(strs, uint32(len(s)))
		strs = append(strs, s...)
	}

	recs := make([]byte, 0, snapRecSize*len(g.recs))
	for i := range g.recs {
		r := &g.recs[i]
		recs = appendAddr(recs, r.server)
		recs = appendU32(recs, r.domain)
		recs = appendU32(recs, r.rdata)
		recs = appendU32(recs, r.nsHost)
		recs = appendU32(recs, r.provider)
		recs = appendU32(recs, r.reason)
		recs = appendU32(recs, r.ipOff)
		recs = appendU32(recs, r.ipLen)
		recs = appendU32(recs, r.ttl)
		recs = binary.LittleEndian.AppendUint16(recs, uint16(r.typ))
		recs = append(recs, r.category, r.flags)
	}

	ipTab := make([]byte, 0, snapAddrSize*len(g.ipTab))
	for _, a := range g.ipTab {
		ipTab = appendAddr(ipTab, a)
	}

	ipIdx := make([]byte, 0, (snapAddrSize+4)*len(g.ipIdx))
	for _, e := range g.ipIdx {
		ipIdx = appendAddr(ipIdx, e.addr)
		ipIdx = appendU32(ipIdx, e.rec)
	}

	provs, err := json.Marshal(g.provs)
	if err != nil {
		return nil, fmt.Errorf("urwatch: snapshot providers: %w", err)
	}
	var coverage []byte
	if g.Coverage != nil {
		coverage, err = json.Marshal(g.Coverage)
		if err != nil {
			return nil, fmt.Errorf("urwatch: snapshot coverage: %w", err)
		}
	}

	out := make([]byte, 0, len(snapMagic)+8*snapHeader+
		len(meta)+len(strs)+len(recs)+len(ipTab)+len(ipIdx)+len(provs)+len(coverage))
	out = append(out, snapMagic...)
	out = appendSection(out, secMeta, meta)
	out = appendSection(out, secStrings, strs)
	out = appendSection(out, secRecords, recs)
	out = appendSection(out, secIPTab, ipTab)
	out = appendSection(out, secIPIndex, ipIdx)
	out = appendSection(out, secProviders, provs)
	out = appendSection(out, secCoverage, coverage)
	out = appendSection(out, secEnd, nil)
	return out, nil
}

// --- decoding --------------------------------------------------------------

// snapReader walks snapshot bytes with bounds-checked reads; every failure
// is an ErrSnapshotCorrupt.
type snapReader struct {
	b   []byte
	off int
}

func (r *snapReader) remaining() int { return len(r.b) - r.off }

func (r *snapReader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, corruptf("truncated at offset %d (want %d bytes, have %d)", r.off, n, r.remaining())
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

// section reads one framed section, verifying kind and CRC before returning
// the payload.
func (r *snapReader) section(wantKind byte) ([]byte, error) {
	hdr, err := r.take(snapHeader)
	if err != nil {
		return nil, err
	}
	if hdr[0] != wantKind {
		return nil, corruptf("section kind %d where %d expected", hdr[0], wantKind)
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	if n > snapMaxSection {
		return nil, corruptf("section %d declares %d bytes", wantKind, n)
	}
	payload, err := r.take(int(n))
	if err != nil {
		return nil, err
	}
	if got := crc32.Checksum(payload, snapCRC); got != binary.LittleEndian.Uint32(hdr[5:9]) {
		return nil, corruptf("section %d CRC mismatch", wantKind)
	}
	return payload, nil
}

func readAddr(b []byte) (netip.Addr, []byte, error) {
	if len(b) < snapAddrSize {
		return netip.Addr{}, nil, corruptf("truncated address")
	}
	fam := b[0]
	switch fam {
	case 4:
		var v [4]byte
		copy(v[:], b[1:5])
		return netip.AddrFrom4(v), b[snapAddrSize:], nil
	case 16:
		var v [16]byte
		copy(v[:], b[1:17])
		return netip.AddrFrom16(v), b[snapAddrSize:], nil
	}
	return netip.Addr{}, nil, corruptf("address family %d", fam)
}

// DecodeSnapshot parses and fully validates snapshot bytes, returning the
// reconstructed immutable generation. Any structural problem — truncation,
// CRC mismatch, out-of-bounds reference, unsorted arrays, inconsistent
// counts — returns an error wrapping ErrSnapshotCorrupt; a decoded
// generation is always safe to serve.
func DecodeSnapshot(data []byte) (*Generation, error) {
	r := &snapReader{b: data}
	magic, err := r.take(len(snapMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != snapMagic {
		return nil, corruptf("bad magic")
	}

	meta, err := r.section(secMeta)
	if err != nil {
		return nil, err
	}
	const metaLen = 4 + 8 + 8 + 4 + 8 + 4*8 + 5*4
	if len(meta) != metaLen {
		return nil, corruptf("meta section is %d bytes, want %d", len(meta), metaLen)
	}
	le := binary.LittleEndian
	if v := le.Uint32(meta[0:4]); v != snapVersion {
		return nil, corruptf("unsupported snapshot version %d", v)
	}
	g := &Generation{}
	g.Seq = le.Uint64(meta[4:12])
	sec := int64(le.Uint64(meta[12:20]))
	nsec := le.Uint32(meta[20:24])
	if nsec >= 1e9 {
		return nil, corruptf("swept-at nanoseconds %d", nsec)
	}
	g.SweptAt = time.Unix(sec, int64(nsec))
	g.Queries = int64(le.Uint64(meta[24:32]))
	off := 32
	total := 0
	for i := range g.counts {
		c := le.Uint64(meta[off : off+8])
		if c > 1<<40 {
			return nil, corruptf("category count %d", c)
		}
		g.counts[i] = int(c)
		total += int(c)
		off += 8
	}
	nStrs := int(le.Uint32(meta[off : off+4]))
	nRecs := int(le.Uint32(meta[off+4 : off+8]))
	nIPs := int(le.Uint32(meta[off+8 : off+12]))
	nIdx := int(le.Uint32(meta[off+12 : off+16]))
	nProvs := int(le.Uint32(meta[off+16 : off+20]))
	if nRecs != total {
		return nil, corruptf("record count %d != category-count sum %d", nRecs, total)
	}
	if nStrs < 1 {
		return nil, corruptf("empty string table")
	}

	// Strings.
	strs, err := r.section(secStrings)
	if err != nil {
		return nil, err
	}
	g.strs = make([]string, 0, nStrs)
	for len(strs) > 0 {
		if len(strs) < 4 {
			return nil, corruptf("truncated string length")
		}
		n := int(le.Uint32(strs[0:4]))
		strs = strs[4:]
		if n > len(strs) {
			return nil, corruptf("string of %d bytes overruns section", n)
		}
		g.strs = append(g.strs, storeInterner.Intern(string(strs[:n])))
		strs = strs[n:]
	}
	if len(g.strs) != nStrs {
		return nil, corruptf("string table has %d entries, meta says %d", len(g.strs), nStrs)
	}
	if g.strs[0] != "" {
		return nil, corruptf("string table entry 0 is %q, want empty", g.strs[0])
	}

	// Records.
	recs, err := r.section(secRecords)
	if err != nil {
		return nil, err
	}
	if len(recs) != nRecs*snapRecSize {
		return nil, corruptf("records section is %d bytes, want %d", len(recs), nRecs*snapRecSize)
	}
	g.recs = make([]verdictRec, nRecs)
	for i := 0; i < nRecs; i++ {
		var rec verdictRec
		rec.server, recs, err = readAddr(recs)
		if err != nil {
			return nil, err
		}
		rec.domain = le.Uint32(recs[0:4])
		rec.rdata = le.Uint32(recs[4:8])
		rec.nsHost = le.Uint32(recs[8:12])
		rec.provider = le.Uint32(recs[12:16])
		rec.reason = le.Uint32(recs[16:20])
		rec.ipOff = le.Uint32(recs[20:24])
		rec.ipLen = le.Uint32(recs[24:28])
		rec.ttl = le.Uint32(recs[28:32])
		rec.typ = dns.Type(le.Uint16(recs[32:34]))
		rec.category = recs[34]
		rec.flags = recs[35]
		recs = recs[36:]
		for _, ref := range [...]uint32{rec.domain, rec.rdata, rec.nsHost, rec.provider, rec.reason} {
			if int(ref) >= nStrs {
				return nil, corruptf("record %d references string %d of %d", i, ref, nStrs)
			}
		}
		if int(rec.ipOff)+int(rec.ipLen) > nIPs {
			return nil, corruptf("record %d IP span [%d,%d) exceeds arena of %d", i, rec.ipOff, rec.ipOff+rec.ipLen, nIPs)
		}
		if rec.category >= uint8(len(g.counts)) {
			return nil, corruptf("record %d category %d", i, rec.category)
		}
		if rec.flags &^ (flagByIntel | flagByIDS) != 0 {
			return nil, corruptf("record %d flags %#x", i, rec.flags)
		}
		g.recs[i] = rec
	}
	// Sort order is a serving invariant (binary searches assume it), so it
	// is checked, not trusted.
	for i := 1; i < nRecs; i++ {
		if !recIdentityLess(g, i-1, g, i) {
			return nil, corruptf("records %d and %d out of order or duplicated", i-1, i)
		}
	}
	catTotals := [4]int{}
	for i := range g.recs {
		catTotals[g.recs[i].category]++
	}
	if catTotals != g.counts {
		return nil, corruptf("per-record categories %v != meta counts %v", catTotals, g.counts)
	}

	// IP arena.
	ipTab, err := r.section(secIPTab)
	if err != nil {
		return nil, err
	}
	if len(ipTab) != nIPs*snapAddrSize {
		return nil, corruptf("iptab section is %d bytes, want %d", len(ipTab), nIPs*snapAddrSize)
	}
	g.ipTab = make([]netip.Addr, nIPs)
	for i := 0; i < nIPs; i++ {
		g.ipTab[i], ipTab, err = readAddr(ipTab)
		if err != nil {
			return nil, err
		}
	}

	// IP index.
	ipIdx, err := r.section(secIPIndex)
	if err != nil {
		return nil, err
	}
	if len(ipIdx) != nIdx*(snapAddrSize+4) {
		return nil, corruptf("ipindex section is %d bytes, want %d", len(ipIdx), nIdx*(snapAddrSize+4))
	}
	g.ipIdx = make([]ipEntry, nIdx)
	for i := 0; i < nIdx; i++ {
		g.ipIdx[i].addr, ipIdx, err = readAddr(ipIdx)
		if err != nil {
			return nil, err
		}
		rec := le.Uint32(ipIdx[0:4])
		ipIdx = ipIdx[4:]
		if int(rec) >= nRecs {
			return nil, corruptf("ipindex entry %d references record %d of %d", i, rec, nRecs)
		}
		g.ipIdx[i].rec = rec
	}
	for i := 1; i < nIdx; i++ {
		a, b := g.ipIdx[i-1], g.ipIdx[i]
		if cmp := a.addr.Compare(b.addr); cmp > 0 ||
			(cmp == 0 && !g.recCanonLess(int(a.rec), int(b.rec)) && a.rec != b.rec) {
			return nil, corruptf("ipindex entries %d and %d out of order", i-1, i)
		}
	}

	// Providers.
	provJSON, err := r.section(secProviders)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(provJSON, &g.provs); err != nil {
		return nil, corruptf("providers JSON: %v", err)
	}
	provTotal := 0
	for i, p := range g.provs {
		if p == nil {
			return nil, corruptf("provider %d is null", i)
		}
		if i > 0 && g.provs[i-1].Provider >= p.Provider {
			return nil, corruptf("providers %d and %d out of order", i-1, i)
		}
		provTotal += p.Total
	}
	if provTotal != nRecs {
		return nil, corruptf("provider totals sum to %d, records %d", provTotal, nRecs)
	}
	if len(g.provs) != nProvs {
		return nil, corruptf("providers section has %d entries, meta says %d", len(g.provs), nProvs)
	}

	// Coverage.
	covJSON, err := r.section(secCoverage)
	if err != nil {
		return nil, err
	}
	if len(covJSON) > 0 {
		g.Coverage = &core.Coverage{}
		if err := json.Unmarshal(covJSON, g.Coverage); err != nil {
			return nil, corruptf("coverage JSON: %v", err)
		}
	}

	// Completion marker, then nothing: a torn tail is a missing/short end
	// section; trailing garbage is corruption.
	if _, err := r.section(secEnd); err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, corruptf("%d trailing bytes after end marker", r.remaining())
	}
	return g, nil
}

// recIdentityLess is strict (domain, server, type, rdata) ordering across
// two generations' record arrays.
func recIdentityLess(ag *Generation, ai int, bg *Generation, bi int) bool {
	return compareIdentity(ag, ai, bg, bi) < 0
}

// --- files and directories -------------------------------------------------

// WriteSnapshotFile atomically writes g's snapshot to path (temp file +
// rename in the same directory).
func WriteSnapshotFile(g *Generation, path string) error {
	data, err := EncodeSnapshot(g)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return fmt.Errorf("urwatch: snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("urwatch: snapshot write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("urwatch: snapshot close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("urwatch: snapshot rename: %w", err)
	}
	return nil
}

// LoadSnapshotFile reads and validates one snapshot file.
func LoadSnapshotFile(path string) (*Generation, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g, err := DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// snapKeep is how many generation snapshots SaveGeneration retains: the one
// just written plus its predecessor, so a crash mid-write of the newest
// never strands a restart without a loadable file.
const snapKeep = 2

// snapshotName formats the snapshot filename for a generation; zero-padded
// so lexicographic order is sequence order.
func snapshotName(seq uint64) string {
	return fmt.Sprintf("gen-%016d.snap", seq)
}

// SaveGeneration writes g's snapshot into dir and prunes all but the newest
// snapKeep files. Returns the written path.
func SaveGeneration(dir string, g *Generation) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("urwatch: snapshot dir: %w", err)
	}
	path := filepath.Join(dir, snapshotName(g.Seq))
	if err := WriteSnapshotFile(g, path); err != nil {
		return "", err
	}
	if names, err := snapshotFiles(dir); err == nil && len(names) > snapKeep {
		for _, old := range names[:len(names)-snapKeep] {
			os.Remove(filepath.Join(dir, old))
		}
	}
	return path, nil
}

// snapshotFiles lists dir's snapshot filenames, oldest first.
func snapshotFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && len(name) > 9 && name[:4] == "gen-" && filepath.Ext(name) == ".snap" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// LoadLatestSnapshot loads the newest valid snapshot in dir, trying older
// files when the newest is corrupt or torn. It returns (nil, "", nil) when
// the directory holds no snapshots at all, and the last load error only if
// every candidate failed — so a caller can distinguish "nothing to restore"
// from "snapshots exist but none is servable".
func LoadLatestSnapshot(dir string) (*Generation, string, error) {
	names, err := snapshotFiles(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, "", nil
		}
		return nil, "", err
	}
	var lastErr error
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(dir, names[i])
		g, err := LoadSnapshotFile(path)
		if err != nil {
			lastErr = err
			continue
		}
		return g, path, nil
	}
	return nil, "", lastErr
}
