package urwatch

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/dns"
	"repro/internal/dnsio"
)

// Zone mirroring. A DNSBL consumer that queries per-lookup sees one name at a
// time; a mirror wants the whole feed, kept current. This file serves the
// verdict feed as a transferable zone: AXFR (RFC 5936) streams the full zone,
// IXFR (RFC 1995) streams only what changed between two generations, and the
// SOA serial is the generation sequence number — so "is my mirror current?"
// is a single SOA query, and an incremental delta is a deterministic diff of
// two retained generations.
//
// Everything streams straight off the flat generation arrays: the zone's
// rendered order IS the record array's (domain, server, type, rdata) order
// followed by the IP index's address order, so rendering walks contiguous
// runs and never materializes a map or a sorted copy. That also makes the
// rendering reproducible — two walks of the same generation produce the same
// RR sequence — which is what lets IXFR deltas be computed by merge-diffing
// two generations' block streams.
//
// Access control: transfers hand out the entire feed in one exchange, so
// they are gated by an explicit source-IP allowlist (ZoneResponder.XferACL).
// A nil allowlist disables transfers entirely; denied clients get REFUSED.

// xfrMsgBudget bounds the estimated wire size of one transfer message, well
// under the 64 KiB TCP frame limit so the estimate never needs to be exact.
const xfrMsgBudget = 16000

// zoneBlock is one owner name's rendered RRset in the transferable zone:
// either a urwatch.<apex> domain block or a urbl.<apex> reversed-IP block.
type zoneBlock struct {
	sect int // 0 = urwatch domain subtree, 1 = urbl IP subtree
	dom  dns.Name
	addr netip.Addr
	name dns.Name
	rrs  []dns.RR
}

// blockCmp orders blocks in zone-render order: domain subtree first (record
// array order), then IP subtree (IP index order).
func blockCmp(a, b *zoneBlock) int {
	if a.sect != b.sect {
		return a.sect - b.sect
	}
	if a.sect == 0 {
		return strings.Compare(string(a.dom), string(b.dom))
	}
	return a.addr.Compare(b.addr)
}

// sameRRs reports whether two blocks render identical RRsets.
func sameRRs(a, b *zoneBlock) bool {
	if len(a.rrs) != len(b.rrs) {
		return false
	}
	for i := range a.rrs {
		if a.rrs[i].String() != b.rrs[i].String() {
			return false
		}
	}
	return true
}

// zoneCursor walks one generation's zone blocks in render order without
// materializing the zone: first the record array's domain runs, then the IP
// index's per-address runs (IPv6 corresponding addresses have no reversed-v4
// owner name and are skipped, exactly as the query path skips them).
type zoneCursor struct {
	z    *ZoneResponder
	g    *Generation
	ri   int
	ii   int
	inIP bool
}

// next returns the next block, or nil at end of zone.
func (c *zoneCursor) next() *zoneBlock {
	if !c.inIP {
		if c.ri < len(c.g.recs) {
			lo := c.ri
			d := c.g.domainOf(lo)
			hi := lo + 1
			for hi < len(c.g.recs) && c.g.domainOf(hi) == d {
				hi++
			}
			c.ri = hi
			name := DomainName(d, c.z.Apex)
			return &zoneBlock{
				sect: 0, dom: d, name: name,
				rrs: c.z.blockRRs(name, VerdictSet{g: c.g, lo: lo, hi: hi}),
			}
		}
		c.inIP = true
	}
	for c.ii < len(c.g.ipIdx) {
		lo := c.ii
		a := c.g.ipIdx[lo].addr
		hi := lo + 1
		for hi < len(c.g.ipIdx) && c.g.ipIdx[hi].addr == a {
			hi++
		}
		c.ii = hi
		name, ok := ReverseIPName(a, c.z.Apex)
		if !ok {
			continue
		}
		return &zoneBlock{
			sect: 1, addr: a, name: name,
			rrs: c.z.blockRRs(name, VerdictSet{g: c.g, lo: lo, hi: hi, byIP: true}),
		}
	}
	return nil
}

// blockRRs renders one owner name's RRset: the DNSBL A answer plus capped TXT
// evidence — the same records the query path serves, minus the per-response
// "gen=" header TXT, which is deliberately excluded so a name whose verdicts
// did not change renders identically across generations and drops out of
// IXFR deltas.
func (z *ZoneResponder) blockRRs(name dns.Name, vs VerdictSet) []dns.RR {
	n := vs.Len()
	if n > maxTXTEvidence {
		n = maxTXTEvidence + 1
	}
	rrs := make([]dns.RR, 0, 1+n)
	code := categoryCode(worstOf(vs))
	rrs = append(rrs, dns.MustParseRR(fmt.Sprintf("%s %d IN A 127.0.0.%d", name, z.ttl(), code)))
	for i := 0; i < vs.Len(); i++ {
		if i >= maxTXTEvidence {
			rrs = append(rrs, z.txt(name, fmt.Sprintf("and %d more", vs.Len()-maxTXTEvidence)))
			break
		}
		rrs = append(rrs, z.txt(name, evidenceString(vs.At(i))))
	}
	return rrs
}

// nsRR renders the zone's apex NS record.
func (z *ZoneResponder) nsRR() dns.RR {
	return dns.MustParseRR(fmt.Sprintf("%s %d IN NS ns.%s", z.Apex, z.ttl(), z.Apex))
}

// zoneDelta merge-diffs two generations' block streams into the RRs removed
// by old→new and the RRs added. Granularity is the owner-name block: a block
// whose rendering changed is deleted in full and re-added in full, which is
// valid IXFR and keeps the delta computation a single linear merge.
func (z *ZoneResponder) zoneDelta(old, next *Generation) (dels, adds []dns.RR) {
	co := &zoneCursor{z: z, g: old}
	cn := &zoneCursor{z: z, g: next}
	bo, bn := co.next(), cn.next()
	for bo != nil || bn != nil {
		switch {
		case bn == nil:
			dels = append(dels, bo.rrs...)
			bo = co.next()
		case bo == nil:
			adds = append(adds, bn.rrs...)
			bn = cn.next()
		default:
			switch c := blockCmp(bo, bn); {
			case c < 0:
				dels = append(dels, bo.rrs...)
				bo = co.next()
			case c > 0:
				adds = append(adds, bn.rrs...)
				bn = cn.next()
			default:
				if !sameRRs(bo, bn) {
					dels = append(dels, bo.rrs...)
					adds = append(adds, bn.rrs...)
				}
				bo, bn = co.next(), cn.next()
			}
		}
	}
	return dels, adds
}

// xfrWriter chunks a transfer's RR stream into DNS messages under the wire
// budget and sends each as it fills. Errors latch: after a failed send every
// further add is a no-op and close returns the error, so a broken connection
// aborts the stream instead of silently truncating the zone.
type xfrWriter struct {
	q    *dns.Message
	send func(*dns.Message) error
	cur  *dns.Message
	size int
	err  error
}

func newXfrWriter(q *dns.Message, send func(*dns.Message) error) *xfrWriter {
	return &xfrWriter{q: q, send: send}
}

// rrEstimate over-approximates one record's wire size (owner name + fixed
// header + presentation-length rdata, uncompressed).
func rrEstimate(rr dns.RR) int {
	return len(rr.Name) + 2 + 10 + len(rr.Data.String()) + 8
}

func (w *xfrWriter) begin() *dns.Message {
	r := w.q.Reply()
	r.Header.Authoritative = true
	return r
}

func (w *xfrWriter) add(rr dns.RR) {
	if w.err != nil {
		return
	}
	if w.cur == nil {
		w.cur = w.begin()
		w.size = 0
	}
	est := rrEstimate(rr)
	if len(w.cur.Answers) > 0 && w.size+est > xfrMsgBudget {
		w.flushMsg()
		if w.err != nil {
			return
		}
		w.cur = w.begin()
		w.size = 0
	}
	w.cur.Answers = append(w.cur.Answers, rr)
	w.size += est
}

func (w *xfrWriter) flushMsg() {
	if w.cur != nil && w.err == nil {
		w.err = w.send(w.cur)
	}
	w.cur = nil
}

func (w *xfrWriter) close() error {
	w.flushMsg()
	return w.err
}

// ixfrRequestSerial extracts the client's current serial from an IXFR
// request's authority SOA (RFC 1995 §3).
func ixfrRequestSerial(q *dns.Message) (uint32, bool) {
	for _, rr := range q.Authority {
		if soa, ok := rr.Data.(*dns.SOA); ok {
			return soa.Serial, true
		}
	}
	return 0, false
}

// HandleStream implements dnsio.StreamResponder: it owns AXFR and IXFR
// questions on the TCP path and declines everything else to the ordinary
// single-message handler. Both transfer types are gated by the transfer
// allowlist and the rate limiter; a denied client gets a single REFUSED
// message, never a partial zone.
func (z *ZoneResponder) HandleStream(src netip.Addr, q *dns.Message, send func(*dns.Message) error) (bool, error) {
	if q.Header.OpCode != dns.OpQuery || len(q.Questions) != 1 {
		return false, nil
	}
	qu := q.Questions[0]
	if qu.Type != dns.TypeAXFR && qu.Type != dns.TypeIXFR {
		return false, nil
	}
	refuse := func() error {
		r := q.Reply()
		r.Header.RCode = dns.RCodeRefused
		return send(r)
	}
	if qu.Name != z.Apex || (qu.Class != dns.ClassINET && qu.Class != dns.ClassANY) {
		return true, refuse()
	}
	if !z.XferACL.Contains(src) {
		z.Metrics.CountXfr(true)
		return true, refuse()
	}
	if !z.Limiter.Allow(src) {
		z.Metrics.CountXfr(true)
		return true, refuse()
	}
	z.Metrics.CountXfr(false)
	g := z.Store.Current()
	if qu.Type == dns.TypeAXFR {
		return true, z.streamFull(q, g, send)
	}
	serial, haveSerial := ixfrRequestSerial(q)
	cur := SerialForSeq(g.Seq)
	if haveSerial && serial == cur {
		// Up to date: a single current SOA (RFC 1995 §2).
		r := q.Reply()
		r.Header.Authoritative = true
		r.Answers = append(r.Answers, z.soa(g))
		return true, send(r)
	}
	if haveSerial && SerialLess(serial, cur) {
		if chain, ok := z.Store.ChainFromSerial(serial); ok && len(chain) >= 2 {
			return true, z.streamIncremental(q, chain, send)
		}
	}
	// Serial outside the retention window (or ahead of us after a primary
	// restart): RFC 1995 §4 fallback — answer with a full AXFR-style body.
	return true, z.streamFull(q, g, send)
}

// streamFull sends an AXFR-style body: SOA, apex NS, every zone block, SOA.
func (z *ZoneResponder) streamFull(q *dns.Message, g *Generation, send func(*dns.Message) error) error {
	w := newXfrWriter(q, send)
	soa := z.soa(g)
	w.add(soa)
	w.add(z.nsRR())
	c := &zoneCursor{z: z, g: g}
	for b := c.next(); b != nil; b = c.next() {
		for _, rr := range b.rrs {
			w.add(rr)
		}
	}
	w.add(soa)
	return w.close()
}

// streamIncremental sends an RFC 1995 incremental body over a retained
// generation chain: SOA(cur), then per step SOA(old) + deletions + SOA(new)
// + additions, then the trailing SOA(cur).
func (z *ZoneResponder) streamIncremental(q *dns.Message, chain []*Generation, send func(*dns.Message) error) error {
	w := newXfrWriter(q, send)
	head := z.soa(chain[len(chain)-1])
	w.add(head)
	for i := 0; i+1 < len(chain); i++ {
		old, next := chain[i], chain[i+1]
		dels, adds := z.zoneDelta(old, next)
		w.add(z.soa(old))
		for _, rr := range dels {
			w.add(rr)
		}
		w.add(z.soa(next))
		for _, rr := range adds {
			w.add(rr)
		}
	}
	w.add(head)
	return w.close()
}

// Mirror is a secondary's view of the feed zone, fed by transfer results.
// Tests and the smoke harness use it to prove the IXFR contract: a mirror
// that AXFRs once and then applies incremental deltas must reconstruct the
// same zone a fresh AXFR of the final generation produces.
type Mirror struct {
	serial  uint32
	hasZone bool
	soaLine string
	body    map[string]int
}

// NewMirror returns an empty secondary.
func NewMirror() *Mirror { return &Mirror{body: make(map[string]int)} }

// Serial returns the mirror's current zone serial.
func (m *Mirror) Serial() uint32 { return m.serial }

// HasZone reports whether the mirror holds a zone at all.
func (m *Mirror) HasZone() bool { return m.hasZone }

func rrSOA(rr dns.RR) *dns.SOA {
	soa, _ := rr.Data.(*dns.SOA)
	return soa
}

// Apply folds one transfer result into the mirror: a full body replaces the
// zone, an incremental body applies delta steps, a single-SOA body is the
// up-to-date no-op. A non-applicable result (REFUSED, or a delta that does
// not chain from the mirror's serial) returns an error and leaves the mirror
// unchanged; the caller's recovery is a fresh AXFR.
func (m *Mirror) Apply(res *dnsio.XfrResult) error {
	recs, rcode := res.Records, res.RCode
	if rcode != dns.RCodeSuccess {
		return fmt.Errorf("urwatch: transfer refused (rcode %s)", rcode)
	}
	if len(recs) == 0 {
		return fmt.Errorf("urwatch: empty transfer result")
	}
	if len(recs) == 1 {
		soa := rrSOA(recs[0])
		if soa == nil {
			return fmt.Errorf("urwatch: single-record transfer is not a SOA")
		}
		if m.hasZone && soa.Serial != m.serial {
			return fmt.Errorf("urwatch: up-to-date reply serial %d != mirror serial %d", soa.Serial, m.serial)
		}
		return nil
	}
	if second := rrSOA(recs[1]); second != nil && len(recs) >= 3 {
		return m.applyIncremental(recs)
	}
	return m.applyFull(recs)
}

// applyFull replaces the zone with an AXFR-style body.
func (m *Mirror) applyFull(recs []dns.RR) error {
	first, last := rrSOA(recs[0]), rrSOA(recs[len(recs)-1])
	if first == nil || last == nil || first.Serial != last.Serial {
		return fmt.Errorf("urwatch: full transfer not SOA-framed")
	}
	body := make(map[string]int, len(recs))
	for _, rr := range recs[1 : len(recs)-1] {
		body[rr.String()]++
	}
	m.serial = first.Serial
	m.soaLine = recs[0].String()
	m.body = body
	m.hasZone = true
	return nil
}

// applyIncremental applies an RFC 1995 delta body: SOA(target), then per
// step SOA(old) + deletions + SOA(new) + additions, then SOA(target).
func (m *Mirror) applyIncremental(recs []dns.RR) error {
	if !m.hasZone {
		return fmt.Errorf("urwatch: incremental transfer into empty mirror")
	}
	target := rrSOA(recs[0])
	if target == nil {
		return fmt.Errorf("urwatch: incremental body does not open with SOA")
	}
	// Stage the changes so a mid-body error leaves the mirror untouched.
	body := make(map[string]int, len(m.body))
	for k, v := range m.body {
		body[k] = v
	}
	cur := m.serial
	i := 1
	for i < len(recs) {
		soa := rrSOA(recs[i])
		if soa == nil {
			return fmt.Errorf("urwatch: delta step at record %d does not open with SOA", i)
		}
		if i == len(recs)-1 {
			if soa.Serial != target.Serial {
				return fmt.Errorf("urwatch: trailing SOA serial %d != target %d", soa.Serial, target.Serial)
			}
			break
		}
		if soa.Serial != cur {
			return fmt.Errorf("urwatch: delta chain breaks: step opens at serial %d, mirror at %d", soa.Serial, cur)
		}
		i++
		for i < len(recs) && rrSOA(recs[i]) == nil {
			line := recs[i].String()
			if body[line] == 0 {
				return fmt.Errorf("urwatch: delta deletes absent record %q", line)
			}
			body[line]--
			if body[line] == 0 {
				delete(body, line)
			}
			i++
		}
		if i >= len(recs) {
			return fmt.Errorf("urwatch: delta step truncated before new-SOA marker")
		}
		newSOA := rrSOA(recs[i])
		cur = newSOA.Serial
		m.soaLine = recs[i].String()
		i++
		for i < len(recs) && rrSOA(recs[i]) == nil {
			body[recs[i].String()]++
			i++
		}
	}
	if cur != target.Serial {
		return fmt.Errorf("urwatch: delta chain ends at serial %d, target %d", cur, target.Serial)
	}
	m.serial = cur
	m.soaLine = recs[0].String()
	m.body = body
	return nil
}

// ZoneText renders the mirror's zone in canonical text form: the SOA line,
// then every body record sorted lexically. Two mirrors holding the same zone
// render byte-identical text regardless of how they got there — the equality
// oracle for the AXFR-then-IXFR reconstruction contract.
func (m *Mirror) ZoneText() string {
	lines := make([]string, 0, len(m.body))
	for line, n := range m.body {
		for k := 0; k < n; k++ {
			lines = append(lines, line)
		}
	}
	sort.Strings(lines)
	var b strings.Builder
	b.WriteString(m.soaLine)
	b.WriteByte('\n')
	for _, line := range lines {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}
