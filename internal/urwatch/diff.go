package urwatch

import (
	"sort"
	"sync"

	"repro/internal/core"
)

// EventKind names one verdict-feed change.
type EventKind string

// Event kinds.
const (
	// EventAppeared: a UR identity present in generation N+1 but not N.
	EventAppeared EventKind = "ur_appeared"
	// EventRemoved: a UR identity present in generation N but not N+1.
	EventRemoved EventKind = "ur_removed"
	// EventReclassified: same identity, different category (e.g. a suspicious
	// record gaining threat-intel evidence between sweeps).
	EventReclassified EventKind = "class_changed"
)

// Event is one append-only feed change. Seq is assigned by the EventLog at
// append time; the differ leaves it zero.
type Event struct {
	Seq  uint64    `json:"seq"`
	Gen  uint64    `json:"generation"`
	Kind EventKind `json:"kind"`

	Key      string `json:"key"`
	Domain   string `json:"domain"`
	Type     string `json:"type"`
	RData    string `json:"rdata"`
	Server   string `json:"server"`
	Provider string `json:"provider"`

	// Old and New are the categories before/after. Appeared events carry only
	// New; removed events only Old.
	Old string `json:"old,omitempty"`
	New string `json:"new,omitempty"`
}

// ProviderDelta aggregates one provider's changes across a generation swap.
type ProviderDelta struct {
	Appeared     int `json:"appeared"`
	Removed      int `json:"removed"`
	Reclassified int `json:"reclassified"`
}

// GenDiff is the complete delta between two consecutive generations.
type GenDiff struct {
	FromSeq    uint64                   `json:"from_seq"`
	ToSeq      uint64                   `json:"to_seq"`
	Events     []Event                  `json:"events"`
	ByProvider map[string]ProviderDelta `json:"by_provider"`
}

// compareIdentity orders two records from (possibly different) generations
// by the record arrays' (domain, server, type, rdata) sort tuple. String
// fields resolve through each generation's own table — identical strings in
// different tables compare equal by content.
func compareIdentity(pg *Generation, pi int, ng *Generation, ni int) int {
	a, b := &pg.recs[pi], &ng.recs[ni]
	if da, db := pg.str(a.domain), ng.str(b.domain); da != db {
		if da < db {
			return -1
		}
		return 1
	}
	if cmp := a.server.Compare(b.server); cmp != 0 {
		return cmp
	}
	if a.typ != b.typ {
		if a.typ < b.typ {
			return -1
		}
		return 1
	}
	if ra, rb := pg.str(a.rdata), ng.str(b.rdata); ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	return 0
}

// Diff computes the from-scratch delta between two generations. Both record
// arrays are sorted by the same identity tuple, so the walk is a single
// merge over the two sorted runs — no maps, no per-shard pairing, O(p+n)
// with two moving cursors. Events come out in canonical key order (the final
// sort below, unchanged from the map era), so the diff of the same two
// generations is always byte-identical — the property the event log's
// consumers (and the acceptance test) rely on.
func Diff(prev, next *Generation) *GenDiff {
	d := &GenDiff{ByProvider: make(map[string]ProviderDelta)}
	var pn, nn int
	if prev != nil {
		d.FromSeq = prev.Seq
		pn = len(prev.recs)
	}
	if next != nil {
		d.ToSeq = next.Seq
		nn = len(next.recs)
	}
	pi, ni := 0, 0
	for pi < pn || ni < nn {
		var cmp int
		switch {
		case pi >= pn:
			cmp = 1
		case ni >= nn:
			cmp = -1
		default:
			cmp = compareIdentity(prev, pi, next, ni)
		}
		switch {
		case cmp < 0:
			pv := VerdictView{g: prev, i: pi}
			d.add(eventFor(EventRemoved, pv, pv.Category().String(), ""))
			pi++
		case cmp > 0:
			nv := VerdictView{g: next, i: ni}
			d.add(eventFor(EventAppeared, nv, "", nv.Category().String()))
			ni++
		default:
			pv := VerdictView{g: prev, i: pi}
			nv := VerdictView{g: next, i: ni}
			if pv.Category() != nv.Category() {
				d.add(eventFor(EventReclassified, nv, pv.Category().String(), nv.Category().String()))
			}
			pi++
			ni++
		}
	}
	sort.Slice(d.Events, func(i, j int) bool {
		a, b := d.Events[i], d.Events[j]
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Kind < b.Kind
	})
	for i := range d.Events {
		d.Events[i].Gen = d.ToSeq
	}
	return d
}

func eventFor(kind EventKind, v VerdictView, old, new_ string) Event {
	return Event{
		Kind:     kind,
		Key:      v.Key(),
		Domain:   string(v.Domain()),
		Type:     v.Type().String(),
		RData:    v.RData(),
		Server:   v.Server().String(),
		Provider: v.Provider(),
		Old:      old,
		New:      new_,
	}
}

func (d *GenDiff) add(e Event) {
	d.Events = append(d.Events, e)
	pd := d.ByProvider[e.Provider]
	switch e.Kind {
	case EventAppeared:
		pd.Appeared++
	case EventRemoved:
		pd.Removed++
	case EventReclassified:
		pd.Reclassified++
	}
	d.ByProvider[e.Provider] = pd
}

// Same reports whether two diffs describe the same changes (sequence stamps
// excluded — the log assigns those at append time).
func (d *GenDiff) Same(o *GenDiff) bool {
	if len(d.Events) != len(o.Events) {
		return false
	}
	for i := range d.Events {
		a, b := d.Events[i], o.Events[i]
		a.Seq, b.Seq = 0, 0
		if a != b {
			return false
		}
	}
	return true
}

// EventLog is the append-only history of feed changes. Appends stamp each
// event with a global monotonically increasing sequence number; Since serves
// the tail for pollers. The log also retains per-generation provider deltas.
type EventLog struct {
	mu      sync.RWMutex
	events  []Event
	nextSeq uint64
	deltas  []GenDiff // events elided; summaries only
	// cap bounds retained events; older entries are dropped from the head
	// (pollers that fell behind resync from a full generation instead).
	cap int
}

// DefaultEventLogCap bounds the retained event tail.
const DefaultEventLogCap = 65536

// NewEventLog creates an empty log.
func NewEventLog() *EventLog {
	return &EventLog{nextSeq: 1, cap: DefaultEventLogCap}
}

// Append stamps and retains a diff's events.
func (l *EventLog) Append(d *GenDiff) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range d.Events {
		d.Events[i].Seq = l.nextSeq
		l.nextSeq++
	}
	l.events = append(l.events, d.Events...)
	if over := len(l.events) - l.cap; over > 0 {
		l.events = append([]Event(nil), l.events[over:]...)
	}
	l.deltas = append(l.deltas, GenDiff{
		FromSeq: d.FromSeq, ToSeq: d.ToSeq, ByProvider: d.ByProvider,
	})
}

// Since returns up to max events with Seq > after, oldest first. max <= 0
// means no limit. truncated reports whether older matching events were
// already evicted (the caller should resync from the current generation).
func (l *EventLog) Since(after uint64, max int) (events []Event, truncated bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.events) > 0 && l.events[0].Seq > after+1 {
		truncated = true
	}
	i := sort.Search(len(l.events), func(i int) bool { return l.events[i].Seq > after })
	tail := l.events[i:]
	if max > 0 && len(tail) > max {
		tail = tail[:max]
	}
	return append([]Event(nil), tail...), truncated
}

// Len returns the retained event count.
func (l *EventLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.events)
}

// LastSeq returns the highest assigned sequence number (0 if none).
func (l *EventLog) LastSeq() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.nextSeq - 1
}

// Deltas returns the per-generation provider-delta summaries, oldest first.
func (l *EventLog) Deltas() []GenDiff {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]GenDiff(nil), l.deltas...)
}

// worstOf is a convenience for front-ends: the worst category over a set,
// defaulting to correct when empty.
func worstOf(vs VerdictSet) core.Category {
	c, _ := WorstCategory(vs)
	return c
}
