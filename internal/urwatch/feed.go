package urwatch

import (
	"net/netip"

	"repro/internal/core"
	"repro/internal/dns"
)

// Feed adapts a verdict store to the defense package's URFeed interface
// (structurally — urwatch does not import defense). A defender wiring the
// live feed into its firewall asks two questions: "is this (domain, server)
// pair a known UR serving point?" and "is this destination IP a known UR
// rdata?" Both answer from one generation dereference.
type Feed struct {
	Store *Store
}

// FlowListed reports whether the feed lists URs for domain hosted at server,
// and the worst category among them. This is the signal the baseline
// defenses lack: the flow "query benign-looking domain at provider server"
// is exactly the UR C2 channel's shape.
func (f *Feed) FlowListed(domain dns.Name, server netip.Addr) (core.Category, bool) {
	g := f.Store.Current()
	vs := g.Domain(domain)
	worst, found := core.CategoryCorrect, false
	for i := 0; i < vs.Len(); i++ {
		v := vs.At(i)
		if v.Server() != server {
			continue
		}
		if c := v.Category(); !found || categoryRank(c) > categoryRank(worst) {
			worst = c
		}
		found = true
	}
	if !found {
		return core.CategoryUnknown, false
	}
	return worst, true
}

// IPListed reports whether dst appears among the corresponding IPs of any
// listed UR, and the worst category among those URs.
func (f *Feed) IPListed(dst netip.Addr) (core.Category, bool) {
	g := f.Store.Current()
	vs := g.IP(dst)
	if vs.Len() == 0 {
		return core.CategoryUnknown, false
	}
	return worstOf(vs), true
}
