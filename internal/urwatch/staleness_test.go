package urwatch

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"net/netip"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dns"
)

// movableClock is a hand-driven Clock for deterministic staleness tests.
type movableClock struct{ now atomic.Pointer[time.Time] }

func newMovableClock(start time.Time) *movableClock {
	c := &movableClock{}
	c.now.Store(&start)
	return c
}

func (c *movableClock) Now() time.Time { return *c.now.Load() }

func (c *movableClock) Advance(d time.Duration) {
	t := c.Now().Add(d)
	c.now.Store(&t)
}

// TestStaleOnErrorHealthMachine drives the watcher through a sweep-failure
// storm and asserts the three-state machine: ok while fresh, degraded after
// the configured failure streak, stale once the served generation's age
// crosses the bound — and that the previous generation keeps serving
// throughout (stale-on-error), with full recovery on the next success.
func TestStaleOnErrorHealthMachine(t *testing.T) {
	clk := newMovableClock(time.Unix(1_700_000_000, 0))
	var failMode atomic.Bool
	stormErr := errors.New("resolver storm")
	var observed []int
	w := NewWatcher(WatcherConfig{
		Sweep: func(ctx context.Context) (*core.Result, error) {
			if failMode.Load() {
				return nil, stormErr
			}
			return &core.Result{}, nil
		},
		Interval: time.Minute,
		Clock:    clk.Now,
		Staleness: &StalenessPolicy{
			MaxStaleness:  10 * time.Minute,
			DegradedAfter: 2,
		},
		OnSweepError: func(err error, consecutive int) {
			if !errors.Is(err, stormErr) {
				t.Errorf("OnSweepError got %v, want the storm error", err)
			}
			observed = append(observed, consecutive)
		},
	})

	if _, err := w.SweepOnce(context.Background()); err != nil {
		t.Fatalf("initial sweep: %v", err)
	}
	if h := w.Health(); h.Status != "ok" || h.Generation != 1 {
		t.Fatalf("after first sweep: status=%s gen=%d, want ok gen=1", h.Status, h.Generation)
	}

	failMode.Store(true)
	if _, err := w.SweepOnce(context.Background()); err == nil {
		t.Fatal("sweep should have failed")
	}
	if h := w.Health(); h.Status != "ok" || h.ConsecutiveFailures != 1 {
		t.Fatalf("after 1 failure: status=%s failures=%d, want ok/1 (DegradedAfter=2)",
			h.Status, h.ConsecutiveFailures)
	}
	_, _ = w.SweepOnce(context.Background())
	h := w.Health()
	if h.Status != "degraded" || h.ConsecutiveFailures != 2 {
		t.Fatalf("after 2 failures: status=%s failures=%d, want degraded/2", h.Status, h.ConsecutiveFailures)
	}
	if h.Generation != 1 {
		t.Fatalf("degraded store serves generation %d, want the last published 1", h.Generation)
	}
	if h.LastError == "" || !strings.Contains(h.LastError, "resolver storm") {
		t.Fatalf("health last_error = %q, want the sweep error", h.LastError)
	}

	// Age past the bound: degraded hardens to stale even with no new errors.
	clk.Advance(10 * time.Minute)
	if h := w.Health(); h.Status != "stale" {
		t.Fatalf("after aging past MaxStaleness: status=%s, want stale", h.Status)
	}
	// Stale-on-error: the store still answers from generation 1.
	if g := w.Store().Current(); g.Seq != 1 {
		t.Fatalf("stale store swapped generations: seq=%d", g.Seq)
	}

	failMode.Store(false)
	if _, err := w.SweepOnce(context.Background()); err != nil {
		t.Fatalf("recovery sweep: %v", err)
	}
	if h := w.Health(); h.Status != "ok" || h.Generation != 2 || h.ConsecutiveFailures != 0 {
		t.Fatalf("after recovery: status=%s gen=%d failures=%d, want ok/2/0",
			h.Status, h.Generation, h.ConsecutiveFailures)
	}
	if want := []int{1, 2}; len(observed) != 2 || observed[0] != want[0] || observed[1] != want[1] {
		t.Fatalf("OnSweepError consecutive counts = %v, want %v", observed, want)
	}
}

// TestStalenessUnsweptGeneration: a store under a staleness bound that still
// serves the never-swept initial generation is stale by definition.
func TestStalenessUnsweptGeneration(t *testing.T) {
	s := NewStore()
	s.SetPolicy(StalenessPolicy{MaxStaleness: time.Minute})
	if st := s.Staleness(time.Unix(1_700_000_000, 0)); st.State != StateStale {
		t.Fatalf("unswept store state = %s, want stale", st.State)
	}
}

// TestSerialArithmetic covers the RFC 1982 comparisons across the uint32
// wrap, where plain < inverts.
func TestSerialArithmetic(t *testing.T) {
	cases := []struct {
		a, b uint32
		less bool
	}{
		{1, 2, true},
		{2, 1, false},
		{5, 5, false},
		{0xFFFFFFFF, 0, true},          // wrap: max serial precedes zero
		{0, 0xFFFFFFFF, false},         // and not vice versa
		{0xFFFFFFF0, 5, true},          // small forward step across the wrap
		{5, 0xFFFFFFF0, false},         //
		{0, 1 << 31, false},       // exactly 2^31 apart: incomparable, not less
		{(1 << 31) + 1, 1, false}, // the mirror case, also exactly 2^31 apart
		{(1 << 31) + 2, 1, true},  // just under 2^31 forward across the wrap
	}
	for _, c := range cases {
		if got := SerialLess(c.a, c.b); got != c.less {
			t.Errorf("SerialLess(%#x, %#x) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	if SerialForSeq(1<<32|7) != 7 {
		t.Error("SerialForSeq must truncate onto the 32-bit serial space")
	}
}

// soaFromReply digs the SOA out of a reply's answers.
func soaFromReply(t *testing.T, m *dns.Message) *dns.SOA {
	t.Helper()
	if len(m.Answers) != 1 {
		t.Fatalf("want 1 SOA answer, got %d", len(m.Answers))
	}
	soa, ok := m.Answers[0].Data.(*dns.SOA)
	if !ok {
		t.Fatalf("answer is %T, want SOA", m.Answers[0].Data)
	}
	return soa
}

// TestSOATimersFollowStaleness: with a policy installed, refresh tracks the
// sweep interval, retry is half of it, and expire is the remaining staleness
// budget — counting down as the generation ages, floored at retry.
func TestSOATimersFollowStaleness(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	clk := newMovableClock(base)
	s := NewStore()
	s.SetPolicy(StalenessPolicy{
		SweepInterval: 60 * time.Second,
		MaxStaleness:  600 * time.Second,
		Clock:         clk.Now,
	})
	g := NewBuilder().Seal(7, base)
	s.Publish(g)
	z := newTestResponder(s)

	askSOA := func() *dns.SOA {
		t.Helper()
		return soaFromReply(t, ask(z, testApex, dns.TypeSOA))
	}
	soa := askSOA()
	if soa.Serial != 7 {
		t.Fatalf("serial = %d, want the generation seq 7", soa.Serial)
	}
	if soa.Refresh != 60 || soa.Retry != 30 {
		t.Fatalf("refresh/retry = %d/%d, want 60/30 (sweep interval and half)", soa.Refresh, soa.Retry)
	}
	if soa.Expire != 600 {
		t.Fatalf("fresh generation expire = %d, want the full budget 600", soa.Expire)
	}

	clk.Advance(250 * time.Second)
	if soa := askSOA(); soa.Expire != 350 {
		t.Fatalf("expire after 250s = %d, want the remaining 350 (not cached)", soa.Expire)
	}

	clk.Advance(349 * time.Second) // age 599s: remaining 1s < retry → floor
	if soa := askSOA(); soa.Expire != 30 {
		t.Fatalf("expire near the bound = %d, want the retry floor 30", soa.Expire)
	}

	clk.Advance(time.Hour) // long past stale: still floored, never zero
	if soa := askSOA(); soa.Expire != 30 {
		t.Fatalf("expire past the bound = %d, want the retry floor 30", soa.Expire)
	}
}

// TestSOATimersLegacyWithoutPolicy pins the pre-policy wire format: stores
// with no staleness policy keep the historical static timers byte-for-byte.
func TestSOATimersLegacyWithoutPolicy(t *testing.T) {
	z := newTestResponder(testStore(t))
	soa := soaFromReply(t, ask(z, testApex, dns.TypeSOA))
	if soa.Refresh != 60 || soa.Retry != 30 || soa.Expire != 600 {
		t.Fatalf("legacy timers = %d/%d/%d, want 60/30/600", soa.Refresh, soa.Retry, soa.Expire)
	}
	if soa.Serial != 1 {
		t.Fatalf("legacy serial = %d, want generation seq 1", soa.Serial)
	}
}

// TestHTTPStalenessHeaders: every API response — including rate-limited and
// error responses — carries the X-URWatch-Staleness / X-URWatch-Health pair.
func TestHTTPStalenessHeaders(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	clk := newMovableClock(base)
	s := testStore(t)
	s.SetPolicy(StalenessPolicy{MaxStaleness: time.Minute, Clock: clk.Now})
	// testStore publishes a generation sealed at time.Unix(1, 0) — ancient
	// relative to the clock — so the store reads stale.
	api := &API{Store: s}
	h := api.Handler()

	for _, path := range []string{"/v1/providers", "/v1/lookup", "/metrics"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		hv := rec.Header().Get("X-URWatch-Staleness")
		if hv == "" {
			t.Fatalf("%s: missing X-URWatch-Staleness header", path)
		}
		if !strings.Contains(hv, "state=stale") || !strings.Contains(hv, "gen=1") {
			t.Fatalf("%s: staleness header = %q, want state=stale gen=1", path, hv)
		}
		if got := rec.Header().Get("X-URWatch-Health"); got != "stale" {
			t.Fatalf("%s: X-URWatch-Health = %q, want stale", path, got)
		}
	}
}

// TestMetricsEndpoint scrapes /metrics after driving both front-ends and
// checks the exposition carries the serving counters, staleness gauges, and
// latency summaries.
func TestMetricsEndpoint(t *testing.T) {
	s := testStore(t)
	m := NewMetrics()
	z := newTestResponder(s)
	z.Metrics = m

	// Three urwatch queries (one NXDOMAIN), one urbl, one refused (outside
	// the apex is refused before zone classification — use a urbl miss too).
	ask(z, DomainName("evil.test", testApex), dns.TypeA)
	ask(z, DomainName("evil.test", testApex), dns.TypeTXT)
	ask(z, DomainName("absent.test", testApex), dns.TypeA)
	ask(z, "7.100.51.198.urbl."+testApex, dns.TypeA)

	api := &API{Store: s, Metrics: m}
	rec := httptest.NewRecorder()
	api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()

	for _, want := range []string{
		`urwatch_dns_queries_total{zone="urwatch"} 3`,
		`urwatch_dns_queries_total{zone="urbl"} 1`,
		`urwatch_dns_nxdomain_total{zone="urwatch"} 1`,
		`urwatch_generation_seq 1`,
		`urwatch_health_state 0`,
		fmt.Sprintf("urwatch_verdicts %d", s.Current().Total()),
		`urwatch_dns_latency_seconds_count 4`,
		`urwatch_cache_hit_ratio`,
		`urwatch_xfr_total{outcome="served"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\nbody:\n%s", want, body)
		}
	}
}

// TestZoneACLGatesQueries: with a zone ACL installed, non-matching sources
// get REFUSED, matching and transfer-allowlisted sources are admitted.
func TestZoneACLGatesQueries(t *testing.T) {
	z := newTestResponder(testStore(t))
	z.ZoneACL = MustParseACL("10.0.0.0/8")
	z.XferACL = MustParseACL("192.0.2.53")

	q := dns.NewQuery(1, DomainName("evil.test", testApex), dns.TypeA)
	if r := z.HandleQuery(netip.MustParseAddr("10.1.2.3"), q); r.Header.RCode != dns.RCodeSuccess {
		t.Fatalf("zone-allowlisted client: rcode %s, want NOERROR", r.Header.RCode)
	}
	if r := z.HandleQuery(netip.MustParseAddr("203.0.113.50"), q); r.Header.RCode != dns.RCodeRefused {
		t.Fatalf("non-allowlisted client: rcode %s, want REFUSED", r.Header.RCode)
	}
	// A transfer-allowlisted mirror must be able to poll the SOA.
	if r := z.HandleQuery(netip.MustParseAddr("192.0.2.53"), q); r.Header.RCode != dns.RCodeSuccess {
		t.Fatalf("xfr-allowlisted client: rcode %s, want NOERROR", r.Header.RCode)
	}
}

// TestRestartWhileDegraded is the cold-start robustness walkthrough: a
// daemon that dies and restarts long after its last successful sweep comes
// back up serving the restored snapshot in the stale state — answers flow
// immediately, /v1/health says so — and the first successful sweep returns
// it to ok.
func TestRestartWhileDegraded(t *testing.T) {
	dir := t.TempDir()
	clk := newMovableClock(time.Unix(1_700_000_000, 0))
	res := coldStartResult(coldStartUR("evil.test", "203.0.113.10", core.CategoryMalicious))
	policy := &StalenessPolicy{
		SweepInterval: time.Minute,
		MaxStaleness:  5 * time.Minute,
		DegradedAfter: 2,
	}

	// First life: one good sweep, persisted by the -snapshot-dir hook.
	w1 := NewWatcher(WatcherConfig{
		Sweep:     func(ctx context.Context) (*core.Result, error) { return res, nil },
		Clock:     clk.Now,
		Staleness: policy,
		OnGeneration: func(g *Generation, d *GenDiff) {
			if _, err := SaveGeneration(dir, g); err != nil {
				t.Errorf("snapshot: %v", err)
			}
		},
	})
	if _, err := w1.SweepOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Downtime: the process is gone for four times the staleness budget.
	clk.Advance(20 * time.Minute)

	// Second life: restore before any sweep has a chance to run.
	w2 := NewWatcher(WatcherConfig{
		Sweep:     func(ctx context.Context) (*core.Result, error) { return res, nil },
		Clock:     clk.Now,
		Staleness: policy,
	})
	restored, _, err := LoadLatestSnapshot(dir)
	if err != nil || restored == nil {
		t.Fatalf("restore: %v", err)
	}
	w2.Store().Restore(restored)

	st := w2.Store().Staleness(clk.Now())
	if st.State != StateStale || st.Generation != 1 {
		t.Fatalf("cold start = %s at generation %d, want stale at 1", st.State, st.Generation)
	}
	if h := w2.Health(); h.Status != "stale" || h.Generation != 1 {
		t.Fatalf("health = %q gen %d, want stale gen 1", h.Status, h.Generation)
	}

	// Stale, but serving: the restored data answers immediately.
	z := &ZoneResponder{Apex: testApex, Store: w2.Store()}
	r := z.HandleQuery(netip.MustParseAddr("10.0.0.1"),
		dns.NewQuery(1, DomainName("evil.test", testApex), dns.TypeA))
	if r.Header.RCode != dns.RCodeSuccess || len(r.Answers) == 0 {
		t.Fatalf("stale store answered rcode %s with %d answers, want NOERROR with data",
			r.Header.RCode, len(r.Answers))
	}

	// The first successful sweep recovers the daemon to ok on generation 2.
	if _, err := w2.SweepOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = w2.Store().Staleness(clk.Now())
	if st.State != StateOK || st.Generation != 2 || st.ConsecutiveFailures != 0 {
		t.Fatalf("after recovery sweep: %s gen %d failures %d, want ok gen 2 failures 0",
			st.State, st.Generation, st.ConsecutiveFailures)
	}
}
