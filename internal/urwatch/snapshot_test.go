package urwatch

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dns"
)

// snapTestGen seals a generation with every field populated: multi-domain
// verdicts, IPv6, shared IPs, provider spread, sweep books.
func snapTestGen(t testing.TB, seq uint64) *Generation {
	grid := parityGrid()
	b := NewBuilder()
	for _, v := range grid[2] { // base + the multi-IP extra
		b.Add(v)
	}
	g := b.Seal(seq, time.Unix(1700000000+int64(seq), 123456789))
	g.Queries = 9876
	g.Coverage = &core.Coverage{
		Attempted: 120, Answered: 118, RetriedRecovered: 3, BreakerTrips: 1,
		FailedByClass: map[string]int64{"timeout": 2},
	}
	return g
}

// sameGeneration compares two generations field by field, resolving string
// references so different tables with identical content compare equal.
func sameGeneration(t *testing.T, a, b *Generation) {
	t.Helper()
	if a.Seq != b.Seq || !a.SweptAt.Equal(b.SweptAt) || a.Queries != b.Queries {
		t.Fatalf("header mismatch: (%d %v %d) vs (%d %v %d)",
			a.Seq, a.SweptAt, a.Queries, b.Seq, b.SweptAt, b.Queries)
	}
	if a.counts != b.counts {
		t.Fatalf("counts %v vs %v", a.counts, b.counts)
	}
	if a.Total() != b.Total() {
		t.Fatalf("totals %d vs %d", a.Total(), b.Total())
	}
	for i := 0; i < a.Total(); i++ {
		av, bv := (VerdictView{g: a, i: i}).Verdict(), (VerdictView{g: b, i: i}).Verdict()
		if !reflect.DeepEqual(av, bv) {
			t.Fatalf("verdict %d: %+v vs %+v", i, av, bv)
		}
	}
	if !reflect.DeepEqual(a.ipIdx, b.ipIdx) && (len(a.ipIdx) > 0 || len(b.ipIdx) > 0) {
		// addr+ordinal rows carry no string refs, so direct comparison holds.
		t.Fatalf("ipIdx mismatch")
	}
	if !reflect.DeepEqual(a.provs, b.provs) && (len(a.provs) > 0 || len(b.provs) > 0) {
		t.Fatalf("providers %v vs %v", a.provs, b.provs)
	}
	if (a.Coverage == nil) != (b.Coverage == nil) {
		t.Fatalf("coverage nilness differs")
	}
	if a.Coverage != nil && !reflect.DeepEqual(a.Coverage, b.Coverage) {
		t.Fatalf("coverage %+v vs %+v", a.Coverage, b.Coverage)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Generation
	}{
		{"empty", NewBuilder().Seal(0, time.Time{})},
		{"rich", snapTestGen(t, 7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data, err := EncodeSnapshot(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeSnapshot(data)
			if err != nil {
				t.Fatal(err)
			}
			sameGeneration(t, tc.g, got)

			// Round-tripped generations must serve byte-identical answers.
			origStore, loadStore := NewStore(), NewStore()
			origStore.Restore(tc.g)
			loadStore.Restore(got)
			oh := httptest.NewServer((&API{Store: origStore}).Handler())
			lh := httptest.NewServer((&API{Store: loadStore}).Handler())
			defer oh.Close()
			defer lh.Close()
			for _, q := range []string{
				"/v1/lookup?domain=alpha.test", "/v1/lookup?domain=delta.test",
				"/v1/lookup?ip=198.51.100.10", "/v1/providers", "/v1/coverage",
			} {
				ob, lb := httpGet(t, oh.URL+q), httpGet(t, lh.URL+q)
				if !bytes.Equal(ob, lb) {
					t.Errorf("%s differs after round trip:\n orig: %s\n load: %s", q, ob, lb)
				}
			}
			const apex = dns.Name("feed.test")
			ozr := &ZoneResponder{Apex: apex, Store: origStore}
			lzr := &ZoneResponder{Apex: apex, Store: loadStore}
			src := netip.MustParseAddr("10.0.0.1")
			for i, q := range []dns.Question{
				{Name: DomainName("alpha.test", apex), Type: dns.TypeTXT, Class: dns.ClassINET},
				{Name: "10.100.51.198.urbl." + apex, Type: dns.TypeA, Class: dns.ClassINET},
				{Name: "gen." + apex, Type: dns.TypeTXT, Class: dns.ClassINET},
				{Name: apex, Type: dns.TypeSOA, Class: dns.ClassINET},
			} {
				msg := dns.NewQuery(uint16(i), q.Name, q.Type)
				op, err1 := ozr.HandleQuery(src, msg).Pack()
				lp, err2 := lzr.HandleQuery(src, msg).Pack()
				if err1 != nil || err2 != nil {
					t.Fatalf("pack: %v %v", err1, err2)
				}
				if !bytes.Equal(op, lp) {
					t.Errorf("DNS %s %s differs after round trip", q.Name, q.Type)
				}
			}
		})
	}
}

// TestSnapshotEveryByteFlip corrupts each byte of a valid snapshot in turn;
// every mutation must be detected (magic, CRC, or framing), never decoded.
func TestSnapshotEveryByteFlip(t *testing.T) {
	data, err := EncodeSnapshot(snapTestGen(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("byte %d of %d: flip decoded successfully", i, len(data))
		} else if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("byte %d: error %v does not wrap ErrSnapshotCorrupt", i, err)
		}
	}
}

// TestSnapshotEveryTruncation chops a valid snapshot at every length; torn
// tails must always error — the crash-mid-write guarantee.
func TestSnapshotEveryTruncation(t *testing.T) {
	data, err := EncodeSnapshot(snapTestGen(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := DecodeSnapshot(data[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(data))
		}
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), data...), 0x00)); err == nil {
		t.Fatal("trailing garbage decoded successfully")
	}
}

// TestSnapshotRejectsBrokenInvariants re-encodes generations whose arrays
// violate flat-store invariants; the CRCs are valid, so only the semantic
// validation can catch them.
func TestSnapshotRejectsBrokenInvariants(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(g *Generation)
	}{
		{"unsorted records", func(g *Generation) {
			g.recs[0], g.recs[1] = g.recs[1], g.recs[0]
		}},
		{"duplicate records", func(g *Generation) {
			g.recs[1] = g.recs[0]
		}},
		{"string ref out of range", func(g *Generation) {
			g.recs[0].rdata = uint32(len(g.strs) + 5)
		}},
		{"ip span out of range", func(g *Generation) {
			g.recs[0].ipOff = uint32(len(g.ipTab))
			g.recs[0].ipLen = 2
		}},
		{"bad category", func(g *Generation) {
			g.recs[0].category = 9
		}},
		{"bad flags", func(g *Generation) {
			g.recs[0].flags = 0x80
		}},
		{"counts disagree", func(g *Generation) {
			g.counts[0]++
			g.counts[1]--
		}},
		{"ip index unsorted", func(g *Generation) {
			g.ipIdx[0], g.ipIdx[len(g.ipIdx)-1] = g.ipIdx[len(g.ipIdx)-1], g.ipIdx[0]
		}},
		{"ip index rec out of range", func(g *Generation) {
			g.ipIdx[0].rec = uint32(len(g.recs) + 1)
		}},
		{"provider totals disagree", func(g *Generation) {
			g.provs[0].Total += 3
		}},
		{"providers unsorted", func(g *Generation) {
			g.provs[0], g.provs[1] = g.provs[1], g.provs[0]
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := snapTestGen(t, 4)
			tc.mut(g)
			data, err := EncodeSnapshot(g)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := DecodeSnapshot(data); err == nil {
				t.Fatal("invariant violation decoded successfully")
			} else if !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("error %v does not wrap ErrSnapshotCorrupt", err)
			}
		})
	}
}

func TestSaveGenerationPruneAndLoadLatest(t *testing.T) {
	dir := t.TempDir()

	// No directory contents yet: nothing to restore, no error.
	g, path, err := LoadLatestSnapshot(filepath.Join(dir, "missing"))
	if g != nil || path != "" || err != nil {
		t.Fatalf("empty restore = (%v, %q, %v)", g, path, err)
	}

	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := SaveGeneration(dir, snapTestGen(t, seq)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := snapshotFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != snapKeep {
		t.Fatalf("retained %d snapshots %v, want %d", len(names), names, snapKeep)
	}
	g, path, err = LoadLatestSnapshot(dir)
	if err != nil || g == nil {
		t.Fatalf("load latest: %v", err)
	}
	if g.Seq != 3 {
		t.Fatalf("latest seq = %d, want 3", g.Seq)
	}
	if filepath.Base(path) != snapshotName(3) {
		t.Fatalf("latest path = %s", path)
	}

	// Corrupt the newest: the loader must fall back to its predecessor.
	if err := os.WriteFile(filepath.Join(dir, snapshotName(3)), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, _, err = LoadLatestSnapshot(dir)
	if err != nil || g == nil || g.Seq != 2 {
		t.Fatalf("fallback load = (%v, %v), want generation 2", g, err)
	}

	// Corrupt both: snapshots exist but none is servable — error, not nil.
	if err := os.WriteFile(filepath.Join(dir, snapshotName(2)), []byte("also torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if g, _, err = LoadLatestSnapshot(dir); err == nil || g != nil {
		t.Fatalf("all-corrupt load = (%v, %v), want error", g, err)
	}
}

// coldStartResult builds a synthetic sweep result with the given URs.
func coldStartResult(urs ...*core.UR) *core.Result {
	return &core.Result{URs: urs, Queries: int64(100 * len(urs))}
}

func coldStartUR(domain, rdata string, cat core.Category) *core.UR {
	return &core.UR{
		Server: core.NameserverInfo{
			Addr: netip.MustParseAddr("192.0.2.53"), Host: "ns1.provider.test", Provider: "ColdDNS",
		},
		Domain: dns.Name(domain), Type: dns.TypeA, RData: rdata, TTL: 60,
		CorrespondingIPs: []netip.Addr{netip.MustParseAddr(rdata)},
		Category:         cat,
	}
}

// TestColdStartSemantics is the restart walkthrough: generation N is
// published and snapshotted, a fresh daemon restores it (correct Seq and SOA
// serial, no replayed events), and the first background sweep publishes N+1
// whose diff equals the from-scratch diff of the two generations.
func TestColdStartSemantics(t *testing.T) {
	dir := t.TempDir()
	res1 := coldStartResult(
		coldStartUR("keep.test", "203.0.113.10", core.CategoryUnknown),
		coldStartUR("gone.test", "203.0.113.11", core.CategoryUnknown),
	)
	res2 := coldStartResult(
		coldStartUR("keep.test", "203.0.113.10", core.CategoryMalicious), // reclassified
		coldStartUR("new.test", "203.0.113.12", core.CategoryUnknown),    // appeared
	)

	// First life: sweep once, persist the generation (the OnGeneration hook
	// urwatchd installs with -snapshot-dir).
	w1 := NewWatcher(WatcherConfig{
		Sweep: func(ctx context.Context) (*core.Result, error) { return res1, nil },
		OnGeneration: func(g *Generation, d *GenDiff) {
			if _, err := SaveGeneration(dir, g); err != nil {
				t.Errorf("snapshot: %v", err)
			}
		},
	})
	if _, err := w1.SweepOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	g1 := w1.Store().Current()
	if g1.Seq != 1 {
		t.Fatalf("first life seq = %d", g1.Seq)
	}

	// Second life: restore before any sweep.
	w2 := NewWatcher(WatcherConfig{
		Sweep: func(ctx context.Context) (*core.Result, error) { return res2, nil },
	})
	restored, _, err := LoadLatestSnapshot(dir)
	if err != nil || restored == nil {
		t.Fatalf("restore: %v", err)
	}
	w2.Store().Restore(restored)

	// Serves generation N immediately: Seq, verdicts, and the DNSBL SOA
	// serial all say 1 before any sweep has run.
	if got := w2.Store().Current(); got.Seq != 1 || got.Total() != g1.Total() {
		t.Fatalf("restored store serves seq=%d total=%d, want seq=1 total=%d",
			got.Seq, got.Total(), g1.Total())
	}
	const apex = dns.Name("feed.test")
	zr := &ZoneResponder{Apex: apex, Store: w2.Store()}
	resp := zr.HandleQuery(netip.MustParseAddr("10.0.0.1"), dns.NewQuery(1, apex, dns.TypeSOA))
	soa, ok := resp.Answers[0].Data.(*dns.SOA)
	if !ok || soa.Serial != 1 {
		t.Fatalf("restored SOA = %+v, want serial 1", resp.Answers[0].Data)
	}
	// Restore does not replay history: the event log starts empty.
	if n := w2.Store().Log().Len(); n != 0 {
		t.Fatalf("restored event log has %d events, want 0", n)
	}

	// First background sweep: publishes N+1 whose diff equals the
	// from-scratch diff of (restored N, fresh N+1).
	d, err := w2.SweepOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g2 := w2.Store().Current()
	if g2.Seq != 2 {
		t.Fatalf("post-restore sweep seq = %d, want 2", g2.Seq)
	}
	if fresh := Diff(restored, g2); !d.Same(fresh) {
		t.Fatalf("published diff != from-scratch diff:\n pub: %+v\n new: %+v", d.Events, fresh.Events)
	}
	// And equals the diff the uninterrupted first life would have produced.
	uninterrupted := Diff(g1, SnapshotFromResult(res2, 2, time.Unix(2, 0)))
	if !d.Same(uninterrupted) {
		t.Fatalf("restart changed the diff:\n restart: %+v\n 1-life:  %+v", d.Events, uninterrupted.Events)
	}
	kinds := map[EventKind]int{}
	for _, e := range d.Events {
		kinds[e.Kind]++
	}
	if kinds[EventAppeared] != 1 || kinds[EventRemoved] != 1 || kinds[EventReclassified] != 1 {
		t.Fatalf("diff kinds = %v, want one of each", kinds)
	}
}

// FuzzSnapshotLoad feeds mutated snapshot bytes to the loader: whatever the
// input, it must return an error or a fully valid generation — no panics, no
// partially validated data. The corpus seeds valid tiny snapshots so the
// fuzzer starts inside the format and mutates outward.
func FuzzSnapshotLoad(f *testing.F) {
	empty, err := EncodeSnapshot(NewBuilder().Seal(0, time.Time{}))
	if err != nil {
		f.Fatal(err)
	}
	rich, err := EncodeSnapshot(snapTestGen(f, 5))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add(rich)
	f.Add(rich[:len(rich)/2])
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	flipped := append([]byte(nil), rich...)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeSnapshot(data)
		if err != nil {
			if g != nil {
				t.Fatal("error with non-nil generation")
			}
			return
		}
		// Accepted: every access path must hold without panicking.
		total := 0
		for i := 0; i < g.Total(); i++ {
			v := VerdictView{g: g, i: i}
			_ = v.Key()
			_ = v.IPs()
			_ = v.Verdict()
			vs := g.Domain(v.Domain())
			if vs.Len() == 0 {
				t.Fatalf("verdict %d not findable via its own domain", i)
			}
			total++
		}
		if total != g.Total() {
			t.Fatalf("walked %d, Total=%d", total, g.Total())
		}
		sum := 0
		for _, p := range g.Providers() {
			sum += p.Total
		}
		if sum != g.Total() {
			t.Fatalf("provider totals %d != %d", sum, g.Total())
		}
		for _, e := range g.ipIdx {
			_ = (VerdictView{g: g, i: int(e.rec)}).Verdict()
		}
		_ = g.SizeBytes()
	})
}
