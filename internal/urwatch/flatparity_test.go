package urwatch

// Differential test of the flat generation store against a map-era reference
// model. The reference rebuilds the indexes the store used before the flat
// refactor — maps of pointer slices, sorted with the old comparators — and
// renders HTTP and DNSBL answers from them with the same format strings the
// front-ends use. Every generation in a mutation grid must then serve
// byte-identical bodies and packed DNS messages through the flat store, and
// every adjacent generation pair must produce a diff identical to the
// reference map-walk diff. This is the acceptance criterion that the layout
// change is invisible to every consumer.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dns"
)

// httpGet fetches a URL and returns the body, failing the test on transport
// errors.
func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// refModel is the map-era store: one map per lookup dimension, values
// pre-sorted with the old per-dimension comparators.
type refModel struct {
	seq      uint64
	byKey    map[string]*Verdict
	byDomain map[dns.Name][]*Verdict
	byIP     map[netip.Addr][]*Verdict
	provs    []*ProviderStats
	counts   map[core.Category]int
}

func newRefModel(seq uint64, vs []*Verdict) *refModel {
	m := &refModel{
		seq:      seq,
		byKey:    make(map[string]*Verdict),
		byDomain: make(map[dns.Name][]*Verdict),
		byIP:     make(map[netip.Addr][]*Verdict),
		counts:   make(map[core.Category]int),
	}
	provByName := make(map[string]*ProviderStats)
	for _, v := range vs {
		key := v.Key()
		if _, dup := m.byKey[key]; dup {
			continue // first-wins, like Builder.Add
		}
		m.byKey[key] = v
		m.byDomain[v.Domain] = append(m.byDomain[v.Domain], v)
		seen := make(map[netip.Addr]bool)
		for _, ip := range v.IPs {
			if seen[ip] {
				continue
			}
			seen[ip] = true
			m.byIP[ip] = append(m.byIP[ip], v)
		}
		ps := provByName[v.Provider]
		if ps == nil {
			ps = &ProviderStats{Provider: v.Provider, Counts: make(map[string]int)}
			provByName[v.Provider] = ps
		}
		ps.Total++
		ps.Counts[v.Category.String()]++
		m.counts[v.Category]++
	}
	// Old per-domain order: (server, type, rdata).
	for _, list := range m.byDomain {
		sort.Slice(list, func(i, j int) bool {
			a, b := list[i], list[j]
			if cmp := a.Server.Compare(b.Server); cmp != 0 {
				return cmp < 0
			}
			if a.Type != b.Type {
				return a.Type < b.Type
			}
			return a.RData < b.RData
		})
	}
	// Old per-IP order: canonical (server, domain, type, rdata).
	for _, list := range m.byIP {
		sort.Slice(list, func(i, j int) bool {
			a, b := list[i], list[j]
			if cmp := a.Server.Compare(b.Server); cmp != 0 {
				return cmp < 0
			}
			if a.Domain != b.Domain {
				return a.Domain < b.Domain
			}
			if a.Type != b.Type {
				return a.Type < b.Type
			}
			return a.RData < b.RData
		})
	}
	for _, ps := range provByName {
		m.provs = append(m.provs, ps)
	}
	sort.Slice(m.provs, func(i, j int) bool { return m.provs[i].Provider < m.provs[j].Provider })
	return m
}

func refWorst(vs []*Verdict) (core.Category, bool) {
	if len(vs) == 0 {
		return core.CategoryCorrect, false
	}
	worst := vs[0].Category
	for _, v := range vs[1:] {
		if categoryRank(v.Category) > categoryRank(worst) {
			worst = v.Category
		}
	}
	return worst, true
}

func refVerdictJSON(v *Verdict) VerdictJSON {
	out := VerdictJSON{
		Domain:   string(v.Domain),
		Type:     v.Type.String(),
		RData:    v.RData,
		TTL:      v.TTL,
		Server:   v.Server.String(),
		NSHost:   string(v.NSHost),
		Provider: v.Provider,
		Category: v.Category.String(),
		Reason:   string(v.Reason),
		ByIntel:  v.ByIntel,
		ByIDS:    v.ByIDS,
	}
	for _, ip := range v.IPs {
		out.IPs = append(out.IPs, ip.String())
	}
	return out
}

// refLookupBody renders the /v1/lookup body from the reference model with
// the same envelope marshaling the handler uses.
func refLookupBody(t *testing.T, m *refModel, label string, vs []*Verdict) []byte {
	t.Helper()
	resp := lookupResponse{Generation: m.seq, Query: label, Listed: len(vs) > 0}
	if len(vs) > 0 {
		w, _ := refWorst(vs)
		resp.Worst = w.String()
	}
	resp.Verdicts = make([]VerdictJSON, 0, len(vs))
	for _, v := range vs {
		resp.Verdicts = append(resp.Verdicts, refVerdictJSON(v))
	}
	body, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return append(body, '\n')
}

// refDiff is the map-era differ: key-map walks over both generations'
// verdict sets, final-sorted by (Key, Kind) with Gen stamped — the exact
// contract the merge-walk Diff must preserve.
func refDiff(prev, next *refModel, fromSeq, toSeq uint64) *GenDiff {
	d := &GenDiff{FromSeq: fromSeq, ToSeq: toSeq, ByProvider: make(map[string]ProviderDelta)}
	mk := func(kind EventKind, v *Verdict, old, new_ string) Event {
		return Event{
			Kind: kind, Key: v.Key(), Domain: string(v.Domain), Type: v.Type.String(),
			RData: v.RData, Server: v.Server.String(), Provider: v.Provider,
			Old: old, New: new_,
		}
	}
	for key, pv := range prev.byKey {
		nv, ok := next.byKey[key]
		switch {
		case !ok:
			d.add(mk(EventRemoved, pv, pv.Category.String(), ""))
		case pv.Category != nv.Category:
			d.add(mk(EventReclassified, nv, pv.Category.String(), nv.Category.String()))
		}
	}
	for key, nv := range next.byKey {
		if _, ok := prev.byKey[key]; !ok {
			d.add(mk(EventAppeared, nv, "", nv.Category.String()))
		}
	}
	sort.Slice(d.Events, func(i, j int) bool {
		a, b := d.Events[i], d.Events[j]
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Kind < b.Kind
	})
	for i := range d.Events {
		d.Events[i].Gen = toSeq
	}
	return d
}

// parityVerdict builds one grid verdict with every field populated.
func parityVerdict(domain, server string, typ dns.Type, rdata string, cat core.Category, opts ...func(*Verdict)) *Verdict {
	v := &Verdict{
		Domain:   dns.Name(domain),
		Type:     typ,
		RData:    rdata,
		TTL:      300,
		Server:   netip.MustParseAddr(server),
		NSHost:   dns.Name("ns1." + domain),
		Provider: "GridDNS",
		Category: cat,
	}
	if ip, err := netip.ParseAddr(rdata); err == nil {
		v.IPs = []netip.Addr{ip}
	}
	for _, o := range opts {
		o(v)
	}
	return v
}

// parityGrid returns the mutation grid: a sequence of verdict sets where
// each step exercises a different kind of generation-to-generation change.
func parityGrid() [][]*Verdict {
	base := []*Verdict{
		parityVerdict("alpha.test", "192.0.2.1", dns.TypeA, "198.51.100.10", core.CategoryUnknown),
		parityVerdict("alpha.test", "192.0.2.2", dns.TypeA, "198.51.100.10", core.CategoryUnknown),
		parityVerdict("alpha.test", "192.0.2.1", dns.TypeTXT, "v=spf1 -all", core.CategoryCorrect,
			func(v *Verdict) { v.Reason = core.CorrectReason("spf"); v.Provider = "OtherDNS" }),
		parityVerdict("beta.test", "192.0.2.1", dns.TypeA, "203.0.113.5", core.CategoryMalicious,
			func(v *Verdict) { v.ByIntel = true }),
		parityVerdict("gamma.test", "2001:db8::53", dns.TypeA, "203.0.113.5", core.CategoryProtective,
			func(v *Verdict) { v.NSHost = ""; v.IPs = append(v.IPs, netip.MustParseAddr("2001:db8::99")) }),
	}
	clone := func(mut func([]*Verdict) []*Verdict) []*Verdict {
		cp := make([]*Verdict, len(base))
		for i, v := range base {
			c := *v
			cp[i] = &c
		}
		return mut(cp)
	}
	return [][]*Verdict{
		nil,  // empty generation
		base, // everything appears
		clone(func(vs []*Verdict) []*Verdict { // one appears, multi-IP
			extra := parityVerdict("delta.test", "192.0.2.9", dns.TypeTXT, "ip4:198.51.100.10", core.CategoryUnknown,
				func(v *Verdict) { v.IPs = []netip.Addr{netip.MustParseAddr("198.51.100.10")}; v.ByIDS = true })
			return append(vs, extra)
		}),
		clone(func(vs []*Verdict) []*Verdict { // one removed
			return append(vs[:1], vs[2:]...)
		}),
		clone(func(vs []*Verdict) []*Verdict { // one reclassified
			vs[0].Category = core.CategoryMalicious
			vs[0].ByIntel = true
			return vs
		}),
		clone(func(vs []*Verdict) []*Verdict { // identity change: rdata swap
			vs[1].RData = "198.51.100.77"
			vs[1].IPs = []netip.Addr{netip.MustParseAddr("198.51.100.77")}
			return vs
		}),
		nil, // everything removed again
	}
}

// TestFlatStoreParity drives the mutation grid through the flat store and
// the reference model and requires byte-identical serving plus identical
// diffs at every step.
func TestFlatStoreParity(t *testing.T) {
	const apex = dns.Name("feed.test")
	grid := parityGrid()

	var prevGen *Generation
	var prevRef *refModel
	for step, vs := range grid {
		seq := uint64(step + 1)
		b := NewBuilder()
		for _, v := range vs {
			b.Add(v)
		}
		g := b.Seal(seq, time.Unix(int64(seq), 0))
		ref := newRefModel(seq, vs)

		// Counts and provider aggregates.
		if g.Total() != len(ref.byKey) {
			t.Fatalf("step %d: Total=%d ref=%d", step, g.Total(), len(ref.byKey))
		}
		for _, c := range []core.Category{core.CategoryUnknown, core.CategoryCorrect,
			core.CategoryProtective, core.CategoryMalicious} {
			if g.Count(c) != ref.counts[c] {
				t.Errorf("step %d: Count(%v)=%d ref=%d", step, c, g.Count(c), ref.counts[c])
			}
		}
		if !reflect.DeepEqual(g.Providers(), ref.provs) && !(len(g.Providers()) == 0 && len(ref.provs) == 0) {
			t.Errorf("step %d: Providers()=%v ref=%v", step, g.Providers(), ref.provs)
		}

		store := NewStore()
		store.Restore(g)
		api := &API{Store: store}
		hs := httptest.NewServer(api.Handler())
		zr := &ZoneResponder{Apex: apex, Store: store}
		src := netip.MustParseAddr("10.9.9.9")

		// HTTP byte-identity over every domain and IP the grid ever uses,
		// plus never-listed probes.
		domains := []string{"alpha.test", "beta.test", "gamma.test", "delta.test", "unlisted.test"}
		for _, d := range domains {
			body := httpGet(t, hs.URL+"/v1/lookup?domain="+d)
			want := refLookupBody(t, ref, "domain:"+d, ref.byDomain[dns.Name(d)])
			if !bytes.Equal(body, want) {
				t.Errorf("step %d: lookup?domain=%s body mismatch\n got: %s\nwant: %s", step, d, body, want)
			}
		}
		ips := []string{"198.51.100.10", "203.0.113.5", "198.51.100.77", "2001:db8::99", "192.0.2.250"}
		for _, ip := range ips {
			addr := netip.MustParseAddr(ip)
			body := httpGet(t, hs.URL+"/v1/lookup?ip="+ip)
			want := refLookupBody(t, ref, "ip:"+addr.String(), ref.byIP[addr])
			if !bytes.Equal(body, want) {
				t.Errorf("step %d: lookup?ip=%s body mismatch\n got: %s\nwant: %s", step, ip, body, want)
			}
		}

		// DNSBL byte-identity: domain listing names (A + TXT), reversed-IP
		// names, the gen marker, and the zone SOA.
		var qid uint16
		queryBytes := func(name dns.Name, typ dns.Type) []byte {
			qid++
			resp := zr.HandleQuery(src, dns.NewQuery(qid, name, typ))
			packed, err := resp.Pack()
			if err != nil {
				t.Fatalf("step %d: pack %s %s: %v", step, name, typ, err)
			}
			return packed
		}
		refReply := func(name dns.Name, typ dns.Type, rcode dns.RCode, answers []dns.RR) []byte {
			q := dns.NewQuery(qid, name, typ) // qid already advanced by queryBytes's caller pairing
			r := q.Reply()
			r.Header.Authoritative = true
			r.Header.RCode = rcode
			r.Answers = answers
			if len(answers) == 0 {
				r.Authority = append(r.Authority, dns.MustParseRR(fmt.Sprintf(
					"%s %d IN SOA ns.%s hostmaster.%s %d 60 30 600 %d",
					apex, 30, apex, apex, seq, 30)))
			}
			packed, err := r.Pack()
			if err != nil {
				t.Fatalf("ref pack %s %s: %v", name, typ, err)
			}
			return packed
		}
		refTXT := func(name dns.Name, s string) dns.RR {
			return dns.MustParseRR(fmt.Sprintf("%s %d IN TXT %q", name, 30, s))
		}
		refListAnswers := func(qname dns.Name, typ dns.Type, list []*Verdict) (dns.RCode, []dns.RR) {
			if len(list) == 0 {
				return dns.RCodeNXDomain, nil
			}
			worst, _ := refWorst(list)
			switch typ {
			case dns.TypeA:
				return dns.RCodeSuccess, []dns.RR{dns.MustParseRR(fmt.Sprintf(
					"%s %d IN A 127.0.0.%d", qname, 30, categoryCode(worst)))}
			case dns.TypeTXT:
				answers := []dns.RR{refTXT(qname, fmt.Sprintf("gen=%d listed=%d worst=%s", seq, len(list), worst))}
				for i, v := range list {
					if i >= maxTXTEvidence {
						answers = append(answers, refTXT(qname, fmt.Sprintf("and %d more", len(list)-maxTXTEvidence)))
						break
					}
					ev := fmt.Sprintf("%s %s %s @%s (%s)", v.Category, v.Type, v.Domain, v.Server, v.Provider)
					if v.ByIntel || v.ByIDS {
						ev += fmt.Sprintf(" intel=%t ids=%t", v.ByIntel, v.ByIDS)
					}
					answers = append(answers, refTXT(qname, ev))
				}
				return dns.RCodeSuccess, answers
			}
			return dns.RCodeSuccess, nil
		}
		for _, d := range domains {
			for _, typ := range []dns.Type{dns.TypeA, dns.TypeTXT} {
				qname := DomainName(dns.Name(d), apex)
				got := queryBytes(qname, typ)
				rcode, answers := refListAnswers(qname, typ, ref.byDomain[dns.Name(d)])
				if want := refReply(qname, typ, rcode, answers); !bytes.Equal(got, want) {
					t.Errorf("step %d: DNSBL %s %s mismatch\n got: %x\nwant: %x", step, qname, typ, got, want)
				}
			}
		}
		for _, ip := range ips {
			addr := netip.MustParseAddr(ip)
			qname, ok := ReverseIPName(addr, apex)
			if !ok {
				continue // v6 addresses have no urbl name; skipped by both sides
			}
			for _, typ := range []dns.Type{dns.TypeA, dns.TypeTXT} {
				got := queryBytes(qname, typ)
				rcode, answers := refListAnswers(qname, typ, ref.byIP[addr])
				if want := refReply(qname, typ, rcode, answers); !bytes.Equal(got, want) {
					t.Errorf("step %d: DNSBL %s %s mismatch", step, qname, typ)
				}
			}
		}
		{
			got := queryBytes("gen."+apex, dns.TypeTXT)
			s := fmt.Sprintf("gen=%d total=%d malicious=%d suspicious=%d protective=%d correct=%d",
				seq, len(ref.byKey), ref.counts[core.CategoryMalicious], ref.counts[core.CategoryUnknown],
				ref.counts[core.CategoryProtective], ref.counts[core.CategoryCorrect])
			if want := refReply("gen."+apex, dns.TypeTXT, dns.RCodeSuccess,
				[]dns.RR{refTXT("gen."+apex, s)}); !bytes.Equal(got, want) {
				t.Errorf("step %d: gen marker mismatch", step)
			}
		}
		hs.Close()

		// Diff parity against the map-walk reference.
		if prevGen != nil {
			flat := Diff(prevGen, g)
			want := refDiff(prevRef, ref, prevGen.Seq, seq)
			if !flat.Same(want) {
				t.Fatalf("step %d: merge-walk diff != map-walk diff\n flat: %+v\n want: %+v",
					step, flat.Events, want.Events)
			}
			if !reflect.DeepEqual(flat.ByProvider, want.ByProvider) {
				t.Errorf("step %d: provider deltas %v != %v", step, flat.ByProvider, want.ByProvider)
			}
		}
		prevGen, prevRef = g, ref
	}
}

// TestFindAcrossGrid checks the exact-identity binary search against the
// reference key map at every grid step.
func TestFindAcrossGrid(t *testing.T) {
	for step, vs := range parityGrid() {
		b := NewBuilder()
		for _, v := range vs {
			b.Add(v)
		}
		g := b.Seal(uint64(step+1), time.Unix(int64(step+1), 0))
		ref := newRefModel(uint64(step+1), vs)
		for key, rv := range ref.byKey {
			v, ok := g.Find(rv.Domain, rv.Server, rv.Type, rv.RData)
			if !ok {
				t.Fatalf("step %d: Find missed %q", step, key)
			}
			if v.Key() != key || !reflect.DeepEqual(v.Verdict(), rv) {
				t.Errorf("step %d: Find(%q) materialized %+v, want %+v", step, key, v.Verdict(), rv)
			}
		}
		if _, ok := g.Find("absent.test", netip.MustParseAddr("192.0.2.1"), dns.TypeA, "x"); ok {
			t.Errorf("step %d: Find invented a verdict", step)
		}
	}
}
