package urwatch

import (
	"sync"
	"sync/atomic"
)

// ResponseCache memoizes rendered answers for the hot names both front-ends
// see under load. Entries are valid for exactly one generation: the cache
// key space is (generation seq, query key), and a Get or Put carrying a
// newer seq flushes everything from the older generation. That ties cache
// coherence to the same linearization point as the store itself — a cached
// answer can never leak a retired generation's verdicts past a swap.
type ResponseCache struct {
	mu  sync.Mutex
	gen uint64
	m   map[string]any
	cap int

	hits   atomic.Int64
	misses atomic.Int64
}

// DefaultCacheCap bounds cached entries per front-end.
const DefaultCacheCap = 8192

// NewResponseCache builds a cache holding up to cap entries (cap <= 0
// selects DefaultCacheCap).
func NewResponseCache(cap int) *ResponseCache {
	if cap <= 0 {
		cap = DefaultCacheCap
	}
	return &ResponseCache{m: make(map[string]any), cap: cap}
}

// Get returns the cached value for key under generation gen.
func (c *ResponseCache) Get(gen uint64, key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	if gen != c.gen {
		c.flushLocked(gen)
	}
	v, ok := c.m[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Put stores a value for key under generation gen. A full cache is flushed
// wholesale — entries are cheap to rebuild from the immutable generation,
// and wholesale flushing keeps the lock hold time flat.
func (c *ResponseCache) Put(gen uint64, key string, v any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		c.flushLocked(gen)
	}
	if len(c.m) >= c.cap {
		c.m = make(map[string]any, c.cap/4)
	}
	c.m[key] = v
}

func (c *ResponseCache) flushLocked(gen uint64) {
	c.gen = gen
	c.m = make(map[string]any, len(c.m))
}

// Stats returns cumulative hit/miss counters.
func (c *ResponseCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}
