package urwatch

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"repro/internal/dnsio"
)

// ServeGroup owns a set of serving front-ends — dnsio DNS servers and
// net/http servers — and drains them together: listeners close first so no
// new queries arrive, then in-flight handlers finish before Drain returns.
// Both urwatchd and urserve hang their listeners on one group so a SIGINT
// never kills a server mid-answer.
type ServeGroup struct {
	mu   sync.Mutex
	dns  []*dnsio.Server
	http []*httpEntry
	errs []error
}

type httpEntry struct {
	srv  *http.Server
	done chan struct{}
}

// AddDNS registers an already-started DNS server.
func (g *ServeGroup) AddDNS(srv *dnsio.Server) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.dns = append(g.dns, srv)
}

// StartDNS starts a DNS server for the responder on addr and registers it.
// On failure every previously started member is drained before the error
// returns, so a partially assembled group never leaks sockets — this is
// what makes a port collision in an address-increment loop fail cleanly.
func (g *ServeGroup) StartDNS(r dnsio.Responder, addr string) (*dnsio.Server, error) {
	srv := dnsio.NewServer(r)
	if err := srv.Start(addr); err != nil {
		g.Drain(context.Background())
		return nil, fmt.Errorf("urwatch: listen %s: %w", addr, err)
	}
	g.AddDNS(srv)
	return srv, nil
}

// StartHTTP serves handler on a new listener at addr and registers the
// server. Same cleanup-on-failure contract as StartDNS.
func (g *ServeGroup) StartHTTP(handler http.Handler, addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		g.Drain(context.Background())
		return nil, fmt.Errorf("urwatch: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	e := &httpEntry{srv: srv, done: make(chan struct{})}
	g.mu.Lock()
	g.http = append(g.http, e)
	g.mu.Unlock()
	go func() {
		defer close(e.done)
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			g.mu.Lock()
			g.errs = append(g.errs, err)
			g.mu.Unlock()
		}
	}()
	return ln.Addr(), nil
}

// Drain closes every listener and waits for in-flight handlers. Safe to
// call more than once. ctx bounds the HTTP shutdown wait; DNS servers'
// Close already waits for their in-flight handlers.
func (g *ServeGroup) Drain(ctx context.Context) error {
	g.mu.Lock()
	dnsSrvs := g.dns
	httpSrvs := g.http
	g.dns, g.http = nil, nil
	g.mu.Unlock()

	var firstErr error
	for _, e := range httpSrvs {
		if err := e.srv.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
		<-e.done
	}
	for _, srv := range dnsSrvs {
		if err := srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	g.mu.Lock()
	for _, err := range g.errs {
		if firstErr == nil {
			firstErr = err
		}
	}
	g.errs = nil
	g.mu.Unlock()
	return firstErr
}

// AwaitSignal blocks until SIGINT/SIGTERM (or ctx cancellation) and returns.
// A second signal while the caller is draining hard-exits with status 130 —
// the escape hatch when a drain wedges.
func AwaitSignal(ctx context.Context, sigs ...os.Signal) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, sigs...)
	defer signal.Stop(ch)
	select {
	case <-ctx.Done():
		return
	case <-ch:
	}
	go func() {
		<-ch
		fmt.Fprintln(os.Stderr, "second signal: hard exit")
		os.Exit(130)
	}()
}
