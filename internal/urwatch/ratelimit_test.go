package urwatch

import (
	"net/netip"
	"testing"
	"time"
)

// virtualClock is a hand-advanced clock for deterministic limiter tests.
type virtualClock struct{ now time.Time }

func (c *virtualClock) read() time.Time         { return c.now }
func (c *virtualClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func newVirtualClock() *virtualClock            { return &virtualClock{now: time.Unix(1000, 0)} }

func TestRateLimiterDeterministicSequence(t *testing.T) {
	clk := newVirtualClock()
	l := NewRateLimiter(1, 2, clk.read) // 1 token/s, burst 2
	client := netip.MustParseAddr("10.0.0.1")

	// Exact allow/deny script under the virtual clock.
	steps := []struct {
		advance time.Duration
		want    bool
	}{
		{0, true},                       // burst token 1
		{0, true},                       // burst token 2
		{0, false},                      // empty
		{500 * time.Millisecond, false}, // 0.5 tokens: still short
		{500 * time.Millisecond, true},  // refilled to 1
		{0, false},                      // spent again
		{5 * time.Second, true},         // refill caps at burst (2)...
		{0, true},
		{0, false}, // ...not at 5
	}
	for i, s := range steps {
		clk.advance(s.advance)
		if got := l.Allow(client); got != s.want {
			t.Fatalf("step %d (t=%s): Allow = %v, want %v", i, clk.now.Sub(time.Unix(1000, 0)), got, s.want)
		}
	}
}

func TestRateLimiterPerClientIndependence(t *testing.T) {
	clk := newVirtualClock()
	l := NewRateLimiter(1, 1, clk.read)
	a := netip.MustParseAddr("10.0.0.1")
	b := netip.MustParseAddr("10.0.0.2")

	if !l.Allow(a) {
		t.Fatal("client a first request denied")
	}
	if l.Allow(a) {
		t.Fatal("client a second request allowed with burst 1")
	}
	// Client b is untouched by a's exhaustion.
	if !l.Allow(b) {
		t.Fatal("client b denied by a's consumption")
	}
	if l.Clients() != 2 {
		t.Errorf("Clients() = %d, want 2", l.Clients())
	}
}

func TestRateLimiterDisabledAndNil(t *testing.T) {
	client := netip.MustParseAddr("10.0.0.1")
	var nilLimiter *RateLimiter
	for i := 0; i < 10; i++ {
		if !nilLimiter.Allow(client) {
			t.Fatal("nil limiter denied")
		}
	}
	off := NewRateLimiter(0, 0, nil)
	for i := 0; i < 10; i++ {
		if !off.Allow(client) {
			t.Fatal("rate<=0 limiter denied")
		}
	}
}

func TestRateLimiterSameInputsSameAnswers(t *testing.T) {
	run := func() []bool {
		clk := newVirtualClock()
		l := NewRateLimiter(2, 3, clk.read)
		client := netip.MustParseAddr("10.0.0.9")
		var out []bool
		for i := 0; i < 20; i++ {
			out = append(out, l.Allow(client))
			clk.advance(200 * time.Millisecond)
		}
		return out
	}
	first := run()
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("run divergence at request %d: %v vs %v", i, first, second)
		}
	}
}
