package urwatch

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dns"
)

// mkVerdict builds a test verdict; the (server, domain, type, rdata) tuple is
// its identity.
func mkVerdict(domain string, server string, cat core.Category, rdata string) *Verdict {
	addr := netip.MustParseAddr(server)
	v := &Verdict{
		Domain:   dns.Name(domain),
		Type:     dns.TypeA,
		RData:    rdata,
		TTL:      120,
		Server:   addr,
		NSHost:   dns.Name("ns." + domain),
		Provider: "TestDNS",
		Category: cat,
	}
	if ip, err := netip.ParseAddr(rdata); err == nil {
		v.IPs = []netip.Addr{ip}
	}
	return v
}

func sealGen(t *testing.T, seq uint64, vs ...*Verdict) *Generation {
	t.Helper()
	b := NewBuilder()
	for _, v := range vs {
		b.Add(v)
	}
	return b.Seal(seq, time.Unix(int64(seq), 0))
}

func TestBuilderIndexes(t *testing.T) {
	v1 := mkVerdict("a.test", "192.0.2.1", core.CategoryMalicious, "198.51.100.7")
	v2 := mkVerdict("a.test", "192.0.2.2", core.CategoryUnknown, "198.51.100.7")
	v3 := mkVerdict("b.test", "192.0.2.1", core.CategoryCorrect, "203.0.113.9")
	g := sealGen(t, 1, v2, v1, v3, v1) // duplicate v1 must dedup; order shuffled

	if g.Total() != 3 {
		t.Fatalf("Total = %d, want 3", g.Total())
	}
	if got := g.Count(core.CategoryMalicious); got != 1 {
		t.Errorf("malicious count = %d, want 1", got)
	}
	vs := g.Domain("a.test")
	if vs.Len() != 2 {
		t.Fatalf("Domain(a.test) = %d verdicts, want 2", vs.Len())
	}
	// Canonical order: by server.
	if vs.At(0).Server() != v1.Server || vs.At(1).Server() != v2.Server {
		t.Errorf("Domain verdicts out of canonical order: %v, %v", vs.At(0).Server(), vs.At(1).Server())
	}
	if _, ok := g.Find(v3.Domain, v3.Server, v3.Type, v3.RData); !ok {
		t.Errorf("Find(%q) missed", v3.Key())
	}
	byIP := g.IP(netip.MustParseAddr("198.51.100.7"))
	if byIP.Len() != 2 {
		t.Errorf("IP index = %d verdicts, want 2", byIP.Len())
	}
	ps, ok := g.Provider("TestDNS")
	if !ok || ps.Total != 3 {
		t.Errorf("Provider stats = %+v, ok=%v", ps, ok)
	}
	if ps.Counts[core.CategoryMalicious.String()] != 1 {
		t.Errorf("provider malicious count = %d", ps.Counts[core.CategoryMalicious.String()])
	}
	if got := len(g.Providers()); got != 1 {
		t.Errorf("Providers() = %d entries", got)
	}
}

func TestWorstCategory(t *testing.T) {
	mk := func(cats ...core.Category) VerdictSet {
		var vs []*Verdict
		for i, c := range cats {
			vs = append(vs, mkVerdict("w.test", fmt.Sprintf("192.0.2.%d", i+1), c, "203.0.113.1"))
		}
		return sealGen(t, 1, vs...).Domain("w.test")
	}
	if _, ok := WorstCategory(VerdictSet{}); ok {
		t.Error("WorstCategory(empty) ok = true")
	}
	cases := []struct {
		vs   VerdictSet
		want core.Category
	}{
		{mk(core.CategoryCorrect), core.CategoryCorrect},
		{mk(core.CategoryCorrect, core.CategoryProtective), core.CategoryProtective},
		{mk(core.CategoryProtective, core.CategoryUnknown), core.CategoryUnknown},
		{mk(core.CategoryUnknown, core.CategoryMalicious, core.CategoryCorrect), core.CategoryMalicious},
	}
	for i, c := range cases {
		if got, _ := WorstCategory(c.vs); got != c.want {
			t.Errorf("case %d: worst = %v, want %v", i, got, c.want)
		}
	}
}

func TestStorePublishMonotonic(t *testing.T) {
	s := NewStore()
	if s.Current().Seq != 0 {
		t.Fatalf("fresh store seq = %d", s.Current().Seq)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		d := s.Publish(sealGen(t, seq,
			mkVerdict("a.test", "192.0.2.1", core.CategoryUnknown, fmt.Sprintf("198.51.100.%d", seq))))
		if d.ToSeq != seq {
			t.Errorf("diff ToSeq = %d, want %d", d.ToSeq, seq)
		}
		if s.Current().Seq != seq {
			t.Errorf("Current().Seq = %d, want %d", s.Current().Seq, seq)
		}
	}
	// Three swaps: each replaces the single verdict (1 appear; then
	// 1 appear + 1 remove per swap).
	if got := s.Log().LastSeq(); got != 5 {
		t.Errorf("event log last seq = %d, want 5", got)
	}
}

// TestConcurrentReadersDuringSwap is the -race generation-swap test: readers
// hammer Current() while a writer publishes a stream of generations. Every
// generation is self-describing (all its verdicts' RData encode its seq), so
// a reader can detect a torn snapshot — verdicts from one generation served
// under another's header — and seq must never run backwards per reader.
func TestConcurrentReadersDuringSwap(t *testing.T) {
	s := NewStore()
	const generations = 200
	const readers = 8

	genFor := func(seq uint64) *Generation {
		b := NewBuilder()
		n := int(seq%7) + 1 // varying size so totals differ across gens
		for i := 0; i < n; i++ {
			b.Add(&Verdict{
				Domain:   dns.Name(fmt.Sprintf("d%d.test", i)),
				Type:     dns.TypeA,
				RData:    fmt.Sprintf("gen-%d", seq),
				Server:   netip.MustParseAddr(fmt.Sprintf("192.0.2.%d", i+1)),
				Provider: "TestDNS",
				Category: core.CategoryUnknown,
			})
		}
		return b.Seal(seq, time.Unix(int64(seq), 0))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeq uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := s.Current()
				if g.Seq < lastSeq {
					errs <- fmt.Sprintf("seq ran backwards: %d after %d", g.Seq, lastSeq)
					return
				}
				lastSeq = g.Seq
				if g.Seq == 0 {
					continue
				}
				want := fmt.Sprintf("gen-%d", g.Seq)
				n := 0
				for i := 0; i < 7; i++ {
					vs := g.Domain(dns.Name(fmt.Sprintf("d%d.test", i)))
					for j := 0; j < vs.Len(); j++ {
						n++
						if rd := vs.At(j).RData(); rd != want {
							errs <- fmt.Sprintf("torn read: verdict %q inside generation %d", rd, g.Seq)
							return
						}
					}
				}
				if n != g.Total() {
					errs <- fmt.Sprintf("generation %d: walked %d verdicts, Total()=%d", g.Seq, n, g.Total())
					return
				}
			}
		}()
	}

	for seq := uint64(1); seq <= generations; seq++ {
		s.Publish(genFor(seq))
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if s.Current().Seq != generations {
		t.Errorf("final seq = %d, want %d", s.Current().Seq, generations)
	}
}
