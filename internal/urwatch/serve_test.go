package urwatch

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dns"
	"repro/internal/hosting"
	"repro/internal/scenario"
	"repro/internal/threatintel"
)

// TestServeAcceptance is the subsystem's end-to-end check: a real world is
// swept three times with mutations between sweeps (a UR planted, an IP
// intel-flagged, the planted UR removed) while mixed HTTP and DNSBL load
// runs continuously against the store. It asserts
//
//   - zero dropped verdicts: every request in flight across all three
//     generation swaps gets a full answer (no 5xx, no REFUSED/SERVFAIL),
//   - the generation window: every response's generation is between the
//     store's generation before and after the request — N or N+1, never torn,
//   - diff correctness: each published diff equals a from-scratch Diff of the
//     retained generation pair, and the mutations show up as the right
//     ur_appeared / class_changed / ur_removed events.
func TestServeAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-world acceptance test")
	}
	w, err := scenario.Generate(scenario.Tiny(), 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := w.URHunterConfig()

	type published struct {
		g *Generation
		d *GenDiff
	}
	var pubMu sync.Mutex
	var pubs []published
	watcher := NewWatcher(WatcherConfig{
		Sweep: func(ctx context.Context) (*core.Result, error) {
			return core.NewPipeline(cfg).Run(ctx)
		},
		OnGeneration: func(g *Generation, d *GenDiff) {
			pubMu.Lock()
			pubs = append(pubs, published{g, d})
			pubMu.Unlock()
		},
	})
	store := watcher.Store()
	gen0 := store.Current()

	const apex = dns.Name("feed.test")
	zr := &ZoneResponder{Apex: apex, Store: store, Cache: NewResponseCache(0)}
	api := &API{Store: store, Watcher: watcher, Cache: NewResponseCache(0)}
	hs := httptest.NewServer(api.Handler())
	defer hs.Close()

	// --- continuous mixed load ------------------------------------------
	var (
		httpReqs, dnsReqs atomic.Int64
		failures          atomic.Int64
		failMu            sync.Mutex
		firstFailure      string
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		failMu.Lock()
		if firstFailure == "" {
			firstFailure = fmt.Sprintf(format, args...)
		}
		failMu.Unlock()
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	paths := []string{"/v1/providers", "/v1/health", "/v1/events?since=0&max=5",
		"/v1/lookup?domain=ibm.com", "/v1/coverage"}
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) { // HTTP clients
			defer wg.Done()
			cli := hs.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				before := store.Current().Seq
				resp, err := cli.Get(hs.URL + paths[i%len(paths)])
				if err != nil {
					fail("http client %d: %v", c, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				httpReqs.Add(1)
				if resp.StatusCode >= 500 {
					fail("http %s: status %d", paths[i%len(paths)], resp.StatusCode)
					continue
				}
				var env struct {
					Generation uint64 `json:"generation"`
				}
				if json.Unmarshal(body, &env) == nil && env.Generation > 0 {
					if after := store.Current().Seq; env.Generation < before || env.Generation > after {
						fail("http torn generation %d outside [%d, %d]", env.Generation, before, after)
					}
				}
			}
		}(c)
		wg.Add(1)
		go func(c int) { // DNSBL clients
			defer wg.Done()
			src := netip.MustParseAddr(fmt.Sprintf("10.1.1.%d", c+1))
			for i := uint16(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				before := store.Current().Seq
				resp := zr.HandleQuery(src, dns.NewQuery(i, "gen."+apex, dns.TypeTXT))
				dnsReqs.Add(1)
				if resp.Header.RCode != dns.RCodeSuccess {
					fail("dns gen query rcode %s", resp.Header.RCode)
					continue
				}
				var got uint64
				if txt, ok := resp.Answers[0].Data.(*dns.TXT); ok {
					fmt.Sscanf(txt.Strings[0], "gen=%d", &got)
				}
				if after := store.Current().Seq; got < before || got > after {
					fail("dns torn generation %d outside [%d, %d]", got, before, after)
				}
				// Exercise listing answers too; rcode may be NXDOMAIN for
				// unlisted names, but never REFUSED/SERVFAIL in-zone.
				lq := zr.HandleQuery(src, dns.NewQuery(i, DomainName("ibm.com", apex), dns.TypeA))
				dnsReqs.Add(1)
				if lq.Header.RCode == dns.RCodeRefused || lq.Header.RCode == dns.RCodeServFail {
					fail("dns listing query rcode %s", lq.Header.RCode)
				}
				if i%64 == 0 {
					// Yield so the in-process DNS loop does not starve the
					// HTTP clients, which pay real socket round-trips.
					time.Sleep(time.Millisecond)
				}
			}
		}(c)
	}

	// --- three sweeps with mutations between them -----------------------
	sweep := func() *Generation {
		t.Helper()
		if _, err := watcher.SweepOnce(context.Background()); err != nil {
			t.Fatalf("sweep: %v", err)
		}
		// Let the load clients observe this generation before the next swap;
		// tiny-world sweeps alone finish in single-digit milliseconds.
		time.Sleep(50 * time.Millisecond)
		return store.Current()
	}
	g1 := sweep()
	if g1.Seq != 1 || g1.Total() == 0 {
		t.Fatalf("generation 1: seq=%d total=%d", g1.Seq, g1.Total())
	}

	// Mutation 1: plant a fresh UR at ClouDNS for a target domain the
	// provider does not yet host.
	cloudns := w.ProviderByName["ClouDNS"]
	if cloudns == nil {
		t.Fatal("no ClouDNS in world")
	}
	cloudns.OpenAccount("urwatch-acceptance", false)
	var hz *hosting.HostedZone
	var planted dns.Name
	for _, target := range w.Targets {
		if len(cloudns.ZonesFor(target)) > 0 {
			continue
		}
		z, err := cloudns.CreateZone("urwatch-acceptance", target)
		if err != nil {
			continue
		}
		hz, planted = z, target
		break
	}
	if hz == nil {
		t.Fatal("no target available for planting a UR")
	}
	hz.Zone.MustAddRR(fmt.Sprintf("%s 300 IN A 203.0.113.222", planted))

	// Mutation 2: a vendor flags the corresponding IP of some so-far-unknown
	// verdict — next sweep must reclassify it malicious.
	var flagged *Verdict
	vt, _ := w.Intel.Vendor("VirusTotal")
scan:
	for _, target := range w.Targets {
		vs := g1.Domain(target)
		for i := 0; i < vs.Len(); i++ {
			v := vs.At(i)
			if v.Category() == core.CategoryUnknown && len(v.IPs()) > 0 && !v.ByIntel() && !v.ByIDS() {
				flagged = v.Verdict()
				break scan
			}
		}
	}
	if flagged == nil {
		t.Fatal("generation 1 has no unknown verdict with corresponding IPs to flag")
	}
	vt.Flag(flagged.IPs[0], threatintel.TagC2)

	g2 := sweep()
	if g2.Seq != 2 {
		t.Fatalf("generation 2 seq = %d", g2.Seq)
	}

	// Mutation 3: retract the planted UR.
	hz.Zone.RemoveRRset(planted, dns.TypeA)
	g3 := sweep()
	if g3.Seq != 3 {
		t.Fatalf("generation 3 seq = %d", g3.Seq)
	}

	close(stop)
	wg.Wait()

	// --- serving invariants ---------------------------------------------
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d load failures across swaps; first: %s", n, firstFailure)
	}
	if httpReqs.Load() == 0 || dnsReqs.Load() == 0 {
		t.Fatalf("load did not run: http=%d dns=%d", httpReqs.Load(), dnsReqs.Load())
	}
	t.Logf("served %d HTTP + %d DNS requests across 3 generation swaps",
		httpReqs.Load(), dnsReqs.Load())

	// --- diff correctness ------------------------------------------------
	pubMu.Lock()
	defer pubMu.Unlock()
	if len(pubs) != 3 {
		t.Fatalf("published %d generations, want 3", len(pubs))
	}
	prevs := []*Generation{gen0, pubs[0].g, pubs[1].g}
	for i, p := range pubs {
		if fresh := Diff(prevs[i], p.g); !p.d.Same(fresh) {
			t.Errorf("generation %d: published diff (%d events) != from-scratch diff (%d events)",
				p.g.Seq, len(p.d.Events), len(fresh.Events))
		}
	}

	hasEvent := func(d *GenDiff, kind EventKind, match func(Event) bool) bool {
		for _, e := range d.Events {
			if e.Kind == kind && match(e) {
				return true
			}
		}
		return false
	}
	plantedKey := func(e Event) bool {
		return e.Domain == string(planted) && e.RData == "203.0.113.222"
	}
	if !hasEvent(pubs[1].d, EventAppeared, plantedKey) {
		t.Errorf("generation 2 diff missing ur_appeared for planted %s", planted)
	}
	if !hasEvent(pubs[1].d, EventReclassified, func(e Event) bool { return e.Key == flagged.Key() }) {
		t.Errorf("generation 2 diff missing class_changed for flagged %s", flagged.Key())
	}
	if !hasEvent(pubs[2].d, EventRemoved, plantedKey) {
		t.Errorf("generation 3 diff missing ur_removed for planted %s", planted)
	}

	// The reclassified verdict must now serve as malicious, end to end.
	if v, ok := g3.Find(flagged.Domain, flagged.Server, flagged.Type, flagged.RData); !ok {
		t.Errorf("flagged verdict vanished from generation 3")
	} else if v.Category() != core.CategoryMalicious {
		t.Errorf("flagged verdict category = %v, want malicious", v.Category())
	}

	// Event log seqs are strictly increasing across the whole run.
	events, _ := store.Log().Since(0, 0)
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("event log seq not increasing at %d", i)
		}
	}

	// Spot-check the DNSBL view of the planted lifecycle: gone in gen 3.
	resp := zr.HandleQuery(netip.MustParseAddr("10.1.1.9"),
		dns.NewQuery(9, DomainName(planted, apex), dns.TypeA))
	if g3.Domain(planted).Len() == 0 && resp.Header.RCode != dns.RCodeNXDomain {
		t.Errorf("planted domain still listed after removal: rcode %s", resp.Header.RCode)
	}
}
