package urwatch

import (
	"fmt"
	"net/netip"
	"strings"
)

// ACL is a source-IP allowlist: an immutable set of CIDR prefixes checked on
// the serve path. The DNSBL front-end uses two of them with different
// fail-modes:
//
//   - the transfer ACL gates AXFR/IXFR/NOTIFY, and a nil ACL means
//     *disabled* — zone transfers hand out the entire feed in one exchange,
//     so mirroring is opt-in; and
//   - the zone ACL gates ordinary DNSBL queries, and a nil ACL means *open*
//     — the feed is meant to be queried.
//
// Denied clients get REFUSED, the standard DNS signal for "ask someone who
// trusts you". Lookups are a linear scan over the prefix list; allowlists
// are operator-written and short, so a scan beats an interval tree until
// well past any realistic size.
type ACL struct {
	prefixes []netip.Prefix
	src      string
}

// ParseACL builds an ACL from a comma-separated list of CIDR prefixes or
// bare addresses ("127.0.0.0/8, 10.2.3.4, ::1/128"). An empty string returns
// nil — the caller's nil-policy applies.
func ParseACL(s string) (*ACL, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	a := &ACL{src: s}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "/") {
			addr, err := netip.ParseAddr(part)
			if err != nil {
				return nil, fmt.Errorf("urwatch: bad ACL entry %q: %w", part, err)
			}
			a.prefixes = append(a.prefixes, netip.PrefixFrom(addr, addr.BitLen()))
			continue
		}
		p, err := netip.ParsePrefix(part)
		if err != nil {
			return nil, fmt.Errorf("urwatch: bad ACL entry %q: %w", part, err)
		}
		a.prefixes = append(a.prefixes, p.Masked())
	}
	if len(a.prefixes) == 0 {
		return nil, nil
	}
	return a, nil
}

// MustParseACL is ParseACL for static allowlists in tests and examples.
func MustParseACL(s string) *ACL {
	a, err := ParseACL(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Contains reports whether addr matches any prefix. A nil ACL contains
// nothing; callers encode their nil-policy (open vs disabled) themselves.
// 4-in-6 mapped addresses are unmapped first so one v4 prefix covers both
// socket families.
func (a *ACL) Contains(addr netip.Addr) bool {
	if a == nil {
		return false
	}
	addr = addr.Unmap()
	for _, p := range a.prefixes {
		if p.Contains(addr) {
			return true
		}
	}
	return false
}

// String returns the ACL's source form ("" for nil).
func (a *ACL) String() string {
	if a == nil {
		return ""
	}
	return a.src
}
