package urwatch

import (
	"testing"

	"repro/internal/core"
)

func TestDiffSyntheticPair(t *testing.T) {
	// prev: k1 (unknown), k2 (correct).  next: k1 reclassified malicious,
	// k2 gone, k3 appeared.
	k1a := mkVerdict("a.test", "192.0.2.1", core.CategoryUnknown, "198.51.100.1")
	k1b := mkVerdict("a.test", "192.0.2.1", core.CategoryMalicious, "198.51.100.1")
	k2 := mkVerdict("b.test", "192.0.2.2", core.CategoryCorrect, "198.51.100.2")
	k3 := mkVerdict("c.test", "192.0.2.3", core.CategoryProtective, "198.51.100.3")

	prev := sealGen(t, 1, k1a, k2)
	next := sealGen(t, 2, k1b, k3)
	d := Diff(prev, next)

	if d.FromSeq != 1 || d.ToSeq != 2 {
		t.Errorf("diff span = %d -> %d", d.FromSeq, d.ToSeq)
	}
	if len(d.Events) != 3 {
		t.Fatalf("events = %d, want 3: %+v", len(d.Events), d.Events)
	}
	byKind := map[EventKind]Event{}
	for _, e := range d.Events {
		byKind[e.Kind] = e
		if e.Gen != 2 {
			t.Errorf("event %s stamped generation %d, want 2", e.Kind, e.Gen)
		}
	}
	if e := byKind[EventReclassified]; e.Key != k1b.Key() ||
		e.Old != core.CategoryUnknown.String() || e.New != core.CategoryMalicious.String() {
		t.Errorf("class_changed event = %+v", e)
	}
	if e := byKind[EventRemoved]; e.Key != k2.Key() || e.Old != core.CategoryCorrect.String() || e.New != "" {
		t.Errorf("ur_removed event = %+v", e)
	}
	if e := byKind[EventAppeared]; e.Key != k3.Key() || e.New != core.CategoryProtective.String() || e.Old != "" {
		t.Errorf("ur_appeared event = %+v", e)
	}
	pd := d.ByProvider["TestDNS"]
	if pd.Appeared != 1 || pd.Removed != 1 || pd.Reclassified != 1 {
		t.Errorf("provider delta = %+v", pd)
	}

	// Determinism: the from-scratch diff of the same pair is identical.
	if !d.Same(Diff(prev, next)) {
		t.Error("Diff of the same generation pair is not deterministic")
	}
	// Events are sorted by key.
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i-1].Key > d.Events[i].Key {
			t.Errorf("events out of key order at %d", i)
		}
	}
}

func TestDiffIdenticalGenerations(t *testing.T) {
	v := mkVerdict("a.test", "192.0.2.1", core.CategoryUnknown, "198.51.100.1")
	prev := sealGen(t, 1, v)
	next := sealGen(t, 2, mkVerdict("a.test", "192.0.2.1", core.CategoryUnknown, "198.51.100.1"))
	d := Diff(prev, next)
	if len(d.Events) != 0 {
		t.Errorf("identical generations produced %d events: %+v", len(d.Events), d.Events)
	}
}

func TestEventLogSince(t *testing.T) {
	l := NewEventLog()
	g0 := sealGen(t, 0)
	g1 := sealGen(t, 1,
		mkVerdict("a.test", "192.0.2.1", core.CategoryUnknown, "198.51.100.1"),
		mkVerdict("b.test", "192.0.2.2", core.CategoryCorrect, "198.51.100.2"))
	g2 := sealGen(t, 2,
		mkVerdict("a.test", "192.0.2.1", core.CategoryMalicious, "198.51.100.1"))

	l.Append(Diff(g0, g1)) // 2 appeared -> seqs 1, 2
	l.Append(Diff(g1, g2)) // 1 reclassified + 1 removed -> seqs 3, 4

	if l.Len() != 4 || l.LastSeq() != 4 {
		t.Fatalf("len=%d lastSeq=%d, want 4/4", l.Len(), l.LastSeq())
	}
	all, truncated := l.Since(0, 0)
	if truncated || len(all) != 4 {
		t.Fatalf("Since(0) = %d events, truncated=%v", len(all), truncated)
	}
	for i, e := range all {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	tail, _ := l.Since(2, 0)
	if len(tail) != 2 || tail[0].Seq != 3 {
		t.Errorf("Since(2) = %+v", tail)
	}
	capped, _ := l.Since(0, 3)
	if len(capped) != 3 {
		t.Errorf("Since(0, max=3) = %d events", len(capped))
	}
	deltas := l.Deltas()
	if len(deltas) != 2 || deltas[1].FromSeq != 1 || deltas[1].ToSeq != 2 {
		t.Errorf("Deltas() = %+v", deltas)
	}
}
