package urwatch

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/dns"
)

// Metrics is the serving-path instrumentation behind the /metrics endpoint:
// per-zone query counters, transfer counters, and latency histograms. All
// counters are lock-free atomics incremented on the hot path; the Prometheus
// rendering walks them read-only. Every method is nil-receiver safe so the
// front-ends can be wired with or without instrumentation.
type Metrics struct {
	queries  [nZoneLabels]atomic.Int64
	refused  [nZoneLabels]atomic.Int64
	nxdomain [nZoneLabels]atomic.Int64

	// Per-transport views of the same query stream: every answered query
	// counts once under its zone label and once under its transport label.
	tQueries [nTransportLabels]atomic.Int64
	tRefused [nTransportLabels]atomic.Int64
	// tErrors counts requests that never decoded to a DNS message — today
	// only the DoH front-end produces these (bad method, media type,
	// base64, size); the datagram paths drop malformed input silently.
	tErrors [nTransportLabels]atomic.Int64

	xfrServed  atomic.Int64
	xfrRefused atomic.Int64
	notifySent atomic.Int64

	// DNS and HTTP record per-request serving latency; quantiles are
	// exported summary-style.
	DNS  *LatencyHistogram
	HTTP *LatencyHistogram
}

// ZoneLabel buckets queries by the feed subtree they address.
type ZoneLabel uint8

// Zone labels.
const (
	ZoneUrbl    ZoneLabel = iota // urbl.<apex> reversed-IP lookups
	ZoneUrwatch                  // urwatch.<apex> domain lookups
	ZoneMeta                     // apex + gen.<apex> zone metadata
	ZoneOther                    // everything else under the apex
	nZoneLabels
)

// String returns the label's Prometheus value.
func (l ZoneLabel) String() string {
	switch l {
	case ZoneUrbl:
		return "urbl"
	case ZoneUrwatch:
		return "urwatch"
	case ZoneMeta:
		return "meta"
	}
	return "other"
}

// TransportLabel buckets queries by the wire transport they arrived over.
type TransportLabel uint8

// Transport labels.
const (
	TransportUDP TransportLabel = iota
	TransportTCP
	TransportDoT
	TransportDoH
	nTransportLabels
)

// String returns the label's Prometheus value.
func (l TransportLabel) String() string {
	switch l {
	case TransportTCP:
		return "tcp"
	case TransportDoT:
		return "dot"
	case TransportDoH:
		return "doh"
	}
	return "udp"
}

// TransportLabelOf maps a dnsio via string ("udp", "tcp", "dot", "doh") onto
// its label; unknown strings count as udp, the datagram default.
func TransportLabelOf(via string) TransportLabel {
	switch via {
	case "tcp":
		return TransportTCP
	case "dot":
		return TransportDoT
	case "doh":
		return TransportDoH
	}
	return TransportUDP
}

// metricsLatencyRange bounds the latency histograms at 100ms — far past any
// in-process serving path; slower samples clamp to the range maximum.
const metricsLatencyRange = 100_000

// NewMetrics builds an instrumentation set with fresh histograms.
func NewMetrics() *Metrics {
	return &Metrics{
		DNS:  NewLatencyHistogram(metricsLatencyRange),
		HTTP: NewLatencyHistogram(metricsLatencyRange),
	}
}

// CountQuery records one answered DNS query by subtree and response code.
func (m *Metrics) CountQuery(zone ZoneLabel, rcode dns.RCode) {
	if m == nil {
		return
	}
	m.queries[zone].Add(1)
	switch rcode {
	case dns.RCodeRefused:
		m.refused[zone].Add(1)
	case dns.RCodeNXDomain:
		m.nxdomain[zone].Add(1)
	}
}

// CountTransport records one answered DNS query by wire transport and
// response code — the second axis of the same query stream CountQuery
// bucketed by zone.
func (m *Metrics) CountTransport(t TransportLabel, rcode dns.RCode) {
	if m == nil {
		return
	}
	m.tQueries[t].Add(1)
	if rcode == dns.RCodeRefused {
		m.tRefused[t].Add(1)
	}
}

// CountTransportError records one request that never decoded to a DNS
// message on the given transport.
func (m *Metrics) CountTransportError(t TransportLabel) {
	if m != nil {
		m.tErrors[t].Add(1)
	}
}

// CountXfr records one zone-transfer attempt.
func (m *Metrics) CountXfr(refused bool) {
	if m == nil {
		return
	}
	if refused {
		m.xfrRefused.Add(1)
	} else {
		m.xfrServed.Add(1)
	}
}

// CountNotify records one outbound NOTIFY.
func (m *Metrics) CountNotify() {
	if m != nil {
		m.notifySent.Add(1)
	}
}

// ObserveDNS records one DNS serving latency.
func (m *Metrics) ObserveDNS(d time.Duration) {
	if m != nil && m.DNS != nil {
		m.DNS.Observe(d)
	}
}

// ObserveHTTP records one HTTP serving latency.
func (m *Metrics) ObserveHTTP(d time.Duration) {
	if m != nil && m.HTTP != nil {
		m.HTTP.Observe(d)
	}
}

// promQuantiles are the exported summary quantiles.
var promQuantiles = []float64{0.5, 0.9, 0.99}

// WriteProm renders the full metric set in Prometheus text exposition
// format: the serving counters, the store's generation and staleness gauges,
// the cache's hit counters, and the latency summaries. store may not be nil;
// cache may be.
func (m *Metrics) WriteProm(w io.Writer, store *Store, cache *ResponseCache, now time.Time) {
	if m == nil {
		// An API wired without counters still exposes the store gauges.
		m = NewMetrics()
	}
	st := store.Staleness(now)
	g := store.Current()

	fmt.Fprintf(w, "# HELP urwatch_dns_queries_total DNS queries answered, by feed subtree and by wire transport.\n")
	fmt.Fprintf(w, "# TYPE urwatch_dns_queries_total counter\n")
	for l := ZoneLabel(0); l < nZoneLabels; l++ {
		fmt.Fprintf(w, "urwatch_dns_queries_total{zone=%q} %d\n", l, m.counter(&m.queries, l))
	}
	for t := TransportLabel(0); t < nTransportLabels; t++ {
		fmt.Fprintf(w, "urwatch_dns_queries_total{transport=%q} %d\n", t, m.tcounter(&m.tQueries, t))
	}
	fmt.Fprintf(w, "# HELP urwatch_dns_refused_total REFUSED answers, by feed subtree and by wire transport.\n")
	fmt.Fprintf(w, "# TYPE urwatch_dns_refused_total counter\n")
	for l := ZoneLabel(0); l < nZoneLabels; l++ {
		fmt.Fprintf(w, "urwatch_dns_refused_total{zone=%q} %d\n", l, m.counter(&m.refused, l))
	}
	for t := TransportLabel(0); t < nTransportLabels; t++ {
		fmt.Fprintf(w, "urwatch_dns_refused_total{transport=%q} %d\n", t, m.tcounter(&m.tRefused, t))
	}
	fmt.Fprintf(w, "# HELP urwatch_dns_transport_errors_total Requests that never decoded to a DNS message, by wire transport.\n")
	fmt.Fprintf(w, "# TYPE urwatch_dns_transport_errors_total counter\n")
	for t := TransportLabel(0); t < nTransportLabels; t++ {
		fmt.Fprintf(w, "urwatch_dns_transport_errors_total{transport=%q} %d\n", t, m.tcounter(&m.tErrors, t))
	}
	fmt.Fprintf(w, "# HELP urwatch_dns_nxdomain_total NXDOMAIN answers, by feed subtree.\n")
	fmt.Fprintf(w, "# TYPE urwatch_dns_nxdomain_total counter\n")
	for l := ZoneLabel(0); l < nZoneLabels; l++ {
		fmt.Fprintf(w, "urwatch_dns_nxdomain_total{zone=%q} %d\n", l, m.counter(&m.nxdomain, l))
	}

	fmt.Fprintf(w, "# HELP urwatch_xfr_total Zone-transfer attempts by outcome.\n")
	fmt.Fprintf(w, "# TYPE urwatch_xfr_total counter\n")
	served, xrefused := int64(0), int64(0)
	if m != nil {
		served, xrefused = m.xfrServed.Load(), m.xfrRefused.Load()
	}
	fmt.Fprintf(w, "urwatch_xfr_total{outcome=\"served\"} %d\n", served)
	fmt.Fprintf(w, "urwatch_xfr_total{outcome=\"refused\"} %d\n", xrefused)
	notified := int64(0)
	if m != nil {
		notified = m.notifySent.Load()
	}
	fmt.Fprintf(w, "# HELP urwatch_notify_sent_total Outbound NOTIFY messages.\n")
	fmt.Fprintf(w, "# TYPE urwatch_notify_sent_total counter\n")
	fmt.Fprintf(w, "urwatch_notify_sent_total %d\n", notified)

	hits, misses := cache.Stats()
	fmt.Fprintf(w, "# HELP urwatch_cache_hits_total Response-cache hits.\n")
	fmt.Fprintf(w, "# TYPE urwatch_cache_hits_total counter\n")
	fmt.Fprintf(w, "urwatch_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# HELP urwatch_cache_misses_total Response-cache misses.\n")
	fmt.Fprintf(w, "# TYPE urwatch_cache_misses_total counter\n")
	fmt.Fprintf(w, "urwatch_cache_misses_total %d\n", misses)
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(w, "# HELP urwatch_cache_hit_ratio Cumulative response-cache hit ratio.\n")
	fmt.Fprintf(w, "# TYPE urwatch_cache_hit_ratio gauge\n")
	fmt.Fprintf(w, "urwatch_cache_hit_ratio %g\n", ratio)

	fmt.Fprintf(w, "# HELP urwatch_generation_seq Sequence number of the served generation.\n")
	fmt.Fprintf(w, "# TYPE urwatch_generation_seq gauge\n")
	fmt.Fprintf(w, "urwatch_generation_seq %d\n", g.Seq)
	fmt.Fprintf(w, "# HELP urwatch_generation_age_seconds Age of the served generation's sweep.\n")
	fmt.Fprintf(w, "# TYPE urwatch_generation_age_seconds gauge\n")
	fmt.Fprintf(w, "urwatch_generation_age_seconds %g\n", st.Age.Seconds())
	fmt.Fprintf(w, "# HELP urwatch_consecutive_sweep_failures Sweep failures since the last publish.\n")
	fmt.Fprintf(w, "# TYPE urwatch_consecutive_sweep_failures gauge\n")
	fmt.Fprintf(w, "urwatch_consecutive_sweep_failures %d\n", st.ConsecutiveFailures)
	fmt.Fprintf(w, "# HELP urwatch_max_staleness_seconds Configured staleness bound (0 = unbounded).\n")
	fmt.Fprintf(w, "# TYPE urwatch_max_staleness_seconds gauge\n")
	fmt.Fprintf(w, "urwatch_max_staleness_seconds %g\n", st.MaxStaleness.Seconds())
	fmt.Fprintf(w, "# HELP urwatch_health_state Staleness health machine state (0=ok 1=degraded 2=stale).\n")
	fmt.Fprintf(w, "# TYPE urwatch_health_state gauge\n")
	fmt.Fprintf(w, "urwatch_health_state %d\n", uint8(st.State))
	fmt.Fprintf(w, "# HELP urwatch_verdicts Verdicts in the served generation.\n")
	fmt.Fprintf(w, "# TYPE urwatch_verdicts gauge\n")
	fmt.Fprintf(w, "urwatch_verdicts %d\n", g.Total())

	m.writeSummary(w, "urwatch_dns_latency_seconds", "DNS serving latency.", m.dnsHist())
	m.writeSummary(w, "urwatch_http_latency_seconds", "HTTP serving latency.", m.httpHist())
}

// dnsHist and httpHist read the histograms nil-receiver-safely.
func (m *Metrics) dnsHist() *LatencyHistogram {
	if m == nil {
		return nil
	}
	return m.DNS
}

func (m *Metrics) httpHist() *LatencyHistogram {
	if m == nil {
		return nil
	}
	return m.HTTP
}

// counter reads one labeled counter, nil-safe.
func (m *Metrics) counter(arr *[nZoneLabels]atomic.Int64, l ZoneLabel) int64 {
	if m == nil {
		return 0
	}
	return arr[l].Load()
}

// tcounter reads one transport-labeled counter, nil-safe.
func (m *Metrics) tcounter(arr *[nTransportLabels]atomic.Int64, l TransportLabel) int64 {
	if m == nil {
		return 0
	}
	return arr[l].Load()
}

// writeSummary renders one histogram as a Prometheus summary: quantile
// gauges plus a sample count.
func (m *Metrics) writeSummary(w io.Writer, name, help string, h *LatencyHistogram) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s summary\n", name)
	for _, q := range promQuantiles {
		var v float64
		if h != nil && h.Count() > 0 {
			v = h.Quantile(q).Seconds()
		}
		fmt.Fprintf(w, "%s{quantile=\"%g\"} %g\n", name, q, v)
	}
	var count int64
	if h != nil {
		count = h.Count()
	}
	fmt.Fprintf(w, "%s_count %d\n", name, count)
}
