package urwatch

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dns"
	"repro/internal/dnsio"
)

// startXfrZone binds a ZoneResponder on real UDP/TCP sockets and returns the
// TCP address transfers dial.
func startXfrZone(t *testing.T, z *ZoneResponder) netip.AddrPort {
	t.Helper()
	srv := dnsio.NewServer(z)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start zone server: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv.TCPAddr()
}

// xfrTestStore builds a store with a frozen-clock staleness policy and a
// chain of generations with realistic churn:
//
//	gen 1: evil.test (malicious), shady.test (suspicious)
//	gen 2: + planted.test (malicious)           — appearance
//	gen 3: shady.test escalates to malicious    — reclassification
//	gen 4: - evil.test, + fresh.test (unknown)  — removal and appearance
func xfrTestStore(t *testing.T, clk Clock) *Store {
	t.Helper()
	s := NewStore()
	s.SetPolicy(StalenessPolicy{
		SweepInterval: 30 * time.Second,
		MaxStaleness:  10 * time.Minute,
		Clock:         clk,
	})
	base := clk()
	seal := func(seq uint64, vs ...*Verdict) *Generation {
		b := NewBuilder()
		for _, v := range vs {
			b.Add(v)
		}
		return b.Seal(seq, base)
	}
	evil := mkVerdict("evil.test", "192.0.2.1", core.CategoryMalicious, "198.51.100.7")
	shady := mkVerdict("shady.test", "192.0.2.2", core.CategoryUnknown, "203.0.113.9")
	planted := mkVerdict("planted.test", "192.0.2.3", core.CategoryMalicious, "198.51.100.44")
	shadyEsc := mkVerdict("shady.test", "192.0.2.2", core.CategoryMalicious, "203.0.113.9")
	fresh := mkVerdict("fresh.test", "192.0.2.4", core.CategoryUnknown, "203.0.113.77")

	s.Publish(seal(1, evil, shady))
	s.Publish(seal(2, evil, shady, planted))
	s.Publish(seal(3, evil, shadyEsc, planted))
	s.Publish(seal(4, shadyEsc, planted, fresh))
	return s
}

func xfrResponder(s *Store) *ZoneResponder {
	return &ZoneResponder{
		Apex:    testApex,
		Store:   s,
		XferACL: MustParseACL("127.0.0.0/8"),
	}
}

func transfer(t *testing.T, server netip.AddrPort, qtype dns.Type, serial uint32) *dnsio.XfrResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := dnsio.Transfer(ctx, server, testApex, qtype, serial)
	if err != nil {
		t.Fatalf("%s transfer: %v", qtype, err)
	}
	return res
}

// TestAXFRServesFullZone: a full transfer over real TCP is SOA-framed,
// carries the apex NS, and lands a mirror on the current serial.
func TestAXFRServesFullZone(t *testing.T) {
	clk := newMovableClock(time.Unix(1_700_000_000, 0))
	s := xfrTestStore(t, clk.Now)
	server := startXfrZone(t, xfrResponder(s))

	res := transfer(t, server, dns.TypeAXFR, 0)
	if res.RCode != dns.RCodeSuccess {
		t.Fatalf("AXFR rcode %s", res.RCode)
	}
	if serial, ok := res.Serial(); !ok || serial != 4 {
		t.Fatalf("AXFR serial = %d (ok=%v), want 4", serial, ok)
	}
	if res.Incremental() {
		t.Fatal("AXFR body classified as incremental")
	}
	sawNS := false
	for _, rr := range res.Records {
		if rr.Type() == dns.TypeNS {
			sawNS = true
		}
	}
	if !sawNS {
		t.Fatal("AXFR body carries no apex NS record")
	}
	m := NewMirror()
	if err := m.Apply(res); err != nil {
		t.Fatalf("apply AXFR: %v", err)
	}
	if m.Serial() != 4 {
		t.Fatalf("mirror serial = %d, want 4", m.Serial())
	}
	// The zone must list both subtrees: domain names and reversed IPs.
	text := m.ZoneText()
	for _, want := range []string{
		string(DomainName("planted.test", testApex)),
		"44.100.51.198.urbl." + string(testApex),
	} {
		if !containsLine(text, want) {
			t.Errorf("zone text missing owner %q", want)
		}
	}
}

func containsLine(text, owner string) bool {
	for _, line := range splitLines(text) {
		if len(line) >= len(owner) && line[:len(owner)] == owner {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// TestIXFRChainReconstruction is the acceptance contract: a secondary that
// AXFRs at generation 1 and then applies a single IXFR spanning three
// generation deltas (1→2→3→4) must hold a zone byte-identical to a fresh
// AXFR of generation 4.
func TestIXFRChainReconstruction(t *testing.T) {
	clk := newMovableClock(time.Unix(1_700_000_000, 0))
	s := NewStore()
	s.SetPolicy(StalenessPolicy{
		SweepInterval: 30 * time.Second,
		MaxStaleness:  10 * time.Minute,
		Clock:         clk.Now,
	})
	base := clk.Now()
	seal := func(seq uint64, vs ...*Verdict) *Generation {
		b := NewBuilder()
		for _, v := range vs {
			b.Add(v)
		}
		return b.Seal(seq, base)
	}
	evil := mkVerdict("evil.test", "192.0.2.1", core.CategoryMalicious, "198.51.100.7")
	shady := mkVerdict("shady.test", "192.0.2.2", core.CategoryUnknown, "203.0.113.9")
	planted := mkVerdict("planted.test", "192.0.2.3", core.CategoryMalicious, "198.51.100.44")
	shadyEsc := mkVerdict("shady.test", "192.0.2.2", core.CategoryMalicious, "203.0.113.9")
	fresh := mkVerdict("fresh.test", "192.0.2.4", core.CategoryUnknown, "203.0.113.77")

	server := startXfrZone(t, xfrResponder(s))

	// Secondary AXFRs at generation 1.
	s.Publish(seal(1, evil, shady))
	mirror := NewMirror()
	if err := mirror.Apply(transfer(t, server, dns.TypeAXFR, 0)); err != nil {
		t.Fatalf("seed AXFR: %v", err)
	}
	if mirror.Serial() != 1 {
		t.Fatalf("seed mirror serial = %d, want 1", mirror.Serial())
	}

	// Primary publishes three more generations.
	s.Publish(seal(2, evil, shady, planted))
	s.Publish(seal(3, evil, shadyEsc, planted))
	s.Publish(seal(4, shadyEsc, planted, fresh))

	// One IXFR spans all three deltas.
	ires := transfer(t, server, dns.TypeIXFR, mirror.Serial())
	if !ires.Incremental() {
		t.Fatalf("IXFR from serial 1 fell back to full body (messages=%d records=%d)",
			ires.Messages, len(ires.Records))
	}
	if err := mirror.Apply(ires); err != nil {
		t.Fatalf("apply IXFR chain: %v", err)
	}
	if mirror.Serial() != 4 {
		t.Fatalf("mirror serial after IXFR = %d, want 4", mirror.Serial())
	}

	// Byte-identity against a fresh full transfer.
	fresh4 := NewMirror()
	if err := fresh4.Apply(transfer(t, server, dns.TypeAXFR, 0)); err != nil {
		t.Fatalf("fresh AXFR: %v", err)
	}
	if got, want := mirror.ZoneText(), fresh4.ZoneText(); got != want {
		t.Fatalf("IXFR-reconstructed zone differs from fresh AXFR:\n--- ixfr\n%s\n--- axfr\n%s", got, want)
	}
}

// TestIXFRUpToDate: a secondary already at the current serial gets the
// single-SOA reply.
func TestIXFRUpToDate(t *testing.T) {
	clk := newMovableClock(time.Unix(1_700_000_000, 0))
	s := xfrTestStore(t, clk.Now)
	server := startXfrZone(t, xfrResponder(s))

	res := transfer(t, server, dns.TypeIXFR, 4)
	if len(res.Records) != 1 {
		t.Fatalf("up-to-date IXFR returned %d records, want 1", len(res.Records))
	}
	if serial, ok := res.Serial(); !ok || serial != 4 {
		t.Fatalf("up-to-date IXFR serial = %d (ok=%v), want 4", serial, ok)
	}
	m := NewMirror()
	if err := m.Apply(transfer(t, server, dns.TypeAXFR, 0)); err != nil {
		t.Fatalf("AXFR: %v", err)
	}
	if err := m.Apply(res); err != nil {
		t.Fatalf("apply up-to-date reply: %v", err)
	}
}

// TestIXFRFallbackToAXFR: a serial that predates the retention window gets a
// full AXFR-style body instead of a delta, and the mirror resyncs from it.
func TestIXFRFallbackToAXFR(t *testing.T) {
	clk := newMovableClock(time.Unix(1_700_000_000, 0))
	s := NewStore()
	s.SetPolicy(StalenessPolicy{
		SweepInterval: 30 * time.Second,
		Retain:        2, // only the last two generations are delta-servable
		Clock:         clk.Now,
	})
	base := clk.Now()
	seal := func(seq uint64, vs ...*Verdict) *Generation {
		b := NewBuilder()
		b.Add(mkVerdict("evil.test", "192.0.2.1", core.CategoryMalicious, "198.51.100.7"))
		for _, v := range vs {
			b.Add(v)
		}
		return b.Seal(seq, base)
	}
	s.Publish(seal(1))
	s.Publish(seal(2, mkVerdict("a.test", "192.0.2.9", core.CategoryUnknown, "203.0.113.1")))
	s.Publish(seal(3, mkVerdict("b.test", "192.0.2.9", core.CategoryUnknown, "203.0.113.2")))
	s.Publish(seal(4, mkVerdict("c.test", "192.0.2.9", core.CategoryUnknown, "203.0.113.3")))

	server := startXfrZone(t, xfrResponder(s))
	res := transfer(t, server, dns.TypeIXFR, 1) // serial 1 fell out of the ring
	if res.Incremental() {
		t.Fatal("IXFR for an evicted serial must fall back to a full body")
	}
	m := NewMirror()
	if err := m.Apply(res); err != nil {
		t.Fatalf("apply fallback body: %v", err)
	}
	if m.Serial() != 4 {
		t.Fatalf("resynced mirror serial = %d, want 4", m.Serial())
	}

	// A retained serial still gets a real delta.
	res = transfer(t, server, dns.TypeIXFR, 3)
	if !res.Incremental() {
		t.Fatal("IXFR for a retained serial must be incremental")
	}
}

// TestXfrACL: transfers are disabled with no allowlist and REFUSED for
// non-matching sources; ordinary queries are unaffected either way.
func TestXfrACL(t *testing.T) {
	clk := newMovableClock(time.Unix(1_700_000_000, 0))
	s := xfrTestStore(t, clk.Now)

	// nil allowlist: transfers disabled outright.
	server := startXfrZone(t, &ZoneResponder{Apex: testApex, Store: s})
	res := transfer(t, server, dns.TypeAXFR, 0)
	if res.RCode != dns.RCodeRefused {
		t.Fatalf("AXFR with nil allowlist: rcode %s, want REFUSED", res.RCode)
	}
	if len(res.Records) != 0 {
		t.Fatalf("refused transfer leaked %d records", len(res.Records))
	}

	// Allowlist that excludes the client: REFUSED too.
	server = startXfrZone(t, &ZoneResponder{
		Apex: testApex, Store: s, XferACL: MustParseACL("10.0.0.0/8"),
	})
	if res := transfer(t, server, dns.TypeAXFR, 0); res.RCode != dns.RCodeRefused {
		t.Fatalf("AXFR from non-allowlisted source: rcode %s, want REFUSED", res.RCode)
	}
	if res := transfer(t, server, dns.TypeIXFR, 1); res.RCode != dns.RCodeRefused {
		t.Fatalf("IXFR from non-allowlisted source: rcode %s, want REFUSED", res.RCode)
	}
	// The same client can still make ordinary queries over the same server.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cli := dnsio.NewClient(&dnsio.NetTransport{})
	reply, err := cli.Query(ctx, server, DomainName("planted.test", testApex), dns.TypeA)
	if err != nil {
		t.Fatalf("ordinary query: %v", err)
	}
	if reply.Header.RCode != dns.RCodeSuccess {
		t.Fatalf("ordinary query rcode %s, want NOERROR", reply.Header.RCode)
	}
}

// TestXfrOverUDP: AXFR is TCP-only and REFUSED over UDP even for allowlisted
// clients; an allowlisted UDP IXFR gets the single-SOA steer to TCP.
func TestXfrOverUDP(t *testing.T) {
	clk := newMovableClock(time.Unix(1_700_000_000, 0))
	z := xfrResponder(xfrTestStore(t, clk.Now))
	src := netip.MustParseAddr("127.0.0.1")

	q := dns.NewQuery(9, testApex, dns.TypeAXFR)
	if r := z.HandleQuery(src, q); r.Header.RCode != dns.RCodeRefused {
		t.Fatalf("UDP AXFR rcode %s, want REFUSED", r.Header.RCode)
	}
	q = dns.NewQuery(10, testApex, dns.TypeIXFR)
	r := z.HandleQuery(src, q)
	if r.Header.RCode != dns.RCodeSuccess || len(r.Answers) != 1 {
		t.Fatalf("UDP IXFR: rcode %s answers %d, want NOERROR with single SOA", r.Header.RCode, len(r.Answers))
	}
	if soa, ok := r.Answers[0].Data.(*dns.SOA); !ok || soa.Serial != 4 {
		t.Fatalf("UDP IXFR answer = %v, want current SOA serial 4", r.Answers[0])
	}
	// Non-allowlisted UDP transfer questions are refused.
	if r := z.HandleQuery(netip.MustParseAddr("203.0.113.5"), dns.NewQuery(11, testApex, dns.TypeIXFR)); r.Header.RCode != dns.RCodeRefused {
		t.Fatalf("non-allowlisted UDP IXFR rcode %s, want REFUSED", r.Header.RCode)
	}
}

// TestNotifyRoundTrip: dnsio.Notify reaches a served zone and is acked for
// allowlisted sources; the direct handler refuses others.
func TestNotifyRoundTrip(t *testing.T) {
	clk := newMovableClock(time.Unix(1_700_000_000, 0))
	s := xfrTestStore(t, clk.Now)
	z := xfrResponder(s)
	srv := dnsio.NewServer(z)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := dnsio.Notify(ctx, srv.UDPAddr(), testApex, 4); err != nil {
		t.Fatalf("notify: %v", err)
	}

	// Direct handler checks for both ACL outcomes.
	nq := &dns.Message{
		Header:    dns.Header{ID: 7, OpCode: dns.OpNotify, Authoritative: true},
		Questions: []dns.Question{{Name: testApex, Type: dns.TypeSOA, Class: dns.ClassINET}},
	}
	if r := z.HandleQuery(netip.MustParseAddr("127.0.0.1"), nq); r.Header.RCode != dns.RCodeSuccess {
		t.Fatalf("allowlisted NOTIFY rcode %s, want NOERROR ack", r.Header.RCode)
	}
	if r := z.HandleQuery(netip.MustParseAddr("203.0.113.5"), nq); r.Header.RCode != dns.RCodeRefused {
		t.Fatalf("non-allowlisted NOTIFY rcode %s, want REFUSED", r.Header.RCode)
	}
}

// TestACLParse covers the allowlist parser and matcher.
func TestACLParse(t *testing.T) {
	a, err := ParseACL("127.0.0.0/8, 10.2.3.4 ,::1")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for addr, want := range map[string]bool{
		"127.0.0.1":        true,
		"127.255.255.254":  true,
		"10.2.3.4":         true,
		"10.2.3.5":         false,
		"::1":              true,
		"::ffff:127.0.0.1": true, // 4-in-6 mapped unwraps to the v4 prefix
		"192.0.2.1":        false,
	} {
		if got := a.Contains(netip.MustParseAddr(addr)); got != want {
			t.Errorf("Contains(%s) = %v, want %v", addr, got, want)
		}
	}
	if nilACL, err := ParseACL("  "); err != nil || nilACL != nil {
		t.Fatalf("blank ACL = %v, %v; want nil, nil", nilACL, err)
	}
	var none *ACL
	if none.Contains(netip.MustParseAddr("127.0.0.1")) {
		t.Fatal("nil ACL must contain nothing")
	}
	if _, err := ParseACL("not-an-addr"); err == nil {
		t.Fatal("bad entry must error")
	}
}
