package urwatch

import (
	"fmt"
	"time"
)

// Staleness is the serving side of the robustness story. The feed's
// countermeasure value collapses the moment the daemon goes dark — a blocked
// UR C2 flow resumes as soon as the blocklist blinks — so failed sweeps must
// never un-publish (stale-on-error), and consumers must be able to *tell*
// they are reading old data. The store therefore tracks two degradation
// signals:
//
//   - consecutive sweep failures — the watcher reports every failed sweep,
//     and a successful publish resets the streak; and
//   - generation age — how long ago the served generation's sweep completed,
//     which also catches the silent failure mode where sweeps hang forever
//     without ever erroring.
//
// Both fold into a three-state health machine:
//
//	ok        fresh generation, no failure streak
//	degraded  >= DegradedAfter consecutive sweep failures, but the served
//	          generation is still within MaxStaleness
//	stale     the served generation is older than MaxStaleness (or the
//	          store still serves the empty initial generation)
//
// The state is served on /v1/health, stamped on every HTTP response as
// X-URWatch-Staleness / X-URWatch-Health headers, exported on /metrics, and
// folded into the DNSBL zone's SOA expiry so standards-compliant secondaries
// age the zone out on their own when the primary stops refreshing.

// HealthState is the degradation level of the serving store.
type HealthState uint8

// Health states, ordered by severity.
const (
	StateOK HealthState = iota
	StateDegraded
	StateStale
)

// String returns the state's wire label (the /v1/health "status" value).
func (s HealthState) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateDegraded:
		return "degraded"
	case StateStale:
		return "stale"
	}
	return fmt.Sprintf("state%d", uint8(s))
}

// StalenessPolicy configures the health machine and the zone-mirroring
// timers. The zero policy (an unconfigured store) preserves the pre-policy
// behaviour: never stale, degraded only while sweeps fail, and the DNSBL
// SOA's classic static timers.
type StalenessPolicy struct {
	// SweepInterval is the watcher's configured pause between sweeps. It
	// seeds the SOA refresh/retry timers so mirrors poll at the cadence new
	// generations actually appear.
	SweepInterval time.Duration
	// MaxStaleness is how old the served generation may grow before the
	// store reports stale and the SOA expire timer bottoms out. Zero means
	// no staleness bound.
	MaxStaleness time.Duration
	// DegradedAfter is the consecutive-sweep-failure count that flips ok to
	// degraded. Values < 1 behave as 1.
	DegradedAfter int
	// Retain bounds the generation ring kept for IXFR serving: a secondary
	// whose serial is within the last Retain-1 publishes gets an incremental
	// delta; older serials fall back to a full AXFR. Values < 2 select
	// DefaultRetainGenerations.
	Retain int
	// Clock stamps staleness computations; nil uses time.Now. Injected by
	// tests to drive the state machine deterministically.
	Clock Clock
}

// DefaultRetainGenerations is the IXFR window when the policy does not set
// one: deltas are served for secondaries at most this many generations back.
const DefaultRetainGenerations = 8

// retain returns the effective generation-ring bound.
func (p *StalenessPolicy) retain() int {
	if p == nil || p.Retain < 2 {
		return DefaultRetainGenerations
	}
	return p.Retain
}

// degradedAfter returns the effective failure threshold.
func (p *StalenessPolicy) degradedAfter() int {
	if p == nil || p.DegradedAfter < 1 {
		return 1
	}
	return p.DegradedAfter
}

// now reads the policy clock (time.Now when unset).
func (p *StalenessPolicy) now() time.Time {
	if p == nil || p.Clock == nil {
		return time.Now()
	}
	return p.Clock()
}

// Staleness is a point-in-time health reading of a store.
type Staleness struct {
	// State is the folded health state.
	State HealthState
	// Generation is the served generation's sequence number.
	Generation uint64
	// Age is how long ago the served generation's sweep completed. Zero
	// when the store still serves the (never-swept) initial generation.
	Age time.Duration
	// ConsecutiveFailures counts sweep failures since the last publish.
	ConsecutiveFailures int
	// LastError is the most recent sweep failure ("" after a success).
	LastError string
	// MaxStaleness echoes the policy bound (0 when unbounded).
	MaxStaleness time.Duration
}

// HeaderValue renders the reading for the X-URWatch-Staleness header:
// machine-parseable key=value pairs, age first.
func (s Staleness) HeaderValue() string {
	return fmt.Sprintf("age=%.3fs;state=%s;gen=%d;failures=%d",
		s.Age.Seconds(), s.State, s.Generation, s.ConsecutiveFailures)
}

// SerialForSeq maps a generation sequence number onto the 32-bit SOA serial
// space. The mapping is plain truncation: generations advance by one, so
// consecutive serials stay well inside RFC 1982's 2^31-1 addition bound and
// serial comparisons remain correct across the uint32 wrap — provided
// consumers compare with SerialLess/SerialEqSeq rather than plain <.
func SerialForSeq(seq uint64) uint32 { return uint32(seq) }

// SerialLess reports a < b under RFC 1982 serial-number arithmetic: the
// comparison that stays correct when the 32-bit serial space wraps.
func SerialLess(a, b uint32) bool {
	return (a < b && b-a < 1<<31) || (a > b && a-b > 1<<31)
}
