package urwatch

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dns"
)

const testApex = dns.Name("feed.test")

func newTestResponder(s *Store) *ZoneResponder {
	return &ZoneResponder{Apex: testApex, Store: s, Cache: NewResponseCache(0)}
}

func testStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	s.Publish(sealGen(t, 1,
		mkVerdict("evil.test", "192.0.2.1", core.CategoryMalicious, "198.51.100.7"),
		mkVerdict("evil.test", "192.0.2.2", core.CategoryCorrect, "198.51.100.8"),
		mkVerdict("shady.test", "192.0.2.1", core.CategoryUnknown, "203.0.113.9"),
	))
	return s
}

func ask(z *ZoneResponder, name dns.Name, t dns.Type) *dns.Message {
	q := dns.NewQuery(42, name, t)
	return z.HandleQuery(netip.MustParseAddr("10.9.9.9"), q)
}

func firstTXT(t *testing.T, m *dns.Message) string {
	t.Helper()
	if len(m.Answers) == 0 {
		t.Fatal("no TXT answers")
	}
	txt, ok := m.Answers[0].Data.(*dns.TXT)
	if !ok || len(txt.Strings) == 0 {
		t.Fatalf("first answer is not TXT: %v", m.Answers[0])
	}
	return txt.Strings[0]
}

func TestDNSBLDomainLookup(t *testing.T) {
	z := newTestResponder(testStore(t))

	resp := ask(z, DomainName("evil.test", testApex), dns.TypeA)
	if resp.Header.RCode != dns.RCodeSuccess || !resp.Header.Authoritative {
		t.Fatalf("rcode=%s aa=%v", resp.Header.RCode, resp.Header.Authoritative)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	a, ok := resp.Answers[0].Data.(*dns.A)
	if !ok {
		t.Fatalf("answer is %T", resp.Answers[0].Data)
	}
	// Worst of {malicious, correct} is malicious -> 127.0.0.2.
	if want := netip.MustParseAddr("127.0.0.2"); a.Addr != want {
		t.Errorf("A = %s, want %s", a.Addr, want)
	}

	txtResp := ask(z, DomainName("evil.test", testApex), dns.TypeTXT)
	head := firstTXT(t, txtResp)
	if !strings.Contains(head, "gen=1") || !strings.Contains(head, "listed=2") ||
		!strings.Contains(head, "worst="+core.CategoryMalicious.String()) {
		t.Errorf("TXT header = %q", head)
	}
	// One evidence string per verdict follows the header.
	if len(txtResp.Answers) != 3 {
		t.Errorf("TXT answers = %d, want 3 (header + 2 evidence)", len(txtResp.Answers))
	}
}

func TestDNSBLReversedIP(t *testing.T) {
	z := newTestResponder(testStore(t))
	name, ok := ReverseIPName(netip.MustParseAddr("198.51.100.7"), testApex)
	if !ok {
		t.Fatal("ReverseIPName failed")
	}
	if !strings.HasPrefix(string(name), "7.100.51.198.urbl.") {
		t.Fatalf("reversed name = %s", name)
	}
	resp := ask(z, name, dns.TypeA)
	if len(resp.Answers) != 1 {
		t.Fatalf("rcode=%s answers=%d", resp.Header.RCode, len(resp.Answers))
	}
	if a := resp.Answers[0].Data.(*dns.A); a.Addr != netip.MustParseAddr("127.0.0.2") {
		t.Errorf("A = %s, want 127.0.0.2 (malicious)", a.Addr)
	}
	// The unknown-category verdict maps to the suspicious code (3).
	name2, _ := ReverseIPName(netip.MustParseAddr("203.0.113.9"), testApex)
	resp2 := ask(z, name2, dns.TypeA)
	if a := resp2.Answers[0].Data.(*dns.A); a.Addr != netip.MustParseAddr("127.0.0.3") {
		t.Errorf("A = %s, want 127.0.0.3 (suspicious)", a.Addr)
	}
}

func TestDNSBLNegativeAnswers(t *testing.T) {
	z := newTestResponder(testStore(t))

	resp := ask(z, DomainName("clean.test", testApex), dns.TypeA)
	if resp.Header.RCode != dns.RCodeNXDomain {
		t.Errorf("unlisted domain rcode = %s, want NXDOMAIN", resp.Header.RCode)
	}
	if len(resp.Authority) != 1 {
		t.Fatalf("authority = %d, want SOA", len(resp.Authority))
	}
	soa, ok := resp.Authority[0].Data.(*dns.SOA)
	if !ok {
		t.Fatalf("authority is %T", resp.Authority[0].Data)
	}
	if soa.Serial != 1 {
		t.Errorf("SOA serial = %d, want generation 1", soa.Serial)
	}

	out := ask(z, "somewhere.else.test", dns.TypeA)
	if out.Header.RCode != dns.RCodeRefused {
		t.Errorf("out-of-zone rcode = %s, want REFUSED", out.Header.RCode)
	}

	empty := z.HandleQuery(netip.MustParseAddr("10.9.9.9"), &dns.Message{})
	if empty.Header.RCode != dns.RCodeFormat {
		t.Errorf("no-question rcode = %s, want FORMERR", empty.Header.RCode)
	}
}

func TestDNSBLGenMarker(t *testing.T) {
	z := newTestResponder(testStore(t))
	resp := ask(z, "gen."+testApex, dns.TypeTXT)
	head := firstTXT(t, resp)
	if !strings.Contains(head, "gen=1") || !strings.Contains(head, "total=3") {
		t.Errorf("gen TXT = %q", head)
	}
}

func TestDNSBLRateLimitRefuses(t *testing.T) {
	clk := newVirtualClock()
	s := testStore(t)
	z := newTestResponder(s)
	z.Limiter = NewRateLimiter(1, 1, clk.read)

	name := DomainName("evil.test", testApex)
	if resp := ask(z, name, dns.TypeA); resp.Header.RCode != dns.RCodeSuccess {
		t.Fatalf("first query rcode = %s", resp.Header.RCode)
	}
	if resp := ask(z, name, dns.TypeA); resp.Header.RCode != dns.RCodeRefused {
		t.Errorf("second query rcode = %s, want REFUSED", resp.Header.RCode)
	}
	clk.advance(time.Second)
	if resp := ask(z, name, dns.TypeA); resp.Header.RCode != dns.RCodeSuccess {
		t.Errorf("post-refill query rcode = %s", resp.Header.RCode)
	}
}

func TestDNSBLCacheInvalidatesOnSwap(t *testing.T) {
	s := testStore(t)
	z := newTestResponder(s)
	name := DomainName("evil.test", testApex)

	ask(z, name, dns.TypeA)
	ask(z, name, dns.TypeA)
	if hits, _ := z.Cache.Stats(); hits == 0 {
		t.Fatal("second identical query did not hit the cache")
	}

	// Generation 2 drops evil.test entirely; the cached listing must not
	// survive the swap.
	s.Publish(sealGen(t, 2,
		mkVerdict("shady.test", "192.0.2.1", core.CategoryUnknown, "203.0.113.9")))
	resp := ask(z, name, dns.TypeA)
	if resp.Header.RCode != dns.RCodeNXDomain {
		t.Errorf("post-swap rcode = %s, want NXDOMAIN (stale cache served?)", resp.Header.RCode)
	}
	if soa := resp.Authority[0].Data.(*dns.SOA); soa.Serial != 2 {
		t.Errorf("post-swap SOA serial = %d, want 2", soa.Serial)
	}
}
