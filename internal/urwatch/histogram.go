package urwatch

import (
	"sync/atomic"
	"time"
)

// LatencyHistogram is a fixed-resolution concurrent latency recorder used by
// the serving benchmarks: microsecond-wide buckets, lock-free Observe, and
// quantile readout without retaining per-sample state. Storing every sample
// of a multi-million-iteration RunParallel bench would cost hundreds of
// megabytes; a 1µs-bucket histogram answers p99 to the same precision the
// gate needs in a few hundred kilobytes.
type LatencyHistogram struct {
	buckets  []atomic.Int64 // buckets[i] counts samples in [i µs, i+1 µs)
	overflow atomic.Int64   // samples past the last bucket
	count    atomic.Int64
}

// NewLatencyHistogram tracks latencies up to maxMicros microseconds;
// larger samples land in the overflow bucket and report as the maximum.
func NewLatencyHistogram(maxMicros int) *LatencyHistogram {
	if maxMicros < 1 {
		maxMicros = 1
	}
	return &LatencyHistogram{buckets: make([]atomic.Int64, maxMicros)}
}

// Observe records one sample.
func (h *LatencyHistogram) Observe(d time.Duration) {
	us := int(d.Microseconds())
	if us < 0 {
		us = 0
	}
	if us >= len(h.buckets) {
		h.overflow.Add(1)
	} else {
		h.buckets[us].Add(1)
	}
	h.count.Add(1)
}

// Count returns the number of samples observed.
func (h *LatencyHistogram) Count() int64 { return h.count.Load() }

// Quantile returns the q-th quantile (0 < q <= 1) with 1µs resolution,
// reading each sample as the upper edge of its bucket so the estimate is
// conservative. Samples past the histogram's range report as the range
// maximum.
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return time.Duration(i+1) * time.Microsecond
		}
	}
	return time.Duration(len(h.buckets)) * time.Microsecond
}
