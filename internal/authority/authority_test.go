package authority

import (
	"net/netip"
	"testing"

	"repro/internal/dns"
	"repro/internal/zone"
)

func tldServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer()
	com, err := zone.Parse("com", `
com 3600 IN SOA a.gtld.net hostmaster.gtld.net 1 7200 3600 1209600 300
com 3600 IN NS a.gtld.net
example.com 3600 IN NS ns1.hoster.net
example.com 3600 IN NS ns2.hoster.net
delegated.com 3600 IN NS ns.other.net
glue.com 3600 IN NS ns1.glue.com
ns1.glue.com 3600 IN A 192.0.2.55
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddZone(com); err != nil {
		t.Fatal(err)
	}
	return s
}

func hosterServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer()
	z, err := zone.Parse("example.com", `
example.com 3600 IN SOA ns1.hoster.net hostmaster.hoster.net 1 7200 3600 1209600 300
example.com 3600 IN NS ns1.hoster.net
example.com 300 IN A 203.0.113.10
www.example.com 300 IN CNAME example.com
alias.example.com 300 IN CNAME www.other.org
loop1.example.com 300 IN CNAME loop2.example.com
loop2.example.com 300 IN CNAME loop1.example.com
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddZone(z); err != nil {
		t.Fatal(err)
	}
	return s
}

func query(name dns.Name, t dns.Type) *dns.Message {
	return dns.NewQuery(42, name, t)
}

var testSrc = netip.MustParseAddr("198.51.100.77")

func TestAuthoritativeAnswer(t *testing.T) {
	s := hosterServer(t)
	r := s.HandleQuery(testSrc, query("example.com", dns.TypeA))
	if r.Header.RCode != dns.RCodeSuccess || !r.Header.Authoritative {
		t.Fatalf("header: %+v", r.Header)
	}
	if len(r.AnswersOfType(dns.TypeA)) != 1 {
		t.Errorf("answers: %v", r.Answers)
	}
	if s.Queries() != 1 {
		t.Errorf("query counter = %d", s.Queries())
	}
}

func TestCNAMEChaseInZone(t *testing.T) {
	s := hosterServer(t)
	r := s.HandleQuery(testSrc, query("www.example.com", dns.TypeA))
	if len(r.Answers) != 2 {
		t.Fatalf("expected CNAME + A, got %v", r.Answers)
	}
	if r.Answers[0].Type() != dns.TypeCNAME || r.Answers[1].Type() != dns.TypeA {
		t.Errorf("chain order wrong: %v", r.Answers)
	}
}

func TestCNAMEToExternalTarget(t *testing.T) {
	s := hosterServer(t)
	r := s.HandleQuery(testSrc, query("alias.example.com", dns.TypeA))
	// Server cannot chase outside its zones: answer carries only the CNAME.
	if len(r.Answers) != 1 || r.Answers[0].Type() != dns.TypeCNAME {
		t.Errorf("answers: %v", r.Answers)
	}
}

func TestCNAMELoopServFail(t *testing.T) {
	s := hosterServer(t)
	r := s.HandleQuery(testSrc, query("loop1.example.com", dns.TypeA))
	if r.Header.RCode != dns.RCodeServFail {
		t.Errorf("rcode = %v, want SERVFAIL", r.Header.RCode)
	}
}

func TestNXDomainWithSOA(t *testing.T) {
	s := hosterServer(t)
	r := s.HandleQuery(testSrc, query("missing.example.com", dns.TypeA))
	if r.Header.RCode != dns.RCodeNXDomain {
		t.Fatalf("rcode = %v", r.Header.RCode)
	}
	if len(r.Authority) != 1 || r.Authority[0].Type() != dns.TypeSOA {
		t.Errorf("authority: %v", r.Authority)
	}
}

func TestNoDataWithSOA(t *testing.T) {
	s := hosterServer(t)
	r := s.HandleQuery(testSrc, query("example.com", dns.TypeMX))
	if r.Header.RCode != dns.RCodeSuccess || len(r.Answers) != 0 {
		t.Fatalf("unexpected: %v %v", r.Header.RCode, r.Answers)
	}
	if len(r.Authority) != 1 || r.Authority[0].Type() != dns.TypeSOA {
		t.Errorf("authority: %v", r.Authority)
	}
}

func TestReferral(t *testing.T) {
	s := tldServer(t)
	r := s.HandleQuery(testSrc, query("www.example.com", dns.TypeA))
	if r.Header.Authoritative {
		t.Error("referral must not set AA")
	}
	if len(r.Answers) != 0 {
		t.Errorf("referral answers: %v", r.Answers)
	}
	if len(r.Authority) != 2 {
		t.Fatalf("authority: %v", r.Authority)
	}
	if r.Authority[0].Type() != dns.TypeNS {
		t.Errorf("authority type: %v", r.Authority[0])
	}
}

func TestReferralGlue(t *testing.T) {
	s := tldServer(t)
	r := s.HandleQuery(testSrc, query("host.glue.com", dns.TypeA))
	if len(r.Authority) != 1 {
		t.Fatalf("authority: %v", r.Authority)
	}
	if len(r.Additional) != 1 || r.Additional[0].Data.(*dns.A).Addr.String() != "192.0.2.55" {
		t.Errorf("glue: %v", r.Additional)
	}
}

func TestRefusedOutsideZones(t *testing.T) {
	s := hosterServer(t)
	r := s.HandleQuery(testSrc, query("unrelated.org", dns.TypeA))
	if r.Header.RCode != dns.RCodeRefused {
		t.Errorf("rcode = %v, want REFUSED", r.Header.RCode)
	}
}

func TestFallbackProtectiveRecords(t *testing.T) {
	s := hosterServer(t)
	protectiveIP := netip.MustParseAddr("203.0.113.200")
	s.SetFallback(func(_ netip.Addr, q *dns.Message) *dns.Message {
		if q.Question().Type != dns.TypeA {
			return nil
		}
		r := q.Reply()
		r.Header.Authoritative = true
		r.Answers = append(r.Answers, dns.RR{
			Name: q.Question().Name, Class: dns.ClassINET, TTL: 60,
			Data: &dns.A{Addr: protectiveIP},
		})
		return r
	})
	r := s.HandleQuery(testSrc, query("unhosted.org", dns.TypeA))
	if len(r.Answers) != 1 || r.Answers[0].Data.(*dns.A).Addr != protectiveIP {
		t.Errorf("protective answer: %v", r.Answers)
	}
	// Fallback returning nil degrades to REFUSED.
	r = s.HandleQuery(testSrc, query("unhosted.org", dns.TypeTXT))
	if r.Header.RCode != dns.RCodeRefused {
		t.Errorf("rcode = %v", r.Header.RCode)
	}
}

func TestLongestZoneMatchWins(t *testing.T) {
	s := NewServer()
	parent := zone.New("example.com")
	parent.MustAddRR("example.com 60 IN A 192.0.2.1")
	child := zone.New("sub.example.com")
	child.MustAddRR("sub.example.com 60 IN A 192.0.2.2")
	if err := s.AddZone(parent); err != nil {
		t.Fatal(err)
	}
	if err := s.AddZone(child); err != nil {
		t.Fatal(err)
	}
	r := s.HandleQuery(testSrc, query("sub.example.com", dns.TypeA))
	if r.Answers[0].Data.(*dns.A).Addr.String() != "192.0.2.2" {
		t.Errorf("child zone not preferred: %v", r.Answers)
	}
}

func TestDuplicateZoneRejected(t *testing.T) {
	s := NewServer()
	if err := s.AddZone(zone.New("example.com")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddZone(zone.New("example.com")); err == nil {
		t.Error("duplicate origin accepted")
	}
	if s.ZoneCount() != 1 {
		t.Errorf("ZoneCount = %d", s.ZoneCount())
	}
	s.RemoveZone("example.com")
	if s.HasZone("example.com") {
		t.Error("zone still present after RemoveZone")
	}
	if err := s.AddZone(zone.New("example.com")); err != nil {
		t.Errorf("re-add after remove failed: %v", err)
	}
}

func TestNotImpAndRefusedClasses(t *testing.T) {
	s := hosterServer(t)
	q := query("example.com", dns.TypeA)
	q.Header.OpCode = dns.OpUpdate
	if r := s.HandleQuery(testSrc, q); r.Header.RCode != dns.RCodeNotImp {
		t.Errorf("update rcode = %v", r.Header.RCode)
	}
	q2 := query("example.com", dns.TypeA)
	q2.Questions[0].Class = dns.ClassCH
	if r := s.HandleQuery(testSrc, q2); r.Header.RCode != dns.RCodeRefused {
		t.Errorf("CH rcode = %v", r.Header.RCode)
	}
	q3 := dns.NewQuery(9, "example.com", dns.TypeA)
	q3.Questions = nil
	if r := s.HandleQuery(testSrc, q3); r.Header.RCode != dns.RCodeNotImp {
		t.Errorf("no-question rcode = %v", r.Header.RCode)
	}
}
