// Package authority implements the authoritative nameserver engine used by
// every simulated hosting-provider nameserver, TLD server, and the root. It
// turns zone.Zone lookups into complete DNS responses: authoritative answers
// with CNAME chasing, referrals with glue, NXDOMAIN/NoData with SOA, and a
// pluggable fallback for queries about domains the server does not host —
// which is exactly where hosting providers' "protective records" live.
package authority

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"

	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/zone"
)

// maxCNAMEChain bounds in-server CNAME chasing.
const maxCNAMEChain = 8

// Fallback produces a response for a query whose name matches no hosted
// zone. Returning nil falls through to REFUSED.
type Fallback func(src netip.Addr, q *dns.Message) *dns.Message

// Server is an authoritative DNS server over a set of zones.
type Server struct {
	mu    sync.RWMutex
	zones map[dns.Name]*zone.Zone

	// fallback handles queries outside all hosted zones (provider protective
	// behaviour); nil means plain REFUSED.
	fallback Fallback

	queries atomic.Int64
}

// NewServer creates an empty authoritative server.
func NewServer() *Server {
	return &Server{zones: make(map[dns.Name]*zone.Zone)}
}

// SetFallback installs the out-of-zone query handler.
func (s *Server) SetFallback(f Fallback) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fallback = f
}

// AddZone attaches a zone. A server can hold at most one zone per origin;
// this models real provider behaviour where a nameserver set is "exhausted"
// for a domain once it serves a zone of that name (the Amazon duplicate-zone
// mechanics in Appendix C).
func (s *Server) AddZone(z *zone.Zone) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.zones[z.Origin()]; ok {
		return fmt.Errorf("authority: zone %s already served", z.Origin().String())
	}
	s.zones[z.Origin()] = z
	return nil
}

// RemoveZone detaches the zone with the given origin.
func (s *Server) RemoveZone(origin dns.Name) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.zones, origin)
}

// Zone returns the served zone with the given origin, if any.
func (s *Server) Zone(origin dns.Name) (*zone.Zone, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	z, ok := s.zones[origin]
	return z, ok
}

// HasZone reports whether the server hosts a zone with the given origin.
func (s *Server) HasZone(origin dns.Name) bool {
	_, ok := s.Zone(origin)
	return ok
}

// ZoneCount returns the number of zones served.
func (s *Server) ZoneCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.zones)
}

// Queries returns the number of queries handled.
func (s *Server) Queries() int64 { return s.queries.Load() }

// FindZone returns the zone that would serve a lookup for name (longest
// origin match) — exposed so provider-level wrappers can apply per-zone
// behaviours like geo-distributed answers.
func (s *Server) FindZone(name dns.Name) (*zone.Zone, bool) {
	z := s.findZone(name)
	return z, z != nil
}

// findZone returns the zone with the longest origin matching name. Walking
// the name's ancestor chain keeps the lookup O(labels) regardless of how
// many zones the server hosts — fleet-sync providers serve thousands.
func (s *Server) findZone(name dns.Name) *zone.Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for n := name; ; n = n.Parent() {
		if z, ok := s.zones[n]; ok {
			return z
		}
		if n == dns.Root {
			return nil
		}
	}
}

// HandleQuery implements dnsio.Responder.
func (s *Server) HandleQuery(src netip.Addr, q *dns.Message) *dns.Message {
	s.queries.Add(1)
	if q.Header.OpCode != dns.OpQuery || len(q.Questions) != 1 {
		r := q.Reply()
		r.Header.RCode = dns.RCodeNotImp
		return r
	}
	question := q.Question()
	if question.Class != dns.ClassINET && question.Class != dns.ClassANY {
		r := q.Reply()
		r.Header.RCode = dns.RCodeRefused
		return r
	}

	z := s.findZone(question.Name)
	if z == nil {
		s.mu.RLock()
		fb := s.fallback
		s.mu.RUnlock()
		if fb != nil {
			if r := fb(src, q); r != nil {
				return r
			}
		}
		r := q.Reply()
		r.Header.RCode = dns.RCodeRefused
		return r
	}
	return s.answerFromZone(z, q)
}

func (s *Server) answerFromZone(z *zone.Zone, q *dns.Message) *dns.Message {
	r := q.Reply()
	question := q.Question()
	name, qtype := question.Name, question.Type

	for hop := 0; hop < maxCNAMEChain; hop++ {
		rrs, res := z.Lookup(name, qtype)
		switch res {
		case zone.Hit:
			r.Header.Authoritative = true
			r.Answers = append(r.Answers, rrs...)
			return r
		case zone.CNAMEHit:
			r.Header.Authoritative = true
			r.Answers = append(r.Answers, rrs...)
			target := rrs[0].Data.(*dns.CNAME).Target
			// Continue within this zone, or hop to a sibling zone we also
			// serve; otherwise the client must chase externally.
			if target.IsSubdomainOf(z.Origin()) {
				name = target
				continue
			}
			if other := s.findZone(target); other != nil {
				z = other
				name = target
				continue
			}
			return r
		case zone.Delegation:
			r.Authority = append(r.Authority, rrs...)
			s.attachGlue(r, rrs)
			return r
		case zone.NXDomain:
			r.Header.Authoritative = true
			r.Header.RCode = dns.RCodeNXDomain
			s.attachSOA(r, z)
			return r
		case zone.NoData:
			r.Header.Authoritative = true
			s.attachSOA(r, z)
			return r
		default: // OutOfZone mid-chase: answer what we have.
			return r
		}
	}
	r.Header.RCode = dns.RCodeServFail // CNAME loop
	return r
}

// attachSOA adds the zone's SOA to the authority section for negative
// responses, as caches require.
func (s *Server) attachSOA(r *dns.Message, z *zone.Zone) {
	if soa, ok := z.SOA(); ok {
		r.Authority = append(r.Authority, soa)
	}
}

// attachGlue adds A records for in-bailiwick NS targets to the additional
// section, searching every zone the server hosts. Glue often lives below the
// delegation cut, so this uses the raw RRset accessor rather than Lookup.
func (s *Server) attachGlue(r *dns.Message, nsSet []dns.RR) {
	for _, rr := range nsSet {
		ns, ok := rr.Data.(*dns.NS)
		if !ok {
			continue
		}
		if z := s.findZone(ns.Host); z != nil {
			if glue := z.RRset(ns.Host, dns.TypeA); len(glue) > 0 {
				r.Additional = append(r.Additional, glue...)
			}
		}
	}
}

var _ dnsio.Responder = (*Server)(nil)
