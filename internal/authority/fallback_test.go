package authority

import (
	"net/netip"
	"testing"

	"repro/internal/dns"
	"repro/internal/zone"
)

// TestFindZoneExported covers the wrapper used by provider-level responders.
func TestFindZoneExported(t *testing.T) {
	s := NewServer()
	z := zone.New("example.com")
	z.MustAddRR("example.com 60 IN A 192.0.2.1")
	if err := s.AddZone(z); err != nil {
		t.Fatal(err)
	}
	got, ok := s.FindZone("www.example.com")
	if !ok || got != z {
		t.Errorf("FindZone = %v %v", got, ok)
	}
	if _, ok := s.FindZone("other.org"); ok {
		t.Error("FindZone matched unrelated name")
	}
	// Longest match against nested zones.
	child := zone.New("sub.example.com")
	child.MustAddRR("sub.example.com 60 IN A 192.0.2.2")
	if err := s.AddZone(child); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.FindZone("x.sub.example.com"); got != child {
		t.Error("longest-match zone not preferred")
	}
	if got, _ := s.FindZone("example.com"); got != z {
		t.Error("parent zone lost")
	}
}

// TestCNAMEChaseAcrossZonesOnSameServer: a CNAME whose target lives in a
// sibling zone hosted by the same server is chased in-server.
func TestCNAMEChaseAcrossZonesOnSameServer(t *testing.T) {
	s := NewServer()
	a := zone.New("a.test")
	a.MustAddRR("www.a.test 60 IN CNAME target.b.test")
	b := zone.New("b.test")
	b.MustAddRR("target.b.test 60 IN A 192.0.2.9")
	if err := s.AddZone(a); err != nil {
		t.Fatal(err)
	}
	if err := s.AddZone(b); err != nil {
		t.Fatal(err)
	}
	r := s.HandleQuery(netip.MustParseAddr("10.0.0.1"), dns.NewQuery(1, "www.a.test", dns.TypeA))
	if len(r.Answers) != 2 {
		t.Fatalf("answers: %v", r.Answers)
	}
	if r.Answers[1].Data.(*dns.A).Addr.String() != "192.0.2.9" {
		t.Errorf("chased answer: %v", r.Answers[1])
	}
}

// TestQueriesCounterAccumulates covers the stats accessor under load.
func TestQueriesCounterAccumulates(t *testing.T) {
	s := NewServer()
	z := zone.New("c.test")
	z.MustAddRR("c.test 60 IN A 192.0.2.1")
	if err := s.AddZone(z); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		s.HandleQuery(netip.MustParseAddr("10.0.0.1"), dns.NewQuery(uint16(i), "c.test", dns.TypeA))
	}
	if got := s.Queries(); got != 25 {
		t.Errorf("Queries = %d", got)
	}
}
