package pdns

import (
	"testing"
	"time"

	"repro/internal/dns"
)

var (
	t2017 = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	t2020 = time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	t2022 = time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC)
)

func TestObserveAndSeen(t *testing.T) {
	s := NewStore()
	s.Observe("example.com", dns.TypeA, "192.0.2.1", t2020)
	if !s.Seen("example.com", dns.TypeA, "192.0.2.1", time.Time{}) {
		t.Error("observation not found")
	}
	if s.Seen("example.com", dns.TypeA, "192.0.2.2", time.Time{}) {
		t.Error("unobserved rdata found")
	}
	if s.Seen("example.com", dns.TypeTXT, "192.0.2.1", time.Time{}) {
		t.Error("wrong type matched")
	}
	if s.Seen("other.com", dns.TypeA, "192.0.2.1", time.Time{}) {
		t.Error("wrong domain matched")
	}
}

func TestSixYearWindow(t *testing.T) {
	s := NewStore()
	s.Observe("old.com", dns.TypeA, "192.0.2.1", t2017) // last seen 2017
	now := t2022
	cutoff := now.AddDate(-6, 0, 0) // 2016: 2017 is inside the window
	if !s.Seen("old.com", dns.TypeA, "192.0.2.1", cutoff) {
		t.Error("in-window observation excluded")
	}
	cutoff = now.AddDate(-2, 0, 0) // 2020: 2017 is outside
	if s.Seen("old.com", dns.TypeA, "192.0.2.1", cutoff) {
		t.Error("out-of-window observation included")
	}
}

func TestObserveMergesRanges(t *testing.T) {
	s := NewStore()
	s.Observe("example.com", dns.TypeA, "192.0.2.1", t2020)
	s.Observe("example.com", dns.TypeA, "192.0.2.1", t2017)
	s.Observe("example.com", dns.TypeA, "192.0.2.1", t2022)
	h := s.History("example.com")
	if len(h) != 1 {
		t.Fatalf("history entries = %d, want 1 (merged)", len(h))
	}
	if !h[0].FirstSeen.Equal(t2017) || !h[0].LastSeen.Equal(t2022) {
		t.Errorf("range = %v..%v", h[0].FirstSeen, h[0].LastSeen)
	}
}

func TestHistoryOrdering(t *testing.T) {
	s := NewStore()
	s.Observe("example.com", dns.TypeA, "192.0.2.2", t2022)
	s.Observe("example.com", dns.TypeA, "192.0.2.1", t2017)
	h := s.History("example.com")
	if len(h) != 2 || h[0].RData != "192.0.2.1" {
		t.Errorf("history order: %+v", h)
	}
}

func TestObserveRRAndSeenRR(t *testing.T) {
	s := NewStore()
	rr := dns.MustParseRR("example.com 300 IN A 192.0.2.9")
	s.ObserveRR(rr, t2020)
	if !s.SeenRR(rr, time.Time{}) {
		t.Error("SeenRR false for observed record")
	}
	other := dns.MustParseRR("example.com 300 IN A 192.0.2.10")
	if s.SeenRR(other, time.Time{}) {
		t.Error("SeenRR true for unobserved record")
	}
}

func TestHistoricalNS(t *testing.T) {
	s := NewStore()
	s.Observe("example.com", dns.TypeNS, "ns1.old.net.", t2017)
	s.Observe("example.com", dns.TypeNS, "ns1.new.io.", t2022)
	s.Observe("example.com", dns.TypeNS, "ns1.old.net.", t2020) // dup
	s.Observe("example.com", dns.TypeA, "192.0.2.1", t2020)     // not NS
	ns := s.HistoricalNS("example.com")
	if len(ns) != 2 {
		t.Fatalf("historical NS = %v", ns)
	}
	if ns[0] != "ns1.new.io" || ns[1] != "ns1.old.net" {
		t.Errorf("ns = %v", ns)
	}
}

func TestCounters(t *testing.T) {
	s := NewStore()
	if s.Domains() != 0 || s.Size() != 0 {
		t.Error("empty store has nonzero counters")
	}
	s.Observe("a.com", dns.TypeA, "192.0.2.1", t2020)
	s.Observe("a.com", dns.TypeA, "192.0.2.2", t2020)
	s.Observe("b.com", dns.TypeA, "192.0.2.3", t2020)
	if s.Domains() != 2 {
		t.Errorf("Domains = %d", s.Domains())
	}
	if s.Size() != 3 {
		t.Errorf("Size = %d", s.Size())
	}
}
