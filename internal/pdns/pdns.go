// Package pdns is the passive-DNS substrate: a historical record store
// standing in for the six years of delegated-resolution data the paper
// obtained from "one of the largest DNS providers in the world". URHunter's
// correct-record determination (§4.2, Appendix B condition 5) asks whether an
// observed record ever appeared in a domain's legitimate resolution history —
// which is how records left over from past delegations are excluded.
package pdns

import (
	"sort"
	"sync"
	"time"

	"repro/internal/dns"
)

// Observation is one historical resolution fact: the domain answered with
// this rdata for this type during [FirstSeen, LastSeen].
type Observation struct {
	Domain    dns.Name
	Type      dns.Type
	RData     string // presentation form of the record payload
	FirstSeen time.Time
	LastSeen  time.Time
}

// Store holds observations indexed by domain.
type Store struct {
	mu       sync.RWMutex
	byDomain map[dns.Name][]Observation
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{byDomain: make(map[dns.Name][]Observation)}
}

// Observe records that domain resolved to rdata at the given time, merging
// with an existing observation of the same (type, rdata) by extending its
// seen-range.
func (s *Store) Observe(domain dns.Name, t dns.Type, rdata string, when time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obs := s.byDomain[domain]
	for i := range obs {
		if obs[i].Type == t && obs[i].RData == rdata {
			if when.Before(obs[i].FirstSeen) {
				obs[i].FirstSeen = when
			}
			if when.After(obs[i].LastSeen) {
				obs[i].LastSeen = when
			}
			return
		}
	}
	s.byDomain[domain] = append(obs, Observation{
		Domain: domain, Type: t, RData: rdata, FirstSeen: when, LastSeen: when,
	})
}

// ObserveRR records a resource record observation.
func (s *Store) ObserveRR(rr dns.RR, when time.Time) {
	s.Observe(rr.Name, rr.Type(), rr.Data.String(), when)
}

// History returns all observations for a domain, oldest first.
func (s *Store) History(domain dns.Name) []Observation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	obs := s.byDomain[domain]
	out := make([]Observation, len(obs))
	copy(out, obs)
	sort.Slice(out, func(i, j int) bool { return out[i].FirstSeen.Before(out[j].FirstSeen) })
	return out
}

// Seen reports whether (domain, type, rdata) was ever observed with a
// LastSeen at or after the cutoff — the paper uses a six-year window, so the
// caller passes now.AddDate(-6, 0, 0) as the cutoff. A zero cutoff matches
// the entire history.
func (s *Store) Seen(domain dns.Name, t dns.Type, rdata string, cutoff time.Time) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, o := range s.byDomain[domain] {
		if o.Type == t && o.RData == rdata && !o.LastSeen.Before(cutoff) {
			return true
		}
	}
	return false
}

// SeenRR is Seen for a resource record.
func (s *Store) SeenRR(rr dns.RR, cutoff time.Time) bool {
	return s.Seen(rr.Name, rr.Type(), rr.Data.String(), cutoff)
}

// HistoricalNS returns every nameserver host the domain was ever delegated
// to, according to observed NS records.
func (s *Store) HistoricalNS(domain dns.Name) []dns.Name {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []dns.Name
	seen := make(map[dns.Name]bool)
	for _, o := range s.byDomain[domain] {
		if o.Type != dns.TypeNS {
			continue
		}
		n := dns.CanonicalName(o.RData)
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subdomains returns every proper subdomain of domain that has resolution
// history — the §6 future-work recovery ("we can recover legitimate
// subdomains from PDNS data and measure whether they appear in URs").
func (s *Store) Subdomains(domain dns.Name) []dns.Name {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []dns.Name
	for d := range s.byDomain {
		if d.IsProperSubdomainOf(domain) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Domains returns the number of domains with history.
func (s *Store) Domains() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byDomain)
}

// Size returns the total observation count.
func (s *Store) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, obs := range s.byDomain {
		n += len(obs)
	}
	return n
}
