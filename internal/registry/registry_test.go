package registry

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"repro/internal/authority"
	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/ipam"
	"repro/internal/pdns"
	"repro/internal/simnet"
	"repro/internal/zone"
)

func newTestWorld(t *testing.T) (*simnet.Fabric, *ipam.DB, *pdns.Store, *Registry) {
	t.Helper()
	fabric := simnet.New(1)
	ipdb := ipam.New()
	store := pdns.NewStore()
	reg, err := New(fabric, ipdb, store)
	if err != nil {
		t.Fatal(err)
	}
	return fabric, ipdb, store, reg
}

func TestCreateTLDAndDelegationChain(t *testing.T) {
	fabric, ipdb, _, reg := newTestWorld(t)
	if err := reg.CreateTLD("com", 2); err != nil {
		t.Fatal(err)
	}
	// Query the root for example.com: must get a referral to com.
	asn := ipdb.RegisterAS("CLIENT", "US", 1)
	src := ipdb.MustAllocate(asn)
	c := dnsio.NewClient(&dnsio.SimTransport{Fabric: fabric, Src: src})
	resp, err := c.Query(context.Background(), netip.AddrPortFrom(reg.RootAddr(), dnsio.DNSPort),
		"example.com", dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Authority) != 2 {
		t.Fatalf("root referral authority: %v", resp.Authority)
	}
	if len(resp.Additional) != 2 {
		t.Fatalf("root referral glue: %v", resp.Additional)
	}
}

func TestCreateTLDDuplicate(t *testing.T) {
	_, _, _, reg := newTestWorld(t)
	if err := reg.CreateTLD("com", 1); err != nil {
		t.Fatal(err)
	}
	if err := reg.CreateTLD("com", 1); err == nil {
		t.Error("duplicate TLD accepted")
	}
	if err := reg.CreateTLD(dns.Root, 1); err == nil {
		t.Error("root as TLD accepted")
	}
}

func TestMultiLabelTLDDelegatedFromParent(t *testing.T) {
	fabric, ipdb, _, reg := newTestWorld(t)
	if err := reg.CreateTLD("cn", 1); err != nil {
		t.Fatal(err)
	}
	if err := reg.CreateTLD("gov.cn", 1); err != nil {
		t.Fatal(err)
	}
	// The cn TLD server must refer gov.cn queries downward.
	asn := ipdb.RegisterAS("CLIENT", "US", 1)
	src := ipdb.MustAllocate(asn)
	c := dnsio.NewClient(&dnsio.SimTransport{Fabric: fabric, Src: src})
	// Find cn's server address via root referral.
	resp, err := c.Query(context.Background(), netip.AddrPortFrom(reg.RootAddr(), dnsio.DNSPort),
		"beijing.gov.cn", dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Additional) == 0 {
		t.Fatal("no glue from root")
	}
	cnAddr := resp.Additional[0].Data.(*dns.A).Addr
	resp, err = c.Query(context.Background(), netip.AddrPortFrom(cnAddr, dnsio.DNSPort),
		"beijing.gov.cn", dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	foundGovCN := false
	for _, rr := range resp.Authority {
		if rr.Name == "gov.cn" && rr.Type() == dns.TypeNS {
			foundGovCN = true
		}
	}
	if !foundGovCN {
		t.Errorf("cn server did not refer gov.cn: %v", resp.Authority)
	}
}

func TestSetDelegationAndHistory(t *testing.T) {
	_, _, store, reg := newTestWorld(t)
	if err := reg.CreateTLD("com", 1); err != nil {
		t.Fatal(err)
	}
	when := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	err := reg.SetDelegation("example.com", []dns.Name{"ns1.oldhost.net", "ns2.oldhost.net"}, nil, when)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.IsDelegated("example.com") {
		t.Error("not delegated after SetDelegation")
	}
	if !reg.IsDelegatedTo("example.com", "ns1.oldhost.net") {
		t.Error("IsDelegatedTo false for current NS")
	}
	// Switch providers (a "past delegation" is born).
	later := when.AddDate(2, 0, 0)
	err = reg.SetDelegation("example.com", []dns.Name{"ns1.newhost.io"}, nil, later)
	if err != nil {
		t.Fatal(err)
	}
	if reg.IsDelegatedTo("example.com", "ns1.oldhost.net") {
		t.Error("old NS still current")
	}
	ns := reg.Delegation("example.com")
	if len(ns) != 1 || ns[0] != "ns1.newhost.io" {
		t.Errorf("delegation = %v", ns)
	}
	// Passive DNS saw all three NS records.
	hist := store.HistoricalNS("example.com")
	if len(hist) != 3 {
		t.Errorf("historical NS = %v", hist)
	}
}

func TestSetDelegationGlue(t *testing.T) {
	fabric, ipdb, _, reg := newTestWorld(t)
	if err := reg.CreateTLD("com", 1); err != nil {
		t.Fatal(err)
	}
	asn := ipdb.RegisterAS("SELFHOST", "US", 1)
	nsAddr := ipdb.MustAllocate(asn)
	err := reg.SetDelegation("glued.com", []dns.Name{"ns1.glued.com"},
		map[dns.Name]netip.Addr{"ns1.glued.com": nsAddr}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	src := ipdb.MustAllocate(asn)
	c := dnsio.NewClient(&dnsio.SimTransport{Fabric: fabric, Src: src})
	root, err := c.Query(context.Background(), netip.AddrPortFrom(reg.RootAddr(), dnsio.DNSPort),
		"www.glued.com", dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	comAddr := root.Additional[0].Data.(*dns.A).Addr
	resp, err := c.Query(context.Background(), netip.AddrPortFrom(comAddr, dnsio.DNSPort),
		"www.glued.com", dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Additional) != 1 || resp.Additional[0].Data.(*dns.A).Addr != nsAddr {
		t.Errorf("glue: %v", resp.Additional)
	}
}

func TestRemoveDelegation(t *testing.T) {
	_, _, _, reg := newTestWorld(t)
	if err := reg.CreateTLD("com", 1); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetDelegation("gone.com", []dns.Name{"ns1.h.net"}, nil, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := reg.RemoveDelegation("gone.com"); err != nil {
		t.Fatal(err)
	}
	if reg.IsDelegated("gone.com") {
		t.Error("still delegated")
	}
	if got := len(reg.RegisteredDomains()); got != 0 {
		t.Errorf("registered domains = %d", got)
	}
}

func TestDelegationErrors(t *testing.T) {
	_, _, _, reg := newTestWorld(t)
	if err := reg.SetDelegation("example.zz", []dns.Name{"ns1.h.net"}, nil, time.Now()); err == nil {
		t.Error("delegation under unknown TLD accepted")
	}
	if err := reg.CreateTLD("com", 1); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetDelegation("example.com", nil, nil, time.Now()); err == nil {
		t.Error("empty NS set accepted")
	}
	if err := reg.RemoveDelegation("x.zz"); err == nil {
		t.Error("remove under unknown TLD accepted")
	}
}

// TestEndToEndAuthoritativeResolution wires a hosting nameserver into the
// hierarchy and walks the referral chain manually.
func TestEndToEndAuthoritativeResolution(t *testing.T) {
	fabric, ipdb, _, reg := newTestWorld(t)
	if err := reg.CreateTLD("com", 1); err != nil {
		t.Fatal(err)
	}
	// Hosting provider's nameserver.
	hostASN := ipdb.RegisterAS("HOSTER", "US", 1)
	nsAddr := ipdb.MustAllocate(hostASN)
	siteAddr := ipdb.MustAllocate(hostASN)
	srv := authority.NewServer()
	z := zone.New("example.com")
	z.MustAddRR("example.com 3600 IN SOA ns1.hoster.net h.hoster.net 1 7200 3600 1209600 300")
	z.MustAddRR("example.com 300 IN A " + siteAddr.String())
	if err := srv.AddZone(z); err != nil {
		t.Fatal(err)
	}
	if _, err := dnsio.AttachSim(fabric, nsAddr, srv); err != nil {
		t.Fatal(err)
	}
	// Delegate hoster.net's own NS too, so glueless resolution could work;
	// here we just delegate example.com with out-of-bailiwick NS + no glue,
	// and query the hosting server directly.
	if err := reg.SetDelegation("example.com", []dns.Name{"ns1.hoster.net"}, nil, time.Now()); err != nil {
		t.Fatal(err)
	}
	src := ipdb.MustAllocate(hostASN)
	c := dnsio.NewClient(&dnsio.SimTransport{Fabric: fabric, Src: src})
	resp, err := c.Query(context.Background(), netip.AddrPortFrom(nsAddr, dnsio.DNSPort),
		"example.com", dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.AnswersOfType(dns.TypeA)) != 1 {
		t.Errorf("answers: %v", resp.Answers)
	}
}

func TestTLDsListing(t *testing.T) {
	_, _, _, reg := newTestWorld(t)
	for _, tld := range []dns.Name{"com", "net", "org"} {
		if err := reg.CreateTLD(tld, 1); err != nil {
			t.Fatal(err)
		}
	}
	tlds := reg.TLDs()
	if len(tlds) != 3 {
		t.Fatalf("TLDs = %v", tlds)
	}
	seen := map[dns.Name]bool{}
	for _, tld := range tlds {
		seen[tld] = true
	}
	for _, want := range []dns.Name{"com", "net", "org"} {
		if !seen[want] {
			t.Errorf("missing TLD %s", want)
		}
	}
}
