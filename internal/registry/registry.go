// Package registry operates the simulated DNS delegation hierarchy: the root
// zone, TLD zones with their authoritative servers on the fabric, and the
// registration state that says which nameservers a domain is *actually*
// delegated to. The gap between this delegation state and what hosting
// providers are willing to serve is precisely where undelegated records live.
//
// Delegation changes are timestamped and mirrored into the passive-DNS store,
// giving URHunter the historical view it needs to exclude past delegations.
package registry

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"repro/internal/authority"
	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/ipam"
	"repro/internal/pdns"
	"repro/internal/simnet"
	"repro/internal/zone"
)

// tldEntry is one TLD's serving state.
type tldEntry struct {
	zone   *zone.Zone
	server *authority.Server
	addrs  []netip.Addr
}

// Registry owns the root and TLD infrastructure.
type Registry struct {
	fabric *simnet.Fabric
	ipdb   *ipam.DB
	pdns   *pdns.Store // optional sink for delegation history

	infraASN ipam.ASN

	mu          sync.RWMutex
	rootZone    *zone.Zone
	rootServer  *authority.Server
	rootAddr    netip.Addr
	tlds        map[dns.Name]*tldEntry
	delegations map[dns.Name][]dns.Name // domain -> current NS hosts
}

// New creates a registry with a running root server on the fabric. The pdns
// store may be nil.
func New(fabric *simnet.Fabric, ipdb *ipam.DB, store *pdns.Store) (*Registry, error) {
	r := &Registry{
		fabric:      fabric,
		ipdb:        ipdb,
		pdns:        store,
		tlds:        make(map[dns.Name]*tldEntry),
		delegations: make(map[dns.Name][]dns.Name),
	}
	r.infraASN = ipdb.RegisterAS("ROOT-REGISTRY-INFRA", "US", 2)
	r.rootZone = zone.New(dns.Root)
	r.rootZone.MustAddRR(". 86400 IN SOA a.root-servers.test hostmaster.root-servers.test 1 7200 3600 1209600 300")
	r.rootServer = authority.NewServer()
	if err := r.rootServer.AddZone(r.rootZone); err != nil {
		return nil, err
	}
	addr, err := ipdb.Allocate(r.infraASN)
	if err != nil {
		return nil, err
	}
	r.rootAddr = addr
	if _, err := dnsio.AttachSim(fabric, addr, r.rootServer); err != nil {
		return nil, err
	}
	return r, nil
}

// RootAddr returns the root server's IP.
func (r *Registry) RootAddr() netip.Addr {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rootAddr
}

// CreateTLD brings up a TLD: a zone, an authoritative server on `servers`
// fabric IPs, and the delegation + glue in the root zone.
func (r *Registry) CreateTLD(tld dns.Name, servers int) error {
	if tld.CountLabels() < 1 {
		return fmt.Errorf("registry: %q is not a valid suffix", tld)
	}
	if servers < 1 {
		servers = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tlds[tld]; ok {
		return fmt.Errorf("registry: TLD %s already exists", tld.String())
	}
	z := zone.New(tld)
	z.MustAddRR(fmt.Sprintf("%s 86400 IN SOA ns0.nic.%s hostmaster.nic.%s 1 7200 3600 1209600 300",
		tld, tld, tld))
	srv := authority.NewServer()
	if err := srv.AddZone(z); err != nil {
		return err
	}
	e := &tldEntry{zone: z, server: srv}
	// Multi-label suffixes (gov.cn) are delegated from their parent TLD's
	// zone when we operate it; single-label TLDs hang off the root.
	parentZone := r.rootZone
	if pe, _, ok := r.tldFor(tld); ok {
		parentZone = pe.zone
	}
	for i := 0; i < servers; i++ {
		addr, err := r.ipdb.Allocate(r.infraASN)
		if err != nil {
			return err
		}
		if _, err := dnsio.AttachSim(r.fabric, addr, srv); err != nil {
			return err
		}
		e.addrs = append(e.addrs, addr)
		// Register NS + glue in the parent and the TLD's own zone.
		nsHost := dns.CanonicalName(fmt.Sprintf("ns%d.nic.%s", i, string(tld)))
		if err := parentZone.Add(dns.RR{Name: tld, Class: dns.ClassINET, TTL: 86400,
			Data: &dns.NS{Host: nsHost}}); err != nil {
			return err
		}
		if err := parentZone.Add(dns.RR{Name: nsHost, Class: dns.ClassINET, TTL: 86400,
			Data: &dns.A{Addr: addr}}); err != nil {
			return err
		}
		if err := z.Add(dns.RR{Name: tld, Class: dns.ClassINET, TTL: 86400,
			Data: &dns.NS{Host: nsHost}}); err != nil {
			return err
		}
		if err := z.Add(dns.RR{Name: nsHost, Class: dns.ClassINET, TTL: 86400,
			Data: &dns.A{Addr: addr}}); err != nil {
			return err
		}
	}
	r.tlds[tld] = e
	return nil
}

// TLDs returns the registered TLDs.
func (r *Registry) TLDs() []dns.Name {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]dns.Name, 0, len(r.tlds))
	for t := range r.tlds {
		out = append(out, t)
	}
	return out
}

// tldFor returns the TLD entry responsible for a domain. Multi-label public
// suffixes are registered as their own "TLDs" here (gov.cn has its own zone
// in the real world too).
func (r *Registry) tldFor(domain dns.Name) (*tldEntry, dns.Name, bool) {
	// Longest registered suffix wins.
	for n := domain.Parent(); n != dns.Root; n = n.Parent() {
		if e, ok := r.tlds[n]; ok {
			return e, n, true
		}
	}
	return nil, dns.Root, false
}

// SetDelegation points a domain's NS set at the given nameserver hosts,
// replacing any previous delegation, and writes glue for any in-bailiwick
// hosts. The change is recorded in passive DNS at the given time.
func (r *Registry) SetDelegation(domain dns.Name, nsHosts []dns.Name, glue map[dns.Name]netip.Addr, when time.Time) error {
	if len(nsHosts) == 0 {
		return fmt.Errorf("registry: empty NS set for %s", domain.String())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, _, ok := r.tldFor(domain)
	if !ok {
		return fmt.Errorf("registry: no TLD serves %s", domain.String())
	}
	e.zone.RemoveRRset(domain, dns.TypeNS)
	for _, host := range nsHosts {
		rr := dns.RR{Name: domain, Class: dns.ClassINET, TTL: 86400, Data: &dns.NS{Host: host}}
		if err := e.zone.Add(rr); err != nil {
			return err
		}
		if r.pdns != nil {
			r.pdns.ObserveRR(rr, when)
		}
		if addr, ok := glue[host]; ok && host.IsSubdomainOf(domain) {
			if err := e.zone.Add(dns.RR{Name: host, Class: dns.ClassINET, TTL: 86400,
				Data: &dns.A{Addr: addr}}); err != nil {
				return err
			}
		}
	}
	r.delegations[domain] = append([]dns.Name(nil), nsHosts...)
	return nil
}

// RemoveDelegation deletes a domain's delegation (domain expires or switches
// to an unregistered state).
func (r *Registry) RemoveDelegation(domain dns.Name) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, _, ok := r.tldFor(domain)
	if !ok {
		return fmt.Errorf("registry: no TLD serves %s", domain.String())
	}
	e.zone.RemoveRRset(domain, dns.TypeNS)
	delete(r.delegations, domain)
	return nil
}

// Delegation returns the current NS hosts for a domain.
func (r *Registry) Delegation(domain dns.Name) []dns.Name {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ns := r.delegations[domain]
	out := make([]dns.Name, len(ns))
	copy(out, ns)
	return out
}

// IsDelegated reports whether the domain has any delegation.
func (r *Registry) IsDelegated(domain dns.Name) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.delegations[domain]
	return ok
}

// IsDelegatedTo reports whether the domain's current delegation includes the
// given nameserver host.
func (r *Registry) IsDelegatedTo(domain dns.Name, nsHost dns.Name) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, h := range r.delegations[domain] {
		if h == nsHost {
			return true
		}
	}
	return false
}

// RegisteredDomains returns all currently delegated domains.
func (r *Registry) RegisteredDomains() []dns.Name {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]dns.Name, 0, len(r.delegations))
	for d := range r.delegations {
		out = append(out, d)
	}
	return out
}
