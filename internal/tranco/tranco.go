// Package tranco generates the deterministic ranked top-site list that
// stands in for the Tranco list in the reproduction. The generator seeds the
// head of the list with the real domains the paper names (with their actual
// Tranco ranks where stated: api.github.com's SLD at 30, ibm.com at 125,
// speedtest.net at 415, gitlab.com at 527, pastebin.com at 2033) and fills
// the remainder with synthetic-but-plausible SLDs across TLDs.
package tranco

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dns"
)

// Entry is a ranked site.
type Entry struct {
	Rank   int // 1-based
	Domain dns.Name
}

// List is an ordered top-sites list.
type List struct {
	entries []Entry
	rank    map[dns.Name]int
}

// pinned places the paper's case-study domains at their published SLD ranks.
var pinned = map[int]dns.Name{
	30:   "github.com",
	125:  "ibm.com",
	415:  "speedtest.net",
	527:  "gitlab.com",
	2033: "pastebin.com",
}

// head seeds the very top of the list with recognizable names so provider
// reserved-lists have something meaningful to match (google.com is the
// paper's example of an extremely popular blocked domain).
var head = []dns.Name{
	"google.com", "facebook.com", "microsoft.com", "amazon.com",
	"apple.com", "youtube.com", "twitter.com", "instagram.com",
	"wikipedia.org", "netflix.com", "linkedin.com", "baidu.com",
	"yahoo.com", "reddit.com", "office.com", "zoom.us", "adobe.com",
	"wordpress.org", "cloudflare.com", "windowsupdate.com",
	"google-analytics.com", "googleapis.com", "akamai.net", "bing.com",
}

var syntheticTLDs = []string{
	"com", "com", "com", "com", "net", "net", "org", "io", "de", "fr",
	"jp", "cn", "ru", "co.uk", "com.br", "in", "it", "nl",
}

var nameParts = []string{
	"news", "shop", "cloud", "data", "media", "tech", "web", "game",
	"mail", "pay", "bank", "travel", "music", "video", "photo", "social",
	"search", "store", "blog", "forum", "chat", "stream", "learn", "work",
	"health", "sport", "auto", "home", "food", "book",
}

// Generate builds a list of n ranked sites, deterministic in seed.
func Generate(n int, seed int64) *List {
	r := rand.New(rand.NewSource(seed))
	l := &List{rank: make(map[dns.Name]int, n)}
	used := make(map[dns.Name]bool)

	place := func(rank int, d dns.Name) {
		l.entries = append(l.entries, Entry{Rank: rank, Domain: d})
		l.rank[d] = rank
		used[d] = true
	}

	nextSynthetic := func() dns.Name {
		for {
			d := dns.Name(fmt.Sprintf("%s%s%d.%s",
				nameParts[r.Intn(len(nameParts))],
				nameParts[r.Intn(len(nameParts))],
				r.Intn(1000),
				syntheticTLDs[r.Intn(len(syntheticTLDs))]))
			if !used[d] {
				return d
			}
		}
	}

	headIdx := 0
	for rank := 1; rank <= n; rank++ {
		if d, ok := pinned[rank]; ok {
			place(rank, d)
			continue
		}
		if headIdx < len(head) {
			d := head[headIdx]
			headIdx++
			if !used[d] {
				place(rank, d)
				continue
			}
		}
		place(rank, nextSynthetic())
	}
	return l
}

// Len returns the list length.
func (l *List) Len() int { return len(l.entries) }

// Top returns the first k entries (or all, if k exceeds the length).
func (l *List) Top(k int) []Entry {
	if k > len(l.entries) {
		k = len(l.entries)
	}
	out := make([]Entry, k)
	copy(out, l.entries[:k])
	return out
}

// Domains returns the first k domains in rank order.
func (l *List) Domains(k int) []dns.Name {
	top := l.Top(k)
	out := make([]dns.Name, len(top))
	for i, e := range top {
		out[i] = e.Domain
	}
	return out
}

// Rank returns a domain's rank and whether it is on the list.
func (l *List) Rank(d dns.Name) (int, bool) {
	r, ok := l.rank[d]
	return r, ok
}

// Contains reports whether d is on the list.
func (l *List) Contains(d dns.Name) bool {
	_, ok := l.rank[d]
	return ok
}

// SampleZipf draws k distinct domains with Zipf-like popularity weighting
// (lower ranks drawn more often), deterministic in the provided rng. It
// models attacker preference for popular domains when the world generator
// plants undelegated records.
func (l *List) SampleZipf(k int, r *rand.Rand) []dns.Name {
	if k >= len(l.entries) {
		return l.Domains(len(l.entries))
	}
	chosen := make(map[int]bool, k)
	out := make([]dns.Name, 0, k)
	for len(out) < k {
		// Cheap heavy-head draw standing in for a truncated Zipf over [1, n].
		u := r.Float64()
		idx := int(float64(len(l.entries)) * (u * u * u)) // cubic skew toward the head
		if idx >= len(l.entries) {
			idx = len(l.entries) - 1
		}
		if chosen[idx] {
			continue
		}
		chosen[idx] = true
		out = append(out, l.entries[idx].Domain)
	}
	sort.Slice(out, func(i, j int) bool { return l.rank[out[i]] < l.rank[out[j]] })
	return out
}
