package tranco

import (
	"math/rand"
	"testing"

	"repro/internal/dns"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(3000, 7)
	b := Generate(3000, 7)
	if a.Len() != 3000 || b.Len() != 3000 {
		t.Fatalf("lengths %d %d", a.Len(), b.Len())
	}
	for i, e := range a.Top(3000) {
		if b.Top(3000)[i] != e {
			t.Fatalf("lists diverge at %d", i)
		}
	}
	c := Generate(3000, 8)
	diff := 0
	for i, e := range a.Top(3000) {
		if c.Top(3000)[i] != e {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical lists")
	}
}

func TestPinnedRanks(t *testing.T) {
	l := Generate(2500, 1)
	cases := map[string]int{
		"github.com":    30,
		"ibm.com":       125,
		"speedtest.net": 415,
		"gitlab.com":    527,
		"pastebin.com":  2033,
	}
	for d, want := range cases {
		got, ok := l.Rank(dns.CanonicalName(d))
		if !ok || got != want {
			t.Errorf("rank(%s) = %d %v, want %d", d, got, ok, want)
		}
	}
}

func TestHeadDomainsPresent(t *testing.T) {
	l := Generate(2000, 1)
	if r, ok := l.Rank("google.com"); !ok || r > 30 {
		t.Errorf("google.com rank = %d %v", r, ok)
	}
	if !l.Contains("windowsupdate.com") {
		t.Error("windowsupdate.com missing")
	}
}

func TestRanksAreSequentialAndUnique(t *testing.T) {
	l := Generate(500, 3)
	seen := map[string]bool{}
	for i, e := range l.Top(500) {
		if e.Rank != i+1 {
			t.Fatalf("rank %d at index %d", e.Rank, i)
		}
		if seen[string(e.Domain)] {
			t.Fatalf("duplicate domain %s", e.Domain)
		}
		seen[string(e.Domain)] = true
	}
}

func TestTopAndDomainsBounds(t *testing.T) {
	l := Generate(100, 1)
	if got := len(l.Top(500)); got != 100 {
		t.Errorf("Top(500) = %d entries", got)
	}
	if got := len(l.Domains(10)); got != 10 {
		t.Errorf("Domains(10) = %d", got)
	}
}

func TestSampleZipfSkewsTowardHead(t *testing.T) {
	l := Generate(2000, 1)
	r := rand.New(rand.NewSource(5))
	sample := l.SampleZipf(200, r)
	if len(sample) != 200 {
		t.Fatalf("sample size %d", len(sample))
	}
	seen := map[string]bool{}
	headCount := 0
	for _, d := range sample {
		if seen[string(d)] {
			t.Fatalf("duplicate in sample: %s", d)
		}
		seen[string(d)] = true
		rank, ok := l.Rank(d)
		if !ok {
			t.Fatalf("sampled domain %s not on list", d)
		}
		if rank <= 500 {
			headCount++
		}
	}
	// Quadratic skew: far more than the uniform 25% should land in the top quarter.
	if headCount < 100 {
		t.Errorf("only %d/200 samples in top 500; skew too weak", headCount)
	}
	// Exhaustive sampling returns everything.
	all := l.SampleZipf(5000, r)
	if len(all) != 2000 {
		t.Errorf("exhaustive sample = %d", len(all))
	}
}
