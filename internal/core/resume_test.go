// Kill-and-resume equivalence: a sweep interrupted at any journal position —
// checkpoint boundary, mid-segment, even with a torn tail — must, after
// resume, produce a report byte-identical to an uninterrupted run, without
// re-querying any probe the journal already answered.
package core

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dnsio"
	"repro/internal/simnet"
)

// renderRecords is the byte-identity fingerprint of a run's report: every
// collected UR plus the suspicious subset, in their canonical order.
func renderRecords(res *Result) string {
	var sb strings.Builder
	for _, u := range res.URs {
		fmt.Fprintf(&sb, "ur|%s|%s|%s|%d|%s\n",
			u.Server.Addr, u.Domain, u.Type, u.TTL, u.RData)
	}
	for _, u := range res.Suspicious {
		fmt.Fprintf(&sb, "sus|%s|%s|%s|%d|%s|%s\n",
			u.Server.Addr, u.Domain, u.Type, u.TTL, u.RData, u.Category)
	}
	return sb.String()
}

// applyDeterministicFaults installs only sequence-independent faults: a
// SERVFAIL server, a blackholed server, and a fully-spoofing server answer
// the same way no matter how many exchanges preceded a probe, so an
// interrupted-then-resumed run (whose per-endpoint sequence counters reset)
// still sees the exact failure surface an uninterrupted run saw. Rate-based
// loss or flapping would not satisfy that, by design.
func applyDeterministicFaults(fx *chaosFixture) {
	dnsio.SetSimFault(fx.fabric, fx.nsAddrs[1], simnet.FaultProfile{ServFail: true})
	dnsio.SetSimFault(fx.fabric, fx.nsAddrs[0], simnet.FaultProfile{Blackhole: true})
	dnsio.SetSimFault(fx.fabric, fx.nsAddrs[3], simnet.FaultProfile{WrongIDRate: 1})
}

// runJournaled builds a fresh fixture over the shared seed, opens (or
// resumes) the journal in dir, and runs the pipeline under ctx.
func runJournaled(t *testing.T, dir string, faults func(*chaosFixture), ctx context.Context, hook func(*Journal, context.CancelFunc)) (*Result, *Journal, *chaosFixture, error) {
	t.Helper()
	fx := newChaosFixture(t, 11)
	if faults != nil {
		faults(fx)
	}
	j, err := OpenJournal(dir, fx.cfg, JournalOptions{CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if hook != nil {
		hook(j, cancel)
	}
	fx.cfg.Journal = j
	res, err := NewPipeline(fx.cfg).Run(cctx)
	if cerr := j.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	return res, j, fx, err
}

// TestResumeByteIdenticalAcrossCuts kills the deterministic-fault chaos
// pipeline at a spread of journal positions — checkpoint boundaries
// (CheckpointEvery=8) and mid-segment cuts — resumes each from its journal,
// and asserts the final report is byte-identical to the uninterrupted run.
func TestResumeByteIdenticalAcrossCuts(t *testing.T) {
	fx := newChaosFixture(t, 11)
	applyDeterministicFaults(fx)
	baseline, err := NewPipeline(fx.cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := renderRecords(baseline)

	cuts := []int64{1, 3, 8, 16, 24, 40, 64, 100, 120, 150}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			_, _, _, err := runJournaled(t, dir, applyDeterministicFaults, context.Background(),
				func(j *Journal, cancel context.CancelFunc) {
					j.AppendHook = func(total int64) {
						if total == cut {
							cancel()
						}
					}
				})
			if err == nil {
				t.Fatalf("cut %d: interrupted run reported no error", cut)
			}
			res, j2, _, err := runJournaled(t, dir, applyDeterministicFaults, context.Background(), nil)
			if err != nil {
				t.Fatalf("cut %d: resume failed: %v", cut, err)
			}
			// The overlapped sweeps race for the journal's first appends, so a
			// small cut may hold only failure records (the faulted nameservers
			// fail fast while the correct sweep is still answering); replayed
			// state of either kind proves the resume took.
			if !j2.Resumed() || j2.ReplayedAnswered()+j2.ReplayedFailures() == 0 {
				t.Fatalf("cut %d: resume replayed nothing (resumed=%v, answered=%d, failed=%d)",
					cut, j2.Resumed(), j2.ReplayedAnswered(), j2.ReplayedFailures())
			}
			if got := renderRecords(res); got != want {
				t.Errorf("cut %d: resumed report differs from uninterrupted run:\n--- resumed ---\n%s--- baseline ---\n%s",
					cut, got, want)
			}
			checkCoverageConsistent(t, res.Coverage)
			if res.Coverage.Attempted != chaosPlanSize {
				t.Errorf("cut %d: resumed coverage attempted %d, want %d (replay must not double-count)",
					cut, res.Coverage.Attempted, chaosPlanSize)
			}
		})
	}
}

// TestResumeAtDifferentParallelism pins the plan-hash contract: parallelism
// is not part of the sweep identity, so a run interrupted at 4 workers
// resumes at 1 and at 16 with byte-identical output.
func TestResumeAtDifferentParallelism(t *testing.T) {
	fx := newChaosFixture(t, 11)
	applyDeterministicFaults(fx)
	baseline, err := NewPipeline(fx.cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := renderRecords(baseline)

	for _, workers := range []int{1, 16} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			_, _, _, err := runJournaled(t, dir, applyDeterministicFaults, context.Background(),
				func(j *Journal, cancel context.CancelFunc) {
					j.AppendHook = func(total int64) {
						if total == 60 {
							cancel()
						}
					}
				})
			if err == nil {
				t.Fatal("interrupted run reported no error")
			}
			fx2 := newChaosFixture(t, 11)
			applyDeterministicFaults(fx2)
			fx2.cfg.Parallelism = workers
			j2, err := OpenJournal(dir, fx2.cfg, JournalOptions{CheckpointEvery: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			fx2.cfg.Journal = j2
			res, err := NewPipeline(fx2.cfg).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got := renderRecords(res); got != want {
				t.Errorf("resume at parallelism %d diverged from baseline", workers)
			}
		})
	}
}

// TestResumeTornTail corrupts the newest segment after an interrupted run —
// the torn-write a hard kill leaves — and asserts the resume discards the
// tail, re-queries what it covered, and still converges to the baseline.
func TestResumeTornTail(t *testing.T) {
	fx := newChaosFixture(t, 11)
	applyDeterministicFaults(fx)
	baseline, err := NewPipeline(fx.cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := renderRecords(baseline)

	dir := t.TempDir()
	_, _, _, err = runJournaled(t, dir, applyDeterministicFaults, context.Background(),
		func(j *Journal, cancel context.CancelFunc) {
			j.AppendHook = func(total int64) {
				if total == 80 {
					cancel()
				}
			}
		})
	if err == nil {
		t.Fatal("interrupted run reported no error")
	}
	// Tear the tail of the newest non-empty segment (workers that had
	// nothing left to probe leave empty segments behind).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	var newestSize int64
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".wal") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() >= 16 && e.Name() > newest {
			newest, newestSize = e.Name(), info.Size()
		}
	}
	if newest == "" {
		t.Fatal("no non-empty segments written")
	}
	if err := os.Truncate(filepath.Join(dir, newest), newestSize-7); err != nil {
		t.Fatal(err)
	}

	res, j2, _, err := runJournaled(t, dir, applyDeterministicFaults, context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if j2.TornSegments() == 0 {
		t.Error("torn segment went undetected")
	}
	if got := renderRecords(res); got != want {
		t.Errorf("resume over a torn tail diverged from baseline:\n--- resumed ---\n%s--- baseline ---\n%s", got, want)
	}
}

// TestResumeZeroRequeries is the acceptance check on query accounting: in a
// fault-free world, the resumed run's fabric sees exactly the probes the
// journal did NOT already answer — zero re-queries of answered probes.
func TestResumeZeroRequeries(t *testing.T) {
	dir := t.TempDir()
	_, _, fx1, err := runJournaled(t, dir, nil, context.Background(),
		func(j *Journal, cancel context.CancelFunc) {
			j.AppendHook = func(total int64) {
				if total == 90 {
					cancel()
				}
			}
		})
	if err == nil {
		t.Fatal("interrupted run reported no error")
	}
	if fx1.fabric.Exchanges() == 0 {
		t.Fatal("interrupted run never touched the fabric")
	}

	res, j2, fx2, err := runJournaled(t, dir, nil, context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	replayed := int64(j2.ReplayedAnswered())
	if replayed == 0 {
		t.Fatal("nothing replayed")
	}
	// Fault-free: every live probe answers on its first exchange, failures
	// never file, so the resumed fabric's exchange count is exactly the
	// unanswered remainder of the plan.
	if got, want := fx2.fabric.Exchanges(), int64(chaosPlanSize)-replayed; got != want {
		t.Errorf("resumed run issued %d exchanges, want %d (plan %d - %d replayed): answered probes were re-queried",
			got, want, chaosPlanSize, replayed)
	}
	if res.Coverage.Attempted != chaosPlanSize || res.Coverage.Failed() != 0 {
		t.Errorf("resumed coverage off: %+v", res.Coverage)
	}
}

// TestGracefulDrainPartialResult pins the cancellation contract: a cancelled
// pipeline returns a non-nil partial Result carrying the coverage and query
// books accumulated before the interruption, alongside the error.
func TestGracefulDrainPartialResult(t *testing.T) {
	dir := t.TempDir()
	res, j, _, err := runJournaled(t, dir, nil, context.Background(),
		func(j *Journal, cancel context.CancelFunc) {
			j.AppendHook = func(total int64) {
				if total == 10 {
					cancel()
				}
			}
		})
	if err == nil {
		t.Fatal("cancelled run reported no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled in its chain", err)
	}
	if res == nil || res.Coverage == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if res.Coverage.Attempted == 0 || res.Queries == 0 {
		t.Errorf("partial books empty: attempted=%d queries=%d", res.Coverage.Attempted, res.Queries)
	}
	checkCoverageConsistent(t, res.Coverage)
	// The journal must hold at least the 10 records appended before cancel.
	if j.Appended() < 10 {
		t.Errorf("journal holds %d records, want >= 10", j.Appended())
	}
}

// TestJournalWriteFailureStopsSweep yanks the journal directory out from
// under the run: segment creation fails, every worker stops, and the sweep
// surfaces the journal error instead of silently continuing unjournaled.
func TestJournalWriteFailureStopsSweep(t *testing.T) {
	dir := t.TempDir()
	fx := newChaosFixture(t, 11)
	j, err := OpenJournal(dir, fx.cfg, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	fx.cfg.Journal = j
	res, err := NewPipeline(fx.cfg).Run(context.Background())
	if err == nil {
		t.Fatal("pipeline succeeded with an unwritable journal")
	}
	if !strings.Contains(err.Error(), "journal") {
		t.Errorf("error does not name the journal: %v", err)
	}
	if res == nil {
		t.Error("no partial result on journal failure")
	}
}

// stallTransport wraps the sim transport but wedges the first exchange to a
// victim server until its context is cancelled — the real-world socket hang
// the watchdog exists for. Later exchanges pass through, so the re-queue
// pass can recover the stalled probe.
type stallTransport struct {
	inner  dnsio.Transport
	victim netip.Addr

	mu      sync.Mutex
	wedged  bool
	stalls  int
}

func (s *stallTransport) Exchange(ctx context.Context, server netip.AddrPort, packed []byte, tcp bool) ([]byte, error) {
	if server.Addr() == s.victim {
		s.mu.Lock()
		first := !s.wedged
		s.wedged = true
		if first {
			s.stalls++
		}
		s.mu.Unlock()
		if first {
			<-ctx.Done()
			return nil, ctx.Err()
		}
	}
	return s.inner.Exchange(ctx, server, packed, tcp)
}

// TestWatchdogUnwedgesStalledWorker wedges one nameserver's first exchange
// forever and asserts the watchdog cancels the stuck probe (classing it
// "stalled"), the sweep completes, and the re-queue pass recovers the probe
// on its second, unwedged attempt.
func TestWatchdogUnwedgesStalledWorker(t *testing.T) {
	fx := newChaosFixture(t, 11)
	fx.cfg.Transport = &stallTransport{
		inner:  &dnsio.SimTransport{Fabric: fx.fabric, Src: fx.cfg.SrcAddr},
		victim: fx.nsAddrs[4],
	}
	fx.cfg.Watchdog = &WatchdogConfig{
		Deadline:   40 * time.Millisecond,
		CheckEvery: 5 * time.Millisecond,
		Grace:      200 * time.Millisecond,
	}
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		defer close(done)
		res, err = NewPipeline(fx.cfg).Run(context.Background())
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("sweep wedged: watchdog never unstuck the stalled worker")
	}
	if err != nil {
		t.Fatalf("pipeline failed: %v", err)
	}
	cov := res.Coverage
	checkCoverageConsistent(t, cov)
	checkNoFalseRecords(t, fx, res)
	if cov.Stalls == 0 {
		t.Error("watchdog never fired")
	}
	if cov.RetriedRecovered == 0 {
		t.Error("re-queue pass recovered none of the stalled probes")
	}
	if cov.Attempted != chaosPlanSize {
		t.Errorf("attempted = %d, want %d", cov.Attempted, chaosPlanSize)
	}
	// Every stalled probe recovers on retry, so coverage ends complete.
	if cov.Failed() != 0 {
		t.Errorf("unrecovered failures remain: %+v", cov.FailedByClass)
	}
}
