package core

import (
	"net/netip"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dns"
	"repro/internal/dnsio"
)

// journalTestConfig is a minimal plan for journal-only tests (no fabric).
func journalTestConfig(seed int64) *Config {
	return &Config{
		Seed:    seed,
		Targets: []dns.Name{"a.example", "b.example"},
		Nameservers: []NameserverInfo{
			{Addr: netip.MustParseAddr("10.9.0.1"), Host: "ns1.test", Provider: "P0"},
		},
		OpenResolvers: []netip.Addr{netip.MustParseAddr("10.9.1.1")},
	}
}

// testResponse builds a NOERROR answer for one (name, type) probe in the
// wire form the journal records.
func testResponse(name dns.Name, qt dns.Type, rdata string) []byte {
	q := dns.NewQuery(7, name, qt)
	r := q.Reply()
	r.Answers = append(r.Answers, dns.RR{
		Name: name, Class: dns.ClassINET, TTL: 300,
		Data: &dns.A{Addr: netip.MustParseAddr(rdata)},
	})
	wire, err := r.Pack()
	if err != nil {
		panic(err)
	}
	return wire
}

func TestJournalRoundtrip(t *testing.T) {
	dir := t.TempDir()
	cfg := journalTestConfig(1)
	j, err := OpenJournal(dir, cfg, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j.Resumed() {
		t.Fatal("fresh journal claims to be resumed")
	}
	server := cfg.Nameservers[0].Addr
	seg, err := j.newSegment()
	if err != nil {
		t.Fatal(err)
	}
	resp := testResponse("a.example", dns.TypeA, "203.0.113.1")
	if err := seg.answered(sweepURs, server, "a.example", dns.TypeA, resp); err != nil {
		t.Fatal(err)
	}
	if err := seg.failure(sweepURs, server, "b.example", dns.TypeTXT, dnsio.FailTimeout); err != nil {
		t.Fatal(err)
	}
	if err := seg.answered(sweepProtective, server, "canary.test", dns.TypeA,
		testResponse("canary.test", dns.TypeA, "203.0.113.9")); err != nil {
		t.Fatal(err)
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := j.Appended(); got != 3 {
		t.Errorf("Appended = %d, want 3", got)
	}

	j2, err := OpenJournal(dir, cfg, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Resumed() {
		t.Fatal("reopened journal not resumed")
	}
	if got := j2.ReplayedAnswered(); got != 2 {
		t.Errorf("ReplayedAnswered = %d, want 2", got)
	}
	if got := j2.ReplayedFailures(); got != 1 {
		t.Errorf("ReplayedFailures = %d, want 1", got)
	}
	if got := j2.TornSegments(); got != 0 {
		t.Errorf("TornSegments = %d, want 0", got)
	}
	key := probeKey{sweep: sweepURs, server: server, domain: "a.example", qtype: dns.TypeA}
	raw, ok := j2.rs.answered[key]
	if !ok {
		t.Fatal("answered record missing after replay")
	}
	dec, err := dns.Unpack(raw)
	if err != nil {
		t.Fatalf("journaled response failed to unpack: %v", err)
	}
	if len(dec.Answers) != 1 || dec.Answers[0].Data.String() != "203.0.113.1" {
		t.Errorf("replayed response corrupted: %+v", dec.Answers)
	}
	fkey := probeKey{sweep: sweepURs, server: server, domain: "b.example", qtype: dns.TypeTXT}
	if class, ok := j2.rs.failed[fkey]; !ok || class != dnsio.FailTimeout {
		t.Errorf("failure record = (%v, %v), want (timeout, true)", class, ok)
	}
	// New segments must number past the replayed ones.
	seg2, err := j2.newSegment()
	if err != nil {
		t.Fatal(err)
	}
	seg2.Close()
	if _, err := os.Stat(filepath.Join(dir, "seg-00001.wal")); err != nil {
		t.Errorf("resumed journal did not continue segment numbering: %v", err)
	}
}

func TestJournalPlanMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, journalTestConfig(1), JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenJournal(dir, journalTestConfig(2), JournalOptions{}); err == nil {
		t.Fatal("journal accepted a different sweep plan")
	}
}

// TestJournalTornTailDiscarded simulates a hard kill tearing the segment tail:
// the bytes after the last intact frame are garbage, and replay must keep the
// frames before the tear while discarding — never trusting — the torn one.
func TestJournalTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	cfg := journalTestConfig(1)
	j, err := OpenJournal(dir, cfg, JournalOptions{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	server := cfg.Nameservers[0].Addr
	seg, err := j.newSegment()
	if err != nil {
		t.Fatal(err)
	}
	// Two checkpoint frames of two records each.
	for i, name := range []dns.Name{"a.example", "b.example", "c.example", "d.example"} {
		if err := seg.answered(sweepURs, server, name, dns.TypeA,
			testResponse(name, dns.TypeA, netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)}).String())); err != nil {
			t.Fatal(err)
		}
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "seg-00000.wal")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear off the last 5 bytes — mid-frame, so the second frame no longer
	// verifies; the first frame's two records must survive.
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(dir, cfg, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.TornSegments(); got != 1 {
		t.Errorf("TornSegments = %d, want 1", got)
	}
	if got := j2.ReplayedAnswered(); got != 2 {
		t.Errorf("intact records lost to the torn tail: replayed %d, want 2", got)
	}

	// Corrupt a payload byte inside the first frame: CRC must catch it and
	// replay must trust nothing from that segment from there on.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(dir, cfg, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := j3.ReplayedAnswered(); got != 0 {
		t.Errorf("CRC-corrupt segment still replayed %d records", got)
	}
	if got := j3.TornSegments(); got != 1 {
		t.Errorf("TornSegments = %d, want 1", got)
	}
}

// TestJournalCheckpointDurability models a hard kill (no Close): only records
// flushed at checkpoint boundaries survive, and they replay cleanly — the
// unflushed tail simply never reached the file.
func TestJournalCheckpointDurability(t *testing.T) {
	dir := t.TempDir()
	cfg := journalTestConfig(1)
	j, err := OpenJournal(dir, cfg, JournalOptions{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	server := cfg.Nameservers[0].Addr
	seg, err := j.newSegment()
	if err != nil {
		t.Fatal(err)
	}
	names := []dns.Name{"a.example", "b.example", "c.example", "d.example", "e.example"}
	for i, name := range names {
		resp := testResponse(name, dns.TypeA, netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)}).String())
		if err := seg.answered(sweepURs, server, name, dns.TypeA, resp); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the 5th record is still buffered; checkpoints fired at 2 and 4.
	j2, err := OpenJournal(dir, cfg, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.ReplayedAnswered(); got != 4 {
		t.Errorf("ReplayedAnswered = %d, want 4 (two checkpoints of 2)", got)
	}
	if got := j2.TornSegments(); got != 0 {
		t.Errorf("TornSegments = %d, want 0 — flushed prefix must be clean", got)
	}
	seg.f.Close()
}

// TestJournalAnsweredFirstWins pins the replay merge rule: when the same probe
// key appears in multiple segments (main sweep in one run, re-queue in a
// later one), the first record in segment order is kept.
func TestJournalAnsweredFirstWins(t *testing.T) {
	dir := t.TempDir()
	cfg := journalTestConfig(1)
	j, err := OpenJournal(dir, cfg, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	server := cfg.Nameservers[0].Addr
	for _, rdata := range []string{"203.0.113.1", "203.0.113.2"} {
		seg, err := j.newSegment()
		if err != nil {
			t.Fatal(err)
		}
		if err := seg.answered(sweepURs, server, "a.example", dns.TypeA,
			testResponse("a.example", dns.TypeA, rdata)); err != nil {
			t.Fatal(err)
		}
		if err := seg.Close(); err != nil {
			t.Fatal(err)
		}
	}
	j2, err := OpenJournal(dir, cfg, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	key := probeKey{sweep: sweepURs, server: server, domain: "a.example", qtype: dns.TypeA}
	resp, err := dns.Unpack(j2.rs.answered[key])
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Answers[0].Data.String(); got != "203.0.113.1" {
		t.Errorf("duplicate key resolved to %q, want the first segment's record", got)
	}
}
