package core

import (
	"net/netip"
	"regexp"
	"sync"
	"time"

	"repro/internal/dns"
)

// Determiner implements §4.2: excluding correct and protective records from
// the collected URs, leaving the suspicious set.
type Determiner struct {
	cfg        *Config
	correct    *CorrectDB
	protective *ProtectiveDB

	// pdnsCutoff is the six-year passive-DNS window anchor, hoisted out of
	// the per-record path (AddDate walks the calendar on every call).
	pdnsCutoff time.Time

	// Condition toggles for the E14 ablation: all enabled by default.
	UseIPSubset   bool
	UseASSubset   bool
	UseGeoSubset  bool
	UseCertSubset bool
	UsePDNS       bool
	UseHTTPFilter bool
}

// NewDeterminer builds a determiner over the collected databases.
func NewDeterminer(cfg *Config, correct *CorrectDB, protective *ProtectiveDB) *Determiner {
	return &Determiner{
		cfg: cfg, correct: correct, protective: protective,
		pdnsCutoff:  cfg.Now.AddDate(-6, 0, 0),
		UseIPSubset: true, UseASSubset: true, UseGeoSubset: true,
		UseCertSubset: true, UsePDNS: true, UseHTTPFilter: true,
	}
}

// pdnsMemoKey caches one (domain, type, rdata) PDNS verdict. With interned
// rdata strings the map lookup compares pointers before bytes.
type pdnsMemoKey struct {
	domain dns.Name
	t      dns.Type
	rdata  string
}

// detMemo is one classification worker's private cache. A sweep produces the
// same domain once per nameserver and the same rdata on every server of a
// provider, so profile lookups and PDNS scans repeat heavily; the memo makes
// the repeats map-hit-only without any cross-worker locking. A nil profile
// entry is a cached "domain has no legitimate profile".
//
// Memos are created fresh per Determine/DetermineParallel invocation and
// never stored on the Determiner: experiments swap the underlying databases
// on a shared determiner (FalseNegativeCheck), which a persistent cache
// would silently ignore.
type detMemo struct {
	profiles map[dns.Name]*DomainProfile
	pdns     map[pdnsMemoKey]bool
}

func newDetMemo() *detMemo {
	return &detMemo{
		profiles: make(map[dns.Name]*DomainProfile, 64),
		pdns:     make(map[pdnsMemoKey]bool, 64),
	}
}

// lookupProfile resolves a domain's legitimate profile through the memo.
func (d *Determiner) lookupProfile(m *detMemo, domain dns.Name) *DomainProfile {
	if d.correct == nil {
		return nil
	}
	if m == nil {
		p, _ := d.correct.Lookup(domain)
		return p
	}
	if p, ok := m.profiles[domain]; ok {
		return p
	}
	p, _ := d.correct.Lookup(domain)
	m.profiles[domain] = p
	return p
}

// pdnsSeen resolves one passive-DNS verdict through the memo.
func (d *Determiner) pdnsSeen(m *detMemo, domain dns.Name, t dns.Type, rdata string) bool {
	if !d.UsePDNS || d.cfg.PDNS == nil {
		return false
	}
	if m == nil {
		return d.cfg.PDNS.Seen(domain, t, rdata, d.pdnsCutoff)
	}
	k := pdnsMemoKey{domain: domain, t: t, rdata: rdata}
	if v, ok := m.pdns[k]; ok {
		return v
	}
	v := d.cfg.PDNS.Seen(domain, t, rdata, d.pdnsCutoff)
	m.pdns[k] = v
	return v
}

// Determine labels every UR as protective, correct (with a reason), or
// leaves it unknown (suspicious). It returns the suspicious subset.
func (d *Determiner) Determine(urs []*UR) []*UR {
	var suspicious []*UR
	memo := newDetMemo()
	for _, u := range urs {
		d.classifyMemo(memo, u)
		if u.Category == CategoryUnknown {
			suspicious = append(suspicious, u)
		}
	}
	return suspicious
}

// DetermineParallel is Determine over a worker pool: the input is chunked,
// each worker classifies its chunk with a private memo, and the suspicious
// subset is collected serially afterwards — so the returned ordering is
// exactly Determine's regardless of worker count.
func (d *Determiner) DetermineParallel(urs []*UR, workers int) []*UR {
	if workers <= 1 || len(urs) < 2*minDetChunk {
		return d.Determine(urs)
	}
	chunk := (len(urs) + workers - 1) / workers
	if chunk < minDetChunk {
		chunk = minDetChunk
	}
	var wg sync.WaitGroup
	for start := 0; start < len(urs); start += chunk {
		end := start + chunk
		if end > len(urs) {
			end = len(urs)
		}
		wg.Add(1)
		go func(part []*UR) {
			defer wg.Done()
			memo := newDetMemo()
			for _, u := range part {
				d.classifyMemo(memo, u)
			}
		}(urs[start:end])
	}
	wg.Wait()
	var suspicious []*UR
	for _, u := range urs {
		if u.Category == CategoryUnknown {
			suspicious = append(suspicious, u)
		}
	}
	return suspicious
}

// minDetChunk keeps DetermineParallel from spawning goroutines over record
// counts where the memo warm-up costs more than the fan-out saves.
const minDetChunk = 128

func (d *Determiner) classify(u *UR) {
	d.classifyMemo(nil, u)
}

// classifyMemo classifies one UR, routing profile and PDNS lookups through
// the (possibly nil) worker memo. Safe for concurrent use across distinct
// memos: the databases are read-only here and each record is owned by one
// worker.
func (d *Determiner) classifyMemo(m *detMemo, u *UR) {
	// Protective records match exactly by (server, type, rdata).
	if d.protective != nil && d.protective.Match(u.Server.Addr, u.Type, u.RData) {
		u.Category = CategoryProtective
		u.Reason = ReasonProtective
		return
	}
	switch u.Type {
	case dns.TypeA:
		if reason, ok := d.correctA(m, u); ok {
			u.Category = CategoryCorrect
			u.Reason = reason
			return
		}
	case dns.TypeTXT:
		if reason, ok := d.correctTXT(m, u); ok {
			u.Category = CategoryCorrect
			u.Reason = reason
			return
		}
	default:
		// Extension types (MX, ...): exact match against the legitimate
		// profile or passive DNS, mirroring the TXT rule.
		if reason, ok := d.correctOther(m, u); ok {
			u.Category = CategoryCorrect
			u.Reason = reason
			return
		}
	}
	u.Category = CategoryUnknown
}

// correctA applies the Appendix B conditions: the record is correct when ANY
// of the subset conditions holds against the domain's legitimate profile,
// when passive DNS saw it within the window, or when the HTTP content says
// parked/redirect.
func (d *Determiner) correctA(m *detMemo, u *UR) (CorrectReason, bool) {
	profile := d.lookupProfile(m, u.Domain)
	addr, err := netip.ParseAddr(u.RData)
	if err != nil {
		return ReasonNone, false
	}
	if profile != nil {
		if d.UseIPSubset && profile.IPs[addr] {
			return ReasonIPSubset, true
		}
		if d.UseASSubset && u.ASN != 0 && profile.ASNs[u.ASN] {
			return ReasonASSubset, true
		}
		if d.UseGeoSubset && u.Country != "" && len(profile.Countries) > 0 &&
			profile.Countries[u.Country] && d.onlyCountrySignal(profile) {
			return ReasonGeoSubset, true
		}
		if d.UseCertSubset && u.Cert != nil && profile.CertFPs[u.Cert.Fingerprint] {
			return ReasonCertSubset, true
		}
	}
	if d.pdnsSeen(m, u.Domain, dns.TypeA, u.RData) {
		return ReasonPDNS, true
	}
	if d.UseHTTPFilter && u.HTTP.Reachable {
		if asciiContainsFold(u.HTTP.Body, "parked") || asciiContainsFold(u.HTTP.Body, "parking") {
			return ReasonParked, true
		}
		if u.HTTP.StatusCode/100 == 3 || asciiContainsFold(u.HTTP.Body, "redirecting") {
			return ReasonRedirect, true
		}
	}
	return ReasonNone, false
}

// onlyCountrySignal guards the geo condition: country containment alone is a
// weak signal when the legitimate set spans many countries (a CDN), where it
// is meaningful; for single-country sites it would whitelist any co-located
// attacker, so we require a multi-country (geo-distributed) profile.
func (d *Determiner) onlyCountrySignal(p *DomainProfile) bool {
	return len(p.Countries) >= 3
}

// correctTXT excludes TXT URs that exactly match a legitimately observed
// record or its PDNS history.
func (d *Determiner) correctTXT(m *detMemo, u *UR) (CorrectReason, bool) {
	if profile := d.lookupProfile(m, u.Domain); profile != nil && profile.TXTs[u.RData] {
		return ReasonTXTMatch, true
	}
	if d.pdnsSeen(m, u.Domain, dns.TypeTXT, u.RData) {
		return ReasonPDNS, true
	}
	return ReasonNone, false
}

// correctOther excludes extension-type URs that exactly match a
// legitimately observed record or history.
func (d *Determiner) correctOther(m *detMemo, u *UR) (CorrectReason, bool) {
	if profile := d.lookupProfile(m, u.Domain); profile != nil && profile.HasOther(u.Type, u.RData) {
		return ReasonTXTMatch, true
	}
	if d.pdnsSeen(m, u.Domain, u.Type, u.RData) {
		return ReasonPDNS, true
	}
	return ReasonNone, false
}

// --- TXT classification and IP extraction -------------------------------

// reVerif stays a regex: it is an alternation over mid-string keywords with
// no cheap anchor, and it runs only on records that fell through the SPF /
// DMARC / DKIM checks.
var reVerif = regexp.MustCompile(`(?i)(site-verification|domain-verification|verification=|_verify)`)

// asciiLower folds one ASCII byte to lower case.
func asciiLower(b byte) byte {
	if 'A' <= b && b <= 'Z' {
		return b + ('a' - 'A')
	}
	return b
}

// isWordByte mirrors RE2's ASCII \b word class: [0-9A-Za-z_].
func isWordByte(b byte) bool {
	return '0' <= b && b <= '9' || 'A' <= b && b <= 'Z' || 'a' <= b && b <= 'z' || b == '_'
}

// asciiContainsFold reports whether s contains sub under ASCII
// case-folding, without allocating. Replaces strings.Contains(
// strings.ToLower(s), sub), whose ToLower copies the full body per call.
func asciiContainsFold(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	c0 := asciiLower(sub[0])
	for i := 0; i+len(sub) <= len(s); i++ {
		if asciiLower(s[i]) != c0 {
			continue
		}
		j := 1
		for ; j < len(sub); j++ {
			if asciiLower(s[i+j]) != asciiLower(sub[j]) {
				break
			}
		}
		if j == len(sub) {
			return true
		}
	}
	return false
}

// hasTXTPrefixFold replicates the anchored `(?i)^"?v=...\b` TXT checks: an
// optional leading quote, a case-folded prefix match, and a word boundary
// after the prefix. prefix must be lower-case ASCII.
func hasTXTPrefixFold(s, prefix string) bool {
	if len(s) > 0 && s[0] == '"' {
		s = s[1:]
	}
	if len(s) < len(prefix) {
		return false
	}
	for i := 0; i < len(prefix); i++ {
		if asciiLower(s[i]) != prefix[i] {
			return false
		}
	}
	return len(s) == len(prefix) || !isWordByte(s[len(prefix)])
}

// containsFoldWord replicates `(?i)\bword\b` for a lower-case ASCII word
// whose first and last bytes are word bytes (v=dkim1).
func containsFoldWord(s, word string) bool {
	n := len(word)
	for i := 0; i+n <= len(s); i++ {
		if i > 0 && isWordByte(s[i-1]) {
			continue
		}
		j := 0
		for ; j < n; j++ {
			if asciiLower(s[i+j]) != word[j] {
				break
			}
		}
		if j == n && (i+n == len(s) || !isWordByte(s[i+n])) {
			return true
		}
	}
	return false
}

// ClassifyTXT buckets TXT rdata into the known categories of §4.2. The SPF /
// DMARC / DKIM checks are direct byte scans equivalent to the anchored
// regexes they replaced (`^"?v=spf1\b`, `^"?v=dmarc1\b`, `\bv=dkim1\b`);
// classify_test.go pins the equivalence over the fixture corpus.
func ClassifyTXT(rdata string) TXTCategory {
	switch {
	case hasTXTPrefixFold(rdata, "v=spf1"):
		return TXTSPF
	case hasTXTPrefixFold(rdata, "v=dmarc1"):
		return TXTDMARC
	case containsFoldWord(rdata, "v=dkim1"):
		return TXTDKIM
	case reVerif.MatchString(rdata):
		return TXTVerification
	default:
		return TXTOther
	}
}

func isDigit(b byte) bool { return '0' <= b && b <= '9' }

// matchIPv4At matches `(\d{1,3}\.){3}\d{1,3}\b` at position i (the caller
// has already checked the leading word boundary and first digit), returning
// the exclusive end offset or -1. Greedy with no backtracking, which is
// exactly the regex's effective behavior: every group byte is a digit, so
// shrinking a group can never expose the '.' or boundary the pattern needs
// next.
func matchIPv4At(s string, i int) int {
	p := i
	for g := 0; g < 4; g++ {
		if g > 0 {
			if p >= len(s) || s[p] != '.' {
				return -1
			}
			p++
		}
		n := 0
		for n < 3 && p < len(s) && isDigit(s[p]) {
			p++
			n++
		}
		if n == 0 {
			return -1
		}
	}
	if p < len(s) && isWordByte(s[p]) {
		return -1 // trailing \b
	}
	return p
}

// extractIPs pulls every plausible IPv4 address out of TXT rdata — SPF ip4:
// mechanisms, bare addresses in encoded commands, DMARC rua hosts, etc.
// A direct scanner equivalent to the old
// `\b(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})\b` FindAllString loop
// (extract_test.go pins the equivalence): candidates that fail ParseAddr —
// octets over 255, leading zeros — are skipped, and scanning resumes after
// the match like the regex's non-overlapping walk.
func extractIPs(rdata string) []netip.Addr {
	var out []netip.Addr
	var seen map[netip.Addr]bool
	for i := 0; i < len(rdata); {
		if !isDigit(rdata[i]) || (i > 0 && isWordByte(rdata[i-1])) {
			i++
			continue
		}
		end := matchIPv4At(rdata, i)
		if end < 0 {
			i++
			continue
		}
		if a, err := netip.ParseAddr(rdata[i:end]); err == nil && a.Is4() {
			if seen == nil {
				seen = make(map[netip.Addr]bool, 4)
			}
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
		i = end
	}
	return out
}
