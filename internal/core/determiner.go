package core

import (
	"net/netip"
	"regexp"
	"strings"

	"repro/internal/dns"
)

// Determiner implements §4.2: excluding correct and protective records from
// the collected URs, leaving the suspicious set.
type Determiner struct {
	cfg        *Config
	correct    *CorrectDB
	protective *ProtectiveDB

	// Condition toggles for the E14 ablation: all enabled by default.
	UseIPSubset   bool
	UseASSubset   bool
	UseGeoSubset  bool
	UseCertSubset bool
	UsePDNS       bool
	UseHTTPFilter bool
}

// NewDeterminer builds a determiner over the collected databases.
func NewDeterminer(cfg *Config, correct *CorrectDB, protective *ProtectiveDB) *Determiner {
	return &Determiner{
		cfg: cfg, correct: correct, protective: protective,
		UseIPSubset: true, UseASSubset: true, UseGeoSubset: true,
		UseCertSubset: true, UsePDNS: true, UseHTTPFilter: true,
	}
}

// Determine labels every UR as protective, correct (with a reason), or
// leaves it unknown (suspicious). It returns the suspicious subset.
func (d *Determiner) Determine(urs []*UR) []*UR {
	var suspicious []*UR
	for _, u := range urs {
		d.classify(u)
		if u.Category == CategoryUnknown {
			suspicious = append(suspicious, u)
		}
	}
	return suspicious
}

func (d *Determiner) classify(u *UR) {
	// Protective records match exactly by (server, type, rdata).
	if d.protective != nil && d.protective.Match(u.Server.Addr, u.Type, u.RData) {
		u.Category = CategoryProtective
		u.Reason = ReasonProtective
		return
	}
	switch u.Type {
	case dns.TypeA:
		if reason, ok := d.correctA(u); ok {
			u.Category = CategoryCorrect
			u.Reason = reason
			return
		}
	case dns.TypeTXT:
		if reason, ok := d.correctTXT(u); ok {
			u.Category = CategoryCorrect
			u.Reason = reason
			return
		}
	default:
		// Extension types (MX, ...): exact match against the legitimate
		// profile or passive DNS, mirroring the TXT rule.
		if reason, ok := d.correctOther(u); ok {
			u.Category = CategoryCorrect
			u.Reason = reason
			return
		}
	}
	u.Category = CategoryUnknown
}

// correctA applies the Appendix B conditions: the record is correct when ANY
// of the subset conditions holds against the domain's legitimate profile,
// when passive DNS saw it within the window, or when the HTTP content says
// parked/redirect.
func (d *Determiner) correctA(u *UR) (CorrectReason, bool) {
	profile, _ := d.correct.Lookup(u.Domain)
	addr, err := netip.ParseAddr(u.RData)
	if err != nil {
		return ReasonNone, false
	}
	if profile != nil {
		if d.UseIPSubset && profile.IPs[addr] {
			return ReasonIPSubset, true
		}
		if d.UseASSubset && u.ASN != 0 && profile.ASNs[u.ASN] {
			return ReasonASSubset, true
		}
		if d.UseGeoSubset && u.Country != "" && len(profile.Countries) > 0 &&
			profile.Countries[u.Country] && d.onlyCountrySignal(profile) {
			return ReasonGeoSubset, true
		}
		if d.UseCertSubset && u.Cert != nil && profile.CertFPs[u.Cert.Fingerprint] {
			return ReasonCertSubset, true
		}
	}
	if d.UsePDNS && d.cfg.PDNS != nil {
		cutoff := d.cfg.Now.AddDate(-6, 0, 0)
		if d.cfg.PDNS.Seen(u.Domain, dns.TypeA, u.RData, cutoff) {
			return ReasonPDNS, true
		}
	}
	if d.UseHTTPFilter && u.HTTP.Reachable {
		body := strings.ToLower(u.HTTP.Body)
		if strings.Contains(body, "parked") || strings.Contains(body, "parking") {
			return ReasonParked, true
		}
		if u.HTTP.StatusCode/100 == 3 || strings.Contains(body, "redirecting") {
			return ReasonRedirect, true
		}
	}
	return ReasonNone, false
}

// onlyCountrySignal guards the geo condition: country containment alone is a
// weak signal when the legitimate set spans many countries (a CDN), where it
// is meaningful; for single-country sites it would whitelist any co-located
// attacker, so we require a multi-country (geo-distributed) profile.
func (d *Determiner) onlyCountrySignal(p *DomainProfile) bool {
	return len(p.Countries) >= 3
}

// correctTXT excludes TXT URs that exactly match a legitimately observed
// record or its PDNS history.
func (d *Determiner) correctTXT(u *UR) (CorrectReason, bool) {
	if profile, ok := d.correct.Lookup(u.Domain); ok && profile.TXTs[u.RData] {
		return ReasonTXTMatch, true
	}
	if d.UsePDNS && d.cfg.PDNS != nil {
		cutoff := d.cfg.Now.AddDate(-6, 0, 0)
		if d.cfg.PDNS.Seen(u.Domain, dns.TypeTXT, u.RData, cutoff) {
			return ReasonPDNS, true
		}
	}
	return ReasonNone, false
}

// correctOther excludes extension-type URs that exactly match a
// legitimately observed record or history.
func (d *Determiner) correctOther(u *UR) (CorrectReason, bool) {
	if profile, ok := d.correct.Lookup(u.Domain); ok && profile.HasOther(u.Type, u.RData) {
		return ReasonTXTMatch, true
	}
	if d.UsePDNS && d.cfg.PDNS != nil {
		cutoff := d.cfg.Now.AddDate(-6, 0, 0)
		if d.cfg.PDNS.Seen(u.Domain, u.Type, u.RData, cutoff) {
			return ReasonPDNS, true
		}
	}
	return ReasonNone, false
}

// --- TXT classification and IP extraction -------------------------------

var (
	reSPF   = regexp.MustCompile(`(?i)^"?v=spf1\b`)
	reDMARC = regexp.MustCompile(`(?i)^"?v=dmarc1\b`)
	reDKIM  = regexp.MustCompile(`(?i)\bv=dkim1\b`)
	reVerif = regexp.MustCompile(`(?i)(site-verification|domain-verification|verification=|_verify)`)
	reIPv4  = regexp.MustCompile(`\b(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})\b`)
)

// ClassifyTXT buckets TXT rdata into the known categories of §4.2.
func ClassifyTXT(rdata string) TXTCategory {
	switch {
	case reSPF.MatchString(rdata):
		return TXTSPF
	case reDMARC.MatchString(rdata):
		return TXTDMARC
	case reDKIM.MatchString(rdata):
		return TXTDKIM
	case reVerif.MatchString(rdata):
		return TXTVerification
	default:
		return TXTOther
	}
}

// extractIPs pulls every plausible IPv4 address out of TXT rdata — SPF ip4:
// mechanisms, bare addresses in encoded commands, DMARC rua hosts, etc.
func extractIPs(rdata string) []netip.Addr {
	var out []netip.Addr
	seen := make(map[netip.Addr]bool)
	for _, m := range reIPv4.FindAllString(rdata, -1) {
		a, err := netip.ParseAddr(m)
		if err != nil || !a.Is4() {
			continue
		}
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}
