package core

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/dns"
	"repro/internal/ipam"
	"repro/internal/pdns"
	"repro/internal/websim"
)

var detNow = time.Date(2022, 4, 15, 0, 0, 0, 0, time.UTC)

func detConfig() (*Config, *CorrectDB, *ProtectiveDB) {
	cfg := &Config{PDNS: pdns.NewStore(), Now: detNow}
	correct := NewCorrectDB()
	prof := correct.Profile("site.com")
	prof.IPs[netip.MustParseAddr("93.0.0.10")] = true
	prof.ASNs[ipam.ASN(64500)] = true
	prof.Countries["US"] = true
	prof.Countries["DE"] = true
	prof.Countries["JP"] = true
	prof.CertFPs["cafecafe"] = true
	prof.TXTs[`"v=spf1 ip4:93.0.0.10 -all"`] = true
	protective := NewProtectiveDB()
	protective.Add(netip.MustParseAddr("100.1.0.53"), dns.TypeA, "100.1.0.200")
	return cfg, correct, protective
}

func aUR(server, rdata string) *UR {
	return &UR{
		Server: NameserverInfo{Addr: netip.MustParseAddr(server), Host: "ns1.h.test", Provider: "H"},
		Domain: "site.com", Type: dns.TypeA, RData: rdata,
	}
}

func TestDetermineProtective(t *testing.T) {
	cfg, correct, prot := detConfig()
	d := NewDeterminer(cfg, correct, prot)
	u := aUR("100.1.0.53", "100.1.0.200")
	d.classify(u)
	if u.Category != CategoryProtective || u.Reason != ReasonProtective {
		t.Errorf("got %v / %v", u.Category, u.Reason)
	}
	// Same rdata on a different server is NOT protective.
	u2 := aUR("100.1.0.54", "100.1.0.200")
	d.classify(u2)
	if u2.Category == CategoryProtective {
		t.Error("protective matched wrong server")
	}
}

func TestDetermineIPSubset(t *testing.T) {
	cfg, correct, prot := detConfig()
	d := NewDeterminer(cfg, correct, prot)
	u := aUR("100.1.0.54", "93.0.0.10")
	d.classify(u)
	if u.Category != CategoryCorrect || u.Reason != ReasonIPSubset {
		t.Errorf("got %v / %v", u.Category, u.Reason)
	}
}

func TestDetermineASSubset(t *testing.T) {
	cfg, correct, prot := detConfig()
	d := NewDeterminer(cfg, correct, prot)
	u := aUR("100.1.0.54", "93.0.0.99") // different IP, same AS
	u.ASN = 64500
	d.classify(u)
	if u.Reason != ReasonASSubset {
		t.Errorf("reason = %v", u.Reason)
	}
}

func TestDetermineGeoSubsetNeedsDistributedProfile(t *testing.T) {
	cfg, correct, prot := detConfig()
	d := NewDeterminer(cfg, correct, prot)
	u := aUR("100.1.0.54", "93.0.0.99")
	u.Country = "US"
	d.classify(u)
	if u.Reason != ReasonGeoSubset {
		t.Errorf("reason = %v (profile spans 3 countries)", u.Reason)
	}
	// Single-country profile: the geo condition must not fire.
	prof := correct.Profile("solo.com")
	prof.Countries["US"] = true
	u2 := &UR{Server: u.Server, Domain: "solo.com", Type: dns.TypeA,
		RData: "93.0.0.99", Country: "US"}
	d.classify(u2)
	if u2.Category == CategoryCorrect {
		t.Error("geo condition fired on single-country profile")
	}
}

func TestDetermineCertSubset(t *testing.T) {
	cfg, correct, prot := detConfig()
	d := NewDeterminer(cfg, correct, prot)
	u := aUR("100.1.0.54", "93.0.0.99")
	u.Cert = &websim.Cert{Fingerprint: "cafecafe"}
	d.classify(u)
	if u.Reason != ReasonCertSubset {
		t.Errorf("reason = %v", u.Reason)
	}
}

func TestDeterminePDNSWindow(t *testing.T) {
	cfg, correct, prot := detConfig()
	cfg.PDNS.Observe("site.com", dns.TypeA, "93.0.0.50", detNow.AddDate(-3, 0, 0))
	cfg.PDNS.Observe("site.com", dns.TypeA, "93.0.0.60", detNow.AddDate(-8, 0, 0)) // too old
	d := NewDeterminer(cfg, correct, prot)

	u := aUR("100.1.0.54", "93.0.0.50")
	d.classify(u)
	if u.Reason != ReasonPDNS {
		t.Errorf("in-window reason = %v", u.Reason)
	}
	u2 := aUR("100.1.0.54", "93.0.0.60")
	d.classify(u2)
	if u2.Category == CategoryCorrect {
		t.Error("out-of-window PDNS record excluded")
	}
}

func TestDetermineHTTPKeywords(t *testing.T) {
	cfg, correct, prot := detConfig()
	d := NewDeterminer(cfg, correct, prot)
	u := aUR("100.1.0.54", "93.0.0.70")
	u.HTTP = websim.ProbeResult{Reachable: true, StatusCode: 200,
		Body: "This domain is parked free"}
	d.classify(u)
	if u.Reason != ReasonParked {
		t.Errorf("reason = %v", u.Reason)
	}
	u2 := aUR("100.1.0.54", "93.0.0.71")
	u2.HTTP = websim.ProbeResult{Reachable: true, StatusCode: 302,
		Body: "Redirecting you to https://x"}
	d.classify(u2)
	if u2.Reason != ReasonRedirect {
		t.Errorf("reason = %v", u2.Reason)
	}
}

func TestDetermineSuspiciousFallthrough(t *testing.T) {
	cfg, correct, prot := detConfig()
	d := NewDeterminer(cfg, correct, prot)
	u := aUR("100.1.0.54", "66.6.6.6")
	u.HTTP = websim.ProbeResult{Reachable: true, StatusCode: 403, Body: "403"}
	sus := d.Determine([]*UR{u})
	if len(sus) != 1 || u.Category != CategoryUnknown {
		t.Errorf("suspicious = %d, category = %v", len(sus), u.Category)
	}
}

func TestDetermineTXT(t *testing.T) {
	cfg, correct, prot := detConfig()
	cfg.PDNS.Observe("site.com", dns.TypeTXT, `"old-verification=abc"`, detNow.AddDate(-2, 0, 0))
	d := NewDeterminer(cfg, correct, prot)

	match := &UR{Server: aUR("100.1.0.54", "").Server, Domain: "site.com",
		Type: dns.TypeTXT, RData: `"v=spf1 ip4:93.0.0.10 -all"`}
	d.classify(match)
	if match.Reason != ReasonTXTMatch {
		t.Errorf("reason = %v", match.Reason)
	}
	hist := &UR{Server: match.Server, Domain: "site.com",
		Type: dns.TypeTXT, RData: `"old-verification=abc"`}
	d.classify(hist)
	if hist.Reason != ReasonPDNS {
		t.Errorf("reason = %v", hist.Reason)
	}
	evil := &UR{Server: match.Server, Domain: "site.com",
		Type: dns.TypeTXT, RData: `"v=spf1 ip4:66.6.6.6 -all"`}
	d.classify(evil)
	if evil.Category != CategoryUnknown {
		t.Errorf("category = %v", evil.Category)
	}
}

func TestAblationTogglesDisableConditions(t *testing.T) {
	cfg, correct, prot := detConfig()
	d := NewDeterminer(cfg, correct, prot)
	d.UseIPSubset = false
	u := aUR("100.1.0.54", "93.0.0.10") // would match IP subset
	d.classify(u)
	if u.Reason == ReasonIPSubset {
		t.Error("disabled IP condition fired")
	}
	d2 := NewDeterminer(cfg, correct, prot)
	d2.UseHTTPFilter = false
	u2 := aUR("100.1.0.54", "93.0.0.70")
	u2.HTTP = websim.ProbeResult{Reachable: true, Body: "parked"}
	d2.classify(u2)
	if u2.Category == CategoryCorrect {
		t.Error("disabled HTTP filter fired")
	}
}

func TestClassifyTXT(t *testing.T) {
	cases := map[string]TXTCategory{
		`"v=spf1 ip4:1.2.3.4 -all"`:      TXTSPF,
		`"v=DMARC1; p=reject"`:           TXTDMARC,
		`"k=rsa; v=DKIM1; p=MIGf..."`:    TXTDKIM,
		`"google-site-verification=xyz"`: TXTVerification,
		`"cmd=deadbeef"`:                 TXTOther,
		`"random text"`:                  TXTOther,
		`"xx-domain-verification=abc"`:   TXTVerification,
	}
	for rdata, want := range cases {
		if got := ClassifyTXT(rdata); got != want {
			t.Errorf("ClassifyTXT(%s) = %v, want %v", rdata, got, want)
		}
	}
	if !TXTSPF.EmailRelated() || !TXTDMARC.EmailRelated() {
		t.Error("SPF/DMARC should be email-related")
	}
	if TXTDKIM.EmailRelated() || TXTOther.EmailRelated() {
		t.Error("DKIM/other should not be email-related")
	}
}

func TestExtractIPs(t *testing.T) {
	ips := extractIPs(`"v=spf1 ip4:93.0.0.1 ip4:93.0.0.2 ip4:93.0.0.1 -all"`)
	if len(ips) != 2 {
		t.Errorf("ips = %v (dedup expected)", ips)
	}
	if got := extractIPs(`"cmd=deadbeef no ips here"`); len(got) != 0 {
		t.Errorf("ips = %v", got)
	}
	if got := extractIPs(`"srv at 300.300.300.300"`); len(got) != 0 {
		t.Errorf("invalid quad parsed: %v", got)
	}
	if got := extractIPs(`"rua=mailto:a@93.0.0.9"`); len(got) != 1 {
		t.Errorf("embedded IP missed: %v", got)
	}
}

func TestCorrectOtherTypes(t *testing.T) {
	cfg, correct, prot := detConfig()
	prof := correct.Profile("site.com")
	prof.AddOther(dns.TypeMX, "10 mail.site.com.")
	cfg.PDNS.Observe("site.com", dns.TypeMX, "10 old-mail.site.com.", detNow.AddDate(-2, 0, 0))
	d := NewDeterminer(cfg, correct, prot)

	match := &UR{Server: aUR("100.1.0.54", "").Server, Domain: "site.com",
		Type: dns.TypeMX, RData: "10 mail.site.com."}
	d.classify(match)
	if match.Category != CategoryCorrect {
		t.Errorf("profile-matched MX: %v", match.Category)
	}
	hist := &UR{Server: match.Server, Domain: "site.com",
		Type: dns.TypeMX, RData: "10 old-mail.site.com."}
	d.classify(hist)
	if hist.Reason != ReasonPDNS {
		t.Errorf("historical MX reason: %v", hist.Reason)
	}
	evil := &UR{Server: match.Server, Domain: "site.com",
		Type: dns.TypeMX, RData: "10 relay.bulk-mail.biz."}
	d.classify(evil)
	if evil.Category != CategoryUnknown {
		t.Errorf("attacker MX: %v", evil.Category)
	}
	if !prof.HasOther(dns.TypeMX, "10 mail.site.com.") {
		t.Error("HasOther false for stored record")
	}
	if prof.HasOther(dns.TypeTXT, "10 mail.site.com.") {
		t.Error("HasOther matched wrong type")
	}
}

func TestCategoryStrings(t *testing.T) {
	cases := map[Category]string{
		CategoryUnknown: "unknown", CategoryCorrect: "correct",
		CategoryProtective: "protective", CategoryMalicious: "malicious",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
	if Category(42).String() == "" {
		t.Error("unknown category renders empty")
	}
}
