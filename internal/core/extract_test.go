// Differential pin for extractIPs: the hand-rolled IPv4 scanner must agree
// exactly — match boundaries, non-overlapping resume position, dedup order —
// with the regex FindAllString loop it replaced.
package core

import (
	"math/rand"
	"net/netip"
	"reflect"
	"regexp"
	"testing"
)

// refIPv4 is the original candidate pattern, kept as the reference.
var refIPv4 = regexp.MustCompile(`\b(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})\b`)

func refExtractIPs(rdata string) []netip.Addr {
	var out []netip.Addr
	seen := make(map[netip.Addr]bool)
	for _, m := range refIPv4.FindAllString(rdata, -1) {
		a, err := netip.ParseAddr(m)
		if err != nil || !a.Is4() {
			continue
		}
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

func assertSameIPs(t *testing.T, rdata string) {
	t.Helper()
	got, want := extractIPs(rdata), refExtractIPs(rdata)
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("extractIPs(%q) = %v, regex reference = %v", rdata, got, want)
	}
}

func TestExtractIPsFixtures(t *testing.T) {
	fixtures := []string{
		`"v=spf1 ip4:93.0.0.1 ip4:93.0.0.2 ip4:93.0.0.1 -all"`,
		`"cmd=deadbeef no ips here"`,
		`"srv at 300.300.300.300"`, // every octet over 255: ParseAddr rejects
		`"rua=mailto:a@93.0.0.9"`,
		`1.2.3.4`,
		`1.2.3.4.5`,  // greedy match stops at 1.2.3.4; the .5 tail has no quad
		`.1.2.3.4.`,  // dots are not word bytes, boundaries hold
		`a1.2.3.4`,   // no \b between 'a' and '1': no match at all
		`1.2.3.4a`,   // trailing word byte kills the final \b
		`01.2.3.4`,   // matches the pattern, ParseAddr rejects leading zero
		`001.002.003.004`,
		`0.0.0.0`,
		`255.255.255.255`,
		`256.1.1.1`, // matches the pattern, ParseAddr rejects the octet
		`1..2.3.4`,
		`1.2.3.`,
		`1.2.3`,
		`1234.5.6.7`, // 4-digit run: no octet split satisfies the pattern
		`1.2.3.4567`,
		`x 10.0.0.1, 10.0.0.2;10.0.0.1`,
		`9.9.9.9_`, // '_' is a word byte: trailing \b fails
		`_9.9.9.9`,
		`1.2.3.41.2.3.4`, // non-overlapping: "1.2.3.41" consumed first
		`"93.0.0.1"`,
		``,
	}
	for _, s := range fixtures {
		assertSameIPs(t, s)
	}
}

// TestExtractIPsDifferential compares the scanner against the regex over a
// seeded corpus dense in digits, dots, and word-boundary edge bytes.
func TestExtractIPsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	alphabet := "0123456789...  ax_:"
	for i := 0; i < 30000; i++ {
		b := make([]byte, rng.Intn(40))
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		assertSameIPs(t, string(b))
	}
}
