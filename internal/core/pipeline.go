package core

import (
	"context"
	"net/netip"
	"sync"
	"time"

	"repro/internal/dns"
	"repro/internal/dnsio"
)

// Result is the full output of a URHunter run.
type Result struct {
	// URs is every collected undelegated record, classified.
	URs []*UR
	// Suspicious is the subset that survived §4.2 exclusion (malicious +
	// unknown after §4.3).
	Suspicious []*UR

	Correct    *CorrectDB
	Protective *ProtectiveDB
	Analyzer   *Analyzer

	// Queries is the total DNS queries issued (the paper's "23 million DNS
	// responses" analogue).
	Queries int64

	// Coverage is the measurement-completeness summary across all three
	// collection sweeps: attempted vs answered probes, failures by class,
	// re-queue recoveries, and circuit-breaker trips.
	Coverage *Coverage

	// Stages carries the overlapped pipeline's stage timings. Observational
	// only — never rendered into reports, so byte-identity across parallelism
	// settings is unaffected.
	Stages *StageTimings
}

// StageTimings records how long each overlapped stage spent busy and the
// run's wall-clock. Because the stages overlap, the per-stage durations can
// sum past the wall time; that surplus is the overlap win.
type StageTimings struct {
	// Correct is the correct-record sweep's span (start of run → correct DB
	// ready).
	Correct time.Duration
	// Nameservers is the fused protective+UR sweep's span.
	Nameservers time.Duration
	// Determine is the streaming classification span: from the moment the
	// correct DB opened the gate until the last streamed batch was
	// classified.
	Determine time.Duration
	// Analyze is the §4.3 labeling span.
	Analyze time.Duration
	// Wall is the whole run.
	Wall time.Duration
}

// OverlapPercent reports how much stage work was hidden inside the wall
// clock: 100 * (sum of stage spans - wall) / sum. Zero means fully serial;
// larger is better.
func (s *StageTimings) OverlapPercent() float64 {
	if s == nil {
		return 0
	}
	sum := s.Correct + s.Nameservers + s.Determine + s.Analyze
	if sum <= 0 || s.Wall >= sum {
		return 0
	}
	return 100 * float64(sum-s.Wall) / float64(sum)
}

// Pipeline chains the three URHunter components.
type Pipeline struct {
	Cfg *Config
	// Determiner is exposed so experiments can toggle the Appendix B
	// conditions before Run (the E14 ablation).
	Determiner *Determiner

	collector *Collector
}

// NewPipeline builds a pipeline over a configured world.
func NewPipeline(cfg *Config) *Pipeline {
	return &Pipeline{Cfg: cfg, collector: NewCollector(cfg)}
}

// Collector exposes the collection component.
func (p *Pipeline) Collector() *Collector { return p.collector }

// partial snapshots what the collector managed before a sweep failed, so a
// cancelled or crashed run still reports its query and coverage books (the
// caller prints them alongside the error, and a journal holds the rest).
func (p *Pipeline) partial() *Result {
	return &Result{
		Queries:  p.collector.Queries(),
		Coverage: p.collector.Coverage(),
	}
}

// Run executes collection, determination, and analysis as an overlapped
// dataflow rather than five sequential barriers:
//
//	CollectCorrect ─────────┐ (gate: correct DB ready)
//	                        ├─→ determine workers ──→ merge ─→ sort ─→ analyze
//	fused NS sweep ── URs ──┘ (per-server batches)
//	NewAnalyzer (IDS corpus) ───────────────────────────────────┘
//
// The correct-record sweep and the fused protective+UR nameserver sweep run
// concurrently (disjoint endpoint sets). Each nameserver's UR batch streams
// into a pool of classification workers the moment the server's fused job
// finishes; the workers block only on the correct DB, so classification
// overlaps the sweep tail. Results land in per-worker slices and are merged
// through the same canonical sort the serial pipeline used, so reports are
// byte-identical at any Parallelism/DetermineWorkers setting — resumed or
// not.
//
// On error — including context cancellation mid-sweep — the returned Result
// is non-nil and carries the partial query/coverage books accumulated before
// the interruption.
func (p *Pipeline) Run(ctx context.Context) (*Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	t0 := time.Now()
	st := &StageTimings{}

	// The analyzer's IDS pass over the sandbox corpus depends on no sweep;
	// build it while collection runs. Collect-only runs (fleet shard
	// workers) skip it — determination and analysis happen once, after the
	// shard journals merge.
	analyzerCh := make(chan *Analyzer, 1)
	if p.Cfg.CollectOnly {
		analyzerCh <- nil
	} else {
		go func() { analyzerCh <- NewAnalyzer(p.Cfg) }()
	}

	protective := NewProtectiveDB()
	if p.Determiner == nil {
		p.Determiner = NewDeterminer(p.Cfg, nil, protective)
	} else {
		p.Determiner.correct = nil
		p.Determiner.protective = protective
	}
	det := p.Determiner

	var (
		correct    *CorrectDB
		correctErr error
		nsErr      error
		gateAt     time.Time
	)
	correctDone := make(chan struct{})
	stream := make(chan []*UR, streamBacklog)

	var sweeps sync.WaitGroup
	sweeps.Add(2)
	go func() {
		defer sweeps.Done()
		db, err := p.collector.CollectCorrect(ctx)
		st.Correct = time.Since(t0)
		correct, correctErr = db, err
		// det.correct must be visible before the gate opens; the channel
		// close is the happens-before edge the workers synchronize on.
		det.correct = db
		gateAt = time.Now()
		close(correctDone)
		if err != nil {
			cancel()
		}
	}()
	go func() {
		defer sweeps.Done()
		defer close(stream)
		nsErr = p.collector.collectNameservers(ctx, protective, func(batch []*UR) {
			if len(batch) > 0 {
				stream <- batch
			}
		})
		st.Nameservers = time.Since(t0)
		if nsErr != nil {
			cancel()
		}
	}()

	// Streaming determination: a server's batch is classifiable once the
	// correct DB exists — its protective records were finalized by its own
	// fused job before the batch was emitted. Workers always drain the
	// stream, even on error, so the sweep's emits never block forever.
	workers := p.Cfg.determineWorkers()
	shards := make([][]*UR, workers)
	var dwg sync.WaitGroup
	for i := 0; i < workers; i++ {
		dwg.Add(1)
		go func(i int) {
			defer dwg.Done()
			<-correctDone
			var local []*UR
			var memo *detMemo
			if det.correct != nil && !p.Cfg.CollectOnly {
				memo = newDetMemo()
			}
			for batch := range stream {
				if memo != nil {
					for _, u := range batch {
						p.collector.enrichOne(u)
						det.classifyMemo(memo, u)
					}
				}
				local = append(local, batch...)
			}
			shards[i] = local
		}(i)
	}
	sweeps.Wait()
	dwg.Wait()
	st.Determine = time.Since(gateAt)

	if err := pickErr(correctErr, nsErr, ctx.Err()); err != nil {
		return p.partial(), err
	}

	n := 0
	for _, s := range shards {
		n += len(s)
	}
	var urs []*UR
	if n > 0 {
		urs = make([]*UR, 0, n)
		for _, s := range shards {
			urs = append(urs, s...)
		}
	}
	sortURs(urs)
	var suspicious []*UR
	if !p.Cfg.CollectOnly {
		// Unclassified records default to CategoryUnknown, so a collect-only
		// run must not run this filter — every record would read suspicious.
		for _, u := range urs {
			if u.Category == CategoryUnknown {
				suspicious = append(suspicious, u)
			}
		}
	}

	analyzer := <-analyzerCh
	if analyzer != nil {
		ta := time.Now()
		analyzer.AnalyzeParallel(suspicious, workers)
		st.Analyze = time.Since(ta)
	}
	st.Wall = time.Since(t0)

	return &Result{
		URs:        urs,
		Suspicious: suspicious,
		Correct:    correct,
		Protective: protective,
		Analyzer:   analyzer,
		Queries:    p.collector.Queries(),
		Coverage:   p.collector.Coverage(),
		Stages:     st,
	}, nil
}

// FalseNegativeCheck is the §4.2 validation: it feeds the *delegated*
// records of every target (resolved through an open resolver) through the
// exclusion stage and returns how many were wrongly kept as suspicious —
// the paper reports zero.
func (p *Pipeline) FalseNegativeCheck(ctx context.Context, res *Result) (int, int, error) {
	if len(p.Cfg.OpenResolvers) == 0 {
		return 0, 0, nil
	}
	tr := p.Cfg.Transport
	if tr == nil {
		tr = p.Cfg.newSimTransport()
	}
	client := dnsio.NewClient(tr)
	client.SeedIDs(0xFACE)
	resolver := netip.AddrPortFrom(p.Cfg.OpenResolvers[0], dnsio.DNSPort)

	// Reuse the pipeline's determiner so ablated condition toggles are
	// reflected in the validation, as the E14 experiment requires.
	det := p.Determiner
	if det == nil {
		det = NewDeterminer(p.Cfg, res.Correct, res.Protective)
	} else {
		det.correct = res.Correct
		det.protective = res.Protective
	}
	total, falseNeg := 0, 0
	for _, target := range p.Cfg.Targets {
		for _, qt := range p.Cfg.queryTypes() {
			resp, err := client.Query(ctx, resolver, target, qt)
			if err != nil || resp.Header.RCode != dns.RCodeSuccess {
				continue
			}
			for _, rr := range resp.Answers {
				if rr.Type() != qt || rr.Name != target {
					continue
				}
				u := &UR{
					Server: NameserverInfo{Addr: resolver.Addr(), Host: "delegated", Provider: "delegated"},
					Domain: target, Type: qt, RData: rr.Data.String(), TTL: rr.TTL,
				}
				// Enrich the way the collector would.
				if qt == dns.TypeA {
					if addr, err := netip.ParseAddr(u.RData); err == nil {
						u.CorrespondingIPs = []netip.Addr{addr}
						if info, ok := p.Cfg.IPDB.Lookup(addr); ok {
							u.ASN, u.ASName, u.Country = info.ASN, info.ASName, info.Country
						}
						if p.Cfg.Web != nil {
							u.HTTP = p.Cfg.Web.Probe(p.Cfg.SrcAddr, addr)
							u.Cert = u.HTTP.Cert
						}
					}
				}
				total++
				det.classify(u)
				if u.Category == CategoryUnknown {
					falseNeg++
				}
			}
		}
	}
	return total, falseNeg, nil
}
