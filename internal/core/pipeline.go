package core

import (
	"context"
	"net/netip"

	"repro/internal/dns"
	"repro/internal/dnsio"
)

// Result is the full output of a URHunter run.
type Result struct {
	// URs is every collected undelegated record, classified.
	URs []*UR
	// Suspicious is the subset that survived §4.2 exclusion (malicious +
	// unknown after §4.3).
	Suspicious []*UR

	Correct    *CorrectDB
	Protective *ProtectiveDB
	Analyzer   *Analyzer

	// Queries is the total DNS queries issued (the paper's "23 million DNS
	// responses" analogue).
	Queries int64

	// Coverage is the measurement-completeness summary across all three
	// collection sweeps: attempted vs answered probes, failures by class,
	// re-queue recoveries, and circuit-breaker trips.
	Coverage *Coverage
}

// Pipeline chains the three URHunter components.
type Pipeline struct {
	Cfg *Config
	// Determiner is exposed so experiments can toggle the Appendix B
	// conditions before Run (the E14 ablation).
	Determiner *Determiner

	collector *Collector
}

// NewPipeline builds a pipeline over a configured world.
func NewPipeline(cfg *Config) *Pipeline {
	return &Pipeline{Cfg: cfg, collector: NewCollector(cfg)}
}

// Collector exposes the collection component.
func (p *Pipeline) Collector() *Collector { return p.collector }

// partial snapshots what the collector managed before a sweep failed, so a
// cancelled or crashed run still reports its query and coverage books (the
// caller prints them alongside the error, and a journal holds the rest).
func (p *Pipeline) partial() *Result {
	return &Result{
		Queries:  p.collector.Queries(),
		Coverage: p.collector.Coverage(),
	}
}

// Run executes collection, determination, and analysis. On error — including
// context cancellation mid-sweep — the returned Result is non-nil and carries
// the partial query/coverage books accumulated before the interruption.
func (p *Pipeline) Run(ctx context.Context) (*Result, error) {
	correct, err := p.collector.CollectCorrect(ctx)
	if err != nil {
		return p.partial(), err
	}
	protective, err := p.collector.CollectProtective(ctx)
	if err != nil {
		return p.partial(), err
	}
	urs, err := p.collector.CollectURs(ctx)
	if err != nil {
		return p.partial(), err
	}

	if p.Determiner == nil {
		p.Determiner = NewDeterminer(p.Cfg, correct, protective)
	} else {
		p.Determiner.correct = correct
		p.Determiner.protective = protective
	}
	suspicious := p.Determiner.Determine(urs)

	analyzer := NewAnalyzer(p.Cfg)
	analyzer.Analyze(suspicious)

	return &Result{
		URs:        urs,
		Suspicious: suspicious,
		Correct:    correct,
		Protective: protective,
		Analyzer:   analyzer,
		Queries:    p.collector.Queries(),
		Coverage:   p.collector.Coverage(),
	}, nil
}

// FalseNegativeCheck is the §4.2 validation: it feeds the *delegated*
// records of every target (resolved through an open resolver) through the
// exclusion stage and returns how many were wrongly kept as suspicious —
// the paper reports zero.
func (p *Pipeline) FalseNegativeCheck(ctx context.Context, res *Result) (int, int, error) {
	if len(p.Cfg.OpenResolvers) == 0 {
		return 0, 0, nil
	}
	client := dnsio.NewClient(&dnsio.SimTransport{Fabric: p.Cfg.Fabric, Src: p.Cfg.SrcAddr})
	client.SeedIDs(0xFACE)
	resolver := netip.AddrPortFrom(p.Cfg.OpenResolvers[0], dnsio.DNSPort)

	// Reuse the pipeline's determiner so ablated condition toggles are
	// reflected in the validation, as the E14 experiment requires.
	det := p.Determiner
	if det == nil {
		det = NewDeterminer(p.Cfg, res.Correct, res.Protective)
	} else {
		det.correct = res.Correct
		det.protective = res.Protective
	}
	total, falseNeg := 0, 0
	for _, target := range p.Cfg.Targets {
		for _, qt := range p.Cfg.queryTypes() {
			resp, err := client.Query(ctx, resolver, target, qt)
			if err != nil || resp.Header.RCode != dns.RCodeSuccess {
				continue
			}
			for _, rr := range resp.Answers {
				if rr.Type() != qt || rr.Name != target {
					continue
				}
				u := &UR{
					Server: NameserverInfo{Addr: resolver.Addr(), Host: "delegated", Provider: "delegated"},
					Domain: target, Type: qt, RData: rr.Data.String(), TTL: rr.TTL,
				}
				// Enrich the way the collector would.
				if qt == dns.TypeA {
					if addr, err := netip.ParseAddr(u.RData); err == nil {
						u.CorrespondingIPs = []netip.Addr{addr}
						if info, ok := p.Cfg.IPDB.Lookup(addr); ok {
							u.ASN, u.ASName, u.Country = info.ASN, info.ASName, info.Country
						}
						if p.Cfg.Web != nil {
							u.HTTP = p.Cfg.Web.Probe(p.Cfg.SrcAddr, addr)
							u.Cert = u.HTTP.Cert
						}
					}
				}
				total++
				det.classify(u)
				if u.Category == CategoryUnknown {
					falseNeg++
				}
			}
		}
	}
	return total, falseNeg, nil
}
