// Determinism pins for the overlapped pipeline: the streamed, sharded
// dataflow must produce byte-identical reports at any parallelism /
// determine-worker setting — chaos faults on or off, fresh or resumed from a
// journal — and the parallel determine/analyze entry points must match their
// serial counterparts record for record.
package core

import (
	"context"
	"fmt"
	"net/netip"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// renderReport fingerprints everything a rendered report consumes: the full
// UR set with classification outcomes in canonical order, the suspicious
// subset, the Table 1 aggregation, and the analyzer's IDS evidence set.
func renderReport(res *Result) string {
	var sb strings.Builder
	sb.WriteString(renderRecords(res))
	for _, u := range res.URs {
		fmt.Fprintf(&sb, "cls|%v|%v|%v|%v|%v\n",
			u.Category, u.Reason, u.TXTClass, u.MaliciousByIntel, u.MaliciousByIDS)
	}
	for _, row := range res.Table1() {
		fmt.Fprintf(&sb, "t1|%s|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d\n",
			row.Label, row.Domains, row.MaliciousDomains,
			row.Nameservers, row.MaliciousNameservers,
			row.Providers, row.MaliciousProviders,
			row.URs, row.MaliciousURs, row.IPs, row.MaliciousIPs)
	}
	for _, ip := range res.Analyzer.IDSFlaggedIPs() {
		fmt.Fprintf(&sb, "ids|%s\n", ip)
	}
	return sb.String()
}

// TestPipelineDeterministicAcrossWorkers is the parallel-vs-serial pin: the
// same world run fully serial (one sweep worker, one determine worker), at
// GOMAXPROCS, and at deliberately mismatched worker counts must render the
// same report bytes — with and without the deterministic chaos profile.
func TestPipelineDeterministicAcrossWorkers(t *testing.T) {
	grid := []struct{ par, det int }{
		{1, 1},
		{1, 8},
		{4, 1},
		{runtime.GOMAXPROCS(0), runtime.GOMAXPROCS(0)},
		{16, 32},
	}
	for _, chaos := range []bool{false, true} {
		name := "clean"
		if chaos {
			name = "chaos"
		}
		t.Run(name, func(t *testing.T) {
			var want string
			for i, g := range grid {
				fx := newChaosFixture(t, 23)
				if chaos {
					applyDeterministicFaults(fx)
				}
				fx.cfg.Parallelism = g.par
				fx.cfg.DetermineWorkers = g.det
				res, err := NewPipeline(fx.cfg).Run(context.Background())
				if err != nil {
					t.Fatalf("parallelism %d / determine %d: %v", g.par, g.det, err)
				}
				got := renderReport(res)
				if i == 0 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("parallelism %d / determine %d report differs from serial:\n--- got ---\n%s--- want ---\n%s",
						g.par, g.det, got, want)
				}
			}
		})
	}
}

// TestPipelineResumedStreamDeterministic extends the pin across a journal
// cut: a run interrupted mid-sweep and resumed at different sweep AND
// determine worker counts must still render the uninterrupted run's bytes —
// the replay path feeds the same determine stream the live sweep does.
func TestPipelineResumedStreamDeterministic(t *testing.T) {
	fx := newChaosFixture(t, 11)
	applyDeterministicFaults(fx)
	baseline, err := NewPipeline(fx.cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := renderReport(baseline)

	dir := t.TempDir()
	_, _, _, err = runJournaled(t, dir, applyDeterministicFaults, context.Background(),
		func(j *Journal, cancel context.CancelFunc) {
			j.AppendHook = func(total int64) {
				if total == 60 {
					cancel()
				}
			}
		})
	if err == nil {
		t.Fatal("interrupted run reported no error")
	}

	fx2 := newChaosFixture(t, 11)
	applyDeterministicFaults(fx2)
	fx2.cfg.Parallelism = 2
	fx2.cfg.DetermineWorkers = 7
	j2, err := OpenJournal(dir, fx2.cfg, JournalOptions{CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	fx2.cfg.Journal = j2
	res, err := NewPipeline(fx2.cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(res); got != want {
		t.Errorf("resumed run at different worker counts diverged:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPipelineStageTimings sanity-checks the observability surface: every
// stage span is populated, and the overlap metric stays in range.
func TestPipelineStageTimings(t *testing.T) {
	fx := newChaosFixture(t, 7)
	res, err := NewPipeline(fx.cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stages
	if st == nil {
		t.Fatal("no stage timings on result")
	}
	if st.Wall <= 0 || st.Correct <= 0 || st.Nameservers <= 0 {
		t.Errorf("unpopulated stage spans: %+v", st)
	}
	if st.Determine < 0 || st.Analyze < 0 {
		t.Errorf("negative stage spans: %+v", st)
	}
	if p := st.OverlapPercent(); p < 0 || p >= 100 {
		t.Errorf("overlap %% out of range: %v", p)
	}
	var none *StageTimings
	if none.OverlapPercent() != 0 {
		t.Error("nil timings must report zero overlap")
	}
}

// TestDetermineParallelMatchesSerial pins the chunked determiner: same
// categories, reasons, and suspicious ordering as the serial pass at every
// worker count, over enough records to cross the minDetChunk fan-out floor.
func TestDetermineParallelMatchesSerial(t *testing.T) {
	build := func() []*UR {
		var urs []*UR
		for i := 0; i < 600; i++ {
			u := aUR(fmt.Sprintf("100.1.%d.%d", i%4, 53+i%8), fmt.Sprintf("93.0.%d.%d", i%3, i%50))
			if i%5 == 0 {
				u.RData = "93.0.0.10" // IP-subset hit on the site.com profile
			}
			if i%7 == 0 {
				u.ASN = 64500
			}
			urs = append(urs, u)
		}
		return urs
	}
	cfg, correct, prot := detConfig()
	serial := build()
	d := NewDeterminer(cfg, correct, prot)
	wantSus := d.Determine(serial)

	for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0) + 1, 64} {
		urs := build()
		gotSus := NewDeterminer(cfg, correct, prot).DetermineParallel(urs, workers)
		if len(gotSus) != len(wantSus) {
			t.Fatalf("workers %d: %d suspicious, want %d", workers, len(gotSus), len(wantSus))
		}
		for i := range urs {
			if urs[i].Category != serial[i].Category || urs[i].Reason != serial[i].Reason {
				t.Fatalf("workers %d: record %d = %v/%v, want %v/%v",
					workers, i, urs[i].Category, urs[i].Reason, serial[i].Category, serial[i].Reason)
			}
		}
		for i := range gotSus {
			if gotSus[i].RData != wantSus[i].RData || gotSus[i].Server.Addr != wantSus[i].Server.Addr {
				t.Fatalf("workers %d: suspicious order diverged at %d", workers, i)
			}
		}
	}
}

// TestAnalyzeParallelMatchesSerial pins the fanned-out §4.3 labeling against
// Analyze over a corpus large enough to actually chunk.
func TestAnalyzeParallelMatchesSerial(t *testing.T) {
	cfg := analyzerConfig()
	ips := []netip.Addr{intelIP, idsIP, bothIP, cleanIP, lowSevIP}
	build := func() []*UR {
		var urs []*UR
		for i := 0; i < 600; i++ {
			u := susA(ips[i%len(ips)])
			u.Domain = "site.com"
			urs = append(urs, u)
		}
		return urs
	}
	serial := build()
	NewAnalyzer(cfg).Analyze(serial)
	for _, workers := range []int{2, runtime.GOMAXPROCS(0) + 1, 32} {
		urs := build()
		NewAnalyzer(cfg).AnalyzeParallel(urs, workers)
		for i := range urs {
			if urs[i].Category != serial[i].Category ||
				urs[i].MaliciousByIntel != serial[i].MaliciousByIntel ||
				urs[i].MaliciousByIDS != serial[i].MaliciousByIDS {
				t.Fatalf("workers %d: record %d = %+v, want %+v", workers, i, urs[i], serial[i])
			}
		}
	}
}

// TestIDSFlaggedIPsCanonical pins the satellite fix: the evidence set comes
// back address-sorted and identical on every call, not in map-lottery order.
func TestIDSFlaggedIPsCanonical(t *testing.T) {
	a := NewAnalyzer(analyzerConfig())
	ids := a.IDSFlaggedIPs()
	if len(ids) == 0 {
		t.Fatal("fixture produced no IDS evidence")
	}
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 }) {
		t.Errorf("IDSFlaggedIPs not sorted: %v", ids)
	}
	for i := 0; i < 5; i++ {
		if again := a.IDSFlaggedIPs(); !reflect.DeepEqual(ids, again) {
			t.Fatalf("call %d returned different slice: %v vs %v", i, again, ids)
		}
	}
}
