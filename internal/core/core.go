package core
