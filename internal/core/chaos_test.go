package core

import (
	"context"
	"fmt"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/ipam"
	"repro/internal/simnet"
)

// chaosFixture wires a mid-size measurement surface for fault-matrix runs:
// six nameservers all carrying the same undelegated zone replica, one open
// resolver answering the legitimate addresses, twelve targets. Every genuine
// rdata string is recorded so tests can assert that no spoofed or garbage
// response ever surfaces as a collected record.
type chaosFixture struct {
	cfg      *Config
	fabric   *simnet.Fabric
	nsAddrs  []netip.Addr
	resolver netip.Addr
	genuine  map[string]bool
}

func newChaosFixture(t *testing.T, seed int64) *chaosFixture {
	t.Helper()
	const numNS, numTargets = 6, 12
	fabric := simnet.New(seed)
	fx := &chaosFixture{fabric: fabric, genuine: map[string]bool{}}

	hosted := make(map[dns.Name]netip.Addr, numTargets)
	legit := make(map[dns.Name]netip.Addr, numTargets)
	targets := make([]dns.Name, 0, numTargets)
	for j := 0; j < numTargets; j++ {
		name := dns.Name(fmt.Sprintf("t%02d.example", j))
		targets = append(targets, name)
		hosted[name] = netip.MustParseAddr(fmt.Sprintf("203.0.113.%d", j+1))
		legit[name] = netip.MustParseAddr(fmt.Sprintf("198.51.100.%d", j+1))
		fx.genuine[(&dns.A{Addr: hosted[name]}).String()] = true
		fx.genuine[dns.NewTXT("v=spf1 ip4:"+hosted[name].String()+" -all").String()] = true
	}

	zoneFor := func(answers map[dns.Name]netip.Addr) dnsio.ResponderFunc {
		return func(_ netip.Addr, q *dns.Message) *dns.Message {
			r := q.Reply()
			addr, ok := answers[q.Question().Name]
			if !ok {
				r.Header.RCode = dns.RCodeNXDomain
				return r
			}
			switch q.Question().Type {
			case dns.TypeA:
				r.Answers = append(r.Answers, dns.RR{Name: q.Question().Name,
					Class: dns.ClassINET, TTL: 300, Data: &dns.A{Addr: addr}})
			case dns.TypeTXT:
				r.Answers = append(r.Answers, dns.RR{Name: q.Question().Name,
					Class: dns.ClassINET, TTL: 300,
					Data: dns.NewTXT("v=spf1 ip4:" + addr.String() + " -all")})
			}
			return r
		}
	}

	var nss []NameserverInfo
	for i := 0; i < numNS; i++ {
		addr := netip.MustParseAddr(fmt.Sprintf("10.0.0.%d", i+1))
		if _, err := dnsio.AttachSim(fabric, addr, zoneFor(hosted)); err != nil {
			t.Fatal(err)
		}
		fx.nsAddrs = append(fx.nsAddrs, addr)
		nss = append(nss, NameserverInfo{Addr: addr,
			Host: dns.Name(fmt.Sprintf("ns%d.chaos.test", i+1)), Provider: fmt.Sprintf("P%d", i%3)})
	}
	fx.resolver = netip.MustParseAddr("10.0.1.1")
	if _, err := dnsio.AttachSim(fabric, fx.resolver, zoneFor(legit)); err != nil {
		t.Fatal(err)
	}

	fx.cfg = &Config{
		Fabric:        fabric,
		IPDB:          ipam.New(),
		SrcAddr:       netip.MustParseAddr("10.0.2.1"),
		Targets:       targets,
		Nameservers:   nss,
		OpenResolvers: []netip.Addr{fx.resolver},
		Now:           time.Date(2022, 4, 15, 0, 0, 0, 0, time.UTC),
		Parallelism:   4,
		Seed:          seed,
	}
	return fx
}

// checkCoverageConsistent asserts the bookkeeping invariants every run must
// satisfy regardless of faults: totals equal the per-server sums, the failure
// histogram accounts for exactly the unanswered probes, and recoveries are a
// subset of answers.
func checkCoverageConsistent(t *testing.T, cov *Coverage) {
	t.Helper()
	if cov == nil {
		t.Fatal("no coverage on result")
	}
	var att, ans, rec int64
	for _, sc := range cov.PerServer {
		if sc.Failed != sc.Attempted-sc.Answered {
			t.Errorf("server %s: failed %d != attempted %d - answered %d",
				sc.Addr, sc.Failed, sc.Attempted, sc.Answered)
		}
		if sc.Recovered > sc.Answered {
			t.Errorf("server %s: recovered %d > answered %d", sc.Addr, sc.Recovered, sc.Answered)
		}
		att += sc.Attempted
		ans += sc.Answered
		rec += sc.Recovered
	}
	if att != cov.Attempted || ans != cov.Answered || rec != cov.RetriedRecovered {
		t.Errorf("per-server sums %d/%d/%d != totals %d/%d/%d",
			att, ans, rec, cov.Attempted, cov.Answered, cov.RetriedRecovered)
	}
	var byClass int64
	for class, n := range cov.FailedByClass {
		if n < 0 {
			t.Errorf("negative count for class %s", class)
		}
		byClass += n
	}
	if byClass != cov.Failed() {
		t.Errorf("failure histogram sums to %d, want %d unanswered probes", byClass, cov.Failed())
	}
}

// checkNoFalseRecords asserts the central chaos invariant: every collected
// record — and in particular every suspicious one — carries rdata the genuine
// zone actually serves. Spoofed, garbage, truncated, or SERVFAIL responses
// must never surface as records.
func checkNoFalseRecords(t *testing.T, fx *chaosFixture, res *Result) {
	t.Helper()
	for _, u := range res.URs {
		if !fx.genuine[u.RData] {
			t.Errorf("fabricated record surfaced: server=%s domain=%s type=%s rdata=%q",
				u.Server.Addr, u.Domain, u.Type, u.RData)
		}
	}
	for _, u := range res.Suspicious {
		if !fx.genuine[u.RData] {
			t.Errorf("fabricated record classified suspicious: %q", u.RData)
		}
	}
}

// chaosPlanSize is the fixture's full probe plan: 6 NS x 12 targets x 2 types
// for the UR sweep, 6 NS x 2 canary probes, 1 resolver x 12 targets x 2 types.
const chaosPlanSize = 6*12*2 + 6*2 + 1*12*2

// TestChaosFaultMatrix runs the full pipeline under one fault family at a
// time and asserts the per-family invariants plus the shared ones: no panic,
// no error, consistent coverage books, no fabricated records.
func TestChaosFaultMatrix(t *testing.T) {
	cases := []struct {
		name  string
		apply func(fx *chaosFixture)
		check func(t *testing.T, fx *chaosFixture, res *Result)
	}{
		{
			name:  "baseline",
			apply: func(fx *chaosFixture) {},
			check: func(t *testing.T, fx *chaosFixture, res *Result) {
				cov := res.Coverage
				if cov.Attempted != chaosPlanSize {
					t.Errorf("attempted = %d, want %d", cov.Attempted, chaosPlanSize)
				}
				if cov.Failed() != 0 || cov.RetriedRecovered != 0 || cov.BreakerTrips != 0 {
					t.Errorf("zero-fault run booked failures: %+v", cov)
				}
				if len(res.URs) != 6*12*2 {
					t.Errorf("URs = %d, want %d", len(res.URs), 6*12*2)
				}
			},
		},
		{
			name: "loss30-global",
			apply: func(fx *chaosFixture) {
				fx.fabric.SetLossRate(0.30)
			},
			check: func(t *testing.T, fx *chaosFixture, res *Result) {
				if fx.fabric.Drops() == 0 {
					t.Error("loss never fired")
				}
				// Global loss is drawn from per-shard RNGs, so the exact count
				// is scheduling-dependent; the retry + re-queue machinery must
				// still hold coverage far above the raw 49% two-attempt floor.
				if r := res.Coverage.AnsweredRatio(); r < 0.90 {
					t.Errorf("answered ratio %.3f under 30%% loss", r)
				}
			},
		},
		{
			name: "wrongid-one-ns",
			apply: func(fx *chaosFixture) {
				dnsio.SetSimFault(fx.fabric, fx.nsAddrs[3], simnet.FaultProfile{WrongIDRate: 1})
			},
			check: func(t *testing.T, fx *chaosFixture, res *Result) {
				if res.Coverage.FailedByClass["spoofed"] == 0 {
					t.Error("no spoofed failures recorded")
				}
				for _, u := range res.URs {
					if u.Server.Addr == fx.nsAddrs[3] {
						t.Errorf("record collected from fully-spoofed server: %q", u.RData)
					}
				}
			},
		},
		{
			name: "garbage-one-ns",
			apply: func(fx *chaosFixture) {
				dnsio.SetSimFault(fx.fabric, fx.nsAddrs[2], simnet.FaultProfile{GarbageRate: 1})
			},
			check: func(t *testing.T, fx *chaosFixture, res *Result) {
				if res.Coverage.FailedByClass["malformed"] == 0 {
					t.Error("no malformed failures recorded")
				}
				for _, u := range res.URs {
					if u.Server.Addr == fx.nsAddrs[2] {
						t.Errorf("record collected from garbage server: %q", u.RData)
					}
				}
			},
		},
		{
			name: "servfail-one-ns",
			apply: func(fx *chaosFixture) {
				dnsio.SetSimFault(fx.fabric, fx.nsAddrs[1], simnet.FaultProfile{ServFail: true})
			},
			check: func(t *testing.T, fx *chaosFixture, res *Result) {
				// SERVFAIL is an answer: the server responded, collection just
				// has nothing to extract. Coverage stays complete.
				if res.Coverage.Failed() != 0 {
					t.Errorf("SERVFAIL booked as failure: %+v", res.Coverage.FailedByClass)
				}
				for _, u := range res.URs {
					if u.Server.Addr == fx.nsAddrs[1] {
						t.Errorf("record collected from SERVFAIL server: %q", u.RData)
					}
				}
			},
		},
		{
			name: "blackhole-one-ns",
			apply: func(fx *chaosFixture) {
				dnsio.SetSimFault(fx.fabric, fx.nsAddrs[0], simnet.FaultProfile{Blackhole: true})
			},
			check: func(t *testing.T, fx *chaosFixture, res *Result) {
				cov := res.Coverage
				if cov.BreakerTrips == 0 {
					t.Error("breaker never tripped on a blackholed server")
				}
				if cov.FailedByClass["timeout"]+cov.FailedByClass["breaker-open"] == 0 {
					t.Errorf("blackhole failures misclassified: %+v", cov.FailedByClass)
				}
				for _, sc := range cov.PerServer {
					if sc.Addr == fx.nsAddrs[0] {
						if sc.Answered != 0 {
							t.Errorf("blackholed server answered %d probes", sc.Answered)
						}
					} else if sc.Failed != 0 {
						t.Errorf("healthy server %s lost %d probes", sc.Addr, sc.Failed)
					}
				}
			},
		},
		{
			name: "flapping-two-ns",
			apply: func(fx *chaosFixture) {
				for _, addr := range fx.nsAddrs[:2] {
					dnsio.SetSimFault(fx.fabric, addr, simnet.FaultProfile{FlapPeriod: 16, FlapDown: 3})
				}
			},
			check: func(t *testing.T, fx *chaosFixture, res *Result) {
				cov := res.Coverage
				if cov.RetriedRecovered == 0 {
					t.Error("re-queue pass recovered nothing from flapping servers")
				}
				if r := cov.AnsweredRatio(); r < 0.95 {
					t.Errorf("answered ratio %.3f with two flapping servers", r)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fx := newChaosFixture(t, 11)
			tc.apply(fx)
			res, err := NewPipeline(fx.cfg).Run(context.Background())
			if err != nil {
				t.Fatalf("pipeline failed under %s: %v", tc.name, err)
			}
			checkCoverageConsistent(t, res.Coverage)
			checkNoFalseRecords(t, fx, res)
			tc.check(t, fx, res)
		})
	}
}

// applyKitchenSink installs the acceptance-gate fault mix: 30% datagram loss
// and 5% wrong-ID spoofing on every endpoint (per-endpoint profiles, so the
// draws are pure functions of the fabric seed), plus two flapping
// nameservers. No global loss is used — the whole scenario is deterministic.
func applyKitchenSink(fx *chaosFixture) {
	base := simnet.FaultProfile{LossRate: 0.30, WrongIDRate: 0.05}
	for i, addr := range fx.nsAddrs {
		p := base
		if i < 2 {
			p.FlapPeriod, p.FlapDown = 16, 3
		}
		dnsio.SetSimFault(fx.fabric, addr, p)
	}
	dnsio.SetSimFault(fx.fabric, fx.resolver, base)
}

// TestChaosKitchenSinkAcceptance is the issue's acceptance gate: the pipeline
// at 30% loss + 5% wrong-ID spoofing + 2 flapping nameservers completes
// without error, reports Answered/Attempted >= 0.95 after the re-queue pass,
// and classifies zero spoofed or garbage responses as suspicious.
func TestChaosKitchenSinkAcceptance(t *testing.T) {
	fx := newChaosFixture(t, 11)
	applyKitchenSink(fx)
	res, err := NewPipeline(fx.cfg).Run(context.Background())
	if err != nil {
		t.Fatalf("pipeline failed under kitchen-sink faults: %v", err)
	}
	checkCoverageConsistent(t, res.Coverage)
	checkNoFalseRecords(t, fx, res)
	cov := res.Coverage
	if cov.Attempted != chaosPlanSize {
		t.Errorf("attempted = %d, want %d (re-queue retries must not re-count)",
			cov.Attempted, chaosPlanSize)
	}
	if r := cov.AnsweredRatio(); r < 0.95 {
		t.Errorf("answered ratio %.4f < 0.95 acceptance floor (%d/%d, failed: %v)",
			r, cov.Answered, cov.Attempted, cov.FailedByClass)
	}
	if cov.RetriedRecovered == 0 {
		t.Error("re-queue pass recovered nothing at 30% loss")
	}
	if fx.fabric.SpoofsInjected() == 0 {
		t.Error("wrong-ID fault never fired")
	}
	if s := res.CoverageSummary(); !strings.Contains(s, "probes answered") {
		t.Errorf("coverage summary = %q", s)
	}
}

// TestChaosDeterministicAcrossRuns pins chaos reproducibility: two fresh
// worlds built from the same seed under the same per-endpoint fault mix
// produce byte-identical record sets and identical coverage books, worker
// scheduling notwithstanding.
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	render := func(res *Result) string {
		var sb strings.Builder
		for _, u := range res.URs {
			fmt.Fprintf(&sb, "%s|%s|%s|%d|%s\n",
				u.Server.Addr, u.Domain, u.Type, u.TTL, u.RData)
		}
		return sb.String()
	}
	run := func() (*Result, error) {
		fx := newChaosFixture(t, 11)
		applyKitchenSink(fx)
		return NewPipeline(fx.cfg).Run(context.Background())
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if ra, rb := render(a), render(b); ra != rb {
		t.Errorf("same-seed chaos runs diverged:\n--- run A ---\n%s--- run B ---\n%s", ra, rb)
	}
	if !reflect.DeepEqual(a.Coverage, b.Coverage) {
		t.Errorf("coverage books diverged:\n%+v\n%+v", a.Coverage, b.Coverage)
	}
	if a.Queries != b.Queries {
		t.Errorf("query plans diverged: %d vs %d", a.Queries, b.Queries)
	}
}

// TestChaosZeroFaultOutputUnchanged asserts the no-regression invariant: with
// zero faults installed, a world run through the chaos-hardened collector
// yields the same record set at any parallelism — the resilience machinery is
// entirely latent until something actually fails.
func TestChaosZeroFaultOutputUnchanged(t *testing.T) {
	render := func(res *Result) string {
		var sb strings.Builder
		for _, u := range res.URs {
			fmt.Fprintf(&sb, "%s|%s|%s|%d|%s\n",
				u.Server.Addr, u.Domain, u.Type, u.TTL, u.RData)
		}
		return sb.String()
	}
	var want string
	for i, p := range []int{1, 4, 16} {
		fx := newChaosFixture(t, 11)
		fx.cfg.Parallelism = p
		res, err := NewPipeline(fx.cfg).Run(context.Background())
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if res.Coverage.Failed() != 0 || res.Coverage.BreakerTrips != 0 {
			t.Fatalf("parallelism %d: zero-fault run booked failures", p)
		}
		got := render(res)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("parallelism %d output differs from parallelism 1", p)
		}
	}
}
