package core

import (
	"net/netip"
	"sort"
	"sync"

	"repro/internal/dns"
	idspkg "repro/internal/ids"
)

// Analyzer implements §4.3: malicious-behaviour analysis over threat
// intelligence and IDS-inspected sandbox traffic.
type Analyzer struct {
	cfg *Config

	// idsIPs caches the set of IPs with ≥medium-severity alerts.
	idsIPs map[netip.Addr]bool
	// alerts keeps every fired alert for the Figure 3(c) breakdown.
	alerts []idspkg.Alert
}

// NewAnalyzer builds the analyzer and pre-computes the IDS evidence set from
// the sandbox reports.
func NewAnalyzer(cfg *Config) *Analyzer {
	a := &Analyzer{cfg: cfg, idsIPs: make(map[netip.Addr]bool)}
	if cfg.IDS != nil {
		for _, rep := range cfg.SandboxReports {
			alerts := cfg.IDS.InspectReport(rep)
			a.alerts = append(a.alerts, alerts...)
			for _, ip := range idspkg.AlertedIPs(alerts, idspkg.SeverityMedium) {
				a.idsIPs[ip] = true
			}
		}
	}
	return a
}

// Alerts returns every alert fired over the sandbox corpus.
func (a *Analyzer) Alerts() []idspkg.Alert { return a.alerts }

// IDSFlaggedIPs returns the evidence set from sandbox traffic in canonical
// (address) order, so callers see the same slice on every run instead of
// one draw from the map iteration lottery.
func (a *Analyzer) IDSFlaggedIPs() []netip.Addr {
	out := make([]netip.Addr, 0, len(a.idsIPs))
	for ip := range a.idsIPs {
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Analyze labels suspicious URs as malicious when a corresponding IP is
// flagged by threat intelligence or carries IDS-alerted traffic. TXT records
// first inherit corresponding IPs from same-server same-domain A records;
// TXT records with no corresponding IP at all stay unknown (the paper
// excludes them from the malicious determination).
func (a *Analyzer) Analyze(suspicious []*UR) {
	a.attachTXTCorrespondence(suspicious)
	a.label(suspicious)
}

// AnalyzeParallel is Analyze with the per-record labeling fanned out over
// workers. The TXT↔A correspondence index is the one genuine barrier — it
// needs every A record before any TXT record can be finished — and runs
// serially first; the label pass then touches each record exactly once, so
// chunking it is order-independent.
func (a *Analyzer) AnalyzeParallel(suspicious []*UR, workers int) {
	a.attachTXTCorrespondence(suspicious)
	if workers <= 1 || len(suspicious) < 2*minDetChunk {
		a.label(suspicious)
		return
	}
	chunk := (len(suspicious) + workers - 1) / workers
	if chunk < minDetChunk {
		chunk = minDetChunk
	}
	var wg sync.WaitGroup
	for start := 0; start < len(suspicious); start += chunk {
		end := start + chunk
		if end > len(suspicious) {
			end = len(suspicious)
		}
		wg.Add(1)
		go func(part []*UR) {
			defer wg.Done()
			a.label(part)
		}(suspicious[start:end])
	}
	wg.Wait()
}

// label applies the intel/IDS evidence to each record, stopping the IP walk
// as soon as both evidence kinds have fired. Read-only over the shared
// evidence sets, so chunks of the same slice can run concurrently.
func (a *Analyzer) label(suspicious []*UR) {
	for _, u := range suspicious {
		if u.Category != CategoryUnknown {
			continue
		}
		for _, ip := range u.CorrespondingIPs {
			if !u.MaliciousByIntel && a.cfg.Intel != nil && a.cfg.Intel.IsMalicious(ip) {
				u.MaliciousByIntel = true
			}
			if !u.MaliciousByIDS && a.idsIPs[ip] {
				u.MaliciousByIDS = true
			}
			if u.MaliciousByIntel && u.MaliciousByIDS {
				break
			}
		}
		if u.MaliciousByIntel || u.MaliciousByIDS {
			u.Category = CategoryMalicious
		}
	}
}

// attachTXTCorrespondence implements the §4.3 correspondence rule: when an A
// and a TXT record are hosted on the same nameserver for the same domain,
// the A record's IP is included among the TXT record's corresponding IPs.
func (a *Analyzer) attachTXTCorrespondence(urs []*UR) {
	type key struct {
		server netip.Addr
		domain dns.Name
	}
	aIPs := make(map[key][]netip.Addr, len(urs)/2+1)
	for _, u := range urs {
		if u.Type == dns.TypeA && len(u.CorrespondingIPs) > 0 {
			k := key{u.Server.Addr, u.Domain}
			aIPs[k] = append(aIPs[k], u.CorrespondingIPs...)
		}
	}
	for _, u := range urs {
		if u.Type != dns.TypeTXT {
			continue
		}
		extra := aIPs[key{u.Server.Addr, u.Domain}]
		if len(extra) == 0 {
			continue
		}
		seen := make(map[netip.Addr]bool, len(u.CorrespondingIPs)+len(extra))
		for _, ip := range u.CorrespondingIPs {
			seen[ip] = true
		}
		for _, ip := range extra {
			if !seen[ip] {
				seen[ip] = true
				u.CorrespondingIPs = append(u.CorrespondingIPs, ip)
			}
		}
	}
}
