package core

import (
	"net/netip"

	"repro/internal/dns"
	idspkg "repro/internal/ids"
)

// Analyzer implements §4.3: malicious-behaviour analysis over threat
// intelligence and IDS-inspected sandbox traffic.
type Analyzer struct {
	cfg *Config

	// idsIPs caches the set of IPs with ≥medium-severity alerts.
	idsIPs map[netip.Addr]bool
	// alerts keeps every fired alert for the Figure 3(c) breakdown.
	alerts []idspkg.Alert
}

// NewAnalyzer builds the analyzer and pre-computes the IDS evidence set from
// the sandbox reports.
func NewAnalyzer(cfg *Config) *Analyzer {
	a := &Analyzer{cfg: cfg, idsIPs: make(map[netip.Addr]bool)}
	if cfg.IDS != nil {
		for _, rep := range cfg.SandboxReports {
			alerts := cfg.IDS.InspectReport(rep)
			a.alerts = append(a.alerts, alerts...)
			for _, ip := range idspkg.AlertedIPs(alerts, idspkg.SeverityMedium) {
				a.idsIPs[ip] = true
			}
		}
	}
	return a
}

// Alerts returns every alert fired over the sandbox corpus.
func (a *Analyzer) Alerts() []idspkg.Alert { return a.alerts }

// IDSFlaggedIPs returns the evidence set from sandbox traffic.
func (a *Analyzer) IDSFlaggedIPs() []netip.Addr {
	out := make([]netip.Addr, 0, len(a.idsIPs))
	for ip := range a.idsIPs {
		out = append(out, ip)
	}
	return out
}

// Analyze labels suspicious URs as malicious when a corresponding IP is
// flagged by threat intelligence or carries IDS-alerted traffic. TXT records
// first inherit corresponding IPs from same-server same-domain A records;
// TXT records with no corresponding IP at all stay unknown (the paper
// excludes them from the malicious determination).
func (a *Analyzer) Analyze(suspicious []*UR) {
	a.attachTXTCorrespondence(suspicious)
	for _, u := range suspicious {
		if u.Category != CategoryUnknown {
			continue
		}
		for _, ip := range u.CorrespondingIPs {
			intel := a.cfg.Intel != nil && a.cfg.Intel.IsMalicious(ip)
			ids := a.idsIPs[ip]
			if intel {
				u.MaliciousByIntel = true
			}
			if ids {
				u.MaliciousByIDS = true
			}
		}
		if u.MaliciousByIntel || u.MaliciousByIDS {
			u.Category = CategoryMalicious
		}
	}
}

// attachTXTCorrespondence implements the §4.3 correspondence rule: when an A
// and a TXT record are hosted on the same nameserver for the same domain,
// the A record's IP is included among the TXT record's corresponding IPs.
func (a *Analyzer) attachTXTCorrespondence(urs []*UR) {
	type key struct {
		server netip.Addr
		domain dns.Name
	}
	aIPs := make(map[key][]netip.Addr)
	for _, u := range urs {
		if u.Type == dns.TypeA && len(u.CorrespondingIPs) > 0 {
			k := key{u.Server.Addr, u.Domain}
			aIPs[k] = append(aIPs[k], u.CorrespondingIPs...)
		}
	}
	for _, u := range urs {
		if u.Type != dns.TypeTXT {
			continue
		}
		extra := aIPs[key{u.Server.Addr, u.Domain}]
		if len(extra) == 0 {
			continue
		}
		seen := make(map[netip.Addr]bool, len(u.CorrespondingIPs))
		for _, ip := range u.CorrespondingIPs {
			seen[ip] = true
		}
		for _, ip := range extra {
			if !seen[ip] {
				seen[ip] = true
				u.CorrespondingIPs = append(u.CorrespondingIPs, ip)
			}
		}
	}
}
