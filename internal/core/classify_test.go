// Differential pins for the TXT classification fast paths. ClassifyTXT's
// byte scans (hasTXTPrefixFold, containsFoldWord) and the HTTP filter's
// asciiContainsFold replaced regex / strings.ToLower code on the
// per-record path; these tests hold them byte-for-byte equivalent to the
// originals over curated fixtures and a generated near-miss corpus.
package core

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
)

// The anchored patterns determiner.go used before the byte-scan rewrite,
// kept here verbatim as the reference implementation.
var (
	refSPF   = regexp.MustCompile(`(?i)^"?v=spf1\b`)
	refDMARC = regexp.MustCompile(`(?i)^"?v=dmarc1\b`)
	refDKIM  = regexp.MustCompile(`(?i)\bv=dkim1\b`)
)

func refClassifyTXT(rdata string) TXTCategory {
	switch {
	case refSPF.MatchString(rdata):
		return TXTSPF
	case refDMARC.MatchString(rdata):
		return TXTDMARC
	case refDKIM.MatchString(rdata):
		return TXTDKIM
	case reVerif.MatchString(rdata):
		return TXTVerification
	default:
		return TXTOther
	}
}

// classifyFixtures covers every §4.2 bucket, the case/quote variants the
// fold must honor, and the boundary traps where a naive prefix check would
// diverge from the anchored regexes.
var classifyFixtures = []struct {
	rdata string
	want  TXTCategory
}{
	{`"v=spf1 ip4:1.2.3.4 -all"`, TXTSPF},
	{`v=spf1 include:_spf.example.com ~all`, TXTSPF},
	{`"V=SPF1 -ALL"`, TXTSPF},
	{`"v=spf1"`, TXTSPF},
	{`v=spf1`, TXTSPF},
	{`"v=spf1-all"`, TXTSPF},     // '-' is not a word byte, so \b holds
	{`"v=spf10 -all"`, TXTOther}, // \b fails inside "spf10"
	{`"v=spf1x"`, TXTOther},
	{`" v=spf1"`, TXTOther}, // anchored: a leading space breaks ^"?
	{`x"v=spf1"`, TXTOther},
	{`""v=spf1"`, TXTOther}, // exactly one optional leading quote
	{`"v=DMARC1; p=reject"`, TXTDMARC},
	{`v=dmarc1;p=none`, TXTDMARC},
	{`"v=dmarc12"`, TXTOther},
	{`"p=reject; v=dmarc1"`, TXTOther}, // DMARC tag must lead the record
	{`"k=rsa; v=DKIM1; p=MIGf..."`, TXTDKIM},
	{`v=dkim1`, TXTDKIM},
	{`"x v=dkim1"`, TXTDKIM}, // \b: space before the v
	{`"xv=dkim1"`, TXTOther}, // \b fails after a word byte
	{`"v=dkim12"`, TXTOther},
	{`"google-site-verification=xyz"`, TXTVerification},
	{`"xx-domain-verification=abc"`, TXTVerification},
	{`"MS=ms123 verification=1"`, TXTVerification},
	{`"_verify.example"`, TXTVerification},
	{`"cmd=deadbeef"`, TXTOther},
	{`"random text"`, TXTOther},
	{``, TXTOther},
	{`"`, TXTOther},
	{`""`, TXTOther},
}

func TestClassifyTXTFixtures(t *testing.T) {
	for _, tc := range classifyFixtures {
		got := ClassifyTXT(tc.rdata)
		if got != tc.want {
			t.Errorf("ClassifyTXT(%q) = %v, want %v", tc.rdata, got, tc.want)
		}
		if ref := refClassifyTXT(tc.rdata); got != ref {
			t.Errorf("ClassifyTXT(%q) = %v, regex reference = %v", tc.rdata, got, ref)
		}
	}
}

// TestClassifyTXTDifferential hammers the byte scans with a seeded corpus
// biased toward near-misses of the anchored patterns: fragments of the real
// tags spliced into noise drawn from the tags' own alphabet.
func TestClassifyTXTDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	alphabet := `vV=sSpPfFdDmMaArRcCkKiI10 2"x_-;.`
	seeds := []string{`v=spf1`, `v=dmarc1`, `v=dkim1`, `"v=`, `verification=`, `_verify`}
	for i := 0; i < 20000; i++ {
		var sb strings.Builder
		for n := rng.Intn(6); n >= 0; n-- {
			if rng.Intn(3) == 0 {
				sb.WriteString(seeds[rng.Intn(len(seeds))])
				continue
			}
			for m := rng.Intn(8); m >= 0; m-- {
				sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
			}
		}
		s := sb.String()
		if got, ref := ClassifyTXT(s), refClassifyTXT(s); got != ref {
			t.Fatalf("ClassifyTXT(%q) = %v, regex reference = %v", s, got, ref)
		}
	}
}

// TestASCIIContainsFold pins the HTTP filter helper against the
// strings.Contains(strings.ToLower(s), sub) code it replaced. The corpus is
// ASCII because the helper's contract is ASCII folding — the HTTP bodies the
// filter scans for "parked"/"parking"/"redirecting" markers.
func TestASCIIContainsFold(t *testing.T) {
	cases := []struct{ s, sub string }{
		{"", "parked"},
		{"parked", ""},
		{"This domain is PARKED at example", "parked"},
		{"Now ParKing lot", "parking"},
		{"redirect", "redirecting"},
		{"....Redirecting you", "redirecting"},
		{"parkeD", "parked"},
		{"park ed", "parked"},
		{"xxPARKINGxx", "parking"},
		{"parkeparked", "parked"},
	}
	for _, tc := range cases {
		want := strings.Contains(strings.ToLower(tc.s), tc.sub)
		if got := asciiContainsFold(tc.s, tc.sub); got != want {
			t.Errorf("asciiContainsFold(%q, %q) = %v, want %v", tc.s, tc.sub, got, want)
		}
	}
	rng := rand.New(rand.NewSource(5))
	alphabet := "PpAaRrKkEeDdGgIiNnCcTt x."
	for i := 0; i < 20000; i++ {
		b := make([]byte, rng.Intn(32))
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		s := string(b)
		for _, sub := range []string{"parked", "parking", "redirecting"} {
			want := strings.Contains(strings.ToLower(s), sub)
			if got := asciiContainsFold(s, sub); got != want {
				t.Fatalf("asciiContainsFold(%q, %q) = %v, want %v", s, sub, got, want)
			}
		}
	}
}
