package core

import (
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/ipam"
	"repro/internal/pdns"
	"repro/internal/simnet"
	"repro/internal/threatintel"
	transportpkg "repro/internal/transport"
	"repro/internal/websim"

	idspkg "repro/internal/ids"
	sbx "repro/internal/sandbox"
)

// Config wires URHunter to the world under measurement.
type Config struct {
	Fabric *simnet.Fabric
	IPDB   *ipam.DB
	Web    *websim.World

	// SrcAddr is the measurement vantage point.
	SrcAddr netip.Addr

	// Targets are the measured domains (the top-2K Tranco sites, plus the
	// case-study FQDNs under them).
	Targets []dns.Name
	// Nameservers are the measured provider servers (≥50 hosted top-1M
	// domains in the paper's selection).
	Nameservers []NameserverInfo
	// OpenResolvers are the worldwide vantage points for correct-record
	// collection.
	OpenResolvers []netip.Addr

	// DelegatedNS reports the current delegation of a domain, used to skip
	// exactly-delegated (domain, nameserver) pairs during collection.
	DelegatedNS func(domain dns.Name) []dns.Name

	// PDNS is the historical-delegation store (may be nil).
	PDNS *pdns.Store
	// Now anchors the six-year PDNS window.
	Now time.Time

	// Seed makes every randomized choice the collector itself introduces
	// (currently the protective-record canary name) a pure function of the
	// configuration, so two runs over the same world issue the same queries.
	Seed int64

	// Intel and IDS supply the §4.3 evidence; SandboxReports carries the
	// malware traffic the IDS inspects.
	Intel          *threatintel.Aggregator
	IDS            *idspkg.Engine
	SandboxReports []*sbx.Report

	// Parallelism bounds the collection worker pool. Zero or negative
	// selects runtime.GOMAXPROCS(0), i.e. one worker per available core.
	Parallelism int

	// DetermineWorkers bounds the overlapped pipeline's streaming
	// classification pool (§4.2/§4.3 per-record work). Zero or negative
	// inherits Parallelism's resolution. Any setting produces byte-identical
	// reports; this only tunes how many cores the determination tail uses.
	DetermineWorkers int

	// QueryTypes defaults to A and TXT, the paper's two sweeps.
	QueryTypes []dns.Type

	// PoliteInterval is the per-server minimum query spacing a real-world
	// run of this plan would honour (the ethics appendix commits to one
	// query per server every ~130 seconds on average). The simulation does
	// not sleep; the collector keeps the books so PoliteScanEstimate can
	// report the polite wall-clock. Zero selects the paper's 130 s.
	PoliteInterval time.Duration

	// Journal, when non-nil, checkpoints the sweep: workers append every
	// answered probe and failure-book entry to per-worker segment files,
	// and a journal opened over a prior (interrupted) run's directory
	// replays that state so already-answered probes are never re-queried.
	// See OpenJournal.
	Journal *Journal

	// Transport overrides the client transport. Nil selects the simulated
	// transport named by TransportKind; tests and real-network runs
	// substitute their own.
	Transport dnsio.Transport

	// TransportKind selects the wire transport for sweep exchanges when
	// Transport is nil: "" or "udp" (plain datagrams with TC fallback),
	// "dot", or "doh". The encrypted sim transports route through the same
	// fabric endpoints as plain UDP — identical chaos draws, identical
	// verdicts — and differ only in virtual-clock accounting, so the
	// transport is deliberately excluded from PlanHash. Journals still
	// record it (manifest "transport") and refuse cross-transport resume
	// and merge, because mixing timing models would corrupt coverage
	// accounting.
	TransportKind string

	// Watchdog tunes the per-worker stall watchdog. Nil selects the default
	// policy: active only over transports that can actually block — the
	// in-memory fabric completes synchronously and cannot stall a worker.
	Watchdog *WatchdogConfig

	// CollectOnly stops the pipeline after collection and journaling:
	// records are swept into Result.URs but never classified or analyzed.
	// Fleet workers run shards collect-only — determination needs the whole
	// plan's correct-record database, so it happens once, on the merged
	// journal, not per shard.
	CollectOnly bool

	// SkipServer, when non-nil, is consulted as each server unit (open
	// resolver or nameserver) comes up for sweeping; returning true drops
	// the unit without querying it. The check happens per job at dispatch
	// time — not when the plan is built — so a fleet worker can shed the
	// yielded tail of its shard mid-run. Skipped units still count toward
	// the plan hash: the journal stays mergeable with the journal of
	// whoever swept them instead.
	SkipServer func(netip.Addr) bool

	// ServerDone, when non-nil, observes each server unit whose sweep job
	// completed without error, from the worker goroutine that ran it. Fleet
	// workers use it to report shard progress; the callback must be safe
	// for concurrent use and fast (it runs on the sweep path).
	ServerDone func(netip.Addr)
}

func (c *Config) politeInterval() time.Duration {
	if c.PoliteInterval <= 0 {
		return 130 * time.Second
	}
	return c.PoliteInterval
}

func (c *Config) queryTypes() []dns.Type {
	if len(c.QueryTypes) == 0 {
		return []dns.Type{dns.TypeA, dns.TypeTXT}
	}
	return c.QueryTypes
}

func (c *Config) parallelism() int {
	if c.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Parallelism
}

func (c *Config) determineWorkers() int {
	if c.DetermineWorkers <= 0 {
		return c.parallelism()
	}
	return c.DetermineWorkers
}

// queryShards and probeShards shard the collector's two shared books so
// sweep workers on different servers/IPs never contend on one lock.
// Powers of two; the shard index is a mask away from the address hash.
const (
	queryShards = 32
	probeShards = 32
)

// addrShard hashes an address onto [0, n). n must be a power of two.
func addrShard(addr netip.Addr, n uint32) uint32 {
	a := addr.As16()
	h := uint32(2166136261)
	for _, b := range a[8:] {
		h = (h ^ uint32(b)) * 16777619
	}
	return h & (n - 1)
}

// queryShard is one slice of the per-server query accounting.
type queryShard struct {
	mu sync.Mutex
	n  map[netip.Addr]int64
}

// probeEntry is a singleflight slot for one IP's web probe: the first
// requester fills res and closes done; everyone else blocks on done instead
// of issuing a duplicate probe.
type probeEntry struct {
	done chan struct{}
	res  websim.ProbeResult
}

// probeShard is one slice of the probe cache.
type probeShard struct {
	mu sync.Mutex
	m  map[netip.Addr]*probeEntry
}

// Collector implements §4.1: response collection.
type Collector struct {
	cfg    *Config
	client *dnsio.Client

	queries   atomic.Int64
	perServer [queryShards]queryShard
	probes    [probeShards]probeShard
	// cov is the sharded coverage book: per-server attempted/answered tallies
	// plus the failure records feeding the end-of-sweep re-queue pass.
	cov [covShards]covShard

	// probeFn indirects websim.World.Probe so tests can count or stub the
	// expensive web fetch; nil when the config carries no web world.
	probeFn func(src, dst netip.Addr) websim.ProbeResult

	// journal is the optional checkpoint store; skip marks every probe the
	// journal replayed so workers never re-query it. Each sweep's replay
	// builds its slice of the map single-threaded at that sweep's start, but
	// the overlapped pipeline runs the correct sweep concurrently with the
	// fused nameserver sweep, so skipMu covers the build/lookup overlap.
	journal *Journal
	skipMu  sync.RWMutex
	skip    map[probeKey]struct{}
	// hasSkip publishes "the skip set is non-empty" without a lock, so the
	// per-probe replayed() check on a fresh (non-resumed) journaled run is a
	// single atomic load. Set under skipMu by replaySweep.
	hasSkip atomic.Bool

	// in interns UR identity strings (rdata) so a sweep holds one canonical
	// instance of each distinct value; see intern.go.
	in *interner

	// deleg memoizes the per-target delegated-host set (the ancestor walk
	// over cfg.DelegatedNS), built once on first use instead of copying
	// delegation slices on every (server, target) probe.
	delegOnce sync.Once
	deleg     map[dns.Name]map[dns.Name]bool

	// wd is the stall watchdog; nil when the transport cannot stall.
	wd *watchdog

	// nsInfo lazily indexes nameserver metadata by address so journal
	// replay can restore full NameserverInfo from the stored probe keys.
	nsInfoOnce sync.Once
	nsInfo     map[netip.Addr]NameserverInfo
}

// transportKind normalizes the configured kind; unknown values surface as
// errors at journal-open and pipeline-construction time via ParseKind.
func (c *Config) transportKind() transportpkg.Kind {
	k, err := transportpkg.ParseKind(c.TransportKind)
	if err != nil {
		// An invalid kind is a programmer/flag-validation error, not a
		// runtime condition; the CLIs validate before building a config.
		panic(err)
	}
	return k
}

// newSimTransport builds the configured simulated transport.
func (c *Config) newSimTransport() dnsio.Transport {
	t, err := transportpkg.NewSim(c.transportKind(), c.Fabric, c.SrcAddr)
	if err != nil {
		panic(err)
	}
	return t
}

// NewCollector builds a collector over the configured fabric.
func NewCollector(cfg *Config) *Collector {
	transport := cfg.Transport
	if transport == nil {
		transport = cfg.newSimTransport()
	}
	client := dnsio.NewClient(transport)
	client.Retries = 1
	client.SeedIDs(0x5eed)
	// Backoff jitter follows the config seed so two runs over the same world
	// book identical virtual wall-clock even under chaos.
	client.Backoff.JitterSeed = uint64(cfg.Seed)
	c := &Collector{cfg: cfg, client: client, journal: cfg.Journal, in: newInterner()}
	for i := range c.perServer {
		c.perServer[i].n = make(map[netip.Addr]int64)
	}
	for i := range c.probes {
		c.probes[i].m = make(map[netip.Addr]*probeEntry)
	}
	for i := range c.cov {
		c.cov[i].per = make(map[netip.Addr]*serverCov)
	}
	if cfg.Web != nil {
		c.probeFn = cfg.Web.Probe
	}
	// The watchdog only matters over transports that can block a worker;
	// the fabric is synchronous, so by default it stays off there (Force
	// overrides, for tests). The overlapped pipeline runs the correct sweep
	// ([0, P) slots) concurrently with the fused nameserver sweep ([P, 2P)),
	// and each has its own re-queue spare (2P and 2P+1), hence 2P+2 slots.
	if !dnsio.IsInstant(transport) || (cfg.Watchdog != nil && cfg.Watchdog.Force) {
		c.wd = newWatchdog(2*cfg.parallelism()+1, c.probeBudget(), cfg.Watchdog)
	}
	return c
}

// probeBudget estimates the worst-case virtual-clock budget of one probe:
// every attempt's timeout plus the maximum backoff between attempts. The
// watchdog's stall deadline is a multiple of this.
func (c *Collector) probeBudget() time.Duration {
	attempts := c.client.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	per := c.client.Timeout
	if per <= 0 {
		per = 3 * time.Second
	}
	budget := time.Duration(attempts) * per
	if c.client.Backoff.Max > 0 {
		budget += time.Duration(attempts-1) * c.client.Backoff.Max
	}
	return budget
}

// newSegment opens a journal segment for one worker, or returns nil when
// journaling is off.
func (c *Collector) newSegment() (*segmentWriter, error) {
	if c.journal == nil {
		return nil, nil
	}
	return c.journal.acquireSegment()
}

// releaseSegment flushes and parks a worker's segment writer at sweep end;
// nil-safe for unjournaled sweeps. Flush errors only shorten the journal
// tail (those probes re-query on resume), so they don't fail the sweep.
func (c *Collector) releaseSegment(seg *segmentWriter) {
	if seg != nil {
		_ = c.journal.releaseSegment(seg)
	}
}

// nsInfoFor restores full nameserver metadata for a journaled probe key.
// Open resolvers carry address-only info, same as the live sweep builds.
func (c *Collector) nsInfoFor(addr netip.Addr) NameserverInfo {
	c.nsInfoOnce.Do(func() {
		c.nsInfo = make(map[netip.Addr]NameserverInfo, len(c.cfg.Nameservers))
		for _, ns := range c.cfg.Nameservers {
			c.nsInfo[ns.Addr] = ns
		}
	})
	if ns, ok := c.nsInfo[addr]; ok {
		return ns
	}
	return NameserverInfo{Addr: addr}
}

// replayed reports whether the journal already holds this probe's outcome.
// The hasSkip fast path keeps fresh journaled runs (nothing to resume, the
// common case) from paying a per-probe RLock: a sweep's own replaySweep
// completes — and publishes hasSkip — before that sweep's workers launch, so
// a false load can only be observed when this sweep replayed nothing.
func (c *Collector) replayed(kind sweepKind, server netip.Addr, domain dns.Name, qt dns.Type) bool {
	if !c.hasSkip.Load() {
		return false
	}
	c.skipMu.RLock()
	defer c.skipMu.RUnlock()
	_, ok := c.skip[probeKey{sweep: kind, server: server, domain: domain, qtype: qt}]
	return ok
}

// replaySweep folds one sweep's journaled outcomes back into the books
// before the live pass: answered probes re-enter through onAnswer — the
// same fold the live path uses, so a resumed report is byte-identical —
// failures are refiled for the re-queue pass, and every replayed key is
// marked so workers skip it. Runs single-threaded at sweep start.
func (c *Collector) replaySweep(kind sweepKind, onAnswer func(ns NameserverInfo, domain dns.Name, qt dns.Type, resp *dns.Message)) {
	if c.journal == nil || c.journal.rs == nil {
		return
	}
	rs := c.journal.rs
	c.skipMu.Lock()
	defer c.skipMu.Unlock()
	if c.skip == nil {
		c.skip = make(map[probeKey]struct{}, len(rs.answered)+len(rs.failed))
	}
	type tally struct{ att, ans, rec int64 }
	per := make(map[netip.Addr]*tally)
	bump := func(addr netip.Addr) *tally {
		t := per[addr]
		if t == nil {
			t = &tally{}
			per[addr] = t
		}
		return t
	}
	for key, raw := range rs.answered {
		if key.sweep != kind {
			continue
		}
		resp, err := dns.Unpack(raw)
		if err != nil {
			// CRC-clean but undecodable: do not trust it, do not skip it —
			// the probe is simply re-queried by the live pass.
			continue
		}
		c.skip[key] = struct{}{}
		t := bump(key.server)
		t.att++
		t.ans++
		if _, hadFailed := rs.failed[key]; hadFailed {
			t.rec++
		}
		onAnswer(c.nsInfoFor(key.server), key.domain, key.qtype, resp)
	}
	for key, class := range rs.failed {
		if key.sweep != kind {
			continue
		}
		if _, ok := rs.answered[key]; ok {
			continue // recovered: handled above
		}
		c.skip[key] = struct{}{}
		bump(key.server).att++
		c.refile(probeFailure{
			ns: c.nsInfoFor(key.server), domain: key.domain, qtype: key.qtype,
			class: class, sweep: kind,
		})
	}
	for addr, t := range per {
		c.bookReplay(addr, t.att, t.ans, t.rec)
	}
	if len(c.skip) > 0 {
		c.hasSkip.Store(true)
	}
}

// probeQuery issues one probe under the stall watchdog (when active). The
// watchdog cancels a probe stuck past the deadline; a transport that
// ignores even cancellation is abandoned after a grace period so the worker
// keeps the sweep moving either way.
//
// When the sweep is journaled (seg non-nil) the answered response's wire
// bytes are returned alongside the decoded message so the caller can journal
// exactly what the server sent without re-packing it.
func (c *Collector) probeQuery(ctx context.Context, slot *stallSlot, seg *segmentWriter, server netip.AddrPort, name dns.Name, qt dns.Type) (*dns.Message, []byte, dnsio.FailClass, error) {
	if c.wd == nil || slot == nil {
		if seg == nil {
			resp, err := c.client.Query(ctx, server, name, qt)
			return resp, nil, dnsio.Classify(err), err
		}
		resp, wire, err := c.client.QueryWire(ctx, server, name, qt)
		return resp, wire, dnsio.Classify(err), err
	}
	pctx, cancel := slot.arm(ctx)
	defer cancel()
	type qres struct {
		resp *dns.Message
		wire []byte
		err  error
	}
	ch := make(chan qres, 1)
	go func() {
		if seg == nil {
			resp, err := c.client.Query(pctx, server, name, qt)
			ch <- qres{resp, nil, err}
			return
		}
		resp, wire, err := c.client.QueryWire(pctx, server, name, qt)
		ch <- qres{resp, wire, err}
	}()
	finish := func(r qres) (*dns.Message, []byte, dnsio.FailClass, error) {
		stalled := slot.disarm()
		if stalled && r.err != nil {
			return nil, nil, dnsio.FailStalled, r.err
		}
		return r.resp, r.wire, dnsio.Classify(r.err), r.err
	}
	select {
	case r := <-ch:
		return finish(r)
	case <-pctx.Done():
		// Cancelled — by the watchdog (stall) or the parent context. Give
		// the in-flight query a grace period to unwind, then walk away.
		grace := time.NewTimer(c.wd.grace)
		defer grace.Stop()
		select {
		case r := <-ch:
			return finish(r)
		case <-grace.C:
			stalled := slot.disarm()
			err := errStallAbandoned(fmt.Sprintf("probe %s %s/%d", server, name, uint16(qt)), pctx.Err())
			class := dnsio.FailStalled
			if !stalled {
				class = dnsio.Classify(pctx.Err())
			}
			return nil, nil, class, err
		}
	}
}

// Queries returns the number of DNS queries issued so far.
func (c *Collector) Queries() int64 {
	return c.queries.Load()
}

// addQueries books n queries against one server. Workers call it once per
// (server, sweep) batch rather than once per query, so the shard lock is
// touched a handful of times per server instead of millions of times per
// run.
func (c *Collector) addQueries(server netip.Addr, n int64) {
	if n == 0 {
		return
	}
	c.queries.Add(n)
	s := &c.perServer[addrShard(server, queryShards)]
	s.mu.Lock()
	s.n[server] += n
	s.mu.Unlock()
}

// PoliteScanEstimate reports the wall-clock a real-world run of the executed
// query plan would take under the ethics appendix's per-server pacing: the
// busiest server's query count times the polite interval (servers are
// queried in parallel, so the busiest one gates the scan).
func (c *Collector) PoliteScanEstimate() time.Duration {
	var max int64
	for i := range c.perServer {
		s := &c.perServer[i]
		s.mu.Lock()
		for _, n := range s.n {
			if n > max {
				max = n
			}
		}
		s.mu.Unlock()
	}
	return time.Duration(max) * c.cfg.politeInterval()
}

// feed queues jobs until the list is exhausted, the context is cancelled,
// or a worker flags a fatal error. Selecting on ctx.Done() keeps
// cancellation prompt: the producer must stop feeding, not queue every
// remaining server at a drained pool.
func feed[T any](ctx context.Context, jobs chan<- T, stop *atomic.Bool, items []T) {
	defer close(jobs)
	done := ctx.Done()
	for _, item := range items {
		if stop.Load() {
			return
		}
		select {
		case jobs <- item:
		case <-done:
			return
		}
	}
}

// CollectURs sweeps every (nameserver, target, type) triple, skipping pairs
// where the target is exactly delegated to the nameserver, and returns the
// undelegated records extracted from NOERROR responses.
//
// Workers accumulate into private slices and merge once when the job channel
// drains; journal-replayed records land in the same merge set before the
// workers start. The merged set is then put into a canonical order, so the
// output is byte-identical at any Parallelism setting — resumed or not.
func (c *Collector) CollectURs(ctx context.Context) ([]*UR, error) {
	var out []*UR
	c.replaySweep(sweepURs, func(ns NameserverInfo, domain dns.Name, qt dns.Type, resp *dns.Message) {
		out = c.ursFromResponse(ns, domain, qt, resp, out)
	})
	c.wd.start()
	defer c.wd.stop()

	jobs := make(chan NameserverInfo)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var stop atomic.Bool

	workers := c.cfg.parallelism()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot *stallSlot) {
			defer wg.Done()
			var local []*UR
			seg, localErr := c.newSegment()
			if seg != nil {
				defer c.releaseSegment(seg)
			}
			if localErr != nil {
				stop.Store(true)
			}
			for ns := range jobs {
				if localErr != nil {
					continue // keep draining so the feeder never blocks
				}
				if skip := c.cfg.SkipServer; skip != nil && skip(ns.Addr) {
					continue
				}
				urs, err := c.collectFromNS(ctx, ns, seg, slot)
				local = append(local, urs...)
				if err != nil {
					localErr = err
					stop.Store(true)
				} else if done := c.cfg.ServerDone; done != nil {
					done(ns.Addr)
				}
			}
			mu.Lock()
			out = append(out, local...)
			if localErr != nil && firstErr == nil {
				firstErr = localErr
			}
			mu.Unlock()
		}(c.wd.slot(w))
	}
	feed(ctx, jobs, &stop, c.cfg.Nameservers)
	wg.Wait()
	if firstErr == nil {
		// A cancellation that lands between jobs starves the pool without any
		// worker seeing an error; the sweep is still incomplete.
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// End-of-sweep re-queue: probes that failed while a server was flapping,
	// lossy, or breaker-blocked get one more chance now that the sweep
	// pressure is off and breakers may have recovered.
	err := c.requeue(ctx, sweepURs, func(f probeFailure, resp *dns.Message) {
		out = c.ursFromResponse(f.ns, f.domain, f.qtype, resp, out)
	})
	if err != nil {
		return nil, err
	}
	sortURs(out)
	c.enrich(out)
	return out, nil
}

// requeue re-runs one sweep's failed probes after the main pass, in canonical
// order so the extra query plan is deterministic. It runs on the caller
// goroutine with the standalone sweeps' spare watchdog slot (index 2P).
func (c *Collector) requeue(ctx context.Context, kind sweepKind, onAnswer func(f probeFailure, resp *dns.Message)) error {
	return c.requeueOn(ctx, kind, c.wd.slot(2*c.cfg.parallelism()), onAnswer)
}

// requeueOn is requeue with an explicit watchdog slot, so the overlapped
// pipeline's two concurrent re-queue tails (correct sweep, fused nameserver
// sweep) never share a stall slot. Recovered probes are booked and handed to
// onAnswer; probes that fail again are refiled with their new failure class
// (still-open breakers fail fast without touching the fabric).
func (c *Collector) requeueOn(ctx context.Context, kind sweepKind, slot *stallSlot, onAnswer func(f probeFailure, resp *dns.Message)) error {
	fails := c.drainFailures(kind)
	if len(fails) == 0 {
		return nil
	}
	seg, segErr := c.newSegment()
	if segErr != nil {
		for _, f := range fails {
			c.refile(f)
		}
		return segErr
	}
	if seg != nil {
		defer c.releaseSegment(seg)
	}
	sortFailures(fails)
	var lastAddr netip.Addr
	var issued int64
	flush := func() {
		if issued > 0 {
			c.addQueries(lastAddr, issued)
			issued = 0
		}
	}
	defer flush()
	for i, f := range fails {
		if err := ctx.Err(); err != nil {
			for _, rest := range fails[i:] {
				c.refile(rest)
			}
			return err
		}
		if f.ns.Addr != lastAddr {
			flush()
			lastAddr = f.ns.Addr
		}
		issued++
		server := netip.AddrPortFrom(f.ns.Addr, dnsio.DNSPort)
		resp, wire, class, err := c.probeQuery(ctx, slot, seg, server, f.domain, f.qtype)
		if err != nil {
			f.class = class
			c.refile(f)
			if seg != nil {
				if jerr := seg.failure(kind, f.ns.Addr, f.domain, f.qtype, class); jerr != nil {
					for _, rest := range fails[i+1:] {
						c.refile(rest)
					}
					return jerr
				}
			}
			continue
		}
		c.bookRecovered(f.ns.Addr)
		if seg != nil {
			if jerr := seg.answered(kind, f.ns.Addr, f.domain, f.qtype, wire); jerr != nil {
				for _, rest := range fails[i+1:] {
					c.refile(rest)
				}
				return jerr
			}
		}
		onAnswer(f, resp)
	}
	return nil
}

// sortURs puts a UR set into its canonical order: server address, then
// domain, type, rdata, and TTL. Collection order depends on worker
// scheduling; the canonical order does not.
func sortURs(urs []*UR) {
	sort.Slice(urs, func(i, j int) bool {
		a, b := urs[i], urs[j]
		if cmp := a.Server.Addr.Compare(b.Server.Addr); cmp != 0 {
			return cmp < 0
		}
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		if a.RData != b.RData {
			return a.RData < b.RData
		}
		return a.TTL < b.TTL
	})
}

// collectFromNS queries one nameserver for every target and type. Every
// failed probe lands in the failure book for the re-queue pass instead of
// being silently skipped.
func (c *Collector) collectFromNS(ctx context.Context, ns NameserverInfo, seg *segmentWriter, slot *stallSlot) ([]*UR, error) {
	var out []*UR
	server := netip.AddrPortFrom(ns.Addr, dnsio.DNSPort)
	var issued, attempted, answered int64
	var fails []probeFailure
	defer func() {
		c.addQueries(ns.Addr, issued)
		c.bookSweep(ns.Addr, attempted, answered, 0, fails)
	}()
	// Ethics appendix: queries are issued in randomized order, never
	// walking the target list top-down against any single server.
	order := c.shuffledTargets(ns.Addr)
	for _, target := range order {
		if c.isExactlyDelegated(target, ns) {
			continue
		}
		for _, qt := range c.cfg.queryTypes() {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			if c.replayed(sweepURs, ns.Addr, target, qt) {
				continue
			}
			issued++
			attempted++
			resp, wire, class, err := c.probeQuery(ctx, slot, seg, server, target, qt)
			if err != nil {
				fails = append(fails, probeFailure{
					ns: ns, domain: target, qtype: qt,
					class: class, sweep: sweepURs,
				})
				if seg != nil {
					if jerr := seg.failure(sweepURs, ns.Addr, target, qt, class); jerr != nil {
						return out, jerr
					}
				}
				continue
			}
			answered++
			if seg != nil {
				if jerr := seg.answered(sweepURs, ns.Addr, target, qt, wire); jerr != nil {
					return out, jerr
				}
			}
			out = c.ursFromResponse(ns, target, qt, resp, out)
		}
	}
	return out, nil
}

// ursFromResponse extracts this probe's undelegated records from a NOERROR
// response and appends them to out. RData is interned: the same record served
// by many nameservers (the common hosting-provider case) collapses to one
// canonical string, which both trims live heap and makes the determiner's
// memo-map lookups pointer-equality fast.
func (c *Collector) ursFromResponse(ns NameserverInfo, domain dns.Name, qt dns.Type, resp *dns.Message, out []*UR) []*UR {
	if resp.Header.RCode != dns.RCodeSuccess {
		return out
	}
	for _, rr := range resp.Answers {
		if rr.Type() != qt || rr.Name != domain {
			continue
		}
		out = append(out, &UR{
			Server: ns,
			Domain: domain,
			Type:   qt,
			RData:  c.in.intern(rr.Data.String()),
			TTL:    rr.TTL,
		})
	}
	return out
}

// shuffledTargets returns the target list in a server-specific pseudo-random
// order, deterministic in the server address. The shuffle is an inline
// splitmix64 Fisher-Yates: math/rand's lagged-Fibonacci source initializes
// ~5 KiB of state per Seed call, which profiles as several percent of a
// clean sweep when paid once per server.
func (c *Collector) shuffledTargets(server netip.Addr) []dns.Name {
	out := make([]dns.Name, len(c.cfg.Targets))
	copy(out, c.cfg.Targets)
	x := uint64(0)
	for _, b := range server.AsSlice() {
		x = x*131 + uint64(b)
	}
	for i := len(out) - 1; i > 0; i-- {
		x += 0x9e3779b97f4a7c15
		z := x
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		j := int(z % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// isExactlyDelegated reports whether the target — or an ancestor it
// resolves under — is delegated to this nameserver host. FQDN targets
// (api.gitlab.com) served by their SLD's delegated server are normal
// resolution, not undelegated records.
//
// The ancestor walk over cfg.DelegatedNS — which typically snapshots a
// registry delegation slice per call — runs once per target here, not once
// per (server, target) probe; every probe after that is a two-map lookup.
func (c *Collector) isExactlyDelegated(target dns.Name, ns NameserverInfo) bool {
	c.delegOnce.Do(func() {
		if c.cfg.DelegatedNS == nil {
			return
		}
		c.deleg = make(map[dns.Name]map[dns.Name]bool, len(c.cfg.Targets))
		for _, t := range c.cfg.Targets {
			hosts := make(map[dns.Name]bool)
			for n := t; n != dns.Root; n = n.Parent() {
				for _, host := range c.cfg.DelegatedNS(n) {
					hosts[host] = true
				}
			}
			c.deleg[t] = hosts
		}
	})
	return c.deleg[target][ns.Host]
}

// enrich attaches AS/geo/cert/HTTP data to every A-record UR and the
// corresponding IPs to both A and TXT records (TXT correspondence with
// same-NS same-domain A records happens in the analyzer, which sees the full
// set).
func (c *Collector) enrich(urs []*UR) {
	for _, u := range urs {
		c.enrichOne(u)
	}
}

// enrichOne enriches a single record; the overlapped pipeline's determine
// workers call it per streamed record so enrichment overlaps the sweep tail.
// Safe concurrently: IPDB lookups are read-only and the web probe cache is a
// singleflight.
func (c *Collector) enrichOne(u *UR) {
	switch u.Type {
	case dns.TypeA:
		addr, err := netip.ParseAddr(u.RData)
		if err != nil {
			return
		}
		u.CorrespondingIPs = []netip.Addr{addr}
		if info, ok := c.cfg.IPDB.Lookup(addr); ok {
			u.ASN, u.ASName, u.Country = info.ASN, info.ASName, info.Country
		}
		if c.probeFn != nil {
			u.HTTP = c.probe(addr)
			u.Cert = u.HTTP.Cert
		}
	case dns.TypeTXT:
		u.TXTClass = ClassifyTXT(u.RData)
		u.CorrespondingIPs = extractIPs(u.RData)
	default:
		// MX and other extension types: rdata names a host rather than
		// an address; any embedded literal IPs still count as
		// correspondence evidence.
		u.CorrespondingIPs = extractIPs(u.RData)
	}
}

// probe fetches (with caching) the HTTP/TLS enrichment for an IP. Concurrent
// callers for the same IP coalesce onto a single fetch: the first locks in a
// singleflight entry and probes, the rest wait for its result.
func (c *Collector) probe(addr netip.Addr) websim.ProbeResult {
	s := &c.probes[addrShard(addr, probeShards)]
	s.mu.Lock()
	if e, ok := s.m[addr]; ok {
		s.mu.Unlock()
		<-e.done
		return e.res
	}
	e := &probeEntry{done: make(chan struct{})}
	s.m[addr] = e
	s.mu.Unlock()
	e.res = c.probeFn(c.cfg.SrcAddr, addr)
	close(e.done)
	return e.res
}

// CollectCorrect builds the legitimate-record database by querying the open
// resolvers for every target's A and TXT records and folding in enrichment —
// the geo-distributed correct-record collection of §4.1(2).
func (c *Collector) CollectCorrect(ctx context.Context) (*CorrectDB, error) {
	db := NewCorrectDB()
	c.replaySweep(sweepCorrect, func(_ NameserverInfo, domain dns.Name, _ dns.Type, resp *dns.Message) {
		c.addCorrectAnswers(db, domain, resp)
	})
	c.wd.start()
	defer c.wd.stop()

	jobs := make(chan netip.Addr)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var stop atomic.Bool

	workers := c.cfg.parallelism()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot *stallSlot) {
			defer wg.Done()
			seg, localErr := c.newSegment()
			if seg != nil {
				defer c.releaseSegment(seg)
			}
			if localErr != nil {
				stop.Store(true)
			}
			for resolver := range jobs {
				if localErr != nil {
					continue // keep draining so the feeder never blocks
				}
				if skip := c.cfg.SkipServer; skip != nil && skip(resolver) {
					continue
				}
				if err := c.collectCorrectVia(ctx, db, resolver, seg, slot); err != nil {
					localErr = err
					stop.Store(true)
				} else if done := c.cfg.ServerDone; done != nil {
					done(resolver)
				}
			}
			if localErr != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = localErr
				}
				mu.Unlock()
			}
		}(c.wd.slot(w))
	}
	feed(ctx, jobs, &stop, c.cfg.OpenResolvers)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	err := c.requeue(ctx, sweepCorrect, func(f probeFailure, resp *dns.Message) {
		c.addCorrectAnswers(db, f.domain, resp)
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

func (c *Collector) collectCorrectVia(ctx context.Context, db *CorrectDB, resolver netip.Addr, seg *segmentWriter, slot *stallSlot) error {
	server := netip.AddrPortFrom(resolver, dnsio.DNSPort)
	ns := NameserverInfo{Addr: resolver}
	var issued, attempted, answered int64
	var fails []probeFailure
	defer func() {
		c.addQueries(resolver, issued)
		c.bookSweep(resolver, attempted, answered, 0, fails)
	}()
	for _, target := range c.shuffledTargets(resolver) {
		for _, qt := range c.cfg.queryTypes() {
			if err := ctx.Err(); err != nil {
				return err
			}
			if c.replayed(sweepCorrect, resolver, target, qt) {
				continue
			}
			issued++
			attempted++
			resp, wire, class, err := c.probeQuery(ctx, slot, seg, server, target, qt)
			if err != nil {
				fails = append(fails, probeFailure{
					ns: ns, domain: target, qtype: qt,
					class: class, sweep: sweepCorrect,
				})
				if seg != nil {
					if jerr := seg.failure(sweepCorrect, resolver, target, qt, class); jerr != nil {
						return jerr
					}
				}
				continue
			}
			answered++
			if seg != nil {
				if jerr := seg.answered(sweepCorrect, resolver, target, qt, wire); jerr != nil {
					return jerr
				}
			}
			c.addCorrectAnswers(db, target, resp)
		}
	}
	return nil
}

// addCorrectAnswers folds one open-resolver response into the
// legitimate-record database, with the same enrichment either way the
// response arrived (main sweep or re-queue pass).
func (c *Collector) addCorrectAnswers(db *CorrectDB, target dns.Name, resp *dns.Message) {
	if resp.Header.RCode != dns.RCodeSuccess {
		return
	}
	profile := db.Profile(target)
	for _, rr := range resp.Answers {
		switch data := rr.Data.(type) {
		case *dns.A:
			var asn ipam.ASN
			var country, certFP string
			if info, ok := c.cfg.IPDB.Lookup(data.Addr); ok {
				asn, country = info.ASN, info.Country
			}
			if c.probeFn != nil {
				if res := c.probe(data.Addr); res.Cert != nil {
					certFP = res.Cert.Fingerprint
				}
			}
			profile.AddA(data.Addr, asn, country, certFP)
		case *dns.TXT:
			profile.AddTXT(rr.Data.String())
		default:
			profile.AddOther(rr.Type(), rr.Data.String())
		}
	}
}

// CanaryName derives the protective-record canary from the config seed: a
// domain no provider hosts, stable across runs of the same configured world
// so repeated collections issue identical query plans.
func (c *Config) CanaryName() dns.Name {
	return dns.Name(fmt.Sprintf("urhunter-canary-%d.test", uint64(c.Seed)%1_000_000))
}

// CollectProtective queries every nameserver for a canary domain no one
// hosts and records the answers as that server's protective records
// (§4.1(3)). Nameservers are swept by the same worker pool as CollectURs;
// ProtectiveDB is internally locked and deduplicating, so concurrent adds
// land in a deterministic final state.
func (c *Collector) CollectProtective(ctx context.Context) (*ProtectiveDB, error) {
	db := NewProtectiveDB()
	canary := c.cfg.CanaryName()
	c.replaySweep(sweepProtective, func(ns NameserverInfo, _ dns.Name, qt dns.Type, resp *dns.Message) {
		addProtectiveAnswers(db, ns.Addr, qt, resp)
	})
	c.wd.start()
	defer c.wd.stop()

	jobs := make(chan NameserverInfo)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var stop atomic.Bool

	workers := c.cfg.parallelism()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot *stallSlot) {
			defer wg.Done()
			seg, localErr := c.newSegment()
			if seg != nil {
				defer c.releaseSegment(seg)
			}
			if localErr != nil {
				stop.Store(true)
			}
			for ns := range jobs {
				if localErr != nil {
					continue // keep draining so the feeder never blocks
				}
				if skip := c.cfg.SkipServer; skip != nil && skip(ns.Addr) {
					continue
				}
				if err := c.collectProtectiveFrom(ctx, db, ns, canary, seg, slot); err != nil {
					localErr = err
					stop.Store(true)
				} else if done := c.cfg.ServerDone; done != nil {
					done(ns.Addr)
				}
			}
			if localErr != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = localErr
				}
				mu.Unlock()
			}
		}(c.wd.slot(w))
	}
	feed(ctx, jobs, &stop, c.cfg.Nameservers)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	err := c.requeue(ctx, sweepProtective, func(f probeFailure, resp *dns.Message) {
		addProtectiveAnswers(db, f.ns.Addr, f.qtype, resp)
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

func (c *Collector) collectProtectiveFrom(ctx context.Context, db *ProtectiveDB, ns NameserverInfo, canary dns.Name, seg *segmentWriter, slot *stallSlot) error {
	server := netip.AddrPortFrom(ns.Addr, dnsio.DNSPort)
	var issued, attempted, answered int64
	var fails []probeFailure
	defer func() {
		c.addQueries(ns.Addr, issued)
		c.bookSweep(ns.Addr, attempted, answered, 0, fails)
	}()
	for _, qt := range c.cfg.queryTypes() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if c.replayed(sweepProtective, ns.Addr, canary, qt) {
			continue
		}
		issued++
		attempted++
		resp, wire, class, err := c.probeQuery(ctx, slot, seg, server, canary, qt)
		if err != nil {
			fails = append(fails, probeFailure{
				ns: ns, domain: canary, qtype: qt,
				class: class, sweep: sweepProtective,
			})
			if seg != nil {
				if jerr := seg.failure(sweepProtective, ns.Addr, canary, qt, class); jerr != nil {
					return jerr
				}
			}
			continue
		}
		answered++
		if seg != nil {
			if jerr := seg.answered(sweepProtective, ns.Addr, canary, qt, wire); jerr != nil {
				return jerr
			}
		}
		addProtectiveAnswers(db, ns.Addr, qt, resp)
	}
	return nil
}

// addProtectiveAnswers folds one canary response into the protective-record
// database.
func addProtectiveAnswers(db *ProtectiveDB, server netip.Addr, qt dns.Type, resp *dns.Message) {
	if resp.Header.RCode != dns.RCodeSuccess {
		return
	}
	for _, rr := range resp.Answers {
		if rr.Type() == qt {
			db.Add(server, qt, rr.Data.String())
		}
	}
}
