package core

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/ipam"
	"repro/internal/pdns"
	"repro/internal/simnet"
	"repro/internal/threatintel"
	"repro/internal/websim"

	idspkg "repro/internal/ids"
	sbx "repro/internal/sandbox"
)

// Config wires URHunter to the world under measurement.
type Config struct {
	Fabric *simnet.Fabric
	IPDB   *ipam.DB
	Web    *websim.World

	// SrcAddr is the measurement vantage point.
	SrcAddr netip.Addr

	// Targets are the measured domains (the top-2K Tranco sites, plus the
	// case-study FQDNs under them).
	Targets []dns.Name
	// Nameservers are the measured provider servers (≥50 hosted top-1M
	// domains in the paper's selection).
	Nameservers []NameserverInfo
	// OpenResolvers are the worldwide vantage points for correct-record
	// collection.
	OpenResolvers []netip.Addr

	// DelegatedNS reports the current delegation of a domain, used to skip
	// exactly-delegated (domain, nameserver) pairs during collection.
	DelegatedNS func(domain dns.Name) []dns.Name

	// PDNS is the historical-delegation store (may be nil).
	PDNS *pdns.Store
	// Now anchors the six-year PDNS window.
	Now time.Time

	// Intel and IDS supply the §4.3 evidence; SandboxReports carries the
	// malware traffic the IDS inspects.
	Intel          *threatintel.Aggregator
	IDS            *idspkg.Engine
	SandboxReports []*sbx.Report

	// Parallelism bounds the collection worker pool (default 8).
	Parallelism int

	// QueryTypes defaults to A and TXT, the paper's two sweeps.
	QueryTypes []dns.Type

	// PoliteInterval is the per-server minimum query spacing a real-world
	// run of this plan would honour (the ethics appendix commits to one
	// query per server every ~130 seconds on average). The simulation does
	// not sleep; the collector keeps the books so PoliteScanEstimate can
	// report the polite wall-clock. Zero selects the paper's 130 s.
	PoliteInterval time.Duration
}

func (c *Config) politeInterval() time.Duration {
	if c.PoliteInterval <= 0 {
		return 130 * time.Second
	}
	return c.PoliteInterval
}

func (c *Config) queryTypes() []dns.Type {
	if len(c.QueryTypes) == 0 {
		return []dns.Type{dns.TypeA, dns.TypeTXT}
	}
	return c.QueryTypes
}

func (c *Config) parallelism() int {
	if c.Parallelism <= 0 {
		return 8
	}
	return c.Parallelism
}

// Collector implements §4.1: response collection.
type Collector struct {
	cfg    *Config
	client *dnsio.Client

	mu         sync.Mutex
	probeCache map[netip.Addr]websim.ProbeResult
	queries    int64
	perServer  map[netip.Addr]int64
}

// NewCollector builds a collector over the configured fabric.
func NewCollector(cfg *Config) *Collector {
	client := dnsio.NewClient(&dnsio.SimTransport{Fabric: cfg.Fabric, Src: cfg.SrcAddr})
	client.Retries = 1
	client.SeedIDs(0x5eed)
	return &Collector{
		cfg:        cfg,
		client:     client,
		probeCache: make(map[netip.Addr]websim.ProbeResult),
		perServer:  make(map[netip.Addr]int64),
	}
}

// Queries returns the number of DNS queries issued so far.
func (c *Collector) Queries() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queries
}

func (c *Collector) countQuery(server netip.Addr) {
	c.mu.Lock()
	c.queries++
	c.perServer[server]++
	c.mu.Unlock()
}

// PoliteScanEstimate reports the wall-clock a real-world run of the executed
// query plan would take under the ethics appendix's per-server pacing: the
// busiest server's query count times the polite interval (servers are
// queried in parallel, so the busiest one gates the scan).
func (c *Collector) PoliteScanEstimate() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var max int64
	for _, n := range c.perServer {
		if n > max {
			max = n
		}
	}
	return time.Duration(max) * c.cfg.politeInterval()
}

// CollectURs sweeps every (nameserver, target, type) triple, skipping pairs
// where the target is exactly delegated to the nameserver, and returns the
// undelegated records extracted from NOERROR responses.
func (c *Collector) CollectURs(ctx context.Context) ([]*UR, error) {
	type job struct {
		ns NameserverInfo
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var out []*UR
	var firstErr error

	workers := c.cfg.parallelism()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				urs, err := c.collectFromNS(ctx, j.ns)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				out = append(out, urs...)
				mu.Unlock()
			}
		}()
	}
	for _, ns := range c.cfg.Nameservers {
		jobs <- job{ns: ns}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	c.enrich(out)
	return out, nil
}

// collectFromNS queries one nameserver for every target and type.
func (c *Collector) collectFromNS(ctx context.Context, ns NameserverInfo) ([]*UR, error) {
	var out []*UR
	server := netip.AddrPortFrom(ns.Addr, dnsio.DNSPort)
	// Ethics appendix: queries are issued in randomized order, never
	// walking the target list top-down against any single server.
	order := c.shuffledTargets(ns.Addr)
	for _, target := range order {
		if c.isExactlyDelegated(target, ns) {
			continue
		}
		for _, qt := range c.cfg.queryTypes() {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			c.countQuery(ns.Addr)
			resp, err := c.client.Query(ctx, server, target, qt)
			if err != nil || resp.Header.RCode != dns.RCodeSuccess {
				continue
			}
			for _, rr := range resp.Answers {
				if rr.Type() != qt || rr.Name != target {
					continue
				}
				out = append(out, &UR{
					Server: ns,
					Domain: target,
					Type:   qt,
					RData:  rr.Data.String(),
					TTL:    rr.TTL,
				})
			}
		}
	}
	return out, nil
}

// shuffledTargets returns the target list in a server-specific pseudo-random
// order, deterministic in the server address.
func (c *Collector) shuffledTargets(server netip.Addr) []dns.Name {
	out := make([]dns.Name, len(c.cfg.Targets))
	copy(out, c.cfg.Targets)
	seed := int64(0)
	for _, b := range server.AsSlice() {
		seed = seed*131 + int64(b)
	}
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// isExactlyDelegated reports whether the target — or an ancestor it
// resolves under — is delegated to this nameserver host. FQDN targets
// (api.gitlab.com) served by their SLD's delegated server are normal
// resolution, not undelegated records.
func (c *Collector) isExactlyDelegated(target dns.Name, ns NameserverInfo) bool {
	if c.cfg.DelegatedNS == nil {
		return false
	}
	for n := target; n != dns.Root; n = n.Parent() {
		for _, host := range c.cfg.DelegatedNS(n) {
			if host == ns.Host {
				return true
			}
		}
	}
	return false
}

// enrich attaches AS/geo/cert/HTTP data to every A-record UR and the
// corresponding IPs to both A and TXT records (TXT correspondence with
// same-NS same-domain A records happens in the analyzer, which sees the full
// set).
func (c *Collector) enrich(urs []*UR) {
	for _, u := range urs {
		switch u.Type {
		case dns.TypeA:
			addr, err := netip.ParseAddr(u.RData)
			if err != nil {
				continue
			}
			u.CorrespondingIPs = []netip.Addr{addr}
			if info, ok := c.cfg.IPDB.Lookup(addr); ok {
				u.ASN, u.ASName, u.Country = info.ASN, info.ASName, info.Country
			}
			if c.cfg.Web != nil {
				u.HTTP = c.probe(addr)
				u.Cert = u.HTTP.Cert
			}
		case dns.TypeTXT:
			u.TXTClass = ClassifyTXT(u.RData)
			u.CorrespondingIPs = extractIPs(u.RData)
		default:
			// MX and other extension types: rdata names a host rather than
			// an address; any embedded literal IPs still count as
			// correspondence evidence.
			u.CorrespondingIPs = extractIPs(u.RData)
		}
	}
}

// probe fetches (with caching) the HTTP/TLS enrichment for an IP.
func (c *Collector) probe(addr netip.Addr) websim.ProbeResult {
	c.mu.Lock()
	if res, ok := c.probeCache[addr]; ok {
		c.mu.Unlock()
		return res
	}
	c.mu.Unlock()
	res := c.cfg.Web.Probe(c.cfg.SrcAddr, addr)
	c.mu.Lock()
	c.probeCache[addr] = res
	c.mu.Unlock()
	return res
}

// CollectCorrect builds the legitimate-record database by querying the open
// resolvers for every target's A and TXT records and folding in enrichment —
// the geo-distributed correct-record collection of §4.1(2).
func (c *Collector) CollectCorrect(ctx context.Context) (*CorrectDB, error) {
	db := NewCorrectDB()
	type job struct{ resolver netip.Addr }
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	workers := c.cfg.parallelism()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := c.collectCorrectVia(ctx, db, j.resolver); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, r := range c.cfg.OpenResolvers {
		jobs <- job{resolver: r}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return db, nil
}

func (c *Collector) collectCorrectVia(ctx context.Context, db *CorrectDB, resolver netip.Addr) error {
	server := netip.AddrPortFrom(resolver, dnsio.DNSPort)
	for _, target := range c.shuffledTargets(resolver) {
		for _, qt := range c.cfg.queryTypes() {
			if err := ctx.Err(); err != nil {
				return err
			}
			c.countQuery(resolver)
			resp, err := c.client.Query(ctx, server, target, qt)
			if err != nil || resp.Header.RCode != dns.RCodeSuccess {
				continue
			}
			profile := db.Profile(target)
			for _, rr := range resp.Answers {
				switch data := rr.Data.(type) {
				case *dns.A:
					var asn ipam.ASN
					var country, certFP string
					if info, ok := c.cfg.IPDB.Lookup(data.Addr); ok {
						asn, country = info.ASN, info.Country
					}
					if c.cfg.Web != nil {
						if res := c.probe(data.Addr); res.Cert != nil {
							certFP = res.Cert.Fingerprint
						}
					}
					profile.AddA(data.Addr, asn, country, certFP)
				case *dns.TXT:
					profile.AddTXT(rr.Data.String())
				default:
					profile.AddOther(rr.Type(), rr.Data.String())
				}
			}
		}
	}
	return nil
}

// CollectProtective queries every nameserver for a canary domain no one
// hosts and records the answers as that server's protective records
// (§4.1(3)).
func (c *Collector) CollectProtective(ctx context.Context) (*ProtectiveDB, error) {
	db := NewProtectiveDB()
	canary := dns.Name(fmt.Sprintf("urhunter-canary-%d.test", time.Now().UnixNano()%1_000_000))
	for _, ns := range c.cfg.Nameservers {
		server := netip.AddrPortFrom(ns.Addr, dnsio.DNSPort)
		for _, qt := range c.cfg.queryTypes() {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			c.countQuery(ns.Addr)
			resp, err := c.client.Query(ctx, server, canary, qt)
			if err != nil || resp.Header.RCode != dns.RCodeSuccess {
				continue
			}
			for _, rr := range resp.Answers {
				if rr.Type() == qt {
					db.Add(ns.Addr, qt, rr.Data.String())
				}
			}
		}
	}
	return db, nil
}
