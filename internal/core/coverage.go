package core

import (
	"net/netip"
	"sort"
	"sync"

	"repro/internal/dns"
	"repro/internal/dnsio"
)

// sweepKind tags which collection pass a probe belonged to, so each sweep's
// end-of-sweep re-queue pass drains only its own failures.
type sweepKind uint8

const (
	sweepURs sweepKind = iota
	sweepCorrect
	sweepProtective
)

// probeFailure is one failed (server, domain, type) probe, parked in the
// failure book until the re-queue pass retries it.
type probeFailure struct {
	ns     NameserverInfo
	domain dns.Name
	qtype  dns.Type
	class  dnsio.FailClass
	sweep  sweepKind
}

// covShards slices the coverage book by server address, like the collector's
// other shared books, so sweep workers never contend on one lock.
const covShards = 32

// serverCov is one server's completeness tally. failed is derived:
// attempted - answered equals the number of failure records still on file.
type serverCov struct {
	attempted int64
	answered  int64
	recovered int64
}

// covShard is one slice of the coverage book: per-server tallies plus the
// failure records for servers hashing here.
type covShard struct {
	mu       sync.Mutex
	per      map[netip.Addr]*serverCov
	failures []probeFailure
}

// ServerCoverage is one server's measurement-completeness summary.
type ServerCoverage struct {
	Addr      netip.Addr
	Attempted int64
	Answered  int64
	Failed    int64
	// Recovered counts probes that failed in the main sweep but answered in
	// the re-queue pass (a subset of Answered).
	Recovered int64
}

// Coverage summarises measurement completeness for a collection run: how
// much of the planned (server, domain, type) probe matrix actually produced
// a validated DNS response, and what happened to the rest. It is the
// robustness counterpart to the Queries speed counter: a chaos run that
// finishes fast but silently lost a third of its probes is not a
// measurement.
type Coverage struct {
	// Attempted is the number of unique probes the sweep planned and issued
	// (re-queue retries do not count again).
	Attempted int64
	// Answered is how many probes eventually got a validated response,
	// including those recovered by the re-queue pass. Responses with
	// non-NOERROR rcodes count: the server answered.
	Answered int64
	// RetriedRecovered is how many failed probes the end-of-sweep re-queue
	// pass turned into answers.
	RetriedRecovered int64
	// BreakerTrips is how many times any server's circuit breaker opened.
	BreakerTrips int64
	// Stalls is how many times the stall watchdog cancelled a wedged probe.
	Stalls int64
	// FailedByClass histograms the probes still unanswered after the
	// re-queue pass, keyed by dnsio.FailClass name.
	FailedByClass map[string]int64
	// PerServer breaks the totals down by server, sorted by address.
	PerServer []ServerCoverage
}

// Failed returns the number of probes that never got an answer.
func (c *Coverage) Failed() int64 { return c.Attempted - c.Answered }

// AnsweredRatio returns Answered/Attempted (1 for an empty plan) — the
// headline completeness figure the acceptance gate tracks.
func (c *Coverage) AnsweredRatio() float64 {
	if c.Attempted == 0 {
		return 1
	}
	return float64(c.Answered) / float64(c.Attempted)
}

// covShardOf hashes a server address onto its coverage shard.
func (c *Collector) covShardOf(addr netip.Addr) *covShard {
	return &c.cov[addrShard(addr, covShards)]
}

// bookSweep books one server's batch of probe outcomes: counts once per
// (server, sweep) batch, failure records appended for the re-queue pass.
// recovered counts probes that failed and then answered on an in-job retry
// (the fused sweep's canary retry); such probes are attempted once.
func (c *Collector) bookSweep(server netip.Addr, attempted, answered, recovered int64, fails []probeFailure) {
	if attempted == 0 && len(fails) == 0 {
		return
	}
	s := c.covShardOf(server)
	s.mu.Lock()
	sc := s.per[server]
	if sc == nil {
		sc = &serverCov{}
		s.per[server] = sc
	}
	sc.attempted += attempted
	sc.answered += answered
	sc.recovered += recovered
	s.failures = append(s.failures, fails...)
	s.mu.Unlock()
}

// bookReplay books one server's journal-replayed tallies at resume. Replayed
// probes were attempted (and possibly answered or recovered) in the
// interrupted run; they re-enter the books exactly once here so a resumed
// run's coverage accounts the full plan without double-counting.
func (c *Collector) bookReplay(server netip.Addr, attempted, answered, recovered int64) {
	if attempted == 0 {
		return
	}
	s := c.covShardOf(server)
	s.mu.Lock()
	sc := s.per[server]
	if sc == nil {
		sc = &serverCov{}
		s.per[server] = sc
	}
	sc.attempted += attempted
	sc.answered += answered
	sc.recovered += recovered
	s.mu.Unlock()
}

// bookRecovered upgrades one previously-failed probe to answered.
func (c *Collector) bookRecovered(server netip.Addr) {
	s := c.covShardOf(server)
	s.mu.Lock()
	if sc := s.per[server]; sc != nil {
		sc.answered++
		sc.recovered++
	}
	s.mu.Unlock()
}

// drainFailures removes and returns every parked failure of one sweep.
func (c *Collector) drainFailures(kind sweepKind) []probeFailure {
	var out []probeFailure
	for i := range c.cov {
		s := &c.cov[i]
		s.mu.Lock()
		kept := s.failures[:0]
		for _, f := range s.failures {
			if f.sweep == kind {
				out = append(out, f)
			} else {
				kept = append(kept, f)
			}
		}
		s.failures = kept
		s.mu.Unlock()
	}
	return out
}

// refile parks a (re-classified) failure back in the book.
func (c *Collector) refile(f probeFailure) {
	s := c.covShardOf(f.ns.Addr)
	s.mu.Lock()
	s.failures = append(s.failures, f)
	s.mu.Unlock()
}

// sortFailures puts a drained failure batch into canonical (server, domain,
// type) order so the re-queue pass issues a deterministic query plan.
func sortFailures(fails []probeFailure) {
	sort.Slice(fails, func(i, j int) bool {
		a, b := fails[i], fails[j]
		if cmp := a.ns.Addr.Compare(b.ns.Addr); cmp != 0 {
			return cmp < 0
		}
		if a.domain != b.domain {
			return a.domain < b.domain
		}
		return a.qtype < b.qtype
	})
}

// Coverage snapshots the completeness books. Call it after the sweeps of
// interest; the pipeline attaches the final snapshot to its Result.
func (c *Collector) Coverage() *Coverage {
	cov := &Coverage{FailedByClass: make(map[string]int64)}
	perServer := make(map[netip.Addr]*ServerCoverage)
	for i := range c.cov {
		s := &c.cov[i]
		s.mu.Lock()
		for addr, sc := range s.per {
			perServer[addr] = &ServerCoverage{
				Addr:      addr,
				Attempted: sc.attempted,
				Answered:  sc.answered,
				Failed:    sc.attempted - sc.answered,
				Recovered: sc.recovered,
			}
			cov.Attempted += sc.attempted
			cov.Answered += sc.answered
			cov.RetriedRecovered += sc.recovered
		}
		for _, f := range s.failures {
			cov.FailedByClass[f.class.String()]++
		}
		s.mu.Unlock()
	}
	for _, sc := range perServer {
		cov.PerServer = append(cov.PerServer, *sc)
	}
	sort.Slice(cov.PerServer, func(i, j int) bool {
		return cov.PerServer[i].Addr.Compare(cov.PerServer[j].Addr) < 0
	})
	if c.client.Breakers != nil {
		cov.BreakerTrips = c.client.Breakers.Trips()
	}
	cov.Stalls = c.wd.Stalls()
	return cov
}
