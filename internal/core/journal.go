// Sweep checkpoint journal: crash-safe, resumable collection.
//
// A paper-scale sweep is ~36M exchanges; treating it as all-or-nothing means
// a crash, OOM, or operator Ctrl-C throws away every answered probe. The
// journal gives the collector training-run durability: workers append
// answered probes and failure-book entries to per-worker segment files as
// they happen, flushing to the OS at checkpoint boundaries, and a resumed
// run replays the journal before touching the network — already-answered
// probes are folded back through the exact same code path the live sweep
// uses, so the resumed report is byte-identical to an uninterrupted run at
// any parallelism.
//
// Durability tiers: records buffer in memory between checkpoints (lost if
// the process dies mid-interval); a checkpoint write()s them to the kernel,
// which survives any process-level death — SIGKILL, OOM, panic — the
// failure modes preemption actually produces. fsync, which additionally
// survives kernel crash and power loss, is opt-in via SyncEvery because it
// costs hundreds of microseconds per call; losing an unsynced tail never
// breaks resume, it only re-queries the probes the tail covered (the CRC
// framing below treats a ripped tail as absent, not as truth).
//
// On-disk layout (one directory per sweep):
//
//	manifest.json   {version, plan_hash, seed} — guards against resuming
//	                the wrong sweep; the hash covers everything that defines
//	                the probe plan (seed, targets, nameservers, resolvers,
//	                query types) and deliberately excludes parallelism.
//	seg-NNNNN.wal   append-only segments; each run's workers write fresh
//	                segments numbered after every existing one, so old
//	                segments are never reopened for writing.
//
// Segment framing: records batch into one frame per checkpoint flush —
// [u32 length][u32 CRC-32C (Castagnoli) of the payload][records...], lengths
// little-endian, the payload's final record a checkpoint marker carrying the
// cumulative record count. Group framing (one CRC per flush, not per record)
// is what keeps the journal's overhead invisible next to the sweep itself;
// it costs nothing in durability because records only ever reach the file a
// whole flush at a time. A hard kill can tear the tail of a segment
// mid-frame; replay detects the torn frame via length/CRC and discards the
// tail rather than trusting it — the probes it covered are simply
// re-queried. Replay feeds the journaled response bytes back through
// dns.Unpack, so the decoder is fuzzed (FuzzMessageUnpack) against exactly
// this attacker-influenceable surface.
package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dns"
	"repro/internal/dnsio"
)

// journal format constants.
const (
	journalVersion = 1
	manifestName   = "manifest.json"
	segmentPrefix  = "seg-"
	segmentSuffix  = ".wal"
	// frameHeader is the [u32 length][u32 CRC-32C] prefix of every frame.
	frameHeader = 8
	// maxJournalFrame bounds a frame's declared payload length; anything
	// larger is corruption. A frame holds at most segBufHighwater of
	// buffered records plus one in-flight record (a DNS response tops out
	// at 64 KiB) and the checkpoint marker, far under this bound.
	maxJournalFrame = 1 << 20
	// defaultCheckpointEvery is the record interval between flush
	// checkpoints when the caller does not choose one. At ~200 bytes per
	// answered record a hard kill forfeits at most ~200 KiB of re-queries;
	// a smaller interval buys little and pays a write() per interval.
	defaultCheckpointEvery = 1024
	// segBufHighwater flushes a segment writer early when its buffer
	// reaches this size, whatever the record interval — CheckpointEvery can
	// then be raised freely without unbounded buffering. Writers allocate
	// this much up front so the append path never grows the buffer.
	segBufHighwater = 128 << 10
)

// record types inside a segment.
const (
	recAnswered   byte = 1 // probe key + packed DNS response
	recFailure    byte = 2 // probe key + failure class
	recCheckpoint byte = 3 // cumulative record count, written at each flush
)

// crcTable is the Castagnoli polynomial — hardware-accelerated on amd64 and
// arm64 even for the short frames the journal writes, where the IEEE
// polynomial's carry-less-multiply path never amortises its setup.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// probeKey identifies one (sweep, server, domain, qtype) probe — the unit of
// skip-on-resume.
type probeKey struct {
	sweep  sweepKind
	server netip.Addr
	domain dns.Name
	qtype  dns.Type
}

// replayState is the decoded journal: every answered probe with its packed
// response, and every probe that was on the failure book when the run died.
// A key present in both recovered via the re-queue pass (or failed first and
// answered on resume); answered wins.
type replayState struct {
	answered map[probeKey][]byte
	failed   map[probeKey]dnsio.FailClass
	segments int
	torn     int
}

// JournalOptions tunes a journal.
type JournalOptions struct {
	// CheckpointEvery is how many records a segment buffers in memory
	// between flush checkpoints. Smaller loses less work to a hard kill;
	// larger amortises the write cost. Zero selects the default (1024).
	CheckpointEvery int
	// SyncEvery, when positive, fsyncs a segment after every SyncEvery-th
	// checkpoint (and at segment close), extending durability from
	// process death to power loss. Zero — the default — never fsyncs:
	// checkpointed records sit in the kernel page cache, which survives
	// every process-level failure, and a torn post-crash tail is detected
	// and re-queried rather than trusted.
	SyncEvery int
}

func (o JournalOptions) checkpointEvery() int {
	if o.CheckpointEvery <= 0 {
		return defaultCheckpointEvery
	}
	return o.CheckpointEvery
}

// Journal is a sweep checkpoint directory: a manifest binding it to one
// probe plan, plus append-only segments. One Journal serves one pipeline
// run; workers obtain private segment writers so appends never contend.
type Journal struct {
	dir      string
	opts     JournalOptions
	planHash uint64

	mu      sync.Mutex
	nextSeg int
	idle    []*segmentWriter // released writers parked for the next sweep

	rs *replayState // nil on a fresh journal

	appended atomic.Int64

	// AppendHook, when set before the run starts, observes the global
	// appended-record count after every data append. Tests use it to cancel
	// a sweep at an exact journal position; production leaves it nil.
	AppendHook func(total int64)
}

// manifest is the serialized journal identity. Shard journals additionally
// record the full plan's hash and their shard descriptor, so a mismatched
// resume or merge can say *what* is wrong (different plan vs different shard)
// instead of only that the hashes differ.
type manifest struct {
	Version  int    `json:"version"`
	PlanHash string `json:"plan_hash"`
	Seed     int64  `json:"seed"`

	// FullPlanHash is the unsharded plan's hash; empty on whole-plan
	// journals, whose PlanHash already is the full hash.
	FullPlanHash string `json:"full_plan_hash,omitempty"`
	// Shard is the shard descriptor, nil on whole-plan journals.
	Shard *shardManifest `json:"shard,omitempty"`

	// Transport is the wire transport the journal's records were collected
	// over ("udp", "dot", "doh"); empty means udp, so journals written
	// before the field existed keep resuming. Transport is deliberately not
	// part of PlanHash — verdicts are transport-independent and the reports
	// byte-identical — but the failure books are not comparable across
	// transports (a TLS-handshake failure has no UDP analogue), so resume
	// and merge refuse to mix them.
	Transport string `json:"transport,omitempty"`
}

// normTransport maps the manifest's empty-means-udp encoding onto the
// canonical kind name for comparison.
func normTransport(s string) string {
	if s == "" {
		return "udp"
	}
	return s
}

// shardManifest is ShardDesc in manifest form.
type shardManifest struct {
	Index int `json:"index"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	Units int `json:"units"`
}

// ShardDesc identifies one contiguous shard of a probe plan: the half-open
// range [Lo, Hi) over the plan's server units (open resolvers first, then
// nameservers, both in config order) out of Units total. Index labels the
// shard for logs and manifests and is part of the shard identity — a journal
// written for shard 3 never resumes as shard 5, even over the same range.
type ShardDesc struct {
	Index int
	Lo    int
	Hi    int
	Units int
}

func (sd ShardDesc) String() string {
	return fmt.Sprintf("shard %d (units [%d,%d) of %d)", sd.Index, sd.Lo, sd.Hi, sd.Units)
}

// PlanUnits is the number of shardable work units in the plan: one per open
// resolver plus one per nameserver. Sharding never splits a server across
// shards — each endpoint's exchange order stays a pure function of the
// configuration, which is what keeps chaos runs reproducible across
// re-sharding.
func (c *Config) PlanUnits() int {
	return len(c.OpenResolvers) + len(c.Nameservers)
}

// ShardPlanHash extends a full plan hash with a shard descriptor, giving each
// shard journal its own identity under the shared plan.
func ShardPlanHash(fullPlan uint64, sd ShardDesc) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "full=%016x\nshard=%d:[%d,%d)/%d\n", fullPlan, sd.Index, sd.Lo, sd.Hi, sd.Units)
	return h.Sum64()
}

// PlanHash fingerprints everything that defines the probe plan: the seed and
// query types plus the target, nameserver, and resolver sets. Parallelism
// and pacing are excluded on purpose — a sweep may be resumed with a
// different worker count and must produce the same report.
func (c *Config) PlanHash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%d\n", c.Seed)
	for _, qt := range c.queryTypes() {
		fmt.Fprintf(h, "qt=%d\n", uint16(qt))
	}
	for _, t := range c.Targets {
		fmt.Fprintf(h, "target=%s\n", t)
	}
	for _, ns := range c.Nameservers {
		fmt.Fprintf(h, "ns=%s|%s|%s\n", ns.Addr, ns.Host, ns.Provider)
	}
	for _, r := range c.OpenResolvers {
		fmt.Fprintf(h, "resolver=%s\n", r)
	}
	return h.Sum64()
}

// journalIdentity is what a journal directory is bound to: the plan hash its
// records belong under (the full plan hash for whole-plan journals, the
// shard-extended hash for shard journals), the underlying full plan's hash,
// and the shard descriptor when the journal covers only a slice of the plan.
type journalIdentity struct {
	plan      uint64
	full      uint64
	shard     *ShardDesc
	seed      int64
	transport string
}

// OpenJournal opens (creating if needed) the checkpoint journal for one
// whole sweep plan. If the directory already holds a journal, its manifest
// must match the config's plan hash — resuming someone else's sweep would
// silently skip the wrong probes — and every readable segment record is
// replayed into memory; torn tails are detected and discarded.
func OpenJournal(dir string, cfg *Config, opts JournalOptions) (*Journal, error) {
	full := cfg.PlanHash()
	return openJournal(dir, journalIdentity{
		plan: full, full: full, seed: cfg.Seed,
		transport: normTransport(cfg.TransportKind),
	}, opts)
}

// OpenShardJournal opens the checkpoint journal for one shard of a larger
// plan. cfg is the shard's own (sliced) config; fullPlan is the hash of the
// complete plan the shard was cut from, and sd locates the shard inside it.
// The directory's identity is the shard-extended plan hash, so a shard
// journal resumes only as the same shard of the same plan — re-opening it
// as a different shard, or as the whole plan, fails with an error that says
// which mismatch happened.
func OpenShardJournal(dir string, cfg *Config, fullPlan uint64, sd ShardDesc, opts JournalOptions) (*Journal, error) {
	if sd.Lo < 0 || sd.Hi < sd.Lo || sd.Hi > sd.Units {
		return nil, fmt.Errorf("journal: invalid %s", sd)
	}
	if got := cfg.PlanUnits(); got != sd.Hi-sd.Lo {
		return nil, fmt.Errorf("journal: shard config has %d units, %s spans %d", got, sd, sd.Hi-sd.Lo)
	}
	desc := sd
	return openJournal(dir, journalIdentity{
		plan:      ShardPlanHash(fullPlan, sd),
		full:      fullPlan,
		shard:     &desc,
		seed:      cfg.Seed,
		transport: normTransport(cfg.TransportKind),
	}, opts)
}

// openJournal is the shared open path: create-or-validate the manifest
// against the caller's identity, then replay any existing segments.
func openJournal(dir string, id journalIdentity, opts JournalOptions) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create dir: %w", err)
	}
	j := &Journal{dir: dir, opts: opts, planHash: id.plan}
	mpath := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(mpath)
	switch {
	case err == nil:
		m, err := parseManifest(data)
		if err != nil {
			return nil, err
		}
		if err := matchManifest(dir, m, id); err != nil {
			return nil, err
		}
		if err := j.replayDir(); err != nil {
			return nil, err
		}
	case os.IsNotExist(err):
		if err := writeManifest(mpath, id); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("journal: read manifest: %w", err)
	}
	return j, nil
}

// parseManifest decodes and version-checks a manifest file's bytes.
func parseManifest(data []byte) (manifest, error) {
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("journal: manifest unreadable: %w", err)
	}
	if m.Version != journalVersion {
		return m, fmt.Errorf("journal: manifest version %d, want %d", m.Version, journalVersion)
	}
	return m, nil
}

// fullHashHex is the manifest's full-plan hash: shard manifests carry it
// explicitly; a whole-plan manifest's plan hash is the full hash.
func (m manifest) fullHashHex() string {
	if m.Shard != nil {
		return m.FullPlanHash
	}
	return m.PlanHash
}

// matchManifest checks an existing journal's identity against the opener's,
// distinguishing the ways they can disagree: a different underlying plan, a
// shard journal opened as a whole plan (or vice versa), or the right plan
// but the wrong shard. Each gets its own error so the operator knows whether
// to change the config, pick a different directory, or run the merge step.
func matchManifest(dir string, m manifest, id journalIdentity) error {
	fullHex := fmt.Sprintf("%016x", id.full)
	if got := m.fullHashHex(); got != fullHex {
		return fmt.Errorf("journal: directory %s holds a different sweep plan (its plan hash %s, this config's %s): resume and merge refuse to mix plans",
			dir, got, fullHex)
	}
	if got := normTransport(m.Transport); got != normTransport(id.transport) {
		return fmt.Errorf("journal: directory %s was swept over transport %q but this run uses %q: resume and merge refuse to mix transports; re-run with -transport %s or point the sweep at a fresh directory",
			dir, got, normTransport(id.transport), got)
	}
	switch {
	case m.Shard != nil && id.shard == nil:
		return fmt.Errorf("journal: directory %s holds shard %d (units [%d,%d) of %d) of this plan, not the whole plan; merge shard journals into a fresh directory instead of resuming one directly",
			dir, m.Shard.Index, m.Shard.Lo, m.Shard.Hi, m.Shard.Units)
	case m.Shard == nil && id.shard != nil:
		return fmt.Errorf("journal: directory %s holds the whole plan, not %s; point the shard at its own directory",
			dir, *id.shard)
	case m.Shard != nil && id.shard != nil:
		have := ShardDesc{Index: m.Shard.Index, Lo: m.Shard.Lo, Hi: m.Shard.Hi, Units: m.Shard.Units}
		if have != *id.shard {
			return fmt.Errorf("journal: directory %s holds %s of this plan, asked to resume as %s: a shard journal resumes only as the same shard",
				dir, have, *id.shard)
		}
	}
	if m.PlanHash != fmt.Sprintf("%016x", id.plan) {
		// Same full plan and same shard shape, yet the bound hash differs —
		// only reachable if the hash scheme itself changed.
		return fmt.Errorf("journal: directory %s belongs to a different sweep plan (manifest %s, config %016x)",
			dir, m.PlanHash, id.plan)
	}
	return nil
}

// writeManifest creates the manifest atomically (temp file + rename) so a
// kill during journal creation never leaves a half-written identity.
func writeManifest(path string, id journalIdentity) error {
	m := manifest{Version: journalVersion, PlanHash: fmt.Sprintf("%016x", id.plan), Seed: id.seed}
	if t := normTransport(id.transport); t != "udp" {
		// udp stays implicit so pre-transport journals and new ones agree
		// byte-for-byte on the default.
		m.Transport = t
	}
	if id.shard != nil {
		m.FullPlanHash = fmt.Sprintf("%016x", id.full)
		m.Shard = &shardManifest{Index: id.shard.Index, Lo: id.shard.Lo, Hi: id.shard.Hi, Units: id.shard.Units}
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("journal: write manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("journal: commit manifest: %w", err)
	}
	return nil
}

// replayDir decodes every segment in index order into the replay state and
// positions the segment counter after the highest existing index.
func (j *Journal) replayDir() error {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return fmt.Errorf("journal: scan dir: %w", err)
	}
	var segs []string
	maxIdx := -1
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		segs = append(segs, name)
		var idx int
		if _, err := fmt.Sscanf(name, segmentPrefix+"%05d"+segmentSuffix, &idx); err == nil && idx > maxIdx {
			maxIdx = idx
		}
	}
	sort.Strings(segs)
	j.nextSeg = maxIdx + 1
	rs := &replayState{
		answered: make(map[probeKey][]byte),
		failed:   make(map[probeKey]dnsio.FailClass),
	}
	for _, name := range segs {
		if err := readSegment(filepath.Join(j.dir, name), rs); err != nil {
			return err
		}
		rs.segments++
	}
	j.rs = rs
	return nil
}

// Resumed reports whether the journal carried prior state when opened.
func (j *Journal) Resumed() bool { return j.rs != nil }

// ReplayedAnswered returns how many distinct answered probes were restored
// from the journal.
func (j *Journal) ReplayedAnswered() int {
	if j.rs == nil {
		return 0
	}
	return len(j.rs.answered)
}

// ReplayedFailures returns how many distinct probes were restored onto the
// failure book (answered probes with an older failure record not counted).
func (j *Journal) ReplayedFailures() int {
	if j.rs == nil {
		return 0
	}
	n := 0
	for k := range j.rs.failed {
		if _, ok := j.rs.answered[k]; !ok {
			n++
		}
	}
	return n
}

// TornSegments returns how many segments ended in a torn or corrupt tail
// that replay discarded.
func (j *Journal) TornSegments() int {
	if j.rs == nil {
		return 0
	}
	return j.rs.torn
}

// Appended returns how many data records this process has appended.
func (j *Journal) Appended() int64 { return j.appended.Load() }

// Close finishes the journal: parked segment writers are flushed and their
// files closed, and with SyncEvery enabled the directory entry is synced so
// freshly created segments survive a power loss.
func (j *Journal) Close() error {
	j.mu.Lock()
	idle := j.idle
	j.idle = nil
	j.mu.Unlock()
	var firstErr error
	for _, s := range idle {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if j.opts.SyncEvery <= 0 {
		return firstErr
	}
	d, err := os.Open(j.dir)
	if err != nil {
		if firstErr == nil {
			firstErr = err
		}
		return firstErr
	}
	serr := d.Sync()
	cerr := d.Close()
	if firstErr == nil {
		firstErr = serr
	}
	if firstErr == nil {
		firstErr = cerr
	}
	return firstErr
}

// newSegment opens the next append-only segment file. Each concurrent
// writer gets its own, so journal appends never serialize the pool.
func (j *Journal) newSegment() (*segmentWriter, error) {
	j.mu.Lock()
	idx := j.nextSeg
	j.nextSeg++
	j.mu.Unlock()
	path := filepath.Join(j.dir, fmt.Sprintf("%s%05d%s", segmentPrefix, idx, segmentSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create segment: %w", err)
	}
	return &segmentWriter{
		j: j, f: f,
		every: j.opts.checkpointEvery(),
		buf:   make([]byte, frameHeader, segBufHighwater+(4<<10)),
	}, nil
}

// acquireSegment hands a worker a segment writer: a parked one from an
// earlier sweep when available (appends just continue in the same file),
// else a freshly created segment. Pooling matters because every sweep of
// every run would otherwise pay a file create per worker.
func (j *Journal) acquireSegment() (*segmentWriter, error) {
	j.mu.Lock()
	if n := len(j.idle); n > 0 {
		s := j.idle[n-1]
		j.idle = j.idle[:n-1]
		j.mu.Unlock()
		return s, nil
	}
	j.mu.Unlock()
	return j.newSegment()
}

// releaseSegment flushes a writer's pending records — the graceful-drain
// guarantee at the end of each sweep — and parks it for the next acquirer.
// The file stays open; Journal.Close closes parked writers.
func (j *Journal) releaseSegment(s *segmentWriter) error {
	var err error
	if s.pending > 0 {
		err = s.checkpoint()
	}
	j.mu.Lock()
	j.idle = append(j.idle, s)
	j.mu.Unlock()
	return err
}

// segmentWriter appends records to one segment file, buffering up to
// CheckpointEvery records (or segBufHighwater bytes) into the frame that the
// next checkpoint seals and flushes. Not safe for concurrent use — every
// worker owns its segment exclusively.
type segmentWriter struct {
	j       *Journal
	f       *os.File
	every   int    // checkpoint interval, cached off the journal options
	buf     []byte // frame under construction: reserved header + records
	pending int    // records in buf
	count   uint64 // data records written to this segment overall
	ckpts   int    // checkpoints written, for the SyncEvery cadence
}

// appendData counts one freshly appended data record and checkpoints at the
// configured interval.
func (s *segmentWriter) appendData() error {
	s.count++
	s.pending++
	total := s.j.appended.Add(1)
	if hook := s.j.AppendHook; hook != nil {
		hook(total)
	}
	if s.pending >= s.every || len(s.buf) >= segBufHighwater {
		return s.checkpoint()
	}
	return nil
}

// checkpoint seals the pending records plus a cumulative-count marker into
// one CRC frame and flushes it to the kernel, making everything up to here
// survive process death. On the SyncEvery cadence (when enabled) it also
// fsyncs for power-loss durability.
func (s *segmentWriter) checkpoint() error {
	s.buf = append(s.buf, recCheckpoint)
	s.buf = binary.LittleEndian.AppendUint64(s.buf, s.count)
	payload := s.buf[frameHeader:]
	binary.LittleEndian.PutUint32(s.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(s.buf[4:8], crc32.Checksum(payload, crcTable))
	if _, err := s.f.Write(s.buf); err != nil {
		return fmt.Errorf("journal: segment write: %w", err)
	}
	s.buf = s.buf[:frameHeader]
	s.pending = 0
	s.ckpts++
	if se := s.j.opts.SyncEvery; se > 0 && s.ckpts%se == 0 {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("journal: segment sync: %w", err)
		}
	}
	return nil
}

// Close checkpoints any pending records and closes the file — the graceful-
// drain flush every worker performs on its way out. With SyncEvery enabled
// the segment is fsynced so a finished sweep's records are power-loss safe.
func (s *segmentWriter) Close() error {
	var err error
	if s.pending > 0 {
		err = s.checkpoint()
	}
	if s.j.opts.SyncEvery > 0 {
		if serr := s.f.Sync(); err == nil && serr != nil {
			err = fmt.Errorf("journal: segment sync: %w", serr)
		}
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// keyPayload builds the shared (type, sweep, server, domain, qtype) prefix.
func keyPayload(dst []byte, rec byte, kind sweepKind, server netip.Addr, domain dns.Name, qt dns.Type) []byte {
	dst = append(dst, rec, byte(kind))
	// Encode the address from its value form: AsSlice would heap-allocate
	// per record, and this prefix is written tens of millions of times.
	if server.Is4() {
		a := server.As4()
		dst = append(dst, 4)
		dst = append(dst, a[:]...)
	} else {
		a := server.As16()
		dst = append(dst, 16)
		dst = append(dst, a[:]...)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(domain)))
	dst = append(dst, domain...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(qt))
	return dst
}

// answered journals one answered probe with the response's wire bytes
// exactly as the server sent them (no re-pack — at 36M records the pack cost
// would dwarf the copy); replay feeds them back through the validated
// decoder, the same bytes the live sweep decoded.
func (s *segmentWriter) answered(kind sweepKind, server netip.Addr, domain dns.Name, qt dns.Type, wire []byte) error {
	s.buf = keyPayload(s.buf, recAnswered, kind, server, domain, qt)
	s.buf = binary.LittleEndian.AppendUint32(s.buf, uint32(len(wire)))
	s.buf = append(s.buf, wire...)
	return s.appendData()
}

// failure journals one failure-book entry.
func (s *segmentWriter) failure(kind sweepKind, server netip.Addr, domain dns.Name, qt dns.Type, class dnsio.FailClass) error {
	s.buf = keyPayload(s.buf, recFailure, kind, server, domain, qt)
	s.buf = append(s.buf, byte(class))
	return s.appendData()
}

// errTornTail marks the first undecodable frame of a segment; replay treats
// everything from there on as a torn write and discards it.
var errTornTail = errors.New("journal: torn segment tail")

// readSegment folds one segment's records into the replay state. Corruption
// — a short frame, a CRC mismatch, a record that fails to decode, or a
// checkpoint marker whose count disagrees — truncates the replay at that
// point: the tail is counted torn and ignored, never trusted.
func readSegment(path string, rs *replayState) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("journal: open segment: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return fmt.Errorf("journal: read segment: %w", err)
	}
	var count uint64
	off := 0
	torn := func() {
		rs.torn++
	}
	for off < len(data) {
		if len(data)-off < frameHeader {
			torn()
			return nil
		}
		length := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > maxJournalFrame || len(data)-off-frameHeader < int(length) {
			torn()
			return nil
		}
		payload := data[off+frameHeader : off+frameHeader+int(length)]
		if crc32.Checksum(payload, crcTable) != sum {
			torn()
			return nil
		}
		off += frameHeader + int(length)
		if err := decodeFrame(payload, rs, &count); err != nil {
			torn()
			return nil
		}
	}
	return nil
}

// decodeFrame folds one CRC-verified frame's records into the replay state.
// A frame carries a whole checkpoint interval: data records back to back,
// then the checkpoint marker whose cumulative count must agree with the
// records decoded so far — a cheap structural check on top of the CRC.
func decodeFrame(p []byte, rs *replayState, count *uint64) error {
	for len(p) > 0 {
		switch p[0] {
		case recCheckpoint:
			if len(p) < 9 {
				return errTornTail
			}
			if binary.LittleEndian.Uint64(p[1:9]) != *count {
				return errTornTail
			}
			p = p[9:]
		case recAnswered, recFailure:
			rec := p[0]
			p = p[1:]
			if len(p) < 2 {
				return errTornTail
			}
			kind := sweepKind(p[0])
			alen := int(p[1])
			p = p[2:]
			if alen != 4 && alen != 16 || len(p) < alen {
				return errTornTail
			}
			addr, ok := netip.AddrFromSlice(p[:alen])
			if !ok {
				return errTornTail
			}
			p = p[alen:]
			if len(p) < 2 {
				return errTornTail
			}
			dlen := int(binary.LittleEndian.Uint16(p[0:2]))
			p = p[2:]
			if len(p) < dlen+2 {
				return errTornTail
			}
			domain := dns.Name(p[:dlen])
			p = p[dlen:]
			qt := dns.Type(binary.LittleEndian.Uint16(p[0:2]))
			p = p[2:]
			key := probeKey{sweep: kind, server: addr, domain: domain, qtype: qt}
			if rec == recFailure {
				if len(p) < 1 {
					return errTornTail
				}
				rs.failed[key] = dnsio.FailClass(p[0])
				p = p[1:]
				*count++
				continue
			}
			if len(p) < 4 {
				return errTornTail
			}
			rlen := int(binary.LittleEndian.Uint32(p[0:4]))
			p = p[4:]
			if rlen < 0 || len(p) < rlen {
				return errTornTail
			}
			if _, have := rs.answered[key]; !have {
				resp := make([]byte, rlen)
				copy(resp, p[:rlen])
				rs.answered[key] = resp
			}
			p = p[rlen:]
			*count++
		default:
			return errTornTail
		}
	}
	return nil
}

// MergeStats summarises a shard-journal merge.
type MergeStats struct {
	Dirs     int   // shard directories merged
	Segments int   // segment files copied
	Bytes    int64 // segment bytes copied
}

// MergeShardJournals combines per-shard journal directories into one fresh
// whole-plan journal at dst. The merge is structural: each source's segments
// are copied (renumbered sequentially) into dst and a whole-plan manifest is
// written, after which OpenJournal(dst, cfg, ...) replays them through the
// ordinary resume path — first-wins on duplicate probes (re-swept stolen
// tails), answered-beats-failed, missing probes live-swept. That replay is
// the merge semantics; this function only validates that the pieces belong
// together:
//
//   - every source manifest must carry cfg's full plan hash (shard journals
//     via full_plan_hash, whole-plan journals directly);
//   - shard descriptors must agree on the unit total and, unioned, cover
//     every unit in [0, PlanUnits) — a gap means a shard journal is missing
//     and the merged report would silently re-sweep (or worse, under a
//     CollectOnly worker, drop) its probes.
//
// Overlapping shards are fine (work stealing re-sweeps stolen tails on
// purpose); duplicate records resolve first-wins at replay.
func MergeShardJournals(dst string, cfg *Config, srcDirs []string) (MergeStats, error) {
	var st MergeStats
	if len(srcDirs) == 0 {
		return st, fmt.Errorf("journal: merge: no source directories")
	}
	units := cfg.PlanUnits()
	fullHex := fmt.Sprintf("%016x", cfg.PlanHash())
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return st, fmt.Errorf("journal: merge: create %s: %w", dst, err)
	}
	mpath := filepath.Join(dst, manifestName)
	if _, err := os.Stat(mpath); err == nil {
		return st, fmt.Errorf("journal: merge: %s already holds a journal; merge into a fresh directory", dst)
	} else if !os.IsNotExist(err) {
		return st, fmt.Errorf("journal: merge: stat %s: %w", mpath, err)
	}

	// Validate every source before copying anything.
	type interval struct{ lo, hi int }
	var covered []interval
	for _, src := range srcDirs {
		data, err := os.ReadFile(filepath.Join(src, manifestName))
		if err != nil {
			return st, fmt.Errorf("journal: merge: %s: %w", src, err)
		}
		m, err := parseManifest(data)
		if err != nil {
			return st, fmt.Errorf("journal: merge: %s: %w", src, err)
		}
		if got := m.fullHashHex(); got != fullHex {
			return st, fmt.Errorf("journal: merge: %s holds a different sweep plan (its plan hash %s, this config's %s): resume and merge refuse to mix plans",
				src, got, fullHex)
		}
		if got := normTransport(m.Transport); got != normTransport(cfg.TransportKind) {
			return st, fmt.Errorf("journal: merge: %s was swept over transport %q but this merge targets %q: resume and merge refuse to mix transports",
				src, got, normTransport(cfg.TransportKind))
		}
		if m.Shard == nil {
			// A whole-plan journal merges as the full range.
			covered = append(covered, interval{0, units})
			continue
		}
		if m.Shard.Units != units {
			return st, fmt.Errorf("journal: merge: %s was cut from a %d-unit plan, this config has %d units",
				src, m.Shard.Units, units)
		}
		covered = append(covered, interval{m.Shard.Lo, m.Shard.Hi})
	}
	sort.Slice(covered, func(i, k int) bool {
		if covered[i].lo != covered[k].lo {
			return covered[i].lo < covered[k].lo
		}
		return covered[i].hi < covered[k].hi
	})
	reach := 0
	for _, iv := range covered {
		if iv.lo > reach {
			return st, fmt.Errorf("journal: merge: shard journals leave units [%d,%d) uncovered — a shard directory is missing",
				reach, iv.lo)
		}
		if iv.hi > reach {
			reach = iv.hi
		}
	}
	if reach < units {
		return st, fmt.Errorf("journal: merge: shard journals leave units [%d,%d) uncovered — a shard directory is missing",
			reach, units)
	}

	// Copy segments, renumbered into one sequence. Per-source segment order
	// is preserved (sorted by name, as replay reads them); cross-source
	// order is the srcDirs order, which does not matter — the replay rule
	// set (first-wins answered, answered-beats-failed) is order-insensitive
	// for the report because duplicate answers for one probe carry the same
	// deterministic response bytes.
	next := 0
	for _, src := range srcDirs {
		entries, err := os.ReadDir(src)
		if err != nil {
			return st, fmt.Errorf("journal: merge: scan %s: %w", src, err)
		}
		var segs []string
		for _, e := range entries {
			name := e.Name()
			if strings.HasPrefix(name, segmentPrefix) && strings.HasSuffix(name, segmentSuffix) {
				segs = append(segs, name)
			}
		}
		sort.Strings(segs)
		for _, name := range segs {
			data, err := os.ReadFile(filepath.Join(src, name))
			if err != nil {
				return st, fmt.Errorf("journal: merge: read %s: %w", filepath.Join(src, name), err)
			}
			out := filepath.Join(dst, fmt.Sprintf("%s%05d%s", segmentPrefix, next, segmentSuffix))
			if err := os.WriteFile(out, data, 0o644); err != nil {
				return st, fmt.Errorf("journal: merge: write %s: %w", out, err)
			}
			next++
			st.Segments++
			st.Bytes += int64(len(data))
		}
		st.Dirs++
	}
	if err := writeManifest(mpath, journalIdentity{
		plan: cfg.PlanHash(), full: cfg.PlanHash(), seed: cfg.Seed,
		transport: normTransport(cfg.TransportKind),
	}); err != nil {
		return st, err
	}
	return st, nil
}
