// Per-worker stall watchdog: a sweep must keep moving even when one probe
// wedges. The simulated fabric completes exchanges synchronously and cannot
// stall, but real transports can — a middlebox that eats FIN packets, a
// kernel socket stuck in a syscall — and one stuck worker would otherwise
// park 1/Nth of the sweep forever. The watchdog scans every worker's
// in-flight probe; one that has been running past a deadline multiple of the
// per-probe budget (client timeout × attempts plus backoff) gets its context
// cancelled, is filed in the failure book as "stalled", and the worker moves
// on to the next job. A probe whose transport ignores even the cancellation
// is abandoned after a short grace period (its goroutine unwinds whenever
// the transport eventually returns).
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// WatchdogConfig tunes the stall watchdog.
type WatchdogConfig struct {
	// Multiple scales the per-probe budget into the stall deadline. Zero
	// selects the default (4×).
	Multiple int
	// Deadline, when positive, overrides the computed budget×Multiple
	// deadline entirely.
	Deadline time.Duration
	// CheckEvery is the scan interval. Zero selects deadline/4, floored at
	// 10ms.
	CheckEvery time.Duration
	// Grace is how long an unstuck probe gets to unwind after its context is
	// cancelled before the worker abandons it. Zero selects 100ms.
	Grace time.Duration
	// Force enables the watchdog even over instant transports, where a stall
	// is otherwise impossible (used by tests).
	Force bool
}

func (c *WatchdogConfig) multiple() int {
	if c == nil || c.Multiple <= 0 {
		return 4
	}
	return c.Multiple
}

func (c *WatchdogConfig) grace() time.Duration {
	if c == nil || c.Grace <= 0 {
		return 100 * time.Millisecond
	}
	return c.Grace
}

// stallSlot is one worker's in-flight probe registration. armed marks a
// probe in progress; the watchdog cancels probes armed past the deadline and
// sets stalled so the worker classifies the failure correctly.
type stallSlot struct {
	mu      sync.Mutex
	cancel  context.CancelFunc
	armedAt time.Time
	stalled bool
}

// arm registers a probe about to run and returns its cancellable context.
func (s *stallSlot) arm(ctx context.Context) (context.Context, context.CancelFunc) {
	cctx, cancel := context.WithCancel(ctx)
	s.mu.Lock()
	s.cancel = cancel
	s.armedAt = time.Now()
	s.stalled = false
	s.mu.Unlock()
	return cctx, cancel
}

// disarm clears the registration and reports whether the watchdog fired on
// this probe.
func (s *stallSlot) disarm() bool {
	s.mu.Lock()
	stalled := s.stalled
	s.cancel = nil
	s.armedAt = time.Time{}
	s.mu.Unlock()
	return stalled
}

// watchdog owns one slot per sweep worker plus the scanning goroutine.
type watchdog struct {
	slots    []stallSlot
	deadline time.Duration
	interval time.Duration
	grace    time.Duration
	stalls   atomic.Int64

	mu     sync.Mutex
	active int // refcount of running sweeps sharing the scanner
	stopCh chan struct{}
}

// newWatchdog sizes a watchdog for one collector.
func newWatchdog(workers int, budget time.Duration, cfg *WatchdogConfig) *watchdog {
	if cfg == nil {
		cfg = &WatchdogConfig{}
	}
	deadline := cfg.Deadline
	if deadline <= 0 {
		deadline = budget * time.Duration(cfg.multiple())
		if deadline < time.Second {
			deadline = time.Second
		}
	}
	interval := cfg.CheckEvery
	if interval <= 0 {
		interval = deadline / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
	}
	return &watchdog{
		slots:    make([]stallSlot, workers+1), // +1: a re-queue pass slot
		deadline: deadline,
		interval: interval,
		grace:    cfg.grace(),
	}
}

// slot returns worker w's slot (nil-safe on a nil watchdog).
func (w *watchdog) slot(i int) *stallSlot {
	if w == nil || i >= len(w.slots) {
		return nil
	}
	return &w.slots[i]
}

// start launches the scanning goroutine; balanced by stop. The start/stop
// pair is refcounted because the overlapped pipeline runs sweeps
// concurrently: the scanner stays up until the last sweep stops.
func (w *watchdog) start() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.active++
	if w.stopCh != nil {
		return
	}
	stop := make(chan struct{})
	w.stopCh = stop
	go w.scanLoop(stop)
}

// stop releases one start; the scanning goroutine terminates when the last
// concurrent sweep has stopped.
func (w *watchdog) stop() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.active > 0 {
		w.active--
	}
	if w.active == 0 && w.stopCh != nil {
		close(w.stopCh)
		w.stopCh = nil
	}
}

// scanLoop periodically sweeps the slots and cancels probes armed past the
// deadline.
func (w *watchdog) scanLoop(stop chan struct{}) {
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			now := time.Now()
			for i := range w.slots {
				s := &w.slots[i]
				s.mu.Lock()
				if s.cancel != nil && !s.stalled && now.Sub(s.armedAt) > w.deadline {
					s.stalled = true
					s.cancel()
					w.stalls.Add(1)
				}
				s.mu.Unlock()
			}
		}
	}
}

// Stalls returns how many times the watchdog fired.
func (w *watchdog) Stalls() int64 {
	if w == nil {
		return 0
	}
	return w.stalls.Load()
}

// errStallAbandoned wraps a probe the worker walked away from because its
// transport ignored cancellation past the grace period.
func errStallAbandoned(what string, cause error) error {
	return fmt.Errorf("core: %s abandoned by stall watchdog: %w", what, cause)
}
