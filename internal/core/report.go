package core

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/dns"
	idspkg "repro/internal/ids"
	"repro/internal/threatintel"
)

// Table1Row is one row of Table 1: totals and malicious counts across the
// five dimensions for a record type.
type Table1Row struct {
	Label                string
	Domains              int
	MaliciousDomains     int
	Nameservers          int
	MaliciousNameservers int
	Providers            int
	MaliciousProviders   int
	URs                  int
	MaliciousURs         int
	IPs                  int
	MaliciousIPs         int
}

// Table1 computes the suspicious-record overview (per type and total) from
// the suspicious set.
func (r *Result) Table1() []Table1Row {
	rows := map[dns.Type]*table1Acc{
		dns.TypeA:   newTable1Acc("A"),
		dns.TypeTXT: newTable1Acc("TXT"),
	}
	total := newTable1Acc("Total")
	for _, u := range r.Suspicious {
		if acc, ok := rows[u.Type]; ok {
			acc.add(u)
		}
		total.add(u)
	}
	return []Table1Row{rows[dns.TypeA].row(), rows[dns.TypeTXT].row(), total.row()}
}

type table1Acc struct {
	label        string
	domains      map[dns.Name]bool
	malDomains   map[dns.Name]bool
	servers      map[netip.Addr]bool
	malServers   map[netip.Addr]bool
	providers    map[string]bool
	malProviders map[string]bool
	urs          int
	malURs       int
	ips          map[netip.Addr]bool
	malIPs       map[netip.Addr]bool
}

func newTable1Acc(label string) *table1Acc {
	return &table1Acc{
		label:   label,
		domains: map[dns.Name]bool{}, malDomains: map[dns.Name]bool{},
		servers: map[netip.Addr]bool{}, malServers: map[netip.Addr]bool{},
		providers: map[string]bool{}, malProviders: map[string]bool{},
		ips: map[netip.Addr]bool{}, malIPs: map[netip.Addr]bool{},
	}
}

func (a *table1Acc) add(u *UR) {
	a.urs++
	a.domains[u.Domain] = true
	a.servers[u.Server.Addr] = true
	a.providers[u.Server.Provider] = true
	for _, ip := range u.CorrespondingIPs {
		a.ips[ip] = true
	}
	if u.Category == CategoryMalicious {
		a.malURs++
		a.malDomains[u.Domain] = true
		a.malServers[u.Server.Addr] = true
		a.malProviders[u.Server.Provider] = true
		for _, ip := range u.CorrespondingIPs {
			if u.MaliciousByIntel || u.MaliciousByIDS {
				a.malIPs[ip] = true
			}
		}
	}
}

func (a *table1Acc) row() Table1Row {
	return Table1Row{
		Label:   a.label,
		Domains: len(a.domains), MaliciousDomains: len(a.malDomains),
		Nameservers: len(a.servers), MaliciousNameservers: len(a.malServers),
		Providers: len(a.providers), MaliciousProviders: len(a.malProviders),
		URs: a.urs, MaliciousURs: a.malURs,
		IPs: len(a.ips), MaliciousIPs: len(a.malIPs),
	}
}

// ProviderBreakdown is one bar of Figure 2: a provider's UR counts by
// category.
type ProviderBreakdown struct {
	Provider   string
	Correct    int
	Protective int
	Unknown    int
	Malicious  int
}

// Total is the provider's UR count.
func (b ProviderBreakdown) Total() int {
	return b.Correct + b.Protective + b.Unknown + b.Malicious
}

// Figure2 groups every collected UR by provider and returns the topN
// providers by total URs, largest first.
func (r *Result) Figure2(topN int) []ProviderBreakdown {
	acc := make(map[string]*ProviderBreakdown)
	for _, u := range r.URs {
		b, ok := acc[u.Server.Provider]
		if !ok {
			b = &ProviderBreakdown{Provider: u.Server.Provider}
			acc[u.Server.Provider] = b
		}
		switch u.Category {
		case CategoryCorrect:
			b.Correct++
		case CategoryProtective:
			b.Protective++
		case CategoryMalicious:
			b.Malicious++
		default:
			b.Unknown++
		}
	}
	out := make([]ProviderBreakdown, 0, len(acc))
	for _, b := range acc {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total() != out[j].Total() {
			return out[i].Total() > out[j].Total()
		}
		return out[i].Provider < out[j].Provider
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// maliciousIPEvidence gathers, per malicious IP, which evidence fired.
func (r *Result) maliciousIPEvidence() map[netip.Addr]struct{ intel, ids bool } {
	out := make(map[netip.Addr]struct{ intel, ids bool })
	for _, u := range r.Suspicious {
		if u.Category != CategoryMalicious {
			continue
		}
		for _, ip := range u.CorrespondingIPs {
			ev := out[ip]
			if r.Analyzer != nil {
				if r.Cfg().Intel != nil && r.Cfg().Intel.IsMalicious(ip) {
					ev.intel = true
				}
				if r.Analyzer.idsIPs[ip] {
					ev.ids = true
				}
			}
			if ev.intel || ev.ids {
				out[ip] = ev
			}
		}
	}
	return out
}

// cfg access for report computations.
func (r *Result) Cfg() *Config {
	if r.Analyzer == nil {
		return &Config{}
	}
	return r.Analyzer.cfg
}

// LabelReasons is Figure 3(a): why malicious IPs were labeled.
type LabelReasons struct {
	IntelOnly int
	IDSOnly   int
	Both      int
}

// Total is the malicious IP count.
func (l LabelReasons) Total() int { return l.IntelOnly + l.IDSOnly + l.Both }

// Figure3a computes the evidence breakdown over malicious IPs.
func (r *Result) Figure3a() LabelReasons {
	var out LabelReasons
	for _, ev := range r.maliciousIPEvidence() {
		switch {
		case ev.intel && ev.ids:
			out.Both++
		case ev.intel:
			out.IntelOnly++
		case ev.ids:
			out.IDSOnly++
		}
	}
	return out
}

// Figure3b buckets intel-flagged malicious IPs by how many vendors flag
// them, using the paper's bucket boundaries (1-2, 3-4, 5-6, 7-11).
func (r *Result) Figure3b() map[string]int {
	out := map[string]int{"1-2": 0, "3-4": 0, "5-6": 0, "7-11": 0}
	intel := r.Cfg().Intel
	if intel == nil {
		return out
	}
	for ip, ev := range r.maliciousIPEvidence() {
		if !ev.intel {
			continue
		}
		n := intel.Lookup(ip).VendorCount()
		switch {
		case n <= 2:
			out["1-2"]++
		case n <= 4:
			out["3-4"]++
		case n <= 6:
			out["5-6"]++
		default:
			out["7-11"]++
		}
	}
	return out
}

// Figure3c tallies ≥medium IDS alerts toward malicious IPs by classtype.
func (r *Result) Figure3c() map[idspkg.Classtype]int {
	out := make(map[idspkg.Classtype]int)
	if r.Analyzer == nil {
		return out
	}
	malicious := r.maliciousIPEvidence()
	for _, a := range r.Analyzer.Alerts() {
		if a.Rule.Severity < idspkg.SeverityMedium {
			continue
		}
		if _, ok := malicious[a.Flow.Dst]; !ok {
			continue
		}
		out[a.Rule.Classtype]++
	}
	return out
}

// Figure3d tallies vendor tags across intel-flagged malicious IPs (an IP
// may carry several tags).
func (r *Result) Figure3d() map[threatintel.Tag]int {
	out := make(map[threatintel.Tag]int)
	intel := r.Cfg().Intel
	if intel == nil {
		return out
	}
	for ip, ev := range r.maliciousIPEvidence() {
		if !ev.intel {
			continue
		}
		for _, tag := range intel.Lookup(ip).Tags {
			out[tag]++
		}
	}
	return out
}

// TXTEmailShare returns the fraction of malicious TXT URs acting as
// email-policy records (SPF/DMARC) — the 90.95% statistic of §5.2.
func (r *Result) TXTEmailShare() (emailRelated, maliciousTXT int) {
	for _, u := range r.Suspicious {
		if u.Type != dns.TypeTXT || u.Category != CategoryMalicious {
			continue
		}
		maliciousTXT++
		if u.TXTClass.EmailRelated() {
			emailRelated++
		}
	}
	return emailRelated, maliciousTXT
}

// CategoryCounts tallies all collected URs by final category.
func (r *Result) CategoryCounts() map[Category]int {
	out := make(map[Category]int)
	for _, u := range r.URs {
		out[u.Category]++
	}
	return out
}

// CoverageSummary renders the measurement-completeness line reports print
// alongside the query count: a fast sweep that silently lost probes is not a
// complete measurement.
func (r *Result) CoverageSummary() string {
	if r.Coverage == nil {
		return "coverage: not tracked"
	}
	c := r.Coverage
	return fmt.Sprintf("coverage: %d/%d probes answered (%.2f%%), %d recovered on re-queue, %d still failed, %d breaker trips",
		c.Answered, c.Attempted, 100*c.AnsweredRatio(), c.RetriedRecovered, c.Failed(), c.BreakerTrips)
}
