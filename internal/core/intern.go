// String interning for the hot identity strings of a sweep: rdata and domain
// names. At the paper's scale the same rdata is observed once per nameserver
// that serves it (§5.1 counts the same data on two servers as two URs), so a
// sweep materializes each distinct string hundreds of times. Interning
// collapses those duplicates to one canonical instance, which (a) retires the
// copies at the next GC instead of keeping them live in every UR, and (b)
// makes the determiner's memo-map lookups cheap: Go string comparison
// short-circuits on equal data pointers, so interned keys hit the fast path.
package core

import "sync"

const (
	// internShardCount shards the table so concurrent sweep workers and
	// determine workers never contend on one lock. Power of two.
	internShardCount = 16
	// internMaxLen bounds the length of strings worth interning: rdata
	// beyond this is almost certainly unique (long TXT blobs), so caching it
	// would grow the table without ever deduplicating anything.
	internMaxLen = 256
	// internShardCap bounds each shard's table. The collector only interns
	// validated rdata, but a hostile zone could still serve millions of
	// distinct short strings; past the cap, Intern degrades to identity.
	internShardCap = 1 << 16
)

type internShard struct {
	mu sync.Mutex
	m  map[string]string
}

// interner is a sharded, capped string-interning table.
type interner struct {
	shards [internShardCount]internShard
}

func newInterner() *interner {
	in := &interner{}
	for i := range in.shards {
		in.shards[i].m = make(map[string]string)
	}
	return in
}

// Interner is the exported handle over a sharded, capped interning table,
// for packages that build long-lived flat stores (urwatch's generation
// string tables) and want canonical string instances shared across builds:
// consecutive generations observe mostly the same domains and rdata, so
// interning through one shared table makes their tables reference the same
// backing bytes instead of re-materializing them every sweep.
type Interner struct {
	in *interner
}

// NewInterner builds an empty interning table.
func NewInterner() *Interner { return &Interner{in: newInterner()} }

// Intern returns the canonical instance of s (s itself once the table caps
// out). Safe for concurrent use.
func (i *Interner) Intern(s string) string { return i.in.intern(s) }

// intern returns the canonical instance of s, registering it if the table has
// room. The lookup itself never allocates: map access with a string key uses
// the key in place.
func (in *interner) intern(s string) string {
	if len(s) == 0 || len(s) > internMaxLen {
		return s
	}
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	sh := &in.shards[h&(internShardCount-1)]
	sh.mu.Lock()
	if v, ok := sh.m[s]; ok {
		sh.mu.Unlock()
		return v
	}
	if len(sh.m) < internShardCap {
		sh.m[s] = s
	}
	sh.mu.Unlock()
	return s
}
