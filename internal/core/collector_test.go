package core

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/authority"
	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/ipam"
	"repro/internal/simnet"
	"repro/internal/websim"
	"repro/internal/zone"
)

// collectorFixture wires a miniature measurement surface by hand: one
// nameserver carrying a UR zone, one protective-record server, one
// open-resolver stand-in, and the web layer.
type collectorFixture struct {
	cfg       *Config
	urNS      NameserverInfo
	protNS    NameserverInfo
	protAddr  netip.Addr
	c2Addr    netip.Addr
	legitAddr netip.Addr
}

func newCollectorFixture(t *testing.T) *collectorFixture {
	t.Helper()
	fx := &collectorFixture{}
	fabric := simnet.New(9)
	ipdb := ipam.New()
	web := websim.NewWorld(fabric)

	hostASN := ipdb.RegisterAS("HOSTER", "US", 1)
	attackASN := ipdb.RegisterAS("ATTACK", "RU", 1)
	legitASN := ipdb.RegisterAS("LEGIT-WEB", "DE", 1)

	fx.c2Addr = ipdb.MustAllocate(attackASN)
	fx.legitAddr = ipdb.MustAllocate(legitASN)
	if err := web.Install(&websim.Site{Addr: fx.legitAddr, Kind: websim.KindBusiness,
		Title: "site.com", Cert: websim.NewCert("site.com", "CA")}); err != nil {
		t.Fatal(err)
	}

	// UR nameserver: hosts attacker zone for site.com.
	urAddr := ipdb.MustAllocate(hostASN)
	urSrv := authority.NewServer()
	z := zone.New("site.com")
	z.MustAddRR("site.com 120 IN A " + fx.c2Addr.String())
	z.MustAddRR(`site.com 120 IN TXT "v=spf1 ip4:` + fx.c2Addr.String() + ` -all"`)
	if err := urSrv.AddZone(z); err != nil {
		t.Fatal(err)
	}
	if _, err := dnsio.AttachSim(fabric, urAddr, urSrv); err != nil {
		t.Fatal(err)
	}
	fx.urNS = NameserverInfo{Addr: urAddr, Host: "ns1.hoster.test", Provider: "Hoster"}

	// Protective nameserver: answers every A query with a fixed warning IP.
	fx.protAddr = ipdb.MustAllocate(hostASN)
	protNSAddr := ipdb.MustAllocate(hostASN)
	prot := dnsio.ResponderFunc(func(_ netip.Addr, q *dns.Message) *dns.Message {
		r := q.Reply()
		if q.Question().Type == dns.TypeA {
			r.Answers = append(r.Answers, dns.RR{Name: q.Question().Name,
				Class: dns.ClassINET, TTL: 60, Data: &dns.A{Addr: fx.protAddr}})
		}
		return r
	})
	if _, err := dnsio.AttachSim(fabric, protNSAddr, prot); err != nil {
		t.Fatal(err)
	}
	fx.protNS = NameserverInfo{Addr: protNSAddr, Host: "ns1.prot.test", Provider: "Protector"}

	// Open resolver stand-in: answers site.com with the legitimate address.
	resolverAddr := ipdb.MustAllocate(hostASN)
	legit := dnsio.ResponderFunc(func(_ netip.Addr, q *dns.Message) *dns.Message {
		r := q.Reply()
		r.Header.RecursionAvailable = true
		if q.Question().Name != "site.com" {
			r.Header.RCode = dns.RCodeNXDomain
			return r
		}
		switch q.Question().Type {
		case dns.TypeA:
			r.Answers = append(r.Answers, dns.RR{Name: "site.com",
				Class: dns.ClassINET, TTL: 60, Data: &dns.A{Addr: fx.legitAddr}})
		case dns.TypeTXT:
			r.Answers = append(r.Answers, dns.RR{Name: "site.com",
				Class: dns.ClassINET, TTL: 60, Data: dns.NewTXT("v=spf1 -all")})
		}
		return r
	})
	if _, err := dnsio.AttachSim(fabric, resolverAddr, legit); err != nil {
		t.Fatal(err)
	}

	collectorSrc := ipdb.MustAllocate(hostASN)
	fx.cfg = &Config{
		Fabric:        fabric,
		IPDB:          ipdb,
		Web:           web,
		SrcAddr:       collectorSrc,
		Targets:       []dns.Name{"site.com", "other.net"},
		Nameservers:   []NameserverInfo{fx.urNS, fx.protNS},
		OpenResolvers: []netip.Addr{resolverAddr},
		DelegatedNS: func(d dns.Name) []dns.Name {
			if d == "site.com" {
				return []dns.Name{"ns1.legit.test"}
			}
			return nil
		},
		Now:         time.Date(2022, 4, 15, 0, 0, 0, 0, time.UTC),
		Parallelism: 2,
	}
	return fx
}

func TestCollectURs(t *testing.T) {
	fx := newCollectorFixture(t)
	col := NewCollector(fx.cfg)
	urs, err := col.CollectURs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// UR NS: A + TXT for site.com. Protective NS: A for both targets.
	var fromUR, fromProt int
	for _, u := range urs {
		switch u.Server.Provider {
		case "Hoster":
			fromUR++
			if u.Domain != "site.com" {
				t.Errorf("unexpected UR domain %v", u.Domain)
			}
		case "Protector":
			fromProt++
		}
	}
	if fromUR != 2 {
		t.Errorf("URs from hoster = %d, want 2 (A+TXT)", fromUR)
	}
	if fromProt != 2 {
		t.Errorf("URs from protector = %d, want 2 (A for each target)", fromProt)
	}
	// Enrichment: the A UR carries AS/country/probe data.
	for _, u := range urs {
		if u.Server.Provider == "Hoster" && u.Type == dns.TypeA {
			if u.ASName != "ATTACK" || u.Country != "RU" {
				t.Errorf("enrichment: %+v", u)
			}
			if len(u.CorrespondingIPs) != 1 || u.CorrespondingIPs[0] != fx.c2Addr {
				t.Errorf("corresponding IPs: %v", u.CorrespondingIPs)
			}
		}
		if u.Server.Provider == "Hoster" && u.Type == dns.TypeTXT {
			if u.TXTClass != TXTSPF {
				t.Errorf("TXT class = %v", u.TXTClass)
			}
			if len(u.CorrespondingIPs) != 1 {
				t.Errorf("TXT embedded IPs: %v", u.CorrespondingIPs)
			}
		}
	}
	if col.Queries() == 0 {
		t.Error("query counter not incremented")
	}
}

func TestCollectURsSkipsExactDelegation(t *testing.T) {
	fx := newCollectorFixture(t)
	fx.cfg.DelegatedNS = func(d dns.Name) []dns.Name {
		if d == "site.com" {
			return []dns.Name{"ns1.hoster.test"} // now exactly delegated
		}
		return nil
	}
	col := NewCollector(fx.cfg)
	urs, err := col.CollectURs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range urs {
		if u.Server.Provider == "Hoster" && u.Domain == "site.com" {
			t.Errorf("exactly-delegated pair collected: %+v", u)
		}
	}
}

func TestCollectCorrect(t *testing.T) {
	fx := newCollectorFixture(t)
	col := NewCollector(fx.cfg)
	db, err := col.CollectCorrect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	prof, ok := db.Lookup("site.com")
	if !ok {
		t.Fatal("no profile for site.com")
	}
	if !prof.IPs[fx.legitAddr] {
		t.Errorf("legit IP missing: %v", prof.IPs)
	}
	if len(prof.CertFPs) != 1 {
		t.Errorf("cert fingerprints: %v", prof.CertFPs)
	}
	if len(prof.TXTs) != 1 {
		t.Errorf("TXTs: %v", prof.TXTs)
	}
	if len(prof.Countries) != 1 || !prof.Countries["DE"] {
		t.Errorf("countries: %v", prof.Countries)
	}
	if len(db.Domains()) != 1 {
		t.Errorf("domains: %v", db.Domains())
	}
}

func TestCollectProtective(t *testing.T) {
	fx := newCollectorFixture(t)
	col := NewCollector(fx.cfg)
	db, err := col.CollectProtective(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !db.Match(fx.protNS.Addr, dns.TypeA, fx.protAddr.String()) {
		t.Error("protective record not captured")
	}
	if db.Match(fx.urNS.Addr, dns.TypeA, fx.protAddr.String()) {
		t.Error("protective record attributed to wrong server")
	}
	if db.ProtectiveServers() != 1 {
		t.Errorf("protective servers = %d", db.ProtectiveServers())
	}
}

func TestPipelineOnFixture(t *testing.T) {
	fx := newCollectorFixture(t)
	pipe := NewPipeline(fx.cfg)
	res, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The protective NS answers are excluded; the attacker A+TXT survive as
	// suspicious (no intel/IDS configured, so they stay unknown).
	if len(res.Suspicious) != 2 {
		t.Fatalf("suspicious = %d: %+v", len(res.Suspicious), res.Suspicious)
	}
	counts := res.CategoryCounts()
	if counts[CategoryProtective] != 2 {
		t.Errorf("protective = %d", counts[CategoryProtective])
	}
	if counts[CategoryUnknown] != 2 {
		t.Errorf("unknown = %d", counts[CategoryUnknown])
	}
}

func TestPipelineFalseNegativeCheckOnFixture(t *testing.T) {
	fx := newCollectorFixture(t)
	pipe := NewPipeline(fx.cfg)
	if pipe.Collector() == nil {
		t.Fatal("nil collector accessor")
	}
	res, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	total, fn, err := pipe.FalseNegativeCheck(context.Background(), res)
	if err != nil {
		t.Fatal(err)
	}
	// The stand-in resolver answers site.com A+TXT; both are delegated
	// records and must be excluded.
	if total != 2 {
		t.Errorf("evaluated = %d, want 2", total)
	}
	if fn != 0 {
		t.Errorf("false negatives = %d", fn)
	}
	// With no resolvers the check degrades to a no-op.
	fx.cfg.OpenResolvers = nil
	total, fn, err = NewPipeline(fx.cfg).FalseNegativeCheck(context.Background(), res)
	if err != nil || total != 0 || fn != 0 {
		t.Errorf("no-resolver check: %d %d %v", total, fn, err)
	}
}

func TestLabelReasonsTotal(t *testing.T) {
	l := LabelReasons{IntelOnly: 2, IDSOnly: 3, Both: 4}
	if l.Total() != 9 {
		t.Errorf("Total = %d", l.Total())
	}
	var b ProviderBreakdown
	if b.Total() != 0 {
		t.Errorf("empty breakdown total = %d", b.Total())
	}
}

// TestCollectURsDeterministicAcrossParallelism asserts the §4.1 sweep output
// is byte-identical no matter how many workers ran it: the merged set is put
// into canonical order before enrichment, so worker scheduling cannot leak
// into results.
func TestCollectURsDeterministicAcrossParallelism(t *testing.T) {
	render := func(urs []*UR) string {
		var sb strings.Builder
		for _, u := range urs {
			fmt.Fprintf(&sb, "%s|%s|%s|%d|%s|%s|%s|%d|%v\n",
				u.Server.Addr, u.Domain, u.Type, u.TTL, u.RData,
				u.ASName, u.Country, u.ASN, u.CorrespondingIPs)
		}
		return sb.String()
	}
	var want string
	for i, p := range []int{1, 4, 16} {
		fx := newCollectorFixture(t)
		fx.cfg.Parallelism = p
		urs, err := NewCollector(fx.cfg).CollectURs(context.Background())
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		got := render(urs)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("parallelism %d output differs:\n--- parallelism 1 ---\n%s--- parallelism %d ---\n%s", p, want, p, got)
		}
	}
}

// TestProbeSingleflight hammers one IP from many goroutines and asserts the
// underlying web probe ran exactly once — concurrent sweep workers coalesce
// instead of duplicating fetches.
func TestProbeSingleflight(t *testing.T) {
	fx := newCollectorFixture(t)
	col := NewCollector(fx.cfg)
	var calls atomic.Int32
	inner := col.probeFn
	col.probeFn = func(src, dst netip.Addr) websim.ProbeResult {
		calls.Add(1)
		time.Sleep(time.Millisecond) // widen the duplicate-probe window
		return inner(src, dst)
	}
	const goroutines = 32
	var wg sync.WaitGroup
	results := make([]websim.ProbeResult, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = col.probe(fx.legitAddr)
		}(g)
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("web probe ran %d times for one IP, want 1", n)
	}
	for g := 1; g < goroutines; g++ {
		if results[g].StatusCode != results[0].StatusCode {
			t.Errorf("goroutine %d saw a different probe result", g)
		}
	}
	// A second, distinct IP triggers exactly one more probe.
	col.probe(fx.c2Addr)
	if n := calls.Load(); n != 2 {
		t.Errorf("probes after second IP = %d, want 2", n)
	}
}

// TestPipelineStressHighParallelismWithLoss runs the full pipeline with far
// more workers than nameservers and loss injection enabled; under -race this
// exercises every concurrent path of the collector (sharded accounting,
// singleflight probes, per-worker merges, parallel protective sweep).
func TestPipelineStressHighParallelismWithLoss(t *testing.T) {
	fx := newCollectorFixture(t)
	fx.cfg.Parallelism = 32
	fx.cfg.Fabric.SetLossRate(0.10)
	fx.cfg.Fabric.SetTrackPacing(true)
	for round := 0; round < 3; round++ {
		res, err := NewPipeline(fx.cfg).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Queries == 0 {
			t.Fatal("no queries booked")
		}
		for _, u := range res.URs {
			if u.Category == CategoryUnknown && u.Reason != ReasonNone {
				t.Errorf("inconsistent UR %+v", u)
			}
		}
	}
	if fx.cfg.Fabric.Drops() == 0 {
		t.Error("loss injection never fired")
	}
}

// TestCanaryNameDeterministic pins the satellite fix: the protective-record
// canary is a pure function of the config seed, not of wall-clock time.
func TestCanaryNameDeterministic(t *testing.T) {
	a := (&Config{Seed: 42}).CanaryName()
	b := (&Config{Seed: 42}).CanaryName()
	if a != b {
		t.Errorf("same seed produced different canaries: %s vs %s", a, b)
	}
	if c := (&Config{Seed: 43}).CanaryName(); c == a {
		t.Errorf("different seeds produced the same canary %s", c)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("canary %s invalid: %v", a, err)
	}
}
