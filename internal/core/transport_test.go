// Transport byte-identity: the ISSUE's acceptance criterion that a sweep's
// report is a pure function of (world seed, fault surface) — never of the
// wire transport carrying it. DoT and DoH route through the same fabric
// endpoints as UDP, so chaos draws are identical and the modeled crypto
// costs land exclusively on the virtual clock.
package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// transportSweepKinds are the sweep dimensions (plain TCP is a fallback
// mechanism, not a sweep transport; see transport.SweepKinds).
var transportSweepKinds = []string{"udp", "dot", "doh"}

// TestTransportSweepByteIdentical pins the tentpole invariant across the
// full grid: every transport x parallelism x fault surface yields a report
// byte-identical to the plain-UDP baseline, coverage books included.
func TestTransportSweepByteIdentical(t *testing.T) {
	grids := []struct {
		name   string
		faults func(fx *chaosFixture)
	}{
		{"zero-fault", nil},
		{"deterministic-faults", applyDeterministicFaults},
		{"kitchen-sink", applyKitchenSink},
	}
	for _, g := range grids {
		t.Run(g.name, func(t *testing.T) {
			var want string
			for _, kind := range transportSweepKinds {
				for _, par := range []int{1, 4, 16} {
					fx := newChaosFixture(t, 11)
					if g.faults != nil {
						g.faults(fx)
					}
					fx.cfg.TransportKind = kind
					fx.cfg.Parallelism = par
					res, err := NewPipeline(fx.cfg).Run(context.Background())
					if err != nil {
						t.Fatalf("%s/p%d: %v", kind, par, err)
					}
					checkCoverageConsistent(t, res.Coverage)
					checkNoFalseRecords(t, fx, res)
					got := renderReport(res)
					if want == "" {
						want = got
						continue
					}
					if got != want {
						t.Errorf("%s at parallelism %d diverged from the udp baseline", kind, par)
					}
				}
			}
		})
	}
}

// TestTransportKillAndResume interrupts a journaled sweep mid-run on each
// transport, resumes it from the same directory, and asserts byte-identity
// with that transport's uninterrupted run — and with the udp baseline.
func TestTransportKillAndResume(t *testing.T) {
	fx := newChaosFixture(t, 11)
	applyDeterministicFaults(fx)
	baseline, err := NewPipeline(fx.cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := renderRecords(baseline)

	for _, kind := range transportSweepKinds {
		t.Run(kind, func(t *testing.T) {
			dir := t.TempDir()
			run := func(hook func(*Journal, context.CancelFunc)) (*Result, *Journal, error) {
				fx := newChaosFixture(t, 11)
				applyDeterministicFaults(fx)
				fx.cfg.TransportKind = kind
				j, err := OpenJournal(dir, fx.cfg, JournalOptions{CheckpointEvery: 8})
				if err != nil {
					t.Fatal(err)
				}
				cctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				if hook != nil {
					hook(j, cancel)
				}
				fx.cfg.Journal = j
				res, err := NewPipeline(fx.cfg).Run(cctx)
				if cerr := j.Close(); cerr != nil {
					t.Fatal(cerr)
				}
				return res, j, err
			}

			_, _, err := run(func(j *Journal, cancel context.CancelFunc) {
				j.AppendHook = func(total int64) {
					if total == 60 {
						cancel()
					}
				}
			})
			if err == nil {
				t.Fatal("interrupted run reported no error")
			}
			res, j2, err := run(nil)
			if err != nil {
				t.Fatalf("resume failed: %v", err)
			}
			if !j2.Resumed() || j2.ReplayedAnswered()+j2.ReplayedFailures() == 0 {
				t.Fatal("resume replayed nothing")
			}
			if got := renderRecords(res); got != want {
				t.Errorf("%s kill-and-resume diverged from the udp baseline:\n--- resumed ---\n%s--- baseline ---\n%s",
					kind, got, want)
			}
			if res.Coverage.Attempted != chaosPlanSize {
				t.Errorf("resumed coverage attempted %d, want %d", res.Coverage.Attempted, chaosPlanSize)
			}
		})
	}
}

// TestJournalRefusesCrossTransport pins the taxonomy: a journal checkpointed
// on one transport refuses to resume under another, naming both.
func TestJournalRefusesCrossTransport(t *testing.T) {
	dir := t.TempDir()
	fx := newChaosFixture(t, 11)
	fx.cfg.TransportKind = "doh"
	j, err := OpenJournal(dir, fx.cfg, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	fx2 := newChaosFixture(t, 11)
	fx2.cfg.TransportKind = "udp"
	_, err = OpenJournal(dir, fx2.cfg, JournalOptions{})
	if err == nil {
		t.Fatal("udp resume of a doh journal succeeded")
	}
	for _, frag := range []string{"refuse to mix transports", `"doh"`, `"udp"`, "-transport doh"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("refusal error missing %q: %v", frag, err)
		}
	}

	// Same transport reopens fine.
	fx3 := newChaosFixture(t, 11)
	fx3.cfg.TransportKind = "doh"
	j3, err := OpenJournal(dir, fx3.cfg, JournalOptions{})
	if err != nil {
		t.Fatalf("same-transport reopen refused: %v", err)
	}
	j3.Close()
}

// TestJournalPreTransportManifestResumesAsUDP pins backward compatibility:
// a manifest written before the transport dimension existed (no transport
// field — exactly what an udp journal still writes) resumes under udp and
// refuses under an encrypted transport.
func TestJournalPreTransportManifestResumesAsUDP(t *testing.T) {
	dir := t.TempDir()
	fx := newChaosFixture(t, 11)
	j, err := OpenJournal(dir, fx.cfg, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// The udp manifest must not even mention the field, so journals from
	// before the transport dimension stay byte-compatible.
	man, err := readManifestBytes(dir)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(man), "transport") {
		t.Errorf("udp manifest mentions transport: %s", man)
	}

	fx2 := newChaosFixture(t, 11)
	fx2.cfg.TransportKind = "udp"
	j2, err := OpenJournal(dir, fx2.cfg, JournalOptions{})
	if err != nil {
		t.Fatalf("udp resume of a pre-transport journal refused: %v", err)
	}
	j2.Close()

	fx3 := newChaosFixture(t, 11)
	fx3.cfg.TransportKind = "dot"
	if _, err := OpenJournal(dir, fx3.cfg, JournalOptions{}); err == nil {
		t.Fatal("dot resume of an udp journal succeeded")
	} else if !strings.Contains(err.Error(), "refuse to mix transports") {
		t.Errorf("unexpected refusal text: %v", err)
	}
}

// TestMergeRefusesCrossTransport pins the fleet side of the taxonomy: shard
// journals swept over one transport refuse to merge into a run targeting
// another.
func TestMergeRefusesCrossTransport(t *testing.T) {
	fx := newChaosFixture(t, 11)
	fx.cfg.TransportKind = "dot"
	full := fx.cfg.PlanHash()
	units := fx.cfg.PlanUnits()

	shardDir := t.TempDir()
	shardFx := newChaosFixture(t, 11)
	shardFx.cfg.TransportKind = "dot"
	sd := ShardDesc{Index: 0, Lo: 0, Hi: units, Units: units}
	sj, err := OpenShardJournal(shardDir, shardFx.cfg, full, sd, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shardFx.cfg.Journal = sj
	if _, err := NewPipeline(shardFx.cfg).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sj.Close(); err != nil {
		t.Fatal(err)
	}

	mergeFx := newChaosFixture(t, 11)
	mergeFx.cfg.TransportKind = "udp"
	_, err = MergeShardJournals(t.TempDir(), mergeFx.cfg, []string{shardDir})
	if err == nil {
		t.Fatal("merge across transports succeeded")
	}
	for _, frag := range []string{"refuse to mix transports", `"dot"`, `"udp"`} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("merge refusal missing %q: %v", frag, err)
		}
	}

	// The matching transport merges clean.
	okFx := newChaosFixture(t, 11)
	okFx.cfg.TransportKind = "dot"
	if _, err := MergeShardJournals(t.TempDir(), okFx.cfg, []string{shardDir}); err != nil {
		t.Fatalf("same-transport merge failed: %v", err)
	}
}

// TestTransportVirtualCostOnly asserts the modeled crypto costs land on the
// virtual clock and nowhere else: the encrypted sweeps advance virtual RTT
// beyond the plain sweep's, issue the same number of fabric exchanges, and
// (per the tests above) change no verdict.
func TestTransportVirtualCostOnly(t *testing.T) {
	type book struct {
		exchanges int64
		virtual   int64
	}
	books := map[string]book{}
	for _, kind := range transportSweepKinds {
		fx := newChaosFixture(t, 11)
		fx.cfg.TransportKind = kind
		if _, err := NewPipeline(fx.cfg).Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		books[kind] = book{fx.fabric.Exchanges(), int64(fx.fabric.VirtualRTT())}
	}
	for _, kind := range []string{"dot", "doh"} {
		if books[kind].exchanges != books["udp"].exchanges {
			t.Errorf("%s issued %d exchanges, udp %d — routing must be identical",
				kind, books[kind].exchanges, books["udp"].exchanges)
		}
		if books[kind].virtual <= books["udp"].virtual {
			t.Errorf("%s booked no crypto cost: virtual %d vs udp %d",
				kind, books[kind].virtual, books["udp"].virtual)
		}
	}
	// DoH's per-message overhead divisor is twice DoT's, so its sweep must
	// cost strictly more virtual time.
	if books["doh"].virtual <= books["dot"].virtual {
		t.Errorf("doh virtual cost %d not above dot's %d", books["doh"].virtual, books["dot"].virtual)
	}
}

// readManifestBytes loads dir's manifest for content assertions.
func readManifestBytes(dir string) ([]byte, error) {
	return os.ReadFile(filepath.Join(dir, "manifest.json"))
}
