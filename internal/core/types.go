// Package core implements URHunter, the paper's measurement framework
// (§4): response collection against provider nameservers and open resolvers,
// suspicious-record determination with the Appendix B exclusion conditions,
// and malicious-behaviour analysis over threat intelligence and IDS-inspected
// sandbox traffic. The pipeline classifies every observed undelegated record
// as malicious, correct, protective, or unknown.
package core

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"repro/internal/dns"
	"repro/internal/ipam"
	"repro/internal/websim"
)

// Category is URHunter's final record classification (§4.3).
type Category int

// Classification outcomes.
const (
	// CategoryUnknown: a suspicious record with no malicious evidence (yet).
	CategoryUnknown Category = iota
	// CategoryCorrect: explained by legitimate resolution, past delegation,
	// or parked/redirect pages (§4.2).
	CategoryCorrect
	// CategoryProtective: a provider's warning record for unhosted domains.
	CategoryProtective
	// CategoryMalicious: tied to a malicious IP via threat intel or IDS.
	CategoryMalicious
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CategoryUnknown:
		return "unknown"
	case CategoryCorrect:
		return "correct"
	case CategoryProtective:
		return "protective"
	case CategoryMalicious:
		return "malicious"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// CorrectReason explains which exclusion condition fired (Appendix B).
type CorrectReason string

// Exclusion reasons.
const (
	ReasonIPSubset   CorrectReason = "IP subset of legitimate records"
	ReasonASSubset   CorrectReason = "AS subset of legitimate records"
	ReasonGeoSubset  CorrectReason = "geolocation subset of legitimate records"
	ReasonCertSubset CorrectReason = "certificate subset of legitimate records"
	ReasonPDNS       CorrectReason = "present in passive-DNS history"
	ReasonParked     CorrectReason = "points to a parked page"
	ReasonRedirect   CorrectReason = "points to a redirect page"
	ReasonTXTMatch   CorrectReason = "TXT matches legitimate record"
	ReasonProtective CorrectReason = "matches provider protective record"
	ReasonNone       CorrectReason = ""
)

// NameserverInfo identifies one measured nameserver.
type NameserverInfo struct {
	Addr     netip.Addr
	Host     dns.Name
	Provider string
}

// TXTCategory is the classification of undelegated TXT rdata per the known
// categories of Van Der Toorn et al. ("TXTing 101"), which §4.2 applies.
type TXTCategory string

// TXT categories.
const (
	TXTSPF          TXTCategory = "spf"
	TXTDMARC        TXTCategory = "dmarc"
	TXTDKIM         TXTCategory = "dkim"
	TXTVerification TXTCategory = "domain-verification"
	TXTOther        TXTCategory = "other"
)

// EmailRelated reports whether the category is an email-policy record (the
// §5.2 statistic: 90.95% of malicious TXT URs are SPF/DMARC).
func (t TXTCategory) EmailRelated() bool {
	return t == TXTSPF || t == TXTDMARC
}

// UR is one observed undelegated record with its enrichment. Identity
// follows §5.1: a unique UR is (nameserver IP, domain, type, rdata) — the
// same data on two servers is two attacker options.
type UR struct {
	Server NameserverInfo
	Domain dns.Name
	Type   dns.Type
	RData  string
	TTL    uint32

	// CorrespondingIPs per §4.3: the A record's address, or the IPs embedded
	// in (or associated with) a TXT record.
	CorrespondingIPs []netip.Addr

	// Enrichment for A records.
	ASN     ipam.ASN
	ASName  string
	Country string
	Cert    *websim.Cert
	HTTP    websim.ProbeResult

	// TXTClass is set for TXT records.
	TXTClass TXTCategory

	// Classification output.
	Category Category
	Reason   CorrectReason
	// MaliciousByIntel / MaliciousByIDS record which evidence fired
	// (Figure 3(a)).
	MaliciousByIntel bool
	MaliciousByIDS   bool
}

// Key returns the §5.1 uniqueness tuple.
func (u *UR) Key() string {
	return fmt.Sprintf("%s|%s|%d|%s", u.Server.Addr, u.Domain, uint16(u.Type), u.RData)
}

// DomainProfile aggregates a domain's legitimate footprint, built from open
// resolvers — the database() of Appendix B. Collection workers funnel
// observations for the same domain through mu; after collection the profile
// is read-only.
type DomainProfile struct {
	Domain    dns.Name
	IPs       map[netip.Addr]bool
	ASNs      map[ipam.ASN]bool
	Countries map[string]bool
	CertFPs   map[string]bool
	TXTs      map[string]bool
	// Other holds legitimate records of further swept types (MX and
	// friends), keyed "TYPE|rdata" — the future-work extension of §6.
	Other map[string]bool

	mu sync.Mutex
}

// otherKey builds the Other-set key for a record type and rdata.
func otherKey(t dns.Type, rdata string) string {
	return t.String() + "|" + rdata
}

// AddA records a legitimate A observation with its enrichment.
func (p *DomainProfile) AddA(addr netip.Addr, asn ipam.ASN, country, certFP string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.IPs[addr] = true
	if asn != 0 {
		p.ASNs[asn] = true
	}
	if country != "" {
		p.Countries[country] = true
	}
	if certFP != "" {
		p.CertFPs[certFP] = true
	}
}

// AddTXT records a legitimate TXT observation (presentation form).
func (p *DomainProfile) AddTXT(rdata string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.TXTs[rdata] = true
}

// AddOther records a legitimate observation of any further swept type.
func (p *DomainProfile) AddOther(t dns.Type, rdata string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.Other[otherKey(t, rdata)] = true
}

// HasOther reports whether (type, rdata) was legitimately observed.
func (p *DomainProfile) HasOther(t dns.Type, rdata string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.Other[otherKey(t, rdata)]
}

// NewDomainProfile creates an empty profile.
func NewDomainProfile(d dns.Name) *DomainProfile {
	return &DomainProfile{
		Domain:    d,
		IPs:       make(map[netip.Addr]bool),
		ASNs:      make(map[ipam.ASN]bool),
		Countries: make(map[string]bool),
		CertFPs:   make(map[string]bool),
		TXTs:      make(map[string]bool),
		Other:     make(map[string]bool),
	}
}

// CorrectDB is the collected legitimate-record database.
type CorrectDB struct {
	mu       sync.RWMutex
	profiles map[dns.Name]*DomainProfile
}

// NewCorrectDB creates an empty database.
func NewCorrectDB() *CorrectDB {
	return &CorrectDB{profiles: make(map[dns.Name]*DomainProfile)}
}

// Profile returns (creating if needed) the profile for a domain.
func (db *CorrectDB) Profile(d dns.Name) *DomainProfile {
	db.mu.Lock()
	defer db.mu.Unlock()
	p, ok := db.profiles[d]
	if !ok {
		p = NewDomainProfile(d)
		db.profiles[d] = p
	}
	return p
}

// Lookup returns the profile for a domain if one exists.
func (db *CorrectDB) Lookup(d dns.Name) (*DomainProfile, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, ok := db.profiles[d]
	return p, ok
}

// Domains returns all profiled domains, sorted.
func (db *CorrectDB) Domains() []dns.Name {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]dns.Name, 0, len(db.profiles))
	for d := range db.profiles {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// protectiveKey is the (server, type, rdata) identity of one protective
// record. A comparable struct rather than a formatted string: Match runs
// once per collected UR, and the fmt.Sprintf key it replaced was one of the
// pipeline's top allocation sites.
type protectiveKey struct {
	server netip.Addr
	t      dns.Type
	rdata  string
}

// ProtectiveDB holds the protective records observed per nameserver, keyed
// by (server, type, rdata).
type ProtectiveDB struct {
	mu      sync.RWMutex
	records map[protectiveKey]bool
	perNS   map[netip.Addr]int
}

// NewProtectiveDB creates an empty database.
func NewProtectiveDB() *ProtectiveDB {
	return &ProtectiveDB{records: make(map[protectiveKey]bool), perNS: make(map[netip.Addr]int)}
}

// Add records a protective (server, type, rdata) observation.
func (db *ProtectiveDB) Add(server netip.Addr, t dns.Type, rdata string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	k := protectiveKey{server: server, t: t, rdata: rdata}
	if !db.records[k] {
		db.records[k] = true
		db.perNS[server]++
	}
}

// Match reports whether the tuple is a known protective record.
func (db *ProtectiveDB) Match(server netip.Addr, t dns.Type, rdata string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.records[protectiveKey{server: server, t: t, rdata: rdata}]
}

// ProtectiveServers returns how many nameservers serve protective records.
func (db *ProtectiveDB) ProtectiveServers() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.perNS)
}
