package core

import (
	"context"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dns"
)

// TestCollectorUnderPacketLoss injects datagram loss into the fabric and
// verifies the sweep still completes; with the client's retry budget, a
// moderate loss rate should not cost coverage.
func TestCollectorUnderPacketLoss(t *testing.T) {
	fx := newCollectorFixture(t)

	baseline, err := NewCollector(fx.cfg).CollectURs(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	fx.cfg.Fabric.SetLossRate(0.15)
	lossy, err := NewCollector(fx.cfg).CollectURs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(lossy) < len(baseline)-1 {
		t.Errorf("lossy sweep collected %d URs, baseline %d", len(lossy), len(baseline))
	}
	if fx.cfg.Fabric.Drops() == 0 {
		t.Error("loss injection did not drop anything")
	}
}

// TestPipelineUnderHeavyLossStillClassifies pushes loss high enough that
// some records vanish, and checks the pipeline degrades without error.
func TestPipelineUnderHeavyLossStillClassifies(t *testing.T) {
	fx := newCollectorFixture(t)
	fx.cfg.Fabric.SetLossRate(0.5)
	res, err := NewPipeline(fx.cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Whatever was collected must be fully classified.
	for _, u := range res.URs {
		if u.Category == CategoryUnknown {
			// unknown is a valid terminal class; just ensure the field set
			// is consistent.
			if u.Reason != ReasonNone {
				t.Errorf("unknown UR with reason %q", u.Reason)
			}
		}
	}
}

// TestDeterminerIdempotent: classifying the same UR twice yields the same
// category and reason.
func TestDeterminerIdempotent(t *testing.T) {
	cfg, correct, prot := detConfig()
	d := NewDeterminer(cfg, correct, prot)
	f := func(ipByte byte, useKnownIP bool) bool {
		rdata := "93.0.0.10"
		if !useKnownIP {
			rdata = "66.6.6." + string(rune('0'+ipByte%10))
		}
		u := aUR("100.1.0.54", rdata)
		d.classify(u)
		cat1, reason1 := u.Category, u.Reason
		u.Category, u.Reason = CategoryUnknown, ReasonNone
		d.classify(u)
		return u.Category == cat1 && u.Reason == reason1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDetermineOrderIndependence: the classification of one UR does not
// depend on the other URs in the batch.
func TestDetermineOrderIndependence(t *testing.T) {
	cfg, correct, prot := detConfig()
	mk := func() []*UR {
		return []*UR{
			aUR("100.1.0.53", "100.1.0.200"), // protective
			aUR("100.1.0.54", "93.0.0.10"),   // correct (IP subset)
			aUR("100.1.0.54", "66.6.6.6"),    // suspicious
		}
	}
	d := NewDeterminer(cfg, correct, prot)
	fwd := mk()
	d.Determine(fwd)
	rev := mk()
	revInput := []*UR{rev[2], rev[1], rev[0]}
	d.Determine(revInput)
	for i := range fwd {
		if fwd[i].Category != rev[i].Category {
			t.Errorf("UR %d: %v vs %v", i, fwd[i].Category, rev[i].Category)
		}
	}
}

// TestMXExtensionSweep drives the future-work record type through the
// fixture: with no MX anywhere, the sweep must complete empty (the rich MX
// path is covered by the scenario-level E16 test).
func TestMXExtensionSweep(t *testing.T) {
	fx := newCollectorFixture(t)
	fx.cfg.QueryTypes = []dns.Type{dns.TypeMX}
	res, err := NewPipeline(fx.cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// No MX anywhere in the fixture: the sweep completes empty.
	if len(res.URs) != 0 {
		t.Errorf("unexpected MX URs: %v", res.URs)
	}
}

// TestConfigDefaults exercises the Config fallbacks.
func TestConfigDefaults(t *testing.T) {
	c := &Config{}
	if got := c.parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default parallelism = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	c.Parallelism = 3
	if got := c.parallelism(); got != 3 {
		t.Errorf("parallelism = %d", got)
	}
	qt := c.queryTypes()
	if len(qt) != 2 || qt[0] != dns.TypeA || qt[1] != dns.TypeTXT {
		t.Errorf("default query types = %v", qt)
	}
}

// TestResultEmptyWorld: the report methods must not panic on an empty
// result.
func TestResultEmptyWorld(t *testing.T) {
	res := &Result{}
	if rows := res.Table1(); rows[2].URs != 0 {
		t.Error("non-zero table1 on empty result")
	}
	if got := res.Figure2(5); len(got) != 0 {
		t.Errorf("figure2 = %v", got)
	}
	if res.Figure3a().Total() != 0 {
		t.Error("figure3a non-zero")
	}
	_ = res.Figure3b()
	_ = res.Figure3c()
	_ = res.Figure3d()
	if e, m := res.TXTEmailShare(); e != 0 || m != 0 {
		t.Error("TXT share non-zero")
	}
}

// TestEthicsAccounting validates the §A model: shuffled per-server query
// order and the polite-scan wall-clock estimate.
func TestEthicsAccounting(t *testing.T) {
	fx := newCollectorFixture(t)
	col := NewCollector(fx.cfg)
	// Distinct servers get distinct (but deterministic) target orders.
	o1 := col.shuffledTargets(fx.urNS.Addr)
	o2 := col.shuffledTargets(fx.protNS.Addr)
	if len(o1) != len(fx.cfg.Targets) {
		t.Fatalf("order length %d", len(o1))
	}
	again := col.shuffledTargets(fx.urNS.Addr)
	for i := range o1 {
		if o1[i] != again[i] {
			t.Fatal("shuffle not deterministic per server")
		}
	}
	// The two orders should differ for any non-trivial list; with 2 targets
	// they may coincide, so only check the multiset is preserved.
	seen := map[dns.Name]bool{}
	for _, d := range o2 {
		seen[d] = true
	}
	if len(seen) != len(fx.cfg.Targets) {
		t.Error("shuffle lost targets")
	}

	if _, err := col.CollectURs(context.Background()); err != nil {
		t.Fatal(err)
	}
	est := col.PoliteScanEstimate()
	// Each NS answered 2 targets x 2 types = up to 4 queries; at the default
	// 130s interval the polite estimate must be a positive multiple of it.
	if est <= 0 || est > 10*time.Minute {
		t.Errorf("polite estimate = %v", est)
	}
	if est%fx.cfg.politeInterval() != 0 {
		t.Errorf("estimate %v not a multiple of the interval", est)
	}
	// A custom interval is honoured.
	fx.cfg.PoliteInterval = time.Second
	col2 := NewCollector(fx.cfg)
	if _, err := col2.CollectURs(context.Background()); err != nil {
		t.Fatal(err)
	}
	if col2.PoliteScanEstimate() >= est {
		t.Error("shorter interval did not shrink the estimate")
	}
}
