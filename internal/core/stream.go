// Streaming stage plumbing for the overlapped pipeline: the fused
// nameserver-facing sweep that emits per-server UR batches as they finalize,
// and the error selection that keeps a root cause visible when one stage's
// failure cancels its siblings.
//
// Determinism note. Chaos fault draws are pure hashes of (fabric seed,
// endpoint, per-endpoint exchange sequence), so a run is reproducible exactly
// when the order of exchanges to each endpoint is a pure function of the
// configuration. The fused sweep preserves that by construction: one worker
// owns a nameserver for its whole job — canary probes first, then the
// shuffled targets, then the in-job canary retry — so the endpoint's exchange
// sequence never depends on scheduling. The correct-record sweep runs
// concurrently but touches only resolver endpoints, which are disjoint from
// the nameserver set; its re-queue pass uses its own watchdog spare slot so
// the two tails can overlap too.
package core

import (
	"context"
	"errors"
	"net/netip"
	"sync"
	"sync/atomic"

	"repro/internal/dns"
	"repro/internal/dnsio"
)

// streamBacklog bounds the UR batch channel between the fused sweep and the
// determine workers. Batches buffer here while the correct sweep (the
// determine gate) is still running; a full buffer back-pressures the sweep,
// which only delays emission and never reorders any endpoint's exchanges.
const streamBacklog = 64

// pickErr returns the most diagnostic of the stage errors: the first one
// that is not itself a cancellation (a journal write failure, say, whose
// cancel then swept through the sibling stages), else the first non-nil.
func pickErr(errs ...error) error {
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if fallback == nil {
			fallback = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	return fallback
}

// collectNameservers is the overlapped pipeline's fused nameserver sweep:
// protective-canary collection and UR collection in one pass. Each
// nameserver is one job — canary probes, then every non-delegated target,
// then one in-job retry of the job's own failed canary probes — so a
// server's protective records are final before its URs are emitted, and the
// determine stage can classify a batch as soon as the correct database is
// ready, without waiting for the rest of the sweep.
//
// Probes are booked and journaled under their original sweep kinds
// (sweepProtective / sweepURs), so coverage accounting, the failure book,
// and journal resume are indistinguishable from the serial sweeps'.
func (c *Collector) collectNameservers(ctx context.Context, db *ProtectiveDB, emit func([]*UR)) error {
	canary := c.cfg.CanaryName()
	c.replaySweep(sweepProtective, func(ns NameserverInfo, _ dns.Name, qt dns.Type, resp *dns.Message) {
		addProtectiveAnswers(db, ns.Addr, qt, resp)
	})
	var replayed []*UR
	c.replaySweep(sweepURs, func(ns NameserverInfo, domain dns.Name, qt dns.Type, resp *dns.Message) {
		replayed = c.ursFromResponse(ns, domain, qt, resp, replayed)
	})
	emit(replayed)

	c.wd.start()
	defer c.wd.stop()

	jobs := make(chan NameserverInfo)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var stop atomic.Bool

	workers := c.cfg.parallelism()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// The fused pool gets the watchdog slot range [workers, 2*workers),
		// leaving [0, workers) to the concurrently running correct sweep.
		go func(slot *stallSlot) {
			defer wg.Done()
			seg, localErr := c.newSegment()
			if seg != nil {
				defer c.releaseSegment(seg)
			}
			if localErr != nil {
				stop.Store(true)
			}
			for ns := range jobs {
				if localErr != nil {
					continue // keep draining so the feeder never blocks
				}
				if skip := c.cfg.SkipServer; skip != nil && skip(ns.Addr) {
					continue
				}
				urs, err := c.collectNSFused(ctx, ns, canary, db, seg, slot)
				if err != nil {
					localErr = err
					stop.Store(true)
					continue
				}
				if done := c.cfg.ServerDone; done != nil {
					done(ns.Addr)
				}
				emit(urs)
			}
			if localErr != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = localErr
				}
				mu.Unlock()
			}
		}(c.wd.slot(workers + w))
	}
	feed(ctx, jobs, &stop, c.cfg.Nameservers)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return firstErr
	}
	// End-of-sweep re-queue of the failed UR probes (canary probes had their
	// in-job retry). Every NS job is done, so these retries are the only
	// remaining traffic to the nameserver endpoints and their per-endpoint
	// order — canonical, single goroutine — is deterministic.
	var recovered []*UR
	err := c.requeueOn(ctx, sweepURs, c.wd.slot(2*workers+1), func(f probeFailure, resp *dns.Message) {
		recovered = c.ursFromResponse(f.ns, f.domain, f.qtype, resp, recovered)
	})
	if err != nil {
		return err
	}
	emit(recovered)
	return nil
}

// collectNSFused runs one nameserver's fused job. The exchange order to this
// endpoint — canary, targets, canary retry — is a pure function of the
// configuration, which is what keeps chaos runs reproducible (see the
// package comment above).
func (c *Collector) collectNSFused(ctx context.Context, ns NameserverInfo, canary dns.Name, db *ProtectiveDB, seg *segmentWriter, slot *stallSlot) ([]*UR, error) {
	server := netip.AddrPortFrom(ns.Addr, dnsio.DNSPort)
	var issued, attempted, answered, recovered int64
	var fails []probeFailure       // UR failures, for the end-of-sweep re-queue
	var canaryFails []probeFailure // protective failures, retried in-job
	defer func() {
		c.addQueries(ns.Addr, issued)
		c.bookSweep(ns.Addr, attempted, answered, recovered, append(fails, canaryFails...))
	}()

	// Phase 1: protective canary probes — the endpoint's first exchanges,
	// exactly as the serial CollectProtective sweep issues them.
	for _, qt := range c.cfg.queryTypes() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if c.replayed(sweepProtective, ns.Addr, canary, qt) {
			continue
		}
		issued++
		attempted++
		resp, wire, class, err := c.probeQuery(ctx, slot, seg, server, canary, qt)
		if err != nil {
			canaryFails = append(canaryFails, probeFailure{
				ns: ns, domain: canary, qtype: qt,
				class: class, sweep: sweepProtective,
			})
			if seg != nil {
				if jerr := seg.failure(sweepProtective, ns.Addr, canary, qt, class); jerr != nil {
					return nil, jerr
				}
			}
			continue
		}
		answered++
		if seg != nil {
			if jerr := seg.answered(sweepProtective, ns.Addr, canary, qt, wire); jerr != nil {
				return nil, jerr
			}
		}
		addProtectiveAnswers(db, ns.Addr, qt, resp)
	}

	// Phase 2: the UR sweep over this server's shuffled targets.
	var out []*UR
	for _, target := range c.shuffledTargets(ns.Addr) {
		if c.isExactlyDelegated(target, ns) {
			continue
		}
		for _, qt := range c.cfg.queryTypes() {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			if c.replayed(sweepURs, ns.Addr, target, qt) {
				continue
			}
			issued++
			attempted++
			resp, wire, class, err := c.probeQuery(ctx, slot, seg, server, target, qt)
			if err != nil {
				fails = append(fails, probeFailure{
					ns: ns, domain: target, qtype: qt,
					class: class, sweep: sweepURs,
				})
				if seg != nil {
					if jerr := seg.failure(sweepURs, ns.Addr, target, qt, class); jerr != nil {
						return out, jerr
					}
				}
				continue
			}
			answered++
			if seg != nil {
				if jerr := seg.answered(sweepURs, ns.Addr, target, qt, wire); jerr != nil {
					return out, jerr
				}
			}
			out = c.ursFromResponse(ns, target, qt, resp, out)
		}
	}

	// Phase 3: one in-job retry of this job's failed canary probes. The UR
	// phase put tens of exchanges between the failure and the retry, giving
	// flap windows and breakers the same chance to recover that the serial
	// pipeline's end-of-sweep re-queue provides — without letting another
	// goroutine interleave on this endpoint. A server's protective set is
	// therefore final when its job ends, which is what lets the caller emit
	// the job's URs for immediate classification.
	if len(canaryFails) > 0 {
		var remaining []probeFailure
		for i, f := range canaryFails {
			if err := ctx.Err(); err != nil {
				canaryFails = append(remaining, canaryFails[i:]...)
				return out, err
			}
			issued++
			resp, wire, class, err := c.probeQuery(ctx, slot, seg, server, f.domain, f.qtype)
			if err != nil {
				f.class = class
				remaining = append(remaining, f)
				if seg != nil {
					if jerr := seg.failure(sweepProtective, ns.Addr, f.domain, f.qtype, class); jerr != nil {
						canaryFails = append(remaining, canaryFails[i+1:]...)
						return out, jerr
					}
				}
				continue
			}
			answered++
			recovered++
			if seg != nil {
				if jerr := seg.answered(sweepProtective, ns.Addr, f.domain, f.qtype, wire); jerr != nil {
					canaryFails = append(remaining, canaryFails[i+1:]...)
					return out, jerr
				}
			}
			addProtectiveAnswers(db, ns.Addr, f.qtype, resp)
		}
		canaryFails = remaining
	}
	return out, nil
}
