package core

import (
	"net/netip"
	"testing"

	"repro/internal/dns"
	idspkg "repro/internal/ids"
	sbx "repro/internal/sandbox"
	"repro/internal/threatintel"
)

var (
	anNS      = netip.MustParseAddr("100.1.0.53")
	intelIP   = netip.MustParseAddr("66.1.0.1")
	idsIP     = netip.MustParseAddr("66.1.0.2")
	bothIP    = netip.MustParseAddr("66.1.0.3")
	cleanIP   = netip.MustParseAddr("66.1.0.4")
	lowSevIP  = netip.MustParseAddr("66.1.0.5")
	victimSrc = netip.MustParseAddr("10.0.0.9")
)

func analyzerConfig() *Config {
	intel := threatintel.NewAggregator([]string{"V1", "V2"})
	v1, _ := intel.Vendor("V1")
	v1.Flag(intelIP, threatintel.TagTrojan)
	v1.Flag(bothIP, threatintel.TagC2)

	engine := idspkg.NewEngine(idspkg.DefaultRules()...)
	reports := []*sbx.Report{
		{
			Flows: []sbx.Flow{
				{Proto: sbx.ProtoTCP, Src: victimSrc, Dst: idsIP, DstPort: 443,
					Payload: "trojan-beacon x", Answered: true},
				{Proto: sbx.ProtoTCP, Src: victimSrc, Dst: bothIP, DstPort: 443,
					Payload: "c2-checkin y", Answered: true},
				{Proto: sbx.ProtoTCP, Src: victimSrc, Dst: lowSevIP, DstPort: 80,
					Payload: "connectivity-check", Answered: true},
			},
		},
	}
	return &Config{Intel: intel, IDS: engine, SandboxReports: reports}
}

func susA(ip netip.Addr) *UR {
	return &UR{
		Server: NameserverInfo{Addr: anNS, Host: "ns1.h.test", Provider: "H"},
		Domain: "site.com", Type: dns.TypeA, RData: ip.String(),
		CorrespondingIPs: []netip.Addr{ip},
	}
}

func TestAnalyzeEvidencePaths(t *testing.T) {
	cfg := analyzerConfig()
	a := NewAnalyzer(cfg)
	urs := []*UR{susA(intelIP), susA(idsIP), susA(bothIP), susA(cleanIP), susA(lowSevIP)}
	a.Analyze(urs)

	if urs[0].Category != CategoryMalicious || !urs[0].MaliciousByIntel || urs[0].MaliciousByIDS {
		t.Errorf("intel-only UR: %+v", urs[0])
	}
	if urs[1].Category != CategoryMalicious || urs[1].MaliciousByIntel || !urs[1].MaliciousByIDS {
		t.Errorf("ids-only UR: %+v", urs[1])
	}
	if urs[2].Category != CategoryMalicious || !urs[2].MaliciousByIntel || !urs[2].MaliciousByIDS {
		t.Errorf("both UR: %+v", urs[2])
	}
	if urs[3].Category != CategoryUnknown {
		t.Errorf("clean UR: %v", urs[3].Category)
	}
	// Low-severity (connectivity check) evidence must NOT mark malicious.
	if urs[4].Category != CategoryUnknown {
		t.Errorf("low-severity UR: %v", urs[4].Category)
	}
}

func TestAnalyzeTXTCorrespondence(t *testing.T) {
	cfg := analyzerConfig()
	a := NewAnalyzer(cfg)
	// TXT with no IP on the same NS+domain as a malicious A record.
	txt := &UR{
		Server: NameserverInfo{Addr: anNS, Host: "ns1.h.test", Provider: "H"},
		Domain: "site.com", Type: dns.TypeTXT, RData: `"cmd=deadbeef"`,
	}
	aRec := susA(bothIP)
	a.Analyze([]*UR{aRec, txt})
	if len(txt.CorrespondingIPs) != 1 || txt.CorrespondingIPs[0] != bothIP {
		t.Fatalf("correspondence not attached: %v", txt.CorrespondingIPs)
	}
	if txt.Category != CategoryMalicious {
		t.Errorf("TXT category = %v", txt.Category)
	}

	// TXT on a DIFFERENT domain must not inherit.
	lone := &UR{
		Server: NameserverInfo{Addr: anNS, Host: "ns1.h.test", Provider: "H"},
		Domain: "other.com", Type: dns.TypeTXT, RData: `"cmd=deadbeef"`,
	}
	a2 := NewAnalyzer(cfg)
	a2.Analyze([]*UR{susA(bothIP), lone})
	if len(lone.CorrespondingIPs) != 0 || lone.Category != CategoryUnknown {
		t.Errorf("lone TXT: %v %v", lone.CorrespondingIPs, lone.Category)
	}
}

func TestAnalyzeSkipsClassified(t *testing.T) {
	cfg := analyzerConfig()
	a := NewAnalyzer(cfg)
	u := susA(bothIP)
	u.Category = CategoryCorrect
	a.Analyze([]*UR{u})
	if u.Category != CategoryCorrect {
		t.Errorf("already-classified UR relabeled: %v", u.Category)
	}
}

func TestAnalyzerAccessors(t *testing.T) {
	cfg := analyzerConfig()
	a := NewAnalyzer(cfg)
	if len(a.Alerts()) == 0 {
		t.Error("no alerts recorded")
	}
	ids := a.IDSFlaggedIPs()
	want := map[netip.Addr]bool{idsIP: true, bothIP: true}
	if len(ids) != 2 {
		t.Fatalf("IDS IPs = %v", ids)
	}
	for _, ip := range ids {
		if !want[ip] {
			t.Errorf("unexpected IDS IP %v", ip)
		}
	}
}

func TestReportAggregation(t *testing.T) {
	cfg := analyzerConfig()
	a := NewAnalyzer(cfg)
	urs := []*UR{susA(intelIP), susA(idsIP), susA(bothIP), susA(cleanIP)}
	txt := &UR{
		Server: NameserverInfo{Addr: anNS, Host: "ns1.h.test", Provider: "H"},
		Domain: "mail.com", Type: dns.TypeTXT,
		RData:            `"v=spf1 ip4:66.1.0.3 -all"`,
		TXTClass:         TXTSPF,
		CorrespondingIPs: []netip.Addr{bothIP},
	}
	urs = append(urs, txt)
	a.Analyze(urs)
	res := &Result{URs: urs, Suspicious: urs, Analyzer: a}

	rows := res.Table1()
	total := rows[2]
	if total.URs != 5 || total.MaliciousURs != 4 {
		t.Errorf("table1 total: %+v", total)
	}
	if rows[0].URs != 4 || rows[1].URs != 1 {
		t.Errorf("per-type: %+v %+v", rows[0], rows[1])
	}
	if total.Domains != 2 || total.MaliciousDomains != 2 {
		t.Errorf("domains: %+v", total)
	}
	if total.IPs != 4 || total.MaliciousIPs != 3 {
		t.Errorf("IPs: %+v", total)
	}

	f3a := res.Figure3a()
	if f3a.IntelOnly != 1 || f3a.IDSOnly != 1 || f3a.Both != 1 {
		t.Errorf("figure3a: %+v", f3a)
	}
	f3b := res.Figure3b()
	if f3b["1-2"] != 2 { // intelIP and bothIP each flagged by one vendor
		t.Errorf("figure3b: %v", f3b)
	}
	f3c := res.Figure3c()
	if f3c[idspkg.ClassTrojan] != 1 || f3c[idspkg.ClassC2] != 1 {
		t.Errorf("figure3c: %v", f3c)
	}
	f3d := res.Figure3d()
	if f3d[threatintel.TagTrojan] != 1 || f3d[threatintel.TagC2] != 1 {
		t.Errorf("figure3d: %v", f3d)
	}
	email, mal := res.TXTEmailShare()
	if email != 1 || mal != 1 {
		t.Errorf("TXT share: %d/%d", email, mal)
	}
	f2 := res.Figure2(10)
	if len(f2) != 1 || f2[0].Provider != "H" || f2[0].Malicious != 4 || f2[0].Unknown != 1 {
		t.Errorf("figure2: %+v", f2)
	}
	counts := res.CategoryCounts()
	if counts[CategoryMalicious] != 4 || counts[CategoryUnknown] != 1 {
		t.Errorf("counts: %v", counts)
	}
}

func TestURKeyUniqueness(t *testing.T) {
	a := susA(intelIP)
	b := susA(intelIP)
	if a.Key() != b.Key() {
		t.Error("identical URs have different keys")
	}
	c := susA(idsIP)
	if a.Key() == c.Key() {
		t.Error("different rdata shares a key")
	}
	d := susA(intelIP)
	d.Server.Addr = netip.MustParseAddr("100.1.0.99")
	if a.Key() == d.Key() {
		t.Error("different server shares a key (§5.1 identity)")
	}
}
