package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// shardSlice cuts the fixture config down to units [lo, hi) the way
// fleet.ShardConfig does: resolvers occupy [0, R), nameservers [R, R+N).
func shardSlice(cfg *Config, lo, hi int) *Config {
	c := *cfg
	r := len(cfg.OpenResolvers)
	cl := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	c.OpenResolvers = cfg.OpenResolvers[cl(lo, 0, r):cl(hi, 0, r)]
	c.Nameservers = cfg.Nameservers[cl(lo-r, 0, len(cfg.Nameservers)):cl(hi-r, 0, len(cfg.Nameservers))]
	return &c
}

// TestShardPlanHashDistinct pins that shard identity separates shards of one
// plan and never collides with the plan itself.
func TestShardPlanHashDistinct(t *testing.T) {
	fx := newChaosFixture(t, 11)
	full := fx.cfg.PlanHash()
	a := ShardPlanHash(full, ShardDesc{Index: 0, Lo: 0, Hi: 4, Units: 7})
	b := ShardPlanHash(full, ShardDesc{Index: 1, Lo: 4, Hi: 7, Units: 7})
	c := ShardPlanHash(full, ShardDesc{Index: 1, Lo: 0, Hi: 4, Units: 7}) // same range, other index
	if a == b || a == c || a == full || b == full {
		t.Fatalf("shard hashes collide: full=%x a=%x b=%x c=%x", full, a, b, c)
	}
}

// TestJournalMismatchErrors pins the four-way error taxonomy: each way a
// journal directory can disagree with the opener names the actual conflict.
func TestJournalMismatchErrors(t *testing.T) {
	fx := newChaosFixture(t, 11)
	full := fx.cfg.PlanHash()
	sd0 := ShardDesc{Index: 0, Lo: 0, Hi: 4, Units: 7}
	scfg := shardSlice(fx.cfg, 0, 4)

	t.Run("different plan", func(t *testing.T) {
		dir := t.TempDir()
		j, err := OpenJournal(dir, fx.cfg, JournalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		other := newChaosFixture(t, 99)
		_, err = OpenJournal(dir, other.cfg, JournalOptions{})
		if err == nil || !strings.Contains(err.Error(), "holds a different sweep plan") ||
			!strings.Contains(err.Error(), "refuse to mix plans") {
			t.Fatalf("cross-plan open error = %v", err)
		}
	})

	t.Run("shard dir opened as whole plan", func(t *testing.T) {
		dir := t.TempDir()
		j, err := OpenShardJournal(dir, scfg, full, sd0, JournalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		_, err = OpenJournal(dir, fx.cfg, JournalOptions{})
		if err == nil || !strings.Contains(err.Error(), "holds shard 0") ||
			!strings.Contains(err.Error(), "merge shard journals") {
			t.Fatalf("shard-as-plan open error = %v", err)
		}
	})

	t.Run("whole-plan dir opened as shard", func(t *testing.T) {
		dir := t.TempDir()
		j, err := OpenJournal(dir, fx.cfg, JournalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		_, err = OpenShardJournal(dir, scfg, full, sd0, JournalOptions{})
		if err == nil || !strings.Contains(err.Error(), "holds the whole plan") {
			t.Fatalf("plan-as-shard open error = %v", err)
		}
	})

	t.Run("same plan different shard", func(t *testing.T) {
		dir := t.TempDir()
		j, err := OpenShardJournal(dir, scfg, full, sd0, JournalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		sd1 := ShardDesc{Index: 1, Lo: 0, Hi: 4, Units: 7}
		_, err = OpenShardJournal(dir, scfg, full, sd1, JournalOptions{})
		if err == nil || !strings.Contains(err.Error(), "resumes only as the same shard") {
			t.Fatalf("cross-shard open error = %v", err)
		}
	})

	t.Run("same shard resumes", func(t *testing.T) {
		dir := t.TempDir()
		j, err := OpenShardJournal(dir, scfg, full, sd0, JournalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		j, err = OpenShardJournal(dir, scfg, full, sd0, JournalOptions{})
		if err != nil {
			t.Fatalf("same-shard reopen: %v", err)
		}
		if !j.Resumed() {
			t.Error("same-shard reopen did not resume")
		}
		j.Close()
	})
}

// TestMergeShardJournalsValidation pins the merge preconditions: full
// coverage of the unit range, one plan only, and a fresh destination.
func TestMergeShardJournalsValidation(t *testing.T) {
	fx := newChaosFixture(t, 11)
	full := fx.cfg.PlanHash()
	mkShard := func(t *testing.T, lo, hi, idx int) string {
		dir := filepath.Join(t.TempDir(), "shard")
		j, err := OpenShardJournal(dir, shardSlice(fx.cfg, lo, hi), full,
			ShardDesc{Index: idx, Lo: lo, Hi: hi, Units: 7}, JournalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		return dir
	}

	t.Run("gap detected", func(t *testing.T) {
		dirs := []string{mkShard(t, 0, 3, 0), mkShard(t, 5, 7, 2)} // [3,5) missing
		_, err := MergeShardJournals(filepath.Join(t.TempDir(), "m"), fx.cfg, dirs)
		if err == nil || !strings.Contains(err.Error(), "units [3,5) uncovered") {
			t.Fatalf("gap merge error = %v", err)
		}
	})

	t.Run("tail gap detected", func(t *testing.T) {
		dirs := []string{mkShard(t, 0, 5, 0)}
		_, err := MergeShardJournals(filepath.Join(t.TempDir(), "m"), fx.cfg, dirs)
		if err == nil || !strings.Contains(err.Error(), "units [5,7) uncovered") {
			t.Fatalf("tail-gap merge error = %v", err)
		}
	})

	t.Run("cross-plan refused", func(t *testing.T) {
		other := newChaosFixture(t, 99)
		otherDir := filepath.Join(t.TempDir(), "other")
		j, err := OpenJournal(otherDir, other.cfg, JournalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		dirs := []string{mkShard(t, 0, 5, 0), otherDir}
		_, err = MergeShardJournals(filepath.Join(t.TempDir(), "m"), fx.cfg, dirs)
		if err == nil || !strings.Contains(err.Error(), "refuse to mix plans") {
			t.Fatalf("cross-plan merge error = %v", err)
		}
	})

	t.Run("occupied destination refused", func(t *testing.T) {
		dst := filepath.Join(t.TempDir(), "m")
		j, err := OpenJournal(dst, fx.cfg, JournalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		_, err = MergeShardJournals(dst, fx.cfg, []string{mkShard(t, 0, 7, 0)})
		if err == nil || !strings.Contains(err.Error(), "already holds a journal") {
			t.Fatalf("occupied-dst merge error = %v", err)
		}
	})

	t.Run("overlap allowed", func(t *testing.T) {
		// Work stealing produces overlapping shard ranges on purpose.
		dirs := []string{mkShard(t, 0, 5, 0), mkShard(t, 3, 7, 1)}
		dst := filepath.Join(t.TempDir(), "m")
		st, err := MergeShardJournals(dst, fx.cfg, dirs)
		if err != nil {
			t.Fatalf("overlapping merge: %v", err)
		}
		if st.Dirs != 2 {
			t.Errorf("merged %d dirs, want 2", st.Dirs)
		}
		// The merged directory is a plain whole-plan journal.
		j, err := OpenJournal(dst, fx.cfg, JournalOptions{})
		if err != nil {
			t.Fatalf("open merged: %v", err)
		}
		j.Close()
	})

	t.Run("manifestless source refused", func(t *testing.T) {
		empty := t.TempDir()
		_, err := MergeShardJournals(filepath.Join(t.TempDir(), "m"), fx.cfg, []string{empty})
		if err == nil || !os.IsNotExist(errUnwrapAll(err)) {
			t.Fatalf("manifestless merge error = %v", err)
		}
	})
}

// errUnwrapAll walks to the innermost error.
func errUnwrapAll(err error) error {
	type unwrapper interface{ Unwrap() error }
	for {
		u, ok := err.(unwrapper)
		if !ok {
			return err
		}
		inner := u.Unwrap()
		if inner == nil {
			return err
		}
		err = inner
	}
}
