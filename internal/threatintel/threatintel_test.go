package threatintel

import (
	"net/netip"
	"testing"
)

var (
	ip1 = netip.MustParseAddr("66.10.0.1")
	ip2 = netip.MustParseAddr("66.10.0.2")
	ip3 = netip.MustParseAddr("66.10.0.3")
)

func TestVendorFlagAndLookup(t *testing.T) {
	v := NewVendor("TestAV")
	v.Flag(ip1, TagTrojan, TagC2)
	v.Flag(ip1, TagTrojan) // idempotent
	tags, ok := v.Listed(ip1)
	if !ok || len(tags) != 2 {
		t.Fatalf("tags = %v %v", tags, ok)
	}
	if _, ok := v.Listed(ip2); ok {
		t.Error("unflagged IP listed")
	}
	if v.Size() != 1 {
		t.Errorf("size = %d", v.Size())
	}
	// Flagging with no tags defaults to Other.
	v.Flag(ip2)
	tags, _ = v.Listed(ip2)
	if len(tags) != 1 || tags[0] != TagOther {
		t.Errorf("default tags = %v", tags)
	}
}

func TestAggregator(t *testing.T) {
	a := NewAggregator([]string{"V1", "V2", "V3"})
	v1, _ := a.Vendor("V1")
	v2, _ := a.Vendor("V2")
	v1.Flag(ip1, TagTrojan)
	v2.Flag(ip1, TagBotnet)
	v2.Flag(ip2, TagScanner)

	rep := a.Lookup(ip1)
	if !rep.Malicious() || rep.VendorCount() != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if !rep.HasTag(TagTrojan) || !rep.HasTag(TagBotnet) || rep.HasTag(TagScanner) {
		t.Errorf("tags = %v", rep.Tags)
	}
	if rep.Vendors[0] != "V1" || rep.Vendors[1] != "V2" {
		t.Errorf("vendors = %v", rep.Vendors)
	}
	if !a.IsMalicious(ip2) {
		t.Error("ip2 should be malicious")
	}
	if a.IsMalicious(ip3) {
		t.Error("ip3 should be clean")
	}
	if a.Lookup(ip3).Malicious() {
		t.Error("clean report marked malicious")
	}
	if _, ok := a.Vendor("NOPE"); ok {
		t.Error("unknown vendor resolved")
	}
}

func TestDefaultVendorPanel(t *testing.T) {
	names := DefaultVendorNames()
	if len(names) != 74 {
		t.Fatalf("panel size = %d, want 74 (the Specter case study's vendor count)", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate vendor %s", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"VirusTotal", "QAX", "360Security"} {
		if !seen[want] {
			t.Errorf("panel missing %s", want)
		}
	}
	a := NewAggregator(names)
	if a.VendorCount() != 74 || len(a.Vendors()) != 74 {
		t.Error("aggregator panel size wrong")
	}
}

func TestVendorCountDistributionSupport(t *testing.T) {
	// Figure 3(b) needs up to 11 flagging vendors per IP.
	a := NewAggregator(DefaultVendorNames())
	for i, v := range a.Vendors() {
		if i >= 11 {
			break
		}
		v.Flag(ip1, TagTrojan)
	}
	if got := a.Lookup(ip1).VendorCount(); got != 11 {
		t.Errorf("vendor count = %d", got)
	}
}
