// Package threatintel simulates the threat-intelligence surface the paper
// consumes from VirusTotal, QAX, and 360: per-vendor IP blacklists with
// descriptive tags, and an aggregator that answers "how many vendors flag
// this IP, and with which tags" — the inputs behind Figure 3(a), 3(b), and
// 3(d).
package threatintel

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// Tag is a vendor-assigned label for a malicious IP.
type Tag string

// The tag vocabulary of Figure 3(d).
const (
	TagTrojan  Tag = "Trojan"
	TagScanner Tag = "Scanner"
	TagMalware Tag = "Malware"
	TagC2      Tag = "C&C"
	TagBotnet  Tag = "Botnet"
	TagOther   Tag = "Other"
)

// AllTags is Figure 3(d)'s display order.
var AllTags = []Tag{TagTrojan, TagScanner, TagOther, TagMalware, TagC2, TagBotnet}

// Vendor is one security vendor's live blacklist.
type Vendor struct {
	Name string

	mu     sync.RWMutex
	listed map[netip.Addr][]Tag
}

// NewVendor creates an empty vendor feed.
func NewVendor(name string) *Vendor {
	return &Vendor{Name: name, listed: make(map[netip.Addr][]Tag)}
}

// Flag adds an IP to the vendor's blacklist with the given tags (idempotent
// per tag).
func (v *Vendor) Flag(addr netip.Addr, tags ...Tag) {
	v.mu.Lock()
	defer v.mu.Unlock()
	have := v.listed[addr]
	for _, t := range tags {
		dup := false
		for _, h := range have {
			if h == t {
				dup = true
				break
			}
		}
		if !dup {
			have = append(have, t)
		}
	}
	if len(have) == 0 {
		have = []Tag{TagOther}
	}
	v.listed[addr] = have
}

// Listed reports whether the vendor flags the IP, with its tags.
func (v *Vendor) Listed(addr netip.Addr) ([]Tag, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	tags, ok := v.listed[addr]
	if !ok {
		return nil, false
	}
	out := make([]Tag, len(tags))
	copy(out, tags)
	return out, true
}

// Size returns the number of IPs on the vendor's list.
func (v *Vendor) Size() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.listed)
}

// Report is the aggregated intelligence for one IP.
type Report struct {
	Addr netip.Addr
	// Vendors that flag the IP, sorted by name.
	Vendors []string
	// Tags is the union of all vendors' tags, sorted.
	Tags []Tag
}

// Malicious reports whether any vendor flags the IP.
func (r Report) Malicious() bool { return len(r.Vendors) > 0 }

// VendorCount is the number of flagging vendors (the Figure 3(b) statistic).
func (r Report) VendorCount() int { return len(r.Vendors) }

// HasTag reports whether any vendor applied the tag.
func (r Report) HasTag(t Tag) bool {
	for _, have := range r.Tags {
		if have == t {
			return true
		}
	}
	return false
}

// Aggregator unions many vendor feeds, VirusTotal-style.
type Aggregator struct {
	mu      sync.RWMutex
	vendors []*Vendor
	byName  map[string]*Vendor
}

// NewAggregator creates an aggregator over vendors with the given names.
func NewAggregator(names []string) *Aggregator {
	a := &Aggregator{byName: make(map[string]*Vendor, len(names))}
	for _, n := range names {
		v := NewVendor(n)
		a.vendors = append(a.vendors, v)
		a.byName[n] = v
	}
	return a
}

// DefaultVendorNames builds the standard 74-vendor panel ("aggregated by
// VirusTotal" in the Specter case study). The first names mirror the feeds
// the paper consumed directly.
func DefaultVendorNames() []string {
	names := []string{"VirusTotal", "QAX", "360Security"}
	for i := len(names); i < 74; i++ {
		names = append(names, fmt.Sprintf("AVVendor%02d", i))
	}
	return names
}

// Vendor returns the feed with the given name.
func (a *Aggregator) Vendor(name string) (*Vendor, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	v, ok := a.byName[name]
	return v, ok
}

// Vendors returns all feeds.
func (a *Aggregator) Vendors() []*Vendor {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]*Vendor, len(a.vendors))
	copy(out, a.vendors)
	return out
}

// VendorCount returns the panel size.
func (a *Aggregator) VendorCount() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.vendors)
}

// Lookup aggregates all vendors' verdicts for an IP.
func (a *Aggregator) Lookup(addr netip.Addr) Report {
	a.mu.RLock()
	defer a.mu.RUnlock()
	rep := Report{Addr: addr}
	tagset := make(map[Tag]bool)
	for _, v := range a.vendors {
		if tags, ok := v.Listed(addr); ok {
			rep.Vendors = append(rep.Vendors, v.Name)
			for _, t := range tags {
				tagset[t] = true
			}
		}
	}
	sort.Strings(rep.Vendors)
	for t := range tagset {
		rep.Tags = append(rep.Tags, t)
	}
	sort.Slice(rep.Tags, func(i, j int) bool { return rep.Tags[i] < rep.Tags[j] })
	return rep
}

// IsMalicious reports whether any vendor flags the IP.
func (a *Aggregator) IsMalicious(addr netip.Addr) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, v := range a.vendors {
		if _, ok := v.Listed(addr); ok {
			return true
		}
	}
	return false
}
