package transport

import (
	"bytes"
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"strings"
	"time"

	"repro/internal/dns"
	"repro/internal/dnsio"
)

// RFC 8484 constants.
const (
	// DoHMediaType is the one media type the protocol defines.
	DoHMediaType = "application/dns-message"
	// DoHPath is the conventional query endpoint.
	DoHPath = "/dns-query"
)

// DoH request decoding errors. The handler maps each onto its HTTP status;
// fuzzing pins that arbitrary input always lands on one of these, never a
// panic.
var (
	ErrDoHMethod    = errors.New("transport: DoH request method must be GET or POST")
	ErrDoHNoQuery   = errors.New("transport: DoH GET without a dns= query parameter")
	ErrDoHBadBase64 = errors.New("transport: DoH dns= parameter is not unpadded base64url")
	ErrDoHMediaType = errors.New("transport: DoH POST content-type must be application/dns-message")
	ErrDoHTooLarge  = errors.New("transport: DoH request body exceeds the DNS message limit")
	ErrDoHEmpty     = errors.New("transport: DoH request carries no message bytes")
)

// EncodeDoHQuery renders packed query bytes as the unpadded base64url value
// of the ?dns= parameter (RFC 8484 §4.1).
func EncodeDoHQuery(packed []byte) string {
	return base64.RawURLEncoding.EncodeToString(packed)
}

// DecodeDoHParam decodes one ?dns= parameter value back to wire bytes. RFC
// 8484 mandates unpadded encoding, so '=' anywhere is rejected rather than
// tolerated — two spellings of one query would poison HTTP caches.
func DecodeDoHParam(v string) ([]byte, error) {
	if v == "" {
		return nil, ErrDoHNoQuery
	}
	if strings.ContainsRune(v, '=') {
		return nil, fmt.Errorf("%w: padded input", ErrDoHBadBase64)
	}
	if base64.RawURLEncoding.DecodedLen(len(v)) > dns.MaxMessageSize {
		return nil, ErrDoHTooLarge
	}
	raw, err := base64.RawURLEncoding.DecodeString(v)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDoHBadBase64, err)
	}
	if len(raw) == 0 {
		return nil, ErrDoHEmpty
	}
	return raw, nil
}

// DecodeDoHRequest extracts the DNS wire-format query from an RFC 8484
// request: GET carries it in ?dns= (base64url, unpadded), POST carries it
// verbatim as an application/dns-message body.
func DecodeDoHRequest(r *http.Request) ([]byte, error) {
	switch r.Method {
	case http.MethodGet:
		return DecodeDoHParam(r.URL.Query().Get("dns"))
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if mt, _, _ := strings.Cut(ct, ";"); strings.TrimSpace(mt) != DoHMediaType {
			return nil, fmt.Errorf("%w: got %q", ErrDoHMediaType, ct)
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, dns.MaxMessageSize+1))
		if err != nil {
			return nil, err
		}
		if len(body) > dns.MaxMessageSize {
			return nil, ErrDoHTooLarge
		}
		if len(body) == 0 {
			return nil, ErrDoHEmpty
		}
		return body, nil
	}
	return nil, fmt.Errorf("%w: got %s", ErrDoHMethod, r.Method)
}

// dohStatus maps a decode error onto its HTTP status.
func dohStatus(err error) int {
	switch {
	case errors.Is(err, ErrDoHMethod):
		return http.StatusMethodNotAllowed
	case errors.Is(err, ErrDoHMediaType):
		return http.StatusUnsupportedMediaType
	case errors.Is(err, ErrDoHTooLarge):
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// DoHHandler serves a dnsio.Responder at an RFC 8484 endpoint. Decoded
// queries run through dnsio.ServeRaw with via="doh", so ViaResponder
// implementations (urwatchd's metrics) see the transport; undecodable
// requests get the matching HTTP status and fire OnError.
type DoHHandler struct {
	Responder dnsio.Responder
	// OnError, when non-nil, counts requests that never decoded to a DNS
	// message (bad method, media type, base64, size).
	OnError func()
}

// ServeHTTP implements http.Handler.
func (h *DoHHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	raw, err := DecodeDoHRequest(r)
	if err != nil {
		if h.OnError != nil {
			h.OnError()
		}
		http.Error(w, err.Error(), dohStatus(err))
		return
	}
	src := clientAddr(r)
	out := dnsio.ServeRaw(h.Responder, src, raw, dnsio.ViaDoH)
	if out == nil {
		// The message had no parsable header; nothing sensible to frame.
		if h.OnError != nil {
			h.OnError()
		}
		http.Error(w, "unparsable DNS message", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", DoHMediaType)
	// The feed changes per generation; keep HTTP caches out of the loop the
	// same way the DNSBL zone's short TTLs do.
	w.Header().Set("Cache-Control", "max-age=0")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
}

// clientAddr extracts the peer IP from an HTTP request.
func clientAddr(r *http.Request) netip.Addr {
	if ap, err := netip.ParseAddrPort(r.RemoteAddr); err == nil {
		return ap.Addr()
	}
	if a, err := netip.ParseAddr(r.RemoteAddr); err == nil {
		return a
	}
	return netip.Addr{}
}

// NetDoH is a dnsio.Transport speaking RFC 8484 against real HTTP servers.
// The zero value POSTs wire-format bodies over plain HTTP to /dns-query on
// the exchange's server address — the shape urwatchd serves; point Scheme at
// "https" (with Client carrying the TLS config) for a production resolver.
type NetDoH struct {
	// Scheme selects http or https; empty means http.
	Scheme string
	// Path is the endpoint path; empty means /dns-query.
	Path string
	// UseGET switches to the ?dns= base64url form instead of POST.
	UseGET bool
	// Client issues the requests; nil uses a modest-timeout default.
	Client *http.Client
}

// defaultDoHClient bounds a zero-value NetDoH the way NewClient bounds its
// attempts.
var defaultDoHClient = &http.Client{Timeout: 5 * time.Second}

// Exchange implements dnsio.Transport. The tcp flag is meaningless over
// HTTP — responses are never truncated — so it is ignored.
func (t *NetDoH) Exchange(ctx context.Context, server netip.AddrPort, packed []byte, _ bool) ([]byte, error) {
	scheme := t.Scheme
	if scheme == "" {
		scheme = "http"
	}
	path := t.Path
	if path == "" {
		path = DoHPath
	}
	url := scheme + "://" + server.String() + path

	var req *http.Request
	var err error
	if t.UseGET {
		req, err = http.NewRequestWithContext(ctx, http.MethodGet,
			url+"?dns="+EncodeDoHQuery(packed), nil)
	} else {
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, url,
			bytes.NewReader(packed))
		if req != nil {
			req.Header.Set("Content-Type", DoHMediaType)
		}
	}
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", DoHMediaType)

	client := t.Client
	if client == nil {
		client = defaultDoHClient
	}
	resp, err := client.Do(req)
	if err != nil {
		if isTLSHandshakeErr(err) {
			return nil, fmt.Errorf("%w: %v", dnsio.ErrTLSHandshake, err)
		}
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("%w: %s", dnsio.ErrHTTPStatus, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, dns.MaxMessageSize+1))
	if err != nil {
		return nil, err
	}
	if len(body) > dns.MaxMessageSize {
		return nil, fmt.Errorf("%w: response body over the message limit", dnsio.ErrMalformed)
	}
	return body, nil
}

// isTLSHandshakeErr spots crypto-layer failures inside net/http's wrapped
// dial errors.
func isTLSHandshakeErr(err error) bool {
	s := err.Error()
	return strings.Contains(s, "tls:") || strings.Contains(s, "x509:")
}
