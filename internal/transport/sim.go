package transport

import (
	"context"
	"net/netip"
	"sync"
	"time"

	"repro/internal/dnsio"
	"repro/internal/simnet"
)

// Modeled crypto costs, in units of the fabric's base RTT. The handshake is
// booked once per (transport, server) pair — a sweep amortizes it across
// every probe to that server, exactly the connection-reuse shape RFC 7766
// prescribes and real DoT/DoH stacks implement. The per-message divisor
// models record framing and (for DoH) HTTP header overhead: baseRTT/div
// extra virtual time per exchange.
//
// With the sweep's defaults (one server swept from one worker, dozens of
// probes per server) these bound the DoH sweep's virtual-clock overhead
// comfortably under the 50% CI gate; see DESIGN.md §14 for the arithmetic.
const (
	// dotHandshakeRTTs: TCP SYN/ACK plus the TLS 1.3 one-RTT handshake.
	dotHandshakeRTTs = 2
	// dohHandshakeRTTs: same TCP+TLS setup — HTTP adds bytes, not rounds.
	dohHandshakeRTTs = 2
	// dotRecordDiv: the 5-byte TLS record header and padding on a ~60-byte
	// query are a small serialization tax.
	dotRecordDiv = 16
	// dohRecordDiv: HTTP/1.1 request line, Host, Content-Type, and status
	// headers dwarf the DNS payload; twice the DoT tax.
	dohRecordDiv = 8
)

// simEncrypted layers modeled handshake and record costs over the plain
// fabric transport. Routing is untouched — the wrapped SimTransport hits the
// same lossy datagram endpoint (and the same reliable endpoint on TC
// fallback) the plain transports hit, so fault profiles draw identically and
// a chaos sweep collects byte-identical records on every transport.
type simEncrypted struct {
	inner         dnsio.SimTransport
	handshakeRTTs int64
	recordDiv     int64

	mu         sync.Mutex
	seen       map[netip.Addr]struct{}
	handshakes int64
}

// SimDoT is the simulated RFC 7858 transport.
type SimDoT struct{ simEncrypted }

// SimDoH is the simulated RFC 8484 transport.
type SimDoH struct{ simEncrypted }

// NewSimDoT builds a DoT transport over the fabric from src.
func NewSimDoT(f *simnet.Fabric, src netip.Addr) *SimDoT {
	return &SimDoT{simEncrypted{
		inner:         dnsio.SimTransport{Fabric: f, Src: src},
		handshakeRTTs: dotHandshakeRTTs,
		recordDiv:     dotRecordDiv,
		seen:          make(map[netip.Addr]struct{}),
	}}
}

// NewSimDoH builds a DoH transport over the fabric from src.
func NewSimDoH(f *simnet.Fabric, src netip.Addr) *SimDoH {
	return &SimDoH{simEncrypted{
		inner:         dnsio.SimTransport{Fabric: f, Src: src},
		handshakeRTTs: dohHandshakeRTTs,
		recordDiv:     dohRecordDiv,
		seen:          make(map[netip.Addr]struct{}),
	}}
}

// Exchange implements dnsio.Transport: book the modeled costs, then carry the
// message exactly as the plain transport would.
func (t *simEncrypted) Exchange(ctx context.Context, server netip.AddrPort, packed []byte, tcp bool) ([]byte, error) {
	base := t.inner.Fabric.BaseRTT()
	t.mu.Lock()
	if _, ok := t.seen[server.Addr()]; !ok {
		t.seen[server.Addr()] = struct{}{}
		t.handshakes++
		t.inner.Fabric.AdvanceVirtual(time.Duration(t.handshakeRTTs) * base)
	}
	t.mu.Unlock()
	if t.recordDiv > 0 {
		t.inner.Fabric.AdvanceVirtual(base / time.Duration(t.recordDiv))
	}
	return t.inner.Exchange(ctx, server, packed, tcp)
}

// Instant implements dnsio's instant-transport marker: fabric exchanges are
// synchronous, so deadline plumbing and the stall watchdog stay off.
func (t *simEncrypted) Instant() bool { return true }

// SleepVirtual books retry backoff on the virtual clock, like the plain
// fabric transport.
func (t *simEncrypted) SleepVirtual(d time.Duration) {
	t.inner.Fabric.AdvanceVirtual(d)
}

// Handshakes returns how many per-server session setups were booked — the
// numerator of the amortization the TransportSweep benchmark reports.
func (t *simEncrypted) Handshakes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.handshakes
}
