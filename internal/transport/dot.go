package transport

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"math/big"
	"net"
	"net/netip"
	"sync"
	"time"

	"repro/internal/dnsio"
)

// DoTPort is the RFC 7858 service port.
const DoTPort = 853

// NetDoT is a dnsio.Transport over real TLS sockets: dial, handshake, then
// the plain two-octet stream framing inside the session. Each exchange uses
// a fresh connection — correct, if not connection-reusing; the sim transport
// models the amortized shape, and a pooled NetDoT is future work noted in
// DESIGN.md §14.
type NetDoT struct {
	// TLS configures the client side; it must carry RootCAs (or
	// InsecureSkipVerify for loopback demos). nil performs the default
	// WebPKI verification.
	TLS *tls.Config
	// DialTimeout bounds the TCP connect; the context bounds the rest.
	DialTimeout time.Duration
}

// Exchange implements dnsio.Transport. The tcp flag is meaningless — DoT is
// always a stream, responses never truncate — so it is ignored.
func (t *NetDoT) Exchange(ctx context.Context, server netip.AddrPort, packed []byte, _ bool) ([]byte, error) {
	d := net.Dialer{Timeout: t.DialTimeout}
	raw, err := d.DialContext(ctx, "tcp", server.String())
	if err != nil {
		return nil, err
	}
	conn := tls.Client(raw, t.tlsConfig(server))
	if err := conn.HandshakeContext(ctx); err != nil {
		raw.Close()
		return nil, fmt.Errorf("%w: %v", dnsio.ErrTLSHandshake, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	if err := dnsio.WriteFrame(conn, packed); err != nil {
		return nil, err
	}
	return dnsio.ReadFrame(conn)
}

func (t *NetDoT) tlsConfig(server netip.AddrPort) *tls.Config {
	cfg := t.TLS
	if cfg == nil {
		cfg = &tls.Config{}
	}
	cfg = cfg.Clone()
	if cfg.ServerName == "" {
		cfg.ServerName = server.Addr().String()
	}
	return cfg
}

// DoTServer serves a dnsio.Responder over TLS-framed DNS. Queries dispatch
// through dnsio.ServeRaw with via="dot".
type DoTServer struct {
	responder dnsio.Responder
	ln        net.Listener
	addr      netip.AddrPort
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// ServeDoT starts a DoT listener on addr ("127.0.0.1:0" picks a port) with
// the given server certificate.
func ServeDoT(r dnsio.Responder, addr string, cert tls.Certificate) (*DoTServer, error) {
	ln, err := tls.Listen("tcp", addr, &tls.Config{Certificates: []tls.Certificate{cert}})
	if err != nil {
		return nil, err
	}
	s := &DoTServer{responder: r, ln: ln}
	s.addr = ln.Addr().(*net.TCPAddr).AddrPort()
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the bound address.
func (s *DoTServer) Addr() netip.AddrPort { return s.addr }

func (s *DoTServer) serve() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			src := netip.Addr{}
			if ta, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
				src = ta.AddrPort().Addr()
			}
			for {
				raw, err := dnsio.ReadFrame(conn)
				if err != nil {
					return
				}
				out := dnsio.ServeRaw(s.responder, src, raw, dnsio.ViaDoT)
				if out == nil {
					return
				}
				if err := dnsio.WriteFrame(conn, out); err != nil {
					return
				}
			}
		}()
	}
}

// Close shuts the listener and waits for in-flight connections.
func (s *DoTServer) Close() error {
	var err error
	s.closeOnce.Do(func() {
		err = s.ln.Close()
		s.wg.Wait()
	})
	return err
}

// SelfSignedCert mints an ECDSA certificate for the given hosts (DNS names
// or IP literals) plus the pool trusting it — what the dnsq demo and the
// loopback tests pin their TLS on instead of a real CA.
func SelfSignedCert(hosts ...string) (tls.Certificate, *x509.CertPool, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "repro-dot"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	if len(hosts) == 0 {
		return tls.Certificate{}, nil, errors.New("transport: self-signed cert needs at least one host")
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	cert := tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}
	return cert, pool, nil
}
