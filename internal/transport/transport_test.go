package transport

import (
	"bytes"
	"context"
	"crypto/tls"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/simnet"
)

// testResponder answers every A query for test.example with 192.0.2.1 and
// NXDOMAIN otherwise, recording the via label each query arrived on.
type testResponder struct {
	vias []string
}

func (r *testResponder) HandleQuery(src netip.Addr, q *dns.Message) *dns.Message {
	return r.HandleQueryVia(src, q, dnsio.ViaUDP)
}

func (r *testResponder) HandleQueryVia(src netip.Addr, q *dns.Message, via string) *dns.Message {
	r.vias = append(r.vias, via)
	resp := q.Reply()
	if q.Question().Name == "test.example" && q.Question().Type == dns.TypeA {
		resp.Answers = append(resp.Answers, dns.RR{Name: q.Question().Name,
			Class: dns.ClassINET, TTL: 60, Data: &dns.A{Addr: netip.MustParseAddr("192.0.2.1")}})
	} else {
		resp.Header.RCode = dns.RCodeNXDomain
	}
	return resp
}

func packedQuery(t *testing.T) []byte {
	t.Helper()
	q := dns.NewQuery(0x1234, "test.example", dns.TypeA)
	raw, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestParseKind(t *testing.T) {
	for in, want := range map[string]Kind{"": KindUDP, "udp": KindUDP,
		"tcp": KindTCP, "dot": KindDoT, "doh": KindDoH} {
		k, err := ParseKind(in)
		if err != nil || k != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, k, err, want)
		}
	}
	if _, err := ParseKind("quic"); err == nil {
		t.Error("ParseKind accepted an unknown kind")
	} else if !strings.Contains(err.Error(), "quic") {
		t.Errorf("error does not name the bad kind: %v", err)
	}
}

// TestDoHQueryCodec pins the RFC 8484 ?dns= round trip and its negatives:
// unpadded base64url only, padded input rejected, size-capped.
func TestDoHQueryCodec(t *testing.T) {
	raw := []byte{0x12, 0x34, 0x01, 0x00, 0x00, 0x01}
	enc := EncodeDoHQuery(raw)
	if strings.ContainsAny(enc, "=+/") {
		t.Errorf("encoded form %q is not unpadded base64url", enc)
	}
	got, err := DecodeDoHParam(enc)
	if err != nil || !bytes.Equal(got, raw) {
		t.Fatalf("round trip = %x, %v; want %x", got, err, raw)
	}

	cases := []struct {
		name string
		in   string
		want error
	}{
		{"empty", "", ErrDoHNoQuery},
		{"padded", "AAE=", ErrDoHBadBase64},
		{"not-base64", "!!!!", ErrDoHBadBase64},
		{"std-alphabet", "a+b/", ErrDoHBadBase64},
		{"oversize", strings.Repeat("A", 4*30000), ErrDoHTooLarge},
		{"zero-bytes", "", ErrDoHNoQuery},
	}
	for _, tc := range cases {
		if _, err := DecodeDoHParam(tc.in); !errors.Is(err, tc.want) {
			t.Errorf("%s: DecodeDoHParam = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestDoHRequestDecode pins the HTTP-level negatives and their status codes:
// wrong method 405, wrong media type 415, oversize body 413, empty body and
// bad base64 400.
func TestDoHRequestDecode(t *testing.T) {
	raw := packedQuery(t)

	post := func(ct string, body []byte) *http.Request {
		r := httptest.NewRequest(http.MethodPost, DoHPath, bytes.NewReader(body))
		r.Header.Set("Content-Type", ct)
		return r
	}
	get := func(param string) *http.Request {
		return httptest.NewRequest(http.MethodGet, DoHPath+param, nil)
	}

	okCases := []*http.Request{
		post(DoHMediaType, raw),
		post(DoHMediaType+"; charset=utf-8", raw),
		get("?dns=" + EncodeDoHQuery(raw)),
	}
	for i, r := range okCases {
		got, err := DecodeDoHRequest(r)
		if err != nil || !bytes.Equal(got, raw) {
			t.Errorf("ok case %d: DecodeDoHRequest = %v", i, err)
		}
	}

	badCases := []struct {
		name   string
		req    *http.Request
		err    error
		status int
	}{
		{"put", httptest.NewRequest(http.MethodPut, DoHPath, nil), ErrDoHMethod, 405},
		{"delete", httptest.NewRequest(http.MethodDelete, DoHPath, nil), ErrDoHMethod, 405},
		{"json-body", post("application/json", raw), ErrDoHMediaType, 415},
		{"no-content-type", post("", raw), ErrDoHMediaType, 415},
		{"oversize-body", post(DoHMediaType, bytes.Repeat([]byte{0}, dns.MaxMessageSize+1)), ErrDoHTooLarge, 413},
		{"empty-body", post(DoHMediaType, nil), ErrDoHEmpty, 400},
		{"get-no-param", get(""), ErrDoHNoQuery, 400},
		{"get-padded", get("?dns=AAE%3D"), ErrDoHBadBase64, 400},
	}
	for _, tc := range badCases {
		_, err := DecodeDoHRequest(tc.req)
		if !errors.Is(err, tc.err) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.err)
		}
		if got := dohStatus(err); got != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, got, tc.status)
		}
	}
}

// TestDoHHandlerEndToEnd drives the handler over a real HTTP listener with
// the production client (POST wire format and GET ?dns=), checks the answer,
// the via label, the content type, and that undecodable requests fire
// OnError with the mapped status.
func TestDoHHandlerEndToEnd(t *testing.T) {
	resp := &testResponder{}
	var errCount int
	mux := http.NewServeMux()
	mux.Handle(DoHPath, &DoHHandler{Responder: resp, OnError: func() { errCount++ }})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	ap := netip.MustParseAddrPort(strings.TrimPrefix(srv.URL, "http://"))

	for _, useGET := range []bool{false, true} {
		tr := &NetDoH{UseGET: useGET}
		out, err := tr.Exchange(context.Background(), ap, packedQuery(t), false)
		if err != nil {
			t.Fatalf("useGET=%v: %v", useGET, err)
		}
		m, err := dns.Unpack(out)
		if err != nil {
			t.Fatalf("useGET=%v: unpack: %v", useGET, err)
		}
		if len(m.Answers) != 1 || m.Header.ID != 0x1234 {
			t.Errorf("useGET=%v: got %d answers, id %#x", useGET, len(m.Answers), m.Header.ID)
		}
	}
	for _, via := range resp.vias {
		if via != dnsio.ViaDoH {
			t.Errorf("handler dispatched via %q, want %q", via, dnsio.ViaDoH)
		}
	}

	// Media-type negative over the wire: 415 and an OnError tick.
	hr, err := http.Post(srv.URL+DoHPath, "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("bad media type: status %d, want 415", hr.StatusCode)
	}
	// Unparsable DNS bytes: body decodes but has no header; 400 + OnError.
	hr, err = http.Post(srv.URL+DoHPath, DoHMediaType, bytes.NewReader([]byte{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Errorf("unparsable message: status %d, want 400", hr.StatusCode)
	}
	if errCount != 2 {
		t.Errorf("OnError fired %d times, want 2", errCount)
	}

	// The non-200 path must classify as a transient HTTP failure.
	tr := &NetDoH{Path: "/nowhere"}
	if _, err := tr.Exchange(context.Background(), ap, packedQuery(t), false); !errors.Is(err, dnsio.ErrHTTPStatus) {
		t.Errorf("404 exchange error = %v, want ErrHTTPStatus", err)
	}
}

// TestDoTLoopback round-trips a query through a real TLS listener under a
// self-signed certificate, pinning the framing, the via label, and the
// handshake-failure classification for an untrusted cert.
func TestDoTLoopback(t *testing.T) {
	cert, pool, err := SelfSignedCert("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	resp := &testResponder{}
	srv, err := ServeDoT(resp, "127.0.0.1:0", cert)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tr := &NetDoT{TLS: &tls.Config{RootCAs: pool}, DialTimeout: 5 * time.Second}
	out, err := tr.Exchange(context.Background(), srv.Addr(), packedQuery(t), false)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dns.Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 1 {
		t.Errorf("got %d answers, want 1", len(m.Answers))
	}
	if len(resp.vias) != 1 || resp.vias[0] != dnsio.ViaDoT {
		t.Errorf("server saw vias %v, want [dot]", resp.vias)
	}

	// A client with no trust anchor must fail the handshake and classify it
	// as the permanent TLS failure class, not a generic socket error.
	bad := &NetDoT{DialTimeout: 5 * time.Second}
	if _, err := bad.Exchange(context.Background(), srv.Addr(), packedQuery(t), false); !errors.Is(err, dnsio.ErrTLSHandshake) {
		t.Errorf("untrusted handshake error = %v, want ErrTLSHandshake", err)
	}
}

// TestFrameRoundTrip pins the RFC 1035 two-octet framing both ways, plus the
// oversize refusal.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msg := bytes.Repeat([]byte{0xAB}, 300)
	if err := dnsio.WriteFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 302 || buf.Bytes()[0] != 0x01 || buf.Bytes()[1] != 0x2C {
		t.Errorf("frame header = % x, len %d", buf.Bytes()[:2], buf.Len())
	}
	got, err := dnsio.ReadFrame(&buf)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("ReadFrame = %v (len %d)", err, len(got))
	}
	if err := dnsio.WriteFrame(&buf, make([]byte, dns.MaxMessageSize+1)); err == nil {
		t.Error("WriteFrame accepted an oversize message")
	}
	// A short header or truncated body must error, not block or panic.
	if _, err := dnsio.ReadFrame(bytes.NewReader([]byte{0x00})); err == nil {
		t.Error("ReadFrame accepted a one-byte header")
	}
	if _, err := dnsio.ReadFrame(bytes.NewReader([]byte{0x00, 0x05, 0x01})); err == nil {
		t.Error("ReadFrame accepted a truncated body")
	}
}

// TestSimHandshakeAmortized pins the modeled cost shape: one handshake per
// distinct server no matter how many exchanges, booked on the virtual clock
// only, and answers identical to the plain transport's.
func TestSimHandshakeAmortized(t *testing.T) {
	fabric := simnet.New(7)
	src := netip.MustParseAddr("10.9.0.1")
	servers := []netip.Addr{
		netip.MustParseAddr("10.9.1.1"),
		netip.MustParseAddr("10.9.1.2"),
		netip.MustParseAddr("10.9.1.3"),
	}
	resp := &testResponder{}
	for _, s := range servers {
		if _, err := dnsio.AttachSim(fabric, s, resp); err != nil {
			t.Fatal(err)
		}
	}

	plain := &dnsio.SimTransport{Fabric: fabric, Src: src}
	for _, k := range []Kind{KindDoT, KindDoH} {
		tr, err := NewSim(k, fabric, src)
		if err != nil {
			t.Fatal(err)
		}
		before := fabric.VirtualRTT()
		for round := 0; round < 5; round++ {
			for _, s := range servers {
				ap := netip.AddrPortFrom(s, dnsio.DNSPort)
				enc, err := tr.Exchange(context.Background(), ap, packedQuery(t), false)
				if err != nil {
					t.Fatalf("%s exchange: %v", k, err)
				}
				want, err := plain.Exchange(context.Background(), ap, packedQuery(t), false)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(enc, want) {
					t.Fatalf("%s answer differs from plain transport", k)
				}
			}
		}
		hs := tr.(interface{ Handshakes() int64 }).Handshakes()
		if hs != int64(len(servers)) {
			t.Errorf("%s: %d handshakes for %d servers over 5 rounds, want one each", k, hs, len(servers))
		}
		if fabric.VirtualRTT() <= before {
			t.Errorf("%s: no modeled cost booked on the virtual clock", k)
		}
	}
}
