package transport

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dns"
)

// FuzzDoHParamDecode feeds arbitrary strings to the ?dns= decoder. The
// contract under fuzz: never panic, and every rejection is one of the typed
// ErrDoH* errors so the handler can always map it to an HTTP status. Anything
// accepted must re-encode to the same parameter value (unpadded base64url is
// a bijection).
func FuzzDoHParamDecode(f *testing.F) {
	f.Add("")
	f.Add("AAE")
	f.Add("AAE=")
	f.Add("!!!!")
	f.Add("00") // decodes despite non-canonical trailing bits

	f.Add(EncodeDoHQuery([]byte{0x12, 0x34, 0x01, 0x00}))
	f.Add(strings.Repeat("A", 100000))
	f.Fuzz(func(t *testing.T, v string) {
		raw, err := DecodeDoHParam(v)
		if err != nil {
			if !errors.Is(err, ErrDoHNoQuery) && !errors.Is(err, ErrDoHBadBase64) &&
				!errors.Is(err, ErrDoHTooLarge) && !errors.Is(err, ErrDoHEmpty) {
				t.Fatalf("untyped decode error for %q: %v", v, err)
			}
			return
		}
		if len(raw) == 0 || len(raw) > dns.MaxMessageSize {
			t.Fatalf("accepted out-of-bounds message: %d bytes", len(raw))
		}
		// Re-encoding must produce a value that decodes back to the same
		// bytes. (Exact string equality would be too strong: the decoder is
		// lenient about non-zero discarded bits in the final symbol.)
		again, err := DecodeDoHParam(EncodeDoHQuery(raw))
		if err != nil || !bytes.Equal(again, raw) {
			t.Fatalf("re-encode round trip failed for %q: %v", v, err)
		}
	})
}

// FuzzDoHRequestDecode drives the full HTTP request decoder with arbitrary
// methods, content types, and bodies. Same contract: typed errors only, and
// every error maps to one of the four statuses the handler can emit.
func FuzzDoHRequestDecode(f *testing.F) {
	f.Add("POST", DoHMediaType, []byte{0x12, 0x34, 0x01, 0x00})
	f.Add("POST", "text/plain", []byte("hi"))
	f.Add("GET", "", []byte(nil))
	f.Add("PUT", DoHMediaType, []byte{1})
	f.Add("POST", DoHMediaType+"; charset=utf-8", []byte{0})
	f.Fuzz(func(t *testing.T, method, ct string, body []byte) {
		for _, r := range []rune(method) {
			// http.NewRequest rejects invalid method characters outright;
			// the decoder only ever sees requests a server could parse.
			if r <= ' ' || r >= 0x7f || strings.ContainsRune("()<>@,;:\\\"/[]?={}", r) {
				return
			}
		}
		if method == "" {
			return
		}
		req := httptest.NewRequest(method, DoHPath+"?dns=x", bytes.NewReader(body))
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		raw, err := DecodeDoHRequest(req)
		if err != nil {
			switch s := dohStatus(err); s {
			case http.StatusMethodNotAllowed, http.StatusUnsupportedMediaType,
				http.StatusRequestEntityTooLarge, http.StatusBadRequest:
			default:
				t.Fatalf("error %v mapped to unexpected status %d", err, s)
			}
			return
		}
		if len(raw) == 0 || len(raw) > dns.MaxMessageSize {
			t.Fatalf("accepted out-of-bounds message: %d bytes", len(raw))
		}
	})
}
