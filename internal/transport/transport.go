// Package transport carries the DNS exchange over encrypted transports: DoT
// (RFC 7858 — TLS with the RFC 1035 two-octet stream framing) and DoH
// (RFC 8484 — DNS wire format in HTTP GET ?dns= base64url parameters or POST
// application/dns-message bodies), next to the plain UDP/TCP paths dnsio
// already provides.
//
// Two families of implementations live here:
//
//   - Simulated: SimDoT and SimDoH wrap dnsio.SimTransport and route through
//     the exact fabric endpoints the plain transports use, so per-endpoint
//     chaos draws — hashed from (seed, endpoint, sequence) — are bit-identical
//     across transports and a sweep's verdicts never depend on the transport.
//     Encryption shows up only as modeled cost on the virtual clock: a
//     connection handshake booked once per server (amortized across that
//     server's probes) and a per-message record/header overhead.
//
//   - Real sockets: NetDoT dials TLS and frames over the session, NetDoH
//     speaks RFC 8484 against any HTTP endpoint; DoTServer and DoHHandler are
//     the serving sides, adapting any dnsio.Responder. urwatchd mounts
//     DoHHandler at /dns-query, and cmd/dnsq -transport exercises all four.
//
// Failure classification stays in dnsio: TLS handshake failures wrap
// dnsio.ErrTLSHandshake (permanent — fail fast), non-200 DoH statuses wrap
// dnsio.ErrHTTPStatus (transient — retried, breaker-visible).
package transport

import (
	"fmt"
	"net/netip"

	"repro/internal/dnsio"
	"repro/internal/simnet"
)

// Kind names a wire transport for the DNS exchange.
type Kind string

// The transports a sweep or client can select.
const (
	KindUDP Kind = "udp" // plain datagrams with TC fallback to TCP
	KindTCP Kind = "tcp" // plain stream framing for every query
	KindDoT Kind = "dot" // RFC 7858 DNS over TLS
	KindDoH Kind = "doh" // RFC 8484 DNS over HTTPS
)

// SweepKinds are the transports urhunter sweeps over; plain TCP is a
// fallback mechanism, not a sweep dimension.
var SweepKinds = []Kind{KindUDP, KindDoT, KindDoH}

// ParseKind validates a -transport flag value. The empty string selects UDP,
// keeping journals and configs from before the transport dimension valid.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case "", KindUDP:
		return KindUDP, nil
	case KindTCP:
		return KindTCP, nil
	case KindDoT:
		return KindDoT, nil
	case KindDoH:
		return KindDoH, nil
	}
	return "", fmt.Errorf("transport: unknown kind %q (want udp, tcp, dot, or doh)", s)
}

// String returns the flag-form name.
func (k Kind) String() string {
	if k == "" {
		return string(KindUDP)
	}
	return string(k)
}

// Via returns the dnsio.Via* label a server sees for queries carried by this
// kind.
func (k Kind) Via() string {
	switch k {
	case KindTCP:
		return dnsio.ViaTCP
	case KindDoT:
		return dnsio.ViaDoT
	case KindDoH:
		return dnsio.ViaDoH
	}
	return dnsio.ViaUDP
}

// NewSim builds the simulated transport for a kind over the fabric. UDP and
// TCP share dnsio.SimTransport (the tcp flag per exchange picks the reliable
// endpoint); DoT and DoH layer modeled crypto costs on top of it.
func NewSim(k Kind, f *simnet.Fabric, src netip.Addr) (dnsio.Transport, error) {
	switch k {
	case "", KindUDP, KindTCP:
		return &dnsio.SimTransport{Fabric: f, Src: src}, nil
	case KindDoT:
		return NewSimDoT(f, src), nil
	case KindDoH:
		return NewSimDoH(f, src), nil
	}
	return nil, fmt.Errorf("transport: no simulated transport for kind %q", k)
}
