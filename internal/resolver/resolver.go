// Package resolver implements iterative DNS resolution over the simulated
// delegation hierarchy, plus the worldwide open-resolver population URHunter
// uses to collect geo-distributed correct records (§4.1). A Recursive walks
// root → TLD → authoritative exactly like a real resolver: it follows
// referrals, uses glue, resolves glueless NS hosts out-of-band, chases CNAME
// chains, and caches positive and negative answers by TTL.
package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"repro/internal/dns"
	"repro/internal/dnsio"
)

// Limits for the iteration loop.
const (
	maxReferralHops = 24
	maxCNAMEHops    = 8
	maxGluelessNS   = 4
	defaultNegTTL   = 300
)

// Errors surfaced by resolution.
var (
	ErrNoServers = errors.New("resolver: no servers to query")
	ErrLame      = errors.New("resolver: lame delegation or dead servers")
	ErrLoop      = errors.New("resolver: referral or CNAME loop")
)

// Recursive is an iterative resolver rooted at the given root server IPs.
type Recursive struct {
	client *dnsio.Client
	roots  []netip.Addr

	cacheMu sync.Mutex
	cache   map[dns.Question]cacheEntry
	// CacheLimit bounds the cache size; 0 disables caching.
	CacheLimit int
	// now is injectable for TTL tests.
	now func() time.Time
}

type cacheEntry struct {
	msg     *dns.Message
	expires time.Time
}

// NewRecursive builds a resolver that queries through client starting at the
// given roots.
func NewRecursive(client *dnsio.Client, roots []netip.Addr) *Recursive {
	return &Recursive{
		client:     client,
		roots:      roots,
		cache:      make(map[dns.Question]cacheEntry),
		CacheLimit: 1 << 16,
		now:        time.Now,
	}
}

// LookupA resolves a name to its IPv4 addresses.
func (r *Recursive) LookupA(ctx context.Context, name dns.Name) ([]netip.Addr, error) {
	msg, err := r.Resolve(ctx, name, dns.TypeA)
	if err != nil {
		return nil, err
	}
	var out []netip.Addr
	for _, rr := range msg.AnswersOfType(dns.TypeA) {
		out = append(out, rr.Data.(*dns.A).Addr)
	}
	return out, nil
}

// LookupTXT resolves a name's TXT strings (each record joined).
func (r *Recursive) LookupTXT(ctx context.Context, name dns.Name) ([]string, error) {
	msg, err := r.Resolve(ctx, name, dns.TypeTXT)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, rr := range msg.AnswersOfType(dns.TypeTXT) {
		out = append(out, rr.Data.(*dns.TXT).Joined())
	}
	return out, nil
}

// Resolve performs full iterative resolution of (name, qtype) and returns a
// response message with the complete CNAME chain in the answer section.
func (r *Recursive) Resolve(ctx context.Context, name dns.Name, qtype dns.Type) (*dns.Message, error) {
	return r.resolve(ctx, name, qtype, 0)
}

func (r *Recursive) resolve(ctx context.Context, name dns.Name, qtype dns.Type, depth int) (*dns.Message, error) {
	if depth > maxGluelessNS {
		return nil, fmt.Errorf("%w: NS resolution too deep", ErrLoop)
	}
	q := dns.Question{Name: name, Type: qtype, Class: dns.ClassINET}
	if msg, ok := r.cacheGet(q); ok {
		return msg, nil
	}

	final := &dns.Message{
		Header:    dns.Header{Response: true, RecursionAvailable: true},
		Questions: []dns.Question{q},
	}
	target := name
	for cnameHop := 0; cnameHop <= maxCNAMEHops; cnameHop++ {
		resp, err := r.iterate(ctx, target, qtype, depth)
		if err != nil {
			return nil, err
		}
		final.Header.RCode = resp.Header.RCode
		final.Answers = append(final.Answers, resp.Answers...)
		final.Authority = resp.Authority

		// Done unless the terminal answer is an unchased CNAME.
		last := lastCNAMETarget(resp.Answers, qtype)
		if last == dns.Root {
			r.cachePut(q, final)
			return final, nil
		}
		target = last
	}
	return nil, fmt.Errorf("%w: CNAME chain too long for %s", ErrLoop, name.String())
}

// lastCNAMETarget returns the target of the trailing CNAME if the answer
// section ends in an unresolved alias, or the root name when the chain is
// complete.
func lastCNAMETarget(answers []dns.RR, qtype dns.Type) dns.Name {
	if qtype == dns.TypeCNAME || len(answers) == 0 {
		return dns.Root
	}
	last := answers[len(answers)-1]
	if last.Type() != dns.TypeCNAME {
		return dns.Root
	}
	return last.Data.(*dns.CNAME).Target
}

// iterate walks the delegation tree for one owner name (no CNAME chasing
// across calls; in-server chains are accepted as returned).
func (r *Recursive) iterate(ctx context.Context, name dns.Name, qtype dns.Type, depth int) (*dns.Message, error) {
	servers := append([]netip.Addr(nil), r.roots...)
	if len(servers) == 0 {
		return nil, ErrNoServers
	}
	for hop := 0; hop < maxReferralHops; hop++ {
		resp, err := r.queryAny(ctx, servers, name, qtype)
		if err != nil {
			return nil, err
		}
		switch {
		case resp.Header.RCode == dns.RCodeNXDomain,
			resp.Header.RCode == dns.RCodeSuccess && len(resp.Answers) > 0,
			resp.Header.RCode == dns.RCodeSuccess && len(resp.Answers) == 0 && !isReferral(resp):
			return resp, nil
		case isReferral(resp):
			next, err := r.serversFromReferral(ctx, resp, depth)
			if err != nil {
				return nil, err
			}
			servers = next
		default:
			// REFUSED / SERVFAIL from the zone: surface as-is.
			return resp, nil
		}
	}
	return nil, fmt.Errorf("%w: too many referrals for %s", ErrLoop, name.String())
}

// isReferral reports whether resp is a downward referral.
func isReferral(resp *dns.Message) bool {
	if resp.Header.Authoritative || len(resp.Answers) > 0 {
		return false
	}
	for _, rr := range resp.Authority {
		if rr.Type() == dns.TypeNS {
			return true
		}
	}
	return false
}

// serversFromReferral extracts nameserver addresses from a referral, using
// glue when present and resolving glueless NS hosts otherwise.
func (r *Recursive) serversFromReferral(ctx context.Context, resp *dns.Message, depth int) ([]netip.Addr, error) {
	var addrs []netip.Addr
	glue := make(map[dns.Name][]netip.Addr)
	for _, rr := range resp.Additional {
		if a, ok := rr.Data.(*dns.A); ok {
			glue[rr.Name] = append(glue[rr.Name], a.Addr)
		}
	}
	var glueless []dns.Name
	for _, rr := range resp.Authority {
		ns, ok := rr.Data.(*dns.NS)
		if !ok {
			continue
		}
		if g, ok := glue[ns.Host]; ok {
			addrs = append(addrs, g...)
		} else {
			glueless = append(glueless, ns.Host)
		}
	}
	// Resolve glueless NS hosts only if glue gave us nothing.
	if len(addrs) == 0 {
		for _, host := range glueless {
			sub, err := r.resolve(ctx, host, dns.TypeA, depth+1)
			if err != nil {
				continue
			}
			for _, rr := range sub.AnswersOfType(dns.TypeA) {
				addrs = append(addrs, rr.Data.(*dns.A).Addr)
			}
			if len(addrs) > 0 {
				break
			}
		}
	}
	if len(addrs) == 0 {
		return nil, ErrLame
	}
	return addrs, nil
}

// queryAny tries each server until one answers.
func (r *Recursive) queryAny(ctx context.Context, servers []netip.Addr, name dns.Name, qtype dns.Type) (*dns.Message, error) {
	var lastErr error = ErrLame
	for _, s := range servers {
		resp, err := r.client.Query(ctx, netip.AddrPortFrom(s, dnsio.DNSPort), name, qtype)
		if err != nil {
			lastErr = err
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("%w: %v", ErrLame, lastErr)
}

func (r *Recursive) cacheGet(q dns.Question) (*dns.Message, bool) {
	if r.CacheLimit == 0 {
		return nil, false
	}
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	e, ok := r.cache[q]
	if !ok || r.now().After(e.expires) {
		if ok {
			delete(r.cache, q)
		}
		return nil, false
	}
	return e.msg, true
}

func (r *Recursive) cachePut(q dns.Question, msg *dns.Message) {
	if r.CacheLimit == 0 {
		return
	}
	ttl := messageTTL(msg)
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	if len(r.cache) >= r.CacheLimit {
		// Drop an arbitrary entry; good enough for a measurement cache.
		for k := range r.cache {
			delete(r.cache, k)
			break
		}
	}
	r.cache[q] = cacheEntry{msg: msg, expires: r.now().Add(time.Duration(ttl) * time.Second)}
}

// messageTTL picks the cache lifetime: the minimum answer TTL, or the SOA
// minimum for negative responses.
func messageTTL(msg *dns.Message) uint32 {
	if len(msg.Answers) == 0 {
		for _, rr := range msg.Authority {
			if soa, ok := rr.Data.(*dns.SOA); ok {
				if soa.Minimum < rr.TTL {
					return soa.Minimum
				}
				return rr.TTL
			}
		}
		return defaultNegTTL
	}
	ttl := msg.Answers[0].TTL
	for _, rr := range msg.Answers[1:] {
		if rr.TTL < ttl {
			ttl = rr.TTL
		}
	}
	return ttl
}

// CacheSize returns the number of cached questions.
func (r *Recursive) CacheSize() int {
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	return len(r.cache)
}
