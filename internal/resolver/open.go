package resolver

import (
	"context"
	"fmt"
	"net/netip"

	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/ipam"
	"repro/internal/simnet"
)

// OpenResolver is a recursive resolver exposed as a DNS service on the
// fabric — the kind of worldwide vantage point URHunter leans on to collect
// geo-distributed correct records. Its fabric address doubles as the client
// source IP for upstream queries, so geo-aware authoritative servers (CDN
// fronts) answer it with the edge records of its region.
type OpenResolver struct {
	Addr    netip.Addr
	Country string
	rec     *Recursive
}

// HandleQuery implements dnsio.Responder: recursion-desired queries are
// resolved iteratively; others are refused.
func (o *OpenResolver) HandleQuery(_ netip.Addr, q *dns.Message) *dns.Message {
	r := q.Reply()
	r.Header.RecursionAvailable = true
	if !q.Header.RecursionDesired || len(q.Questions) != 1 {
		r.Header.RCode = dns.RCodeRefused
		return r
	}
	resolved, err := o.rec.Resolve(context.Background(), q.Question().Name, q.Question().Type)
	if err != nil {
		r.Header.RCode = dns.RCodeServFail
		return r
	}
	r.Header.RCode = resolved.Header.RCode
	r.Answers = resolved.Answers
	r.Authority = resolved.Authority
	return r
}

// Resolver exposes the underlying recursive engine (tests and the correct-
// record collector may call it directly instead of via the wire).
func (o *OpenResolver) Resolver() *Recursive { return o.rec }

// NewOpenResolver creates an open resolver at addr, resolving from roots,
// and attaches it to the fabric.
func NewOpenResolver(fabric *simnet.Fabric, addr netip.Addr, country string, roots []netip.Addr) (*OpenResolver, error) {
	client := dnsio.NewClient(&dnsio.SimTransport{Fabric: fabric, Src: addr})
	client.Retries = 1
	o := &OpenResolver{
		Addr:    addr,
		Country: country,
		rec:     NewRecursive(client, roots),
	}
	if _, err := dnsio.AttachSim(fabric, addr, o); err != nil {
		return nil, err
	}
	return o, nil
}

// Pool is a set of open resolvers spread across countries.
type Pool struct {
	Resolvers []*OpenResolver
}

// NewPool creates n open resolvers on the fabric, spread round-robin across
// ipam.Countries, each hosted in a per-country "ISP" AS.
func NewPool(fabric *simnet.Fabric, ipdb *ipam.DB, roots []netip.Addr, n int) (*Pool, error) {
	p := &Pool{}
	countryASN := make(map[string]ipam.ASN)
	for i := 0; i < n; i++ {
		country := ipam.Countries[i%len(ipam.Countries)]
		asn, ok := countryASN[country]
		if !ok {
			asn = ipdb.RegisterAS(fmt.Sprintf("ISP-%s-RESOLVERS", country), country, 1)
			countryASN[country] = asn
		}
		addr, err := ipdb.Allocate(asn)
		if err != nil {
			return nil, err
		}
		o, err := NewOpenResolver(fabric, addr, country, roots)
		if err != nil {
			return nil, err
		}
		p.Resolvers = append(p.Resolvers, o)
	}
	return p, nil
}

// ByCountry groups the pool's resolvers by country code.
func (p *Pool) ByCountry() map[string][]*OpenResolver {
	out := make(map[string][]*OpenResolver)
	for _, o := range p.Resolvers {
		out[o.Country] = append(out[o.Country], o)
	}
	return out
}
