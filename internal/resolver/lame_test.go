package resolver

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/registry"
	"repro/internal/simnet"

	"repro/internal/ipam"
)

// TestLameDelegation: a domain delegated to nameservers that do not exist
// must surface ErrLame rather than hang or panic.
func TestLameDelegation(t *testing.T) {
	fabric := simnet.New(2)
	ipdb := ipam.New()
	reg, err := registry.New(fabric, ipdb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.CreateTLD("com", 1); err != nil {
		t.Fatal(err)
	}
	// Delegation with glue pointing at an unbound IP.
	deadNS := netip.MustParseAddr("203.0.113.250")
	if err := reg.SetDelegation("lame.com", []dns.Name{"ns1.lame.com"},
		map[dns.Name]netip.Addr{"ns1.lame.com": deadNS}, time.Now()); err != nil {
		t.Fatal(err)
	}
	src := ipdb.MustAllocate(ipdb.RegisterAS("CLIENT", "US", 1))
	client := dnsio.NewClient(&dnsio.SimTransport{Fabric: fabric, Src: src})
	client.Retries = 0
	rec := NewRecursive(client, []netip.Addr{reg.RootAddr()})

	_, err = rec.Resolve(context.Background(), "lame.com", dns.TypeA)
	if err == nil {
		t.Fatal("lame delegation resolved")
	}
	if !errors.Is(err, ErrLame) {
		t.Errorf("err = %v, want ErrLame", err)
	}
}

// TestGluelessUnresolvableNS: delegation to a hostname that itself cannot be
// resolved must also fail cleanly.
func TestGluelessUnresolvableNS(t *testing.T) {
	fabric := simnet.New(2)
	ipdb := ipam.New()
	reg, err := registry.New(fabric, ipdb, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tld := range []dns.Name{"com", "net"} {
		if err := reg.CreateTLD(tld, 1); err != nil {
			t.Fatal(err)
		}
	}
	// NS host lives under an unregistered domain: glueless and unresolvable.
	if err := reg.SetDelegation("glueless.com", []dns.Name{"ns1.ghost-host.net"},
		nil, time.Now()); err != nil {
		t.Fatal(err)
	}
	src := ipdb.MustAllocate(ipdb.RegisterAS("CLIENT", "US", 1))
	client := dnsio.NewClient(&dnsio.SimTransport{Fabric: fabric, Src: src})
	client.Retries = 0
	rec := NewRecursive(client, []netip.Addr{reg.RootAddr()})

	if _, err := rec.Resolve(context.Background(), "glueless.com", dns.TypeA); err == nil {
		t.Fatal("glueless unresolvable NS resolved")
	}
}

// TestMessageTTLSelection covers cache-lifetime derivation.
func TestMessageTTLSelection(t *testing.T) {
	pos := &dns.Message{Answers: []dns.RR{
		dns.MustParseRR("a.test 120 IN A 192.0.2.1"),
		dns.MustParseRR("a.test 60 IN A 192.0.2.2"),
	}}
	if got := messageTTL(pos); got != 60 {
		t.Errorf("positive TTL = %d, want min 60", got)
	}
	neg := &dns.Message{Authority: []dns.RR{
		dns.MustParseRR("test 3600 IN SOA ns.test h.test 1 2 3 4 300"),
	}}
	if got := messageTTL(neg); got != 300 {
		t.Errorf("negative TTL = %d, want SOA minimum 300", got)
	}
	// SOA minimum above the record TTL: the record TTL caps it.
	neg2 := &dns.Message{Authority: []dns.RR{
		dns.MustParseRR("test 100 IN SOA ns.test h.test 1 2 3 4 999"),
	}}
	if got := messageTTL(neg2); got != 100 {
		t.Errorf("capped negative TTL = %d", got)
	}
	empty := &dns.Message{}
	if got := messageTTL(empty); got != defaultNegTTL {
		t.Errorf("default TTL = %d", got)
	}
}
