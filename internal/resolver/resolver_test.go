package resolver

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"repro/internal/authority"
	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/ipam"
	"repro/internal/registry"
	"repro/internal/simnet"
	"repro/internal/zone"
)

// testWorld builds root -> com -> (example.com, hoster.net) with a web of
// records exercising CNAME chains, glueless NS, and negative answers.
type testWorld struct {
	fabric *simnet.Fabric
	ipdb   *ipam.DB
	reg    *registry.Registry
	rec    *Recursive
	site   netip.Addr
}

func buildWorld(t *testing.T) *testWorld {
	t.Helper()
	w := &testWorld{fabric: simnet.New(1), ipdb: ipam.New()}
	var err error
	w.reg, err = registry.New(w.fabric, w.ipdb, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tld := range []dns.Name{"com", "net"} {
		if err := w.reg.CreateTLD(tld, 1); err != nil {
			t.Fatal(err)
		}
	}
	hostASN := w.ipdb.RegisterAS("HOSTER", "US", 1)
	nsAddr := w.ipdb.MustAllocate(hostASN)
	w.site = w.ipdb.MustAllocate(hostASN)

	srv := authority.NewServer()
	// hoster.net zone: the provider's own infrastructure (glueless target).
	hz := zone.New("hoster.net")
	hz.MustAddRR("hoster.net 3600 IN SOA ns1.hoster.net h.hoster.net 1 7200 3600 1209600 300")
	hz.MustAddRR("ns1.hoster.net 3600 IN A " + nsAddr.String())
	if err := srv.AddZone(hz); err != nil {
		t.Fatal(err)
	}
	// example.com zone.
	ez := zone.New("example.com")
	ez.MustAddRR("example.com 3600 IN SOA ns1.hoster.net h.hoster.net 1 7200 3600 1209600 300")
	ez.MustAddRR("example.com 300 IN A " + w.site.String())
	ez.MustAddRR(`example.com 300 IN TXT "v=spf1 -all"`)
	ez.MustAddRR("www.example.com 300 IN CNAME example.com")
	ez.MustAddRR("ext.example.com 300 IN CNAME target.hoster.net")
	if err := srv.AddZone(ez); err != nil {
		t.Fatal(err)
	}
	hz.MustAddRR("target.hoster.net 300 IN A " + w.site.String())

	if _, err := dnsio.AttachSim(w.fabric, nsAddr, srv); err != nil {
		t.Fatal(err)
	}
	// Delegate example.com with glueless NS (forces NS A resolution via
	// hoster.net, which IS glued at the net TLD).
	if err := w.reg.SetDelegation("example.com", []dns.Name{"ns1.hoster.net"}, nil, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := w.reg.SetDelegation("hoster.net", []dns.Name{"ns1.hoster.net"},
		map[dns.Name]netip.Addr{"ns1.hoster.net": nsAddr}, time.Now()); err != nil {
		t.Fatal(err)
	}

	clientASN := w.ipdb.RegisterAS("EYEBALL", "DE", 1)
	src := w.ipdb.MustAllocate(clientASN)
	client := dnsio.NewClient(&dnsio.SimTransport{Fabric: w.fabric, Src: src})
	client.SeedIDs(11)
	w.rec = NewRecursive(client, []netip.Addr{w.reg.RootAddr()})
	return w
}

func TestResolveA(t *testing.T) {
	w := buildWorld(t)
	addrs, err := w.rec.LookupA(context.Background(), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != w.site {
		t.Errorf("addrs = %v, want %v", addrs, w.site)
	}
}

func TestResolveTXT(t *testing.T) {
	w := buildWorld(t)
	txts, err := w.rec.LookupTXT(context.Background(), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(txts) != 1 || txts[0] != "v=spf1 -all" {
		t.Errorf("txts = %v", txts)
	}
}

func TestResolveCNAMEInZone(t *testing.T) {
	w := buildWorld(t)
	msg, err := w.rec.Resolve(context.Background(), "www.example.com", dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Answers) != 2 {
		t.Fatalf("answers: %v", msg.Answers)
	}
	if msg.Answers[0].Type() != dns.TypeCNAME || msg.Answers[1].Type() != dns.TypeA {
		t.Errorf("chain: %v", msg.Answers)
	}
}

func TestResolveCNAMEAcrossZones(t *testing.T) {
	w := buildWorld(t)
	msg, err := w.rec.Resolve(context.Background(), "ext.example.com", dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	// The server hosts both zones so it chases in-server; either way the
	// final answer must include the target A record.
	got := msg.AnswersOfType(dns.TypeA)
	if len(got) != 1 || got[0].Data.(*dns.A).Addr != w.site {
		t.Errorf("answers: %v", msg.Answers)
	}
}

func TestResolveNXDomain(t *testing.T) {
	w := buildWorld(t)
	msg, err := w.rec.Resolve(context.Background(), "missing.example.com", dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Header.RCode != dns.RCodeNXDomain {
		t.Errorf("rcode = %v", msg.Header.RCode)
	}
}

func TestResolveUnregisteredDomain(t *testing.T) {
	w := buildWorld(t)
	msg, err := w.rec.Resolve(context.Background(), "nosuchdomain.com", dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Header.RCode != dns.RCodeNXDomain {
		t.Errorf("rcode = %v", msg.Header.RCode)
	}
}

func TestCacheHitAvoidsNetwork(t *testing.T) {
	w := buildWorld(t)
	if _, err := w.rec.LookupA(context.Background(), "example.com"); err != nil {
		t.Fatal(err)
	}
	before := w.fabric.Exchanges()
	if _, err := w.rec.LookupA(context.Background(), "example.com"); err != nil {
		t.Fatal(err)
	}
	if w.fabric.Exchanges() != before {
		t.Errorf("cache miss: %d exchanges after warm query", w.fabric.Exchanges()-before)
	}
	if w.rec.CacheSize() == 0 {
		t.Error("cache empty")
	}
}

func TestCacheExpiry(t *testing.T) {
	w := buildWorld(t)
	fake := time.Now()
	w.rec.now = func() time.Time { return fake }
	if _, err := w.rec.LookupA(context.Background(), "example.com"); err != nil {
		t.Fatal(err)
	}
	before := w.fabric.Exchanges()
	fake = fake.Add(10 * time.Minute) // past the 300s record TTL
	if _, err := w.rec.LookupA(context.Background(), "example.com"); err != nil {
		t.Fatal(err)
	}
	if w.fabric.Exchanges() == before {
		t.Error("expired entry served from cache")
	}
}

func TestCacheDisabled(t *testing.T) {
	w := buildWorld(t)
	w.rec.CacheLimit = 0
	if _, err := w.rec.LookupA(context.Background(), "example.com"); err != nil {
		t.Fatal(err)
	}
	if w.rec.CacheSize() != 0 {
		t.Error("cache populated while disabled")
	}
}

func TestNoRootsError(t *testing.T) {
	w := buildWorld(t)
	empty := NewRecursive(w.rec.client, nil)
	if _, err := empty.Resolve(context.Background(), "example.com", dns.TypeA); err == nil {
		t.Error("expected error with no roots")
	}
}

func TestOpenResolverOverWire(t *testing.T) {
	w := buildWorld(t)
	oAddr := w.ipdb.MustAllocate(w.ipdb.RegisterAS("OPENRES", "JP", 1))
	o, err := NewOpenResolver(w.fabric, oAddr, "JP", []netip.Addr{w.reg.RootAddr()})
	if err != nil {
		t.Fatal(err)
	}
	if o.Resolver() == nil {
		t.Fatal("nil inner resolver")
	}
	clientSrc := w.ipdb.MustAllocate(w.ipdb.RegisterAS("CLIENT2", "FR", 1))
	c := dnsio.NewClient(&dnsio.SimTransport{Fabric: w.fabric, Src: clientSrc})
	resp, err := c.Query(context.Background(), netip.AddrPortFrom(oAddr, dnsio.DNSPort),
		"www.example.com", dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.RecursionAvailable {
		t.Error("RA not set")
	}
	if got := resp.AnswersOfType(dns.TypeA); len(got) != 1 || got[0].Data.(*dns.A).Addr != w.site {
		t.Errorf("answers: %v", resp.Answers)
	}
	// Iterative-only query is refused.
	q := dns.NewQuery(5, "example.com", dns.TypeA)
	q.Header.RecursionDesired = false
	resp, err = c.Exchange(context.Background(), netip.AddrPortFrom(oAddr, dnsio.DNSPort), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dns.RCodeRefused {
		t.Errorf("rcode = %v, want REFUSED", resp.Header.RCode)
	}
}

func TestPoolSpreadsCountries(t *testing.T) {
	w := buildWorld(t)
	pool, err := NewPool(w.fabric, w.ipdb, []netip.Addr{w.reg.RootAddr()}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Resolvers) != 60 {
		t.Fatalf("pool size = %d", len(pool.Resolvers))
	}
	byCountry := pool.ByCountry()
	if len(byCountry) != 30 {
		t.Errorf("countries = %d, want 30", len(byCountry))
	}
	for c, rs := range byCountry {
		if len(rs) != 2 {
			t.Errorf("country %s has %d resolvers", c, len(rs))
		}
	}
	// Every pool member can resolve.
	addrs, err := pool.Resolvers[7].Resolver().LookupA(context.Background(), "example.com")
	if err != nil || len(addrs) != 1 {
		t.Errorf("pool member resolution: %v %v", addrs, err)
	}
}
