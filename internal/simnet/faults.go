package simnet

import (
	"encoding/binary"
	"sync/atomic"
	"time"
)

// FaultProfile describes the misbehaviour of one endpoint, layered on top of
// the fabric-wide knobs (SetLossRate, SetBaseRTT). Real-world sweeps meet
// nameservers that are slow, lossy, flapping, or actively hostile; a profile
// lets a chaos run model each of those per server.
//
// Every probabilistic draw is a pure hash of (fabric seed, endpoint,
// per-endpoint exchange sequence number), so a chaos run is reproducible: as
// long as the order of exchanges *to one endpoint* is stable — the collector
// sweeps each server from a single worker — the same faults fire at the same
// points no matter how goroutines interleave across endpoints.
type FaultProfile struct {
	// LossRate is the per-endpoint probability in [0,1) that a datagram
	// exchange is dropped, independent of the fabric-wide loss rate.
	LossRate float64
	// ExtraRTT is added to the virtual clock on every exchange, modelling a
	// slow or distant server.
	ExtraRTT time.Duration
	// ServFail short-circuits the handler and answers every DNS query with
	// SERVFAIL (the query echoed with QR set and RCODE=2).
	ServFail bool
	// GarbageRate is the probability that the response payload is replaced
	// with deterministic pseudo-random bytes.
	GarbageRate float64
	// TruncateResp cuts datagram responses to at most this many bytes
	// (mid-message, unlike the DNS TC mechanism), when > 0.
	TruncateResp int
	// WrongIDRate is the probability that the response's leading two bytes —
	// the DNS message ID — are corrupted, modelling an off-path spoofer.
	WrongIDRate float64
	// FlapPeriod/FlapDown model a flapping server on a deterministic duty
	// cycle: of every FlapPeriod exchanges, the first FlapDown are dropped.
	FlapPeriod int
	FlapDown   int
	// Blackhole silently drops every exchange (the client observes timeouts).
	Blackhole bool
}

// faultState pairs a profile with the per-endpoint exchange sequence counter
// that drives its deterministic draws.
type faultState struct {
	p   FaultProfile
	seq atomic.Int64
}

// SetFault installs (or replaces) a fault profile for one endpoint. The
// profile's sequence counter restarts at zero.
func (f *Fabric) SetFault(ep Endpoint, p FaultProfile) {
	f.writeMu.Lock()
	defer f.writeMu.Unlock()
	var old map[Endpoint]*faultState
	if mp := f.faults.Load(); mp != nil {
		old = *mp
	}
	next := make(map[Endpoint]*faultState, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[ep] = &faultState{p: p}
	f.faults.Store(&next)
}

// ClearFault removes the fault profile for one endpoint.
func (f *Fabric) ClearFault(ep Endpoint) {
	f.writeMu.Lock()
	defer f.writeMu.Unlock()
	mp := f.faults.Load()
	if mp == nil {
		return
	}
	old := *mp
	if _, ok := old[ep]; !ok {
		return
	}
	if len(old) == 1 {
		f.faults.Store(nil)
		return
	}
	next := make(map[Endpoint]*faultState, len(old)-1)
	for k, v := range old {
		if k != ep {
			next[k] = v
		}
	}
	f.faults.Store(&next)
}

// ClearFaults removes every installed fault profile.
func (f *Fabric) ClearFaults() {
	f.writeMu.Lock()
	defer f.writeMu.Unlock()
	f.faults.Store(nil)
}

// FaultFor returns the installed profile for an endpoint, if any.
func (f *Fabric) FaultFor(ep Endpoint) (FaultProfile, bool) {
	mp := f.faults.Load()
	if mp == nil {
		return FaultProfile{}, false
	}
	st, ok := (*mp)[ep]
	if !ok {
		return FaultProfile{}, false
	}
	return st.p, true
}

// faultOf returns the fault state for an endpoint on the hot path: one atomic
// pointer load, and a map lookup only when any profile is installed.
func (f *Fabric) faultOf(ep Endpoint) *faultState {
	mp := f.faults.Load()
	if mp == nil {
		return nil
	}
	return (*mp)[ep]
}

// AdvanceVirtual books extra time on the fabric's virtual clock — the client
// layer uses it to account retry backoff without real sleeps in-sim.
func (f *Fabric) AdvanceVirtual(d time.Duration) {
	if d > 0 {
		f.virtualRTT.Add(int64(d))
	}
}

// FaultDrops returns how many exchanges per-endpoint faults swallowed
// (blackhole, flap window, per-endpoint loss).
func (f *Fabric) FaultDrops() int64 { return f.faultDrops.Load() }

// SpoofsInjected returns how many responses had their DNS ID corrupted.
func (f *Fabric) SpoofsInjected() int64 { return f.spoofs.Load() }

// GarbageInjected returns how many responses were replaced with garbage.
func (f *Fabric) GarbageInjected() int64 { return f.garbage.Load() }

// Salts separating the independent draw streams of one profile.
const (
	saltLoss uint64 = iota + 1
	saltWrongID
	saltGarbage
	saltGarbageBytes
)

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// chaosHash derives the deterministic draw for (seed, endpoint, seq, salt).
func (f *Fabric) chaosHash(ep Endpoint, seq uint64, salt uint64) uint64 {
	a := ep.Addr.As16()
	x := uint64(f.seed)*0x9E3779B97F4A7C15 + salt
	x = mix64(x ^ binary.LittleEndian.Uint64(a[0:8]))
	x = mix64(x ^ binary.LittleEndian.Uint64(a[8:16]))
	x = mix64(x ^ uint64(ep.Port)<<32 ^ seq)
	return x
}

// chaosFloat maps a hash onto [0,1).
func chaosFloat(h uint64) float64 {
	return float64(h>>11) / float64(uint64(1)<<53)
}

// servFailEcho builds a SERVFAIL answer from the raw query: the query bytes
// echoed with QR set and RCODE=2. The fabric is byte-oriented, but the
// traffic it carries in this reproduction is DNS, so the 12-octet header
// layout is fair game for fault injection.
func servFailEcho(req []byte) []byte {
	if len(req) < 12 {
		return nil
	}
	out := make([]byte, len(req))
	copy(out, req)
	out[2] |= 0x80              // QR: this is a response
	out[3] = out[3]&0xF0 | 0x02 // RCODE: SERVFAIL
	return out
}

// garbageBytes derives a deterministic pseudo-random payload from one hash.
func garbageBytes(h uint64) []byte {
	out := make([]byte, 40)
	for i := 0; i < len(out); i += 8 {
		h = mix64(h)
		binary.LittleEndian.PutUint64(out[i:], h)
	}
	return out
}

// applyFault runs one exchange through an endpoint's fault profile. dispatch
// performs the real handler call; it is skipped when the profile swallows the
// request or answers SERVFAIL itself. lossy marks datagram semantics —
// per-endpoint loss and byte truncation only apply there, never on the
// reliable path.
func (f *Fabric) applyFault(st *faultState, ep Endpoint, req []byte, lossy bool, dispatch func() []byte) ([]byte, error) {
	seq := uint64(st.seq.Add(1) - 1)
	p := &st.p
	if p.ExtraRTT > 0 {
		f.virtualRTT.Add(int64(p.ExtraRTT))
	}
	if p.Blackhole {
		f.dropFault()
		return nil, ErrTimeout
	}
	if p.FlapPeriod > 0 && int(seq%uint64(p.FlapPeriod)) < p.FlapDown {
		f.dropFault()
		return nil, ErrTimeout
	}
	if lossy && p.LossRate > 0 && chaosFloat(f.chaosHash(ep, seq, saltLoss)) < p.LossRate {
		f.dropFault()
		return nil, ErrTimeout
	}
	var resp []byte
	if p.ServFail {
		resp = servFailEcho(req)
	} else {
		resp = dispatch()
	}
	if resp == nil {
		return nil, ErrTimeout
	}
	if p.WrongIDRate > 0 && len(resp) >= 2 && chaosFloat(f.chaosHash(ep, seq, saltWrongID)) < p.WrongIDRate {
		spoofed := make([]byte, len(resp))
		copy(spoofed, resp)
		spoofed[0] ^= 0xA5
		spoofed[1] ^= 0x5A
		resp = spoofed
		f.spoofs.Add(1)
	}
	if p.GarbageRate > 0 && chaosFloat(f.chaosHash(ep, seq, saltGarbage)) < p.GarbageRate {
		resp = garbageBytes(f.chaosHash(ep, seq, saltGarbageBytes))
		f.garbage.Add(1)
	}
	if lossy && p.TruncateResp > 0 && len(resp) > p.TruncateResp {
		resp = resp[:p.TruncateResp]
	}
	return resp, nil
}

// dropFault books one fault-injected drop on both drop counters.
func (f *Fabric) dropFault() {
	f.drops.Add(1)
	f.faultDrops.Add(1)
}
