package simnet

import (
	"bytes"
	"errors"
	"net/netip"
	"sync"
	"testing"
)

func ep(s string, port uint16) Endpoint {
	return Endpoint{Addr: netip.MustParseAddr(s), Port: port}
}

func echoHandler() Handler {
	return HandlerFunc(func(_ netip.Addr, p []byte) []byte {
		out := append([]byte("echo:"), p...)
		return out
	})
}

func TestListenExchange(t *testing.T) {
	f := New(1)
	dst := ep("192.0.2.1", 53)
	if err := f.Listen(dst, echoHandler()); err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("198.51.100.9")
	resp, err := f.Exchange(src, dst, []byte("hello"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("echo:hello")) {
		t.Errorf("resp = %q", resp)
	}
	if f.Exchanges() != 1 {
		t.Errorf("exchanges = %d", f.Exchanges())
	}
	if f.QueriesTo(dst.Addr) != 1 {
		t.Errorf("queriesTo = %d", f.QueriesTo(dst.Addr))
	}
}

func TestUnreachable(t *testing.T) {
	f := New(1)
	_, err := f.Exchange(netip.MustParseAddr("10.0.0.1"), ep("192.0.2.2", 53), []byte("x"), 0)
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want unreachable", err)
	}
}

func TestDoubleListenRejected(t *testing.T) {
	f := New(1)
	dst := ep("192.0.2.1", 53)
	if err := f.Listen(dst, echoHandler()); err != nil {
		t.Fatal(err)
	}
	if err := f.Listen(dst, echoHandler()); err == nil {
		t.Error("double Listen accepted")
	}
	if err := f.Listen(dst, nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestUnlisten(t *testing.T) {
	f := New(1)
	dst := ep("192.0.2.1", 53)
	if err := f.Listen(dst, echoHandler()); err != nil {
		t.Fatal(err)
	}
	if !f.Bound(dst) {
		t.Error("Bound = false after Listen")
	}
	f.Unlisten(dst)
	if f.Bound(dst) {
		t.Error("Bound = true after Unlisten")
	}
	if _, err := f.Exchange(netip.MustParseAddr("10.0.0.1"), dst, nil, 0); !errors.Is(err, ErrUnreachable) {
		t.Error("expected unreachable after Unlisten")
	}
}

func TestLossInjection(t *testing.T) {
	f := New(42)
	f.SetLossRate(0.5)
	dst := ep("192.0.2.1", 53)
	if err := f.Listen(dst, echoHandler()); err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("10.0.0.1")
	var ok, lost int
	for i := 0; i < 1000; i++ {
		_, err := f.Exchange(src, dst, []byte("x"), 0)
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrTimeout):
			lost++
		default:
			t.Fatalf("unexpected error %v", err)
		}
	}
	if lost < 400 || lost > 600 {
		t.Errorf("loss rate off: %d/1000 lost", lost)
	}
	if int64(lost) != f.Drops() {
		t.Errorf("Drops = %d, want %d", f.Drops(), lost)
	}
	// Reliable exchanges never drop.
	for i := 0; i < 100; i++ {
		if _, err := f.ExchangeReliable(src, dst, []byte("x")); err != nil {
			t.Fatalf("reliable exchange dropped: %v", err)
		}
	}
}

func TestResponseTruncationCap(t *testing.T) {
	f := New(1)
	dst := ep("192.0.2.1", 53)
	big := HandlerFunc(func(_ netip.Addr, _ []byte) []byte {
		return bytes.Repeat([]byte("A"), 1000)
	})
	if err := f.Listen(dst, big); err != nil {
		t.Fatal(err)
	}
	resp, err := f.Exchange(netip.MustParseAddr("10.0.0.1"), dst, nil, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 512 {
		t.Errorf("capped response = %d bytes", len(resp))
	}
	full, err := f.ExchangeReliable(netip.MustParseAddr("10.0.0.1"), dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 1000 {
		t.Errorf("reliable response = %d bytes", len(full))
	}
}

func TestHandlerNilMeansTimeout(t *testing.T) {
	f := New(1)
	dst := ep("192.0.2.1", 53)
	drop := HandlerFunc(func(_ netip.Addr, _ []byte) []byte { return nil })
	if err := f.Listen(dst, drop); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Exchange(netip.MustParseAddr("10.0.0.1"), dst, nil, 0); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want timeout", err)
	}
}

func TestConcurrentExchanges(t *testing.T) {
	f := New(1)
	dst := ep("192.0.2.1", 53)
	if err := f.Listen(dst, echoHandler()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers, per = 16, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := netip.AddrFrom4([4]byte{10, 0, 0, byte(w)})
			for i := 0; i < per; i++ {
				if _, err := f.Exchange(src, dst, []byte{byte(i)}, 0); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := f.Exchanges(); got != workers*per {
		t.Errorf("Exchanges = %d, want %d", got, workers*per)
	}
	if got := f.Destinations(); got != 1 {
		t.Errorf("Destinations = %d", got)
	}
}

func TestVirtualRTTAccumulates(t *testing.T) {
	f := New(1)
	dst := ep("192.0.2.1", 53)
	if err := f.Listen(dst, echoHandler()); err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("10.0.0.1")
	for i := 0; i < 10; i++ {
		if _, err := f.Exchange(src, dst, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if f.VirtualRTT() <= 0 {
		t.Error("VirtualRTT did not accumulate")
	}
}

func TestPacingTrackingOptIn(t *testing.T) {
	f := New(1)
	dst := ep("192.0.2.1", 53)
	if err := f.Listen(dst, echoHandler()); err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("10.0.0.1")

	// Pacing is off by default: no gap is ever recorded.
	for i := 0; i < 5; i++ {
		if _, err := f.Exchange(src, dst, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := f.MinSpacing(); ok {
		t.Error("MinSpacing recorded a gap with tracking disabled")
	}

	f.SetTrackPacing(true)
	for i := 0; i < 5; i++ {
		if _, err := f.Exchange(src, dst, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	gap, ok := f.MinSpacing()
	if !ok {
		t.Fatal("MinSpacing recorded nothing with tracking enabled")
	}
	if gap < 0 {
		t.Errorf("negative gap %v", gap)
	}
}

func TestConcurrentLossInjection(t *testing.T) {
	f := New(7)
	f.SetLossRate(0.3)
	f.SetTrackPacing(true)
	const workers, per = 8, 200
	dsts := make([]Endpoint, workers)
	for i := range dsts {
		dsts[i] = ep(netip.AddrFrom4([4]byte{192, 0, 2, byte(i + 1)}).String(), 53)
		if err := f.Listen(dsts[i], echoHandler()); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := netip.AddrFrom4([4]byte{10, 0, 0, byte(w)})
			for i := 0; i < per; i++ {
				_, err := f.Exchange(src, dsts[w], []byte{byte(i)}, 0)
				if err != nil && !errors.Is(err, ErrTimeout) {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := f.Exchanges(); got != workers*per {
		t.Errorf("Exchanges = %d, want %d", got, workers*per)
	}
	drops := f.Drops()
	if drops < workers*per/10 || drops > workers*per/2 {
		t.Errorf("drops = %d out of %d, outside plausible band for 30%% loss", drops, workers*per)
	}
	var perDst int64
	for _, d := range dsts {
		perDst += f.QueriesTo(d.Addr)
	}
	if perDst != workers*per {
		t.Errorf("sum of QueriesTo = %d, want %d", perDst, workers*per)
	}
}

func TestEndpointString(t *testing.T) {
	if got := ep("192.0.2.1", 53).String(); got != "192.0.2.1:53" {
		t.Errorf("Endpoint.String = %q", got)
	}
}
