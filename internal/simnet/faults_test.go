package simnet

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"time"
)

// faultFixture binds a recording echo handler on one endpoint.
type faultFixture struct {
	f     *Fabric
	ep    Endpoint
	src   netip.Addr
	calls *int
}

func newFaultFixture(t *testing.T, seed int64) *faultFixture {
	t.Helper()
	f := New(seed)
	ep := Endpoint{Addr: netip.MustParseAddr("192.0.2.1"), Port: 53}
	calls := 0
	h := HandlerFunc(func(_ netip.Addr, payload []byte) []byte {
		calls++
		out := make([]byte, len(payload))
		copy(out, payload)
		return out
	})
	if err := f.Listen(ep, h); err != nil {
		t.Fatal(err)
	}
	return &faultFixture{f: f, ep: ep, src: netip.MustParseAddr("198.51.100.9"), calls: &calls}
}

// query is a minimal well-formed DNS query header + one question.
func testQuery() []byte {
	return []byte{
		0xAB, 0xCD, // ID
		0x01, 0x00, // RD set, QR clear, RCODE 0
		0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // QDCOUNT=1
		0x01, 'x', 0x00, // name "x."
		0x00, 0x01, 0x00, 0x01, // type A, class IN
	}
}

func TestFaultBlackhole(t *testing.T) {
	fx := newFaultFixture(t, 1)
	fx.f.SetFault(fx.ep, FaultProfile{Blackhole: true})
	for i := 0; i < 5; i++ {
		if _, err := fx.f.Exchange(fx.src, fx.ep, testQuery(), 0); !errors.Is(err, ErrTimeout) {
			t.Fatalf("exchange %d: err = %v, want ErrTimeout", i, err)
		}
	}
	if *fx.calls != 0 {
		t.Errorf("handler invoked %d times through a blackhole", *fx.calls)
	}
	if fx.f.FaultDrops() != 5 || fx.f.Drops() != 5 {
		t.Errorf("drops = %d/%d, want 5/5", fx.f.FaultDrops(), fx.f.Drops())
	}
}

func TestFaultFlapDutyCycle(t *testing.T) {
	fx := newFaultFixture(t, 1)
	fx.f.SetFault(fx.ep, FaultProfile{FlapPeriod: 4, FlapDown: 2})
	var pattern []bool
	for i := 0; i < 8; i++ {
		_, err := fx.f.Exchange(fx.src, fx.ep, testQuery(), 0)
		pattern = append(pattern, err == nil)
	}
	want := []bool{false, false, true, true, false, false, true, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("flap pattern = %v, want %v", pattern, want)
		}
	}
}

func TestFaultServFailEcho(t *testing.T) {
	fx := newFaultFixture(t, 1)
	fx.f.SetFault(fx.ep, FaultProfile{ServFail: true})
	resp, err := fx.f.Exchange(fx.src, fx.ep, testQuery(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if *fx.calls != 0 {
		t.Error("handler invoked despite ServFail short-circuit")
	}
	if resp[0] != 0xAB || resp[1] != 0xCD {
		t.Errorf("ID not preserved: % x", resp[:2])
	}
	if resp[2]&0x80 == 0 {
		t.Error("QR bit not set")
	}
	if resp[3]&0x0F != 2 {
		t.Errorf("RCODE = %d, want SERVFAIL(2)", resp[3]&0x0F)
	}
}

func TestFaultWrongID(t *testing.T) {
	fx := newFaultFixture(t, 1)
	fx.f.SetFault(fx.ep, FaultProfile{WrongIDRate: 1})
	q := testQuery()
	resp, err := fx.f.Exchange(fx.src, fx.ep, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp[0] == q[0] && resp[1] == q[1] {
		t.Errorf("response ID % x not spoofed", resp[:2])
	}
	if fx.f.SpoofsInjected() != 1 {
		t.Errorf("spoofs = %d", fx.f.SpoofsInjected())
	}
}

func TestFaultGarbageAndTruncate(t *testing.T) {
	fx := newFaultFixture(t, 1)
	fx.f.SetFault(fx.ep, FaultProfile{GarbageRate: 1})
	q := testQuery()
	resp, err := fx.f.Exchange(fx.src, fx.ep, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(resp, q) {
		t.Error("garbage fault returned the genuine payload")
	}
	if fx.f.GarbageInjected() != 1 {
		t.Errorf("garbage counter = %d", fx.f.GarbageInjected())
	}

	fx.f.SetFault(fx.ep, FaultProfile{TruncateResp: 7})
	resp, err = fx.f.Exchange(fx.src, fx.ep, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 7 {
		t.Errorf("truncated response length = %d, want 7", len(resp))
	}
}

func TestFaultExtraRTTAndAdvanceVirtual(t *testing.T) {
	fx := newFaultFixture(t, 1)
	base := fx.f.VirtualRTT()
	fx.f.SetFault(fx.ep, FaultProfile{ExtraRTT: 150 * time.Millisecond})
	if _, err := fx.f.Exchange(fx.src, fx.ep, testQuery(), 0); err != nil {
		t.Fatal(err)
	}
	gained := fx.f.VirtualRTT() - base
	if gained < 150*time.Millisecond {
		t.Errorf("virtual clock gained %v, want >= 150ms + base RTT", gained)
	}
	before := fx.f.VirtualRTT()
	fx.f.AdvanceVirtual(time.Second)
	if fx.f.VirtualRTT()-before != time.Second {
		t.Error("AdvanceVirtual did not book the delay")
	}
	fx.f.AdvanceVirtual(-time.Hour) // negative advances are ignored
	if fx.f.VirtualRTT() != before+time.Second {
		t.Error("negative AdvanceVirtual moved the clock")
	}
}

// TestFaultLossDeterministicAcrossRuns pins the chaos-reproducibility
// contract: two fabrics with the same seed and profile drop exactly the same
// exchanges.
func TestFaultLossDeterministicAcrossRuns(t *testing.T) {
	run := func(seed int64) []bool {
		fx := newFaultFixture(t, seed)
		fx.f.SetFault(fx.ep, FaultProfile{LossRate: 0.5})
		var pattern []bool
		for i := 0; i < 200; i++ {
			_, err := fx.f.Exchange(fx.src, fx.ep, testQuery(), 0)
			pattern = append(pattern, err == nil)
		}
		return pattern
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverge at exchange %d", i)
		}
	}
	c := run(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical loss patterns")
	}
	ok := 0
	for _, v := range a {
		if v {
			ok++
		}
	}
	if ok < 60 || ok > 140 {
		t.Errorf("50%% loss delivered %d/200", ok)
	}
}

func TestFaultClearAndLookup(t *testing.T) {
	fx := newFaultFixture(t, 1)
	if _, ok := fx.f.FaultFor(fx.ep); ok {
		t.Error("profile reported before SetFault")
	}
	fx.f.SetFault(fx.ep, FaultProfile{Blackhole: true})
	if p, ok := fx.f.FaultFor(fx.ep); !ok || !p.Blackhole {
		t.Error("profile not installed")
	}
	fx.f.ClearFault(fx.ep)
	if _, ok := fx.f.FaultFor(fx.ep); ok {
		t.Error("profile survived ClearFault")
	}
	if _, err := fx.f.Exchange(fx.src, fx.ep, testQuery(), 0); err != nil {
		t.Errorf("exchange after ClearFault: %v", err)
	}
	fx.f.SetFault(fx.ep, FaultProfile{Blackhole: true})
	other := Endpoint{Addr: netip.MustParseAddr("192.0.2.2"), Port: 53}
	fx.f.SetFault(other, FaultProfile{ServFail: true})
	fx.f.ClearFaults()
	if _, ok := fx.f.FaultFor(fx.ep); ok {
		t.Error("profile survived ClearFaults")
	}
	if _, ok := fx.f.FaultFor(other); ok {
		t.Error("second profile survived ClearFaults")
	}
}

// TestFaultReliablePathSkipsLossAndTruncation: the reliable (TCP-semantics)
// exchange honours blackhole/servfail but never per-endpoint datagram loss
// or byte truncation.
func TestFaultReliablePathSkipsLossAndTruncation(t *testing.T) {
	fx := newFaultFixture(t, 1)
	fx.f.SetFault(fx.ep, FaultProfile{LossRate: 1, TruncateResp: 4})
	resp, err := fx.f.ExchangeReliable(fx.src, fx.ep, testQuery())
	if err != nil {
		t.Fatalf("reliable exchange hit datagram-only faults: %v", err)
	}
	if len(resp) == 4 {
		t.Error("reliable exchange truncated")
	}
	fx.f.SetFault(fx.ep, FaultProfile{Blackhole: true})
	if _, err := fx.f.ExchangeReliable(fx.src, fx.ep, testQuery()); !errors.Is(err, ErrTimeout) {
		t.Errorf("blackhole not applied on reliable path: %v", err)
	}
}
