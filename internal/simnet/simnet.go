// Package simnet provides the virtual IP network fabric that stands in for
// the live Internet in this reproduction. Services (authoritative
// nameservers, open resolvers, web servers, C2 endpoints) register handlers
// on (IP, port) pairs; clients exchange datagrams or reliable byte blobs with
// any registered endpoint.
//
// The fabric is deliberately synchronous — a request/response exchange is a
// function call — which lets the URHunter pipeline sweep millions of queries
// in-process while exercising exactly the same packed wire bytes that the
// real-socket transport in internal/dnsio moves over UDP/TCP.
//
// The fabric also keeps per-destination query accounting. The paper's ethics
// appendix (§A) commits to a bounded per-server query rate; the accounting
// lets tests assert the collector honours an analogous budget.
//
// Accounting is built for multi-core sweeps: totals are atomics, the
// per-destination books are sharded by destination address, and the service
// table is an immutable snapshot swapped on (rare) Listen/Unlisten — an
// exchange on the hot path takes exactly one shard lock and no global lock.
package simnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
)

// Handler consumes a request payload and returns a response payload.
// Returning nil means the service drops the request (client observes a
// timeout).
type Handler interface {
	ServePacket(src netip.Addr, payload []byte) []byte
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(src netip.Addr, payload []byte) []byte

// ServePacket implements Handler.
func (f HandlerFunc) ServePacket(src netip.Addr, payload []byte) []byte {
	return f(src, payload)
}

// Errors reported by the fabric.
var (
	ErrUnreachable = errors.New("simnet: destination unreachable")
	ErrTimeout     = errors.New("simnet: timeout (packet lost)")
)

// Endpoint is an (IP, port) service address.
type Endpoint struct {
	Addr netip.Addr
	Port uint16
}

// String renders the endpoint as host:port.
func (e Endpoint) String() string {
	return netip.AddrPortFrom(e.Addr, e.Port).String()
}

// statShards is the number of per-destination accounting shards. Power of
// two so the shard index is a mask away from the address hash.
const statShards = 64

// statShard keeps the per-destination books for one slice of the address
// space. The loss RNG lives here too, so loss injection never serializes
// exchanges to unrelated destinations.
type statShard struct {
	mu         sync.Mutex
	perDst     map[netip.Addr]int64
	lastQuery  map[netip.Addr]time.Time
	minSpacing time.Duration
	rng        *rand.Rand

	// Pad shards out to their own cache lines so neighbouring shard locks
	// don't false-share under heavy parallel sweeps.
	_ [24]byte
}

// Fabric is a virtual packet network. The zero value is not usable; call New.
type Fabric struct {
	// writeMu serializes the slow path (Listen/Unlisten/SetFault); the hot
	// path reads the immutable services and faults snapshots without any lock.
	writeMu  sync.Mutex
	services atomic.Pointer[map[Endpoint]Handler]
	// faults is the per-endpoint chaos configuration; nil when no profile is
	// installed, so fault-free sweeps pay one atomic load and no map lookup.
	faults atomic.Pointer[map[Endpoint]*faultState]

	lossBits    atomic.Uint64 // math.Float64bits of the loss probability
	baseRTT     atomic.Int64  // nanoseconds
	trackPacing atomic.Bool

	// seed also keys the per-endpoint fault draws (see faults.go).
	seed int64

	exchanges  atomic.Int64
	drops      atomic.Int64
	faultDrops atomic.Int64
	spoofs     atomic.Int64
	garbage    atomic.Int64
	virtualRTT atomic.Int64 // nanoseconds

	shards [statShards]statShard
}

// New creates an empty fabric. Seed makes loss and fault injection
// deterministic.
func New(seed int64) *Fabric {
	f := &Fabric{seed: seed}
	empty := make(map[Endpoint]Handler)
	f.services.Store(&empty)
	f.baseRTT.Store(int64(20 * time.Millisecond))
	for i := range f.shards {
		s := &f.shards[i]
		s.perDst = make(map[netip.Addr]int64)
		s.minSpacing = time.Duration(1<<63 - 1)
		s.rng = rand.New(rand.NewSource(seed + int64(i)*0x9E3779B9))
	}
	return f
}

// shardOf hashes a destination address onto its accounting shard.
func (f *Fabric) shardOf(addr netip.Addr) *statShard {
	a := addr.As16()
	// FNV-1a over the low octets, which carry all the entropy for both the
	// 4-in-6 mapped IPv4 space and sequentially-allocated IPv6 blocks.
	h := uint32(2166136261)
	for _, b := range a[8:] {
		h = (h ^ uint32(b)) * 16777619
	}
	return &f.shards[h&(statShards-1)]
}

// SetLossRate configures the probability in [0,1) that any exchange is
// dropped (client observes ErrTimeout).
func (f *Fabric) SetLossRate(p float64) {
	f.lossBits.Store(math.Float64bits(p))
}

// lossRate returns the configured loss probability.
func (f *Fabric) lossRate() float64 {
	return math.Float64frombits(f.lossBits.Load())
}

// SetBaseRTT configures the virtual round-trip time accounted per exchange.
func (f *Fabric) SetBaseRTT(d time.Duration) {
	f.baseRTT.Store(int64(d))
}

// BaseRTT returns the configured per-exchange virtual round-trip time. The
// encrypted transport layer derives its modeled handshake and record-framing
// costs from it.
func (f *Fabric) BaseRTT() time.Duration {
	return time.Duration(f.baseRTT.Load())
}

// SetTrackPacing enables per-destination inter-query gap tracking (see
// MinSpacing). Tracking costs a time.Now() per exchange, so it is off by
// default; pacing tests switch it on, the measurement sweep does not pay
// for it.
func (f *Fabric) SetTrackPacing(on bool) {
	f.trackPacing.Store(on)
}

// Listen registers a handler for an endpoint. It returns an error if the
// endpoint is already taken.
func (f *Fabric) Listen(ep Endpoint, h Handler) error {
	if h == nil {
		return errors.New("simnet: nil handler")
	}
	f.writeMu.Lock()
	defer f.writeMu.Unlock()
	old := *f.services.Load()
	if _, ok := old[ep]; ok {
		return fmt.Errorf("simnet: endpoint %s already bound", ep)
	}
	next := make(map[Endpoint]Handler, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[ep] = h
	f.services.Store(&next)
	return nil
}

// Unlisten removes a registered endpoint. Removing an unbound endpoint is a
// no-op.
func (f *Fabric) Unlisten(ep Endpoint) {
	f.writeMu.Lock()
	defer f.writeMu.Unlock()
	old := *f.services.Load()
	if _, ok := old[ep]; !ok {
		return
	}
	next := make(map[Endpoint]Handler, len(old)-1)
	for k, v := range old {
		if k != ep {
			next[k] = v
		}
	}
	f.services.Store(&next)
}

// Bound reports whether any service listens on the endpoint.
func (f *Fabric) Bound(ep Endpoint) bool {
	_, ok := (*f.services.Load())[ep]
	return ok
}

// Exchange performs a datagram request/response. maxResp > 0 truncates the
// response payload to that many bytes, modelling a UDP read buffer; the DNS
// layer on top handles the TC bit itself, so truncation here simply cuts the
// byte slice.
func (f *Fabric) Exchange(src netip.Addr, dst Endpoint, payload []byte, maxResp int) ([]byte, error) {
	h, ok := (*f.services.Load())[dst]
	dropped := f.account(dst.Addr, time.Duration(f.baseRTT.Load()), true)

	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, dst)
	}
	if dropped {
		f.drops.Add(1)
		return nil, ErrTimeout
	}
	var resp []byte
	if st := f.faultOf(dst); st != nil {
		var err error
		resp, err = f.applyFault(st, dst, payload, true, func() []byte {
			return h.ServePacket(src, payload)
		})
		if err != nil {
			return nil, err
		}
	} else {
		resp = h.ServePacket(src, payload)
	}
	if resp == nil {
		return nil, ErrTimeout
	}
	if maxResp > 0 && len(resp) > maxResp {
		resp = resp[:maxResp]
	}
	return resp, nil
}

// ExchangeReliable performs a stream-style exchange with no size cap and no
// loss, modelling TCP.
func (f *Fabric) ExchangeReliable(src netip.Addr, dst Endpoint, payload []byte) ([]byte, error) {
	h, ok := (*f.services.Load())[dst]
	f.account(dst.Addr, 2*time.Duration(f.baseRTT.Load()), false) // handshake + exchange

	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, dst)
	}
	var resp []byte
	if st := f.faultOf(dst); st != nil {
		var err error
		resp, err = f.applyFault(st, dst, payload, false, func() []byte {
			return h.ServePacket(src, payload)
		})
		if err != nil {
			return nil, err
		}
	} else {
		resp = h.ServePacket(src, payload)
	}
	if resp == nil {
		return nil, ErrTimeout
	}
	return resp, nil
}

// account books one exchange to dst and reports whether loss injection
// dropped it (lossy exchanges only). Totals are atomics; the per-destination
// count, the loss draw, and the optional pacing book all live under a single
// shard lock keyed by dst.
func (f *Fabric) account(dst netip.Addr, rtt time.Duration, lossy bool) (dropped bool) {
	f.exchanges.Add(1)
	f.virtualRTT.Add(int64(rtt))

	pacing := f.trackPacing.Load()
	var now time.Time
	if pacing {
		now = time.Now()
	}
	loss := 0.0
	if lossy {
		loss = f.lossRate()
	}

	s := f.shardOf(dst)
	s.mu.Lock()
	s.perDst[dst]++
	if loss > 0 {
		dropped = s.rng.Float64() < loss
	}
	if pacing {
		if s.lastQuery == nil {
			s.lastQuery = make(map[netip.Addr]time.Time)
		}
		if last, ok := s.lastQuery[dst]; ok {
			if gap := now.Sub(last); gap < s.minSpacing {
				s.minSpacing = gap
			}
		}
		s.lastQuery[dst] = now
	}
	s.mu.Unlock()
	return dropped
}

// Exchanges returns the total number of exchanges attempted.
func (f *Fabric) Exchanges() int64 {
	return f.exchanges.Load()
}

// Drops returns the number of exchanges dropped by loss injection.
func (f *Fabric) Drops() int64 {
	return f.drops.Load()
}

// QueriesTo returns how many exchanges targeted the given IP.
func (f *Fabric) QueriesTo(addr netip.Addr) int64 {
	s := f.shardOf(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.perDst[addr]
}

// VirtualRTT returns the accumulated virtual round-trip time across all
// exchanges — the wall-clock a real-network run of the same query plan would
// have spent waiting, which the benchmark harness reports alongside CPU time.
func (f *Fabric) VirtualRTT() time.Duration {
	return time.Duration(f.virtualRTT.Load())
}

// Destinations returns the number of distinct IPs that received traffic.
func (f *Fabric) Destinations() int {
	n := 0
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		n += len(s.perDst)
		s.mu.Unlock()
	}
	return n
}

// MinSpacing returns the smallest observed gap between two queries to the
// same destination, or (maxDuration, false) when pacing tracking was never
// enabled or no destination saw two queries. Pacing must be switched on with
// SetTrackPacing before the exchanges of interest.
func (f *Fabric) MinSpacing() (time.Duration, bool) {
	min := time.Duration(1<<63 - 1)
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		if s.minSpacing < min {
			min = s.minSpacing
		}
		s.mu.Unlock()
	}
	return min, min != time.Duration(1<<63-1)
}
