// Package simnet provides the virtual IP network fabric that stands in for
// the live Internet in this reproduction. Services (authoritative
// nameservers, open resolvers, web servers, C2 endpoints) register handlers
// on (IP, port) pairs; clients exchange datagrams or reliable byte blobs with
// any registered endpoint.
//
// The fabric is deliberately synchronous — a request/response exchange is a
// function call — which lets the URHunter pipeline sweep millions of queries
// in-process while exercising exactly the same packed wire bytes that the
// real-socket transport in internal/dnsio moves over UDP/TCP.
//
// The fabric also keeps per-destination query accounting. The paper's ethics
// appendix (§A) commits to a bounded per-server query rate; the accounting
// lets tests assert the collector honours an analogous budget.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"
)

// Handler consumes a request payload and returns a response payload.
// Returning nil means the service drops the request (client observes a
// timeout).
type Handler interface {
	ServePacket(src netip.Addr, payload []byte) []byte
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(src netip.Addr, payload []byte) []byte

// ServePacket implements Handler.
func (f HandlerFunc) ServePacket(src netip.Addr, payload []byte) []byte {
	return f(src, payload)
}

// Errors reported by the fabric.
var (
	ErrUnreachable = errors.New("simnet: destination unreachable")
	ErrTimeout     = errors.New("simnet: timeout (packet lost)")
)

// Endpoint is an (IP, port) service address.
type Endpoint struct {
	Addr netip.Addr
	Port uint16
}

// String renders the endpoint as host:port.
func (e Endpoint) String() string {
	return netip.AddrPortFrom(e.Addr, e.Port).String()
}

// Fabric is a virtual packet network. The zero value is not usable; call New.
type Fabric struct {
	mu       sync.RWMutex
	services map[Endpoint]Handler

	lossRate float64
	baseRTT  time.Duration
	rng      *rand.Rand
	rngMu    sync.Mutex

	stats Stats
}

// Stats is the fabric's traffic accounting.
type Stats struct {
	mu         sync.Mutex
	exchanges  int64
	drops      int64
	perDst     map[netip.Addr]int64
	lastQuery  map[netip.Addr]time.Time
	minSpacing time.Duration // smallest observed gap between queries to one dst
	virtualRTT time.Duration // accumulated virtual round-trip time
}

// New creates an empty fabric. Seed makes loss injection deterministic.
func New(seed int64) *Fabric {
	return &Fabric{
		services: make(map[Endpoint]Handler),
		rng:      rand.New(rand.NewSource(seed)),
		baseRTT:  20 * time.Millisecond,
		stats: Stats{
			perDst:     make(map[netip.Addr]int64),
			lastQuery:  make(map[netip.Addr]time.Time),
			minSpacing: time.Duration(1<<63 - 1),
		},
	}
}

// SetLossRate configures the probability in [0,1) that any exchange is
// dropped (client observes ErrTimeout).
func (f *Fabric) SetLossRate(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lossRate = p
}

// SetBaseRTT configures the virtual round-trip time accounted per exchange.
func (f *Fabric) SetBaseRTT(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.baseRTT = d
}

// Listen registers a handler for an endpoint. It returns an error if the
// endpoint is already taken.
func (f *Fabric) Listen(ep Endpoint, h Handler) error {
	if h == nil {
		return errors.New("simnet: nil handler")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.services[ep]; ok {
		return fmt.Errorf("simnet: endpoint %s already bound", ep)
	}
	f.services[ep] = h
	return nil
}

// Unlisten removes a registered endpoint. Removing an unbound endpoint is a
// no-op.
func (f *Fabric) Unlisten(ep Endpoint) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.services, ep)
}

// Bound reports whether any service listens on the endpoint.
func (f *Fabric) Bound(ep Endpoint) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	_, ok := f.services[ep]
	return ok
}

// Exchange performs a datagram request/response. maxResp > 0 truncates the
// response payload to that many bytes, modelling a UDP read buffer; the DNS
// layer on top handles the TC bit itself, so truncation here simply cuts the
// byte slice.
func (f *Fabric) Exchange(src netip.Addr, dst Endpoint, payload []byte, maxResp int) ([]byte, error) {
	f.mu.RLock()
	h, ok := f.services[dst]
	loss := f.lossRate
	rtt := f.baseRTT
	f.mu.RUnlock()

	f.account(dst.Addr, rtt)

	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, dst)
	}
	if loss > 0 {
		f.rngMu.Lock()
		dropped := f.rng.Float64() < loss
		f.rngMu.Unlock()
		if dropped {
			f.stats.mu.Lock()
			f.stats.drops++
			f.stats.mu.Unlock()
			return nil, ErrTimeout
		}
	}
	resp := h.ServePacket(src, payload)
	if resp == nil {
		return nil, ErrTimeout
	}
	if maxResp > 0 && len(resp) > maxResp {
		resp = resp[:maxResp]
	}
	return resp, nil
}

// ExchangeReliable performs a stream-style exchange with no size cap and no
// loss, modelling TCP.
func (f *Fabric) ExchangeReliable(src netip.Addr, dst Endpoint, payload []byte) ([]byte, error) {
	f.mu.RLock()
	h, ok := f.services[dst]
	rtt := f.baseRTT
	f.mu.RUnlock()

	f.account(dst.Addr, 2*rtt) // handshake + exchange

	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, dst)
	}
	resp := h.ServePacket(src, payload)
	if resp == nil {
		return nil, ErrTimeout
	}
	return resp, nil
}

func (f *Fabric) account(dst netip.Addr, rtt time.Duration) {
	now := time.Now()
	s := &f.stats
	s.mu.Lock()
	defer s.mu.Unlock()
	s.exchanges++
	s.perDst[dst]++
	if last, ok := s.lastQuery[dst]; ok {
		if gap := now.Sub(last); gap < s.minSpacing {
			s.minSpacing = gap
		}
	}
	s.lastQuery[dst] = now
	s.virtualRTT += rtt
}

// Exchanges returns the total number of exchanges attempted.
func (f *Fabric) Exchanges() int64 {
	f.stats.mu.Lock()
	defer f.stats.mu.Unlock()
	return f.stats.exchanges
}

// Drops returns the number of exchanges dropped by loss injection.
func (f *Fabric) Drops() int64 {
	f.stats.mu.Lock()
	defer f.stats.mu.Unlock()
	return f.stats.drops
}

// QueriesTo returns how many exchanges targeted the given IP.
func (f *Fabric) QueriesTo(addr netip.Addr) int64 {
	f.stats.mu.Lock()
	defer f.stats.mu.Unlock()
	return f.stats.perDst[addr]
}

// VirtualRTT returns the accumulated virtual round-trip time across all
// exchanges — the wall-clock a real-network run of the same query plan would
// have spent waiting, which the benchmark harness reports alongside CPU time.
func (f *Fabric) VirtualRTT() time.Duration {
	f.stats.mu.Lock()
	defer f.stats.mu.Unlock()
	return f.stats.virtualRTT
}

// Destinations returns the number of distinct IPs that received traffic.
func (f *Fabric) Destinations() int {
	f.stats.mu.Lock()
	defer f.stats.mu.Unlock()
	return len(f.stats.perDst)
}
