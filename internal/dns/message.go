package dns

import (
	"errors"
	"fmt"
	"strings"
)

// Header is the fixed 12-octet DNS message header (RFC 1035 §4.1.1).
type Header struct {
	ID                 uint16
	Response           bool
	OpCode             OpCode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is a query tuple.
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

// String returns the dig-style presentation of q.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// RR is a resource record: owner name, TTL, class, and a typed payload.
type RR struct {
	Name  Name
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the record type of the payload.
func (r RR) Type() Type {
	if r.Data == nil {
		return TypeNone
	}
	return r.Data.Type()
}

// String returns the zone-file presentation of r.
func (r RR) String() string {
	return fmt.Sprintf("%s\t%d\t%s\t%s\t%s", r.Name, r.TTL, r.Class, r.Type(), r.Data)
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a standard recursion-desired query for (name, type).
func NewQuery(id uint16, name Name, t Type) *Message {
	return &Message{
		Header: Header{ID: id, RecursionDesired: true},
		Questions: []Question{
			{Name: name, Type: t, Class: ClassINET},
		},
	}
}

// Reply builds a response skeleton mirroring the query's ID, question, and
// recursion-desired flag.
func (m *Message) Reply() *Message {
	r := &Message{
		Header: Header{
			ID:               m.Header.ID,
			Response:         true,
			OpCode:           m.Header.OpCode,
			RecursionDesired: m.Header.RecursionDesired,
		},
	}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}

// Question returns the first question, or a zero Question if there is none.
func (m *Message) Question() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// AnswersOfType filters the answer section by record type.
func (m *Message) AnswersOfType(t Type) []RR {
	var out []RR
	for _, rr := range m.Answers {
		if rr.Type() == t {
			out = append(out, rr)
		}
	}
	return out
}

const headerLen = 12

// Pack serializes m into wire format with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 512))
}

// PackTruncated serializes m, and if the result exceeds maxSize it re-packs
// with the answer/authority/additional sections emptied and TC set, per the
// classic UDP truncation behaviour. maxSize <= 0 means no limit.
func (m *Message) PackTruncated(maxSize int) ([]byte, error) {
	buf, err := m.Pack()
	if err != nil {
		return nil, err
	}
	if maxSize <= 0 || len(buf) <= maxSize {
		return buf, nil
	}
	tc := &Message{Header: m.Header, Questions: m.Questions}
	tc.Header.Truncated = true
	return tc.Pack()
}

// AppendPack serializes m into wire format with name compression, appending
// to buf and returning the extended slice. buf may already carry bytes (a
// pooled scratch buffer or a TCP length prefix); compression pointers stay
// relative to the start of the appended message. The caller keeps ownership
// of the buffer, which makes pack-buffer reuse possible on the query hot
// path (see internal/dnsio).
func (m *Message) AppendPack(buf []byte) ([]byte, error) {
	if len(m.Questions) > 0xFFFF || len(m.Answers) > 0xFFFF ||
		len(m.Authority) > 0xFFFF || len(m.Additional) > 0xFFFF {
		return nil, errors.New("dns: section too large")
	}
	base := len(buf)
	var hdr [headerLen]byte
	buf = append(buf, hdr[:]...)
	h := &m.Header
	buf[base], buf[base+1] = byte(h.ID>>8), byte(h.ID)
	var flags uint16
	if h.Response {
		flags |= 1 << 15
	}
	flags |= uint16(h.OpCode&0xF) << 11
	if h.Authoritative {
		flags |= 1 << 10
	}
	if h.Truncated {
		flags |= 1 << 9
	}
	if h.RecursionDesired {
		flags |= 1 << 8
	}
	if h.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(h.RCode & 0xF)
	buf[base+2], buf[base+3] = byte(flags>>8), byte(flags)
	put16 := func(i int, v uint16) { buf[base+i], buf[base+i+1] = byte(v>>8), byte(v) }
	put16(4, uint16(len(m.Questions)))
	put16(6, uint16(len(m.Answers)))
	put16(8, uint16(len(m.Authority)))
	put16(10, uint16(len(m.Additional)))

	// Compression state only pays off when a name can repeat: queries with a
	// single question never compress, so the sweep's per-query pack skips
	// the compressor entirely.
	var compress *compressor
	if len(m.Questions)+len(m.Answers)+len(m.Authority)+len(m.Additional) > 1 {
		compress = &compressor{base: base}
	}
	var err error
	for _, q := range m.Questions {
		if buf, err = packName(buf, q.Name, compress); err != nil {
			return nil, err
		}
		buf = append(buf, byte(q.Type>>8), byte(q.Type), byte(q.Class>>8), byte(q.Class))
	}
	for _, section := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range section {
			if buf, err = packRR(buf, rr, compress); err != nil {
				return nil, err
			}
		}
	}
	if len(buf)-base > MaxMessageSize {
		return nil, errors.New("dns: message exceeds 65535 octets")
	}
	return buf, nil
}

func packRR(buf []byte, rr RR, compress *compressor) ([]byte, error) {
	if rr.Data == nil {
		return nil, fmt.Errorf("dns: record %q has no payload", rr.Name)
	}
	var err error
	if buf, err = packName(buf, rr.Name, compress); err != nil {
		return nil, err
	}
	t := rr.Type()
	buf = append(buf, byte(t>>8), byte(t), byte(rr.Class>>8), byte(rr.Class),
		byte(rr.TTL>>24), byte(rr.TTL>>16), byte(rr.TTL>>8), byte(rr.TTL))
	rdlenAt := len(buf)
	buf = append(buf, 0, 0)
	if buf, err = rr.Data.pack(buf, compress); err != nil {
		return nil, err
	}
	rdlen := len(buf) - rdlenAt - 2
	if rdlen > 0xFFFF {
		return nil, errors.New("dns: rdata exceeds 65535 octets")
	}
	buf[rdlenAt], buf[rdlenAt+1] = byte(rdlen>>8), byte(rdlen)
	return buf, nil
}

// Unpack parses a wire-format DNS message.
func Unpack(msg []byte) (*Message, error) {
	var m Message
	if err := m.UnpackFrom(msg); err != nil {
		return nil, err
	}
	return &m, nil
}

// UnpackFrom parses a wire-format DNS message into m, reusing m's section
// slices when their capacity allows. This lets a server loop decode each
// incoming query into a pooled Message without re-allocating the sections
// on every datagram. On error m is left in an unspecified state.
func (m *Message) UnpackFrom(msg []byte) error {
	if len(msg) < headerLen {
		return errors.New("dns: message shorter than header")
	}
	h := &m.Header
	h.ID = uint16(msg[0])<<8 | uint16(msg[1])
	flags := uint16(msg[2])<<8 | uint16(msg[3])
	h.Response = flags&(1<<15) != 0
	h.OpCode = OpCode(flags >> 11 & 0xF)
	h.Authoritative = flags&(1<<10) != 0
	h.Truncated = flags&(1<<9) != 0
	h.RecursionDesired = flags&(1<<8) != 0
	h.RecursionAvailable = flags&(1<<7) != 0
	h.RCode = RCode(flags & 0xF)

	qd := int(msg[4])<<8 | int(msg[5])
	an := int(msg[6])<<8 | int(msg[7])
	ns := int(msg[8])<<8 | int(msg[9])
	ar := int(msg[10])<<8 | int(msg[11])

	off := headerLen
	var err error
	m.Questions = m.Questions[:0]
	if qd > 0 && cap(m.Questions) == 0 {
		m.Questions = make([]Question, 0, sectionCap(qd, len(msg)-off, 5))
	}
	for i := 0; i < qd; i++ {
		var q Question
		if q.Name, off, err = unpackName(msg, off); err != nil {
			return fmt.Errorf("dns: question %d: %w", i, err)
		}
		if off+4 > len(msg) {
			return errors.New("dns: truncated question")
		}
		q.Type = Type(uint16(msg[off])<<8 | uint16(msg[off+1]))
		q.Class = Class(uint16(msg[off+2])<<8 | uint16(msg[off+3]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	unpackSection := func(into []RR, n int, what string) ([]RR, error) {
		if n == 0 {
			return into[:0], nil
		}
		rrs := into[:0]
		if cap(rrs) == 0 {
			rrs = make([]RR, 0, sectionCap(n, len(msg)-off, 11))
		}
		for i := 0; i < n; i++ {
			rr, next, err := unpackRR(msg, off)
			if err != nil {
				return nil, fmt.Errorf("dns: %s %d: %w", what, i, err)
			}
			off = next
			rrs = append(rrs, rr)
		}
		return rrs, nil
	}
	if m.Answers, err = unpackSection(m.Answers, an, "answer"); err != nil {
		return err
	}
	if m.Authority, err = unpackSection(m.Authority, ns, "authority"); err != nil {
		return err
	}
	if m.Additional, err = unpackSection(m.Additional, ar, "additional"); err != nil {
		return err
	}
	return nil
}

// sectionCap bounds a section preallocation by what the remaining message
// bytes could physically hold (minBytes is the smallest possible entry on
// the wire), so a forged header count cannot force a huge allocation.
func sectionCap(count, remaining, minBytes int) int {
	max := remaining/minBytes + 1
	if count < max {
		return count
	}
	return max
}

func unpackRR(msg []byte, off int) (RR, int, error) {
	var rr RR
	var err error
	if rr.Name, off, err = unpackName(msg, off); err != nil {
		return rr, 0, err
	}
	if off+10 > len(msg) {
		return rr, 0, errors.New("dns: truncated record header")
	}
	t := Type(uint16(msg[off])<<8 | uint16(msg[off+1]))
	rr.Class = Class(uint16(msg[off+2])<<8 | uint16(msg[off+3]))
	rr.TTL = uint32(msg[off+4])<<24 | uint32(msg[off+5])<<16 | uint32(msg[off+6])<<8 | uint32(msg[off+7])
	rdlen := int(msg[off+8])<<8 | int(msg[off+9])
	off += 10
	rr.Data, err = unpackRData(t, msg, off, rdlen)
	if err != nil {
		return rr, 0, err
	}
	return rr, off + rdlen, nil
}

// Summary renders a compact dig-style dump of the message for logs and the
// dnsq tool.
func (m *Message) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; id %d %s %s", m.Header.ID, m.Header.OpCode, m.Header.RCode)
	for _, f := range []struct {
		on   bool
		name string
	}{
		{m.Header.Response, "qr"}, {m.Header.Authoritative, "aa"},
		{m.Header.Truncated, "tc"}, {m.Header.RecursionDesired, "rd"},
		{m.Header.RecursionAvailable, "ra"},
	} {
		if f.on {
			sb.WriteByte(' ')
			sb.WriteString(f.name)
		}
	}
	sb.WriteByte('\n')
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";; question: %s\n", q)
	}
	for _, s := range []struct {
		name string
		rrs  []RR
	}{{"answer", m.Answers}, {"authority", m.Authority}, {"additional", m.Additional}} {
		for _, rr := range s.rrs {
			fmt.Fprintf(&sb, "%s: %s\n", s.name, rr)
		}
	}
	return sb.String()
}
