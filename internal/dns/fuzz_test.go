package dns

import (
	"bytes"
	"testing"
)

// FuzzMessageUnpack drives the wire-format decoder with arbitrary bytes —
// the exact surface a malicious nameserver controls, and the bytes the sweep
// journal feeds back through Unpack on resume. The decoder must never panic,
// and any message it accepts must survive a Pack/Unpack round trip with
// stable wire bytes.
func FuzzMessageUnpack(f *testing.F) {
	if packed, err := sampleMessage().Pack(); err == nil {
		f.Add(packed)
	}
	if q, err := NewQuery(0x1234, "www.example.com", TypeTXT).Pack(); err == nil {
		f.Add(q)
	}
	// The hostile-name corpus from TestUnpackNameHostile, padded behind a
	// plausible header so the fuzzer starts at the interesting decode paths
	// (compression pointers, truncated labels, reserved bits).
	hostileNames := [][]byte{
		{},
		{5, 'a', 'b'},
		{1, 'a'},
		{0xC0, 5},
		{0xC0, 0},
		{0x80, 0},
		{0xC0},
		{1, 'a', 0xC0, 0},
	}
	for _, name := range hostileNames {
		hdr := []byte{
			0x12, 0x34, // ID
			0x81, 0x80, // QR response, RD/RA
			0x00, 0x01, // QDCOUNT 1
			0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		}
		f.Add(append(hdr, name...))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		repacked, err := m.Pack()
		if err != nil {
			// A message assembled from hostile wire bytes may exceed pack
			// limits; rejecting it is fine, corrupting memory is not.
			return
		}
		m2, err := Unpack(repacked)
		if err != nil {
			t.Fatalf("re-unpack of own packing failed: %v\nwire: %x", err, repacked)
		}
		again, err := m2.Pack()
		if err != nil {
			t.Fatalf("second pack failed: %v", err)
		}
		if !bytes.Equal(repacked, again) {
			t.Fatalf("pack not stable:\nfirst:  %x\nsecond: %x", repacked, again)
		}
	})
}
