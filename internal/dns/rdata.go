package dns

import (
	"errors"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// RData is the type-specific payload of a resource record.
//
// Implementations pack themselves into wire format (with access to the
// message-wide compression map, since NS/CNAME/SOA/MX/PTR targets are
// compressible) and render a presentation form compatible with zone files.
type RData interface {
	// Type returns the RR type this payload belongs to.
	Type() Type
	// pack appends the RDATA wire encoding to buf.
	pack(buf []byte, compress *compressor) ([]byte, error)
	// String returns the zone-file presentation of the payload.
	String() string
}

// unpackRData decodes the RDATA section of a record of the given type.
func unpackRData(t Type, msg []byte, off, rdlen int) (RData, error) {
	if off+rdlen > len(msg) {
		return nil, errors.New("dns: truncated rdata")
	}
	switch t {
	case TypeA:
		if rdlen != 4 {
			return nil, fmt.Errorf("dns: A rdata length %d", rdlen)
		}
		addr, _ := netip.AddrFromSlice(msg[off : off+4])
		return &A{Addr: addr}, nil
	case TypeAAAA:
		if rdlen != 16 {
			return nil, fmt.Errorf("dns: AAAA rdata length %d", rdlen)
		}
		addr, _ := netip.AddrFromSlice(msg[off : off+16])
		return &AAAA{Addr: addr}, nil
	case TypeNS:
		n, _, err := unpackName(msg, off)
		return &NS{Host: n}, err
	case TypeCNAME:
		n, _, err := unpackName(msg, off)
		return &CNAME{Target: n}, err
	case TypePTR:
		n, _, err := unpackName(msg, off)
		return &PTR{Target: n}, err
	case TypeMX:
		if rdlen < 3 {
			return nil, errors.New("dns: short MX rdata")
		}
		pref := uint16(msg[off])<<8 | uint16(msg[off+1])
		n, _, err := unpackName(msg, off+2)
		return &MX{Preference: pref, Host: n}, err
	case TypeSOA:
		return unpackSOA(msg, off)
	case TypeTXT:
		return unpackTXT(msg, off, rdlen)
	case TypeOPT:
		raw := make([]byte, rdlen)
		copy(raw, msg[off:off+rdlen])
		return &OPT{Options: raw}, nil
	default:
		raw := make([]byte, rdlen)
		copy(raw, msg[off:off+rdlen])
		return &Unknown{T: t, Data: raw}, nil
	}
}

// A is an IPv4 address record.
type A struct {
	Addr netip.Addr
}

// Type implements RData.
func (a *A) Type() Type { return TypeA }

func (a *A) pack(buf []byte, _ *compressor) ([]byte, error) {
	if !a.Addr.Is4() {
		return nil, fmt.Errorf("dns: A record with non-IPv4 address %v", a.Addr)
	}
	b := a.Addr.As4()
	return append(buf, b[:]...), nil
}

// String implements RData.
func (a *A) String() string { return a.Addr.String() }

// AAAA is an IPv6 address record.
type AAAA struct {
	Addr netip.Addr
}

// Type implements RData.
func (a *AAAA) Type() Type { return TypeAAAA }

func (a *AAAA) pack(buf []byte, _ *compressor) ([]byte, error) {
	if !a.Addr.Is6() || a.Addr.Is4In6() {
		return nil, fmt.Errorf("dns: AAAA record with non-IPv6 address %v", a.Addr)
	}
	b := a.Addr.As16()
	return append(buf, b[:]...), nil
}

// String implements RData.
func (a *AAAA) String() string { return a.Addr.String() }

// NS names an authoritative nameserver for the owner domain.
type NS struct {
	Host Name
}

// Type implements RData.
func (n *NS) Type() Type { return TypeNS }

func (n *NS) pack(buf []byte, compress *compressor) ([]byte, error) {
	return packName(buf, n.Host, compress)
}

// String implements RData.
func (n *NS) String() string { return n.Host.String() }

// CNAME is a canonical-name alias.
type CNAME struct {
	Target Name
}

// Type implements RData.
func (c *CNAME) Type() Type { return TypeCNAME }

func (c *CNAME) pack(buf []byte, compress *compressor) ([]byte, error) {
	return packName(buf, c.Target, compress)
}

// String implements RData.
func (c *CNAME) String() string { return c.Target.String() }

// PTR is a reverse-mapping pointer.
type PTR struct {
	Target Name
}

// Type implements RData.
func (p *PTR) Type() Type { return TypePTR }

func (p *PTR) pack(buf []byte, compress *compressor) ([]byte, error) {
	return packName(buf, p.Target, compress)
}

// String implements RData.
func (p *PTR) String() string { return p.Target.String() }

// MX names a mail exchanger with a preference.
type MX struct {
	Preference uint16
	Host       Name
}

// Type implements RData.
func (m *MX) Type() Type { return TypeMX }

func (m *MX) pack(buf []byte, compress *compressor) ([]byte, error) {
	buf = append(buf, byte(m.Preference>>8), byte(m.Preference))
	return packName(buf, m.Host, compress)
}

// String implements RData.
func (m *MX) String() string {
	return fmt.Sprintf("%d %s", m.Preference, m.Host)
}

// SOA is the start-of-authority record of a zone.
type SOA struct {
	MName   Name // primary nameserver
	RName   Name // responsible mailbox, encoded as a name
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Type implements RData.
func (s *SOA) Type() Type { return TypeSOA }

func (s *SOA) pack(buf []byte, compress *compressor) ([]byte, error) {
	var err error
	if buf, err = packName(buf, s.MName, compress); err != nil {
		return nil, err
	}
	if buf, err = packName(buf, s.RName, compress); err != nil {
		return nil, err
	}
	for _, v := range [...]uint32{s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum} {
		buf = append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return buf, nil
}

func unpackSOA(msg []byte, off int) (RData, error) {
	var s SOA
	var err error
	if s.MName, off, err = unpackName(msg, off); err != nil {
		return nil, err
	}
	if s.RName, off, err = unpackName(msg, off); err != nil {
		return nil, err
	}
	if off+20 > len(msg) {
		return nil, errors.New("dns: truncated SOA")
	}
	get := func() uint32 {
		v := uint32(msg[off])<<24 | uint32(msg[off+1])<<16 | uint32(msg[off+2])<<8 | uint32(msg[off+3])
		off += 4
		return v
	}
	s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum = get(), get(), get(), get(), get()
	return &s, nil
}

// String implements RData.
func (s *SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		s.MName, s.RName, s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum)
}

// TXT carries one or more character strings. Each string is at most 255
// octets on the wire; longer logical values are split across strings.
type TXT struct {
	Strings []string
}

// NewTXT builds a TXT payload from a single logical string, splitting it into
// 255-octet chunks as the wire format requires.
func NewTXT(s string) *TXT {
	var chunks []string
	for len(s) > 255 {
		chunks = append(chunks, s[:255])
		s = s[255:]
	}
	chunks = append(chunks, s)
	return &TXT{Strings: chunks}
}

// Type implements RData.
func (t *TXT) Type() Type { return TypeTXT }

// Joined returns the concatenation of all character strings, which is how
// SPF/DKIM/DMARC consumers interpret multi-string TXT records.
func (t *TXT) Joined() string { return strings.Join(t.Strings, "") }

func (t *TXT) pack(buf []byte, _ *compressor) ([]byte, error) {
	if len(t.Strings) == 0 {
		return append(buf, 0), nil // single empty string
	}
	for _, s := range t.Strings {
		if len(s) > 255 {
			return nil, fmt.Errorf("dns: TXT string exceeds 255 octets (%d)", len(s))
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

func unpackTXT(msg []byte, off, rdlen int) (RData, error) {
	end := off + rdlen
	var t TXT
	for off < end {
		n := int(msg[off])
		off++
		if off+n > end {
			return nil, errors.New("dns: truncated TXT string")
		}
		t.Strings = append(t.Strings, string(msg[off:off+n]))
		off += n
	}
	return &t, nil
}

// String implements RData.
func (t *TXT) String() string {
	parts := make([]string, len(t.Strings))
	for i, s := range t.Strings {
		parts[i] = strconv.Quote(s)
	}
	return strings.Join(parts, " ")
}

// OPT is the EDNS0 pseudo-record payload (RFC 6891). The UDP payload size and
// extended flags live in the RR's Class and TTL fields; Options carries the
// raw option list, which this reproduction does not interpret.
type OPT struct {
	Options []byte
}

// Type implements RData.
func (o *OPT) Type() Type { return TypeOPT }

func (o *OPT) pack(buf []byte, _ *compressor) ([]byte, error) {
	return append(buf, o.Options...), nil
}

// String implements RData.
func (o *OPT) String() string { return fmt.Sprintf("OPT(%d bytes)", len(o.Options)) }

// Unknown preserves the raw RDATA of types the codec does not model
// (RFC 3597 behaviour).
type Unknown struct {
	T    Type
	Data []byte
}

// Type implements RData.
func (u *Unknown) Type() Type { return u.T }

func (u *Unknown) pack(buf []byte, _ *compressor) ([]byte, error) {
	return append(buf, u.Data...), nil
}

// String implements RData.
func (u *Unknown) String() string {
	return fmt.Sprintf("\\# %d %x", len(u.Data), u.Data)
}
