package dns

import (
	"reflect"
	"testing"
)

func TestParseRRForms(t *testing.T) {
	cases := []struct {
		line string
		want RR
	}{
		{
			"example.com 300 IN A 192.0.2.1",
			RR{Name: "example.com", TTL: 300, Class: ClassINET, Data: &A{Addr: mustAddr("192.0.2.1")}},
		},
		{
			"example.com A 192.0.2.1", // default TTL and class
			RR{Name: "example.com", TTL: 3600, Class: ClassINET, Data: &A{Addr: mustAddr("192.0.2.1")}},
		},
		{
			"example.com 60 NS ns1.hosting.net",
			RR{Name: "example.com", TTL: 60, Class: ClassINET, Data: &NS{Host: "ns1.hosting.net"}},
		},
		{
			`example.com 60 IN TXT "v=spf1 ip4:203.0.113.5 -all"`,
			RR{Name: "example.com", TTL: 60, Class: ClassINET,
				Data: &TXT{Strings: []string{"v=spf1 ip4:203.0.113.5 -all"}}},
		},
		{
			"example.com 60 IN MX 10 mail.example.com",
			RR{Name: "example.com", TTL: 60, Class: ClassINET,
				Data: &MX{Preference: 10, Host: "mail.example.com"}},
		},
		{
			"www.example.com 120 IN CNAME example.com",
			RR{Name: "www.example.com", TTL: 120, Class: ClassINET,
				Data: &CNAME{Target: "example.com"}},
		},
		{
			"example.com 3600 IN SOA ns1.example.com hostmaster.example.com 1 7200 3600 1209600 300",
			RR{Name: "example.com", TTL: 3600, Class: ClassINET,
				Data: &SOA{MName: "ns1.example.com", RName: "hostmaster.example.com",
					Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300}},
		},
		{
			"h.example.com 60 IN AAAA 2001:db8::5",
			RR{Name: "h.example.com", TTL: 60, Class: ClassINET, Data: &AAAA{Addr: mustAddr("2001:db8::5")}},
		},
		{
			"5.2.0.192.in-addr.arpa 60 IN PTR example.com",
			RR{Name: "5.2.0.192.in-addr.arpa", TTL: 60, Class: ClassINET, Data: &PTR{Target: "example.com"}},
		},
	}
	for _, c := range cases {
		got, err := ParseRR(c.line)
		if err != nil {
			t.Errorf("ParseRR(%q): %v", c.line, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseRR(%q) =\n %+v, want\n %+v", c.line, got, c.want)
		}
	}
}

func TestParseRRComments(t *testing.T) {
	rr, err := ParseRR("example.com 60 IN A 192.0.2.1 ; planted by attacker")
	if err != nil {
		t.Fatal(err)
	}
	if rr.Data.(*A).Addr != mustAddr("192.0.2.1") {
		t.Error("comment stripped incorrectly")
	}
}

func TestParseRRQuotedTXT(t *testing.T) {
	rr, err := ParseRR(`example.com 60 IN TXT "first part" "second; not comment" ""`)
	if err != nil {
		t.Fatal(err)
	}
	txt := rr.Data.(*TXT)
	want := []string{"first part", "second; not comment", ""}
	if !reflect.DeepEqual(txt.Strings, want) {
		t.Errorf("TXT strings = %q, want %q", txt.Strings, want)
	}
}

func TestParseRRErrors(t *testing.T) {
	bad := []string{
		"",
		"example.com",
		"example.com 60 IN",
		"example.com 60 IN A",
		"example.com 60 IN A not-an-ip",
		"example.com 60 IN A 2001:db8::1",      // v6 in A
		"example.com 60 IN AAAA 192.0.2.1",     // v4 in AAAA
		"example.com 60 IN MX ten mail.e.com",  // bad preference
		"example.com 60 IN SOA ns1.e.com x 1",  // short SOA
		`example.com 60 IN TXT "unterminated`,  // bad quoting
		"bad!owner.com 60 IN A 192.0.2.1",      // invalid owner
		"example.com 60 IN BOGUS data",         // unknown type
		"example.com 60 IN NS bad!.hosting.io", // invalid target
	}
	for _, line := range bad {
		if _, err := ParseRR(line); err == nil {
			t.Errorf("ParseRR(%q): expected error", line)
		}
	}
}

func TestParseRRRoundtripViaString(t *testing.T) {
	lines := []string{
		"example.com 300 IN A 192.0.2.1",
		"example.com 60 IN NS ns1.hosting.net",
		"example.com 60 IN MX 10 mail.example.com",
	}
	for _, line := range lines {
		rr := MustParseRR(line)
		rr2, err := ParseRR(rr.String())
		if err != nil {
			t.Errorf("re-parse %q: %v", rr.String(), err)
			continue
		}
		if !reflect.DeepEqual(rr, rr2) {
			t.Errorf("string roundtrip mismatch: %+v vs %+v", rr, rr2)
		}
	}
}

func TestMustParseRRPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseRR did not panic on bad input")
		}
	}()
	MustParseRR("garbage")
}
