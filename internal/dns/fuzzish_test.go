package dns

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseRRNeverPanics feeds randomized token soup to the presentation
// parser; it must return errors, never panic.
func TestParseRRNeverPanics(t *testing.T) {
	tokens := []string{
		"example.com", "60", "IN", "A", "TXT", "NS", "MX", "SOA", "CNAME",
		"192.0.2.1", "2001:db8::1", `"quoted"`, `"unterminated`, ";comment",
		"-1", "10", "bad!name", "*", ".", "..", "\\", "\"", "65536",
		strings.Repeat("a", 300),
	}
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		n := r.Intn(8)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = tokens[r.Intn(len(tokens))]
		}
		_, _ = ParseRR(strings.Join(parts, " ")) // must not panic
	}
}

// TestUnpackMutatedMessages flips bytes in valid messages; Unpack must
// error or succeed, never panic, and successful re-packs must be packable.
func TestUnpackMutatedMessages(t *testing.T) {
	base, err := sampleMessage().Pack()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, len(base))
		copy(buf, base)
		for k := 0; k < 1+r.Intn(4); k++ {
			buf[r.Intn(len(buf))] = byte(r.Intn(256))
		}
		m, err := Unpack(buf)
		if err != nil {
			continue
		}
		// Whatever parsed must round-trip through Pack without panicking.
		_, _ = m.Pack()
	}
}

// TestQuickNameChildParentInverse checks Child/Parent as inverse operations.
func TestQuickNameChildParentInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := randomName(r)
		label := string(rune('a' + r.Intn(26)))
		child := base.Child(label)
		return child.Parent() == base && child.IsProperSubdomainOf(base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSubdomainTransitivity: a ⊑ b and b ⊑ c implies a ⊑ c.
func TestQuickSubdomainTransitivity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomName(r)
		b := c.Child("x")
		a := b.Child("y")
		return a.IsSubdomainOf(b) && b.IsSubdomainOf(c) && a.IsSubdomainOf(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
