package dns

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalName(t *testing.T) {
	cases := []struct {
		in   string
		want Name
	}{
		{"Example.COM", "example.com"},
		{"example.com.", "example.com"},
		{".", ""},
		{"", ""},
		{"WWW.Example.Com.", "www.example.com"},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseNameValidation(t *testing.T) {
	valid := []string{"example.com", "a.b.c.d.e", "xn--bcher-kva.de", "*.example.com",
		"_dmarc.example.com", "gov.cn", "a-b.example.com", "."}
	for _, s := range valid {
		if _, err := ParseName(s); err != nil {
			t.Errorf("ParseName(%q) unexpected error: %v", s, err)
		}
	}
	invalid := []string{
		"exa mple.com",
		"ex!ample.com",
		strings.Repeat("a", 64) + ".com",
		strings.Repeat("abcdefgh.", 32) + "com", // > 255 octets
		"a..b",
	}
	for _, s := range invalid {
		if _, err := ParseName(s); err == nil {
			t.Errorf("ParseName(%q) expected error", s)
		}
	}
}

func TestNameRelations(t *testing.T) {
	n := MustParseName("www.example.com")
	if got := n.Parent(); got != "example.com" {
		t.Errorf("Parent = %q", got)
	}
	if got := Name("com").Parent(); got != Root {
		t.Errorf("Parent of TLD = %q, want root", got)
	}
	if got := Root.Parent(); got != Root {
		t.Errorf("Parent of root = %q", got)
	}
	if !n.IsSubdomainOf("example.com") {
		t.Error("www.example.com should be subdomain of example.com")
	}
	if !n.IsSubdomainOf(Root) {
		t.Error("everything is a subdomain of root")
	}
	if n.IsSubdomainOf("ample.com") {
		t.Error("www.example.com must not match suffix-overlapping ample.com")
	}
	if !n.IsProperSubdomainOf("example.com") {
		t.Error("proper subdomain expected")
	}
	if n.IsProperSubdomainOf("www.example.com") {
		t.Error("a name is not a proper subdomain of itself")
	}
	if got := n.TLD(); got != "com" {
		t.Errorf("TLD = %q", got)
	}
	if got := n.SLD(); got != "example.com" {
		t.Errorf("SLD = %q", got)
	}
	if got := Name("example.com").Child("api"); got != "api.example.com" {
		t.Errorf("Child = %q", got)
	}
	if got := Root.Child("com"); got != "com" {
		t.Errorf("Child of root = %q", got)
	}
	if got := n.CountLabels(); got != 3 {
		t.Errorf("CountLabels = %d", got)
	}
	if got := Root.CountLabels(); got != 0 {
		t.Errorf("CountLabels(root) = %d", got)
	}
}

func TestPackUnpackNameRoundtrip(t *testing.T) {
	names := []Name{Root, "com", "example.com", "www.example.com",
		"*.example.com", "a.b.c.d.e.f.g.h"}
	for _, n := range names {
		buf, err := packName(nil, n, nil)
		if err != nil {
			t.Fatalf("packName(%q): %v", n, err)
		}
		got, off, err := unpackName(buf, 0)
		if err != nil {
			t.Fatalf("unpackName(%q): %v", n, err)
		}
		if got != n {
			t.Errorf("roundtrip %q -> %q", n, got)
		}
		if off != len(buf) {
			t.Errorf("offset %d, want %d", off, len(buf))
		}
	}
}

func TestNameCompression(t *testing.T) {
	compress := &compressor{}
	buf, err := packName(nil, "www.example.com", compress)
	if err != nil {
		t.Fatal(err)
	}
	first := len(buf)
	buf, err = packName(buf, "mail.example.com", compress)
	if err != nil {
		t.Fatal(err)
	}
	// Second name should be: 4"mail" + 2-byte pointer = 7 bytes.
	if len(buf)-first != 7 {
		t.Errorf("compressed second name used %d bytes, want 7", len(buf)-first)
	}
	n1, off, err := unpackName(buf, 0)
	if err != nil || n1 != "www.example.com" {
		t.Fatalf("first name %q err %v", n1, err)
	}
	n2, _, err := unpackName(buf, off)
	if err != nil || n2 != "mail.example.com" {
		t.Fatalf("second name %q err %v", n2, err)
	}
}

func TestUnpackNameHostile(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"truncated label":  {5, 'a', 'b'},
		"missing root":     {1, 'a'},
		"forward pointer":  {0xC0, 5},
		"self pointer":     {0xC0, 0},
		"reserved bits":    {0x80, 0},
		"truncated ptr":    {0xC0},
		"loop via pointer": {1, 'a', 0xC0, 0},
	}
	for name, buf := range cases {
		if _, _, err := unpackName(buf, 0); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// randomName generates a plausible valid DNS name for property tests.
func randomName(r *rand.Rand) Name {
	labels := r.Intn(5) + 1
	parts := make([]string, labels)
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-"
	for i := range parts {
		n := r.Intn(10) + 1
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[r.Intn(len(alphabet)-1)] // avoid '-' at random spots is fine; '-' allowed
		}
		parts[i] = string(b)
	}
	return Name(strings.Join(parts, "."))
}

func TestQuickNameRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomName(r)
		buf, err := packName(nil, n, nil)
		if err != nil {
			return false
		}
		got, _, err := unpackName(buf, 0)
		return err == nil && got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompressedPackIsEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := randomName(r)
		names := []Name{base, base.Child("www"), base.Child("mail"), base.Parent()}
		compress := &compressor{}
		var buf []byte
		var offs []int
		for _, n := range names {
			offs = append(offs, len(buf))
			var err error
			buf, err = packName(buf, n, compress)
			if err != nil {
				return false
			}
		}
		for i, n := range names {
			got, _, err := unpackName(buf, offs[i])
			if err != nil || got != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNameStringPresentation(t *testing.T) {
	if got := Root.String(); got != "." {
		t.Errorf("root String = %q", got)
	}
	if got := Name("example.com").String(); got != "example.com." {
		t.Errorf("String = %q", got)
	}
}
