package dns

import (
	"errors"
	"fmt"
	"strings"
)

// Name handling. Internally a Name is the canonical presentation form:
// lowercase ASCII labels joined by dots, with NO trailing dot. The root zone
// is the empty string. This keeps map keys cheap and comparisons trivial while
// the wire codec handles label encoding and compression.

// Name is a canonicalized domain name ("example.com", root is "").
type Name string

// Root is the DNS root name.
const Root Name = ""

// Errors returned by name validation.
var (
	ErrNameTooLong  = errors.New("dns: name exceeds 255 octets")
	ErrLabelTooLong = errors.New("dns: label exceeds 63 octets")
	ErrEmptyLabel   = errors.New("dns: empty label")
	ErrBadLabel     = errors.New("dns: label contains invalid character")
)

// CanonicalName lowercases s and strips a single trailing dot. It does not
// validate; use ParseName for untrusted input.
func CanonicalName(s string) Name {
	s = strings.TrimSuffix(s, ".")
	return Name(strings.ToLower(s))
}

// ParseName canonicalizes and validates a presentation-form domain name.
func ParseName(s string) (Name, error) {
	n := CanonicalName(s)
	if err := n.Validate(); err != nil {
		return Root, err
	}
	return n, nil
}

// MustParseName is ParseName for static names; it panics on invalid input.
func MustParseName(s string) Name {
	n, err := ParseName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// Validate checks RFC 1035 length limits and a permissive LDH-plus character
// set (letters, digits, hyphen, underscore; underscore appears in real DNS
// for SRV/DKIM-style names). It runs on the pack hot path for every name, so
// it scans the string in place without allocating.
func (n Name) Validate() error {
	if n == Root {
		return nil
	}
	// Wire length: each label costs len+1, plus the terminating root octet.
	if len(n)+2 > 255 {
		return ErrNameTooLong
	}
	s := string(n)
	start := 0
	for i := 0; i <= len(s); i++ {
		if i != len(s) && s[i] != '.' {
			continue
		}
		label := s[start:i]
		start = i + 1
		if label == "" {
			return ErrEmptyLabel
		}
		if len(label) > 63 {
			return ErrLabelTooLong
		}
		if label == "*" {
			continue // wildcard owner label
		}
		for j := 0; j < len(label); j++ {
			c := label[j]
			switch {
			case c >= 'a' && c <= 'z':
			case c >= '0' && c <= '9':
			case c == '-' || c == '_':
			default:
				return fmt.Errorf("%w: %q in %q", ErrBadLabel, c, s)
			}
		}
	}
	return nil
}

// String returns the presentation form with a trailing dot for the root-aware
// display used by dnsq and zone serialization.
func (n Name) String() string {
	if n == Root {
		return "."
	}
	return string(n) + "."
}

// Labels splits the name into its labels, most-specific first. The root name
// has no labels.
func (n Name) Labels() []string {
	if n == Root {
		return nil
	}
	return strings.Split(string(n), ".")
}

// CountLabels returns the number of labels in n.
func (n Name) CountLabels() int {
	if n == Root {
		return 0
	}
	return strings.Count(string(n), ".") + 1
}

// Parent returns the name with the leftmost label removed. Parent of a
// single-label name is the root; parent of the root is the root.
func (n Name) Parent() Name {
	if n == Root {
		return Root
	}
	if i := strings.IndexByte(string(n), '.'); i >= 0 {
		return n[i+1:]
	}
	return Root
}

// IsSubdomainOf reports whether n is equal to or underneath zone.
// Every name is a subdomain of the root.
func (n Name) IsSubdomainOf(zone Name) bool {
	if zone == Root {
		return true
	}
	if n == zone {
		return true
	}
	return strings.HasSuffix(string(n), "."+string(zone))
}

// IsProperSubdomainOf reports whether n is strictly underneath zone.
func (n Name) IsProperSubdomainOf(zone Name) bool {
	return n != zone && n.IsSubdomainOf(zone)
}

// Child prepends a label to n.
func (n Name) Child(label string) Name {
	label = strings.ToLower(label)
	if n == Root {
		return Name(label)
	}
	return Name(label + "." + string(n))
}

// TLD returns the rightmost label of n, or the root for the root name.
func (n Name) TLD() Name {
	if n == Root {
		return Root
	}
	if i := strings.LastIndexByte(string(n), '.'); i >= 0 {
		return n[i+1:]
	}
	return n
}

// SLD returns the registrable-looking two-label suffix of n ("example.com"
// for "www.example.com"). For shorter names it returns n itself. Callers that
// need public-suffix-aware registrable domains should use internal/psl.
func (n Name) SLD() Name {
	labels := n.Labels()
	if len(labels) <= 2 {
		return n
	}
	return Name(strings.Join(labels[len(labels)-2:], "."))
}

// compressTableSize is the inline suffix-table capacity of a compressor.
// Typical authoritative responses register well under 24 suffixes; larger
// messages spill into a map.
const compressTableSize = 24

// compressor tracks name-compression state while packing one message.
// base is the offset of the message's first header byte in the buffer, so
// AppendPack can extend a buffer that already carries unrelated bytes while
// compression pointers stay message-relative. A nil *compressor disables
// compression entirely (query packing skips it: a lone question name has no
// earlier suffix to point at).
//
// The first compressTableSize suffixes live in an inline linear-scan table —
// for the small messages that dominate a sweep this is both faster than a
// map and allocation-free; only outsized messages pay for the overflow map.
type compressor struct {
	names    [compressTableSize]Name
	offs     [compressTableSize]uint16
	n        int
	overflow map[Name]int
	base     int
}

// find returns the message-relative offset where name was first packed.
func (c *compressor) find(n Name) (int, bool) {
	for i := 0; i < c.n; i++ {
		if c.names[i] == n {
			return int(c.offs[i]), true
		}
	}
	if c.overflow != nil {
		off, ok := c.overflow[n]
		return off, ok
	}
	return 0, false
}

// add registers a suffix at a message-relative offset.
func (c *compressor) add(n Name, off int) {
	if c.n < compressTableSize {
		c.names[c.n] = n
		c.offs[c.n] = uint16(off)
		c.n++
		return
	}
	if c.overflow == nil {
		c.overflow = make(map[Name]int, compressTableSize)
	}
	c.overflow[n] = off
}

// packName appends the wire encoding of n to buf, using and updating the
// compression state. A nil compressor disables compression.
func packName(buf []byte, n Name, c *compressor) ([]byte, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	for n != Root {
		if c != nil {
			if off, ok := c.find(n); ok {
				return append(buf, 0xC0|byte(off>>8), byte(off)), nil
			}
			if off := len(buf) - c.base; off < 0x3FFF {
				c.add(n, off)
			}
		}
		label := string(n)
		rest := Root
		if i := strings.IndexByte(label, '.'); i >= 0 {
			label, rest = label[:i], n[i+1:]
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
		n = rest
	}
	return append(buf, 0), nil
}

// unpackName decodes a possibly-compressed name starting at off. It returns
// the name and the offset of the first byte after the name in the original
// stream (compression pointers do not advance the stream past the pointer).
// Labels are collected into a stack buffer so a decoded name costs a single
// string allocation.
func unpackName(msg []byte, off int) (Name, int, error) {
	var nameBuf [255]byte
	nb := nameBuf[:0]
	ptrBudget := 64 // defends against pointer loops
	end := -1       // offset after the name in the top-level stream
	for {
		if off >= len(msg) {
			return Root, 0, errors.New("dns: truncated name")
		}
		b := msg[off]
		switch {
		case b == 0:
			if end < 0 {
				end = off + 1
			}
			name := CanonicalName(string(nb))
			if err := name.Validate(); err != nil {
				return Root, 0, err
			}
			return name, end, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return Root, 0, errors.New("dns: truncated compression pointer")
			}
			if end < 0 {
				end = off + 2
			}
			ptr := int(b&0x3F)<<8 | int(msg[off+1])
			if ptr >= off {
				return Root, 0, errors.New("dns: forward compression pointer")
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return Root, 0, errors.New("dns: compression pointer loop")
			}
			off = ptr
		case b&0xC0 != 0:
			return Root, 0, fmt.Errorf("dns: reserved label type 0x%x", b&0xC0)
		default:
			n := int(b)
			if off+1+n > len(msg) {
				return Root, 0, errors.New("dns: truncated label")
			}
			if len(nb)+1+n > 255 {
				return Root, 0, ErrNameTooLong
			}
			if len(nb) > 0 {
				nb = append(nb, '.')
			}
			nb = append(nb, msg[off+1:off+1+n]...)
			off += 1 + n
		}
	}
}
