// Package dns implements the subset of the DNS protocol (RFC 1034/1035 with
// EDNS0 from RFC 6891) needed by the URHunter reproduction: a full wire-format
// codec with name compression, the record types observed in the measurement
// (A, AAAA, NS, CNAME, SOA, PTR, MX, TXT, OPT), and helpers for building
// queries and responses.
//
// The codec is transport-agnostic: internal/dnsio moves packed messages over
// real UDP/TCP sockets or the simulated network fabric.
package dns

import "fmt"

// Type is a DNS resource record type (RFC 1035 §3.2.2, RFC 3596).
type Type uint16

// Record types used throughout the reproduction.
const (
	TypeNone  Type = 0
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	// TypeIXFR and TypeAXFR are QTYPEs only (RFC 1995, RFC 5936): they appear
	// in questions requesting zone transfers, never as record types.
	TypeIXFR Type = 251
	TypeAXFR Type = 252
	TypeANY  Type = 255
)

var typeNames = map[Type]string{
	TypeNone:  "NONE",
	TypeA:     "A",
	TypeNS:    "NS",
	TypeCNAME: "CNAME",
	TypeSOA:   "SOA",
	TypePTR:   "PTR",
	TypeMX:    "MX",
	TypeTXT:   "TXT",
	TypeAAAA:  "AAAA",
	TypeOPT:   "OPT",
	TypeIXFR:  "IXFR",
	TypeAXFR:  "AXFR",
	TypeANY:   "ANY",
}

// String returns the standard mnemonic for t, or TYPEn for unknown types
// (RFC 3597 presentation).
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseType maps a mnemonic like "TXT" to its Type value.
func ParseType(s string) (Type, error) {
	for t, name := range typeNames {
		if name == s {
			return t, nil
		}
	}
	return TypeNone, fmt.Errorf("dns: unknown type %q", s)
}

// Class is a DNS class. Only IN is used in practice.
type Class uint16

// DNS classes.
const (
	ClassINET Class = 1
	ClassCH   Class = 3
	ClassANY  Class = 255
)

// String returns the class mnemonic.
func (c Class) String() string {
	switch c {
	case ClassINET:
		return "IN"
	case ClassCH:
		return "CH"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// RCode is a DNS response code (RFC 1035 §4.1.1).
type RCode uint8

// Response codes.
const (
	RCodeSuccess  RCode = 0 // NOERROR
	RCodeFormat   RCode = 1 // FORMERR
	RCodeServFail RCode = 2 // SERVFAIL
	RCodeNXDomain RCode = 3 // NXDOMAIN
	RCodeNotImp   RCode = 4 // NOTIMP
	RCodeRefused  RCode = 5 // REFUSED
)

var rcodeNames = map[RCode]string{
	RCodeSuccess:  "NOERROR",
	RCodeFormat:   "FORMERR",
	RCodeServFail: "SERVFAIL",
	RCodeNXDomain: "NXDOMAIN",
	RCodeNotImp:   "NOTIMP",
	RCodeRefused:  "REFUSED",
}

// String returns the rcode mnemonic.
func (r RCode) String() string {
	if s, ok := rcodeNames[r]; ok {
		return s
	}
	return fmt.Sprintf("RCODE%d", uint8(r))
}

// OpCode is a DNS operation code.
type OpCode uint8

// Operation codes.
const (
	OpQuery  OpCode = 0
	OpStatus OpCode = 2
	OpNotify OpCode = 4
	OpUpdate OpCode = 5
)

// String returns the opcode mnemonic.
func (o OpCode) String() string {
	switch o {
	case OpQuery:
		return "QUERY"
	case OpStatus:
		return "STATUS"
	case OpNotify:
		return "NOTIFY"
	case OpUpdate:
		return "UPDATE"
	}
	return fmt.Sprintf("OPCODE%d", uint8(o))
}

// MaxUDPSize is the classic maximum DNS payload over UDP without EDNS0.
const MaxUDPSize = 512

// MaxEDNS0Size is the EDNS0 payload size we advertise.
const MaxEDNS0Size = 4096

// MaxMessageSize is the absolute maximum size of a DNS message over TCP.
const MaxMessageSize = 65535
