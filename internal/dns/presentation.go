package dns

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// Presentation-format parsing: a pragmatic subset of RFC 1035 master-file
// syntax, enough to express every record the reproduction uses. One record
// per line:
//
//	owner TTL CLASS TYPE rdata...
//
// TTL and CLASS are optional (defaulting to 3600 and IN). TXT rdata accepts
// quoted strings; everything else is whitespace-separated fields.

// ParseRR parses one presentation-format resource record.
func ParseRR(line string) (RR, error) {
	fields, err := splitFields(line)
	if err != nil {
		return RR{}, err
	}
	if len(fields) < 2 {
		return RR{}, fmt.Errorf("dns: record %q has too few fields", line)
	}
	var rr RR
	if rr.Name, err = ParseName(fields[0]); err != nil {
		return RR{}, fmt.Errorf("dns: bad owner in %q: %w", line, err)
	}
	fields = fields[1:]
	rr.TTL = 3600
	rr.Class = ClassINET
	// Optional TTL.
	if ttl, err := strconv.ParseUint(fields[0], 10, 32); err == nil {
		rr.TTL = uint32(ttl)
		fields = fields[1:]
	}
	// Optional class.
	if len(fields) > 0 && (fields[0] == "IN" || fields[0] == "CH" || fields[0] == "ANY") {
		switch fields[0] {
		case "IN":
			rr.Class = ClassINET
		case "CH":
			rr.Class = ClassCH
		case "ANY":
			rr.Class = ClassANY
		}
		fields = fields[1:]
	}
	if len(fields) == 0 {
		return RR{}, fmt.Errorf("dns: record %q missing type", line)
	}
	t, err := ParseType(fields[0])
	if err != nil {
		return RR{}, err
	}
	fields = fields[1:]
	rr.Data, err = parseRData(t, fields)
	if err != nil {
		return RR{}, fmt.Errorf("dns: record %q: %w", line, err)
	}
	return rr, nil
}

// MustParseRR is ParseRR for static records; it panics on error.
func MustParseRR(line string) RR {
	rr, err := ParseRR(line)
	if err != nil {
		panic(err)
	}
	return rr
}

func parseRData(t Type, fields []string) (RData, error) {
	need := func(n int) error {
		if len(fields) != n {
			return fmt.Errorf("%s rdata wants %d fields, got %d", t, n, len(fields))
		}
		return nil
	}
	switch t {
	case TypeA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil || !addr.Is4() {
			return nil, fmt.Errorf("bad IPv4 address %q", fields[0])
		}
		return &A{Addr: addr}, nil
	case TypeAAAA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil || !addr.Is6() || addr.Is4In6() {
			return nil, fmt.Errorf("bad IPv6 address %q", fields[0])
		}
		return &AAAA{Addr: addr}, nil
	case TypeNS:
		if err := need(1); err != nil {
			return nil, err
		}
		n, err := ParseName(fields[0])
		if err != nil {
			return nil, err
		}
		return &NS{Host: n}, nil
	case TypeCNAME:
		if err := need(1); err != nil {
			return nil, err
		}
		n, err := ParseName(fields[0])
		if err != nil {
			return nil, err
		}
		return &CNAME{Target: n}, nil
	case TypePTR:
		if err := need(1); err != nil {
			return nil, err
		}
		n, err := ParseName(fields[0])
		if err != nil {
			return nil, err
		}
		return &PTR{Target: n}, nil
	case TypeMX:
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := strconv.ParseUint(fields[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad MX preference %q", fields[0])
		}
		host, err := ParseName(fields[1])
		if err != nil {
			return nil, err
		}
		return &MX{Preference: uint16(pref), Host: host}, nil
	case TypeSOA:
		if err := need(7); err != nil {
			return nil, err
		}
		mname, err := ParseName(fields[0])
		if err != nil {
			return nil, err
		}
		rname, err := ParseName(fields[1])
		if err != nil {
			return nil, err
		}
		var nums [5]uint32
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseUint(fields[2+i], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad SOA field %q", fields[2+i])
			}
			nums[i] = uint32(v)
		}
		return &SOA{MName: mname, RName: rname, Serial: nums[0],
			Refresh: nums[1], Retry: nums[2], Expire: nums[3], Minimum: nums[4]}, nil
	case TypeTXT:
		if len(fields) == 0 {
			return nil, fmt.Errorf("TXT rdata needs at least one string")
		}
		return &TXT{Strings: fields}, nil
	default:
		return nil, fmt.Errorf("unsupported presentation type %s", t)
	}
}

// splitFields tokenizes a record line, honouring double-quoted strings
// (used for TXT rdata) and stripping ';' comments outside quotes.
func splitFields(line string) ([]string, error) {
	var fields []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			fields = append(fields, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			if inQuote {
				// Always emit the string, even if empty.
				fields = append(fields, cur.String())
				cur.Reset()
				inQuote = false
			} else {
				flush()
				inQuote = true
			}
		case inQuote && c == '\\' && i+1 < len(line):
			i++
			cur.WriteByte(line[i])
		case inQuote:
			cur.WriteByte(c)
		case c == ';':
			flush()
			return fields, nil
		case c == ' ' || c == '\t':
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("dns: unterminated quoted string in %q", line)
	}
	flush()
	return fields, nil
}
