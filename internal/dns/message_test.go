package dns

import (
	"bytes"
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustAddr(s string) netip.Addr {
	a, err := netip.ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

func sampleMessage() *Message {
	m := NewQuery(0x1234, "www.example.com", TypeA)
	r := m.Reply()
	r.Header.Authoritative = true
	r.Answers = append(r.Answers,
		RR{Name: "www.example.com", Class: ClassINET, TTL: 300,
			Data: &CNAME{Target: "example.com"}},
		RR{Name: "example.com", Class: ClassINET, TTL: 300,
			Data: &A{Addr: mustAddr("192.0.2.10")}},
	)
	r.Authority = append(r.Authority,
		RR{Name: "example.com", Class: ClassINET, TTL: 86400,
			Data: &NS{Host: "ns1.hosting.example"}},
		RR{Name: "example.com", Class: ClassINET, TTL: 86400,
			Data: &NS{Host: "ns2.hosting.example"}},
	)
	r.Additional = append(r.Additional,
		RR{Name: "ns1.hosting.example", Class: ClassINET, TTL: 86400,
			Data: &A{Addr: mustAddr("198.51.100.1")}},
	)
	return r
}

func TestMessageRoundtrip(t *testing.T) {
	m := sampleMessage()
	buf, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(buf)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestMessageCompressionShrinks(t *testing.T) {
	m := sampleMessage()
	buf, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// An uncompressed encoding would repeat example.com 5+ times; the
	// compressed message must be well under that.
	uncompressed := 0
	for _, q := range m.Questions {
		uncompressed += len(q.Name) + 2 + 4
	}
	if len(buf) >= 200 {
		t.Errorf("compressed message is %d bytes, expected < 200", len(buf))
	}
	_ = uncompressed
}

func TestHeaderFlagsRoundtrip(t *testing.T) {
	f := func(id uint16, resp, aa, tc, rd, ra bool, op, rc uint8) bool {
		m := &Message{Header: Header{
			ID: id, Response: resp, Authoritative: aa, Truncated: tc,
			RecursionDesired: rd, RecursionAvailable: ra,
			OpCode: OpCode(op & 0xF), RCode: RCode(rc & 0xF),
		}}
		buf, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m.Header, got.Header)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllRDataTypesRoundtrip(t *testing.T) {
	rrs := []RR{
		{Name: "a.test", Class: ClassINET, TTL: 60, Data: &A{Addr: mustAddr("203.0.113.7")}},
		{Name: "aaaa.test", Class: ClassINET, TTL: 60, Data: &AAAA{Addr: mustAddr("2001:db8::1")}},
		{Name: "ns.test", Class: ClassINET, TTL: 60, Data: &NS{Host: "ns1.test"}},
		{Name: "cn.test", Class: ClassINET, TTL: 60, Data: &CNAME{Target: "target.test"}},
		{Name: "ptr.test", Class: ClassINET, TTL: 60, Data: &PTR{Target: "host.test"}},
		{Name: "mx.test", Class: ClassINET, TTL: 60, Data: &MX{Preference: 10, Host: "mail.test"}},
		{Name: "soa.test", Class: ClassINET, TTL: 60, Data: &SOA{
			MName: "ns1.test", RName: "hostmaster.test",
			Serial: 2023102401, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300}},
		{Name: "txt.test", Class: ClassINET, TTL: 60, Data: &TXT{Strings: []string{
			"v=spf1 ip4:203.0.113.0/24 -all"}}},
		{Name: "txt2.test", Class: ClassINET, TTL: 60, Data: &TXT{Strings: []string{"a", "b", ""}}},
		{Name: "unk.test", Class: ClassINET, TTL: 60, Data: &Unknown{T: Type(999), Data: []byte{1, 2, 3}}},
	}
	m := &Message{Header: Header{ID: 7, Response: true}, Answers: rrs}
	buf, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(buf)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !reflect.DeepEqual(m.Answers, got.Answers) {
		t.Errorf("answers mismatch:\n got %v\nwant %v", got.Answers, m.Answers)
	}
}

func TestLongTXTSplitting(t *testing.T) {
	long := strings.Repeat("x", 700)
	txt := NewTXT(long)
	if len(txt.Strings) != 3 {
		t.Fatalf("expected 3 chunks, got %d", len(txt.Strings))
	}
	if txt.Joined() != long {
		t.Error("Joined does not reassemble original")
	}
	m := &Message{Answers: []RR{{Name: "t.test", Class: ClassINET, TTL: 1, Data: txt}}}
	buf, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(buf)
	if err != nil {
		t.Fatal(err)
	}
	gotTXT := got.Answers[0].Data.(*TXT)
	if gotTXT.Joined() != long {
		t.Error("roundtripped TXT differs")
	}
}

func TestPackTruncated(t *testing.T) {
	m := NewQuery(9, "big.test", TypeTXT).Reply()
	for i := 0; i < 40; i++ {
		m.Answers = append(m.Answers, RR{
			Name: "big.test", Class: ClassINET, TTL: 60,
			Data: NewTXT(strings.Repeat("p", 200)),
		})
	}
	full, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= MaxUDPSize {
		t.Fatal("test message unexpectedly small")
	}
	buf, err := m.PackTruncated(MaxUDPSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) > MaxUDPSize {
		t.Errorf("truncated pack is %d bytes", len(buf))
	}
	got, err := Unpack(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Header.Truncated {
		t.Error("TC flag not set")
	}
	if len(got.Answers) != 0 {
		t.Error("truncated message should carry no answers")
	}
	// Under the limit, PackTruncated must be a no-op.
	small := NewQuery(1, "a.test", TypeA)
	b1, _ := small.Pack()
	b2, err := small.PackTruncated(MaxUDPSize)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1, b2) {
		t.Error("PackTruncated altered a small message")
	}
}

func TestReplyMirrorsQuery(t *testing.T) {
	q := NewQuery(4242, "example.org", TypeTXT)
	r := q.Reply()
	if r.Header.ID != 4242 || !r.Header.Response {
		t.Error("reply header wrong")
	}
	if r.Question() != q.Question() {
		t.Error("reply question not mirrored")
	}
	if !r.Header.RecursionDesired {
		t.Error("RD not mirrored")
	}
}

func TestAnswersOfType(t *testing.T) {
	m := sampleMessage()
	if got := len(m.AnswersOfType(TypeA)); got != 1 {
		t.Errorf("A answers = %d", got)
	}
	if got := len(m.AnswersOfType(TypeCNAME)); got != 1 {
		t.Errorf("CNAME answers = %d", got)
	}
	if got := len(m.AnswersOfType(TypeTXT)); got != 0 {
		t.Errorf("TXT answers = %d", got)
	}
}

func TestUnpackHostileMessages(t *testing.T) {
	// Random garbage must never panic, only return errors.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		n := r.Intn(64)
		buf := make([]byte, n)
		r.Read(buf)
		_, _ = Unpack(buf) // must not panic
	}
	// A valid message truncated at every length must never panic.
	full, err := sampleMessage().Pack()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(full); i++ {
		_, _ = Unpack(full[:i])
	}
}

func TestQuickMessageRoundtripFuzzedFields(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		name := randomName(r)
		m := NewQuery(uint16(r.Uint32()), name, TypeA)
		resp := m.Reply()
		for i := 0; i < r.Intn(4); i++ {
			resp.Answers = append(resp.Answers, RR{
				Name: name, Class: ClassINET, TTL: uint32(r.Intn(100000)),
				Data: &A{Addr: netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})},
			})
		}
		buf, err := resp.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(resp, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummaryContainsSections(t *testing.T) {
	s := sampleMessage().Summary()
	for _, want := range []string{"question:", "answer:", "authority:", "additional:", "NOERROR"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q:\n%s", want, s)
		}
	}
}

func TestTypeAndClassStrings(t *testing.T) {
	if TypeTXT.String() != "TXT" || Type(4242).String() != "TYPE4242" {
		t.Error("Type.String wrong")
	}
	if ClassINET.String() != "IN" || Class(9).String() != "CLASS9" {
		t.Error("Class.String wrong")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(14).String() != "RCODE14" {
		t.Error("RCode.String wrong")
	}
	if OpQuery.String() != "QUERY" || OpCode(7).String() != "OPCODE7" {
		t.Error("OpCode.String wrong")
	}
	if tt, err := ParseType("AAAA"); err != nil || tt != TypeAAAA {
		t.Error("ParseType failed")
	}
	if _, err := ParseType("BOGUS"); err == nil {
		t.Error("ParseType accepted bogus type")
	}
}

// TestQuickPackTruncatedBound: for any answer-section size, PackTruncated
// never exceeds the limit and parses back cleanly.
func TestQuickPackTruncatedBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewQuery(uint16(r.Uint32()), randomName(r), TypeTXT).Reply()
		for i := 0; i < r.Intn(30); i++ {
			m.Answers = append(m.Answers, RR{
				Name: m.Question().Name, Class: ClassINET, TTL: 60,
				Data: NewTXT(strings.Repeat("q", r.Intn(300)+1)),
			})
		}
		limit := 512
		buf, err := m.PackTruncated(limit)
		if err != nil || len(buf) > limit {
			return false
		}
		parsed, err := Unpack(buf)
		if err != nil {
			return false
		}
		full, _ := m.Pack()
		// Either the message fit whole, or TC is set with answers dropped.
		if len(full) <= limit {
			return !parsed.Header.Truncated && len(parsed.Answers) == len(m.Answers)
		}
		return parsed.Header.Truncated && len(parsed.Answers) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAppendPackWithPrefix(t *testing.T) {
	m := NewQuery(77, "www.example.com", TypeA).Reply()
	m.Answers = append(m.Answers,
		MustParseRR("www.example.com 300 IN CNAME example.com"),
		MustParseRR("example.com 300 IN A 192.0.2.10"))
	m.Authority = append(m.Authority,
		MustParseRR("example.com 86400 IN NS ns1.hosting.test"))

	plain, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("tcp-len-prefix")
	buf, err := m.AppendPack(append([]byte{}, prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, prefix) {
		t.Fatal("AppendPack clobbered the prefix")
	}
	appended := buf[len(prefix):]
	if !bytes.Equal(appended, plain) {
		t.Errorf("AppendPack bytes differ from Pack:\n  append: %x\n  pack:   %x", appended, plain)
	}
	parsed, err := Unpack(appended)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Answers) != 2 || parsed.Answers[0].Name != "www.example.com" {
		t.Errorf("round-trip through prefixed AppendPack: %+v", parsed)
	}
}

func TestAppendPackReusesCapacity(t *testing.T) {
	m := NewQuery(1, "www.example.com", TypeA)
	scratch := make([]byte, 0, 512)
	buf, err := m.AppendPack(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &buf[0] != &scratch[:1][0] {
		t.Error("AppendPack reallocated despite sufficient capacity")
	}
	if _, err := Unpack(buf); err != nil {
		t.Fatal(err)
	}
}
