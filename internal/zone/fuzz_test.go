package zone

import (
	"testing"
)

// FuzzZoneParse drives the master-file parser with arbitrary text — the
// operator-supplied input every simulated authority loads. The parser must
// never panic, and any zone it accepts must serialize and re-parse to the
// same record count (the Serialize/Parse closure the world generator relies
// on).
func FuzzZoneParse(f *testing.F) {
	f.Add("@ 300 IN A 192.0.2.1\nwww 300 IN CNAME @\n")
	f.Add("$ORIGIN sub.example.com\n$TTL 600\nhost IN A 198.51.100.7\n")
	f.Add("; comment only\n\n")
	f.Add("@ 60 IN TXT \"v=spf1 -all\"\n")
	f.Add("* 300 IN A 203.0.113.5\n")
	f.Add("$ORIGIN\n")
	f.Add("@ 4294967296 IN A 192.0.2.1\n")
	f.Add("a..b 300 IN A 192.0.2.1\n")

	f.Fuzz(func(t *testing.T, text string) {
		z, err := Parse("example.com", text)
		if err != nil {
			return
		}
		out := z.Serialize()
		z2, err := Parse("example.com", out)
		if err != nil {
			t.Fatalf("serialized zone failed to re-parse: %v\ntext: %q", err, out)
		}
		if z.Size() != z2.Size() {
			t.Fatalf("round trip changed record count: %d -> %d\ntext: %q", z.Size(), z2.Size(), out)
		}
	})
}
