// Package zone implements the authoritative zone data structure shared by
// every nameserver in the reproduction: an RRset store keyed by owner name
// and type, with RFC 1034 lookup semantics (exact match, CNAME, wildcard
// synthesis, delegation cuts, empty non-terminals) and a master-file style
// parser/serializer.
package zone

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dns"
)

// Result classifies the outcome of an authoritative lookup.
type Result int

// Lookup outcomes.
const (
	// Hit: records of the requested type exist at the name.
	Hit Result = iota
	// CNAMEHit: the name owns a CNAME (and the requested type is not CNAME).
	CNAMEHit
	// NoData: the name exists (possibly as an empty non-terminal) but has no
	// records of the requested type.
	NoData
	// NXDomain: the name does not exist in the zone.
	NXDomain
	// Delegation: the lookup crossed a zone cut; the returned records are the
	// delegation NS set.
	Delegation
	// OutOfZone: the name is not within this zone's origin.
	OutOfZone
)

// String names the result for logs and tests.
func (r Result) String() string {
	switch r {
	case Hit:
		return "Hit"
	case CNAMEHit:
		return "CNAME"
	case NoData:
		return "NoData"
	case NXDomain:
		return "NXDomain"
	case Delegation:
		return "Delegation"
	case OutOfZone:
		return "OutOfZone"
	}
	return fmt.Sprintf("Result(%d)", int(r))
}

// Zone is a mutable collection of RRsets under one origin. It is safe for
// concurrent use: hosting-provider portals mutate zones while nameservers
// serve them.
type Zone struct {
	origin dns.Name

	mu     sync.RWMutex
	rrsets map[dns.Name]map[dns.Type][]dns.RR
}

// New creates an empty zone rooted at origin.
func New(origin dns.Name) *Zone {
	return &Zone{
		origin: origin,
		rrsets: make(map[dns.Name]map[dns.Type][]dns.RR),
	}
}

// Origin returns the zone apex name.
func (z *Zone) Origin() dns.Name { return z.origin }

// Add inserts a record. The owner must be at or below the origin.
func (z *Zone) Add(rr dns.RR) error {
	if !rr.Name.IsSubdomainOf(z.origin) {
		return fmt.Errorf("zone %s: record %s out of zone", z.origin.String(), rr.Name.String())
	}
	if rr.Data == nil {
		return fmt.Errorf("zone %s: record %s has no payload", z.origin.String(), rr.Name.String())
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	byType, ok := z.rrsets[rr.Name]
	if !ok {
		byType = make(map[dns.Type][]dns.RR)
		z.rrsets[rr.Name] = byType
	}
	byType[rr.Type()] = append(byType[rr.Type()], rr)
	return nil
}

// AddRR parses a presentation-format record and adds it.
func (z *Zone) AddRR(line string) error {
	rr, err := dns.ParseRR(line)
	if err != nil {
		return err
	}
	return z.Add(rr)
}

// MustAddRR is AddRR for static zone content; it panics on error.
func (z *Zone) MustAddRR(line string) {
	if err := z.AddRR(line); err != nil {
		panic(err)
	}
}

// RemoveRRset deletes all records of the given type at a name.
func (z *Zone) RemoveRRset(name dns.Name, t dns.Type) {
	z.mu.Lock()
	defer z.mu.Unlock()
	if byType, ok := z.rrsets[name]; ok {
		delete(byType, t)
		if len(byType) == 0 {
			delete(z.rrsets, name)
		}
	}
}

// RemoveName deletes every record at a name.
func (z *Zone) RemoveName(name dns.Name) {
	z.mu.Lock()
	defer z.mu.Unlock()
	delete(z.rrsets, name)
}

// RRset returns the records of the given type at exactly name (no wildcard or
// delegation processing).
func (z *Zone) RRset(name dns.Name, t dns.Type) []dns.RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	byType, ok := z.rrsets[name]
	if !ok {
		return nil
	}
	rrs := byType[t]
	out := make([]dns.RR, len(rrs))
	copy(out, rrs)
	return out
}

// SOA returns the zone's apex SOA record, if present.
func (z *Zone) SOA() (dns.RR, bool) {
	rrs := z.RRset(z.origin, dns.TypeSOA)
	if len(rrs) == 0 {
		return dns.RR{}, false
	}
	return rrs[0], true
}

// Lookup resolves (name, type) with authoritative semantics.
//
// The second return value explains the outcome; the records returned are the
// matched RRset (Hit), the CNAME RRset (CNAMEHit), the delegation NS set
// (Delegation), or nil.
func (z *Zone) Lookup(name dns.Name, t dns.Type) ([]dns.RR, Result) {
	if !name.IsSubdomainOf(z.origin) {
		return nil, OutOfZone
	}
	z.mu.RLock()
	defer z.mu.RUnlock()

	// Walk from just below the apex toward the query name looking for a zone
	// cut (an NS RRset strictly between apex and the owner).
	if cut, ok := z.findCutLocked(name); ok && cut != name {
		ns := z.rrsets[cut][dns.TypeNS]
		out := make([]dns.RR, len(ns))
		copy(out, ns)
		return out, Delegation
	}

	if byType, ok := z.rrsets[name]; ok {
		// A cut exactly at the name: below the apex an NS RRset marks a
		// delegation; the parent answers with a referral, never
		// authoritatively — even for NS queries.
		if name != z.origin {
			if ns, hasNS := byType[dns.TypeNS]; hasNS {
				out := make([]dns.RR, len(ns))
				copy(out, ns)
				return out, Delegation
			}
		}
		if rrs, ok := byType[t]; ok && len(rrs) > 0 {
			out := make([]dns.RR, len(rrs))
			copy(out, rrs)
			return out, Hit
		}
		if cname, ok := byType[dns.TypeCNAME]; ok && t != dns.TypeCNAME && len(cname) > 0 {
			out := make([]dns.RR, len(cname))
			copy(out, cname)
			return out, CNAMEHit
		}
		return nil, NoData
	}

	// Wildcard synthesis: the closest encloser's *-child, per RFC 1034 §4.3.2.
	for anc := name.Parent(); ; anc = anc.Parent() {
		if !anc.IsSubdomainOf(z.origin) {
			break
		}
		// If the ancestor itself exists, name could still match a wildcard at
		// that ancestor; check before giving up.
		wc := anc.Child("*")
		if byType, ok := z.rrsets[wc]; ok {
			if rrs, ok := byType[t]; ok && len(rrs) > 0 {
				out := make([]dns.RR, 0, len(rrs))
				for _, rr := range rrs {
					syn := rr
					syn.Name = name
					out = append(out, syn)
				}
				return out, Hit
			}
			if cname, ok := byType[dns.TypeCNAME]; ok && t != dns.TypeCNAME && len(cname) > 0 {
				out := make([]dns.RR, 0, len(cname))
				for _, rr := range cname {
					syn := rr
					syn.Name = name
					out = append(out, syn)
				}
				return out, CNAMEHit
			}
			return nil, NoData
		}
		// Wildcards only match at the closest existing encloser: if this
		// ancestor exists, stop searching higher.
		if _, ok := z.rrsets[anc]; ok {
			break
		}
		if anc == z.origin {
			break
		}
	}

	// Empty non-terminal: some stored name is beneath the queried name.
	for stored := range z.rrsets {
		if stored.IsProperSubdomainOf(name) {
			return nil, NoData
		}
	}
	return nil, NXDomain
}

// findCutLocked returns the highest delegation point at or above name
// (strictly below the apex), if any.
func (z *Zone) findCutLocked(name dns.Name) (dns.Name, bool) {
	// Collect ancestors from apex-child down to name.
	var chain []dns.Name
	for n := name; n != z.origin; n = n.Parent() {
		chain = append(chain, n)
		if n == dns.Root {
			break
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		n := chain[i]
		if byType, ok := z.rrsets[n]; ok {
			if _, hasNS := byType[dns.TypeNS]; hasNS {
				return n, true
			}
		}
	}
	return "", false
}

// Names returns all owner names in the zone, sorted.
func (z *Zone) Names() []dns.Name {
	z.mu.RLock()
	defer z.mu.RUnlock()
	names := make([]dns.Name, 0, len(z.rrsets))
	for n := range z.rrsets {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// Records returns every record in the zone, sorted by owner then type.
func (z *Zone) Records() []dns.RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	var out []dns.RR
	for _, byType := range z.rrsets {
		for _, rrs := range byType {
			out = append(out, rrs...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Type() < out[j].Type()
	})
	return out
}

// Size returns the number of records in the zone.
func (z *Zone) Size() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	n := 0
	for _, byType := range z.rrsets {
		for _, rrs := range byType {
			n += len(rrs)
		}
	}
	return n
}

// Serialize renders the zone in master-file style, one record per line.
func (z *Zone) Serialize() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; zone %s (%d records)\n", z.origin.String(), z.Size())
	for _, rr := range z.Records() {
		sb.WriteString(rr.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Parse builds a zone from master-file style text. Blank lines and
// ';'-comment lines are skipped. A subset of RFC 1035 directives is
// honoured:
//
//   - $ORIGIN <name> switches the origin that relative owner names are
//     appended to (the zone's apex stays the origin passed in).
//   - $TTL <seconds> sets the default TTL for records that omit one.
//   - An owner of "@" means the current origin.
//   - A bare-label owner ("www") is relative to the current origin.
//
// For compatibility with the rest of the reproduction, multi-label owners
// are treated as absolute whether or not they carry the trailing dot.
func Parse(origin dns.Name, text string) (*Zone, error) {
	z := New(origin)
	curOrigin := origin
	defaultTTL := uint32(0)

	fail := func(i int, err error) error {
		return fmt.Errorf("zone %s line %d: %w", origin.String(), i+1, err)
	}
	for i, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasPrefix(line, "$") {
			fields := strings.Fields(line)
			switch strings.ToUpper(fields[0]) {
			case "$ORIGIN":
				if len(fields) < 2 {
					return nil, fail(i, fmt.Errorf("$ORIGIN needs a name"))
				}
				n, err := dns.ParseName(fields[1])
				if err != nil {
					return nil, fail(i, err)
				}
				curOrigin = n
			case "$TTL":
				if len(fields) < 2 {
					return nil, fail(i, fmt.Errorf("$TTL needs a value"))
				}
				ttl, err := strconv.ParseUint(fields[1], 10, 32)
				if err != nil {
					return nil, fail(i, fmt.Errorf("bad $TTL %q", fields[1]))
				}
				defaultTTL = uint32(ttl)
			default:
				return nil, fail(i, fmt.Errorf("unsupported directive %s", fields[0]))
			}
			continue
		}
		line, hadTTL, err := normalizeOwner(line, curOrigin)
		if err != nil {
			return nil, fail(i, err)
		}
		rr, err := dns.ParseRR(line)
		if err != nil {
			return nil, fail(i, err)
		}
		if !hadTTL && defaultTTL > 0 {
			rr.TTL = defaultTTL
		}
		if err := z.Add(rr); err != nil {
			return nil, fail(i, err)
		}
	}
	return z, nil
}

// normalizeOwner rewrites the record line's owner field against the current
// origin and reports whether an explicit TTL field follows the owner.
func normalizeOwner(line string, origin dns.Name) (string, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", false, fmt.Errorf("record %q has too few fields", line)
	}
	owner := fields[0]
	switch {
	case owner == "@":
		owner = string(origin)
		if owner == "" {
			owner = "."
		}
	case strings.HasSuffix(owner, "."):
		// Absolute; keep as-is (ParseRR strips the dot).
	case !strings.Contains(owner, "."):
		// A bare label is relative to the current origin. Multi-label
		// owners without a trailing dot are treated as absolute for
		// compatibility with the reproduction's existing zone texts.
		if origin != dns.Root {
			owner = owner + "." + string(origin)
		}
	}
	fields[0] = owner
	_, err := strconv.ParseUint(fields[1], 10, 32)
	hadTTL := err == nil
	return strings.Join(fields, " "), hadTTL, nil
}
