package zone

import (
	"math/rand"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/dns"
)

func randomAddr(r *rand.Rand) netip.Addr {
	return netip.AddrFrom4([4]byte{
		byte(r.Intn(223) + 1), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)),
	})
}

func exampleZone(t *testing.T) *Zone {
	t.Helper()
	z, err := Parse("example.com", `
; apex
example.com 3600 IN SOA ns1.example.com hostmaster.example.com 2023102401 7200 3600 1209600 300
example.com 3600 IN NS ns1.example.com
example.com 3600 IN NS ns2.example.com
example.com 300 IN A 192.0.2.10
example.com 300 IN TXT "v=spf1 ip4:192.0.2.0/24 -all"
; hosts
www.example.com 300 IN CNAME example.com
api.example.com 300 IN A 192.0.2.20
ns1.example.com 300 IN A 192.0.2.1
ns2.example.com 300 IN A 192.0.2.2
; wildcard
*.dev.example.com 300 IN A 192.0.2.99
; delegation
sub.example.com 3600 IN NS ns1.elsewhere.net
; deep name creating empty non-terminals
a.b.c.example.com 300 IN A 192.0.2.30
`)
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func TestLookupHit(t *testing.T) {
	z := exampleZone(t)
	rrs, res := z.Lookup("example.com", dns.TypeA)
	if res != Hit || len(rrs) != 1 {
		t.Fatalf("apex A: %v %d", res, len(rrs))
	}
	rrs, res = z.Lookup("api.example.com", dns.TypeA)
	if res != Hit || rrs[0].Data.(*dns.A).Addr.String() != "192.0.2.20" {
		t.Fatalf("api A: %v %v", res, rrs)
	}
	_, res = z.Lookup("example.com", dns.TypeTXT)
	if res != Hit {
		t.Fatalf("apex TXT: %v", res)
	}
	// NS at apex answers authoritatively.
	rrs, res = z.Lookup("example.com", dns.TypeNS)
	if res != Hit || len(rrs) != 2 {
		t.Fatalf("apex NS: %v %d", res, len(rrs))
	}
}

func TestLookupCNAME(t *testing.T) {
	z := exampleZone(t)
	rrs, res := z.Lookup("www.example.com", dns.TypeA)
	if res != CNAMEHit {
		t.Fatalf("res = %v", res)
	}
	if rrs[0].Data.(*dns.CNAME).Target != "example.com" {
		t.Errorf("target = %v", rrs[0].Data)
	}
	// Querying the CNAME type itself is a Hit.
	_, res = z.Lookup("www.example.com", dns.TypeCNAME)
	if res != Hit {
		t.Errorf("CNAME-type query res = %v", res)
	}
}

func TestLookupNoData(t *testing.T) {
	z := exampleZone(t)
	_, res := z.Lookup("api.example.com", dns.TypeTXT)
	if res != NoData {
		t.Errorf("existing name wrong type: %v", res)
	}
	// Empty non-terminal: b.c.example.com has no records but a descendant.
	_, res = z.Lookup("b.c.example.com", dns.TypeA)
	if res != NoData {
		t.Errorf("empty non-terminal: %v", res)
	}
	_, res = z.Lookup("c.example.com", dns.TypeA)
	if res != NoData {
		t.Errorf("empty non-terminal 2: %v", res)
	}
}

func TestLookupNXDomain(t *testing.T) {
	z := exampleZone(t)
	_, res := z.Lookup("missing.example.com", dns.TypeA)
	if res != NXDomain {
		t.Errorf("res = %v", res)
	}
	_, res = z.Lookup("deep.missing.example.com", dns.TypeA)
	if res != NXDomain {
		t.Errorf("res = %v", res)
	}
}

func TestLookupWildcard(t *testing.T) {
	z := exampleZone(t)
	rrs, res := z.Lookup("anything.dev.example.com", dns.TypeA)
	if res != Hit {
		t.Fatalf("res = %v", res)
	}
	if rrs[0].Name != "anything.dev.example.com" {
		t.Errorf("synthesized owner = %v", rrs[0].Name)
	}
	if rrs[0].Data.(*dns.A).Addr.String() != "192.0.2.99" {
		t.Errorf("wildcard data = %v", rrs[0].Data)
	}
	// Wildcard does not apply to types it does not define.
	_, res = z.Lookup("anything.dev.example.com", dns.TypeTXT)
	if res != NoData {
		t.Errorf("wildcard wrong type res = %v", res)
	}
	// A multi-label miss under the wildcard still matches (x.y.dev...).
	_, res = z.Lookup("x.y.dev.example.com", dns.TypeA)
	if res != Hit {
		t.Errorf("deep wildcard res = %v", res)
	}
}

func TestLookupDelegation(t *testing.T) {
	z := exampleZone(t)
	rrs, res := z.Lookup("host.sub.example.com", dns.TypeA)
	if res != Delegation {
		t.Fatalf("res = %v", res)
	}
	if rrs[0].Data.(*dns.NS).Host != "ns1.elsewhere.net" {
		t.Errorf("NS = %v", rrs[0].Data)
	}
	// Query exactly at the cut.
	_, res = z.Lookup("sub.example.com", dns.TypeA)
	if res != Delegation {
		t.Errorf("at-cut res = %v", res)
	}
	_, res = z.Lookup("sub.example.com", dns.TypeNS)
	if res != Delegation {
		t.Errorf("at-cut NS res = %v", res)
	}
}

func TestLookupOutOfZone(t *testing.T) {
	z := exampleZone(t)
	_, res := z.Lookup("other.org", dns.TypeA)
	if res != OutOfZone {
		t.Errorf("res = %v", res)
	}
	// Suffix overlap must not leak in.
	_, res = z.Lookup("notexample.com", dns.TypeA)
	if res != OutOfZone {
		t.Errorf("suffix-overlap res = %v", res)
	}
}

func TestAddOutOfZoneRejected(t *testing.T) {
	z := New("example.com")
	err := z.Add(dns.MustParseRR("other.org 60 IN A 192.0.2.1"))
	if err == nil {
		t.Error("out-of-zone Add accepted")
	}
	if err := z.Add(dns.RR{Name: "x.example.com"}); err == nil {
		t.Error("nil-payload Add accepted")
	}
}

func TestRemove(t *testing.T) {
	z := exampleZone(t)
	z.RemoveRRset("api.example.com", dns.TypeA)
	if _, res := z.Lookup("api.example.com", dns.TypeA); res != NXDomain {
		t.Errorf("after RemoveRRset: %v", res)
	}
	z.RemoveName("example.com")
	if _, res := z.Lookup("example.com", dns.TypeSOA); res != NoData {
		// Apex still "exists" as empty non-terminal because children remain.
		t.Errorf("after RemoveName: %v", res)
	}
}

func TestSOAAccessor(t *testing.T) {
	z := exampleZone(t)
	soa, ok := z.SOA()
	if !ok {
		t.Fatal("SOA missing")
	}
	if soa.Data.(*dns.SOA).Serial != 2023102401 {
		t.Errorf("serial = %d", soa.Data.(*dns.SOA).Serial)
	}
	empty := New("empty.test")
	if _, ok := empty.SOA(); ok {
		t.Error("empty zone reported SOA")
	}
}

func TestSerializeParseRoundtrip(t *testing.T) {
	z := exampleZone(t)
	text := z.Serialize()
	z2, err := Parse("example.com", text)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if z.Size() != z2.Size() {
		t.Errorf("size %d != %d", z.Size(), z2.Size())
	}
	for _, rr := range z.Records() {
		found := false
		for _, rr2 := range z2.RRset(rr.Name, rr.Type()) {
			if rr2.String() == rr.String() {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("record lost in roundtrip: %s", rr)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("example.com", "garbage line here and more fields"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Parse("example.com", "other.org 60 IN A 192.0.2.1"); err == nil {
		t.Error("out-of-zone record accepted")
	}
}

func TestConcurrentMutationAndLookup(t *testing.T) {
	z := New("example.com")
	z.MustAddRR("example.com 60 IN A 192.0.2.1")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := dns.Name("h" + string(rune('a'+i%26)) + ".example.com")
			_ = z.Add(dns.RR{Name: name, Class: dns.ClassINET, TTL: 60,
				Data: &dns.TXT{Strings: []string{"x"}}})
			z.RemoveRRset(name, dns.TypeTXT)
		}
	}()
	for i := 0; i < 5000; i++ {
		z.Lookup("ha.example.com", dns.TypeTXT)
		z.Lookup("example.com", dns.TypeA)
	}
	close(stop)
	wg.Wait()
}

// Property: every record added at a non-delegated name is found by Lookup
// with result Hit, and names never added return NXDomain or NoData.
func TestQuickLookupConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		z := New("t.test")
		added := map[dns.Name]bool{}
		for i := 0; i < 20; i++ {
			label := string(rune('a'+r.Intn(26))) + string(rune('a'+r.Intn(26)))
			name := dns.Name(label + ".t.test")
			if err := z.Add(dns.RR{Name: name, Class: dns.ClassINET, TTL: 1,
				Data: &dns.A{Addr: randomAddr(r)}}); err != nil {
				return false
			}
			added[name] = true
		}
		for name := range added {
			if _, res := z.Lookup(name, dns.TypeA); res != Hit {
				return false
			}
			if _, res := z.Lookup(name, dns.TypeTXT); res != NoData {
				return false
			}
		}
		if _, res := z.Lookup("zzz-not-there.t.test", dns.TypeA); res != NXDomain {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRootZone(t *testing.T) {
	z := New(dns.Root)
	z.MustAddRR("com 3600 IN NS a.gtld-servers.net")
	rrs, res := z.Lookup("example.com", dns.TypeA)
	if res != Delegation || len(rrs) != 1 {
		t.Fatalf("root delegation: %v %d", res, len(rrs))
	}
}

func TestSerializeHeaderComment(t *testing.T) {
	z := exampleZone(t)
	if !strings.HasPrefix(z.Serialize(), "; zone example.com.") {
		t.Errorf("serialize header: %q", strings.SplitN(z.Serialize(), "\n", 2)[0])
	}
}

func TestParseDirectives(t *testing.T) {
	z, err := Parse("example.com", `
$TTL 7200
$ORIGIN example.com
@    IN SOA ns1.example.com hostmaster.example.com 1 7200 3600 1209600 300
@    IN NS  ns1.example.com
www  IN CNAME example.com
api  300 IN A 192.0.2.50
$ORIGIN dev.example.com
build IN A 192.0.2.60
`)
	if err != nil {
		t.Fatal(err)
	}
	// @ resolves to the origin.
	if _, ok := z.SOA(); !ok {
		t.Error("SOA at apex missing")
	}
	// Relative bare label under the first origin.
	rrs, res := z.Lookup("www.example.com", dns.TypeCNAME)
	if res != Hit {
		t.Fatalf("www lookup: %v", res)
	}
	if rrs[0].TTL != 7200 {
		t.Errorf("default TTL not applied: %d", rrs[0].TTL)
	}
	// Explicit TTL wins over $TTL.
	rrs, res = z.Lookup("api.example.com", dns.TypeA)
	if res != Hit || rrs[0].TTL != 300 {
		t.Fatalf("api: %v ttl=%d", res, rrs[0].TTL)
	}
	// $ORIGIN switch.
	if _, res := z.Lookup("build.dev.example.com", dns.TypeA); res != Hit {
		t.Errorf("build under switched origin: %v", res)
	}
}

func TestParseDirectiveErrors(t *testing.T) {
	bad := []string{
		"$ORIGIN",
		"$TTL",
		"$TTL notanumber",
		"$INCLUDE otherfile",
		"@",
	}
	for _, text := range bad {
		if _, err := Parse("example.com", text); err == nil {
			t.Errorf("Parse(%q): expected error", text)
		}
	}
	// $ORIGIN outside the zone makes later relative records out-of-zone.
	_, err := Parse("example.com", "$ORIGIN other.org\nwww IN A 192.0.2.1")
	if err == nil {
		t.Error("out-of-zone $ORIGIN record accepted")
	}
}

func TestParseRootOriginAt(t *testing.T) {
	z, err := Parse(dns.Root, "@ 3600 IN NS a.root-servers.test")
	if err != nil {
		t.Fatal(err)
	}
	if got := z.RRset(dns.Root, dns.TypeNS); len(got) != 1 {
		t.Errorf("root NS = %v", got)
	}
}

func TestAccessorsAndStrings(t *testing.T) {
	z := exampleZone(t)
	if z.Origin() != "example.com" {
		t.Errorf("Origin = %v", z.Origin())
	}
	names := z.Names()
	if len(names) == 0 {
		t.Fatal("Names empty")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names not sorted")
		}
	}
	for res, want := range map[Result]string{
		Hit: "Hit", CNAMEHit: "CNAME", NoData: "NoData", NXDomain: "NXDomain",
		Delegation: "Delegation", OutOfZone: "OutOfZone",
	} {
		if res.String() != want {
			t.Errorf("%d.String() = %q", res, res.String())
		}
	}
	if Result(99).String() == "" {
		t.Error("unknown Result renders empty")
	}
}

func TestMustAddRRPanics(t *testing.T) {
	z := New("example.com")
	defer func() {
		if recover() == nil {
			t.Error("MustAddRR did not panic")
		}
	}()
	z.MustAddRR("out-of.zone.org 60 IN A 192.0.2.1")
}
