package dnsio

import (
	"errors"
	"net"
	"net/netip"
	"sync"

	"repro/internal/dns"
)

// Server serves a Responder on real UDP and TCP sockets. It exists so the
// reproduction's DNS stack can be driven by any standard client (dig, the
// cmd/dnsq tool, the examples) — the simulated fabric is an optimization, not
// a semantic shortcut.
type Server struct {
	responder Responder

	mu       sync.Mutex
	pc       net.PacketConn
	ln       net.Listener
	closed   bool
	wg       sync.WaitGroup
	udpAddr  netip.AddrPort
	tcpAddr  netip.AddrPort
	started  bool
	closeErr error
}

// NewServer wraps a responder.
func NewServer(r Responder) *Server {
	return &Server{responder: r}
}

// Start binds UDP and TCP sockets on the given address ("127.0.0.1:0" picks
// ephemeral ports) and begins serving in background goroutines.
func (s *Server) Start(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("dnsio: server already started")
	}
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return err
	}
	udpAP := pc.LocalAddr().(*net.UDPAddr).AddrPort()
	// Bind TCP on the same host and port as UDP when possible.
	ln, err := net.Listen("tcp", udpAP.String())
	if err != nil {
		// Ephemeral collision: fall back to any port on the same host.
		ln, err = net.Listen("tcp", net.JoinHostPort(udpAP.Addr().String(), "0"))
		if err != nil {
			pc.Close()
			return err
		}
	}
	s.pc, s.ln = pc, ln
	s.udpAddr = udpAP
	s.tcpAddr = ln.Addr().(*net.TCPAddr).AddrPort()
	s.started = true

	s.wg.Add(2)
	go s.serveUDP()
	go s.serveTCP()
	return nil
}

// UDPAddr returns the bound UDP address.
func (s *Server) UDPAddr() netip.AddrPort {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.udpAddr
}

// TCPAddr returns the bound TCP address.
func (s *Server) TCPAddr() netip.AddrPort {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tcpAddr
}

func (s *Server) serveUDP() {
	defer s.wg.Done()
	buf := make([]byte, dns.MaxEDNS0Size)
	for {
		n, raddr, err := s.pc.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		src := netip.Addr{}
		if ua, ok := raddr.(*net.UDPAddr); ok {
			src = ua.AddrPort().Addr()
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if out := serveBytes(s.responder, src, pkt, false); out != nil {
				_, _ = s.pc.WriteTo(out, raddr)
			}
		}()
	}
}

// StreamResponder is the optional interface a Responder implements to answer
// one TCP query with a multi-message response stream — the shape of AXFR and
// IXFR zone transfers (RFC 5936 §2: a transfer is a sequence of DNS messages
// on one connection). HandleStream sends zero or more complete messages via
// send and returns handled=true when it owned the query; handled=false falls
// back to the ordinary single-message HandleQuery path. A non-nil error
// tears the connection down (the transfer cannot be completed mid-stream —
// a partial zone must never look complete to the client).
type StreamResponder interface {
	HandleStream(src netip.Addr, q *dns.Message, send func(*dns.Message) error) (handled bool, err error)
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			src := netip.Addr{}
			if ta, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
				src = ta.AddrPort().Addr()
			}
			sr, streaming := s.responder.(StreamResponder)
			for {
				raw, err := readTCPMessage(conn)
				if err != nil {
					return
				}
				if streaming {
					q := new(dns.Message)
					if err := q.UnpackFrom(raw); err == nil {
						handled, err := sr.HandleStream(src, q, func(m *dns.Message) error {
							out, perr := m.Pack()
							if perr != nil {
								return perr
							}
							return writeTCPMessage(conn, out)
						})
						if err != nil {
							return
						}
						if handled {
							continue
						}
					}
					// Malformed or unhandled: the single-message path below
					// owns FORMERR and ordinary answers alike.
				}
				out := serveBytes(s.responder, src, raw, true)
				if out == nil {
					return
				}
				if err := writeTCPMessage(conn, out); err != nil {
					return
				}
			}
		}()
	}
}

// Close shuts the sockets and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.started || s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.pc != nil {
		s.closeErr = s.pc.Close()
	}
	if s.ln != nil {
		if err := s.ln.Close(); err != nil && s.closeErr == nil {
			s.closeErr = err
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	return s.closeErr
}
