package dnsio

import (
	"bytes"
	"testing"
)

// FuzzReadFrame feeds arbitrary stream bytes to the two-octet framing reader
// shared by plain TCP and DoT. The contract: never panic, never allocate
// beyond the 16-bit length a frame can declare, and any frame it accepts
// round-trips byte-for-byte through WriteFrame.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x00, 0x00})
	f.Add([]byte{0x00, 0x03, 0xAA, 0xBB, 0xCC})
	f.Add([]byte{0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(msg) > 0xFFFF {
			t.Fatalf("frame longer than its 16-bit length field: %d", len(msg))
		}
		var buf bytes.Buffer
		if werr := WriteFrame(&buf, msg); werr != nil {
			t.Fatalf("accepted frame failed to re-frame: %v", werr)
		}
		if !bytes.Equal(buf.Bytes(), data[:2+len(msg)]) {
			t.Fatal("frame round trip not byte-identical")
		}
	})
}
