package dnsio

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/dns"
)

// TestRealSocketConcurrentClients hammers the real-socket server with
// parallel clients over UDP and TCP simultaneously.
func TestRealSocketConcurrentClients(t *testing.T) {
	srv := NewServer(staticResponder{addr: netip.MustParseAddr("203.0.113.80")})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const workers, per = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(&NetTransport{})
			c.SeedIDs(int64(w))
			for i := 0; i < per; i++ {
				name := dns.Name(fmt.Sprintf("host%d-%d.example.com", w, i))
				resp, err := c.Query(context.Background(), srv.UDPAddr(), name, dns.TypeA)
				if err != nil {
					errs <- err
					return
				}
				if len(resp.AnswersOfType(dns.TypeA)) != 1 {
					errs <- fmt.Errorf("worker %d: bad answers %v", w, resp.Answers)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTCPFraming exercises the length-prefixed stream framing directly
// with pipelined messages on one connection.
func TestTCPFraming(t *testing.T) {
	srv := NewServer(staticResponder{addr: netip.MustParseAddr("203.0.113.80")})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.UDPAddr().Port() != srv.TCPAddr().Port() {
		t.Skip("ephemeral port mismatch between UDP and TCP")
	}

	// Multiple sequential queries over one TCP connection (the server keeps
	// the stream open).
	tr := &NetTransport{}
	for i := 0; i < 5; i++ {
		q := dns.NewQuery(uint16(100+i), dns.Name(fmt.Sprintf("h%d.example.com", i)), dns.TypeA)
		packed, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		raw, err := tr.Exchange(context.Background(), srv.TCPAddr(), packed, true)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := dns.Unpack(raw)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.ID != uint16(100+i) {
			t.Errorf("id = %d", resp.Header.ID)
		}
	}
}

// TestServerDoubleStartAndClose covers lifecycle edges.
func TestServerDoubleStartAndClose(t *testing.T) {
	srv := NewServer(staticResponder{addr: netip.MustParseAddr("203.0.113.80")})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err == nil {
		t.Error("double Start accepted")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	// Queries after close fail.
	c := NewClient(&NetTransport{})
	c.Retries = 0
	c.Timeout = 200 * time.Millisecond
	if _, err := c.Query(context.Background(), srv.UDPAddr(), "x.test", dns.TypeA); err == nil {
		t.Error("query succeeded after close")
	}
}
