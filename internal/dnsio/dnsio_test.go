package dnsio

import (
	"context"
	"net/netip"
	"strings"
	"testing"

	"repro/internal/dns"
	"repro/internal/simnet"
)

// staticResponder answers every A query with a fixed address and returns
// NXDOMAIN otherwise. TXT queries get a large record to exercise truncation.
type staticResponder struct {
	addr netip.Addr
}

func (s staticResponder) HandleQuery(_ netip.Addr, q *dns.Message) *dns.Message {
	r := q.Reply()
	r.Header.Authoritative = true
	switch q.Question().Type {
	case dns.TypeA:
		r.Answers = append(r.Answers, dns.RR{
			Name: q.Question().Name, Class: dns.ClassINET, TTL: 60,
			Data: &dns.A{Addr: s.addr},
		})
	case dns.TypeTXT:
		for i := 0; i < 10; i++ {
			r.Answers = append(r.Answers, dns.RR{
				Name: q.Question().Name, Class: dns.ClassINET, TTL: 60,
				Data: dns.NewTXT(strings.Repeat("x", 200)),
			})
		}
	default:
		r.Header.RCode = dns.RCodeNXDomain
	}
	return r
}

func newSimClient(t *testing.T) (*Client, netip.AddrPort) {
	t.Helper()
	fabric := simnet.New(7)
	serverIP := netip.MustParseAddr("192.0.2.53")
	detach, err := AttachSim(fabric, serverIP, staticResponder{addr: netip.MustParseAddr("203.0.113.80")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(detach)
	c := NewClient(&SimTransport{Fabric: fabric, Src: netip.MustParseAddr("198.51.100.1")})
	c.SeedIDs(1)
	return c, netip.AddrPortFrom(serverIP, DNSPort)
}

func TestSimQueryA(t *testing.T) {
	c, server := newSimClient(t)
	resp, err := c.Query(context.Background(), server, "www.example.com", dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dns.RCodeSuccess {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	as := resp.AnswersOfType(dns.TypeA)
	if len(as) != 1 || as[0].Data.(*dns.A).Addr.String() != "203.0.113.80" {
		t.Errorf("unexpected answers %v", resp.Answers)
	}
	if !resp.Header.Authoritative {
		t.Error("AA not set")
	}
}

func TestSimQueryNXDomain(t *testing.T) {
	c, server := newSimClient(t)
	resp, err := c.Query(context.Background(), server, "www.example.com", dns.TypeMX)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dns.RCodeNXDomain {
		t.Errorf("rcode = %v, want NXDOMAIN", resp.Header.RCode)
	}
}

func TestSimTruncationFallsBackToTCP(t *testing.T) {
	c, server := newSimClient(t)
	resp, err := c.Query(context.Background(), server, "big.example.com", dns.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	// The TXT answer is ~2KB; over plain UDP (512) the server truncates and
	// the client must recover the full answer over the reliable path.
	if resp.Header.Truncated {
		t.Error("final response still truncated")
	}
	if len(resp.Answers) != 10 {
		t.Errorf("answers = %d, want 10", len(resp.Answers))
	}
}

func TestSimUnreachableServer(t *testing.T) {
	c, _ := newSimClient(t)
	c.Retries = 0
	_, err := c.Query(context.Background(), netip.MustParseAddrPort("192.0.2.99:53"), "x.test", dns.TypeA)
	if err == nil {
		t.Fatal("expected error for unreachable server")
	}
}

func TestRetriesRecoverFromLoss(t *testing.T) {
	fabric := simnet.New(3)
	fabric.SetLossRate(0.4)
	serverIP := netip.MustParseAddr("192.0.2.53")
	detach, err := AttachSim(fabric, serverIP, staticResponder{addr: netip.MustParseAddr("203.0.113.80")})
	if err != nil {
		t.Fatal(err)
	}
	defer detach()
	c := NewClient(&SimTransport{Fabric: fabric, Src: netip.MustParseAddr("198.51.100.1")})
	c.SeedIDs(1)
	c.Retries = 8
	server := netip.AddrPortFrom(serverIP, DNSPort)
	okCount := 0
	for i := 0; i < 50; i++ {
		if _, err := c.Query(context.Background(), server, "www.example.com", dns.TypeA); err == nil {
			okCount++
		}
	}
	// With 40% loss and 9 attempts, effectively every query should succeed.
	if okCount < 48 {
		t.Errorf("only %d/50 queries succeeded", okCount)
	}
}

func TestServeBytesFormErr(t *testing.T) {
	r := staticResponder{addr: netip.MustParseAddr("203.0.113.80")}
	// 12 header bytes followed by garbage question.
	raw := append(make([]byte, 4), 0, 1, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF)
	raw[0], raw[1] = 0xAB, 0xCD
	out := serveBytes(r, netip.Addr{}, raw, false)
	if out == nil {
		t.Fatal("no FORMERR response")
	}
	resp, err := dns.Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dns.RCodeFormat {
		t.Errorf("rcode = %v, want FORMERR", resp.Header.RCode)
	}
	if resp.Header.ID != 0xABCD {
		t.Errorf("id = %x", resp.Header.ID)
	}
	// Short garbage gets no response at all.
	if out := serveBytes(r, netip.Addr{}, []byte{1, 2, 3}, false); out != nil {
		t.Error("expected nil for short garbage")
	}
}

func TestUDPPayloadSize(t *testing.T) {
	q := dns.NewQuery(1, "x.test", dns.TypeA)
	if got := udpPayloadSize(q); got != dns.MaxUDPSize {
		t.Errorf("no-EDNS size = %d", got)
	}
	q.Additional = append(q.Additional, dns.RR{
		Name: dns.Root, Class: dns.Class(1232), Data: &dns.OPT{},
	})
	if got := udpPayloadSize(q); got != 1232 {
		t.Errorf("EDNS size = %d", got)
	}
	q.Additional[0].Class = dns.Class(100) // below classic floor
	if got := udpPayloadSize(q); got != dns.MaxUDPSize {
		t.Errorf("floored size = %d", got)
	}
	q.Additional[0].Class = dns.Class(65000) // above our ceiling
	if got := udpPayloadSize(q); got != dns.MaxEDNS0Size {
		t.Errorf("ceiling size = %d", got)
	}
}

// TestRealSockets drives the same responder over genuine UDP/TCP loopback
// sockets, proving the codec and framing against the OS network stack.
func TestRealSockets(t *testing.T) {
	srv := NewServer(staticResponder{addr: netip.MustParseAddr("203.0.113.80")})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.UDPAddr().Port() != srv.TCPAddr().Port() {
		t.Skipf("UDP port %d != TCP port %d; skipping fallback test", srv.UDPAddr().Port(), srv.TCPAddr().Port())
	}
	c := NewClient(&NetTransport{})
	resp, err := c.Query(context.Background(), srv.UDPAddr(), "www.example.com", dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.AnswersOfType(dns.TypeA)) != 1 {
		t.Errorf("unexpected answers: %v", resp.Answers)
	}
	// Large TXT answer: requires real TCP fallback.
	resp, err = c.Query(context.Background(), srv.UDPAddr(), "big.example.com", dns.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 10 {
		t.Errorf("TCP fallback answers = %d, want 10", len(resp.Answers))
	}
}

func TestClientValidation(t *testing.T) {
	q := dns.NewQuery(100, "a.test", dns.TypeA)
	c := NewClient(nil)

	// Wrong ID.
	r := q.Reply()
	r.Header.ID = 101
	raw, _ := r.Pack()
	if _, err := c.validate(q, raw); err != ErrIDMismatch {
		t.Errorf("want ID mismatch, got %v", err)
	}
	// Not a response.
	raw, _ = q.Pack()
	if _, err := c.validate(q, raw); err != ErrNotResponse {
		t.Errorf("want not-response, got %v", err)
	}
	// Question mismatch.
	other := dns.NewQuery(100, "b.test", dns.TypeA).Reply()
	raw, _ = other.Pack()
	if _, err := c.validate(q, raw); err != ErrQuestionMismatch {
		t.Errorf("want question mismatch, got %v", err)
	}
	// Good response.
	good := q.Reply()
	raw, _ = good.Pack()
	if _, err := c.validate(q, raw); err != nil {
		t.Errorf("valid response rejected: %v", err)
	}
}

func TestResponderFunc(t *testing.T) {
	called := false
	r := ResponderFunc(func(src netip.Addr, q *dns.Message) *dns.Message {
		called = true
		reply := q.Reply()
		reply.Header.RCode = dns.RCodeRefused
		return reply
	})
	resp := r.HandleQuery(netip.MustParseAddr("10.0.0.1"), dns.NewQuery(1, "x.test", dns.TypeA))
	if !called || resp.Header.RCode != dns.RCodeRefused {
		t.Errorf("ResponderFunc dispatch broken: %v %v", called, resp.Header.RCode)
	}
}
