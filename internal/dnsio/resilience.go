// Resilience layer for the DNS client: failure classification (transient vs
// permanent), exponential retry backoff with deterministic jitter on a
// virtual clock, and a per-server circuit breaker shared across sweep
// workers. Covert-channel malware is built to survive network adversity;
// the measurement client has to match it, or a flaky nameserver silently
// costs coverage.

package dnsio

import (
	"context"
	"errors"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/simnet"
)

// Resilience errors.
var (
	// ErrCircuitOpen is returned without touching the network when a server's
	// breaker is open and it is not yet time for a half-open probe.
	ErrCircuitOpen = errors.New("dnsio: circuit breaker open")
	// ErrMalformed wraps a response that did not parse as a DNS message.
	ErrMalformed = errors.New("dnsio: response failed to parse")
	// ErrTLSHandshake wraps a failed DoT/DoH TLS handshake. The endpoint
	// answered the dial but refused (or botched) the crypto layer, so
	// retrying the same exchange cannot help — classified unreachable,
	// which makes the client fail fast instead of burning retries.
	ErrTLSHandshake = errors.New("dnsio: TLS handshake failed")
	// ErrHTTPStatus wraps a non-200 status from a DoH server. RFC 8484 §4.2.1
	// reserves the DNS-level outcome for 200 responses; anything else — a 502
	// from a proxy, a 429, a 400 — is a transport-level fault, transient by
	// default (the breaker still opens on a persistent streak).
	ErrHTTPStatus = errors.New("dnsio: DoH HTTP error status")
)

// FailClass buckets exchange failures for retry policy and coverage
// accounting.
type FailClass uint8

// Failure classes.
const (
	FailNone FailClass = iota
	// FailTimeout: the query or response was lost (or the server sat on it).
	FailTimeout
	// FailUnreachable: nothing listens there; retrying cannot help.
	FailUnreachable
	// FailSpoofed: a response arrived but failed ID/question/QR validation.
	FailSpoofed
	// FailMalformed: the response bytes did not parse as DNS.
	FailMalformed
	// FailBreakerOpen: the probe was suppressed by an open circuit breaker.
	FailBreakerOpen
	// FailStalled: the probe sat past the stall watchdog's deadline and was
	// cancelled (or abandoned) so the sweep could keep moving.
	FailStalled
	// FailOther: everything else (cancelled contexts, socket errors, ...).
	FailOther
)

// String names the class (used as the coverage-report histogram key).
func (fc FailClass) String() string {
	switch fc {
	case FailNone:
		return "none"
	case FailTimeout:
		return "timeout"
	case FailUnreachable:
		return "unreachable"
	case FailSpoofed:
		return "spoofed"
	case FailMalformed:
		return "malformed"
	case FailBreakerOpen:
		return "breaker-open"
	case FailStalled:
		return "stalled"
	}
	return "other"
}

// Classify maps an error from Client.Exchange (or a Transport) onto its
// failure class.
func Classify(err error) FailClass {
	switch {
	case err == nil:
		return FailNone
	case errors.Is(err, ErrCircuitOpen):
		return FailBreakerOpen
	case errors.Is(err, simnet.ErrUnreachable), errors.Is(err, ErrTLSHandshake):
		return FailUnreachable
	case errors.Is(err, simnet.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		return FailTimeout
	case errors.Is(err, ErrIDMismatch), errors.Is(err, ErrNotResponse), errors.Is(err, ErrQuestionMismatch):
		return FailSpoofed
	case errors.Is(err, ErrMalformed):
		return FailMalformed
	case errors.Is(err, ErrHTTPStatus):
		return FailOther
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return FailTimeout
	}
	// Real-socket dial rejections: nothing answers, so retrying is futile.
	if errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EHOSTUNREACH) ||
		errors.Is(err, syscall.ENETUNREACH) {
		return FailUnreachable
	}
	return FailOther
}

// IsPermanent reports whether retrying the same exchange cannot succeed, so
// the client should fail fast instead of burning its retry budget.
func IsPermanent(err error) bool {
	if errors.Is(err, context.Canceled) {
		return true
	}
	switch Classify(err) {
	case FailUnreachable, FailBreakerOpen:
		return true
	}
	return false
}

// BackoffPolicy schedules the delay before each retry attempt: exponential
// doubling from Base, capped at Max, with deterministic ±50% jitter derived
// from (JitterSeed, server, attempt). The zero value disables backoff.
type BackoffPolicy struct {
	Base       time.Duration
	Max        time.Duration
	JitterSeed uint64
}

// DefaultBackoff is the client's standard retry schedule.
func DefaultBackoff() BackoffPolicy {
	return BackoffPolicy{Base: 50 * time.Millisecond, Max: 2 * time.Second}
}

// Delay returns the pause before retry attempt n (1-based). Jitter is a pure
// hash, so two identically-seeded runs back off identically.
func (p BackoffPolicy) Delay(server netip.AddrPort, attempt int) time.Duration {
	if p.Base <= 0 || attempt <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 20 {
		shift = 20
	}
	d := p.Base << shift
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	a := server.Addr().As16()
	h := p.JitterSeed*0x9E3779B97F4A7C15 + uint64(attempt)
	for _, b := range a[8:] {
		h = (h ^ uint64(b)) * 0xBF58476D1CE4E5B9
	}
	h ^= h >> 29
	h *= 0x94D049BB133111EB
	h ^= h >> 32
	frac := 0.5 + float64(h>>11)/float64(uint64(1)<<53) // [0.5, 1.5)
	return time.Duration(float64(d) * frac)
}

// virtualSleeper lets a transport substitute virtual time for real backoff
// sleeps; the sim fabric books the delay on its clock instead of blocking
// the worker.
type virtualSleeper interface {
	SleepVirtual(d time.Duration)
}

// SleepVirtual implements virtualSleeper: backoff on the fabric path advances
// the virtual clock, never a real timer.
func (t *SimTransport) SleepVirtual(d time.Duration) {
	t.Fabric.AdvanceVirtual(d)
}

// sleep pauses before a retry: virtually when the transport supports it,
// otherwise on a real timer bounded by the context.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	if vs, ok := c.Transport.(virtualSleeper); ok {
		vs.SleepVirtual(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// BreakerConfig tunes the per-server circuit breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive failed exchanges open the breaker.
	Threshold int
	// HalfOpenAfter is how many fast-failed calls an open breaker swallows
	// before letting one half-open probe through. Count-based rather than
	// time-based so the state machine is deterministic in-sim.
	HalfOpenAfter int
}

// DefaultBreakerConfig opens after 5 consecutive failures and probes every
// 8th suppressed call.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{Threshold: 5, HalfOpenAfter: 8}
}

// breakerShards bounds lock contention when many workers share one client.
const breakerShards = 16

// breaker is one server's failure state machine: closed (normal), open
// (fail fast), half-open (one probe in flight decides).
type breaker struct {
	mu      sync.Mutex
	consec  int
	open    bool
	blocked int
}

// allow reports whether a call may proceed. On an open breaker it counts the
// suppressed call and periodically grants a half-open probe.
func (b *breaker) allow(cfg BreakerConfig) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	b.blocked++
	if b.blocked >= cfg.HalfOpenAfter {
		b.blocked = 0
		return true // half-open probe
	}
	return false
}

// report feeds one exchange outcome into the state machine.
func (b *breaker) report(s *BreakerSet, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.open = false
		b.consec = 0
		b.blocked = 0
		return
	}
	b.consec++
	if !b.open && b.consec >= s.cfg.Threshold {
		b.open = true
		b.blocked = 0
		s.trips.Add(1)
	}
}

type breakerShard struct {
	mu sync.Mutex
	m  map[netip.Addr]*breaker
}

// BreakerSet holds the per-server breakers, sharded by server address so
// sweep workers on different servers never contend.
type BreakerSet struct {
	cfg    BreakerConfig
	trips  atomic.Int64
	shards [breakerShards]breakerShard
}

// NewBreakerSet builds an empty set under the given config.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	s := &BreakerSet{cfg: cfg}
	for i := range s.shards {
		s.shards[i].m = make(map[netip.Addr]*breaker)
	}
	return s
}

// forAddr returns (creating if needed) the breaker for one server.
func (s *BreakerSet) forAddr(addr netip.Addr) *breaker {
	a := addr.As16()
	h := uint32(2166136261)
	for _, b := range a[8:] {
		h = (h ^ uint32(b)) * 16777619
	}
	sh := &s.shards[h&(breakerShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b, ok := sh.m[addr]
	if !ok {
		b = &breaker{}
		sh.m[addr] = b
	}
	return b
}

// Trips returns how many times any breaker transitioned closed → open.
func (s *BreakerSet) Trips() int64 { return s.trips.Load() }

// Open reports whether a server's breaker is currently open.
func (s *BreakerSet) Open(addr netip.Addr) bool {
	b := s.forAddr(addr)
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// SetSimFault installs one fault profile on both fabric endpoints of a DNS
// server — the UDP port and the paired reliable (TCP-semantics) port — so
// the chaos applies to truncation fallbacks too.
func SetSimFault(f *simnet.Fabric, addr netip.Addr, p simnet.FaultProfile) {
	f.SetFault(simnet.Endpoint{Addr: addr, Port: DNSPort}, p)
	f.SetFault(simnet.Endpoint{Addr: addr, Port: DNSPort + simTCPPortOffset}, p)
}
