package dnsio

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"syscall"
	"testing"
	"time"

	"repro/internal/dns"
	"repro/internal/simnet"
)

// scriptTransport plays back a scripted list of outcomes; nil means "answer
// the query correctly".
type scriptTransport struct {
	script []error
	calls  int
}

func (t *scriptTransport) Exchange(_ context.Context, _ netip.AddrPort, packed []byte, _ bool) ([]byte, error) {
	i := t.calls
	t.calls++
	var step error
	if i < len(t.script) {
		step = t.script[i]
	}
	if step != nil {
		return nil, step
	}
	q, err := dns.Unpack(packed)
	if err != nil {
		return nil, err
	}
	return q.Reply().Pack()
}

// Instant marks the script transport as non-blocking so no deadline plumbing
// kicks in; combined with no virtualSleeper, backoff uses real timers, so
// tests below that exercise many retries disable it.
func (t *scriptTransport) Instant() bool { return true }

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want FailClass
	}{
		{nil, FailNone},
		{simnet.ErrTimeout, FailTimeout},
		{fmt.Errorf("wrap: %w", simnet.ErrTimeout), FailTimeout},
		{simnet.ErrUnreachable, FailUnreachable},
		{ErrCircuitOpen, FailBreakerOpen},
		{ErrIDMismatch, FailSpoofed},
		{ErrNotResponse, FailSpoofed},
		{ErrQuestionMismatch, FailSpoofed},
		{fmt.Errorf("%w: bad rr", ErrMalformed), FailMalformed},
		{context.DeadlineExceeded, FailTimeout},
		{fmt.Errorf("dial: %w", syscall.ECONNREFUSED), FailUnreachable},
		{errors.New("mystery"), FailOther},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
	// Every class has a stable, non-empty name for coverage histograms.
	for fc := FailNone; fc <= FailOther; fc++ {
		if fc.String() == "" {
			t.Errorf("class %d has empty name", fc)
		}
	}
}

func TestIsPermanent(t *testing.T) {
	if !IsPermanent(simnet.ErrUnreachable) || !IsPermanent(ErrCircuitOpen) || !IsPermanent(context.Canceled) {
		t.Error("permanent errors not recognized")
	}
	if IsPermanent(simnet.ErrTimeout) || IsPermanent(ErrIDMismatch) || IsPermanent(nil) {
		t.Error("transient errors misclassified as permanent")
	}
}

// TestPermanentErrorFailsFast pins the satellite fix: ErrUnreachable must not
// burn the retry budget.
func TestPermanentErrorFailsFast(t *testing.T) {
	tr := &scriptTransport{script: []error{
		fmt.Errorf("%w: 192.0.2.99:53", simnet.ErrUnreachable),
		fmt.Errorf("%w: 192.0.2.99:53", simnet.ErrUnreachable),
	}}
	c := NewClient(tr)
	c.Retries = 5
	_, err := c.Query(context.Background(), netip.MustParseAddrPort("192.0.2.99:53"), "x.test", dns.TypeA)
	if !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if tr.calls != 1 {
		t.Errorf("unreachable server probed %d times, want 1", tr.calls)
	}
}

// TestUnreachableFailsFastOnFabric proves the same through the real sim
// transport: one fabric exchange total, despite a generous retry budget.
func TestUnreachableFailsFastOnFabric(t *testing.T) {
	fabric := simnet.New(5)
	c := NewClient(&SimTransport{Fabric: fabric, Src: netip.MustParseAddr("198.51.100.1")})
	c.Retries = 7
	_, err := c.Query(context.Background(), netip.MustParseAddrPort("192.0.2.99:53"), "x.test", dns.TypeA)
	if !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if got := fabric.Exchanges(); got != 1 {
		t.Errorf("fabric exchanges = %d, want 1", got)
	}
}

// TestNegativeRetriesNormalized pins the satellite fix: Retries < 0 used to
// skip the attempt loop entirely and report "failed: %!w(<nil>)".
func TestNegativeRetriesNormalized(t *testing.T) {
	tr := &scriptTransport{script: []error{simnet.ErrTimeout, simnet.ErrTimeout}}
	c := NewClient(tr)
	c.Retries = -3
	_, err := c.Query(context.Background(), netip.MustParseAddrPort("192.0.2.1:53"), "x.test", dns.TypeA)
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, simnet.ErrTimeout) {
		t.Errorf("err = %v, want the transport's timeout, not a nil wrap", err)
	}
	if tr.calls != 1 {
		t.Errorf("negative retries made %d attempts, want exactly 1", tr.calls)
	}
}

func TestBreakerOpensFailsFastAndRecovers(t *testing.T) {
	cfg := BreakerConfig{Threshold: 3, HalfOpenAfter: 2}
	tr := &scriptTransport{script: []error{
		simnet.ErrTimeout, simnet.ErrTimeout, simnet.ErrTimeout, // 3 failures -> open
		nil, // half-open probe succeeds -> closed
	}}
	c := NewClient(tr)
	c.Retries = 0
	c.Backoff = BackoffPolicy{} // keep the test free of real sleeps
	c.Breakers = NewBreakerSet(cfg)
	server := netip.MustParseAddrPort("192.0.2.1:53")
	q := func() error {
		_, err := c.Query(context.Background(), server, "x.test", dns.TypeA)
		return err
	}

	for i := 0; i < cfg.Threshold; i++ {
		if err := q(); !errors.Is(err, simnet.ErrTimeout) {
			t.Fatalf("warm-up %d: %v", i, err)
		}
	}
	if !c.Breakers.Open(server.Addr()) {
		t.Fatal("breaker not open after threshold failures")
	}
	if got := c.Breakers.Trips(); got != 1 {
		t.Errorf("trips = %d, want 1", got)
	}
	// Next HalfOpenAfter-1 calls fail fast without touching the transport.
	callsBefore := tr.calls
	if err := q(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("expected fast-fail, got %v", err)
	}
	if tr.calls != callsBefore {
		t.Error("fast-fail still touched the transport")
	}
	// The HalfOpenAfter-th suppressed call becomes the half-open probe, the
	// script answers it, and the breaker closes.
	if err := q(); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if c.Breakers.Open(server.Addr()) {
		t.Error("breaker still open after successful probe")
	}
	if err := q(); err != nil {
		t.Errorf("closed breaker blocked a query: %v", err)
	}
	if got := c.Breakers.Trips(); got != 1 {
		t.Errorf("trips after recovery = %d, want 1", got)
	}
}

// TestBackoffDelayDeterministicJitter: the jitter is a pure hash of (seed,
// server, attempt) — same inputs, same delay, bounded by [0.5, 1.5)x.
func TestBackoffDelayDeterministicJitter(t *testing.T) {
	p := DefaultBackoff()
	p.JitterSeed = 42
	server := netip.MustParseAddrPort("192.0.2.7:53")
	for attempt := 1; attempt <= 6; attempt++ {
		d1 := p.Delay(server, attempt)
		d2 := p.Delay(server, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: delays differ (%v vs %v)", attempt, d1, d2)
		}
		nominal := p.Base << (attempt - 1)
		if p.Max > 0 && nominal > p.Max {
			nominal = p.Max
		}
		if d1 < nominal/2 || d1 >= nominal+nominal/2 {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, d1, nominal/2, nominal+nominal/2)
		}
	}
	if p.Delay(server, 0) != 0 {
		t.Error("attempt 0 should have no delay")
	}
	if (BackoffPolicy{}).Delay(server, 3) != 0 {
		t.Error("zero policy should disable backoff")
	}
	p2 := p
	p2.JitterSeed = 43
	diff := false
	for attempt := 1; attempt <= 6; attempt++ {
		if p.Delay(server, attempt) != p2.Delay(server, attempt) {
			diff = true
		}
	}
	if !diff {
		t.Error("different jitter seeds produced identical schedules")
	}
}

// TestBackoffUsesVirtualClockInSim: retrying against a blackholed sim
// endpoint books backoff on the fabric's virtual clock instead of sleeping.
func TestBackoffUsesVirtualClockInSim(t *testing.T) {
	fabric := simnet.New(5)
	serverIP := netip.MustParseAddr("192.0.2.53")
	detach, err := AttachSim(fabric, serverIP, staticResponder{addr: netip.MustParseAddr("203.0.113.80")})
	if err != nil {
		t.Fatal(err)
	}
	defer detach()
	SetSimFault(fabric, serverIP, simnet.FaultProfile{Blackhole: true})

	c := NewClient(&SimTransport{Fabric: fabric, Src: netip.MustParseAddr("198.51.100.1")})
	c.Retries = 3
	start := time.Now()
	_, qerr := c.Query(context.Background(), netip.AddrPortFrom(serverIP, DNSPort), "x.test", dns.TypeA)
	elapsed := time.Since(start)
	if qerr == nil {
		t.Fatal("blackholed query succeeded")
	}
	// 4 attempts * 20ms base RTT = 80ms on the virtual clock; the backoff
	// schedule (≥25+50+100 ms halved at worst) must push it well past that.
	if v := fabric.VirtualRTT(); v < 150*time.Millisecond {
		t.Errorf("virtual clock = %v, want backoff booked on top of RTT", v)
	}
	// ... and none of it as real wall-clock.
	if elapsed > time.Second {
		t.Errorf("in-sim retries slept for real: %v", elapsed)
	}
}

func TestSetSimFaultCoversBothPorts(t *testing.T) {
	fabric := simnet.New(5)
	addr := netip.MustParseAddr("192.0.2.53")
	SetSimFault(fabric, addr, simnet.FaultProfile{ServFail: true})
	for _, port := range []uint16{DNSPort, DNSPort + simTCPPortOffset} {
		if _, ok := fabric.FaultFor(simnet.Endpoint{Addr: addr, Port: port}); !ok {
			t.Errorf("no fault profile on port %d", port)
		}
	}
}

// TestSpoofedResponsesNeverSurface: with a 100% wrong-ID spoofer in front of
// the server, every validated exchange must fail — garbage never leaks to the
// caller as data.
func TestSpoofedResponsesNeverSurface(t *testing.T) {
	fabric := simnet.New(5)
	serverIP := netip.MustParseAddr("192.0.2.53")
	detach, err := AttachSim(fabric, serverIP, staticResponder{addr: netip.MustParseAddr("203.0.113.80")})
	if err != nil {
		t.Fatal(err)
	}
	defer detach()
	SetSimFault(fabric, serverIP, simnet.FaultProfile{WrongIDRate: 1})
	c := NewClient(&SimTransport{Fabric: fabric, Src: netip.MustParseAddr("198.51.100.1")})
	c.SeedIDs(1)
	c.Retries = 2
	_, err = c.Query(context.Background(), netip.AddrPortFrom(serverIP, DNSPort), "x.test", dns.TypeA)
	if !errors.Is(err, ErrIDMismatch) {
		t.Fatalf("err = %v, want ErrIDMismatch", err)
	}
	if Classify(err) != FailSpoofed {
		t.Errorf("class = %v, want spoofed", Classify(err))
	}
}
