package dnsio

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"time"

	"repro/internal/dns"
)

// Zone-transfer client. A transfer is the one DNS exchange that is not
// request/response: the server answers a single AXFR or IXFR question with a
// stream of messages on the same TCP connection (RFC 5936, RFC 1995). This
// client owns the stream discipline — when the stream ends, which SOA is the
// terminator, and how an incremental response differs from a full one — and
// hands the caller the flattened record sequence in arrival order, which is
// exactly the order the delta semantics of IXFR require.

// Transfer limits: a malicious or broken server must not be able to hold the
// client forever or balloon its memory.
const (
	maxXfrMessages = 1 << 16
	maxXfrRecords  = 1 << 22
)

// ErrXfrProtocol reports a malformed transfer stream.
var ErrXfrProtocol = errors.New("dnsio: malformed zone transfer stream")

// XfrResult is one completed transfer.
type XfrResult struct {
	// RCode is the response code of the first message. Records are only
	// populated when it is NOERROR (a REFUSED transfer carries no data).
	RCode dns.RCode
	// Records is every answer record across the stream, in arrival order:
	// leading SOA, payload, trailing SOA. For an up-to-date IXFR response it
	// is the single current SOA.
	Records []dns.RR
	// Messages counts the stream's DNS messages.
	Messages int
}

// Serial returns the transfer's zone serial (from the leading SOA).
func (r *XfrResult) Serial() (uint32, bool) {
	if len(r.Records) == 0 {
		return 0, false
	}
	soa, ok := r.Records[0].Data.(*dns.SOA)
	if !ok {
		return 0, false
	}
	return soa.Serial, true
}

// Incremental reports whether the stream is an RFC 1995 incremental response
// (second record is the client's old SOA) rather than a full AXFR-style body.
// An up-to-date single-SOA response reports false.
func (r *XfrResult) Incremental() bool {
	return len(r.Records) >= 2 && r.Records[1].Type() == dns.TypeSOA
}

// Transfer runs one zone transfer over TCP. qtype selects AXFR or IXFR; for
// IXFR, serial is the client's current zone serial (sent in the request's
// authority SOA, per RFC 1995 §3). The stream terminates when the opening
// SOA's serial re-appears the protocol-determined number of times: twice for
// a full body, three times for an incremental one (opening SOA, final delta
// block's new-SOA marker, trailing SOA), once for an up-to-date reply.
func Transfer(ctx context.Context, server netip.AddrPort, zone dns.Name, qtype dns.Type, serial uint32) (*XfrResult, error) {
	if qtype != dns.TypeAXFR && qtype != dns.TypeIXFR {
		return nil, fmt.Errorf("dnsio: Transfer qtype must be AXFR or IXFR, got %s", qtype)
	}
	q := &dns.Message{
		Header:    dns.Header{ID: uint16(time.Now().UnixNano()) | 1},
		Questions: []dns.Question{{Name: zone, Type: qtype, Class: dns.ClassINET}},
	}
	if qtype == dns.TypeIXFR {
		q.Authority = append(q.Authority, dns.RR{
			Name: zone, Class: dns.ClassINET,
			Data: &dns.SOA{MName: "ns." + zone, RName: "hostmaster." + zone, Serial: serial},
		})
	}
	packed, err := q.Pack()
	if err != nil {
		return nil, fmt.Errorf("dnsio: pack transfer query: %w", err)
	}

	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", server.String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	if err := writeTCPMessage(conn, packed); err != nil {
		return nil, err
	}

	res := &XfrResult{}
	var (
		openSerial uint32 // serial of the leading SOA
		termTarget = -1   // occurrences of openSerial-SOAs that end the stream
		termSeen   int
	)
	for {
		raw, err := readTCPMessage(conn)
		if err != nil {
			return nil, fmt.Errorf("dnsio: transfer read: %w", err)
		}
		m, err := dns.Unpack(raw)
		if err != nil {
			return nil, fmt.Errorf("dnsio: transfer unpack: %w", err)
		}
		if m.Header.ID != q.Header.ID {
			return nil, ErrIDMismatch
		}
		res.Messages++
		if res.Messages == 1 {
			res.RCode = m.Header.RCode
			if m.Header.RCode != dns.RCodeSuccess {
				return res, nil
			}
		} else if m.Header.RCode != dns.RCodeSuccess {
			return nil, fmt.Errorf("%w: rcode %s mid-stream", ErrXfrProtocol, m.Header.RCode)
		}
		for _, rr := range m.Answers {
			if len(res.Records) == 0 {
				soa, ok := rr.Data.(*dns.SOA)
				if !ok {
					return nil, fmt.Errorf("%w: stream does not open with SOA", ErrXfrProtocol)
				}
				openSerial = soa.Serial
				termSeen = 1
			} else {
				if termTarget < 0 {
					// The second record fixes the stream shape: another SOA
					// means incremental (delta markers re-use the current
					// serial once more), anything else means full body.
					if rr.Type() == dns.TypeSOA {
						termTarget = 3
					} else {
						termTarget = 2
					}
				}
				if soa, ok := rr.Data.(*dns.SOA); ok && soa.Serial == openSerial {
					termSeen++
				}
			}
			res.Records = append(res.Records, rr)
			if len(res.Records) > maxXfrRecords {
				return nil, fmt.Errorf("%w: record cap exceeded", ErrXfrProtocol)
			}
			if termTarget > 0 && termSeen >= termTarget {
				return res, nil
			}
		}
		// A first message carrying exactly one SOA and nothing since is the
		// up-to-date IXFR reply.
		if res.Messages == 1 && len(res.Records) == 1 && termTarget < 0 && qtype == dns.TypeIXFR {
			return res, nil
		}
		if res.Messages > maxXfrMessages {
			return nil, fmt.Errorf("%w: message cap exceeded", ErrXfrProtocol)
		}
	}
}

// Notify sends one RFC 1996 NOTIFY for zone to server over UDP: question
// (zone, SOA), answer SOA carrying the new serial. NOTIFY is best-effort by
// design — the secondary's scheduled SOA refresh is the reliability backstop
// — so the ack is awaited only until ctx's deadline and a missing one is not
// an error; only a failure to send reports.
func Notify(ctx context.Context, server netip.AddrPort, zone dns.Name, serial uint32) error {
	m := &dns.Message{
		Header: dns.Header{
			ID:            uint16(time.Now().UnixNano()) | 1,
			OpCode:        dns.OpNotify,
			Authoritative: true,
		},
		Questions: []dns.Question{{Name: zone, Type: dns.TypeSOA, Class: dns.ClassINET}},
		Answers: []dns.RR{{
			Name: zone, Class: dns.ClassINET,
			Data: &dns.SOA{MName: "ns." + zone, RName: "hostmaster." + zone, Serial: serial},
		}},
	}
	packed, err := m.Pack()
	if err != nil {
		return fmt.Errorf("dnsio: pack notify: %w", err)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "udp", server.String())
	if err != nil {
		return err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	if _, err := conn.Write(packed); err != nil {
		return err
	}
	buf := make([]byte, dns.MaxUDPSize)
	_, _ = conn.Read(buf) // ack or deadline; either is fine
	return nil
}
